//! Shared classifier interface and preprocessing.

use zeroer_linalg::Matrix;

/// A binary matcher: supervised baselines implement `fit`; unsupervised
/// ones ignore the labels.
pub trait Classifier {
    /// Trains on features and labels (labels ignored by unsupervised
    /// models).
    fn fit(&mut self, x: &Matrix, y: &[bool]);

    /// Match probability per row, in `[0, 1]`.
    fn predict_proba(&self, x: &Matrix) -> Vec<f64>;

    /// Hard labels at the 0.5 threshold.
    fn predict(&self, x: &Matrix) -> Vec<bool> {
        self.predict_proba(x).into_iter().map(|p| p > 0.5).collect()
    }
}

/// Per-column standardization to zero mean / unit variance, fit on train
/// and applied to test — required by the gradient-based baselines.
#[derive(Debug, Clone, Default)]
pub struct Standardizer {
    means: Vec<f64>,
    stds: Vec<f64>,
}

impl Standardizer {
    /// Learns means and standard deviations from `x`.
    pub fn fit(x: &Matrix) -> Self {
        let (n, d) = (x.rows(), x.cols());
        let mut means = vec![0.0; d];
        for i in 0..n {
            for (m, &v) in means.iter_mut().zip(x.row(i)) {
                *m += v;
            }
        }
        let nf = (n.max(1)) as f64;
        for m in &mut means {
            *m /= nf;
        }
        let mut stds = vec![0.0; d];
        for i in 0..n {
            for (j, &v) in x.row(i).iter().enumerate() {
                stds[j] += (v - means[j]).powi(2);
            }
        }
        for s in &mut stds {
            *s = (*s / nf).sqrt();
            if *s < 1e-12 {
                *s = 1.0; // constant column: leave centered at zero
            }
        }
        Self { means, stds }
    }

    /// Applies the transform, returning a new matrix.
    pub fn transform(&self, x: &Matrix) -> Matrix {
        let (n, d) = (x.rows(), x.cols());
        assert_eq!(d, self.means.len(), "standardizer dimensionality mismatch");
        let mut out = Matrix::zeros(n, d);
        for i in 0..n {
            for j in 0..d {
                out[(i, j)] = (x[(i, j)] - self.means[j]) / self.stds[j];
            }
        }
        out
    }
}

/// Selects the rows of `x` given by `idx` (with repetition allowed — used
/// by oversampling and bagging).
pub fn take_rows(x: &Matrix, idx: &[usize]) -> Matrix {
    let d = x.cols();
    let mut data = Vec::with_capacity(idx.len() * d);
    for &i in idx {
        data.extend_from_slice(x.row(i));
    }
    Matrix::from_vec(idx.len(), d, data)
}

/// Selects label entries by index.
pub fn take_labels(y: &[bool], idx: &[usize]) -> Vec<bool> {
    idx.iter().map(|&i| y[i]).collect()
}

/// Numerically stable logistic sigmoid.
pub fn sigmoid(z: f64) -> f64 {
    if z >= 0.0 {
        1.0 / (1.0 + (-z).exp())
    } else {
        let e = z.exp();
        e / (1.0 + e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standardizer_zero_mean_unit_variance() {
        let x = Matrix::from_rows(&[&[1.0, 10.0], &[2.0, 20.0], &[3.0, 30.0]]);
        let s = Standardizer::fit(&x);
        let t = s.transform(&x);
        for j in 0..2 {
            let mean: f64 = (0..3).map(|i| t[(i, j)]).sum::<f64>() / 3.0;
            let var: f64 = (0..3).map(|i| t[(i, j)].powi(2)).sum::<f64>() / 3.0;
            assert!(mean.abs() < 1e-12);
            assert!((var - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn constant_column_does_not_blow_up() {
        let x = Matrix::from_rows(&[&[5.0], &[5.0]]);
        let s = Standardizer::fit(&x);
        let t = s.transform(&x);
        assert_eq!(t[(0, 0)], 0.0);
        assert!(t[(1, 0)].is_finite());
    }

    #[test]
    fn take_rows_with_repetition() {
        let x = Matrix::from_rows(&[&[1.0], &[2.0], &[3.0]]);
        let t = take_rows(&x, &[2, 0, 2]);
        assert_eq!(t.col(0), vec![3.0, 1.0, 3.0]);
        assert_eq!(take_labels(&[true, false, true], &[2, 0]), vec![true, true]);
    }

    #[test]
    fn sigmoid_is_stable_at_extremes() {
        assert!((sigmoid(1000.0) - 1.0).abs() < 1e-12);
        assert!(sigmoid(-1000.0).abs() < 1e-12);
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-12);
    }
}
