//! The Fellegi-Sunter model fit by Expectation-Conditional-Maximization
//! ("ECM" in Table 2), after the recordlinkage-toolkit implementation.
//!
//! Features are binarized at a threshold; the model assumes each binary
//! comparison outcome `x_j` is Bernoulli within each class:
//! `P(x_j = 1 | M) = m_j`, `P(x_j = 1 | U) = u_j`, conditionally
//! independent given the class (the classical FS assumption). EM estimates
//! `{π, m, u}`; the posterior match probability follows by Bayes.

use crate::common::Classifier;
use zeroer_linalg::Matrix;

/// Fellegi-Sunter / ECM matcher over binarized similarity features.
#[derive(Debug, Clone)]
pub struct EcmClassifier {
    /// Binarization threshold on the (normalized) similarity features.
    pub threshold: f64,
    /// EM iteration cap.
    pub max_iter: usize,
    /// Convergence tolerance on parameter change.
    pub tol: f64,
    params: Option<EcmParams>,
}

#[derive(Debug, Clone)]
struct EcmParams {
    pi_m: f64,
    m: Vec<f64>,
    u: Vec<f64>,
}

impl Default for EcmClassifier {
    fn default() -> Self {
        Self {
            threshold: 0.8,
            max_iter: 200,
            tol: 1e-6,
            params: None,
        }
    }
}

/// Probability clamp keeping Bernoulli parameters off the 0/1 boundary.
const P_CLAMP: (f64, f64) = (1e-4, 1.0 - 1e-4);

impl EcmClassifier {
    /// Creates an ECM matcher with a custom binarization threshold.
    pub fn new(threshold: f64) -> Self {
        Self {
            threshold,
            ..Default::default()
        }
    }

    fn binarize(&self, x: &Matrix) -> Vec<Vec<bool>> {
        (0..x.rows())
            .map(|i| x.row(i).iter().map(|&v| v >= self.threshold).collect())
            .collect()
    }

    fn log_likelihood_row(b: &[bool], p: &[f64]) -> f64 {
        b.iter()
            .zip(p)
            .map(|(&bit, &pj)| if bit { pj.ln() } else { (1.0 - pj).ln() })
            .sum()
    }

    /// Fitted Bernoulli parameters `(π_M, m, u)` (after `fit`).
    pub fn parameters(&self) -> Option<(f64, &[f64], &[f64])> {
        self.params
            .as_ref()
            .map(|p| (p.pi_m, p.m.as_slice(), p.u.as_slice()))
    }
}

impl Classifier for EcmClassifier {
    fn fit(&mut self, x: &Matrix, _y: &[bool]) {
        let n = x.rows();
        let d = x.cols();
        assert!(n >= 2, "ECM needs at least two rows");
        let b = self.binarize(x);
        // Init: agreement-count heuristic — rows agreeing on most features
        // seed the match class.
        let mut gammas: Vec<f64> = b
            .iter()
            .map(|row| {
                let agree = row.iter().filter(|&&v| v).count();
                if agree * 2 > d {
                    0.9
                } else {
                    0.1
                }
            })
            .collect();
        let mut pi_m: f64 = 0.1;
        let mut m = vec![0.9; d];
        let mut u = vec![0.1; d];
        for _ in 0..self.max_iter {
            // CM-step: conditional maximization of π, then m, then u.
            let nm: f64 = gammas.iter().sum();
            let nu = n as f64 - nm;
            pi_m = (nm / n as f64).clamp(P_CLAMP.0, P_CLAMP.1);
            let mut new_m = vec![0.0; d];
            let mut new_u = vec![0.0; d];
            for (row, &g) in b.iter().zip(&gammas) {
                for (j, &bit) in row.iter().enumerate() {
                    if bit {
                        new_m[j] += g;
                        new_u[j] += 1.0 - g;
                    }
                }
            }
            let mut delta = 0.0f64;
            for j in 0..d {
                let mj = (new_m[j] / nm.max(1e-12)).clamp(P_CLAMP.0, P_CLAMP.1);
                let uj = (new_u[j] / nu.max(1e-12)).clamp(P_CLAMP.0, P_CLAMP.1);
                delta = delta.max((mj - m[j]).abs()).max((uj - u[j]).abs());
                m[j] = mj;
                u[j] = uj;
            }
            // E-step.
            for (i, row) in b.iter().enumerate() {
                let lm = pi_m.ln() + Self::log_likelihood_row(row, &m);
                let lu = (1.0 - pi_m).ln() + Self::log_likelihood_row(row, &u);
                let max = lm.max(lu);
                gammas[i] = (lm - max).exp() / ((lm - max).exp() + (lu - max).exp());
            }
            if delta < self.tol {
                break;
            }
        }
        // Orient: the match class should have the higher mean agreement
        // probability.
        let mean_m: f64 = m.iter().sum::<f64>() / d as f64;
        let mean_u: f64 = u.iter().sum::<f64>() / d as f64;
        if mean_m < mean_u {
            std::mem::swap(&mut m, &mut u);
            pi_m = 1.0 - pi_m;
        }
        self.params = Some(EcmParams { pi_m, m, u });
    }

    fn predict_proba(&self, x: &Matrix) -> Vec<f64> {
        let p = self.params.as_ref().expect("fit before predict");
        self.binarize(x)
            .iter()
            .map(|row| {
                let lm = p.pi_m.ln() + Self::log_likelihood_row(row, &p.m);
                let lu = (1.0 - p.pi_m).ln() + Self::log_likelihood_row(row, &p.u);
                let max = lm.max(lu);
                (lm - max).exp() / ((lm - max).exp() + (lu - max).exp())
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bernoulli_data() -> (Matrix, Vec<bool>) {
        // Matches: features mostly ≥ 0.9; unmatches mostly ≤ 0.2.
        let mut data = Vec::new();
        let mut y = Vec::new();
        for i in 0..20 {
            let flip = i % 5 == 0;
            data.extend_from_slice(&[0.95, if flip { 0.1 } else { 0.9 }, 0.92]);
            y.push(true);
        }
        for i in 0..80 {
            let flip = i % 7 == 0;
            data.extend_from_slice(&[0.1, if flip { 0.9 } else { 0.15 }, 0.05]);
            y.push(false);
        }
        (Matrix::from_vec(100, 3, data), y)
    }

    #[test]
    fn recovers_bernoulli_clusters() {
        let (x, y) = bernoulli_data();
        let mut ecm = EcmClassifier::default();
        ecm.fit(&x, &[]);
        assert_eq!(ecm.predict(&x), y);
    }

    #[test]
    fn parameters_are_oriented() {
        let (x, _) = bernoulli_data();
        let mut ecm = EcmClassifier::default();
        ecm.fit(&x, &[]);
        let (pi_m, m, u) = ecm.parameters().unwrap();
        assert!(pi_m < 0.5, "matches are the minority");
        let mean_m: f64 = m.iter().sum::<f64>() / m.len() as f64;
        let mean_u: f64 = u.iter().sum::<f64>() / u.len() as f64;
        assert!(mean_m > mean_u);
    }

    #[test]
    fn probabilities_in_unit_range() {
        let (x, _) = bernoulli_data();
        let mut ecm = EcmClassifier::default();
        ecm.fit(&x, &[]);
        assert!(ecm
            .predict_proba(&x)
            .iter()
            .all(|p| (0.0..=1.0).contains(p)));
    }

    #[test]
    fn binarization_threshold_matters() {
        // All features in [0.4, 0.6]: at threshold 0.8 everything binarizes
        // to 0 and ECM cannot separate — probabilities collapse together.
        let mut data = Vec::new();
        for i in 0..40 {
            data.push(0.4 + (i % 3) as f64 * 0.1);
        }
        let x = Matrix::from_vec(40, 1, data);
        let mut ecm = EcmClassifier::default();
        ecm.fit(&x, &[]);
        let p = ecm.predict_proba(&x);
        let spread = p.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
            - p.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(
            spread < 1e-6,
            "uniform binarized data must give uniform posteriors"
        );
    }
}
