//! Random forest ("RF" in Table 2): bagged CART trees with per-tree
//! feature subsampling (√d features per tree, the sklearn default). The
//! paper uses 100 trees and tunes `min_samples_leaf` by cross-validation.

use crate::common::Classifier;
use crate::tree::DecisionTree;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use zeroer_linalg::Matrix;

/// Bagged decision-tree ensemble.
#[derive(Debug, Clone)]
pub struct RandomForest {
    /// Number of trees (paper: 100).
    pub n_trees: usize,
    /// Maximum tree depth.
    pub max_depth: usize,
    /// Minimum samples per leaf (the CV-tuned knob).
    pub min_samples_leaf: usize,
    /// RNG seed.
    pub seed: u64,
    trees: Vec<(DecisionTree, Vec<usize>)>,
}

impl RandomForest {
    /// Creates a forest with the paper's defaults (100 trees).
    pub fn new(min_samples_leaf: usize, seed: u64) -> Self {
        Self {
            n_trees: 100,
            max_depth: 12,
            min_samples_leaf,
            seed,
            trees: Vec::new(),
        }
    }

    /// Smaller, faster forest for tests and quick experiments.
    pub fn small(min_samples_leaf: usize, seed: u64) -> Self {
        Self {
            n_trees: 25,
            ..Self::new(min_samples_leaf, seed)
        }
    }
}

impl Classifier for RandomForest {
    fn fit(&mut self, x: &Matrix, y: &[bool]) {
        assert_eq!(x.rows(), y.len(), "feature/label count mismatch");
        assert!(x.rows() > 0, "empty training set");
        let n = x.rows();
        let d = x.cols();
        let n_feats = ((d as f64).sqrt().ceil() as usize).clamp(1, d);
        let mut rng = StdRng::seed_from_u64(self.seed);
        self.trees.clear();
        for _ in 0..self.n_trees {
            // Bootstrap sample.
            let idx: Vec<usize> = (0..n).map(|_| rng.gen_range(0..n)).collect();
            // Feature subset for this tree.
            let mut feats: Vec<usize> = (0..d).collect();
            feats.shuffle(&mut rng);
            feats.truncate(n_feats);
            let mut tree = DecisionTree::new(self.max_depth, self.min_samples_leaf);
            tree.fit_subset(x, y, &idx, &feats);
            self.trees.push((tree, feats));
        }
    }

    fn predict_proba(&self, x: &Matrix) -> Vec<f64> {
        assert!(!self.trees.is_empty(), "fit before predict");
        let k = self.trees.len() as f64;
        (0..x.rows())
            .map(|i| {
                let row = x.row(i);
                self.trees
                    .iter()
                    .map(|(t, _)| t.predict_row(row))
                    .sum::<f64>()
                    / k
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn noisy_blobs(seed: u64) -> (Matrix, Vec<bool>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut data = Vec::new();
        let mut y = Vec::new();
        for _ in 0..150 {
            let pos = rng.gen_bool(0.3);
            let base = if pos { 0.75 } else { 0.25 };
            for _ in 0..4 {
                data.push(base + rng.gen_range(-0.2..0.2));
            }
            y.push(pos);
        }
        (Matrix::from_vec(150, 4, data), y)
    }

    #[test]
    fn forest_fits_noisy_data_well() {
        let (x, y) = noisy_blobs(1);
        let mut rf = RandomForest::small(2, 42);
        rf.fit(&x, &y);
        let preds = rf.predict(&x);
        let correct = preds.iter().zip(&y).filter(|(a, b)| a == b).count();
        assert!(
            correct as f64 / y.len() as f64 > 0.95,
            "train accuracy too low: {correct}/{}",
            y.len()
        );
    }

    #[test]
    fn probabilities_average_tree_votes() {
        let (x, y) = noisy_blobs(2);
        let mut rf = RandomForest::small(2, 3);
        rf.fit(&x, &y);
        assert!(rf.predict_proba(&x).iter().all(|p| (0.0..=1.0).contains(p)));
    }

    #[test]
    fn deterministic_per_seed() {
        let (x, y) = noisy_blobs(3);
        let mut a = RandomForest::small(2, 9);
        let mut b = RandomForest::small(2, 9);
        a.fit(&x, &y);
        b.fit(&x, &y);
        assert_eq!(a.predict_proba(&x), b.predict_proba(&x));
    }

    #[test]
    fn leaf_floor_regularizes() {
        let (x, y) = noisy_blobs(4);
        let mut deep = RandomForest::small(1, 5);
        let mut shallow = RandomForest::small(40, 5);
        deep.fit(&x, &y);
        shallow.fit(&x, &y);
        // The heavily-regularized forest must produce smoother (less
        // extreme) probabilities on average.
        let extremity = |p: &[f64]| p.iter().map(|v| (v - 0.5).abs()).sum::<f64>() / p.len() as f64;
        assert!(extremity(&shallow.predict_proba(&x)) <= extremity(&deep.predict_proba(&x)));
    }
}
