//! The vanilla full-covariance GMM baseline ("GMM" in Table 2).
//!
//! This is deliberately the *un*-modified mixture the paper improves upon:
//! one dense covariance per component, uniform Tikhonov `reg_covar` on the
//! diagonal (sklearn's default behaviour), responsibility-weighted EM, no
//! feature grouping, no adaptive regularization, no correlation sharing,
//! no transitivity. Its mediocre Table 2 scores are the ablation argument
//! for ZeroER's additions.

use crate::common::Classifier;
use zeroer_linalg::block::{BlockDiag, GroupLayout};
use zeroer_linalg::gaussian::BlockGaussian;
use zeroer_linalg::stats::{l2_norm, weighted_covariance, weighted_mean};
use zeroer_linalg::Matrix;

/// Two-component Gaussian mixture with dense covariances.
#[derive(Debug)]
pub struct GaussianMixture {
    /// Diagonal regularization added to both covariances (sklearn's
    /// `reg_covar`; sklearn defaults to 1e-6).
    pub reg_covar: f64,
    /// EM iterations cap.
    pub max_iter: usize,
    /// Convergence tolerance on mean |Δ log-likelihood| per row.
    pub tol: f64,
    state: Option<GmmState>,
}

#[derive(Debug)]
struct GmmState {
    pi_m: f64,
    m: BlockGaussian,
    u: BlockGaussian,
}

impl Default for GaussianMixture {
    fn default() -> Self {
        Self {
            reg_covar: 1e-6,
            max_iter: 100,
            tol: 1e-5,
            state: None,
        }
    }
}

impl GaussianMixture {
    /// Creates the baseline with a chosen regularization constant.
    pub fn new(reg_covar: f64) -> Self {
        Self {
            reg_covar,
            ..Default::default()
        }
    }

    fn build_gaussian(
        x: &Matrix,
        weights: &[f64],
        reg: f64,
        layout: &GroupLayout,
    ) -> BlockGaussian {
        let mean = weighted_mean(x, weights);
        let mut cov = weighted_covariance(x, weights, &mean);
        for j in 0..cov.rows() {
            cov[(j, j)] += reg + zeroer_linalg::VARIANCE_FLOOR;
        }
        let bd = BlockDiag::from_dense(&cov, layout);
        BlockGaussian::new(mean, &bd).expect("regularized covariance must factor")
    }

    /// Magnitude-based init shared with ZeroER so the comparison isolates
    /// the model differences, not the initialization.
    fn init_gammas(x: &Matrix) -> Vec<f64> {
        let norms: Vec<f64> = (0..x.rows()).map(|i| l2_norm(x.row(i))).collect();
        let lo = norms.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = norms.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let span = hi - lo;
        norms
            .iter()
            .map(|&v| {
                let s = if span > 0.0 { (v - lo) / span } else { 0.0 };
                if s > 0.5 {
                    1.0
                } else {
                    0.0
                }
            })
            .collect()
    }
}

impl Classifier for GaussianMixture {
    fn fit(&mut self, x: &Matrix, _y: &[bool]) {
        let n = x.rows();
        assert!(n >= 2, "GMM needs at least two rows");
        let layout = GroupLayout::single_group(x.cols());
        let mut gammas = Self::init_gammas(x);
        let mut prev_ll = f64::NEG_INFINITY;
        let mut state = None;
        for _ in 0..self.max_iter {
            // M-step.
            let gu: Vec<f64> = gammas.iter().map(|g| 1.0 - g).collect();
            let nm: f64 = gammas.iter().sum();
            let pi_m = (nm / n as f64).clamp(1e-9, 1.0 - 1e-9);
            let m = Self::build_gaussian(x, &gammas, self.reg_covar, &layout);
            let u = Self::build_gaussian(x, &gu, self.reg_covar, &layout);
            // E-step.
            let mut ll = 0.0;
            #[allow(clippy::needless_range_loop)]
            for i in 0..n {
                let row = x.row(i);
                let lm = pi_m.ln() + m.log_pdf(row);
                let lu = (1.0 - pi_m).ln() + u.log_pdf(row);
                let max = lm.max(lu);
                let denom = (lm - max).exp() + (lu - max).exp();
                gammas[i] = (lm - max).exp() / denom;
                ll += max + denom.ln();
            }
            state = Some(GmmState { pi_m, m, u });
            if ((ll - prev_ll).abs() / n as f64) < self.tol {
                break;
            }
            prev_ll = ll;
        }
        // Component with the larger mean norm is "match".
        let mut st = state.expect("at least one EM iteration");
        if l2_norm(st.m.mean()) < l2_norm(st.u.mean()) {
            std::mem::swap(&mut st.m, &mut st.u);
            st.pi_m = 1.0 - st.pi_m;
        }
        self.state = Some(st);
    }

    fn predict_proba(&self, x: &Matrix) -> Vec<f64> {
        let st = self.state.as_ref().expect("fit before predict");
        (0..x.rows())
            .map(|i| {
                let row = x.row(i);
                let lm = st.pi_m.ln() + st.m.log_pdf(row);
                let lu = (1.0 - st.pi_m).ln() + st.u.log_pdf(row);
                let max = lm.max(lu);
                (lm - max).exp() / ((lm - max).exp() + (lu - max).exp())
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn blobs(n_hi: usize, n_lo: usize, seed: u64) -> (Matrix, Vec<bool>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut data = Vec::new();
        let mut y = Vec::new();
        for _ in 0..n_hi {
            data.push(0.85 + rng.gen_range(-0.1..0.1));
            data.push(0.9 + rng.gen_range(-0.1..0.1));
            y.push(true);
        }
        for _ in 0..n_lo {
            data.push(0.15 + rng.gen_range(-0.1..0.1));
            data.push(0.1 + rng.gen_range(-0.1..0.1));
            y.push(false);
        }
        (Matrix::from_vec(n_hi + n_lo, 2, data), y)
    }

    #[test]
    fn separable_blobs_are_recovered() {
        let (x, y) = blobs(25, 75, 1);
        let mut g = GaussianMixture::default();
        g.fit(&x, &[]);
        assert_eq!(g.predict(&x), y);
    }

    #[test]
    fn probabilities_in_unit_range() {
        let (x, _) = blobs(10, 40, 2);
        let mut g = GaussianMixture::default();
        g.fit(&x, &[]);
        assert!(g.predict_proba(&x).iter().all(|p| (0.0..=1.0).contains(p)));
    }

    #[test]
    fn match_component_is_high_similarity_side() {
        let (x, _) = blobs(10, 90, 3);
        let mut g = GaussianMixture::default();
        g.fit(&x, &[]);
        assert!(g.predict_proba(&Matrix::from_rows(&[&[0.95, 0.95]]))[0] > 0.5);
        assert!(g.predict_proba(&Matrix::from_rows(&[&[0.05, 0.05]]))[0] < 0.5);
    }

    #[test]
    fn degenerate_feature_tolerated_via_reg_covar() {
        // Constant second feature — the naive GMM would hit a singular
        // covariance without reg_covar.
        let mut data = Vec::new();
        for i in 0..50 {
            data.push(if i < 10 { 0.9 } else { 0.1 });
            data.push(1.0);
        }
        let x = Matrix::from_vec(50, 2, data);
        let mut g = GaussianMixture::default();
        g.fit(&x, &[]);
        let p = g.predict_proba(&x);
        assert!(p.iter().all(|v| v.is_finite()));
    }
}
