//! 2-means clustering baselines: "K-Means (SK)" and the class-weighted
//! "K-Means (RL)" variant (§7.1).
//!
//! Plain k-means assumes similarly-sized clusters, which ER violently
//! violates. The RL variant (after the recordlinkage toolkit) weights
//! distances so the small match cluster is not absorbed: distances to the
//! match centroid are scaled down by a `match_weight < 1`.

use crate::common::Classifier;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use zeroer_linalg::stats::l2_norm;
use zeroer_linalg::Matrix;

/// 2-means matcher. The cluster whose centroid has the larger L2 norm is
/// declared the match cluster (matches have uniformly higher similarity).
#[derive(Debug, Clone)]
pub struct KMeans {
    /// Distance scale applied to the match cluster: 1.0 = standard
    /// k-means (SK); < 1.0 = the RL class-weighted variant.
    pub match_weight: f64,
    /// Restarts (best inertia wins).
    pub n_init: usize,
    /// Lloyd iterations per restart.
    pub max_iter: usize,
    /// RNG seed.
    pub seed: u64,
    centroids: Option<(Vec<f64>, Vec<f64>)>, // (match, unmatch)
}

impl KMeans {
    /// Standard k-means ("K-Means (SK)").
    pub fn standard(seed: u64) -> Self {
        Self {
            match_weight: 1.0,
            n_init: 5,
            max_iter: 100,
            seed,
            centroids: None,
        }
    }

    /// Class-weighted variant ("K-Means (RL)"): match-side distances are
    /// scaled by 0.5, biasing assignment toward the minority cluster.
    pub fn class_weighted(seed: u64) -> Self {
        Self {
            match_weight: 0.5,
            ..Self::standard(seed)
        }
    }

    fn sq_dist(a: &[f64], b: &[f64]) -> f64 {
        a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
    }

    /// One Lloyd run from a k-means++ style init; returns (centroids,
    /// inertia).
    fn lloyd(&self, x: &Matrix, rng: &mut StdRng) -> (Vec<Vec<f64>>, f64) {
        let n = x.rows();
        // k-means++ for k=2: first random, second proportional to d².
        let first = rng.gen_range(0..n);
        let d2: Vec<f64> = (0..n)
            .map(|i| Self::sq_dist(x.row(i), x.row(first)))
            .collect();
        let total: f64 = d2.iter().sum();
        let second = if total > 0.0 {
            let mut target = rng.gen_range(0.0..total);
            let mut chosen = n - 1;
            for (i, &d) in d2.iter().enumerate() {
                if target < d {
                    chosen = i;
                    break;
                }
                target -= d;
            }
            chosen
        } else {
            (first + 1) % n
        };
        let mut centroids = vec![x.row(first).to_vec(), x.row(second).to_vec()];
        let d = x.cols();
        let mut assign = vec![0usize; n];
        for _ in 0..self.max_iter {
            let mut changed = false;
            #[allow(clippy::needless_range_loop)]
            for i in 0..n {
                let d0 = Self::sq_dist(x.row(i), &centroids[0]);
                let d1 = Self::sq_dist(x.row(i), &centroids[1]);
                let a = usize::from(d1 < d0);
                if assign[i] != a {
                    assign[i] = a;
                    changed = true;
                }
            }
            let mut sums = vec![vec![0.0; d]; 2];
            let mut counts = [0usize; 2];
            for i in 0..n {
                counts[assign[i]] += 1;
                for (s, &v) in sums[assign[i]].iter_mut().zip(x.row(i)) {
                    *s += v;
                }
            }
            for c in 0..2 {
                if counts[c] > 0 {
                    for v in &mut sums[c] {
                        *v /= counts[c] as f64;
                    }
                    centroids[c] = sums[c].clone();
                }
            }
            if !changed {
                break;
            }
        }
        let inertia: f64 = (0..n)
            .map(|i| Self::sq_dist(x.row(i), &centroids[assign[i]]))
            .sum();
        (centroids, inertia)
    }
}

impl Classifier for KMeans {
    fn fit(&mut self, x: &Matrix, _y: &[bool]) {
        assert!(x.rows() >= 2, "k-means needs at least two points");
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut best: Option<(Vec<Vec<f64>>, f64)> = None;
        for _ in 0..self.n_init {
            let run = self.lloyd(x, &mut rng);
            if best.as_ref().is_none_or(|b| run.1 < b.1) {
                best = Some(run);
            }
        }
        let (cents, _) = best.expect("at least one restart");
        // Higher-norm centroid = match cluster.
        let (m, u) = if l2_norm(&cents[0]) >= l2_norm(&cents[1]) {
            (cents[0].clone(), cents[1].clone())
        } else {
            (cents[1].clone(), cents[0].clone())
        };
        self.centroids = Some((m, u));
    }

    fn predict_proba(&self, x: &Matrix) -> Vec<f64> {
        let (m, u) = self.centroids.as_ref().expect("fit before predict");
        (0..x.rows())
            .map(|i| {
                let dm = Self::sq_dist(x.row(i), m).sqrt() * self.match_weight;
                let du = Self::sq_dist(x.row(i), u).sqrt();
                // Soft score from relative distances.
                if dm + du == 0.0 {
                    0.5
                } else {
                    du / (dm + du)
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn clusters(n_hi: usize, n_lo: usize) -> (Matrix, Vec<bool>) {
        let mut data = Vec::new();
        let mut y = Vec::new();
        for i in 0..n_hi {
            let eps = (i % 7) as f64 * 0.01;
            data.extend_from_slice(&[0.9 - eps, 0.85 + eps]);
            y.push(true);
        }
        for i in 0..n_lo {
            let eps = (i % 9) as f64 * 0.01;
            data.extend_from_slice(&[0.1 + eps, 0.15 - eps.min(0.15)]);
            y.push(false);
        }
        (Matrix::from_vec(n_hi + n_lo, 2, data), y)
    }

    #[test]
    fn balanced_clusters_are_separated() {
        let (x, y) = clusters(30, 30);
        let mut km = KMeans::standard(1);
        km.fit(&x, &[]);
        assert_eq!(km.predict(&x), y);
    }

    #[test]
    fn class_weighted_variant_handles_imbalance() {
        let (x, y) = clusters(5, 200);
        let mut km = KMeans::class_weighted(2);
        km.fit(&x, &[]);
        assert_eq!(km.predict(&x), y);
    }

    #[test]
    fn probabilities_are_in_unit_range() {
        let (x, _) = clusters(10, 50);
        let mut km = KMeans::standard(3);
        km.fit(&x, &[]);
        assert!(km.predict_proba(&x).iter().all(|p| (0.0..=1.0).contains(p)));
    }

    #[test]
    fn deterministic_per_seed() {
        let (x, _) = clusters(20, 40);
        let mut a = KMeans::standard(7);
        let mut b = KMeans::standard(7);
        a.fit(&x, &[]);
        b.fit(&x, &[]);
        assert_eq!(a.predict(&x), b.predict(&x));
    }

    #[test]
    #[should_panic(expected = "at least two points")]
    fn single_point_panics() {
        let x = Matrix::from_rows(&[&[0.5]]);
        KMeans::standard(0).fit(&x, &[]);
    }
}
