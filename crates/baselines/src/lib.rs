//! Baseline matchers the paper compares against (§7.1).
//!
//! Unsupervised:
//!
//! * [`kmeans::KMeans`] — plain 2-means ("K-Means (SK)") and the
//!   class-weighted variant calibrated for ER's uneven cluster sizes
//!   ("K-Means (RL)", after the recordlinkage toolkit);
//! * [`gmm::GaussianMixture`] — full-covariance 2-component GMM with
//!   uniform Tikhonov regularization, the sklearn-equivalent baseline;
//! * [`ecm::EcmClassifier`] — the Fellegi-Sunter model fit with an
//!   expectation-conditional-maximization loop over binarized features.
//!
//! Supervised (all trained with oversampled matches and tuned by k-fold
//! cross-validation, mirroring the paper's protocol):
//!
//! * [`logreg::LogisticRegression`] — linear classifier with L2;
//! * [`forest::RandomForest`] — bagged CART trees with feature
//!   subsampling;
//! * [`mlp::Mlp`] — two hidden layers (50, 10), ReLU, Adam, L2.
//!
//! All share the [`Classifier`] trait so the experiment harness can treat
//! them uniformly.

pub mod common;
pub mod ecm;
pub mod forest;
pub mod gmm;
pub mod kmeans;
pub mod logreg;
pub mod mlp;
pub mod nbayes;
pub mod tree;
pub mod tuning;

pub use common::{Classifier, Standardizer};
pub use ecm::EcmClassifier;
pub use forest::RandomForest;
pub use gmm::GaussianMixture;
pub use kmeans::KMeans;
pub use logreg::LogisticRegression;
pub use mlp::Mlp;
pub use nbayes::NaiveBayes;
