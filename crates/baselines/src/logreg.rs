//! Logistic regression with L2 regularization ("LR" in Table 2).
//!
//! Full-batch gradient descent with a fixed step budget on standardized
//! features; the `l2` strength is tuned by cross-validation in the
//! experiment harness (the paper tunes sklearn's `C` by 5-fold CV).

use crate::common::{sigmoid, Classifier, Standardizer};
use zeroer_linalg::Matrix;

/// L2-regularized logistic regression trained by gradient descent.
#[derive(Debug, Clone)]
pub struct LogisticRegression {
    /// L2 penalty strength λ (0 disables regularization).
    pub l2: f64,
    /// Gradient steps.
    pub max_iter: usize,
    /// Learning rate.
    pub lr: f64,
    weights: Vec<f64>,
    bias: f64,
    scaler: Option<Standardizer>,
}

impl Default for LogisticRegression {
    fn default() -> Self {
        Self::new(1e-3)
    }
}

impl LogisticRegression {
    /// Creates an LR with the given L2 strength.
    pub fn new(l2: f64) -> Self {
        Self {
            l2,
            max_iter: 300,
            lr: 0.5,
            weights: Vec::new(),
            bias: 0.0,
            scaler: None,
        }
    }

    /// The learned weight vector (after `fit`).
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }
}

impl Classifier for LogisticRegression {
    fn fit(&mut self, x: &Matrix, y: &[bool]) {
        assert_eq!(x.rows(), y.len(), "feature/label count mismatch");
        assert!(x.rows() > 0, "empty training set");
        let scaler = Standardizer::fit(x);
        let xs = scaler.transform(x);
        let (n, d) = (xs.rows(), xs.cols());
        let nf = n as f64;
        let mut w = vec![0.0; d];
        let mut b = 0.0;
        let targets: Vec<f64> = y.iter().map(|&t| f64::from(u8::from(t))).collect();
        let mut grad = vec![0.0; d];
        // Gradient descent on the decay term is only stable when
        // `lr · λ < 1`; cap the step size so large CV-grid λ values
        // converge instead of oscillating.
        let lr = self.lr.min(0.5 / (self.l2 + 1e-12)).min(self.lr);
        for _ in 0..self.max_iter {
            grad.iter_mut().for_each(|g| *g = 0.0);
            let mut gb = 0.0;
            #[allow(clippy::needless_range_loop)]
            for i in 0..n {
                let row = xs.row(i);
                let z: f64 = b + row.iter().zip(&w).map(|(a, c)| a * c).sum::<f64>();
                let err = sigmoid(z) - targets[i];
                for (g, &v) in grad.iter_mut().zip(row) {
                    *g += err * v;
                }
                gb += err;
            }
            for (wj, gj) in w.iter_mut().zip(&grad) {
                *wj -= lr * (gj / nf + self.l2 * *wj);
            }
            b -= lr * gb / nf;
        }
        self.weights = w;
        self.bias = b;
        self.scaler = Some(scaler);
    }

    fn predict_proba(&self, x: &Matrix) -> Vec<f64> {
        let scaler = self.scaler.as_ref().expect("fit before predict");
        let xs = scaler.transform(x);
        (0..xs.rows())
            .map(|i| {
                let z: f64 = self.bias
                    + xs.row(i)
                        .iter()
                        .zip(&self.weights)
                        .map(|(a, c)| a * c)
                        .sum::<f64>();
                sigmoid(z)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn linearly_separable(seed: u64) -> (Matrix, Vec<bool>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut data = Vec::new();
        let mut y = Vec::new();
        for _ in 0..60 {
            let pos = rng.gen_bool(0.4);
            let base = if pos { 0.8 } else { 0.2 };
            data.push(base + rng.gen_range(-0.1..0.1));
            data.push(base + rng.gen_range(-0.1..0.1));
            y.push(pos);
        }
        (Matrix::from_vec(60, 2, data), y)
    }

    #[test]
    fn fits_linearly_separable_data() {
        let (x, y) = linearly_separable(1);
        let mut lr = LogisticRegression::default();
        lr.fit(&x, &y);
        assert_eq!(lr.predict(&x), y);
    }

    #[test]
    fn heavy_l2_shrinks_weights() {
        let (x, y) = linearly_separable(2);
        let mut weak = LogisticRegression::new(1e-4);
        let mut strong = LogisticRegression::new(10.0);
        weak.fit(&x, &y);
        strong.fit(&x, &y);
        let norm = |w: &[f64]| w.iter().map(|v| v * v).sum::<f64>();
        assert!(norm(strong.weights()) < norm(weak.weights()));
    }

    #[test]
    fn probabilities_in_unit_range() {
        let (x, y) = linearly_separable(3);
        let mut lr = LogisticRegression::default();
        lr.fit(&x, &y);
        assert!(lr.predict_proba(&x).iter().all(|p| (0.0..=1.0).contains(p)));
    }

    #[test]
    fn all_one_class_training_predicts_that_class() {
        let x = Matrix::from_rows(&[&[0.1], &[0.2], &[0.3]]);
        let y = vec![false, false, false];
        let mut lr = LogisticRegression::default();
        lr.fit(&x, &y);
        assert!(lr.predict(&x).iter().all(|&p| !p));
    }

    #[test]
    #[should_panic(expected = "count mismatch")]
    fn mismatched_labels_panic() {
        let x = Matrix::from_rows(&[&[0.1]]);
        LogisticRegression::default().fit(&x, &[true, false]);
    }
}
