//! Multi-layer perceptron ("MLP" in Table 2): two hidden layers of sizes
//! 50 and 10 with ReLU, sigmoid output, Adam optimizer and L2 weight
//! decay — the architecture the paper evaluates (§7.1).

use crate::common::{sigmoid, Classifier, Standardizer};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use zeroer_linalg::Matrix;

/// A dense layer's parameters and Adam state.
#[derive(Debug, Clone)]
struct Layer {
    w: Vec<f64>, // out × in, row-major
    b: Vec<f64>,
    n_in: usize,
    n_out: usize,
    // Adam moments.
    mw: Vec<f64>,
    vw: Vec<f64>,
    mb: Vec<f64>,
    vb: Vec<f64>,
}

impl Layer {
    fn new(n_in: usize, n_out: usize, rng: &mut StdRng) -> Self {
        // He initialization for ReLU layers.
        let scale = (2.0 / n_in as f64).sqrt();
        let w = (0..n_in * n_out)
            .map(|_| rng.gen_range(-scale..scale))
            .collect();
        Self {
            w,
            b: vec![0.0; n_out],
            n_in,
            n_out,
            mw: vec![0.0; n_in * n_out],
            vw: vec![0.0; n_in * n_out],
            mb: vec![0.0; n_out],
            vb: vec![0.0; n_out],
        }
    }

    fn forward(&self, input: &[f64], out: &mut Vec<f64>) {
        out.clear();
        for o in 0..self.n_out {
            let row = &self.w[o * self.n_in..(o + 1) * self.n_in];
            let z: f64 = self.b[o] + row.iter().zip(input).map(|(a, b)| a * b).sum::<f64>();
            out.push(z);
        }
    }
}

/// The paper's MLP matcher.
#[derive(Debug, Clone)]
pub struct Mlp {
    /// L2 weight decay (the CV-tuned knob).
    pub l2: f64,
    /// Training epochs over the full batch.
    pub epochs: usize,
    /// Adam learning rate.
    pub lr: f64,
    /// RNG seed (weight init).
    pub seed: u64,
    layers: Vec<Layer>,
    scaler: Option<Standardizer>,
    adam_t: usize,
}

impl Mlp {
    /// Creates the 50/10 architecture with a given L2 strength.
    pub fn new(l2: f64, seed: u64) -> Self {
        Self {
            l2,
            epochs: 150,
            lr: 5e-3,
            seed,
            layers: Vec::new(),
            scaler: None,
            adam_t: 0,
        }
    }

    fn adam_update(t: usize, lr: f64, p: &mut [f64], g: &[f64], m: &mut [f64], v: &mut [f64]) {
        const B1: f64 = 0.9;
        const B2: f64 = 0.999;
        const EPS: f64 = 1e-8;
        let bc1 = 1.0 - B1.powi(t as i32);
        let bc2 = 1.0 - B2.powi(t as i32);
        for i in 0..p.len() {
            m[i] = B1 * m[i] + (1.0 - B1) * g[i];
            v[i] = B2 * v[i] + (1.0 - B2) * g[i] * g[i];
            let mh = m[i] / bc1;
            let vh = v[i] / bc2;
            p[i] -= lr * mh / (vh.sqrt() + EPS);
        }
    }

    /// Forward pass returning all activations (input included).
    fn forward_all(&self, input: &[f64]) -> (Vec<Vec<f64>>, f64) {
        let mut acts: Vec<Vec<f64>> = vec![input.to_vec()];
        let mut buf = Vec::new();
        for (li, layer) in self.layers.iter().enumerate() {
            layer.forward(acts.last().expect("nonempty"), &mut buf);
            if li + 1 < self.layers.len() {
                // ReLU on hidden layers.
                for z in buf.iter_mut() {
                    *z = z.max(0.0);
                }
            }
            acts.push(buf.clone());
        }
        let logit = acts.last().expect("output layer")[0];
        (acts, sigmoid(logit))
    }
}

impl Classifier for Mlp {
    fn fit(&mut self, x: &Matrix, y: &[bool]) {
        assert_eq!(x.rows(), y.len(), "feature/label count mismatch");
        assert!(x.rows() > 0, "empty training set");
        let scaler = Standardizer::fit(x);
        let xs = scaler.transform(x);
        let (n, d) = (xs.rows(), xs.cols());
        let mut rng = StdRng::seed_from_u64(self.seed);
        self.layers = vec![
            Layer::new(d, 50, &mut rng),
            Layer::new(50, 10, &mut rng),
            Layer::new(10, 1, &mut rng),
        ];
        self.adam_t = 0;

        // Gradient buffers mirroring each layer.
        for _ in 0..self.epochs {
            let mut gw: Vec<Vec<f64>> = self.layers.iter().map(|l| vec![0.0; l.w.len()]).collect();
            let mut gb: Vec<Vec<f64>> = self.layers.iter().map(|l| vec![0.0; l.b.len()]).collect();
            #[allow(clippy::needless_range_loop)]
            for i in 0..n {
                let (acts, p) = self.forward_all(xs.row(i));
                let target = f64::from(u8::from(y[i]));
                // dL/dlogit for BCE + sigmoid.
                let mut delta = vec![p - target];
                for li in (0..self.layers.len()).rev() {
                    let layer = &self.layers[li];
                    let input = &acts[li];
                    // Accumulate gradients.
                    for o in 0..layer.n_out {
                        gb[li][o] += delta[o];
                        let wrow = o * layer.n_in;
                        for (k, &inp) in input.iter().enumerate() {
                            gw[li][wrow + k] += delta[o] * inp;
                        }
                    }
                    if li == 0 {
                        break;
                    }
                    // Back-propagate through weights and the ReLU of the
                    // previous layer.
                    let mut prev = vec![0.0; layer.n_in];
                    #[allow(clippy::needless_range_loop)]
                    for o in 0..layer.n_out {
                        let wrow = &layer.w[o * layer.n_in..(o + 1) * layer.n_in];
                        for (pd, &wv) in prev.iter_mut().zip(wrow) {
                            *pd += delta[o] * wv;
                        }
                    }
                    // ReLU derivative uses the post-activation values.
                    for (pd, &a) in prev.iter_mut().zip(&acts[li]) {
                        if a <= 0.0 {
                            *pd = 0.0;
                        }
                    }
                    delta = prev;
                }
            }
            // Average, add weight decay, Adam step.
            let nf = n as f64;
            self.adam_t += 1;
            let t = self.adam_t;
            let (lr, l2) = (self.lr, self.l2);
            for (li, layer) in self.layers.iter_mut().enumerate() {
                for (g, &wv) in gw[li].iter_mut().zip(&layer.w) {
                    *g = *g / nf + l2 * wv;
                }
                for g in gb[li].iter_mut() {
                    *g /= nf;
                }
                Self::adam_update(t, lr, &mut layer.w, &gw[li], &mut layer.mw, &mut layer.vw);
                Self::adam_update(t, lr, &mut layer.b, &gb[li], &mut layer.mb, &mut layer.vb);
            }
        }
        self.scaler = Some(scaler);
    }

    fn predict_proba(&self, x: &Matrix) -> Vec<f64> {
        let scaler = self.scaler.as_ref().expect("fit before predict");
        let xs = scaler.transform(x);
        (0..xs.rows())
            .map(|i| self.forward_all(xs.row(i)).1)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn blobs(seed: u64, n: usize) -> (Matrix, Vec<bool>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut data = Vec::new();
        let mut y = Vec::new();
        for _ in 0..n {
            let pos = rng.gen_bool(0.35);
            let base = if pos { 0.8 } else { 0.2 };
            for _ in 0..3 {
                data.push(base + rng.gen_range(-0.15..0.15));
            }
            y.push(pos);
        }
        (Matrix::from_vec(n, 3, data), y)
    }

    #[test]
    fn fits_separable_blobs() {
        let (x, y) = blobs(1, 120);
        let mut mlp = Mlp::new(1e-4, 7);
        mlp.fit(&x, &y);
        let preds = mlp.predict(&x);
        let acc = preds.iter().zip(&y).filter(|(a, b)| a == b).count() as f64 / y.len() as f64;
        assert!(acc > 0.95, "train accuracy {acc}");
    }

    #[test]
    fn learns_xor_nonlinearity() {
        // XOR is the canonical test that the hidden layers actually work.
        let mut data = Vec::new();
        let mut y = Vec::new();
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..200 {
            let a = rng.gen_bool(0.5);
            let b = rng.gen_bool(0.5);
            data.push(f64::from(u8::from(a)) + rng.gen_range(-0.05..0.05));
            data.push(f64::from(u8::from(b)) + rng.gen_range(-0.05..0.05));
            y.push(a != b);
        }
        let x = Matrix::from_vec(200, 2, data);
        let mut mlp = Mlp::new(1e-5, 3);
        mlp.epochs = 400;
        mlp.fit(&x, &y);
        let preds = mlp.predict(&x);
        let acc = preds.iter().zip(&y).filter(|(a, b)| a == b).count() as f64 / y.len() as f64;
        assert!(acc > 0.9, "XOR train accuracy {acc}");
    }

    #[test]
    fn probabilities_in_unit_range() {
        let (x, y) = blobs(2, 60);
        let mut mlp = Mlp::new(1e-4, 1);
        mlp.epochs = 50;
        mlp.fit(&x, &y);
        assert!(mlp
            .predict_proba(&x)
            .iter()
            .all(|p| (0.0..=1.0).contains(p)));
    }

    #[test]
    fn deterministic_per_seed() {
        let (x, y) = blobs(3, 50);
        let mut a = Mlp::new(1e-4, 11);
        let mut b = Mlp::new(1e-4, 11);
        a.epochs = 30;
        b.epochs = 30;
        a.fit(&x, &y);
        b.fit(&x, &y);
        assert_eq!(a.predict_proba(&x), b.predict_proba(&x));
    }
}
