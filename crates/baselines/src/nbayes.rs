//! Gaussian Naive Bayes — the classic supervised ER matcher (Winkler's
//! lineage, cited in the paper's related work §8). Included as a fourth
//! supervised comparator and as the supervised twin of ZeroER's
//! independence-ablation: it is exactly the diagonal-covariance
//! class-conditional Gaussian model, fit with labels.

use crate::common::Classifier;
use zeroer_linalg::Matrix;

/// Gaussian Naive Bayes with per-class feature means/variances.
#[derive(Debug, Clone, Default)]
pub struct NaiveBayes {
    prior_pos: f64,
    mean_pos: Vec<f64>,
    var_pos: Vec<f64>,
    mean_neg: Vec<f64>,
    var_neg: Vec<f64>,
    fitted: bool,
}

/// Variance floor against degenerate (constant) features.
const VAR_FLOOR: f64 = 1e-9;

impl NaiveBayes {
    /// Creates an unfitted model.
    pub fn new() -> Self {
        Self::default()
    }

    fn class_stats(x: &Matrix, rows: &[usize]) -> (Vec<f64>, Vec<f64>) {
        let d = x.cols();
        let n = rows.len().max(1) as f64;
        let mut mean = vec![0.0; d];
        for &i in rows {
            for (m, &v) in mean.iter_mut().zip(x.row(i)) {
                *m += v;
            }
        }
        for m in &mut mean {
            *m /= n;
        }
        let mut var = vec![0.0; d];
        for &i in rows {
            for (j, &v) in x.row(i).iter().enumerate() {
                var[j] += (v - mean[j]) * (v - mean[j]);
            }
        }
        for v in &mut var {
            *v = (*v / n).max(VAR_FLOOR);
        }
        (mean, var)
    }

    fn log_gauss(x: f64, mean: f64, var: f64) -> f64 {
        -0.5 * ((x - mean) * (x - mean) / var + var.ln() + zeroer_linalg::gaussian::LN_2PI)
    }
}

impl Classifier for NaiveBayes {
    fn fit(&mut self, x: &Matrix, y: &[bool]) {
        assert_eq!(x.rows(), y.len(), "feature/label count mismatch");
        assert!(!y.is_empty(), "empty training set");
        let pos: Vec<usize> = (0..x.rows()).filter(|&i| y[i]).collect();
        let neg: Vec<usize> = (0..x.rows()).filter(|&i| !y[i]).collect();
        self.prior_pos = (pos.len() as f64 / y.len() as f64).clamp(1e-9, 1.0 - 1e-9);
        let (mp, vp) = Self::class_stats(x, &pos);
        let (mn, vn) = Self::class_stats(x, &neg);
        self.mean_pos = mp;
        self.var_pos = vp;
        self.mean_neg = mn;
        self.var_neg = vn;
        self.fitted = true;
    }

    fn predict_proba(&self, x: &Matrix) -> Vec<f64> {
        assert!(self.fitted, "fit before predict");
        (0..x.rows())
            .map(|i| {
                let row = x.row(i);
                let mut lp = self.prior_pos.ln();
                let mut ln = (1.0 - self.prior_pos).ln();
                for (j, &v) in row.iter().enumerate() {
                    lp += Self::log_gauss(v, self.mean_pos[j], self.var_pos[j]);
                    ln += Self::log_gauss(v, self.mean_neg[j], self.var_neg[j]);
                }
                let max = lp.max(ln);
                (lp - max).exp() / ((lp - max).exp() + (ln - max).exp())
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn blobs(seed: u64) -> (Matrix, Vec<bool>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut data = Vec::new();
        let mut y = Vec::new();
        for _ in 0..100 {
            let pos = rng.gen_bool(0.25);
            let base = if pos { 0.8 } else { 0.2 };
            data.push(base + rng.gen_range(-0.1..0.1));
            data.push(base + rng.gen_range(-0.1..0.1));
            y.push(pos);
        }
        (Matrix::from_vec(100, 2, data), y)
    }

    #[test]
    fn separable_blobs_are_classified() {
        let (x, y) = blobs(1);
        let mut nb = NaiveBayes::new();
        nb.fit(&x, &y);
        assert_eq!(nb.predict(&x), y);
    }

    #[test]
    fn prior_reflects_imbalance() {
        let (x, y) = blobs(2);
        let mut nb = NaiveBayes::new();
        nb.fit(&x, &y);
        let pos_frac = y.iter().filter(|&&v| v).count() as f64 / y.len() as f64;
        assert!((nb.prior_pos - pos_frac).abs() < 1e-12);
    }

    #[test]
    fn constant_feature_does_not_crash() {
        let x = Matrix::from_rows(&[&[0.9, 1.0], &[0.8, 1.0], &[0.1, 1.0], &[0.2, 1.0]]);
        let y = vec![true, true, false, false];
        let mut nb = NaiveBayes::new();
        nb.fit(&x, &y);
        assert!(nb.predict_proba(&x).iter().all(|p| p.is_finite()));
    }

    #[test]
    fn probabilities_in_unit_range() {
        let (x, y) = blobs(3);
        let mut nb = NaiveBayes::new();
        nb.fit(&x, &y);
        assert!(nb.predict_proba(&x).iter().all(|p| (0.0..=1.0).contains(p)));
    }
}
