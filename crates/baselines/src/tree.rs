//! CART decision trees (the building block of [`crate::forest`]).

use zeroer_linalg::Matrix;

/// A binary CART tree split on Gini impurity.
#[derive(Debug, Clone)]
pub struct DecisionTree {
    /// Maximum depth (root = depth 0).
    pub max_depth: usize,
    /// Minimum samples required in each leaf.
    pub min_samples_leaf: usize,
    /// Features considered per split: `None` = all, `Some(k)` = the first
    /// `k` of a caller-provided shuffled feature order (random forests pass
    /// a fresh order per split via `feature_order`).
    root: Option<Node>,
}

#[derive(Debug, Clone)]
enum Node {
    Leaf {
        /// Fraction of positive (match) training samples in the leaf.
        proba: f64,
    },
    Split {
        feature: usize,
        threshold: f64,
        left: Box<Node>,
        right: Box<Node>,
    },
}

/// Gini impurity of a split given positive/total counts on each side.
fn gini_pair(pos_l: f64, n_l: f64, pos_r: f64, n_r: f64) -> f64 {
    let gini = |pos: f64, n: f64| {
        if n == 0.0 {
            0.0
        } else {
            let p = pos / n;
            2.0 * p * (1.0 - p)
        }
    };
    let n = n_l + n_r;
    (n_l / n) * gini(pos_l, n_l) + (n_r / n) * gini(pos_r, n_r)
}

impl DecisionTree {
    /// Creates an unfitted tree.
    pub fn new(max_depth: usize, min_samples_leaf: usize) -> Self {
        Self {
            max_depth,
            min_samples_leaf,
            root: None,
        }
    }

    /// Fits on the rows of `x` given by `idx` (with repetition allowed),
    /// considering only `features` at each split (pass all columns for a
    /// plain tree; forests pass a random subset).
    pub fn fit_subset(&mut self, x: &Matrix, y: &[bool], idx: &[usize], features: &[usize]) {
        assert!(!idx.is_empty(), "empty training subset");
        self.root = Some(self.build(x, y, idx, features, 0));
    }

    fn build(
        &self,
        x: &Matrix,
        y: &[bool],
        idx: &[usize],
        features: &[usize],
        depth: usize,
    ) -> Node {
        let n = idx.len();
        let pos = idx.iter().filter(|&&i| y[i]).count();
        let proba = pos as f64 / n as f64;
        if depth >= self.max_depth || pos == 0 || pos == n || n < 2 * self.min_samples_leaf {
            return Node::Leaf { proba };
        }
        // Best split across candidate features.
        let mut best: Option<(usize, f64, f64)> = None; // (feature, threshold, gini)
        for &f in features {
            // Sort sample values on this feature; candidate thresholds are
            // midpoints between distinct consecutive values.
            let mut vals: Vec<(f64, bool)> = idx.iter().map(|&i| (x[(i, f)], y[i])).collect();
            vals.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("no NaN features"));
            let total_pos = pos as f64;
            let total = n as f64;
            let mut pos_l = 0.0;
            let mut n_l = 0.0;
            for w in 0..n - 1 {
                pos_l += f64::from(u8::from(vals[w].1));
                n_l += 1.0;
                if vals[w].0 == vals[w + 1].0 {
                    continue;
                }
                if (n_l as usize) < self.min_samples_leaf
                    || (n - n_l as usize) < self.min_samples_leaf
                {
                    continue;
                }
                let g = gini_pair(pos_l, n_l, total_pos - pos_l, total - n_l);
                if best.is_none_or(|(_, _, bg)| g < bg) {
                    let threshold = 0.5 * (vals[w].0 + vals[w + 1].0);
                    best = Some((f, threshold, g));
                }
            }
        }
        let Some((feature, threshold, _)) = best else {
            return Node::Leaf { proba };
        };
        let (left_idx, right_idx): (Vec<usize>, Vec<usize>) =
            idx.iter().partition(|&&i| x[(i, feature)] <= threshold);
        if left_idx.is_empty() || right_idx.is_empty() {
            return Node::Leaf { proba };
        }
        Node::Split {
            feature,
            threshold,
            left: Box::new(self.build(x, y, &left_idx, features, depth + 1)),
            right: Box::new(self.build(x, y, &right_idx, features, depth + 1)),
        }
    }

    /// Match probability for one feature row.
    pub fn predict_row(&self, row: &[f64]) -> f64 {
        let mut node = self.root.as_ref().expect("fit before predict");
        loop {
            match node {
                Node::Leaf { proba } => return *proba,
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    node = if row[*feature] <= *threshold {
                        left
                    } else {
                        right
                    };
                }
            }
        }
    }

    /// Depth of the fitted tree (diagnostics).
    pub fn depth(&self) -> usize {
        fn d(n: &Node) -> usize {
            match n {
                Node::Leaf { .. } => 0,
                Node::Split { left, right, .. } => 1 + d(left).max(d(right)),
            }
        }
        self.root.as_ref().map_or(0, d)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn xor_data() -> (Matrix, Vec<bool>) {
        // XOR needs depth ≥ 2 — a good test that recursion works.
        let mut data = Vec::new();
        let mut y = Vec::new();
        for &(a, b) in &[(0.0, 0.0), (0.0, 1.0), (1.0, 0.0), (1.0, 1.0)] {
            for _ in 0..10 {
                data.push(a);
                data.push(b);
                y.push((a > 0.5) != (b > 0.5));
            }
        }
        (Matrix::from_vec(40, 2, data), y)
    }

    #[test]
    fn learns_xor_with_sufficient_depth() {
        let (x, y) = xor_data();
        let idx: Vec<usize> = (0..x.rows()).collect();
        let mut t = DecisionTree::new(3, 1);
        t.fit_subset(&x, &y, &idx, &[0, 1]);
        #[allow(clippy::needless_range_loop)]
        for i in 0..x.rows() {
            assert_eq!(t.predict_row(x.row(i)) > 0.5, y[i]);
        }
        assert!(t.depth() >= 2);
    }

    #[test]
    fn depth_zero_gives_majority_leaf() {
        let (x, y) = xor_data();
        let idx: Vec<usize> = (0..x.rows()).collect();
        let mut t = DecisionTree::new(0, 1);
        t.fit_subset(&x, &y, &idx, &[0, 1]);
        assert_eq!(t.depth(), 0);
        let p = t.predict_row(x.row(0));
        assert!((p - 0.5).abs() < 1e-12, "XOR is balanced → leaf proba 0.5");
    }

    #[test]
    fn min_samples_leaf_limits_splitting() {
        let (x, y) = xor_data();
        let idx: Vec<usize> = (0..x.rows()).collect();
        let mut t = DecisionTree::new(10, 30);
        t.fit_subset(&x, &y, &idx, &[0, 1]);
        assert_eq!(t.depth(), 0, "leaf floor of 30 forbids splitting 40 rows");
    }

    #[test]
    fn pure_node_stops_early() {
        let x = Matrix::from_rows(&[&[0.0], &[0.1], &[0.2]]);
        let y = vec![true, true, true];
        let mut t = DecisionTree::new(5, 1);
        t.fit_subset(&x, &y, &[0, 1, 2], &[0]);
        assert_eq!(t.depth(), 0);
        assert_eq!(t.predict_row(&[0.5]), 1.0);
    }

    #[test]
    fn gini_prefers_pure_splits() {
        // Perfect split: gini 0; mixed split: positive.
        assert_eq!(gini_pair(5.0, 5.0, 0.0, 5.0), 0.0);
        assert!(gini_pair(3.0, 5.0, 2.0, 5.0) > 0.0);
    }
}
