//! Cross-validation hyper-parameter tuning (the paper tunes every
//! supervised baseline by 5-fold CV on the training split, §7.1).

use crate::common::{take_labels, take_rows, Classifier};
use zeroer_eval::metrics::f_score;
use zeroer_eval::split::kfold_indices;
use zeroer_linalg::Matrix;

/// Scores one hyper-parameter setting by k-fold CV F1.
///
/// `make` builds a fresh classifier for the setting; folds come from
/// [`kfold_indices`] so the protocol is deterministic per seed.
pub fn cv_f1<C: Classifier, F: Fn() -> C>(
    x: &Matrix,
    y: &[bool],
    k: usize,
    seed: u64,
    make: F,
) -> f64 {
    let folds = kfold_indices(x.rows(), k, seed);
    let mut total = 0.0;
    for (train_idx, val_idx) in &folds {
        let mut clf = make();
        clf.fit(&take_rows(x, train_idx), &take_labels(y, train_idx));
        let preds = clf.predict(&take_rows(x, val_idx));
        total += f_score(&preds, &take_labels(y, val_idx));
    }
    total / folds.len() as f64
}

/// Grid search: returns the parameter (by index into `params`) with the
/// best CV F1, plus that score. Ties break toward the earlier entry.
///
/// # Panics
/// Panics if `params` is empty.
pub fn grid_search<P: Copy, C: Classifier, F: Fn(P) -> C>(
    x: &Matrix,
    y: &[bool],
    params: &[P],
    k: usize,
    seed: u64,
    make: F,
) -> (P, f64) {
    assert!(!params.is_empty(), "empty parameter grid");
    let mut best: Option<(P, f64)> = None;
    for &p in params {
        let score = cv_f1(x, y, k, seed, || make(p));
        if best.as_ref().is_none_or(|(_, s)| score > *s) {
            best = Some((p, score));
        }
    }
    best.expect("non-empty grid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::logreg::LogisticRegression;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn data(seed: u64) -> (Matrix, Vec<bool>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut rows = Vec::new();
        let mut y = Vec::new();
        for _ in 0..80 {
            let pos = rng.gen_bool(0.4);
            let base = if pos { 0.8 } else { 0.2 };
            rows.push(base + rng.gen_range(-0.15..0.15));
            rows.push(base + rng.gen_range(-0.15..0.15));
            y.push(pos);
        }
        (Matrix::from_vec(80, 2, rows), y)
    }

    #[test]
    fn cv_scores_separable_data_high() {
        let (x, y) = data(1);
        let f1 = cv_f1(&x, &y, 4, 0, || LogisticRegression::new(1e-3));
        assert!(f1 > 0.9, "CV F1 {f1}");
    }

    #[test]
    fn grid_search_prefers_reasonable_l2() {
        let (x, y) = data(2);
        let grid = [1e-4, 1e-2, 100.0];
        let (best, score) = grid_search(&x, &y, &grid, 4, 0, LogisticRegression::new);
        assert!(best < 100.0, "absurd regularization must lose, got {best}");
        assert!(score > 0.8);
    }

    #[test]
    #[should_panic(expected = "empty parameter grid")]
    fn empty_grid_panics() {
        let (x, y) = data(3);
        grid_search::<f64, _, _>(&x, &y, &[], 4, 0, LogisticRegression::new);
    }
}
