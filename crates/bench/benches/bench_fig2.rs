//! Reproduces **Figure 2**: the heat map of feature correlations on the
//! match class of Rest-FZ, showing the banding effect that motivates
//! feature grouping (§3.2).
//!
//! Printed as an ASCII heat map (one character per cell, darker = more
//! correlated) with `|` marking attribute-group boundaries, plus the
//! quantitative contrast: mean |correlation| within groups vs across
//! groups.

use zeroer_bench::{prepare, ExperimentConfig};
use zeroer_datagen::profiles::rest_fz;
use zeroer_linalg::stats::{covariance_to_correlation, weighted_covariance, weighted_mean};

fn shade(v: f64) -> char {
    // 5-level ASCII ramp for |correlation|.
    match v.abs() {
        a if a >= 0.8 => '#',
        a if a >= 0.6 => '*',
        a if a >= 0.4 => '+',
        a if a >= 0.2 => '.',
        _ => ' ',
    }
}

fn main() {
    let cfg = ExperimentConfig::from_env();
    let p = prepare(&rest_fz(), &cfg);

    // Match-class correlation: weight rows by the ground-truth labels
    // (the paper plots the correlations of the match class).
    let weights: Vec<f64> = p.labels.iter().map(|&l| f64::from(u8::from(l))).collect();
    let x = &p.cross.features;
    let mean = weighted_mean(x, &weights);
    let cov = weighted_covariance(x, &weights, &mean);
    let corr = covariance_to_correlation(&cov);

    let layout = &p.cross.layout;
    let boundaries: Vec<usize> = layout.iter().map(|(off, sz)| off + sz).collect();
    let is_boundary = |j: usize| boundaries.contains(&j);

    println!("== Figure 2: feature-correlation heat map (Rest-FZ match class) ==");
    println!("(# >= 0.8, * >= 0.6, + >= 0.4, . >= 0.2; '|' separates attribute groups)\n");
    let d = corr.rows();
    for i in 0..d {
        let mut line = String::new();
        for j in 0..d {
            line.push(shade(corr[(i, j)]));
            line.push(' ');
            if is_boundary(j + 1) && j + 1 < d {
                line.push_str("| ");
            }
        }
        println!("{line}");
        if is_boundary(i + 1) && i + 1 < d {
            let width = 2 * d + 2 * (layout.num_groups() - 1);
            println!("{}", "-".repeat(width));
        }
    }

    // Quantitative banding contrast.
    let mut within = (0.0, 0usize);
    let mut across = (0.0, 0usize);
    let group_of = |j: usize| {
        layout
            .iter()
            .position(|(off, sz)| j >= off && j < off + sz)
            .expect("every column is in a group")
    };
    for i in 0..d {
        for j in 0..d {
            if i == j {
                continue;
            }
            let c = corr[(i, j)].abs();
            if group_of(i) == group_of(j) {
                within.0 += c;
                within.1 += 1;
            } else {
                across.0 += c;
                across.1 += 1;
            }
        }
    }
    let w = within.0 / within.1.max(1) as f64;
    let a = across.0 / across.1.max(1) as f64;
    println!("\nmean |corr| within attribute groups : {w:.3}");
    println!("mean |corr| across attribute groups : {a:.3}");
    println!(
        "banding contrast (within / across)  : {:.1}x",
        w / a.max(1e-9)
    );
}
