//! Reproduces **Figure 3**: the singularity problem and the three
//! regularization regimes on the paper's two synthetic features.
//!
//! Figure 3 illustrates *density fits of each class* under the three
//! regularization schemes (it plots the fitted M/U Gaussians against the
//! class data, not an EM outcome), so this harness does exactly that:
//! class-conditional fits with the true labels, then the regularization
//! formulas applied.
//!
//! * `f1`: unmatch values uniform in [0, 0.5]; every match value exactly
//!   1.0 → the match variance collapses to 0 (the singularity,
//!   Fig. 3(a1)).
//! * `f2`: a *small-gap* degenerate feature — match values all exactly
//!   0.45, unmatch in [0, 0.35]. The Tikhonov κ tuned for `f1`'s large
//!   gap over-smooths it into heavy overlap (Fig. 3(b2), Example 1),
//!   while adaptive regularization scales with the class gap and keeps
//!   it separated (Fig. 3(c2)).
//!
//! Reported per (feature × regime): fitted (µ, σ) per class, the
//! Bhattacharyya overlap between the fitted Gaussians (0 = separated,
//! 1 = identical), and the separation score `|µM − µU| / (σM + σU)`.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use zeroer_bench::print_table;
use zeroer_linalg::stats::{weighted_mean, weighted_variances};
use zeroer_linalg::Matrix;

/// Bhattacharyya coefficient between two univariate Gaussians.
fn overlap(mu1: f64, var1: f64, mu2: f64, var2: f64) -> f64 {
    let var = 0.5 * (var1 + var2);
    if var1 <= 0.0 || var2 <= 0.0 {
        // A degenerate (zero-variance) component shares no mass with any
        // proper Gaussian centered elsewhere.
        return 0.0;
    }
    let bd = 0.125 * (mu1 - mu2).powi(2) / var + 0.5 * (var / (var1 * var2).sqrt()).ln();
    (-bd).exp()
}

fn feature_data(which: char, seed: u64) -> (Matrix, Vec<bool>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut data = Vec::new();
    let mut truth = Vec::new();
    for _ in 0..40 {
        data.push(match which {
            '1' => 1.0, // exactly degenerate, large gap to U
            _ => 0.45,  // exactly degenerate, small gap to U
        });
        truth.push(true);
    }
    for _ in 0..360 {
        data.push(match which {
            '1' => rng.gen_range(0.0..0.5),
            _ => rng.gen_range(0.0..0.35),
        });
        truth.push(false);
    }
    (Matrix::from_vec(400, 1, data), truth)
}

fn main() {
    println!("== Figure 3: singularity & regularization on degenerate features ==\n");
    // Tikhonov κ is "tuned for f1" (the paper's Example 1); adaptive uses
    // the system default κ = 0.15 with K = κ(µM − µU)².
    type Regime = (&'static str, Box<dyn Fn(f64, f64) -> f64>);
    let regimes: [Regime; 3] = [
        ("none", Box::new(|_mu_m: f64, _mu_u: f64| 0.0)),
        // κ giving f1 the same spread the adaptive scheme would choose —
        // "a κ chosen to regularize f1 very well" (Example 1).
        ("Tikhonov", Box::new(|_, _| 0.09)),
        (
            "adaptive",
            Box::new(|mu_m, mu_u| 0.15 * (mu_m - mu_u) * (mu_m - mu_u)),
        ),
    ];
    let mut rows = Vec::new();
    for which in ['1', '2'] {
        let (x, truth) = feature_data(which, 7);
        let wm: Vec<f64> = truth.iter().map(|&t| f64::from(u8::from(t))).collect();
        let wu: Vec<f64> = truth.iter().map(|&t| f64::from(u8::from(!t))).collect();
        let mu_m = weighted_mean(&x, &wm)[0];
        let mu_u = weighted_mean(&x, &wu)[0];
        let s_m = weighted_variances(&x, &wm, &[mu_m])[0];
        let s_u = weighted_variances(&x, &wu, &[mu_u])[0];
        for (name, k_fn) in &regimes {
            let k = k_fn(mu_m, mu_u);
            let (var_m, var_u) = (s_m + k, s_u + k);
            let sep = (mu_m - mu_u).abs() / (var_m.sqrt() + var_u.sqrt()).max(1e-12);
            rows.push(vec![
                format!("f{which}"),
                name.to_string(),
                format!("{mu_m:.3}"),
                format!("{:.4}", var_m.sqrt()),
                format!("{mu_u:.3}"),
                format!("{:.4}", var_u.sqrt()),
                format!("{:.3}", overlap(mu_m, var_m, mu_u, var_u)),
                format!("{sep:.2}"),
            ]);
        }
    }
    print_table(
        &[
            "feature",
            "regularization",
            "mu_M",
            "sigma_M",
            "mu_U",
            "sigma_U",
            "overlap",
            "separation",
        ],
        &rows,
    );
    println!(
        "\nReading (paper Fig. 3): with no regularization sigma_M = 0 on f1 —\n\
         p(x|M) diverges and EM overfits that single feature (the singularity,\n\
         a1). Tikhonov with the kappa tuned for f1 fixes f1 (b1) but inflates\n\
         f2's variances until the components overlap (b2). Adaptive\n\
         regularization scales with the class separation, keeping both\n\
         features well separated and well spread (c1, c2)."
    );
}
