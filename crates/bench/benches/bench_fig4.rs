//! Reproduces **Figure 4**: sensitivity of ZeroER to
//! (a) the regularization strength κ,
//! (b) the initialization threshold ε, and
//! (c) the amount of unlabeled data used to fit the model.
//!
//! Expected shape: flat, high F1 for intermediate κ with degradation at
//! κ = 0 (singularity) and κ = 1 (underfit); near-total insensitivity to
//! ε away from the extremes; and F1 rising quickly with the unlabeled
//! fraction, saturating early (≈ 10 % of data already suffices).

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use zeroer_bench::table::fmt_f1;
use zeroer_bench::{prepare, print_table, zeroer_f1, ExperimentConfig, Prepared};
use zeroer_core::{GenerativeModel, ZeroErConfig};
use zeroer_datagen::all_profiles;
use zeroer_eval::metrics::f_score;

const KAPPAS: &[f64] = &[0.0, 0.05, 0.1, 0.15, 0.2, 0.4, 0.6, 0.8, 1.0];
const EPSILONS: &[f64] = &[0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9];
const FRACTIONS: &[f64] = &[0.1, 0.2, 0.4, 0.6, 0.8, 1.0];

/// Figure 4(c): fit on a row subset, score on the full candidate set via
/// posterior inference (the paper fits on a fraction of unlabeled pairs
/// and evaluates on the remainder; we score everything for stability at
/// small scales).
fn f1_at_fraction(p: &Prepared, frac: f64, seed: u64) -> f64 {
    let n = p.cross.features.rows();
    let k = ((n as f64 * frac).round() as usize).clamp(2, n);
    let mut idx: Vec<usize> = (0..n).collect();
    idx.shuffle(&mut StdRng::seed_from_u64(seed));
    idx.truncate(k);
    let sub = {
        let d = p.cross.features.cols();
        let mut data = Vec::with_capacity(k * d);
        for &i in &idx {
            data.extend_from_slice(p.cross.features.row(i));
        }
        zeroer_linalg::Matrix::from_vec(k, d, data)
    };
    let cfg = ZeroErConfig {
        transitivity: false,
        ..Default::default()
    };
    let mut m = GenerativeModel::new(cfg, p.cross.layout.clone());
    m.fit(&sub, None);
    let preds: Vec<bool> = (0..n)
        .map(|i| m.posterior(p.cross.features.row(i)) > 0.5)
        .collect();
    f_score(&preds, &p.labels)
}

fn main() {
    let cfg = ExperimentConfig::from_env();
    let profiles = all_profiles();
    let prepared: Vec<_> = profiles.iter().map(|p| prepare(p, &cfg)).collect();

    println!("== Figure 4(a): F1 vs regularization kappa ==\n");
    let mut rows = Vec::new();
    for (profile, p) in profiles.iter().zip(&prepared) {
        let mut row = vec![profile.notation.to_string()];
        for &k in KAPPAS {
            let c = ZeroErConfig {
                kappa: k,
                ..Default::default()
            };
            row.push(fmt_f1(zeroer_f1(p, c)));
        }
        rows.push(row);
    }
    let kappa_headers: Vec<String> = KAPPAS.iter().map(|k| format!("k={k}")).collect();
    let mut headers: Vec<&str> = vec!["Dataset"];
    headers.extend(kappa_headers.iter().map(String::as_str));
    print_table(&headers, &rows);

    println!("\n== Figure 4(b): F1 vs initialization threshold epsilon ==\n");
    let mut rows = Vec::new();
    for (profile, p) in profiles.iter().zip(&prepared) {
        let mut row = vec![profile.notation.to_string()];
        for &e in EPSILONS {
            let c = ZeroErConfig {
                init_threshold: e,
                ..Default::default()
            };
            row.push(fmt_f1(zeroer_f1(p, c)));
        }
        rows.push(row);
    }
    let eps_headers: Vec<String> = EPSILONS.iter().map(|e| format!("e={e}")).collect();
    let mut headers: Vec<&str> = vec!["Dataset"];
    headers.extend(eps_headers.iter().map(String::as_str));
    print_table(&headers, &rows);

    println!("\n== Figure 4(c): F1 vs unlabeled training-data fraction ==\n");
    let mut rows = Vec::new();
    for (profile, p) in profiles.iter().zip(&prepared) {
        let mut row = vec![profile.notation.to_string()];
        for &f in FRACTIONS {
            row.push(fmt_f1(f1_at_fraction(p, f, cfg.seed)));
        }
        rows.push(row);
    }
    let frac_headers: Vec<String> = FRACTIONS
        .iter()
        .map(|f| format!("{}%", (f * 100.0) as u32))
        .collect();
    let mut headers: Vec<&str> = vec!["Dataset"];
    headers.extend(frac_headers.iter().map(String::as_str));
    print_table(&headers, &rows);
}
