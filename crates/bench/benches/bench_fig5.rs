//! Reproduces **Figure 5**: running time per EM iteration vs amount of
//! training data — the claim is *linearity* (the per-iteration cost of
//! Eq. 3 / Eq. 8 is O(N)).
//!
//! The harness times M-step + E-step on row subsets of the largest
//! prepared candidate set and prints the ms/iteration series plus the
//! ratio to the 10 % point (should track the data fraction linearly).

use std::time::Instant;
use zeroer_bench::{prepare, print_table, ExperimentConfig};
use zeroer_core::{GenerativeModel, ZeroErConfig};
use zeroer_datagen::profiles::pub_ds;
use zeroer_linalg::Matrix;

const FRACTIONS: &[f64] = &[0.1, 0.2, 0.4, 0.6, 0.8, 1.0];
const TIMED_ITERS: usize = 5;

fn main() {
    let cfg = ExperimentConfig::from_env();
    // Pub-DS has the largest candidate set — the interesting scaling case.
    let p = prepare(&pub_ds(), &cfg);
    let x = &p.cross.features;
    let n = x.rows();
    let d = x.cols();
    println!("== Figure 5: running time per EM iteration vs data size ==");
    println!("(Pub-DS candidate set, {n} pairs x {d} features)\n");

    let mut rows = Vec::new();
    let mut base_ms = 0.0f64;
    for &frac in FRACTIONS {
        let k = ((n as f64 * frac) as usize).max(10);
        let mut data = Vec::with_capacity(k * d);
        for i in 0..k {
            data.extend_from_slice(x.row(i));
        }
        let sub = Matrix::from_vec(k, d, data);
        let mut m = GenerativeModel::new(
            ZeroErConfig {
                transitivity: false,
                ..Default::default()
            },
            p.cross.layout.clone(),
        );
        m.initialize(&sub);
        m.m_step(&sub); // warm up parameters
        let start = Instant::now();
        for _ in 0..TIMED_ITERS {
            m.m_step(&sub);
            m.e_step(&sub);
        }
        let ms = start.elapsed().as_secs_f64() * 1000.0 / TIMED_ITERS as f64;
        if frac == FRACTIONS[0] {
            base_ms = ms;
        }
        rows.push(vec![
            format!("{}%", (frac * 100.0) as u32),
            k.to_string(),
            format!("{ms:.2}"),
            format!("{:.1}x", ms / base_ms.max(1e-9)),
            format!("{:.1}x", frac / FRACTIONS[0]),
        ]);
    }
    print_table(
        &[
            "data",
            "pairs",
            "ms/iteration",
            "measured ratio",
            "linear ratio",
        ],
        &rows,
    );
    println!("\nReading: the measured ratio should track the linear ratio — the");
    println!("per-iteration cost of ZeroER's EM is O(N) (§6).");
}
