//! Snapshot lifecycle under load: what a live model swap costs and what
//! it buys.
//!
//! Sections:
//! 1. swap latency: repeated `refit()` over a populated store — the
//!    full re-fit (candidates → features → EM → snapshot swap) from the
//!    `stream.refresh.ns` registry histogram;
//! 2. resolve tail latency across a swap: a resolver fleet on the
//!    read/write split's pinned handles while the writer executes
//!    `WriteHandle::refresh` swaps mid-run — client-measured resolve
//!    p50/p99 must not fall off a cliff because a refit is in flight;
//! 3. drifted-stream F1: bootstrap on clean Rest-FZ, stream a
//!    medium-dirt tail — pairwise cluster F1 with the stale bootstrap
//!    model vs. a mid-stream refit (the refreshed model must be at
//!    least as accurate on the drifted suffix);
//! 4. publish amplification: records ingested through the write path
//!    vs. `stream.publish.ns` samples — the writer publishes once per
//!    drained batch, so the ratio must stay below one publish per
//!    record.
//!
//! Besides the human-readable report, the run writes
//! `BENCH_refresh.json` (schema `zeroer-bench-refresh-v1`, path
//! overridable via `ZEROER_BENCH_OUT`) for dashboards and the CI
//! schema check.
//!
//! Knobs: `ZEROER_SCALE` (default 0.25), `ZEROER_SEED` (default 42),
//! `ZEROER_CLIENTS` (default min(4, cores)), `ZEROER_BENCH_OUT`.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;
use zeroer_datagen::generate;
use zeroer_datagen::perturb::DirtLevel;
use zeroer_datagen::profiles::rest_fz;
use zeroer_eval::clusters::{clusters_from_pairs, pairwise_cluster_f1};
use zeroer_obs::json::Obj;
use zeroer_stream::{PipelineSnapshot, SplitPipeline, StreamOptions, StreamPipeline};
use zeroer_tabular::{Record, Table};

fn env_f64(key: &str, default: f64) -> f64 {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Bootstrap table (first 70 %) and streamed tail (last 30 %).
fn split(scale: f64, seed: u64) -> (Table, Vec<Record>) {
    let ds = generate(&rest_fz(), scale, seed);
    let (table, _) = ds.dedup_table();
    let cut = (table.len() * 7 / 10).max(4);
    let mut boot = Table::new("boot", table.schema().clone());
    for r in table.records().iter().take(cut) {
        boot.push(r.clone());
    }
    let tail: Vec<Record> = table.records()[cut..].to_vec();
    (boot, tail)
}

fn cold(snap: &PipelineSnapshot, boot: &Table) -> StreamPipeline {
    let mut p = StreamPipeline::from_snapshot(snap, StreamOptions::default().threshold)
        .expect("snapshot restores");
    p.seed_base(boot).expect("bootstrap decisions replay");
    p
}

fn percentile(sorted_ns: &[u64], p: f64) -> f64 {
    if sorted_ns.is_empty() {
        return 0.0;
    }
    let rank = (p / 100.0 * (sorted_ns.len() - 1) as f64).round() as usize;
    sorted_ns[rank.min(sorted_ns.len() - 1)] as f64
}

fn main() {
    let scale = env_f64("ZEROER_SCALE", 0.25);
    let seed = env_f64("ZEROER_SEED", 42.0) as u64;
    let cores = std::thread::available_parallelism().map_or(1, |p| p.get());
    let clients = env_f64("ZEROER_CLIENTS", cores.min(4) as f64) as usize;

    println!("== bench_refresh ==");
    let mut header = Obj::new();
    header
        .str("bench", "zeroer-bench-refresh-v1")
        .u64("cores", cores as u64)
        .f64("scale", scale)
        .u64("seed", seed)
        .u64("clients", clients as u64);
    match zeroer_obs::rss_bytes() {
        Some(rss) => header.u64("rss_bytes", rss),
        None => header.raw("rss_bytes", "null"),
    };
    let header_json = header.finish();
    println!("header: {header_json}");

    let (boot, tail) = split(scale, seed);
    let (fitted, _) =
        StreamPipeline::bootstrap(&boot, StreamOptions::default()).expect("bootstrap");
    let snap = fitted.snapshot();
    drop(fitted);
    println!(
        "dataset Rest-FZ at scale {scale}: {} bootstrap records, {} tail records\n",
        boot.len(),
        tail.len()
    );
    let mut bench_sections = Obj::new();

    // ---- Section 1: swap latency ----------------------------------
    // Refit over the same populated store several times: the store does
    // not change between rounds, so every round re-fits an identical
    // candidate set and the histogram measures pure refit + swap cost.
    const SWAP_ROUNDS: usize = 5;
    println!("== swap latency ({SWAP_ROUNDS} refits over a populated store) ==");
    let mut pipeline = cold(&snap, &boot);
    pipeline.ingest_batch(tail.clone());
    zeroer_obs::reset();
    let t = Instant::now();
    let mut last = None;
    for _ in 0..SWAP_ROUNDS {
        last = Some(pipeline.refit().expect("refit"));
    }
    let swap_secs = t.elapsed().as_secs_f64();
    let report = last.expect("at least one refit ran");
    let refresh_hist = zeroer_obs::histogram("stream.refresh.ns").snapshot();
    println!(
        "{SWAP_ROUNDS} refits over {} records / {} pairs in {swap_secs:.3} s → \
         refit p50 {:.1} ms (max {:.1} ms), {} EM iterations each, generation {}",
        report.records,
        report.pairs,
        refresh_hist.percentile(50.0) / 1e6,
        refresh_hist.max as f64 / 1e6,
        report.em_iterations,
        report.generation
    );
    let mut o = Obj::new();
    o.u64("refits", SWAP_ROUNDS as u64)
        .u64("records", report.records as u64)
        .u64("pairs", report.pairs as u64)
        .u64("em_iterations", report.em_iterations as u64)
        .u64("generation", report.generation)
        .f64("refit_p50_ns", refresh_hist.percentile(50.0))
        .f64("refit_max_ns", refresh_hist.max as f64)
        .f64("secs", swap_secs);
    bench_sections.raw("swap", &o.finish());

    // ---- Section 2: resolve tail latency across a swap ------------
    println!("\n== resolve tail latency across a swap ({clients} resolver threads) ==");
    zeroer_obs::reset();
    let mut warm = cold(&snap, &boot);
    warm.ingest_batch(tail.clone());
    let split_pipeline = SplitPipeline::with_threads(warm, cores.min(4));
    let writes = split_pipeline.write_handle();
    let stop = Arc::new(AtomicBool::new(false));
    let mut resolvers = Vec::new();
    for c in 0..clients {
        let mut handle = split_pipeline.read_handle();
        let stop = Arc::clone(&stop);
        let probes: Vec<Record> = tail
            .iter()
            .skip(c * 7 % tail.len().max(1))
            .cloned()
            .collect();
        resolvers.push(std::thread::spawn(move || {
            let mut lat = Vec::new();
            while !stop.load(Ordering::Relaxed) {
                for probe in &probes {
                    let t = Instant::now();
                    let out = handle.resolve(probe);
                    lat.push((t.elapsed().as_nanos() as u64, out.cluster.is_some()));
                    if stop.load(Ordering::Relaxed) {
                        break;
                    }
                }
                handle.refresh();
            }
            lat
        }));
    }
    const LIVE_SWAPS: usize = 3;
    let t = Instant::now();
    let mut generation = 0u64;
    for _ in 0..LIVE_SWAPS {
        generation = writes.refresh().expect("live refresh").generation;
    }
    stop.store(true, Ordering::Relaxed);
    let mut lat_ns: Vec<u64> = Vec::new();
    let mut matched = 0usize;
    for r in resolvers {
        for (ns, hit) in r.join().expect("resolver thread") {
            lat_ns.push(ns);
            matched += usize::from(hit);
        }
    }
    let race_secs = t.elapsed().as_secs_f64();
    lat_ns.sort_unstable();
    println!(
        "{} resolves ({} matched) raced {LIVE_SWAPS} live swaps (generation {generation}) \
         in {race_secs:.3} s → resolve p50 {:.1} µs / p99 {:.1} µs",
        lat_ns.len(),
        matched,
        percentile(&lat_ns, 50.0) / 1e3,
        percentile(&lat_ns, 99.0) / 1e3
    );
    let mut o = Obj::new();
    o.u64("resolves", lat_ns.len() as u64)
        .u64("matched", matched as u64)
        .u64("live_swaps", LIVE_SWAPS as u64)
        .u64("generation", generation)
        .f64("secs", race_secs)
        .f64("p50_ns", percentile(&lat_ns, 50.0))
        .f64("p99_ns", percentile(&lat_ns, 99.0));
    bench_sections.raw("resolve_under_swap", &o.finish());
    let _ = split_pipeline.shutdown();

    // ---- Section 3: drifted-stream F1 -----------------------------
    // The stream drifts: a second Rest-FZ generation with medium dirt
    // on both sides. The stale pipeline keeps scoring with the clean
    // bootstrap model; the refreshed pipeline refits mid-stream, so its
    // second half is scored by a model that has seen drifted data.
    println!("\n== drifted-stream F1 (clean bootstrap, medium-dirt stream) ==");
    let mut drift_profile = rest_fz();
    drift_profile.left_dirt = DirtLevel::medium();
    drift_profile.right_dirt = DirtLevel::medium();
    let drift_ds = generate(&drift_profile, scale, seed + 1);
    let (drift_table, drift_truth) = drift_ds.dedup_table();
    let drift_records: Vec<Record> = drift_table.records().to_vec();
    let half = drift_records.len() / 2;
    let nb = boot.len();
    let truth: Vec<(usize, usize)> = drift_truth.iter().map(|&(a, b)| (nb + a, nb + b)).collect();

    let mut stale = cold(&snap, &boot);
    stale.ingest_batch(drift_records[..half].to_vec());
    stale.ingest_batch(drift_records[half..].to_vec());
    let f1_stale = pairwise_cluster_f1(&stale.clusters(), &clusters_from_pairs(&truth)).f1();

    let mut refreshed = cold(&snap, &boot);
    refreshed.ingest_batch(drift_records[..half].to_vec());
    let divergence = refreshed.drift().divergence();
    let refit = refreshed.refit().expect("mid-stream refit");
    refreshed.ingest_batch(drift_records[half..].to_vec());
    let f1_refreshed =
        pairwise_cluster_f1(&refreshed.clusters(), &clusters_from_pairs(&truth)).f1();
    println!(
        "{} drifted records ({} truth pairs): stale F1 {f1_stale:.4} vs refreshed F1 \
         {f1_refreshed:.4} (drift divergence {divergence:.3} at the refit, {} EM iterations)",
        drift_records.len(),
        truth.len(),
        refit.em_iterations
    );
    let mut o = Obj::new();
    o.u64("drift_records", drift_records.len() as u64)
        .u64("truth_pairs", truth.len() as u64)
        .f64("divergence_at_refit", divergence)
        .f64("f1_stale", f1_stale)
        .f64("f1_refreshed", f1_refreshed);
    bench_sections.raw("drift_f1", &o.finish());

    // ---- Section 4: publish amplification -------------------------
    println!("\n== publish amplification (write path, publish-per-drain) ==");
    zeroer_obs::reset();
    let split_pipeline = SplitPipeline::with_threads(cold(&snap, &boot), cores.min(4));
    let writes = split_pipeline.write_handle();
    let t = Instant::now();
    let mut ingested = 0usize;
    for chunk in tail.chunks(32) {
        writes.ingest(chunk.to_vec()).expect("ingest");
        ingested += chunk.len();
    }
    let ingest_secs = t.elapsed().as_secs_f64();
    let publish_hist = zeroer_obs::histogram("stream.publish.ns").snapshot();
    let publishes = publish_hist.count;
    let per_record = publishes as f64 / ingested.max(1) as f64;
    println!(
        "{ingested} records ingested in {ingest_secs:.3} s → {publishes} view publications \
         ({per_record:.3} per record; publish p50 {:.1} µs)",
        publish_hist.percentile(50.0) / 1e3
    );
    let mut o = Obj::new();
    o.u64("ingested", ingested as u64)
        .u64("publishes", publishes)
        .f64("publishes_per_record", per_record)
        .f64("publish_p50_ns", publish_hist.percentile(50.0))
        .f64("secs", ingest_secs);
    bench_sections.raw("publish_amplification", &o.finish());
    let _ = split_pipeline.shutdown();

    // ---- BENCH_refresh.json ---------------------------------------
    let mut doc = Obj::new();
    doc.str("schema", "zeroer-bench-refresh-v1")
        .raw("header", &header_json)
        .raw("sections", &bench_sections.finish());
    let out_path =
        std::env::var("ZEROER_BENCH_OUT").unwrap_or_else(|_| "BENCH_refresh.json".into());
    match std::fs::write(&out_path, doc.finish() + "\n") {
        Ok(()) => println!("\nmachine-readable results written to {out_path}"),
        Err(e) => println!("\nWARNING: cannot write {out_path}: {e}"),
    }
}
