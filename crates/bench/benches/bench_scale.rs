//! Paper-scale lifecycle benchmark: the whole pipeline, end to end, at
//! each corpus scale — the tracked number behind the ROADMAP's
//! "production scale" goal.
//!
//! Per scale, one synthesized corpus (`zeroer-datagen`'s seeded
//! generator: Zipfian tokens, mixed text/numeric schema, controlled
//! duplicate rate, exact ground truth) runs the full lifecycle:
//!
//! 1. **bootstrap fit** on the first 70 % of the corpus;
//! 2. **snapshot save/load**: serialize the fitted snapshot to JSON,
//!    parse it back, restore a cold pipeline and replay the bootstrap
//!    decisions — bytes and both latencies;
//! 3. **streaming ingest** of the 30 % tail at 1/2/4 threads
//!    (records/s, speedup vs 1 thread, cluster parity across thread
//!    counts; per-record ingest p50/p99 from the thread-1 run). On a
//!    1-core machine the scaling rows are SKIPPED — marked in the JSON,
//!    with a 1-vs-4-thread determinism check run instead, same as
//!    `bench_stream` section 4;
//! 4. **pair-F1** of the fully-streamed store against the generated
//!    ground truth — accuracy at scale is a recorded number, not a
//!    fixture assertion;
//! 5. **retract** 20 % of the bootstrap records (streamed records are
//!    not persisted, so base records are the ones whose retraction
//!    survives the snapshot round-trip);
//! 6. **compact** — bytes reclaimed;
//! 7. **refresh** (`refit()` over the live store);
//! 8. **serve**: move the pipeline into a TCP server and drive client
//!    resolves — QPS and server-side resolve p50/p99.
//!
//! RSS (`obs::rss_bytes()`) is sampled after every phase and the peak
//! recorded per scale, alongside the interner and posting-list
//! footprints — the numbers the out-of-core work needs as its baseline.
//!
//! Besides the human-readable report, the run writes `BENCH_scale.json`
//! (schema `zeroer-bench-scale-v1`, path overridable via
//! `ZEROER_BENCH_OUT`) for dashboards and the CI schema check.
//!
//! Knobs: `ZEROER_SCALES` (comma-separated corpus scales, default
//! "0.05,0.25"; scale 1 ≈ 20 k records, 10 ≈ 200 k, 100 ≈ 2 M),
//! `ZEROER_SEED` (default 42), `ZEROER_CLIENTS` (default min(4,
//! cores)), `ZEROER_BENCH_OUT`.

use std::time::Instant;
use zeroer_datagen::{generate_dedup, CorpusSpec};
use zeroer_eval::clusters::{clusters_from_pairs, pairwise_cluster_f1};
use zeroer_obs::json::{Arr, Obj};
use zeroer_serve::{Client, Server};
use zeroer_stream::{PipelineSnapshot, StreamOptions, StreamPipeline};
use zeroer_tabular::{Record, Table};

fn env_f64(key: &str, default: f64) -> f64 {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn env_scales() -> Vec<f64> {
    std::env::var("ZEROER_SCALES")
        .ok()
        .map(|v| {
            v.split(',')
                .filter_map(|s| s.trim().parse().ok())
                .collect::<Vec<f64>>()
        })
        .filter(|v| !v.is_empty())
        .unwrap_or_else(|| vec![0.05, 0.25])
}

/// Tracks the high-water RSS across lifecycle phases.
struct RssPeak {
    peak: u64,
    seen: bool,
}

impl RssPeak {
    fn new() -> Self {
        RssPeak {
            peak: 0,
            seen: false,
        }
    }

    fn sample(&mut self) {
        if let Some(rss) = zeroer_obs::rss_bytes() {
            self.peak = self.peak.max(rss);
            self.seen = true;
        }
    }

    fn record(&self, o: &mut Obj) {
        if self.seen {
            o.u64("peak_rss_bytes", self.peak);
        } else {
            o.raw("peak_rss_bytes", "null");
        }
    }
}

/// Restores a cold pipeline from a snapshot and replays the bootstrap
/// decisions — the cold-start path every phase after the fit uses.
fn cold(snap: &PipelineSnapshot, boot: &Table) -> StreamPipeline {
    let mut p = StreamPipeline::from_snapshot(snap, StreamOptions::default().threshold)
        .expect("snapshot restores");
    p.seed_base(boot).expect("bootstrap decisions replay");
    p
}

/// Sorted-canonical cluster sets, for cross-thread parity checks.
fn canonical_clusters(p: &StreamPipeline) -> Vec<Vec<usize>> {
    let mut cs = p.clusters();
    for c in &mut cs {
        c.sort_unstable();
    }
    cs.sort();
    cs
}

fn run_scale(scale: f64, seed: u64, cores: usize, clients: usize) -> String {
    println!("\n==== scale {scale} ====");
    let mut section = Obj::new();
    section.f64("scale", scale);
    let mut rss = RssPeak::new();

    // ---- generate -------------------------------------------------
    let spec = CorpusSpec {
        scale,
        seed,
        ..CorpusSpec::default()
    };
    let t = Instant::now();
    let corpus = generate_dedup(&spec).expect("valid corpus spec");
    let truth_pairs = corpus.truth_pairs();
    let gen_secs = t.elapsed().as_secs_f64();
    rss.sample();
    let n = corpus.table.len();
    println!(
        "generated {n} records ({} ground-truth duplicate pairs) in {gen_secs:.3} s",
        truth_pairs.len()
    );
    let mut o = Obj::new();
    o.u64("records", n as u64)
        .u64("truth_pairs", truth_pairs.len() as u64)
        .f64("secs", gen_secs);
    section.raw("generate", &o.finish());

    // ---- bootstrap fit on the 70 % head ---------------------------
    let cut = (n * 7 / 10).max(4);
    let mut boot = Table::new("boot", corpus.table.schema().clone());
    for r in corpus.table.records().iter().take(cut) {
        boot.push(r.clone());
    }
    let tail: Vec<Record> = corpus.table.records()[cut..].to_vec();
    let t = Instant::now();
    let (fitted, _) =
        StreamPipeline::bootstrap(&boot, StreamOptions::default()).expect("bootstrap fit");
    let fit_secs = t.elapsed().as_secs_f64();
    let snap = fitted.snapshot();
    drop(fitted);
    rss.sample();
    println!(
        "bootstrap fit on {} records in {fit_secs:.3} s ({} streamed tail records)",
        boot.len(),
        tail.len()
    );
    let mut o = Obj::new();
    o.u64("records", boot.len() as u64).f64("secs", fit_secs);
    section.raw("bootstrap", &o.finish());

    // ---- snapshot save/load ---------------------------------------
    let t = Instant::now();
    let json = snap.to_json();
    let save_secs = t.elapsed().as_secs_f64();
    let t = Instant::now();
    let restored = PipelineSnapshot::from_json(&json).expect("snapshot parses back");
    let reloaded = cold(&restored, &boot);
    let load_secs = t.elapsed().as_secs_f64();
    drop(reloaded);
    rss.sample();
    println!(
        "snapshot: {} bytes, save {save_secs:.3} s / load+seed {load_secs:.3} s",
        json.len()
    );
    let mut o = Obj::new();
    o.u64("bytes", json.len() as u64)
        .f64("save_secs", save_secs)
        .f64("load_secs", load_secs);
    section.raw("snapshot", &o.finish());

    // ---- streaming ingest at 1/2/4 threads ------------------------
    // The thread-1 pipeline doubles as the lifecycle pipeline for every
    // phase after this one.
    zeroer_obs::reset();
    let t = Instant::now();
    let mut lifecycle = cold(&snap, &boot);
    lifecycle.ingest_batch(tail.clone());
    let seq_secs = t.elapsed().as_secs_f64();
    let ingest_hist = zeroer_obs::histogram("stream.ingest.ns").snapshot();
    let baseline = canonical_clusters(&lifecycle);
    let seq_rate = tail.len() as f64 / seq_secs.max(f64::MIN_POSITIVE);
    rss.sample();
    println!(
        "ingest (1 thread): {} records in {seq_secs:.3} s → {seq_rate:.0} records/s \
         (per-record p50 {:.1} µs / p99 {:.1} µs)",
        tail.len(),
        ingest_hist.percentile(50.0) / 1e3,
        ingest_hist.percentile(99.0) / 1e3
    );
    let mut ingest = Obj::new();
    ingest
        .u64("records", tail.len() as u64)
        .f64("p50_ns", ingest_hist.percentile(50.0))
        .f64("p99_ns", ingest_hist.percentile(99.0))
        .bool("skipped", cores < 2);
    let mut threads_arr = Arr::new();
    let mut row = Obj::new();
    row.u64("threads", 1)
        .f64("secs", seq_secs)
        .f64("records_per_s", seq_rate)
        .f64("speedup_vs_1", 1.0)
        .bool("cluster_parity", true);
    threads_arr.raw(&row.finish());
    if cores < 2 {
        // Same contract as bench_stream section 4: 1-core timings would
        // read as "no speedup", so mark the rows skipped and prove the
        // thread count cannot change the answer instead.
        println!(
            "SKIPPED: parallel-scaling timings need >1 core (available_parallelism = {cores}); \
             run on multi-core hardware for the speedup numbers."
        );
        let mut par = cold(&snap, &boot);
        par.ingest_batch_parallel(tail.clone(), 4);
        let parity = canonical_clusters(&par) == baseline;
        println!("determinism check (1 vs 4 threads): cluster parity {parity}");
        assert!(parity, "parallel ingest must match sequential bit-for-bit");
        let mut d = Obj::new();
        d.bool("cluster_parity", parity);
        ingest.raw("determinism_1_vs_4", &d.finish());
    } else {
        for threads in [2usize, 4] {
            let mut par = cold(&snap, &boot);
            let t = Instant::now();
            par.ingest_batch_parallel(tail.clone(), threads);
            let secs = t.elapsed().as_secs_f64();
            let parity = canonical_clusters(&par) == baseline;
            assert!(parity, "parallel ingest must match sequential bit-for-bit");
            let rate = tail.len() as f64 / secs.max(f64::MIN_POSITIVE);
            println!(
                "ingest ({threads} threads): {} records in {secs:.3} s → {rate:.0} records/s \
                 ({:.2}× vs 1 thread, cluster parity {parity})",
                tail.len(),
                seq_secs / secs.max(f64::MIN_POSITIVE)
            );
            let mut row = Obj::new();
            row.u64("threads", threads as u64)
                .f64("secs", secs)
                .f64("records_per_s", rate)
                .f64("speedup_vs_1", seq_secs / secs.max(f64::MIN_POSITIVE))
                .bool("cluster_parity", parity);
            threads_arr.raw(&row.finish());
            rss.sample();
        }
    }
    ingest.raw("threads", &threads_arr.finish());
    section.raw("ingest", &ingest.finish());

    // ---- pair-F1 vs generated ground truth ------------------------
    let truth_clusters = clusters_from_pairs(&truth_pairs);
    let f1 = pairwise_cluster_f1(&lifecycle.clusters(), &truth_clusters).f1();
    println!("pair-F1 vs ground truth: {f1:.4}");
    let mut o = Obj::new();
    o.f64("pair_f1", f1)
        .u64("truth_pairs", truth_pairs.len() as u64);
    section.raw("accuracy", &o.finish());

    // ---- retract 20 % of the bootstrap records --------------------
    let retract_ids: Vec<usize> = (0..boot.len()).step_by(5).collect();
    let t = Instant::now();
    let reports = lifecycle.retract_batch(&retract_ids).expect("retract");
    let retract_secs = t.elapsed().as_secs_f64();
    let postings: usize = reports.iter().map(|r| r.postings_tombstoned).sum();
    rss.sample();
    println!(
        "retracted {} base records in {retract_secs:.3} s ({postings} postings tombstoned)",
        reports.len()
    );
    let mut o = Obj::new();
    o.u64("records", reports.len() as u64)
        .u64("postings_tombstoned", postings as u64)
        .f64("secs", retract_secs);
    section.raw("retract", &o.finish());

    // ---- compact --------------------------------------------------
    let t = Instant::now();
    let report = lifecycle.compact();
    let compact_secs = t.elapsed().as_secs_f64();
    rss.sample();
    println!(
        "compact in {compact_secs:.3} s: {} bytes reclaimed ({} postings dropped)",
        report.bytes_reclaimed(),
        report.index.postings_dropped
    );
    let mut o = Obj::new();
    o.u64("bytes_reclaimed", report.bytes_reclaimed() as u64)
        .u64("postings_dropped", report.index.postings_dropped as u64)
        .f64("secs", compact_secs);
    section.raw("compact", &o.finish());

    // ---- refresh (refit over the live store) ----------------------
    let t = Instant::now();
    let refit = lifecycle.refit().expect("refit");
    let refresh_secs = t.elapsed().as_secs_f64();
    rss.sample();
    println!(
        "refresh in {refresh_secs:.3} s: re-fitted on {} live records / {} pairs \
         ({} EM iterations)",
        refit.records, refit.pairs, refit.em_iterations
    );
    let mut o = Obj::new();
    o.u64("records", refit.records as u64)
        .u64("pairs", refit.pairs as u64)
        .u64("em_iterations", refit.em_iterations as u64)
        .f64("secs", refresh_secs);
    section.raw("refresh", &o.finish());

    // ---- footprints (post-lifecycle store state) ------------------
    let stats = lifecycle.stats();
    let postings_live = stats.index.token.postings + stats.index.qgram.postings;
    let mut o = Obj::new();
    o.u64("interned_tokens", stats.interned_tokens as u64)
        .u64("interned_bytes", stats.interned_bytes as u64)
        .u64("postings", postings_live as u64)
        .u64("live_records", stats.live_records as u64)
        .u64("retracted_records", stats.retracted_records as u64);
    section.raw("footprint", &o.finish());
    println!(
        "footprint: {} interned tokens ({} bytes), {postings_live} live postings, \
         {} live / {} retracted records",
        stats.interned_tokens, stats.interned_bytes, stats.live_records, stats.retracted_records
    );

    // ---- serve resolves -------------------------------------------
    zeroer_obs::reset();
    let server = Server::bind(lifecycle, "127.0.0.1:0", cores.min(4)).expect("bind server");
    let addr = server.local_addr();
    let server_thread = std::thread::spawn(move || server.run());
    let ops_per_client = (tail.len().min(500) / clients.max(1)).max(32);
    let t = Instant::now();
    let mut resolver_threads = Vec::new();
    for c in 0..clients {
        let probes: Vec<Record> = tail
            .iter()
            .skip(c * 13 % tail.len().max(1))
            .cloned()
            .collect();
        resolver_threads.push(std::thread::spawn(move || {
            let mut client = Client::connect(addr).expect("connect resolver");
            let mut matched = 0usize;
            for i in 0..ops_per_client {
                let probe = &probes[i % probes.len()];
                let out = client.resolve(&probe.values).expect("resolve");
                matched += usize::from(out.cluster.is_some());
            }
            matched
        }));
    }
    let mut matched = 0usize;
    for th in resolver_threads {
        matched += th.join().expect("resolver thread");
    }
    let serve_secs = t.elapsed().as_secs_f64();
    let mut admin = Client::connect(addr).expect("connect admin");
    admin.admin("shutdown").expect("shutdown");
    let drained = server_thread.join().expect("server thread");
    drop(drained);
    rss.sample();
    let resolves = clients * ops_per_client;
    let resolve_hist = zeroer_obs::histogram("serve.resolve.ns").snapshot();
    println!(
        "serve: {resolves} resolves ({matched} matched) in {serve_secs:.3} s → {:.0} QPS \
         (resolve p50 {:.1} µs / p99 {:.1} µs)",
        resolves as f64 / serve_secs.max(f64::MIN_POSITIVE),
        resolve_hist.percentile(50.0) / 1e3,
        resolve_hist.percentile(99.0) / 1e3
    );
    let mut o = Obj::new();
    o.u64("resolves", resolves as u64)
        .u64("matched", matched as u64)
        .f64("secs", serve_secs)
        .f64("qps", resolves as f64 / serve_secs.max(f64::MIN_POSITIVE))
        .f64("p50_ns", resolve_hist.percentile(50.0))
        .f64("p99_ns", resolve_hist.percentile(99.0));
    section.raw("serve", &o.finish());

    rss.record(&mut section);
    section.finish()
}

fn main() {
    let scales = env_scales();
    let seed = env_f64("ZEROER_SEED", 42.0) as u64;
    // Validate every scale before running (or writing) anything: a
    // degenerate ZEROER_SCALES entry must be a clean error, not a panic
    // three phases in with a partial BENCH_scale.json on disk.
    for &s in &scales {
        let spec = CorpusSpec {
            scale: s,
            seed,
            ..CorpusSpec::default()
        };
        if let Err(e) = spec.validate() {
            eprintln!("bench_scale: invalid scale {s}: {e}");
            std::process::exit(1);
        }
    }
    let cores = std::thread::available_parallelism().map_or(1, |p| p.get());
    let clients = env_f64("ZEROER_CLIENTS", cores.min(4) as f64) as usize;

    println!("== bench_scale ==");
    let mut header = Obj::new();
    header
        .str("bench", "zeroer-bench-scale-v1")
        .u64("cores", cores as u64)
        .u64("seed", seed)
        .u64("clients", clients as u64);
    let mut scales_arr = Arr::new();
    for &s in &scales {
        scales_arr.raw(&zeroer_obs::json::f64_value(s));
    }
    header.raw("scales", &scales_arr.finish());
    match zeroer_obs::rss_bytes() {
        Some(rss) => header.u64("rss_bytes", rss),
        None => header.raw("rss_bytes", "null"),
    };
    let header_json = header.finish();
    println!("header: {header_json}");

    let mut sections = Arr::new();
    for &scale in &scales {
        sections.raw(&run_scale(scale, seed, cores, clients));
    }

    let mut doc = Obj::new();
    doc.str("schema", "zeroer-bench-scale-v1")
        .raw("header", &header_json)
        .raw("scales", &sections.finish());
    let out_path = std::env::var("ZEROER_BENCH_OUT").unwrap_or_else(|_| "BENCH_scale.json".into());
    match std::fs::write(&out_path, doc.finish() + "\n") {
        Ok(()) => println!("\nmachine-readable results written to {out_path}"),
        Err(e) => println!("\nWARNING: cannot write {out_path}: {e}"),
    }
}
