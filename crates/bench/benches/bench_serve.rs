//! Mixed read/write load against a live `zeroer serve` instance over
//! real localhost TCP.
//!
//! Sections:
//! 1. resolve-only: N concurrent protocol clients hammering `resolve`
//!    against a bootstrap-seeded server — sustained QPS plus server-side
//!    p50/p99 per-request latency from the `serve.resolve.ns` registry
//!    histogram;
//! 2. mixed read/write: the same resolver fleet while a writer client
//!    streams ingest batches through the write path — resolve QPS and
//!    tail latency under write load, ingest throughput, and the
//!    read-view publication cost (`stream.publish.ns`).
//!
//! Besides the human-readable report, the run writes `BENCH_serve.json`
//! (schema `zeroer-bench-serve-v1`, path overridable via
//! `ZEROER_BENCH_OUT`) for dashboards and the CI schema check —
//! modeled on `BENCH_stream.json`.
//!
//! Knobs: `ZEROER_SCALE` (default 0.25), `ZEROER_SEED` (default 42),
//! `ZEROER_CLIENTS` (default min(4, cores)), `ZEROER_OPS` (default
//! 1000 resolves per client per section), `ZEROER_BENCH_OUT`.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;
use zeroer_datagen::generate;
use zeroer_datagen::profiles::rest_fz;
use zeroer_obs::json::Obj;
use zeroer_serve::{Client, Server};
use zeroer_stream::{StreamOptions, StreamPipeline};
use zeroer_tabular::{Record, Table};

fn env_f64(key: &str, default: f64) -> f64 {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Bootstrap table (first 70 %) and streamed tail (last 30 %).
fn split(scale: f64, seed: u64) -> (Table, Vec<Record>) {
    let ds = generate(&rest_fz(), scale, seed);
    let (table, _) = ds.dedup_table();
    let cut = (table.len() * 7 / 10).max(4);
    let mut boot = Table::new("boot", table.schema().clone());
    for r in table.records().iter().take(cut) {
        boot.push(r.clone());
    }
    let tail: Vec<Record> = table.records()[cut..].to_vec();
    (boot, tail)
}

/// Runs `clients` resolver threads, each opening its own connection and
/// resolving `ops` probes; returns (wall seconds, total resolves,
/// resolves that matched an entity).
fn resolver_fleet(
    addr: std::net::SocketAddr,
    clients: usize,
    ops: usize,
    probes: &[Record],
) -> (f64, usize, usize) {
    let t = Instant::now();
    let mut threads = Vec::new();
    for c in 0..clients {
        let probes = probes.to_vec();
        threads.push(std::thread::spawn(move || {
            let mut client = Client::connect(addr).expect("connect resolver client");
            let mut matched = 0usize;
            for i in 0..ops {
                let probe = &probes[(c * 31 + i) % probes.len()];
                let out = client.resolve(&probe.values).expect("resolve");
                matched += usize::from(out.cluster.is_some());
            }
            matched
        }));
    }
    let mut matched = 0usize;
    for t in threads {
        matched += t.join().expect("resolver thread");
    }
    (t.elapsed().as_secs_f64(), clients * ops, matched)
}

fn section_json(secs: f64, ops: usize, matched: usize) -> Obj {
    let resolve_hist = zeroer_obs::histogram("serve.resolve.ns").snapshot();
    let mut o = Obj::new();
    o.u64("resolves", ops as u64)
        .u64("matched", matched as u64)
        .f64("secs", secs)
        .f64("qps", ops as f64 / secs.max(f64::MIN_POSITIVE))
        .f64("p50_ns", resolve_hist.percentile(50.0))
        .f64("p99_ns", resolve_hist.percentile(99.0));
    o
}

fn print_section(label: &str, secs: f64, ops: usize, matched: usize) {
    let resolve_hist = zeroer_obs::histogram("serve.resolve.ns").snapshot();
    println!(
        "{label}: {ops} resolves in {secs:.3} s → {:.0} QPS ({matched} matched); \
         server-side resolve p50 {:.1} µs / p99 {:.1} µs",
        ops as f64 / secs.max(f64::MIN_POSITIVE),
        resolve_hist.percentile(50.0) / 1e3,
        resolve_hist.percentile(99.0) / 1e3
    );
}

fn main() {
    let scale = env_f64("ZEROER_SCALE", 0.25);
    let seed = env_f64("ZEROER_SEED", 42.0) as u64;
    let cores = std::thread::available_parallelism().map_or(1, |p| p.get());
    let clients = env_f64("ZEROER_CLIENTS", cores.min(4) as f64) as usize;
    let ops = env_f64("ZEROER_OPS", 1000.0) as usize;

    println!("== bench_serve ==");
    let mut header = Obj::new();
    header
        .str("bench", "zeroer-bench-serve-v1")
        .u64("cores", cores as u64)
        .f64("scale", scale)
        .u64("seed", seed)
        .u64("clients", clients as u64)
        .u64("ops_per_client", ops as u64);
    match zeroer_obs::rss_bytes() {
        Some(rss) => header.u64("rss_bytes", rss),
        None => header.raw("rss_bytes", "null"),
    };
    let header_json = header.finish();
    println!("header: {header_json}");

    let (boot, tail) = split(scale, seed);
    let t0 = Instant::now();
    let (fitted, _) =
        StreamPipeline::bootstrap(&boot, StreamOptions::default()).expect("bootstrap");
    let snap = fitted.snapshot();
    drop(fitted);
    let mut pipeline = StreamPipeline::from_snapshot(&snap, StreamOptions::default().threshold)
        .expect("snapshot restores");
    pipeline
        .seed_base(&boot)
        .expect("bootstrap decisions replay");
    println!(
        "dataset Rest-FZ at scale {scale}: {} bootstrap records, {} tail records \
         (bootstrap + restore: {:.3} s)\n",
        boot.len(),
        tail.len(),
        t0.elapsed().as_secs_f64()
    );

    let server = Server::bind(pipeline, "127.0.0.1:0", cores.min(4)).expect("bind");
    let addr = server.local_addr();
    let server_thread = std::thread::spawn(move || server.run());
    let mut bench_sections = Obj::new();

    // ---- Section 1: resolve-only ----------------------------------
    println!("== resolve-only ({clients} clients × {ops} resolves) ==");
    zeroer_obs::reset();
    let (secs, total, matched) = resolver_fleet(addr, clients, ops, &tail);
    print_section("resolve-only", secs, total, matched);
    bench_sections.raw("resolve_only", &section_json(secs, total, matched).finish());

    // ---- Section 2: mixed read/write ------------------------------
    // A writer client streams the tail in batches (re-ingesting it in
    // rounds until the resolvers finish), so every resolve races real
    // admissions, applies and view publications.
    println!("\n== mixed read/write ({clients} resolver clients + 1 ingest writer) ==");
    zeroer_obs::reset();
    let stop = Arc::new(AtomicBool::new(false));
    let writer = {
        let stop = Arc::clone(&stop);
        let tail = tail.clone();
        std::thread::spawn(move || {
            let mut client = Client::connect(addr).expect("connect writer client");
            let mut ingested = 0usize;
            while !stop.load(Ordering::Relaxed) {
                for chunk in tail.chunks(64) {
                    client.ingest(chunk).expect("ingest");
                    ingested += chunk.len();
                    if stop.load(Ordering::Relaxed) {
                        break;
                    }
                }
            }
            ingested
        })
    };
    let (mixed_secs, mixed_total, mixed_matched) = resolver_fleet(addr, clients, ops, &tail);
    stop.store(true, Ordering::Relaxed);
    let ingested = writer.join().expect("writer thread");
    print_section("mixed", mixed_secs, mixed_total, mixed_matched);
    let publish_hist = zeroer_obs::histogram("stream.publish.ns").snapshot();
    let admit_hist = zeroer_obs::histogram("stream.admit.batch_records").snapshot();
    println!(
        "writer: {ingested} records ingested → {:.0} records/s; view publication p50 {:.1} µs \
         / p99 {:.1} µs; admitted micro-batch p50 {:.0} records",
        ingested as f64 / mixed_secs.max(f64::MIN_POSITIVE),
        publish_hist.percentile(50.0) / 1e3,
        publish_hist.percentile(99.0) / 1e3,
        admit_hist.percentile(50.0)
    );
    let mut o = section_json(mixed_secs, mixed_total, mixed_matched);
    o.u64("ingested", ingested as u64)
        .f64(
            "ingest_records_per_s",
            ingested as f64 / mixed_secs.max(f64::MIN_POSITIVE),
        )
        .f64("publish_p50_ns", publish_hist.percentile(50.0))
        .f64("publish_p99_ns", publish_hist.percentile(99.0));
    bench_sections.raw("mixed", &o.finish());

    // ---- Shutdown + BENCH_serve.json ------------------------------
    let mut admin = Client::connect(addr).expect("connect admin client");
    admin.admin("shutdown").expect("shutdown");
    let drained = server_thread.join().expect("server thread");
    println!(
        "\nserver drained: {} records, {} clusters",
        drained.len(),
        drained.clusters().len()
    );

    let mut doc = Obj::new();
    doc.str("schema", "zeroer-bench-serve-v1")
        .raw("header", &header_json)
        .raw("sections", &bench_sections.finish());
    let out_path = std::env::var("ZEROER_BENCH_OUT").unwrap_or_else(|_| "BENCH_serve.json".into());
    match std::fs::write(&out_path, doc.finish() + "\n") {
        Ok(()) => println!("machine-readable results written to {out_path}"),
        Err(e) => println!("WARNING: cannot write {out_path}: {e}"),
    }
}
