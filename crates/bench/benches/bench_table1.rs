//! Reproduces **Table 1**: dataset characteristics.
//!
//! Prints the paper's statistics (at scale 1.0) next to the generated
//! statistics at the configured `ZEROER_SCALE`, plus the candidate-set
//! size and class imbalance after blocking — the quantities §4 and §7
//! reason about.

use zeroer_bench::{prepare, print_table, ExperimentConfig};
use zeroer_datagen::all_profiles;

fn main() {
    let cfg = ExperimentConfig::from_env();
    println!("== Table 1: dataset characteristics ==");
    println!(
        "(paper counts at scale 1.0; generated at scale {})\n",
        cfg.scale
    );
    let mut rows = Vec::new();
    for profile in all_profiles() {
        let p = prepare(&profile, &cfg);
        let imb = p.ds.imbalance(&p.cross.pairs);
        rows.push(vec![
            profile.notation.to_string(),
            format!("{} - {}", profile.n_left, profile.n_right),
            profile.n_matches.to_string(),
            profile.n_attrs.to_string(),
            format!("{} - {}", p.ds.left.len(), p.ds.right.len()),
            p.ds.matches.len().to_string(),
            p.n_pairs().to_string(),
            format!("{imb:.0}:1"),
            format!("{:.2}", p.blocking_recall),
        ]);
    }
    print_table(
        &[
            "Dataset",
            "#Tuples (paper)",
            "#Matches",
            "#Attr",
            "#Tuples (gen)",
            "#Matches (gen)",
            "|Cs|",
            "Imbalance",
            "Blk recall",
        ],
        &rows,
    );
}
