//! Reproduces **Table 2**: F-score of ZeroER vs four unsupervised and
//! three supervised baselines on all six datasets.
//!
//! Expected shape (paper §7.2): ZeroER dominates every unsupervised
//! baseline; plain k-means only works on easy datasets; GMM and ECM are
//! not competitive; ZeroER is comparable to the tuned supervised methods
//! (RF/LR/MLP trained on 50 % of labeled pairs with oversampling and
//! 5-fold CV) and the product datasets are hard for everyone (F ≈ 0.4–0.5).

use std::time::Instant;
use zeroer_baselines::{EcmClassifier, GaussianMixture, KMeans};
use zeroer_bench::table::fmt_f1;
use zeroer_bench::{
    prepare, print_table, supervised_f1, unsupervised_f1, zeroer_f1, ExperimentConfig,
    SupervisedKind,
};
use zeroer_core::ZeroErConfig;
use zeroer_datagen::all_profiles;

fn main() {
    let cfg = ExperimentConfig::from_env();
    println!("== Table 2: F-score for all methods ==");
    println!(
        "(scale {}, supervised averaged over {} runs; paper values in EXPERIMENTS.md)\n",
        cfg.scale, cfg.runs
    );
    let mut rows = Vec::new();
    for profile in all_profiles() {
        let start = Instant::now();
        let p = prepare(&profile, &cfg);
        let zeroer = zeroer_f1(&p, ZeroErConfig::default());
        let ecm = unsupervised_f1(&p, &mut EcmClassifier::default());
        let km_rl = unsupervised_f1(&p, &mut KMeans::class_weighted(cfg.seed));
        let km_sk = unsupervised_f1(&p, &mut KMeans::standard(cfg.seed));
        let gmm = unsupervised_f1(&p, &mut GaussianMixture::default());
        let rf = supervised_f1(&p, SupervisedKind::Rf, &cfg);
        let lr = supervised_f1(&p, SupervisedKind::Lr, &cfg);
        let mlp = supervised_f1(&p, SupervisedKind::Mlp, &cfg);
        rows.push(vec![
            profile.notation.to_string(),
            fmt_f1(zeroer),
            fmt_f1(ecm),
            fmt_f1(km_rl),
            fmt_f1(km_sk),
            fmt_f1(gmm),
            fmt_f1(rf),
            fmt_f1(lr),
            fmt_f1(mlp),
            format!("{:.1}s", start.elapsed().as_secs_f64()),
        ]);
    }
    print_table(
        &[
            "Dataset", "ZeroER", "ECM", "kM(RL)", "kM(SK)", "GMM", "RF", "LR", "MLP", "time",
        ],
        &rows,
    );
}
