//! Reproduces **Table 3**: how many labeled training pairs each
//! supervised baseline needs to match ZeroER's F-score.
//!
//! For each dataset the harness measures ZeroER's unsupervised F-score,
//! then sweeps the supervised training fraction upward until the test-set
//! F-score reaches that target. Reported: the percentage and the absolute
//! number of labeled pairs (the paper's "labeling effort saved" framing —
//! values of 100 % mean even the full training split only just matches
//! ZeroER, or never does).

use zeroer_bench::matchers::supervised_f1_once;
use zeroer_bench::table::fmt_f1;
use zeroer_bench::{prepare, print_table, zeroer_f1, ExperimentConfig, SupervisedKind};
use zeroer_core::ZeroErConfig;
use zeroer_datagen::all_profiles;

/// Training fractions swept, smallest first (the paper's table spans
/// 0.2 % – 100 % of the candidate pairs).
const FRACTIONS: &[f64] = &[0.002, 0.005, 0.01, 0.02, 0.05, 0.1, 0.2, 0.35, 0.5];

fn main() {
    let cfg = ExperimentConfig::from_env();
    println!("== Table 3: labeled pairs needed to match ZeroER ==");
    println!(
        "(scale {}, {} run(s) per point; 100% = needs every available label)\n",
        cfg.scale, cfg.runs
    );
    let mut rows = Vec::new();
    for profile in all_profiles() {
        let p = prepare(&profile, &cfg);
        let target = zeroer_f1(&p, ZeroErConfig::default());
        let n = p.n_pairs();
        let mut row = vec![profile.notation.to_string(), fmt_f1(target)];
        for kind in [SupervisedKind::Lr, SupervisedKind::Rf, SupervisedKind::Mlp] {
            let mut found: Option<f64> = None;
            for &frac in FRACTIONS {
                let mean: f64 = (0..cfg.runs)
                    .map(|r| {
                        supervised_f1_once(
                            &p.cross.features,
                            &p.labels,
                            kind,
                            frac,
                            cfg.seed + r as u64,
                        )
                    })
                    .sum::<f64>()
                    / cfg.runs as f64;
                if mean >= target - 5e-3 {
                    found = Some(frac);
                    break;
                }
            }
            match found {
                Some(frac) => {
                    row.push(format!("{:.1}%", frac * 100.0));
                    row.push(format!("{}", (frac * n as f64).round() as usize));
                }
                None => {
                    row.push("100%".to_string());
                    row.push(n.to_string());
                }
            }
        }
        rows.push(row);
    }
    print_table(
        &[
            "Dataset",
            "ZeroER F",
            "LR Pct",
            "LR Pairs",
            "RF Pct",
            "RF Pairs",
            "MLP Pct",
            "MLP Pairs",
        ],
        &rows,
    );
}
