//! Reproduces **Table 4**: the ablation grid.
//!
//! Variants: three feature-dependence structures (Full / Independent /
//! Grouped) × three regularization schemes (none / Tikhonov / Adaptive),
//! plus G+A+P (shared Pearson correlation) and the full system G+A+P+T
//! (transitivity). Partial variants use κ = 0.6 as in §7.3; the full
//! system uses κ = 0.15.
//!
//! Expected shape: without regularization the singularity problem makes
//! Full/Grouped erratic while Independent is the most stable; with
//! regularization Grouped wins; Adaptive beats Tikhonov on the harder
//! datasets; P and T add further gains, and the full system is the best
//! column on every dataset.

use zeroer_bench::table::fmt_f1;
use zeroer_bench::{prepare, print_table, zeroer_f1, ExperimentConfig};
use zeroer_core::{
    FeatureDependence::{Full, Grouped, Independent},
    GenerativeModel,
    Regularization::{Adaptive, None as NoReg, Tikhonov},
    ZeroErConfig,
};
use zeroer_datagen::all_profiles;
use zeroer_eval::metrics::f_score;

fn main() {
    let cfg = ExperimentConfig::from_env();
    println!("== Table 4: ablation analysis ==");
    println!(
        "(scale {}; partial variants use kappa = 0.6, full system 0.15)\n",
        cfg.scale
    );

    let variants: Vec<(&str, ZeroErConfig)> = vec![
        ("Full", ZeroErConfig::ablation(Full, NoReg)),
        ("Indep", ZeroErConfig::ablation(Independent, NoReg)),
        ("Group", ZeroErConfig::ablation(Grouped, NoReg)),
        ("F-Tik", ZeroErConfig::ablation(Full, Tikhonov)),
        ("I-Tik", ZeroErConfig::ablation(Independent, Tikhonov)),
        ("G-Tik", ZeroErConfig::ablation(Grouped, Tikhonov)),
        ("F-Adp", ZeroErConfig::ablation(Full, Adaptive)),
        ("I-Adp", ZeroErConfig::ablation(Independent, Adaptive)),
        ("G-Adp", ZeroErConfig::ablation(Grouped, Adaptive)),
        ("G+A+P", ZeroErConfig::gap()),
    ];

    let mut rows = Vec::new();
    for profile in all_profiles() {
        let p = prepare(&profile, &cfg);
        let mut row = vec![profile.notation.to_string()];
        for (_, vc) in &variants {
            // Non-transitive variants fit a single generative model on the
            // cross features (the paper's ablation setting).
            let mut model = GenerativeModel::new(vc.clone(), p.cross.layout.clone());
            model.fit(&p.cross.features, None);
            row.push(fmt_f1(f_score(&model.labels(), &p.labels)));
        }
        // The full system (G+A+P+T) runs the three-model linkage trainer.
        row.push(fmt_f1(zeroer_f1(&p, ZeroErConfig::default())));
        rows.push(row);
    }

    let mut headers: Vec<&str> = vec!["Dataset"];
    headers.extend(variants.iter().map(|(n, _)| *n));
    headers.push("G+A+P+T");
    print_table(&headers, &rows);
}
