//! Criterion micro-benchmarks for the performance-critical kernels:
//!
//! * `similarity/*` — per-measure throughput on realistic strings;
//! * `em_iteration/*` — one EM iteration (M + E step) at several sizes
//!   (the Figure 5 kernel);
//! * `estep_covariance/*` — E-step cost under the three dependence
//!   structures (the §3.2 efficiency argument: grouped ≈ independent ≪
//!   full);
//! * `feature_row` — one pair's full feature-vector generation;
//! * `blocking` — token blocking over a small table.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use zeroer_blocking::{Blocker, PairMode, TokenBlocker};
use zeroer_core::{FeatureDependence, GenerativeModel, Regularization, ZeroErConfig};
use zeroer_datagen::generate;
use zeroer_datagen::profiles::rest_fz;
use zeroer_features::PairFeaturizer;
use zeroer_linalg::block::GroupLayout;
use zeroer_linalg::Matrix;
use zeroer_textsim::{jaccard, jaro_winkler, levenshtein, monge_elkan, qgrams, words, Interner};

fn synthetic(n: usize, sizes: &[usize], seed: u64) -> Matrix {
    let d: usize = sizes.iter().sum();
    let mut rng = StdRng::seed_from_u64(seed);
    let data: Vec<f64> = (0..n * d)
        .map(|i| {
            if (i / d).is_multiple_of(10) {
                rng.gen_range(0.8..1.0)
            } else {
                rng.gen_range(0.0..0.3)
            }
        })
        .collect();
    Matrix::from_vec(n, d, data)
}

fn bench_similarity(c: &mut Criterion) {
    let a = "efficient query processing in distributed database systems";
    let b = "eficient query procesing for distributed data systems";
    let mut g = c.benchmark_group("similarity");
    g.bench_function("levenshtein", |bch| {
        bch.iter(|| levenshtein(black_box(a), black_box(b)))
    });
    g.bench_function("jaro_winkler", |bch| {
        bch.iter(|| jaro_winkler(black_box(a), black_box(b)))
    });
    g.bench_function("jaccard_qgm3", |bch| {
        let mut it = Interner::new();
        let (ta, tb) = (qgrams(&mut it, a, 3), qgrams(&mut it, b, 3));
        bch.iter(|| jaccard(black_box(&ta), black_box(&tb)))
    });
    g.bench_function("monge_elkan", |bch| {
        let mut it = Interner::new();
        let (wa, wb) = (words(&mut it, a), words(&mut it, b));
        bch.iter(|| monge_elkan(black_box(&it), black_box(&wa), black_box(&wb)))
    });
    g.finish();
}

fn bench_em_iteration(c: &mut Criterion) {
    let mut g = c.benchmark_group("em_iteration");
    for &n in &[1_000usize, 5_000, 20_000] {
        let x = synthetic(n, &[5, 5, 3, 3, 3, 3], 1);
        let layout = GroupLayout::from_sizes(&[5, 5, 3, 3, 3, 3]);
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |bch, _| {
            let mut m = GenerativeModel::new(
                ZeroErConfig {
                    transitivity: false,
                    ..Default::default()
                },
                layout.clone(),
            );
            m.initialize(&x);
            m.m_step(&x);
            bch.iter(|| {
                m.m_step(&x);
                black_box(m.e_step(&x));
            });
        });
    }
    g.finish();
}

fn bench_estep_covariance(c: &mut Criterion) {
    let mut g = c.benchmark_group("estep_covariance");
    let sizes = [4usize; 6]; // 24 features in 6 groups
    let x = synthetic(5_000, &sizes, 2);
    let layout = GroupLayout::from_sizes(&sizes);
    for (name, dep) in [
        ("full", FeatureDependence::Full),
        ("grouped", FeatureDependence::Grouped),
        ("independent", FeatureDependence::Independent),
    ] {
        g.bench_function(name, |bch| {
            let cfg = ZeroErConfig {
                feature_dependence: dep,
                regularization: Regularization::Adaptive,
                transitivity: false,
                shared_correlation: false,
                ..Default::default()
            };
            let mut m = GenerativeModel::new(cfg, layout.clone());
            m.initialize(&x);
            m.m_step(&x);
            bch.iter(|| black_box(m.e_step(&x)));
        });
    }
    g.finish();
}

fn bench_feature_row(c: &mut Criterion) {
    let ds = generate(&rest_fz(), 0.1, 3);
    let fz = PairFeaturizer::new(&ds.left, &ds.right);
    let pairs: Vec<(usize, usize)> = (0..ds.left.len().min(ds.right.len()))
        .map(|i| (i, i))
        .collect();
    c.bench_function("feature_rows_per_pair", |bch| {
        bch.iter(|| black_box(fz.featurize(black_box(&pairs))));
    });
}

fn bench_blocking(c: &mut Criterion) {
    let ds = generate(&rest_fz(), 0.25, 4);
    c.bench_function("token_blocking", |bch| {
        let blocker = TokenBlocker::new(0);
        bch.iter(|| black_box(blocker.candidates(&ds.left, &ds.right, PairMode::Cross)));
    });
}

criterion_group!(
    benches,
    bench_similarity,
    bench_em_iteration,
    bench_estep_covariance,
    bench_feature_row,
    bench_blocking
);
criterion_main!(benches);
