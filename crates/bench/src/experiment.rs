//! The shared dataset → blocking → features pipeline every experiment
//! harness builds on.

use zeroer_blocking::{Blocker, PairMode, QgramBlocker, TokenBlocker, UnionBlocker};
use zeroer_core::LinkageTask;
use zeroer_datagen::{generate, DatasetProfile, GeneratedDataset};
use zeroer_features::PairFeaturizer;

/// Global experiment knobs, read once from the environment.
#[derive(Debug, Clone, Copy)]
pub struct ExperimentConfig {
    /// Dataset scale in `(0, 1]` (`ZEROER_SCALE`, default 0.08).
    pub scale: f64,
    /// Supervised-protocol repetitions (`ZEROER_RUNS`, default 2; the
    /// paper averages 10).
    pub runs: usize,
    /// Base RNG seed (`ZEROER_SEED`, default 42).
    pub seed: u64,
}

impl ExperimentConfig {
    /// Reads the knobs from the environment.
    pub fn from_env() -> Self {
        let parse = |var: &str, default: f64| {
            std::env::var(var)
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(default)
        };
        Self {
            scale: parse("ZEROER_SCALE", 0.08).clamp(1e-3, 1.0),
            runs: parse("ZEROER_RUNS", 2.0).max(1.0) as usize,
            seed: parse("ZEROER_SEED", 42.0) as u64,
        }
    }
}

/// Per-dataset blocking parameters: how many shared title tokens a
/// candidate needs, cross-table and within-table, plus a dataset-specific
/// scale multiplier for the oversized Pub-DS right table.
#[derive(Debug, Clone, Copy)]
pub struct BlockingRecipe {
    /// Attribute index to block on (always the name/title here).
    pub attr: usize,
    /// Overlap floor for cross-table candidates.
    pub cross_overlap: usize,
    /// Overlap floor for within-table candidates (record-linkage legs).
    pub dedup_overlap: usize,
    /// Extra scale factor applied to this dataset only.
    pub scale_mult: f64,
}

/// The blocking recipe per paper dataset. Multi-word-title datasets get
/// overlap ≥ 2 (single shared words prune nothing there); Pub-DS
/// additionally runs at half scale because its right table is 64k rows at
/// scale 1.
pub fn recipe_for(notation: &str) -> BlockingRecipe {
    match notation {
        "Pub-DA" => BlockingRecipe {
            attr: 0,
            cross_overlap: 2,
            dedup_overlap: 3,
            scale_mult: 1.0,
        },
        "Pub-DS" => BlockingRecipe {
            attr: 0,
            cross_overlap: 2,
            dedup_overlap: 3,
            scale_mult: 0.5,
        },
        // The two small benchmarks get a scale boost so the scaled-down
        // default still leaves enough matches for stable supervised CV.
        "Rest-FZ" => BlockingRecipe {
            attr: 0,
            cross_overlap: 1,
            dedup_overlap: 1,
            scale_mult: 3.0,
        },
        "Mv-RI" => BlockingRecipe {
            attr: 0,
            cross_overlap: 1,
            dedup_overlap: 1,
            scale_mult: 2.0,
        },
        _ => BlockingRecipe {
            attr: 0,
            cross_overlap: 1,
            dedup_overlap: 1,
            scale_mult: 1.0,
        },
    }
}

/// A fully prepared experiment: generated data, candidate sets, normalized
/// features, ground-truth labels.
pub struct Prepared {
    /// The generated benchmark.
    pub ds: GeneratedDataset,
    /// Cross-table leg (the one that is evaluated).
    pub cross: LinkageTask,
    /// Within-left leg (for transitivity).
    pub left: LinkageTask,
    /// Within-right leg (for transitivity).
    pub right: LinkageTask,
    /// Ground-truth labels for the cross pairs.
    pub labels: Vec<bool>,
    /// Blocking recall: fraction of true matches surviving blocking.
    pub blocking_recall: f64,
}

impl Prepared {
    /// Number of cross candidate pairs.
    pub fn n_pairs(&self) -> usize {
        self.cross.pairs.len()
    }

    /// Number of true matches among the candidates.
    pub fn n_matches(&self) -> usize {
        self.labels.iter().filter(|&&l| l).count()
    }
}

/// Runs the full preparation pipeline for one profile.
pub fn prepare(profile: &DatasetProfile, cfg: &ExperimentConfig) -> Prepared {
    let recipe = recipe_for(profile.notation);
    let scale = (cfg.scale * recipe.scale_mult).clamp(1e-3, 1.0);
    let ds = generate(profile, scale, cfg.seed);

    // Short-name datasets (overlap 1) get a q-gram union leg so a typo in
    // the single shared token cannot lose the match entirely.
    let make_blocker = |overlap: usize| -> Box<dyn Blocker + Send + Sync> {
        if overlap == 1 {
            Box::new(UnionBlocker::new(vec![
                Box::new(TokenBlocker::new(recipe.attr)),
                Box::new(QgramBlocker::new(recipe.attr, 4)),
            ]))
        } else {
            Box::new(TokenBlocker::with_overlap(recipe.attr, overlap))
        }
    };
    let cross_cs =
        make_blocker(recipe.cross_overlap).candidates(&ds.left, &ds.right, PairMode::Cross);
    let left_cs =
        make_blocker(recipe.dedup_overlap).candidates(&ds.left, &ds.left, PairMode::Dedup);
    let right_cs =
        make_blocker(recipe.dedup_overlap).candidates(&ds.right, &ds.right, PairMode::Dedup);

    let make_task =
        |l: &zeroer_tabular::Table, r: &zeroer_tabular::Table, pairs: &[(usize, usize)]| {
            let fz = PairFeaturizer::new(l, r);
            let mut fs = fz.featurize(pairs);
            fs.normalize();
            LinkageTask::new(fs.matrix, pairs.to_vec(), fs.layout)
        };

    let cross = make_task(&ds.left, &ds.right, cross_cs.pairs());
    let left = make_task(&ds.left, &ds.left, left_cs.pairs());
    let right = make_task(&ds.right, &ds.right, right_cs.pairs());

    let labels = ds.labels_for(cross_cs.pairs());
    let blocking_recall = cross_cs.recall_against(&ds.matches);

    Prepared {
        ds,
        cross,
        left,
        right,
        labels,
        blocking_recall,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zeroer_datagen::profiles::{prod_ab, pub_da, rest_fz};

    fn tiny_cfg() -> ExperimentConfig {
        ExperimentConfig {
            scale: 0.05,
            runs: 1,
            seed: 7,
        }
    }

    #[test]
    fn pipeline_produces_consistent_shapes() {
        let p = prepare(&rest_fz(), &tiny_cfg());
        assert_eq!(p.cross.features.rows(), p.cross.pairs.len());
        assert_eq!(p.labels.len(), p.n_pairs());
        assert!(p.n_pairs() > 0, "blocking must keep some candidates");
        assert!(p.n_matches() > 0, "blocking must keep some matches");
    }

    #[test]
    fn blocking_recall_is_high_on_clean_data() {
        let p = prepare(&rest_fz(), &tiny_cfg());
        assert!(
            p.blocking_recall > 0.85,
            "Rest-FZ blocking recall {}",
            p.blocking_recall
        );
    }

    #[test]
    fn candidate_sets_are_imbalanced() {
        let p = prepare(
            &prod_ab(),
            &ExperimentConfig {
                scale: 0.1,
                runs: 1,
                seed: 3,
            },
        );
        let ratio = (p.n_pairs() - p.n_matches()) as f64 / p.n_matches().max(1) as f64;
        assert!(ratio > 1.0, "unmatches must outnumber matches, got {ratio}");
    }

    #[test]
    fn publication_recipe_uses_overlap_blocking() {
        let r = recipe_for("Pub-DA");
        assert!(r.cross_overlap >= 2);
        assert_eq!(recipe_for("Rest-FZ").cross_overlap, 1);
    }

    #[test]
    fn features_are_normalized() {
        let p = prepare(&pub_da(), &tiny_cfg());
        for i in 0..p.cross.features.rows() {
            for &v in p.cross.features.row(i) {
                assert!((0.0..=1.0).contains(&v));
            }
        }
    }
}
