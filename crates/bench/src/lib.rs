//! Experiment harnesses regenerating every table and figure of the paper.
//!
//! Each `[[bench]]` target under `benches/` prints one paper artifact:
//!
//! | target        | reproduces            |
//! |---------------|-----------------------|
//! | `bench_table1`| Table 1 (dataset statistics) |
//! | `bench_table2`| Table 2 (F-score, all methods × 6 datasets) |
//! | `bench_table3`| Table 3 (labeled data needed to match ZeroER) |
//! | `bench_table4`| Table 4 (ablation grid) |
//! | `bench_fig2`  | Figure 2 (feature-correlation heat map) |
//! | `bench_fig3`  | Figure 3 (singularity / regularization fits) |
//! | `bench_fig4`  | Figure 4 (κ / ε / data-size sensitivity) |
//! | `bench_fig5`  | Figure 5 (EM iteration runtime scaling) |
//! | `micro`       | criterion micro-benchmarks |
//!
//! Environment knobs: `ZEROER_SCALE` (default 0.08) scales the synthetic
//! datasets, `ZEROER_RUNS` (default 2) repeats supervised protocols,
//! `ZEROER_SEED` fixes the base seed.

pub mod experiment;
pub mod matchers;
pub mod table;

pub use experiment::{prepare, BlockingRecipe, ExperimentConfig, Prepared};
pub use matchers::{supervised_f1, unsupervised_f1, zeroer_f1, SupervisedKind};
pub use table::print_table;
