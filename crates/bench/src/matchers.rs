//! Uniform matcher runners: ZeroER, unsupervised baselines, supervised
//! baselines with the paper's training protocol.

use crate::experiment::{ExperimentConfig, Prepared};
use zeroer_baselines::common::{take_labels, take_rows, Classifier};
use zeroer_baselines::tuning::grid_search;
use zeroer_baselines::{LogisticRegression, Mlp, RandomForest};
use zeroer_core::{LinkageModel, ZeroErConfig};
use zeroer_eval::metrics::f_score;
use zeroer_eval::split::{oversample_minority, train_test_split};
use zeroer_linalg::Matrix;

/// Fits ZeroER (three-model linkage trainer) and scores it on the whole
/// candidate set — the paper's unsupervised protocol (§7.1).
pub fn zeroer_f1(p: &Prepared, config: ZeroErConfig) -> f64 {
    let out = LinkageModel::new(config).fit(&p.cross, &p.left, &p.right);
    f_score(&out.cross_labels, &p.labels)
}

/// Fits an unsupervised baseline on the unlabeled candidate features and
/// scores on the same set.
pub fn unsupervised_f1<C: Classifier>(p: &Prepared, clf: &mut C) -> f64 {
    clf.fit(&p.cross.features, &[]);
    f_score(&clf.predict(&p.cross.features), &p.labels)
}

/// The three supervised baselines of Table 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SupervisedKind {
    /// Logistic regression, L2 tuned by CV.
    Lr,
    /// Random forest (100 trees), `min_samples_leaf` tuned by CV.
    Rf,
    /// MLP (50/10), L2 tuned by CV.
    Mlp,
}

impl SupervisedKind {
    /// Display name matching the paper's column headers.
    pub fn name(self) -> &'static str {
        match self {
            SupervisedKind::Lr => "LR",
            SupervisedKind::Rf => "RF",
            SupervisedKind::Mlp => "MLP",
        }
    }
}

/// Caps used to keep the CV-tuned baselines tractable at bench time; the
/// protocol (50/50 split, oversampling, k-fold CV) follows the paper, the
/// caps only bound wall-clock on the biggest synthetic candidate sets.
const MAX_TRAIN_ROWS: usize = 20_000;
const CV_FOLDS: usize = 5;

fn subsample(idx: &[usize], cap: usize, seed: u64) -> Vec<usize> {
    if idx.len() <= cap {
        return idx.to_vec();
    }
    // Deterministic stride subsample after a seeded rotation.
    let offset = (seed as usize) % idx.len();
    let stride = idx.len() as f64 / cap as f64;
    (0..cap)
        .map(|k| idx[(offset + (k as f64 * stride) as usize) % idx.len()])
        .collect()
}

/// Trains one supervised baseline with the paper's protocol on an explicit
/// train fraction and returns the test-set F1 for one run.
///
/// Protocol: seeded `train_frac` split → oversample matches in train →
/// k-fold CV grid search → fit best on the (capped) oversampled train →
/// score on test.
pub fn supervised_f1_once(
    x: &Matrix,
    labels: &[bool],
    kind: SupervisedKind,
    train_frac: f64,
    seed: u64,
) -> f64 {
    let n = x.rows();
    let (train_idx, test_idx) = train_test_split(n, train_frac, seed);
    if train_idx.is_empty() || test_idx.is_empty() {
        return 0.0;
    }
    let balanced = oversample_minority(labels, &train_idx, seed ^ 0x5eed);
    let capped = subsample(&balanced, MAX_TRAIN_ROWS, seed);
    let xt = take_rows(x, &capped);
    let yt = take_labels(labels, &capped);
    if yt.iter().all(|&v| v) || yt.iter().all(|&v| !v) {
        // Degenerate training set (no matches survived the split).
        return 0.0;
    }
    // A smaller CV subsample keeps the grid search cheap.
    let cv_idx = subsample(&(0..xt.rows()).collect::<Vec<_>>(), 4_000, seed ^ 0xcafe);
    let xcv = take_rows(&xt, &cv_idx);
    let ycv = take_labels(&yt, &cv_idx);
    let k = CV_FOLDS.min(xcv.rows().max(2)).max(2);

    let mut model: Box<dyn Classifier> = match kind {
        SupervisedKind::Lr => {
            let grid = [1e-4, 1e-3, 1e-2, 1e-1, 1.0];
            let (best, _) = grid_search(&xcv, &ycv, &grid, k, seed, LogisticRegression::new);
            Box::new(LogisticRegression::new(best))
        }
        SupervisedKind::Rf => {
            let grid = [1usize, 2, 5, 10];
            let (best, _) =
                grid_search(&xcv, &ycv, &grid, k, seed, |m| RandomForest::small(m, seed));
            Box::new(RandomForest::new(best, seed))
        }
        SupervisedKind::Mlp => {
            let grid = [1e-5, 1e-4, 1e-3];
            let (best, _) = grid_search(&xcv, &ycv, &grid, k, seed, |l2| {
                let mut m = Mlp::new(l2, seed);
                m.epochs = 40;
                m
            });
            let mut m = Mlp::new(best, seed);
            m.epochs = 80;
            Box::new(m)
        }
    };
    model.fit(&xt, &yt);
    let preds = model.predict(&take_rows(x, &test_idx));
    f_score(&preds, &take_labels(labels, &test_idx))
}

/// The Table 2 supervised score: 50/50 split averaged over `cfg.runs`
/// seeded repetitions.
pub fn supervised_f1(p: &Prepared, kind: SupervisedKind, cfg: &ExperimentConfig) -> f64 {
    let total: f64 = (0..cfg.runs)
        .map(|r| supervised_f1_once(&p.cross.features, &p.labels, kind, 0.5, cfg.seed + r as u64))
        .sum();
    total / cfg.runs as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::prepare;
    use zeroer_datagen::profiles::rest_fz;

    fn tiny() -> Prepared {
        prepare(
            &rest_fz(),
            &ExperimentConfig {
                scale: 0.08,
                runs: 1,
                seed: 5,
            },
        )
    }

    #[test]
    fn zeroer_beats_random_on_clean_data() {
        let p = tiny();
        let f1 = zeroer_f1(&p, ZeroErConfig::default());
        assert!(f1 > 0.7, "ZeroER F1 on Rest-FZ stand-in: {f1}");
    }

    #[test]
    fn supervised_runs_end_to_end() {
        let p = tiny();
        let cfg = ExperimentConfig {
            scale: 0.08,
            runs: 1,
            seed: 5,
        };
        let f1 = supervised_f1(&p, SupervisedKind::Lr, &cfg);
        assert!((0.0..=1.0).contains(&f1));
    }

    #[test]
    fn subsample_respects_cap_and_determinism() {
        let idx: Vec<usize> = (0..100).collect();
        let a = subsample(&idx, 10, 3);
        let b = subsample(&idx, 10, 3);
        assert_eq!(a, b);
        assert_eq!(a.len(), 10);
        assert_eq!(subsample(&idx, 200, 3).len(), 100);
    }
}
