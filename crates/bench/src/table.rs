//! Plain-text table rendering for experiment output.

/// Prints an aligned ASCII table with a header row and separator.
pub fn print_table(headers: &[&str], rows: &[Vec<String>]) {
    let cols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        assert_eq!(row.len(), cols, "row arity must match headers");
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let render = |cells: Vec<&str>| {
        let mut line = String::new();
        for (i, (cell, w)) in cells.iter().zip(&widths).enumerate() {
            if i > 0 {
                line.push_str("  ");
            }
            line.push_str(&format!("{cell:<w$}"));
        }
        println!("{}", line.trim_end());
    };
    render(headers.to_vec());
    let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
    println!("{}", "-".repeat(total));
    for row in rows {
        render(row.iter().map(String::as_str).collect());
    }
}

/// Formats an F-score the way the paper prints them (two decimals, `1`
/// for a perfect score).
pub fn fmt_f1(f: f64) -> String {
    if (f - 1.0).abs() < 5e-3 {
        "1.00".to_string()
    } else {
        format!("{f:.2}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fmt_f1_rounds() {
        assert_eq!(fmt_f1(0.954), "0.95");
        assert_eq!(fmt_f1(0.999), "1.00");
        assert_eq!(fmt_f1(0.0), "0.00");
    }

    #[test]
    #[should_panic(expected = "row arity")]
    fn ragged_rows_panic() {
        print_table(&["a", "b"], &[vec!["x".into()]]);
    }
}
