//! Blocking strategy implementations.
//!
//! All key-based blockers operate on *interned* blocking keys
//! ([`zeroer_textsim::intern::Sym`]) extracted through the record
//! derivation layer — inverted indexes are `Sym → members`, so bucket
//! joins compare 4-byte symbols instead of hashing strings. Callers that
//! already hold a derivation (the high-level pipelines, the streaming
//! bootstrap) use [`standard_candidates_derived`] to block without
//! re-tokenizing anything; the [`Blocker`] trait implementations extract
//! keys themselves for standalone use and share the same join core.

use crate::candidate::{CandidateSet, PairMode};
use crate::keys::TableKeys;
use std::collections::HashMap;
use zeroer_tabular::Table;
use zeroer_textsim::derive::{DerivedRecord, KeySet};
use zeroer_textsim::intern::Sym;
use zeroer_textsim::tokenize::normalize;

/// A blocking strategy: maps two tables (or one table against itself) to a
/// [`CandidateSet`].
pub trait Blocker {
    /// Generates candidates between `left` and `right`. Use the same table
    /// for both with [`PairMode::Dedup`] for deduplication.
    fn candidates(&self, left: &Table, right: &Table, mode: PairMode) -> CandidateSet;
}

/// Emits every pair — the "no blocking" baseline, only viable for small
/// inputs but exactly what the paper's setting assumes for tiny datasets.
#[derive(Debug, Clone, Copy, Default)]
pub struct CartesianBlocker;

impl Blocker for CartesianBlocker {
    fn candidates(&self, left: &Table, right: &Table, mode: PairMode) -> CandidateSet {
        let mut pairs = Vec::new();
        match mode {
            PairMode::Cross => {
                for l in 0..left.len() {
                    for r in 0..right.len() {
                        pairs.push((l, r));
                    }
                }
            }
            PairMode::Dedup => {
                for a in 0..left.len() {
                    for b in (a + 1)..left.len() {
                        pairs.push((a, b));
                    }
                }
            }
        }
        CandidateSet::new(mode, pairs)
    }
}

/// Inverted index over interned blocking keys: `key → record indices`.
type SymIndex = HashMap<Sym, Vec<usize>>;

/// Builds an inverted index from per-record key lists selected by
/// `select` (token keys, q-gram keys, or the equivalence key).
fn inverted_index<'a, I, F>(keysets: I, select: F) -> SymIndex
where
    I: Iterator<Item = &'a KeySet>,
    F: Fn(&KeySet) -> &[Sym],
{
    let mut index = SymIndex::new();
    for (idx, ks) in keysets.enumerate() {
        for &k in select(ks) {
            index.entry(k).or_default().push(idx);
        }
    }
    index
}

/// The left index plus an optional distinct right index (`None` for a
/// self-join: the right side *is* the left index, no clone needed).
struct IndexPair {
    left: SymIndex,
    right: Option<SymIndex>,
}

impl IndexPair {
    fn build<'a, F>(
        left: impl Iterator<Item = &'a KeySet>,
        right: Option<impl Iterator<Item = &'a KeySet>>,
        select: F,
    ) -> Self
    where
        F: Fn(&KeySet) -> &[Sym],
    {
        Self {
            left: inverted_index(left, &select),
            right: right.map(|r| inverted_index(r, &select)),
        }
    }

    fn sides(&self) -> (&SymIndex, &SymIndex) {
        (&self.left, self.right.as_ref().unwrap_or(&self.left))
    }
}

fn join_indices(
    left_index: &SymIndex,
    right_index: &SymIndex,
    mode: PairMode,
    max_bucket: usize,
) -> CandidateSet {
    let mut pairs = Vec::new();
    for (key, ls) in left_index {
        if let Some(rs) = right_index.get(key) {
            // Skip stop-word-like keys whose bucket product explodes.
            if ls.len().saturating_mul(rs.len()) > max_bucket.saturating_mul(max_bucket) {
                continue;
            }
            for &l in ls {
                for &r in rs {
                    if mode == PairMode::Dedup && l >= r {
                        continue;
                    }
                    pairs.push((l, r));
                }
            }
        }
    }
    CandidateSet::new(mode, pairs)
}

/// Overlap blocking: pairs sharing at least `min_overlap` keys.
fn join_with_overlap(
    left_index: &SymIndex,
    right_index: &SymIndex,
    mode: PairMode,
    max_bucket: usize,
    min_overlap: usize,
) -> CandidateSet {
    if min_overlap <= 1 {
        return join_indices(left_index, right_index, mode, max_bucket);
    }
    // Count shared keys per pair, then keep pairs meeting the floor.
    let mut counts: HashMap<(usize, usize), usize> = HashMap::new();
    for (key, ls) in left_index {
        if let Some(rs) = right_index.get(key) {
            if ls.len().saturating_mul(rs.len()) > max_bucket.saturating_mul(max_bucket) {
                continue;
            }
            for &l in ls {
                for &r in rs {
                    if mode == PairMode::Dedup && l >= r {
                        continue;
                    }
                    *counts.entry((l, r)).or_insert(0) += 1;
                }
            }
        }
    }
    CandidateSet::new(
        mode,
        counts
            .into_iter()
            .filter(|&(_, c)| c >= min_overlap)
            .map(|(p, _)| p),
    )
}

/// The standard blocking recipe over an **existing derivation**: token
/// blocking unioned with q-gram blocking when any single shared token
/// suffices, or pure overlap blocking for `min_overlap ≥ 2` — exactly
/// what [`standard_recipe`] computes, minus any tokenization. Pass
/// `right = None` to block one derivation against itself.
///
/// The derivations must carry blocking keys (derive with a
/// `BlockSpec` whose `qgram` matches: > 0 when `min_overlap ≤ 1`).
pub fn standard_candidates_derived(
    left: &[DerivedRecord],
    right: Option<&[DerivedRecord]>,
    mode: PairMode,
    min_overlap: usize,
    max_bucket: usize,
) -> CandidateSet {
    let index = |select: fn(&KeySet) -> &[Sym]| {
        IndexPair::build(
            left.iter().map(|r| r.keys()),
            right.map(|r| r.iter().map(|rec| rec.keys())),
            select,
        )
    };
    let tok = index(|k| &k.tokens);
    let (li, ri) = tok.sides();
    if min_overlap >= 2 {
        return join_with_overlap(li, ri, mode, max_bucket, min_overlap);
    }
    let tokens = join_indices(li, ri, mode, max_bucket);
    let qgm = index(|k| &k.qgrams);
    let (qli, qri) = qgm.sides();
    let qgrams = join_indices(qli, qri, mode, max_bucket);
    tokens.union(&qgrams)
}

/// Extracts left/right key sets for a trait blocker invocation: one
/// shared interner, the right side reusing the left for dedup mode.
fn extract_keys(
    left: &Table,
    right: &Table,
    mode: PairMode,
    attr: usize,
    qgram: usize,
    equiv: bool,
) -> (Vec<KeySet>, Option<Vec<KeySet>>) {
    if mode == PairMode::Dedup {
        (TableKeys::build(left, attr, qgram, equiv).keys, None)
    } else {
        let (lk, rk) = TableKeys::build_pair(left, right, attr, qgram, equiv);
        (lk.keys, Some(rk))
    }
}

/// Pairs that share at least `min_overlap` *word tokens* on a key
/// attribute (overlap blocking, Magellan's `OverlapBlocker`).
///
/// `max_bucket` bounds the per-token bucket size (buckets whose pair
/// product exceeds `max_bucket²` are treated as stop words and skipped) —
/// the standard guard against quadratic blowup. `min_overlap > 1` is the
/// standard recipe for multi-word attributes (paper titles, product
/// descriptions) where single shared words are too common to prune
/// anything.
#[derive(Debug, Clone)]
pub struct TokenBlocker {
    /// Attribute index to block on.
    pub attr: usize,
    /// Stop-word bucket guard (see type docs).
    pub max_bucket: usize,
    /// Minimum number of shared tokens required.
    pub min_overlap: usize,
}

impl TokenBlocker {
    /// Token blocking on `attr` with a default bucket cap of 400 and
    /// single-token overlap.
    pub fn new(attr: usize) -> Self {
        Self {
            attr,
            max_bucket: 400,
            min_overlap: 1,
        }
    }

    /// Overlap blocking requiring `min_overlap` shared tokens.
    pub fn with_overlap(attr: usize, min_overlap: usize) -> Self {
        assert!(min_overlap >= 1, "overlap must be at least 1");
        Self {
            attr,
            max_bucket: 400,
            min_overlap,
        }
    }
}

impl Blocker for TokenBlocker {
    fn candidates(&self, left: &Table, right: &Table, mode: PairMode) -> CandidateSet {
        let (lk, rk) = extract_keys(left, right, mode, self.attr, 0, false);
        let pair = IndexPair::build(lk.iter(), rk.as_ref().map(|r| r.iter()), |k| &k.tokens);
        let (li, ri) = pair.sides();
        join_with_overlap(li, ri, mode, self.max_bucket, self.min_overlap)
    }
}

/// Pairs that share at least one character q-gram on a key attribute —
/// higher recall than token blocking (robust to typos inside tokens) at
/// the cost of more candidates.
#[derive(Debug, Clone)]
pub struct QgramBlocker {
    /// Attribute index to block on.
    pub attr: usize,
    /// q-gram size.
    pub q: usize,
    /// Stop-gram bucket guard.
    pub max_bucket: usize,
}

impl QgramBlocker {
    /// q-gram blocking on `attr` with gram size `q` and bucket cap 400.
    pub fn new(attr: usize, q: usize) -> Self {
        Self {
            attr,
            q,
            max_bucket: 400,
        }
    }
}

impl Blocker for QgramBlocker {
    fn candidates(&self, left: &Table, right: &Table, mode: PairMode) -> CandidateSet {
        let (lk, rk) = extract_keys(left, right, mode, self.attr, self.q, false);
        let pair = IndexPair::build(lk.iter(), rk.as_ref().map(|r| r.iter()), |k| &k.qgrams);
        let (li, ri) = pair.sides();
        join_indices(li, ri, mode, self.max_bucket)
    }
}

/// Pairs with exactly equal (normalized) values on an attribute.
#[derive(Debug, Clone)]
pub struct AttrEquivalenceBlocker {
    /// Attribute index to block on.
    pub attr: usize,
}

impl Blocker for AttrEquivalenceBlocker {
    fn candidates(&self, left: &Table, right: &Table, mode: PairMode) -> CandidateSet {
        fn select(k: &KeySet) -> &[Sym] {
            k.equiv.as_slice()
        }
        let (lk, rk) = extract_keys(left, right, mode, self.attr, 0, true);
        let pair = IndexPair::build(lk.iter(), rk.as_ref().map(|r| r.iter()), select);
        let (li, ri) = pair.sides();
        join_indices(li, ri, mode, usize::MAX / 2)
    }
}

/// Sorted-neighborhood blocking: sort both tables by a normalized key
/// attribute, merge the sorted lists, slide a window of size `window`,
/// and pair records from opposite sides (or any two records, for dedup).
#[derive(Debug, Clone)]
pub struct SortedNeighborhood {
    /// Attribute index used as sort key.
    pub attr: usize,
    /// Window size (number of consecutive sorted entries considered).
    pub window: usize,
}

impl Blocker for SortedNeighborhood {
    fn candidates(&self, left: &Table, right: &Table, mode: PairMode) -> CandidateSet {
        #[derive(Clone)]
        struct Entry {
            key: String,
            side: bool, // false = left, true = right
            idx: usize,
        }
        // The sort key is the derivation layer's normalized-equality
        // form; computed directly (no bags, no interner) since this
        // blocker only compares keys lexicographically.
        let sort_keys = |table: &Table| -> Vec<String> {
            (0..table.len())
                .map(|idx| {
                    table
                        .value(idx, self.attr)
                        .as_text()
                        .map(|t| normalize(&t))
                        .unwrap_or_default()
                })
                .collect()
        };
        let mut entries: Vec<Entry> = Vec::new();
        for (idx, key) in sort_keys(left).into_iter().enumerate() {
            entries.push(Entry {
                key,
                side: false,
                idx,
            });
        }
        if mode == PairMode::Cross {
            for (idx, key) in sort_keys(right).into_iter().enumerate() {
                entries.push(Entry {
                    key,
                    side: true,
                    idx,
                });
            }
        }
        entries.sort_by(|a, b| a.key.cmp(&b.key));
        let mut pairs = Vec::new();
        for i in 0..entries.len() {
            let hi = (i + self.window).min(entries.len());
            for j in (i + 1)..hi {
                let (a, b) = (&entries[i], &entries[j]);
                match mode {
                    PairMode::Cross => {
                        if a.side != b.side {
                            let (l, r) = if a.side {
                                (b.idx, a.idx)
                            } else {
                                (a.idx, b.idx)
                            };
                            pairs.push((l, r));
                        }
                    }
                    PairMode::Dedup => pairs.push((a.idx, b.idx)),
                }
            }
        }
        CandidateSet::new(mode, pairs)
    }
}

/// The standard blocking recipe shared by the batch (`MatchOptions`) and
/// streaming (`StreamOptions`) pipelines: token blocking unioned with
/// q-gram blocking when any single shared token suffices, or pure
/// overlap blocking for `min_overlap ≥ 2`. Keeping this in one place
/// guarantees the two pipelines cannot drift apart.
///
/// Callers that already derived their tables should prefer
/// [`standard_candidates_derived`], which computes the same candidate
/// set from the derivation's keys without tokenizing anything.
pub fn standard_recipe(
    attr: usize,
    min_overlap: usize,
    q: usize,
    max_bucket: usize,
) -> Box<dyn Blocker + Send + Sync> {
    if min_overlap <= 1 {
        Box::new(UnionBlocker::new(vec![
            Box::new(TokenBlocker {
                attr,
                max_bucket,
                min_overlap: 1,
            }),
            Box::new(QgramBlocker {
                attr,
                q,
                max_bucket,
            }),
        ]))
    } else {
        Box::new(TokenBlocker {
            attr,
            max_bucket,
            min_overlap,
        })
    }
}

/// Union of several blockers (boosts recall; the candidate sets are
/// merged and deduplicated).
pub struct UnionBlocker {
    blockers: Vec<Box<dyn Blocker + Send + Sync>>,
}

impl UnionBlocker {
    /// Builds a union from boxed blockers.
    pub fn new(blockers: Vec<Box<dyn Blocker + Send + Sync>>) -> Self {
        assert!(!blockers.is_empty(), "union of zero blockers");
        Self { blockers }
    }
}

impl Blocker for UnionBlocker {
    fn candidates(&self, left: &Table, right: &Table, mode: PairMode) -> CandidateSet {
        let mut acc: Option<CandidateSet> = None;
        for b in &self.blockers {
            let cs = b.candidates(left, right, mode);
            acc = Some(match acc {
                None => cs,
                Some(prev) => prev.union(&cs),
            });
        }
        acc.expect("at least one blocker")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zeroer_tabular::{Record, Schema, Value};
    use zeroer_textsim::derive::{DeriveConfig, Deriver};

    fn table(names: &[&str]) -> Table {
        let mut t = Table::new("t", Schema::new(["name"]));
        for (i, n) in names.iter().enumerate() {
            t.push(Record::new(i as u32, vec![Value::Str((*n).into())]));
        }
        t
    }

    #[test]
    fn cartesian_cross_counts() {
        let l = table(&["a", "b"]);
        let r = table(&["x", "y", "z"]);
        let cs = CartesianBlocker.candidates(&l, &r, PairMode::Cross);
        assert_eq!(cs.len(), 6);
    }

    #[test]
    fn cartesian_dedup_counts() {
        let t = table(&["a", "b", "c", "d"]);
        let cs = CartesianBlocker.candidates(&t, &t, PairMode::Dedup);
        assert_eq!(cs.len(), 6); // 4 choose 2
    }

    #[test]
    fn token_blocker_pairs_shared_words() {
        let l = table(&["deep learning systems", "database engines"]);
        let r = table(&["learning to rank", "graph engines", "unrelated title"]);
        let cs = TokenBlocker::new(0).candidates(&l, &r, PairMode::Cross);
        assert!(cs.contains(0, 0), "shares 'learning'");
        assert!(cs.contains(1, 1), "shares 'engines'");
        assert!(!cs.contains(0, 2));
    }

    #[test]
    fn token_blocker_dedup_mode() {
        let t = table(&["red apple", "green apple", "blue sky"]);
        let cs = TokenBlocker::new(0).candidates(&t, &t, PairMode::Dedup);
        assert!(cs.contains(0, 1));
        assert!(!cs.contains(0, 2));
    }

    #[test]
    fn qgram_blocker_survives_typos() {
        let l = table(&["photograph"]);
        let r = table(&["fotograph"]); // token blocking would miss this
        let tok = TokenBlocker::new(0).candidates(&l, &r, PairMode::Cross);
        assert!(tok.is_empty());
        let qg = QgramBlocker::new(0, 3).candidates(&l, &r, PairMode::Cross);
        assert!(qg.contains(0, 0));
    }

    #[test]
    fn attr_equivalence_requires_exact_normalized_match() {
        let l = table(&["New York", "Boston"]);
        let r = table(&["new-york", "chicago"]);
        let cs = AttrEquivalenceBlocker { attr: 0 }.candidates(&l, &r, PairMode::Cross);
        assert!(cs.contains(0, 0), "normalization maps both to 'new york'");
        assert_eq!(cs.len(), 1);
    }

    #[test]
    fn sorted_neighborhood_pairs_nearby_keys() {
        let l = table(&["aaa", "mmm", "zzz"]);
        let r = table(&["aab", "mmn", "zzy"]);
        let cs = SortedNeighborhood { attr: 0, window: 2 }.candidates(&l, &r, PairMode::Cross);
        assert!(cs.contains(0, 0));
        assert!(cs.contains(1, 1));
        assert!(cs.contains(2, 2));
        assert!(!cs.contains(0, 2));
    }

    #[test]
    fn union_boosts_recall() {
        let l = table(&["photograph", "database systems"]);
        let r = table(&["fotograph", "database engines"]);
        let union = UnionBlocker::new(vec![
            Box::new(TokenBlocker::new(0)),
            Box::new(QgramBlocker::new(0, 3)),
        ]);
        let cs = union.candidates(&l, &r, PairMode::Cross);
        assert!(cs.contains(0, 0), "qgram leg catches the typo");
        assert!(cs.contains(1, 1), "token leg catches the shared word");
    }

    #[test]
    fn overlap_floor_requires_multiple_shared_tokens() {
        let l = table(&[
            "efficient query processing systems",
            "graph mining at scale",
        ]);
        let r = table(&[
            "efficient query optimization", // shares 2 tokens with l0
            "parallel graph engines",       // shares 1 token with l1
        ]);
        let cs = TokenBlocker::with_overlap(0, 2).candidates(&l, &r, PairMode::Cross);
        assert!(cs.contains(0, 0), "two shared tokens pass");
        assert!(
            !cs.contains(1, 1),
            "one shared token is pruned at overlap 2"
        );
    }

    #[test]
    fn overlap_dedup_mode() {
        let t = table(&[
            "deep learning for entity matching",
            "deep learning for image search",
            "relational query engines",
        ]);
        let cs = TokenBlocker::with_overlap(0, 3).candidates(&t, &t, PairMode::Dedup);
        assert!(cs.contains(0, 1), "shares 'deep learning for'");
        assert!(!cs.contains(0, 2));
    }

    #[test]
    fn stop_word_buckets_are_skipped() {
        // Every record shares the token "the"; with a tiny bucket cap the
        // blocker must skip that bucket entirely.
        let names: Vec<String> = (0..30).map(|i| format!("the item{i}")).collect();
        let refs: Vec<&str> = names.iter().map(String::as_str).collect();
        let t = table(&refs);
        let cs = TokenBlocker {
            attr: 0,
            max_bucket: 5,
            min_overlap: 1,
        }
        .candidates(&t, &t, PairMode::Dedup);
        assert!(
            cs.is_empty(),
            "the 'the' bucket exceeds the cap and item tokens are unique"
        );
    }

    /// The derived-path recipe must equal the trait-path recipe.
    #[test]
    fn derived_candidates_match_trait_blockers() {
        let names = [
            "golden dragon palace",
            "golden dragon palce",
            "blue sky tavern",
            "photograph studio",
            "fotograph studio",
        ];
        let t = table(&names);
        let mut deriver = Deriver::new(DeriveConfig::blocking(0, 4));
        let derived: Vec<_> = t
            .records()
            .iter()
            .map(|r| deriver.derive(&r.values))
            .collect();
        for overlap in [1usize, 2] {
            let via_derived =
                standard_candidates_derived(&derived, None, PairMode::Dedup, overlap, 400);
            let via_trait = standard_recipe(0, overlap, 4, 400).candidates(&t, &t, PairMode::Dedup);
            assert_eq!(via_derived.pairs(), via_trait.pairs(), "overlap={overlap}");
        }
    }
}
