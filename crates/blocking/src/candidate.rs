//! Candidate sets.

use std::collections::HashSet;

/// Whether candidates link two distinct tables or deduplicate one table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PairMode {
    /// Record linkage: pairs `(left index, right index)` across tables.
    Cross,
    /// Deduplication: unordered pairs within one table, stored with
    /// `left < right` and no self-pairs.
    Dedup,
}

/// A set of candidate record pairs produced by blocking.
///
/// Pairs are stored as record *indices* into the source tables (not ids),
/// deduplicated, in deterministic sorted order.
#[derive(Debug, Clone)]
pub struct CandidateSet {
    mode: PairMode,
    pairs: Vec<(usize, usize)>,
}

impl CandidateSet {
    /// Builds a candidate set, normalizing and deduplicating pairs.
    ///
    /// In [`PairMode::Dedup`] pairs are reordered so `left < right` and
    /// self-pairs are dropped.
    pub fn new(mode: PairMode, pairs: impl IntoIterator<Item = (usize, usize)>) -> Self {
        let mut set: HashSet<(usize, usize)> = HashSet::new();
        for (a, b) in pairs {
            match mode {
                PairMode::Cross => {
                    set.insert((a, b));
                }
                PairMode::Dedup => {
                    if a != b {
                        set.insert((a.min(b), a.max(b)));
                    }
                }
            }
        }
        let mut pairs: Vec<_> = set.into_iter().collect();
        pairs.sort_unstable();
        Self { mode, pairs }
    }

    /// The pair mode.
    pub fn mode(&self) -> PairMode {
        self.mode
    }

    /// The candidate pairs (sorted, deduplicated).
    pub fn pairs(&self) -> &[(usize, usize)] {
        &self.pairs
    }

    /// Number of candidate pairs.
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// Whether there are no candidates.
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    /// Whether a specific pair survived blocking (pair must be normalized
    /// for dedup mode; this helper normalizes for you).
    pub fn contains(&self, a: usize, b: usize) -> bool {
        let key = match self.mode {
            PairMode::Cross => (a, b),
            PairMode::Dedup => (a.min(b), a.max(b)),
        };
        self.pairs.binary_search(&key).is_ok()
    }

    /// Union with another candidate set of the same mode.
    ///
    /// # Panics
    /// Panics on mode mismatch.
    pub fn union(&self, other: &CandidateSet) -> CandidateSet {
        assert_eq!(
            self.mode, other.mode,
            "cannot union candidate sets of different modes"
        );
        CandidateSet::new(
            self.mode,
            self.pairs.iter().chain(other.pairs.iter()).copied(),
        )
    }

    /// Recall of blocking against ground-truth match pairs: the fraction
    /// of true matches retained in the candidate set.
    pub fn recall_against(&self, truth: &[(usize, usize)]) -> f64 {
        if truth.is_empty() {
            return 1.0;
        }
        let kept = truth.iter().filter(|&&(a, b)| self.contains(a, b)).count();
        kept as f64 / truth.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cross_mode_keeps_ordered_pairs() {
        let cs = CandidateSet::new(PairMode::Cross, [(1, 0), (0, 1), (1, 0)]);
        assert_eq!(cs.pairs(), &[(0, 1), (1, 0)]);
    }

    #[test]
    fn dedup_mode_normalizes_and_drops_self_pairs() {
        let cs = CandidateSet::new(PairMode::Dedup, [(2, 1), (1, 2), (3, 3), (0, 5)]);
        assert_eq!(cs.pairs(), &[(0, 5), (1, 2)]);
    }

    #[test]
    fn contains_normalizes_for_dedup() {
        let cs = CandidateSet::new(PairMode::Dedup, [(1, 2)]);
        assert!(cs.contains(2, 1));
        assert!(cs.contains(1, 2));
        assert!(!cs.contains(0, 1));
    }

    #[test]
    fn union_merges() {
        let a = CandidateSet::new(PairMode::Cross, [(0, 0)]);
        let b = CandidateSet::new(PairMode::Cross, [(1, 1), (0, 0)]);
        assert_eq!(a.union(&b).len(), 2);
    }

    #[test]
    #[should_panic(expected = "different modes")]
    fn union_mode_mismatch_panics() {
        let a = CandidateSet::new(PairMode::Cross, [(0, 0)]);
        let b = CandidateSet::new(PairMode::Dedup, [(0, 1)]);
        let _ = a.union(&b);
    }

    #[test]
    fn recall_counts_retained_truth() {
        let cs = CandidateSet::new(PairMode::Cross, [(0, 0), (1, 1)]);
        assert_eq!(cs.recall_against(&[(0, 0), (2, 2)]), 0.5);
        assert_eq!(cs.recall_against(&[]), 1.0);
    }
}
