//! Shared blocking-key extraction.
//!
//! Batch blockers ([`crate::TokenBlocker`], [`crate::QgramBlocker`],
//! [`crate::AttrEquivalenceBlocker`]) and the incremental indexes of the
//! streaming subsystem must derive *identical* keys from a record, or
//! their candidate sets drift apart. Key extraction is part of the
//! record-derivation layer (`zeroer_textsim::derive`): a derivation pass
//! tokenizes each record once and carries the blocking keys — interned
//! symbols, not strings — in its
//! [`zeroer_textsim::derive::DerivedRecord`]. This module provides the
//! standalone per-table form the batch blockers use when no shared
//! derivation is available.

use zeroer_tabular::Table;
use zeroer_textsim::derive::{DeriveConfig, Deriver, KeySet};
use zeroer_textsim::intern::Interner;

/// Per-record blocking keys of one attribute of one table, extracted
/// through the derivation layer with a table-local interner.
///
/// `qgram` = 0 skips q-gram keys; `equiv` controls the
/// attribute-equivalence key. Null values yield empty key sets (null
/// rows never block).
pub struct TableKeys {
    /// The interner the keys resolve against.
    pub interner: Interner,
    /// One key set per record, in table order.
    pub keys: Vec<KeySet>,
}

impl TableKeys {
    /// Extracts keys for `attr` of `table`.
    pub fn build(table: &Table, attr: usize, qgram: usize, equiv: bool) -> Self {
        let mut deriver = Deriver::new(DeriveConfig::default());
        let keys = extract_into(&mut deriver, table, attr, qgram, equiv);
        Self {
            interner: deriver.into_interner(),
            keys,
        }
    }

    /// Extracts keys for the same attribute of two tables against one
    /// shared interner (record-linkage blocking joins the two key
    /// spaces, so the symbols must be comparable).
    pub fn build_pair(
        left: &Table,
        right: &Table,
        attr: usize,
        qgram: usize,
        equiv: bool,
    ) -> (Self, Vec<KeySet>) {
        let mut deriver = Deriver::new(DeriveConfig::default());
        let lk = extract_into(&mut deriver, left, attr, qgram, equiv);
        let rk = extract_into(&mut deriver, right, attr, qgram, equiv);
        (
            Self {
                interner: deriver.into_interner(),
                keys: lk,
            },
            rk,
        )
    }
}

fn extract_into(
    deriver: &mut Deriver,
    table: &Table,
    attr: usize,
    qgram: usize,
    equiv: bool,
) -> Vec<KeySet> {
    (0..table.len())
        .map(|idx| {
            let text = table.value(idx, attr).as_text();
            deriver.derive_keys(text.as_deref(), qgram, equiv)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use zeroer_tabular::{Record, Schema, Value};

    fn table(names: &[&str]) -> Table {
        let mut t = Table::new("t", Schema::new(["name"]));
        for (i, n) in names.iter().enumerate() {
            t.push(Record::new(i as u32, vec![Value::Str((*n).into())]));
        }
        t
    }

    #[test]
    fn token_keys_drop_single_chars_and_dedup() {
        let tk = TableKeys::build(&table(&["a Red RED fox"]), 0, 0, false);
        let mut texts: Vec<&str> = tk.keys[0]
            .tokens
            .iter()
            .map(|&s| tk.interner.resolve(s))
            .collect();
        texts.sort();
        assert_eq!(texts, vec!["fox", "red"]);
    }

    #[test]
    fn qgram_keys_are_sorted_unique() {
        let tk = TableKeys::build(&table(&["aba"]), 0, 2, false);
        let keys = &tk.keys[0].qgrams;
        let mut sorted = keys.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(keys, &sorted);
        let texts: Vec<&str> = keys.iter().map(|&s| tk.interner.resolve(s)).collect();
        assert!(texts.contains(&"ab"));
        assert!(texts.contains(&"#a"));
    }

    #[test]
    fn equivalence_key_normalizes() {
        let tk = TableKeys::build(&table(&["New-York "]), 0, 0, true);
        let e = tk.keys[0].equiv.expect("equiv key requested");
        assert_eq!(tk.interner.resolve(e), "new york");
    }

    #[test]
    fn null_values_yield_no_keys() {
        let mut t = Table::new("t", Schema::new(["name"]));
        t.push(Record::new(0, vec![Value::Null]));
        let tk = TableKeys::build(&t, 0, 3, true);
        assert!(tk.keys[0].tokens.is_empty());
        assert!(tk.keys[0].qgrams.is_empty());
        assert!(tk.keys[0].equiv.is_none());
    }
}
