//! Shared blocking-key extraction.
//!
//! Batch blockers ([`crate::TokenBlocker`], [`crate::QgramBlocker`],
//! [`crate::AttrEquivalenceBlocker`]) and the incremental indexes of the
//! streaming subsystem must derive *identical* keys from a record, or
//! their candidate sets drift apart. This module is the single source of
//! truth both sides call.

use zeroer_textsim::tokenize::normalize;
use zeroer_textsim::{qgrams, words};

/// Word-token blocking keys: lowercase alphanumeric tokens longer than
/// one character (single characters are noise), sorted and deduplicated.
pub fn token_keys(s: &str) -> Vec<String> {
    let mut keys: Vec<String> = words(s)
        .tokens()
        .filter(|t| t.len() > 1)
        .map(String::from)
        .collect();
    keys.sort();
    keys.dedup();
    keys
}

/// Character q-gram blocking keys (padded q-grams of the normalized
/// string), sorted and deduplicated.
///
/// # Panics
/// Panics if `q == 0`.
pub fn qgram_keys(s: &str, q: usize) -> Vec<String> {
    let mut keys: Vec<String> = qgrams(s, q).tokens().map(String::from).collect();
    keys.sort();
    keys.dedup();
    keys
}

/// The single normalized-equality key used by attribute-equivalence
/// blocking.
pub fn equivalence_key(s: &str) -> String {
    normalize(s)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn token_keys_drop_single_chars_and_dedup() {
        let keys = token_keys("a Red RED fox");
        assert_eq!(keys, vec!["fox".to_string(), "red".to_string()]);
    }

    #[test]
    fn qgram_keys_are_sorted_unique() {
        let keys = qgram_keys("aba", 2);
        let mut sorted = keys.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(keys, sorted);
        assert!(keys.contains(&"ab".to_string()));
        assert!(keys.contains(&"#a".to_string()));
    }

    #[test]
    fn equivalence_key_normalizes() {
        assert_eq!(equivalence_key("New-York "), "new york");
    }
}
