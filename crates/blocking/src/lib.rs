//! Blocking: candidate-set generation.
//!
//! Comparing all `|T| × |T'|` tuple pairs is prohibitively expensive, so
//! ER systems first run *blocking* to retain a candidate set `Cs` that
//! keeps (almost) all true matches while discarding the bulk of obvious
//! non-matches (§2.1). The paper treats blocking as an orthogonal,
//! already-solved step; we still need a real implementation to produce
//! candidate sets with realistic class imbalance for the experiments.
//!
//! Provided blockers:
//!
//! * [`TokenBlocker`] — pairs sharing at least one word token on a key
//!   attribute (with a frequency cap to avoid stop-word blowup);
//! * [`QgramBlocker`] — pairs sharing a character q-gram (more recall,
//!   more candidates);
//! * [`AttrEquivalenceBlocker`] — exact equality on an attribute;
//! * [`SortedNeighborhood`] — classic sliding window over a sort key;
//! * [`CartesianBlocker`] — everything (for small datasets / tests);
//! * [`UnionBlocker`] — union of several blockers' candidates.

pub mod blockers;
pub mod candidate;
pub mod keys;
pub mod quality;

pub use blockers::{
    standard_candidates_derived, standard_recipe, AttrEquivalenceBlocker, Blocker,
    CartesianBlocker, QgramBlocker, SortedNeighborhood, TokenBlocker, UnionBlocker,
};
pub use candidate::{CandidateSet, PairMode};
pub use keys::TableKeys;
pub use quality::BlockingReport;
