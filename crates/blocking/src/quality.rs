//! Blocking quality metrics: the standard reduction-ratio /
//! pair-completeness report used when designing blocking schemes.
//!
//! The paper treats blocking as a given; a downstream user still needs to
//! verify that whatever blocker they configure (a) discards enough of the
//! quadratic pair space and (b) keeps the true matches. This module
//! computes exactly that trade-off.

use crate::candidate::{CandidateSet, PairMode};

/// Blocking quality summary.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BlockingReport {
    /// Candidate pairs kept.
    pub candidates: usize,
    /// Size of the unblocked pair space (`|T|·|T'|` or `n·(n−1)/2`).
    pub total_pairs: usize,
    /// Reduction ratio `1 − candidates / total` (higher = cheaper).
    pub reduction_ratio: f64,
    /// Pair completeness = blocking recall (fraction of true matches
    /// kept; higher = safer).
    pub pair_completeness: f64,
    /// True matches kept.
    pub matches_kept: usize,
    /// True matches total.
    pub matches_total: usize,
}

impl BlockingReport {
    /// Evaluates a candidate set against ground-truth matches.
    ///
    /// `left_size`/`right_size` define the unblocked pair space; for
    /// [`PairMode::Dedup`] pass the table size as both.
    pub fn evaluate(
        cs: &CandidateSet,
        truth: &[(usize, usize)],
        left_size: usize,
        right_size: usize,
    ) -> Self {
        let total_pairs = match cs.mode() {
            PairMode::Cross => left_size * right_size,
            PairMode::Dedup => left_size * left_size.saturating_sub(1) / 2,
        };
        let matches_kept = truth.iter().filter(|&&(a, b)| cs.contains(a, b)).count();
        let reduction_ratio = if total_pairs == 0 {
            0.0
        } else {
            1.0 - cs.len() as f64 / total_pairs as f64
        };
        let pair_completeness = if truth.is_empty() {
            1.0
        } else {
            matches_kept as f64 / truth.len() as f64
        };
        Self {
            candidates: cs.len(),
            total_pairs,
            reduction_ratio,
            pair_completeness,
            matches_kept,
            matches_total: truth.len(),
        }
    }

    /// Harmonic mean of reduction ratio and pair completeness — a single
    /// figure of merit for comparing blockers.
    pub fn f_measure(&self) -> f64 {
        let (r, c) = (self.reduction_ratio, self.pair_completeness);
        if r + c == 0.0 {
            0.0
        } else {
            2.0 * r * c / (r + c)
        }
    }
}

impl std::fmt::Display for BlockingReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} / {} pairs kept (reduction {:.3}), matches {}/{} (completeness {:.3})",
            self.candidates,
            self.total_pairs,
            self.reduction_ratio,
            self.matches_kept,
            self.matches_total,
            self.pair_completeness
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_on_perfect_blocking() {
        let cs = CandidateSet::new(PairMode::Cross, [(0, 0), (1, 1)]);
        let truth = [(0usize, 0usize), (1, 1)];
        let r = BlockingReport::evaluate(&cs, &truth, 10, 10);
        assert_eq!(r.pair_completeness, 1.0);
        assert_eq!(r.candidates, 2);
        assert!((r.reduction_ratio - 0.98).abs() < 1e-12);
        assert!(r.f_measure() > 0.98);
    }

    #[test]
    fn report_counts_lost_matches() {
        let cs = CandidateSet::new(PairMode::Cross, [(0, 0)]);
        let truth = [(0usize, 0usize), (5, 5)];
        let r = BlockingReport::evaluate(&cs, &truth, 10, 10);
        assert_eq!(r.matches_kept, 1);
        assert_eq!(r.pair_completeness, 0.5);
    }

    #[test]
    fn dedup_pair_space_is_n_choose_2() {
        let cs = CandidateSet::new(PairMode::Dedup, [(0, 1)]);
        let r = BlockingReport::evaluate(&cs, &[], 10, 10);
        assert_eq!(r.total_pairs, 45);
        assert_eq!(r.pair_completeness, 1.0, "no truth = vacuous completeness");
    }

    #[test]
    fn display_is_readable() {
        let cs = CandidateSet::new(PairMode::Cross, [(0, 0)]);
        let text = BlockingReport::evaluate(&cs, &[(0, 0)], 2, 2).to_string();
        assert!(text.contains("1 / 4 pairs"));
    }
}
