//! Configuration and ablation switches.

use serde::{Deserialize, Serialize};

/// How feature dependencies are modeled — the covariance structure
/// (Table 4's first ablation axis).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FeatureDependence {
    /// One dense covariance over all features (most expressive, most
    /// parameters, most prone to singularity).
    Full,
    /// Diagonal covariance: all features independent.
    Independent,
    /// Block-diagonal by attribute (§3.2) — the paper's choice.
    Grouped,
}

/// How covariances are regularized (Table 4's second ablation axis).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Regularization {
    /// No regularization: exhibits the §3.3 singularity problem.
    None,
    /// Uniform Tikhonov: `Σ_C = S_C + κ·I`.
    Tikhonov,
    /// Adaptive (§3.3): `Σ_C = S_C + κ·diag((µ_M − µ_U)²)` — the paper's
    /// choice.
    Adaptive,
}

/// Full configuration of the ZeroER generative model.
///
/// [`ZeroErConfig::default`] reproduces the paper's final system
/// (G+A+P+T with κ = 0.15, ε = 0.5); the other constructors build the
/// Table 4 ablation variants.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ZeroErConfig {
    /// Feature-dependence structure.
    pub feature_dependence: FeatureDependence,
    /// Regularization scheme.
    pub regularization: Regularization,
    /// Regularization strength κ. Paper default 0.15 for the full system,
    /// 0.6 for partial ablation variants (§7.3).
    pub kappa: f64,
    /// Share one Pearson correlation matrix between M and U, estimated
    /// from all data (§4, the "P" of Table 4).
    pub shared_correlation: bool,
    /// Calibrate posteriors with the transitivity soft constraint after
    /// every E-step (§5, the "T" of Table 4). Only takes effect when pair
    /// endpoints are supplied to `fit`.
    pub transitivity: bool,
    /// Initialization threshold ε on the min-max-normalized feature-vector
    /// magnitude (§6). Paper default 0.5.
    pub init_threshold: f64,
    /// EM terminates when `|L − L'| / N` drops below this (§6: 1e-5).
    pub tolerance: f64,
    /// Hard cap on EM iterations (§6: 200).
    pub max_iterations: usize,
    /// When the iteration cap is hit without convergence, posteriors are
    /// averaged over this many final iterations (§6: 20).
    pub averaging_window: usize,
}

impl Default for ZeroErConfig {
    fn default() -> Self {
        Self {
            feature_dependence: FeatureDependence::Grouped,
            regularization: Regularization::Adaptive,
            kappa: 0.15,
            shared_correlation: true,
            transitivity: true,
            init_threshold: 0.5,
            tolerance: 1e-5,
            max_iterations: 200,
            averaging_window: 20,
        }
    }
}

impl ZeroErConfig {
    /// The paper's full system (alias of `default`, named for clarity in
    /// experiment code).
    pub fn paper_default() -> Self {
        Self::default()
    }

    /// A Table 4 ablation variant: chosen dependence × regularization,
    /// without correlation sharing or transitivity, κ = 0.6 (the value the
    /// paper uses for all partial variants).
    pub fn ablation(dep: FeatureDependence, reg: Regularization) -> Self {
        Self {
            feature_dependence: dep,
            regularization: reg,
            kappa: 0.6,
            shared_correlation: false,
            transitivity: false,
            ..Self::default()
        }
    }

    /// G+A+P: grouped + adaptive + shared correlation, no transitivity
    /// (the penultimate Table 4 column). Uses the final system's κ = 0.15.
    pub fn gap() -> Self {
        Self {
            transitivity: false,
            ..Self::default()
        }
    }

    /// Validates parameter ranges.
    ///
    /// # Panics
    /// Panics on out-of-range values (κ < 0, ε ∉ (0,1), zero iterations).
    pub fn validate(&self) {
        assert!(self.kappa >= 0.0, "kappa must be non-negative");
        assert!(
            self.init_threshold > 0.0 && self.init_threshold < 1.0,
            "init threshold must lie strictly inside (0,1): got {}",
            self.init_threshold
        );
        assert!(self.tolerance > 0.0, "tolerance must be positive");
        assert!(self.max_iterations > 0, "need at least one EM iteration");
        assert!(
            self.averaging_window > 0,
            "averaging window must be positive"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_the_paper_system() {
        let c = ZeroErConfig::default();
        assert_eq!(c.feature_dependence, FeatureDependence::Grouped);
        assert_eq!(c.regularization, Regularization::Adaptive);
        assert!(c.shared_correlation);
        assert!(c.transitivity);
        assert_eq!(c.kappa, 0.15);
        assert_eq!(c.init_threshold, 0.5);
        assert_eq!(c.max_iterations, 200);
        c.validate();
    }

    #[test]
    fn ablation_uses_paper_kappa_for_partial_variants() {
        let c = ZeroErConfig::ablation(FeatureDependence::Independent, Regularization::Tikhonov);
        assert_eq!(c.kappa, 0.6);
        assert!(!c.shared_correlation);
        assert!(!c.transitivity);
        c.validate();
    }

    #[test]
    fn gap_disables_only_transitivity() {
        let c = ZeroErConfig::gap();
        assert!(!c.transitivity);
        assert!(c.shared_correlation);
        assert_eq!(c.kappa, 0.15);
    }

    #[test]
    #[should_panic(expected = "init threshold")]
    fn epsilon_one_is_rejected() {
        // §7.4: ε = 0 or 1 assigns no data to one component and EM cannot
        // run — we reject it up front.
        let c = ZeroErConfig {
            init_threshold: 1.0,
            ..Default::default()
        };
        c.validate();
    }

    #[test]
    #[should_panic(expected = "kappa")]
    fn negative_kappa_rejected() {
        let c = ZeroErConfig {
            kappa: -0.1,
            ..Default::default()
        };
        c.validate();
    }

    #[test]
    fn config_clone_equality() {
        let c = ZeroErConfig::gap();
        assert_eq!(c, c.clone());
    }
}
