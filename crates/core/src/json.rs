//! Minimal JSON reader/writer for model snapshots.
//!
//! The workspace builds offline (no serde_json), and snapshots only need
//! a small, predictable subset of JSON: objects, arrays, strings, finite
//! numbers, booleans and null. Numbers are written with Rust's shortest
//! round-trip formatting, so an `f64` survives a serialize → parse cycle
//! bit-for-bit — which is what lets snapshot scoring reproduce live-model
//! posteriors exactly.

use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A finite number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in insertion order.
    Obj(Vec<(String, Json)>),
}

/// Parse or schema error, with a byte offset for parse failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Human-readable description.
    pub message: String,
    /// Byte offset in the input where parsing failed (0 for schema
    /// errors raised by consumers).
    pub offset: usize,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} (at byte {})", self.message, self.offset)
    }
}

impl std::error::Error for JsonError {}

impl JsonError {
    /// A schema-level error (not tied to an input position).
    pub fn schema(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
            offset: 0,
        }
    }
}

impl Json {
    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The numeric value as a usize, if integral and non-negative.
    pub fn as_usize(&self) -> Option<usize> {
        match self {
            Json::Num(v) if *v >= 0.0 && v.fract() == 0.0 && *v <= u32::MAX as f64 => {
                Some(*v as usize)
            }
            _ => None,
        }
    }

    /// The boolean value, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Looks up a key, if this is an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Required-field lookup with a schema error on absence.
    pub fn require(&self, key: &str) -> Result<&Json, JsonError> {
        self.get(key)
            .ok_or_else(|| JsonError::schema(format!("missing field {key:?}")))
    }

    /// Renders to compact JSON text.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    fn render_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(v) => {
                if v.is_finite() {
                    // `{:?}` is the shortest representation that parses
                    // back to the identical f64.
                    let _ = write!(out, "{v:?}");
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => render_string(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.render_into(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    render_string(k, out);
                    out.push(':');
                    v.render_into(out);
                }
                out.push('}');
            }
        }
    }

    /// Parses JSON text.
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let bytes = text.as_bytes();
        let mut pos = 0;
        let value = parse_value(bytes, &mut pos, 0)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(err("trailing garbage after JSON value", pos));
        }
        Ok(value)
    }

    /// Convenience constructor: array of numbers.
    pub fn nums(values: &[f64]) -> Json {
        Json::Arr(values.iter().map(|&v| Json::Num(v)).collect())
    }

    /// Convenience accessor: array of numbers.
    pub fn to_nums(&self) -> Result<Vec<f64>, JsonError> {
        self.as_arr()
            .ok_or_else(|| JsonError::schema("expected a numeric array"))?
            .iter()
            .map(|v| {
                v.as_f64()
                    .ok_or_else(|| JsonError::schema("expected a number"))
            })
            .collect()
    }
}

fn render_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn err(message: &str, offset: usize) -> JsonError {
    JsonError {
        message: message.to_string(),
        offset,
    }
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, b: u8) -> Result<(), JsonError> {
    if *pos < bytes.len() && bytes[*pos] == b {
        *pos += 1;
        Ok(())
    } else {
        Err(err(&format!("expected {:?}", b as char), *pos))
    }
}

/// Maximum container nesting: snapshots nest 3–4 deep, so this is far
/// above legitimate use but keeps hostile input from overflowing the
/// stack (the parser recurses once per nesting level).
const MAX_DEPTH: usize = 128;

fn parse_value(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<Json, JsonError> {
    if depth > MAX_DEPTH {
        return Err(err("nesting too deep", *pos));
    }
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err(err("unexpected end of input", *pos)),
        Some(b'{') => parse_object(bytes, pos, depth),
        Some(b'[') => parse_array(bytes, pos, depth),
        Some(b'"') => Ok(Json::Str(parse_string(bytes, pos)?)),
        Some(b't') => parse_keyword(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_keyword(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_keyword(bytes, pos, "null", Json::Null),
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_keyword(
    bytes: &[u8],
    pos: &mut usize,
    word: &str,
    value: Json,
) -> Result<Json, JsonError> {
    if bytes[*pos..].starts_with(word.as_bytes()) {
        *pos += word.len();
        Ok(value)
    } else {
        Err(err(&format!("invalid literal (expected {word})"), *pos))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).expect("ascii slice");
    text.parse::<f64>()
        .map(Json::Num)
        .map_err(|_| err("invalid number", start))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, JsonError> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err(err("unterminated string", *pos)),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let code = parse_hex4(bytes, *pos + 1)?;
                        *pos += 4;
                        // Surrogate pairs: a high surrogate must be
                        // followed by an escaped low surrogate.
                        let c = if (0xD800..0xDC00).contains(&code) {
                            if bytes.get(*pos + 1) == Some(&b'\\')
                                && bytes.get(*pos + 2) == Some(&b'u')
                            {
                                let low = parse_hex4(bytes, *pos + 3)?;
                                if (0xDC00..0xE000).contains(&low) {
                                    *pos += 6;
                                    let combined =
                                        0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
                                    char::from_u32(combined)
                                } else {
                                    None // high surrogate not followed by a low one
                                }
                            } else {
                                None
                            }
                        } else {
                            char::from_u32(code)
                        };
                        out.push(c.ok_or_else(|| err("invalid unicode escape", *pos))?);
                    }
                    _ => return Err(err("invalid escape", *pos)),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume the whole run up to the next quote or escape in
                // one step (validating UTF-8 once per run, not per char).
                let start = *pos;
                while *pos < bytes.len() && bytes[*pos] != b'"' && bytes[*pos] != b'\\' {
                    *pos += 1;
                }
                let chunk = std::str::from_utf8(&bytes[start..*pos])
                    .map_err(|_| err("invalid UTF-8", start))?;
                out.push_str(chunk);
            }
        }
    }
}

fn parse_hex4(bytes: &[u8], at: usize) -> Result<u32, JsonError> {
    if at + 4 > bytes.len() {
        return Err(err("truncated unicode escape", at));
    }
    let text = std::str::from_utf8(&bytes[at..at + 4]).map_err(|_| err("bad escape", at))?;
    u32::from_str_radix(text, 16).map_err(|_| err("bad unicode escape", at))
}

fn parse_array(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<Json, JsonError> {
    expect(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos, depth + 1)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(err("expected ',' or ']'", *pos)),
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<Json, JsonError> {
    expect(bytes, pos, b'{')?;
    let mut fields = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(fields));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        expect(bytes, pos, b':')?;
        let value = parse_value(bytes, pos, depth + 1)?;
        fields.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            _ => return Err(err("expected ',' or '}'", *pos)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_preserves_f64_bits() {
        for v in [0.1, 1.0 / 3.0, std::f64::consts::PI, 1e-300, -7.25, 0.0] {
            let text = Json::Num(v).render();
            let back = Json::parse(&text).unwrap().as_f64().unwrap();
            assert_eq!(back.to_bits(), v.to_bits(), "{v} -> {text}");
        }
    }

    #[test]
    fn object_round_trip() {
        let j = Json::Obj(vec![
            ("name".into(), Json::Str("a \"quoted\"\nvalue".into())),
            ("xs".into(), Json::nums(&[1.5, -2.0])),
            ("flag".into(), Json::Bool(true)),
            ("none".into(), Json::Null),
        ]);
        let text = j.render();
        assert_eq!(Json::parse(&text).unwrap(), j);
    }

    #[test]
    fn parse_handles_whitespace_and_nesting() {
        let j = Json::parse(" { \"a\" : [ 1 , { \"b\" : [ ] } ] } ").unwrap();
        assert_eq!(j.get("a").unwrap().as_arr().unwrap().len(), 2);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("12 34").is_err());
        assert!(Json::parse("\"unterminated").is_err());
    }

    #[test]
    fn unicode_escapes() {
        let j = Json::parse("\"\\u00e9\\ud83d\\ude00\"").unwrap();
        assert_eq!(j.as_str().unwrap(), "é😀");
    }

    #[test]
    fn deep_nesting_is_rejected_not_a_stack_overflow() {
        let hostile = "[".repeat(100_000);
        let e = Json::parse(&hostile).unwrap_err();
        assert!(e.message.contains("nesting too deep"), "{e}");
        // Legitimate nesting well past snapshot depth still parses.
        let ok = format!("{}1{}", "[".repeat(64), "]".repeat(64));
        assert!(Json::parse(&ok).is_ok());
    }

    #[test]
    fn invalid_surrogate_pairs_are_rejected() {
        // High surrogate followed by a non-surrogate escape.
        assert!(Json::parse("\"\\ud800\\u0061\"").is_err());
        // High surrogate followed by plain text.
        assert!(Json::parse("\"\\ud800x\"").is_err());
        // Lone low surrogate.
        assert!(Json::parse("\"\\udc00\"").is_err());
    }

    #[test]
    fn usize_accessor_guards() {
        assert_eq!(Json::Num(3.0).as_usize(), Some(3));
        assert_eq!(Json::Num(3.5).as_usize(), None);
        assert_eq!(Json::Num(-1.0).as_usize(), None);
    }
}
