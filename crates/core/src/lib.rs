//! ZeroER: unsupervised entity resolution with zero labeled examples.
//!
//! This crate implements the paper's primary contribution: a two-component
//! generative model over similarity feature vectors, where matches are
//! drawn from an **M-distribution** and unmatches from a
//! **U-distribution**, fit by Expectation-Maximization without any labels.
//!
//! The four ER-specific innovations on top of a vanilla Gaussian mixture:
//!
//! * **Feature grouping** (§3.2) — block-diagonal covariance following the
//!   attribute structure of the feature matrix
//!   ([`config::FeatureDependence`]).
//! * **Adaptive regularization** (§3.3) — `Σ_C = S_C + K`,
//!   `K = κ·diag((µ_M − µ_U)²)` ([`config::Regularization`]).
//! * **Shared Pearson correlation** (§4) — `S_C = Λ_C R Λ_C` with one `R`
//!   estimated from all data, halving the parameters learned from the
//!   scarce match class ([`ZeroErConfig::shared_correlation`]).
//! * **Transitivity as a soft constraint** (§5) — posterior calibration
//!   after every E-step ([`transitivity::TransitivityCalibrator`]), with a
//!   three-model joint trainer for record linkage
//!   ([`linkage::LinkageModel`]).
//!
//! The main entry points are [`GenerativeModel::fit`] for deduplication /
//! plain matching and [`LinkageModel::fit`] for record linkage with
//! cross-table transitivity.
//!
//! ```
//! use zeroer_core::{GenerativeModel, ZeroErConfig};
//! use zeroer_linalg::block::GroupLayout;
//! use zeroer_linalg::Matrix;
//!
//! // Four similarity features in two attribute groups; four pairs.
//! let x = Matrix::from_rows(&[
//!     &[0.95, 0.9, 0.97, 1.0], // looks like a match
//!     &[0.10, 0.2, 0.05, 0.0],
//!     &[0.15, 0.1, 0.12, 0.0],
//!     &[0.90, 1.0, 0.93, 1.0], // looks like a match
//! ]);
//! let layout = GroupLayout::from_sizes(&[2, 2]);
//! let mut model = GenerativeModel::new(ZeroErConfig::default(), layout);
//! let summary = model.fit(&x, None);
//! let labels = model.labels();
//! assert!(labels[0] && labels[3] && !labels[1] && !labels[2]);
//! assert!(summary.iterations >= 1);
//! ```

#![warn(missing_docs)]

pub mod config;
pub mod json;
pub mod linkage;
pub mod model;
pub mod report;
pub mod snapshot;
pub mod transitivity;
pub mod union_find;

pub use config::{FeatureDependence, Regularization, ZeroErConfig};
pub use linkage::{FittedLinkage, LinkageModel, LinkageOutcome, LinkageTask};
pub use model::{eq3_posterior, FitSummary, GenerativeModel};
pub use report::{FeatureReport, ModelReport};
pub use snapshot::{LinkageSnapshot, ModelSnapshot, ScoreBatch, SnapshotScorer};
pub use transitivity::TransitivityCalibrator;
pub use union_find::{clusters_of_pairs, UnionFind};
