//! Record linkage with cross-table transitivity: the three-model joint
//! trainer of §5.
//!
//! When `T ≠ T'`, transitivity couples *three* generative models: `F` over
//! cross-table pairs, `Fl` over within-`T` pairs, and `Fr` over
//! within-`T'` pairs. If `(t1, t2)` and `(t1, t3)` are cross matches
//! sharing the left tuple `t1`, then `(t2, t3)` — a within-`T'` pair — must
//! match, so `F`'s E-step calibration reads and can modify `Fr`'s
//! posteriors (and symmetrically `Fl`'s). The paper trains the models
//! jointly, each iteration running
//! `F.E(), F.M(), Fl.M(), Fl.E(), Fr.M(), Fr.E()` so the within-table
//! M-steps pick up the posterior edits made by `F`'s E-step.

use crate::config::ZeroErConfig;
use crate::model::{FitSummary, GenerativeModel};
use crate::transitivity::TransitivityCalibrator;
use std::collections::{BTreeMap, HashMap};
use zeroer_linalg::block::GroupLayout;
use zeroer_linalg::Matrix;

/// One leg of a linkage task: a feature matrix with its pair endpoints and
/// grouping layout.
#[derive(Debug, Clone)]
pub struct LinkageTask {
    /// `N × d` feature matrix for this leg's candidate pairs.
    pub features: Matrix,
    /// Pair endpoints, aligned with the matrix rows. For the cross leg:
    /// `(left index, right index)`. For within-table legs: `(i, j)` within
    /// that table.
    pub pairs: Vec<(usize, usize)>,
    /// Feature grouping.
    pub layout: GroupLayout,
}

impl LinkageTask {
    /// Builds a leg, checking row/pair alignment.
    ///
    /// # Panics
    /// Panics if `features.rows() != pairs.len()`.
    pub fn new(features: Matrix, pairs: Vec<(usize, usize)>, layout: GroupLayout) -> Self {
        assert_eq!(
            features.rows(),
            pairs.len(),
            "one pair per feature row required"
        );
        Self {
            features,
            pairs,
            layout,
        }
    }
}

/// The three fitted generative models a linkage fit produces, returned
/// by [`LinkageModel::fit_models`] so callers can freeze them into a
/// [`crate::snapshot::LinkageSnapshot`] for online (streaming) scoring.
///
/// `left`/`right` are `None` when the corresponding within-table leg had
/// no candidate pairs (the trainer skips fitting a model over nothing).
pub struct FittedLinkage {
    /// The cross-table model `F`, fitted.
    pub cross: GenerativeModel,
    /// The within-left model `Fl`, if the left leg had pairs.
    pub left: Option<GenerativeModel>,
    /// The within-right model `Fr`, if the right leg had pairs.
    pub right: Option<GenerativeModel>,
}

/// Result of a [`LinkageModel::fit`].
#[derive(Debug, Clone)]
pub struct LinkageOutcome {
    /// Posterior match probabilities for the cross pairs.
    pub cross_gammas: Vec<f64>,
    /// Hard labels for the cross pairs (Eq. 5).
    pub cross_labels: Vec<bool>,
    /// Posteriors of the within-left model (empty if no left pairs).
    pub left_gammas: Vec<f64>,
    /// Posteriors of the within-right model (empty if no right pairs).
    pub right_gammas: Vec<f64>,
    /// EM summary of the cross model `F`.
    pub summary: FitSummary,
}

/// Indexes the triangles linking cross pairs to within-table pairs.
struct CrossCalibrator {
    /// left node → (right node, cross row). Ordered for deterministic
    /// calibration sweeps.
    by_left: BTreeMap<usize, Vec<(usize, usize)>>,
    /// right node → (left node, cross row).
    by_right: BTreeMap<usize, Vec<(usize, usize)>>,
    /// within-left pair → row in `Fl`.
    left_index: HashMap<(usize, usize), usize>,
    /// within-right pair → row in `Fr`.
    right_index: HashMap<(usize, usize), usize>,
}

impl CrossCalibrator {
    fn new(cross: &[(usize, usize)], left: &[(usize, usize)], right: &[(usize, usize)]) -> Self {
        let mut by_left: BTreeMap<usize, Vec<(usize, usize)>> = BTreeMap::new();
        let mut by_right: BTreeMap<usize, Vec<(usize, usize)>> = BTreeMap::new();
        for (row, &(l, r)) in cross.iter().enumerate() {
            by_left.entry(l).or_default().push((r, row));
            by_right.entry(r).or_default().push((l, row));
        }
        let norm = |(a, b): (usize, usize)| (a.min(b), a.max(b));
        Self {
            by_left,
            by_right,
            left_index: left
                .iter()
                .enumerate()
                .map(|(i, &p)| (norm(p), i))
                .collect(),
            right_index: right
                .iter()
                .enumerate()
                .map(|(i, &p)| (norm(p), i))
                .collect(),
        }
    }

    /// Calibrates one "fan" direction: triangles formed by two hot cross
    /// pairs sharing a pivot node plus the implied within-table pair.
    fn calibrate_side(
        fan: &BTreeMap<usize, Vec<(usize, usize)>>,
        within_index: &HashMap<(usize, usize), usize>,
        cross_g: &mut [f64],
        within_g: &mut [f64],
    ) {
        for neighbors in fan.values() {
            let hot: Vec<(usize, usize)> = neighbors
                .iter()
                .copied()
                .filter(|&(_, row)| cross_g[row] > 0.5)
                .collect();
            if hot.len() < 2 {
                continue;
            }
            for i in 0..hot.len() {
                for j in (i + 1)..hot.len() {
                    let (n2, p12) = hot[i];
                    let (n3, p13) = hot[j];
                    let g12 = cross_g[p12];
                    let g13 = cross_g[p13];
                    if g12 <= 0.5 || g13 <= 0.5 {
                        continue;
                    }
                    let key = (n2.min(n3), n2.max(n3));
                    let p23 = within_index.get(&key).copied();
                    let g23 = p23.map_or(0.0, |r| within_g[r]);
                    if g12 * g13 <= g23 {
                        continue;
                    }
                    let c12 = (g12 - 0.5).abs();
                    let c13 = (g13 - 0.5).abs();
                    let c23 = (g23 - 0.5).abs();
                    if c12 <= c13 && c12 <= c23 {
                        cross_g[p12] = if g13 > 0.0 {
                            (g23 / g13).clamp(0.0, 1.0)
                        } else {
                            0.0
                        };
                    } else if c13 <= c12 && c13 <= c23 {
                        cross_g[p13] = if g12 > 0.0 {
                            (g23 / g12).clamp(0.0, 1.0)
                        } else {
                            0.0
                        };
                    } else if let Some(r23) = p23 {
                        within_g[r23] = (g12 * g13).clamp(0.0, 1.0);
                    } else if c12 <= c13 {
                        cross_g[p12] = 0.0;
                    } else {
                        cross_g[p13] = 0.0;
                    }
                }
            }
        }
    }

    fn calibrate(&self, cross_g: &mut [f64], left_g: &mut [f64], right_g: &mut [f64]) {
        // Pivot on left nodes: implied pairs live in the right table.
        Self::calibrate_side(&self.by_left, &self.right_index, cross_g, right_g);
        // Pivot on right nodes: implied pairs live in the left table.
        Self::calibrate_side(&self.by_right, &self.left_index, cross_g, left_g);
    }
}

/// The three-model record-linkage trainer.
pub struct LinkageModel {
    config: ZeroErConfig,
}

impl LinkageModel {
    /// Creates the trainer.
    pub fn new(config: ZeroErConfig) -> Self {
        config.validate();
        Self { config }
    }

    /// Jointly fits `F`, `Fl`, `Fr` with the paper's interleaving and
    /// returns the cross-pair posteriors/labels.
    ///
    /// `left`/`right` may have zero pairs (e.g. blocking found no
    /// within-table candidates); the corresponding model is skipped and
    /// implied within-table pairs are treated as `γ = 0`.
    pub fn fit(
        &self,
        cross: &LinkageTask,
        left: &LinkageTask,
        right: &LinkageTask,
    ) -> LinkageOutcome {
        self.fit_models(cross, left, right).0
    }

    /// [`LinkageModel::fit`] that additionally hands back the three
    /// fitted models, so callers can capture their parameters (e.g. into
    /// a [`crate::snapshot::LinkageSnapshot`]) for frozen-model scoring.
    pub fn fit_models(
        &self,
        cross: &LinkageTask,
        left: &LinkageTask,
        right: &LinkageTask,
    ) -> (LinkageOutcome, FittedLinkage) {
        let mut f = GenerativeModel::new(self.config.clone(), cross.layout.clone());
        f.initialize(&cross.features);

        let mut fl = (!left.pairs.is_empty()).then(|| {
            let mut m = GenerativeModel::new(self.config.clone(), left.layout.clone());
            m.initialize(&left.features);
            m
        });
        let mut fr = (!right.pairs.is_empty()).then(|| {
            let mut m = GenerativeModel::new(self.config.clone(), right.layout.clone());
            m.initialize(&right.features);
            m
        });

        let calibrator = self
            .config
            .transitivity
            .then(|| CrossCalibrator::new(&cross.pairs, &left.pairs, &right.pairs));
        let within_left_cal = (self.config.transitivity && fl.is_some())
            .then(|| TransitivityCalibrator::new(&left.pairs));
        let within_right_cal = (self.config.transitivity && fr.is_some())
            .then(|| TransitivityCalibrator::new(&right.pairs));

        let n = cross.features.rows().max(1) as f64;
        let mut ll_history: Vec<f64> = Vec::new();
        let mut converged = false;
        let window = self.config.averaging_window;
        let mut recent: Vec<Vec<f64>> = Vec::new();
        let mut iterations = 0;

        // Prime F so its first E-step has parameters.
        f.m_step(&cross.features);

        let mut empty_left: Vec<f64> = vec![];
        let mut empty_right: Vec<f64> = vec![];

        for iter in 0..self.config.max_iterations {
            iterations = iter + 1;
            // F.E() + cross calibration (may edit Fl/Fr posteriors).
            let ll = f.e_step(&cross.features);
            if let Some(cal) = &calibrator {
                let lg: &mut [f64] = fl.as_mut().map_or(&mut empty_left[..], |m| m.gammas_mut());
                let rg: &mut [f64] = fr.as_mut().map_or(&mut empty_right[..], |m| m.gammas_mut());
                cal.calibrate(f.gammas_mut(), lg, rg);
            }
            // F.M().
            f.m_step(&cross.features);
            // Fl.M(); Fl.E() — M first to absorb F's posterior edits.
            if let Some(m) = fl.as_mut() {
                m.m_step(&left.features);
                m.e_step(&left.features);
                if let Some(cal) = &within_left_cal {
                    cal.calibrate(m.gammas_mut());
                }
            }
            // Fr.M(); Fr.E().
            if let Some(m) = fr.as_mut() {
                m.m_step(&right.features);
                m.e_step(&right.features);
                if let Some(cal) = &within_right_cal {
                    cal.calibrate(m.gammas_mut());
                }
            }

            ll_history.push(ll);
            if recent.len() == window {
                recent.remove(0);
            }
            recent.push(f.gammas().to_vec());
            if iter > 0 {
                let prev = ll_history[iter - 1];
                if ((ll - prev).abs() / n) < self.config.tolerance {
                    converged = true;
                    break;
                }
            }
        }

        let mut cross_gammas = f.gammas().to_vec();
        if !converged && recent.len() > 1 {
            let k = recent.len() as f64;
            for (i, g) in cross_gammas.iter_mut().enumerate() {
                *g = recent.iter().map(|v| v[i]).sum::<f64>() / k;
            }
        }
        let cross_labels = cross_gammas.iter().map(|&g| g > 0.5).collect();

        let outcome = LinkageOutcome {
            cross_gammas,
            cross_labels,
            left_gammas: fl.as_ref().map(|m| m.gammas().to_vec()).unwrap_or_default(),
            right_gammas: fr.as_ref().map(|m| m.gammas().to_vec()).unwrap_or_default(),
            summary: FitSummary {
                iterations,
                converged,
                ll_history,
            },
        };
        (
            outcome,
            FittedLinkage {
                cross: f,
                left: fl,
                right: fr,
            },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Builds a toy linkage problem: `n_ent` entities, each present in both
    /// tables; cross pairs = Cartesian over a small block; match features
    /// high, unmatch low.
    fn toy_linkage(seed: u64) -> (LinkageTask, LinkageTask, LinkageTask, Vec<bool>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let n_ent = 12;
        let d = 2;
        let layout = GroupLayout::from_sizes(&[2]);
        let mut pairs = Vec::new();
        let mut rows = Vec::new();
        let mut truth = Vec::new();
        for l in 0..n_ent {
            for r in 0..n_ent {
                let is_match = l == r;
                pairs.push((l, r));
                truth.push(is_match);
                let base: f64 = if is_match { 0.9 } else { 0.12 };
                for _ in 0..d {
                    rows.push((base + rng.gen_range(-0.07..0.07f64)).clamp(0.0, 1.0));
                }
            }
        }
        let cross = LinkageTask::new(
            Matrix::from_vec(pairs.len(), d, rows),
            pairs,
            layout.clone(),
        );
        // Within-table legs: a few unmatched pairs each (no duplicates
        // inside either table).
        let mk_within = |seed: u64| {
            let mut rng = StdRng::seed_from_u64(seed);
            let pairs: Vec<(usize, usize)> = (0..n_ent - 1).map(|i| (i, i + 1)).collect();
            let mut rows = Vec::new();
            for _ in &pairs {
                for _ in 0..d {
                    rows.push(rng.gen_range(0.05..0.2));
                }
            }
            LinkageTask::new(
                Matrix::from_vec(pairs.len(), d, rows),
                pairs,
                layout.clone(),
            )
        };
        (cross, mk_within(seed + 1), mk_within(seed + 2), truth)
    }

    #[test]
    fn linkage_recovers_diagonal_matches() {
        let (cross, left, right, truth) = toy_linkage(3);
        let out = LinkageModel::new(ZeroErConfig::default()).fit(&cross, &left, &right);
        assert_eq!(out.cross_labels, truth);
        assert!(out.summary.iterations >= 1);
    }

    #[test]
    fn linkage_without_transitivity_also_works_on_easy_data() {
        let (cross, left, right, truth) = toy_linkage(4);
        let cfg = ZeroErConfig {
            transitivity: false,
            ..Default::default()
        };
        let out = LinkageModel::new(cfg).fit(&cross, &left, &right);
        assert_eq!(out.cross_labels, truth);
    }

    #[test]
    fn empty_within_legs_are_tolerated() {
        let (cross, _, _, truth) = toy_linkage(5);
        let layout = GroupLayout::from_sizes(&[2]);
        let empty = LinkageTask::new(Matrix::zeros(0, 2), vec![], layout.clone());
        let empty2 = LinkageTask::new(Matrix::zeros(0, 2), vec![], layout);
        let out = LinkageModel::new(ZeroErConfig::default()).fit(&cross, &empty, &empty2);
        assert_eq!(out.cross_labels, truth);
        assert!(out.left_gammas.is_empty());
        assert!(out.right_gammas.is_empty());
    }

    #[test]
    fn transitivity_suppresses_one_to_many_conflicts() {
        // Left tuple 0 strongly matches right 0 and weakly "matches"
        // right 1, but right pair (0,1) is a known non-match: the
        // calibration must suppress the weaker cross pair.
        let layout = GroupLayout::from_sizes(&[1]);
        let cross_pairs = vec![
            (0usize, 0usize),
            (0, 1),
            (5, 5),
            (6, 6),
            (7, 8),
            (9, 9),
            (2, 3),
            (3, 2),
        ];
        // Features: strong match, borderline, strong, strong, low, strong, low, low.
        let cross_x = Matrix::from_rows(&[
            &[0.95],
            &[0.62],
            &[0.93],
            &[0.94],
            &[0.08],
            &[0.92],
            &[0.10],
            &[0.12],
        ]);
        let cross = LinkageTask::new(cross_x, cross_pairs, layout.clone());
        // Right pair (0,1) exists with very low similarity.
        let right = LinkageTask::new(
            Matrix::from_rows(&[&[0.05], &[0.1], &[0.07], &[0.09]]),
            vec![(0, 1), (2, 3), (4, 5), (6, 7)],
            layout.clone(),
        );
        let left = LinkageTask::new(Matrix::zeros(0, 1), vec![], layout);
        let out = LinkageModel::new(ZeroErConfig::default()).fit(&cross, &left, &right);
        assert!(out.cross_labels[0], "strong pair must survive");
        assert!(
            !out.cross_labels[1],
            "conflicting weak pair must be suppressed by transitivity (γ = {})",
            out.cross_gammas[1]
        );
    }

    #[test]
    #[should_panic(expected = "one pair per feature row")]
    fn misaligned_task_panics() {
        LinkageTask::new(
            Matrix::zeros(2, 1),
            vec![(0, 0)],
            GroupLayout::from_sizes(&[1]),
        );
    }
}
