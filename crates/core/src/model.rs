//! The two-component generative model and its EM algorithm (Algorithm 1).

use crate::config::{FeatureDependence, Regularization, ZeroErConfig};
use crate::transitivity::TransitivityCalibrator;
use zeroer_linalg::block::{BlockDiag, GroupLayout};
use zeroer_linalg::gaussian::BlockGaussian;
use zeroer_linalg::stats::{
    correlation_to_covariance, covariance_to_correlation, l2_norm, weighted_covariance,
    weighted_mean, weighted_variances,
};
use zeroer_linalg::{Matrix, VARIANCE_FLOOR};

/// Guard keeping the Bernoulli prior away from exactly 0/1 so log π stays
/// finite when one component momentarily empties out.
const PRIOR_FLOOR: f64 = 1e-9;

/// The Eq. 3 posterior softmax: `γ = exp(lm) / (exp(lm) + exp(lu))`,
/// evaluated stably in the log domain, where `lm = log π_M + log p_M(x)`
/// and `lu = log π_U + log p_U(x)`.
///
/// This is the single softmax shared by live EM inference
/// ([`GenerativeModel::posterior`], [`GenerativeModel::e_step`]) and
/// frozen-snapshot scoring (`SnapshotScorer::score`), so the two paths
/// cannot drift apart numerically.
#[inline]
pub fn eq3_posterior(lm: f64, lu: f64) -> f64 {
    let max = lm.max(lu);
    (lm - max).exp() / ((lm - max).exp() + (lu - max).exp())
}

/// Outcome of a [`GenerativeModel::fit`] run.
#[derive(Debug, Clone)]
pub struct FitSummary {
    /// EM iterations executed.
    pub iterations: usize,
    /// Whether the likelihood converged before the iteration cap.
    pub converged: bool,
    /// Expected log-likelihood (Eq. 4) per iteration.
    pub ll_history: Vec<f64>,
}

impl FitSummary {
    /// Final expected log-likelihood.
    pub fn final_ll(&self) -> f64 {
        self.ll_history.last().copied().unwrap_or(f64::NEG_INFINITY)
    }
}

/// Fitted per-class parameters (Θ of §2.2).
#[derive(Debug, Clone)]
pub struct ClassParams {
    /// Mean vector µ_C.
    pub mean: Vec<f64>,
    /// Covariance Σ_C (block-diagonal per the configured dependence).
    pub cov: BlockDiag,
}

/// The ZeroER generative model: M- and U- block-Gaussians plus the match
/// prior π_M, trained by EM.
///
/// The model is deliberately *stateful* with exposed
/// [`GenerativeModel::m_step`] / [`GenerativeModel::e_step`] so the
/// record-linkage trainer (§5) can interleave steps of three models; plain
/// users call [`GenerativeModel::fit`].
pub struct GenerativeModel {
    config: ZeroErConfig,
    layout: GroupLayout,
    /// Posterior match probabilities γ_i.
    gammas: Vec<f64>,
    pi_m: f64,
    m: Option<ClassParams>,
    u: Option<ClassParams>,
    m_dist: Option<BlockGaussian>,
    u_dist: Option<BlockGaussian>,
    /// Correlation matrix estimated once from all data (§4).
    shared_corr: Option<Matrix>,
}

impl GenerativeModel {
    /// Creates an unfitted model. `layout` is the attribute grouping of
    /// the feature matrix; the configured [`FeatureDependence`] may
    /// coarsen or refine it (full → one block, independent → singletons).
    ///
    /// # Panics
    /// Panics if the configuration is invalid (see
    /// [`ZeroErConfig::validate`]).
    pub fn new(config: ZeroErConfig, layout: GroupLayout) -> Self {
        config.validate();
        let layout = match config.feature_dependence {
            FeatureDependence::Full => GroupLayout::single_group(layout.dim()),
            FeatureDependence::Independent => GroupLayout::independent(layout.dim()),
            FeatureDependence::Grouped => layout,
        };
        Self {
            config,
            layout,
            gammas: Vec::new(),
            pi_m: 0.5,
            m: None,
            u: None,
            m_dist: None,
            u_dist: None,
            shared_corr: None,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &ZeroErConfig {
        &self.config
    }

    /// The effective covariance layout.
    pub fn layout(&self) -> &GroupLayout {
        &self.layout
    }

    /// Posterior match probabilities γ (valid after init/fit).
    pub fn gammas(&self) -> &[f64] {
        &self.gammas
    }

    /// Mutable posteriors — exposed for the transitivity calibrator and
    /// the linkage trainer.
    pub fn gammas_mut(&mut self) -> &mut [f64] {
        &mut self.gammas
    }

    /// Match prior π_M.
    pub fn pi_m(&self) -> f64 {
        self.pi_m
    }

    /// Fitted M-distribution parameters (after at least one M-step).
    pub fn m_params(&self) -> Option<&ClassParams> {
        self.m.as_ref()
    }

    /// Fitted U-distribution parameters (after at least one M-step).
    pub fn u_params(&self) -> Option<&ClassParams> {
        self.u.as_ref()
    }

    /// Hard labels from the current posteriors (Eq. 5): `γ_i > 0.5`.
    pub fn labels(&self) -> Vec<bool> {
        self.gammas.iter().map(|&g| g > 0.5).collect()
    }

    /// §6 initialization: min-max normalize the feature-vector magnitudes
    /// and threshold at ε.
    pub fn initialize(&mut self, x: &Matrix) {
        assert_eq!(
            x.cols(),
            self.layout.dim(),
            "feature/layout dimensionality mismatch"
        );
        let norms: Vec<f64> = (0..x.rows()).map(|i| l2_norm(x.row(i))).collect();
        let lo = norms.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = norms.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let span = hi - lo;
        self.gammas = norms
            .iter()
            .map(|&nv| {
                let scaled = if span > 0.0 { (nv - lo) / span } else { 0.0 };
                if scaled > self.config.init_threshold {
                    1.0
                } else {
                    0.0
                }
            })
            .collect();
        self.shared_corr = None;
    }

    /// The adaptive / Tikhonov regularization diagonal `K` (Eq. 13).
    fn regularization_diag(&self, mu_m: &[f64], mu_u: &[f64]) -> Vec<f64> {
        let d = mu_m.len();
        match self.config.regularization {
            Regularization::None => vec![0.0; d],
            Regularization::Tikhonov => vec![self.config.kappa; d],
            Regularization::Adaptive => mu_m
                .iter()
                .zip(mu_u)
                .map(|(&a, &b)| self.config.kappa * (a - b) * (a - b))
                .collect(),
        }
    }

    /// Builds the class covariance, honoring correlation sharing (§4).
    fn class_covariance(&mut self, x: &Matrix, weights: &[f64], mean: &[f64]) -> BlockDiag {
        if self.config.shared_correlation {
            // S_C = Λ_C R Λ_C with R estimated once from all data.
            if self.shared_corr.is_none() {
                let ones = vec![1.0; x.rows()];
                let all_mean = weighted_mean(x, &ones);
                let all_cov = weighted_covariance(x, &ones, &all_mean);
                self.shared_corr = Some(covariance_to_correlation(&all_cov));
            }
            let r = self.shared_corr.as_ref().expect("just populated");
            let var = weighted_variances(x, weights, mean);
            let sd: Vec<f64> = var.iter().map(|v| v.max(0.0).sqrt()).collect();
            let full = correlation_to_covariance(r, &sd);
            BlockDiag::from_dense(&full, &self.layout)
        } else {
            let full = weighted_covariance(x, weights, mean);
            BlockDiag::from_dense(&full, &self.layout)
        }
    }

    /// The M-step (Eq. 8 / 11 / 13 / 15): re-estimates π, µ_C, Σ_C from
    /// the current posteriors.
    ///
    /// # Panics
    /// Panics if called before [`GenerativeModel::initialize`].
    pub fn m_step(&mut self, x: &Matrix) {
        assert_eq!(
            self.gammas.len(),
            x.rows(),
            "model not initialized for this matrix"
        );
        let n = x.rows() as f64;
        let gm: Vec<f64> = self.gammas.clone();
        let gu: Vec<f64> = gm.iter().map(|g| 1.0 - g).collect();
        let nm: f64 = gm.iter().sum();

        self.pi_m = (nm / n).clamp(PRIOR_FLOOR, 1.0 - PRIOR_FLOOR);

        let mu_m = weighted_mean(x, &gm);
        let mu_u = weighted_mean(x, &gu);

        let mut cov_m = self.class_covariance(x, &gm, &mu_m);
        let mut cov_u = self.class_covariance(x, &gu, &mu_u);

        let k = self.regularization_diag(&mu_m, &mu_u);
        cov_m.add_diag(&k);
        cov_u.add_diag(&k);
        // Numerical floor keeps the unregularized ablation runnable when a
        // feature fully degenerates (§3.3's singularity pathology).
        let floor = vec![VARIANCE_FLOOR; self.layout.dim()];
        cov_m.add_diag(&floor);
        cov_u.add_diag(&floor);

        self.m_dist = Some(
            BlockGaussian::new(mu_m.clone(), &cov_m)
                .expect("floored covariance must be positive definite"),
        );
        self.u_dist = Some(
            BlockGaussian::new(mu_u.clone(), &cov_u)
                .expect("floored covariance must be positive definite"),
        );
        self.m = Some(ClassParams {
            mean: mu_m,
            cov: cov_m,
        });
        self.u = Some(ClassParams {
            mean: mu_u,
            cov: cov_u,
        });
    }

    /// The E-step (Eq. 3): recomputes posteriors in the log domain and
    /// returns the expected log-likelihood (Eq. 4).
    ///
    /// # Panics
    /// Panics if called before the first M-step.
    pub fn e_step(&mut self, x: &Matrix) -> f64 {
        let m_dist = self.m_dist.as_ref().expect("e_step before m_step");
        let u_dist = self.u_dist.as_ref().expect("e_step before m_step");
        let log_pi_m = self.pi_m.ln();
        let log_pi_u = (1.0 - self.pi_m).ln();
        let mut ll = 0.0;
        for i in 0..x.rows() {
            let row = x.row(i);
            let lm = log_pi_m + m_dist.log_pdf(row);
            let lu = log_pi_u + u_dist.log_pdf(row);
            let gm = eq3_posterior(lm, lu);
            self.gammas[i] = gm;
            ll += gm * lm + (1.0 - gm) * lu;
        }
        ll
    }

    /// Runs Algorithm 1: initialize → loop {M-step; E-step; transitivity
    /// calibration} → label.
    ///
    /// `calibrator` supplies the candidate-pair endpoints for the
    /// transitivity soft constraint; pass `None` to skip it (it is also
    /// skipped when `config.transitivity` is false).
    pub fn fit(&mut self, x: &Matrix, calibrator: Option<&TransitivityCalibrator>) -> FitSummary {
        self.initialize(x);
        self.run_em(x, calibrator)
    }

    /// EM main loop starting from the current posteriors (used by `fit`
    /// and by the linkage trainer after joint initialization).
    pub fn run_em(
        &mut self,
        x: &Matrix,
        calibrator: Option<&TransitivityCalibrator>,
    ) -> FitSummary {
        let n = x.rows().max(1) as f64;
        let mut ll_history = Vec::new();
        let mut converged = false;
        let window = self.config.averaging_window;
        let max_iter = self.config.max_iterations;
        // Ring buffer of the last `window` posterior vectors for §6's
        // averaging fallback.
        let mut recent: Vec<Vec<f64>> = Vec::new();

        let mut iterations = 0;
        for iter in 0..max_iter {
            iterations = iter + 1;
            self.m_step(x);
            let ll = self.e_step(x);
            if self.config.transitivity {
                if let Some(cal) = calibrator {
                    cal.calibrate(&mut self.gammas);
                }
            }
            ll_history.push(ll);
            if recent.len() == window {
                recent.remove(0);
            }
            recent.push(self.gammas.clone());
            if iter > 0 {
                let prev = ll_history[iter - 1];
                if ((ll - prev).abs() / n) < self.config.tolerance {
                    converged = true;
                    break;
                }
            }
        }

        if !converged && recent.len() > 1 {
            // §6: average the posteriors over the last `window` iterations
            // when terminating on the iteration cap.
            let k = recent.len() as f64;
            for i in 0..self.gammas.len() {
                self.gammas[i] = recent.iter().map(|g| g[i]).sum::<f64>() / k;
            }
        }

        FitSummary {
            iterations,
            converged,
            ll_history,
        }
    }

    /// Observed-data log-likelihood `Σ_i log(π_M p_M(x_i) + π_U p_U(x_i))`.
    ///
    /// Unlike the expected complete-data likelihood (Eq. 4) returned by
    /// [`GenerativeModel::e_step`], this quantity is guaranteed
    /// non-decreasing under *exact* EM (no regularization, no correlation
    /// sharing) — used by tests and diagnostics.
    ///
    /// # Panics
    /// Panics if the model has no fitted parameters yet.
    pub fn observed_log_likelihood(&self, x: &Matrix) -> f64 {
        let m_dist = self.m_dist.as_ref().expect("model not fitted");
        let u_dist = self.u_dist.as_ref().expect("model not fitted");
        let log_pi_m = self.pi_m.ln();
        let log_pi_u = (1.0 - self.pi_m).ln();
        (0..x.rows())
            .map(|i| {
                let row = x.row(i);
                let lm = log_pi_m + m_dist.log_pdf(row);
                let lu = log_pi_u + u_dist.log_pdf(row);
                let max = lm.max(lu);
                max + ((lm - max).exp() + (lu - max).exp()).ln()
            })
            .sum()
    }

    /// Posterior match probability for a single new feature vector using
    /// the fitted parameters (inference on unseen pairs, Figure 4(c)).
    ///
    /// # Panics
    /// Panics if the model is unfitted.
    pub fn posterior(&self, row: &[f64]) -> f64 {
        let m_dist = self.m_dist.as_ref().expect("model not fitted");
        let u_dist = self.u_dist.as_ref().expect("model not fitted");
        let lm = self.pi_m.ln() + m_dist.log_pdf(row);
        let lu = (1.0 - self.pi_m).ln() + u_dist.log_pdf(row);
        eq3_posterior(lm, lu)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Synthesizes an easy two-cluster dataset: matches near 0.9,
    /// unmatches near 0.1, with `d` features in the given groups.
    fn easy_data(
        n_match: usize,
        n_unmatch: usize,
        sizes: &[usize],
        seed: u64,
    ) -> (Matrix, Vec<bool>) {
        let d: usize = sizes.iter().sum();
        let mut rng = StdRng::seed_from_u64(seed);
        let mut data = Vec::with_capacity((n_match + n_unmatch) * d);
        let mut truth = Vec::new();
        for _ in 0..n_match {
            for _ in 0..d {
                data.push(0.9 + rng.gen_range(-0.08..0.08));
            }
            truth.push(true);
        }
        for _ in 0..n_unmatch {
            for _ in 0..d {
                data.push(0.1 + rng.gen_range(-0.08..0.08));
            }
            truth.push(false);
        }
        (Matrix::from_vec(n_match + n_unmatch, d, data), truth)
    }

    #[test]
    fn separable_clusters_are_recovered() {
        let (x, truth) = easy_data(20, 180, &[2, 3], 1);
        let mut m = GenerativeModel::new(ZeroErConfig::default(), GroupLayout::from_sizes(&[2, 3]));
        let summary = m.fit(&x, None);
        assert_eq!(m.labels(), truth);
        assert!(summary.iterations >= 1);
    }

    #[test]
    fn heavy_imbalance_is_handled() {
        // 5 matches vs 500 unmatches — the §4 regime.
        let (x, truth) = easy_data(5, 500, &[2, 2], 2);
        let mut m = GenerativeModel::new(ZeroErConfig::default(), GroupLayout::from_sizes(&[2, 2]));
        m.fit(&x, None);
        assert_eq!(m.labels(), truth);
        assert!(
            m.pi_m() < 0.05,
            "prior should reflect the imbalance, got {}",
            m.pi_m()
        );
    }

    #[test]
    fn gammas_stay_probabilities() {
        let (x, _) = easy_data(10, 90, &[3], 3);
        let mut m = GenerativeModel::new(ZeroErConfig::default(), GroupLayout::from_sizes(&[3]));
        m.fit(&x, None);
        assert!(m.gammas().iter().all(|g| (0.0..=1.0).contains(g)));
    }

    #[test]
    fn observed_likelihood_is_monotone_under_exact_em() {
        // The classical EM guarantee applies to the observed-data
        // likelihood when the M-step is the exact maximizer — i.e. no
        // regularization, no correlation sharing, no calibration.
        let (x, _) = easy_data(15, 85, &[4], 4);
        let cfg = ZeroErConfig {
            transitivity: false,
            shared_correlation: false,
            regularization: Regularization::None,
            feature_dependence: FeatureDependence::Full,
            ..Default::default()
        };
        let mut m = GenerativeModel::new(cfg, GroupLayout::from_sizes(&[4]));
        m.initialize(&x);
        let mut prev = f64::NEG_INFINITY;
        for _ in 0..30 {
            m.m_step(&x);
            let obs = m.observed_log_likelihood(&x);
            assert!(
                obs >= prev - 1e-6,
                "observed likelihood decreased: {prev} -> {obs}"
            );
            prev = obs;
            m.e_step(&x);
        }
    }

    #[test]
    fn all_ablation_variants_run() {
        let (x, _) = easy_data(10, 90, &[2, 2, 1], 5);
        let layout = GroupLayout::from_sizes(&[2, 2, 1]);
        for dep in [
            FeatureDependence::Full,
            FeatureDependence::Independent,
            FeatureDependence::Grouped,
        ] {
            for reg in [
                Regularization::None,
                Regularization::Tikhonov,
                Regularization::Adaptive,
            ] {
                let mut m = GenerativeModel::new(ZeroErConfig::ablation(dep, reg), layout.clone());
                let s = m.fit(&x, None);
                assert!(s.iterations >= 1, "{dep:?}/{reg:?} did not run");
                assert!(
                    m.gammas().iter().all(|g| g.is_finite()),
                    "{dep:?}/{reg:?} NaN gammas"
                );
            }
        }
    }

    #[test]
    fn effective_layout_respects_dependence_mode() {
        let layout = GroupLayout::from_sizes(&[2, 3]);
        let full = GenerativeModel::new(
            ZeroErConfig::ablation(FeatureDependence::Full, Regularization::Adaptive),
            layout.clone(),
        );
        assert_eq!(full.layout().num_groups(), 1);
        let ind = GenerativeModel::new(
            ZeroErConfig::ablation(FeatureDependence::Independent, Regularization::Adaptive),
            layout.clone(),
        );
        assert_eq!(ind.layout().num_groups(), 5);
        let grp = GenerativeModel::new(ZeroErConfig::default(), layout);
        assert_eq!(grp.layout().num_groups(), 2);
    }

    #[test]
    fn degenerate_feature_survives_with_adaptive_regularization() {
        // One feature is constant 1.0 for matches (the Figure 3 f1
        // pathology). Without regularization this is a singularity;
        // adaptive regularization must keep the fit finite and correct.
        let n_m = 10;
        let n_u = 90;
        let mut data = Vec::new();
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..n_m {
            data.push(1.0); // degenerate feature
            data.push(0.9 + rng.gen_range(-0.05..0.05));
        }
        for _ in 0..n_u {
            data.push(rng.gen_range(0.0..0.5));
            data.push(0.1 + rng.gen_range(-0.05..0.05));
        }
        let x = Matrix::from_vec(n_m + n_u, 2, data);
        let mut m = GenerativeModel::new(ZeroErConfig::default(), GroupLayout::independent(2));
        m.fit(&x, None);
        let labels = m.labels();
        assert!(labels[..n_m].iter().all(|&l| l), "matches must be found");
        assert!(
            labels[n_m..].iter().all(|&l| !l),
            "unmatches must stay unmatched"
        );
    }

    #[test]
    fn posterior_inference_on_new_rows() {
        let (x, _) = easy_data(10, 90, &[2], 8);
        let mut m = GenerativeModel::new(ZeroErConfig::default(), GroupLayout::from_sizes(&[2]));
        m.fit(&x, None);
        assert!(m.posterior(&[0.92, 0.88]) > 0.5);
        assert!(m.posterior(&[0.05, 0.12]) < 0.5);
    }

    #[test]
    fn single_row_matrix_does_not_crash() {
        let x = Matrix::from_rows(&[&[0.9, 0.8]]);
        let mut m = GenerativeModel::new(ZeroErConfig::default(), GroupLayout::from_sizes(&[2]));
        let s = m.fit(&x, None);
        assert!(s.iterations >= 1);
        assert!(m.gammas()[0].is_finite());
    }

    #[test]
    #[should_panic(expected = "dimensionality mismatch")]
    fn dimension_mismatch_panics() {
        let x = Matrix::from_rows(&[&[0.9, 0.8, 0.7]]);
        let mut m = GenerativeModel::new(ZeroErConfig::default(), GroupLayout::from_sizes(&[2]));
        m.initialize(&x);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    /// Random feature matrices with values in [0, 1] (the post-normalization
    /// domain the model is specified over).
    fn feature_matrix() -> impl Strategy<Value = Matrix> {
        (4usize..40).prop_flat_map(|n| {
            proptest::collection::vec(0.0f64..1.0, n * 4)
                .prop_map(move |v| Matrix::from_vec(n, 4, v))
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn posteriors_are_probabilities_on_arbitrary_data(x in feature_matrix()) {
            let mut m = GenerativeModel::new(
                ZeroErConfig { transitivity: false, ..Default::default() },
                GroupLayout::from_sizes(&[2, 2]),
            );
            m.fit(&x, None);
            for &g in m.gammas() {
                prop_assert!(g.is_finite());
                prop_assert!((0.0..=1.0).contains(&g), "gamma out of range: {g}");
            }
            prop_assert!((0.0..=1.0).contains(&m.pi_m()));
        }

        #[test]
        fn fitting_is_deterministic(x in feature_matrix()) {
            let cfg = ZeroErConfig::default();
            let layout = GroupLayout::from_sizes(&[2, 2]);
            let mut a = GenerativeModel::new(cfg.clone(), layout.clone());
            let mut b = GenerativeModel::new(cfg, layout);
            a.fit(&x, None);
            b.fit(&x, None);
            prop_assert_eq!(a.gammas(), b.gammas());
        }

        #[test]
        fn covariances_stay_positive_definite(x in feature_matrix()) {
            let mut m = GenerativeModel::new(
                ZeroErConfig { transitivity: false, ..Default::default() },
                GroupLayout::from_sizes(&[2, 2]),
            );
            m.initialize(&x);
            for _ in 0..5 {
                m.m_step(&x);
                // Every fitted covariance must factor (PD after floor+reg).
                prop_assert!(m.m_params().unwrap().cov.factor().is_ok());
                prop_assert!(m.u_params().unwrap().cov.factor().is_ok());
                m.e_step(&x);
            }
        }

        #[test]
        fn posterior_inference_is_bounded(x in feature_matrix(), probe in proptest::collection::vec(0.0f64..1.0, 4)) {
            let mut m = GenerativeModel::new(
                ZeroErConfig { transitivity: false, ..Default::default() },
                GroupLayout::from_sizes(&[2, 2]),
            );
            m.fit(&x, None);
            let p = m.posterior(&probe);
            prop_assert!(p.is_finite() && (0.0..=1.0).contains(&p));
        }
    }
}
