//! Model introspection: per-feature summaries of a fitted ZeroER model.
//!
//! The generative model is fully interpretable — each feature has a fitted
//! match/unmatch mean and variance, and their separation tells you which
//! features the match decision actually rests on. This module extracts
//! that report, the practical debugging tool for "why did these two
//! records (not) match?".

use crate::model::GenerativeModel;

/// Per-feature fitted statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct FeatureReport {
    /// Column index in the feature matrix.
    pub index: usize,
    /// Feature name, when provided.
    pub name: Option<String>,
    /// Fitted match-class mean µ_M.
    pub mean_match: f64,
    /// Fitted unmatch-class mean µ_U.
    pub mean_unmatch: f64,
    /// Fitted match-class standard deviation.
    pub sd_match: f64,
    /// Fitted unmatch-class standard deviation.
    pub sd_unmatch: f64,
}

impl FeatureReport {
    /// Class-separation score `|µ_M − µ_U| / (σ_M + σ_U)` — the univariate
    /// discriminative power of the feature under the fitted model.
    pub fn separation(&self) -> f64 {
        let denom = self.sd_match + self.sd_unmatch;
        if denom <= 0.0 {
            0.0
        } else {
            (self.mean_match - self.mean_unmatch).abs() / denom
        }
    }
}

/// Whole-model report.
#[derive(Debug, Clone)]
pub struct ModelReport {
    /// Match prior π_M.
    pub pi_m: f64,
    /// Per-feature statistics, in column order.
    pub features: Vec<FeatureReport>,
}

impl ModelReport {
    /// Extracts the report from a fitted model. `names` (optional) are
    /// attached positionally.
    ///
    /// # Panics
    /// Panics if the model has not completed at least one M-step.
    pub fn from_model(model: &GenerativeModel, names: Option<&[String]>) -> Self {
        let m = model
            .m_params()
            .expect("model must be fitted before reporting");
        let u = model
            .u_params()
            .expect("model must be fitted before reporting");
        let var_m = m.cov.diag();
        let var_u = u.cov.diag();
        let features = (0..m.mean.len())
            .map(|j| FeatureReport {
                index: j,
                name: names.and_then(|n| n.get(j).cloned()),
                mean_match: m.mean[j],
                mean_unmatch: u.mean[j],
                sd_match: var_m[j].max(0.0).sqrt(),
                sd_unmatch: var_u[j].max(0.0).sqrt(),
            })
            .collect();
        Self {
            pi_m: model.pi_m(),
            features,
        }
    }

    /// Features sorted by descending separation (most discriminative
    /// first).
    pub fn ranked(&self) -> Vec<&FeatureReport> {
        let mut refs: Vec<&FeatureReport> = self.features.iter().collect();
        refs.sort_by(|a, b| {
            b.separation()
                .partial_cmp(&a.separation())
                .expect("finite separations")
        });
        refs
    }

    /// Renders a plain-text table of the report.
    pub fn to_text(&self) -> String {
        let mut out = format!("pi_M = {:.4}\n", self.pi_m);
        out.push_str("feature                          mu_M    mu_U    sd_M    sd_U    sep\n");
        for f in self.ranked() {
            let name = f.name.clone().unwrap_or_else(|| format!("f{}", f.index));
            out.push_str(&format!(
                "{name:<30} {:>7.3} {:>7.3} {:>7.3} {:>7.3} {:>6.2}\n",
                f.mean_match,
                f.mean_unmatch,
                f.sd_match,
                f.sd_unmatch,
                f.separation()
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ZeroErConfig;
    use zeroer_linalg::block::GroupLayout;
    use zeroer_linalg::Matrix;

    fn fitted_model() -> GenerativeModel {
        // Feature 0 separates the classes; feature 1 is noise.
        let mut data = Vec::new();
        for i in 0..100 {
            data.push(if i < 10 { 0.9 } else { 0.1 });
            data.push(0.5 + ((i % 7) as f64 - 3.0) * 0.02);
        }
        let x = Matrix::from_vec(100, 2, data);
        let mut m = GenerativeModel::new(
            ZeroErConfig {
                transitivity: false,
                ..Default::default()
            },
            GroupLayout::independent(2),
        );
        m.fit(&x, None);
        m
    }

    #[test]
    fn report_ranks_discriminative_features_first() {
        let model = fitted_model();
        let names = vec!["signal".to_string(), "noise".to_string()];
        let report = ModelReport::from_model(&model, Some(&names));
        let ranked = report.ranked();
        assert_eq!(ranked[0].name.as_deref(), Some("signal"));
        assert!(ranked[0].separation() > ranked[1].separation());
    }

    #[test]
    fn report_text_contains_prior_and_features() {
        let model = fitted_model();
        let text = ModelReport::from_model(&model, None).to_text();
        assert!(text.contains("pi_M"));
        assert!(text.contains("f0"));
    }

    #[test]
    fn separation_handles_zero_variances() {
        let f = FeatureReport {
            index: 0,
            name: None,
            mean_match: 1.0,
            mean_unmatch: 0.0,
            sd_match: 0.0,
            sd_unmatch: 0.0,
        };
        assert_eq!(f.separation(), 0.0);
    }
}
