//! Frozen-model snapshots: serialize a fitted generative model and score
//! new pairs without re-running EM.
//!
//! The batch pipeline fits Θ = (π_M, µ_M, Σ_M, µ_U, Σ_U) by EM. A
//! [`ModelSnapshot`] freezes Θ together with the feature-replay state a
//! *new* pair needs to be scored consistently with the training run:
//! per-column min-max normalization ranges and per-column imputation
//! means (both captured from the fitted `FeatureSet`). The
//! [`SnapshotScorer`] then evaluates the E-step posterior (Eq. 3) for
//! single feature rows — pure inference, no mutation, no EM — which is
//! what the streaming ingest path runs per candidate pair.

use crate::json::{Json, JsonError};
use crate::model::{eq3_posterior, GenerativeModel};
use zeroer_linalg::block::{BlockDiag, GroupLayout};
use zeroer_linalg::gaussian::BlockGaussian;
use zeroer_linalg::stats::min_max_scale;
use zeroer_linalg::{ColMatrix, MahalanobisScratch, Matrix};

/// A serializable freeze of a fitted [`GenerativeModel`] plus the feature
/// normalization/imputation state needed to replay featurization on
/// unseen pairs.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelSnapshot {
    /// Match prior π_M.
    pub pi_m: f64,
    /// Effective covariance group sizes (the model's layout).
    pub group_sizes: Vec<usize>,
    /// M-class mean µ_M.
    pub mean_m: Vec<f64>,
    /// U-class mean µ_U.
    pub mean_u: Vec<f64>,
    /// M-class covariance blocks, row-major per group.
    pub cov_m: Vec<Vec<f64>>,
    /// U-class covariance blocks, row-major per group.
    pub cov_u: Vec<Vec<f64>>,
    /// Per-column min-max ranges from the training `FeatureSet`.
    pub ranges: Vec<(f64, f64)>,
    /// Per-column imputation means (mean of computable training rows).
    pub impute_means: Vec<f64>,
    /// Feature names, for diagnostics and schema checks.
    pub feature_names: Vec<String>,
}

fn block_to_vec(m: &Matrix) -> Vec<f64> {
    m.as_slice().to_vec()
}

fn blocks_of(cov: &BlockDiag) -> Vec<Vec<f64>> {
    cov.blocks().iter().map(block_to_vec).collect()
}

impl ModelSnapshot {
    /// Captures a fitted model plus the feature-replay state.
    ///
    /// `ranges` and `impute_means` come from the fitted `FeatureSet`
    /// (`FeatureSet::ranges` after `normalize()`, and
    /// `FeatureSet::impute_means`); `feature_names` from the featurizer.
    ///
    /// # Panics
    /// Panics if the model has not been fitted, or if the replay vectors
    /// do not match the model dimensionality.
    pub fn capture(
        model: &GenerativeModel,
        ranges: &[(f64, f64)],
        impute_means: &[f64],
        feature_names: &[String],
    ) -> Self {
        Self::capture_checked(model, ranges, impute_means, feature_names)
            .expect("refusing to snapshot non-finite model parameters (degenerate fit)")
    }

    /// Non-panicking [`ModelSnapshot::capture`]: returns `None` instead
    /// of panicking when the fit left non-finite parameters behind (a
    /// degenerate fit on too few or pathological pairs). Used by the
    /// linkage freeze, where a tiny within-table leg may legitimately be
    /// unfreezable while the cross model is fine.
    ///
    /// # Panics
    /// Still panics on *caller* errors: an unfitted model, or replay
    /// vectors that do not match the model dimensionality.
    pub fn capture_checked(
        model: &GenerativeModel,
        ranges: &[(f64, f64)],
        impute_means: &[f64],
        feature_names: &[String],
    ) -> Option<Self> {
        let m = model.m_params().expect("snapshot of an unfitted model");
        let u = model.u_params().expect("snapshot of an unfitted model");
        let d = model.layout().dim();
        assert_eq!(ranges.len(), d, "ranges/model dimensionality mismatch");
        assert_eq!(
            impute_means.len(),
            d,
            "imputation/model dimensionality mismatch"
        );
        assert_eq!(
            feature_names.len(),
            d,
            "names/model dimensionality mismatch"
        );
        let group_sizes: Vec<usize> = model.layout().iter().map(|(_, sz)| sz).collect();
        let all_finite = m.mean.iter().chain(&u.mean).all(|v| v.is_finite())
            && m.cov
                .blocks()
                .iter()
                .chain(u.cov.blocks())
                .all(|b| !b.has_non_finite())
            && ranges
                .iter()
                .all(|(lo, hi)| lo.is_finite() && hi.is_finite())
            && impute_means.iter().all(|v| v.is_finite());
        if !all_finite {
            return None;
        }
        Some(Self {
            pi_m: model.pi_m(),
            group_sizes,
            mean_m: m.mean.clone(),
            mean_u: u.mean.clone(),
            cov_m: blocks_of(&m.cov),
            cov_u: blocks_of(&u.cov),
            ranges: ranges.to_vec(),
            impute_means: impute_means.to_vec(),
            feature_names: feature_names.to_vec(),
        })
    }

    /// Feature dimensionality.
    pub fn dim(&self) -> usize {
        self.group_sizes.iter().sum()
    }

    /// Per-feature mean and spread (standard deviation) of the fitted
    /// two-component mixture, in the *prepared* (imputed + min-max
    /// scaled) feature space — the space [`ModelSnapshot::prepare_row`]
    /// and [`ModelSnapshot::prepare_columns`] map incoming pairs into.
    ///
    /// For feature `j` with per-class moments `(µ_Mj, σ²_Mj)` /
    /// `(µ_Uj, σ²_Uj)` and match prior `π_M`, the mixture moments are
    ///
    /// ```text
    /// µ_j  = π_M µ_Mj + (1 − π_M) µ_Uj
    /// σ²_j = π_M (σ²_Mj + µ_Mj²) + (1 − π_M)(σ²_Uj + µ_Uj²) − µ_j²
    /// ```
    ///
    /// This is the distribution the model *expects* prepared candidate
    /// features to follow, which makes it the natural drift baseline: a
    /// stream whose per-feature means wander many baseline spreads away
    /// from `µ_j` is no longer the population the model was fitted on.
    pub fn mixture_moments(&self) -> (Vec<f64>, Vec<f64>) {
        let d = self.dim();
        let mut means = Vec::with_capacity(d);
        let mut spreads = Vec::with_capacity(d);
        let pm = self.pi_m;
        let pu = 1.0 - self.pi_m;
        let mut j = 0;
        for (g, &sz) in self.group_sizes.iter().enumerate() {
            for k in 0..sz {
                let var_m = self.cov_m[g][k * sz + k];
                let var_u = self.cov_u[g][k * sz + k];
                let mm = self.mean_m[j];
                let mu = self.mean_u[j];
                let mean = pm * mm + pu * mu;
                let var = pm * (var_m + mm * mm) + pu * (var_u + mu * mu) - mean * mean;
                means.push(mean);
                spreads.push(var.max(0.0).sqrt());
                j += 1;
            }
        }
        (means, spreads)
    }

    /// Prepares a raw (pre-normalization) feature row for scoring, in
    /// place: missing values (`NaN`) are imputed with the training means,
    /// then every column is min-max scaled with the training ranges via
    /// the *same* [`min_max_scale`] rule `apply_min_max` uses (clamped to
    /// `[0, 1]`, degenerate spans map to 0), so out-of-range values on
    /// unseen pairs cannot destabilize the frozen model.
    ///
    /// # Panics
    /// Panics if the row has the wrong dimensionality.
    pub fn prepare_row(&self, row: &mut [f64]) {
        assert_eq!(row.len(), self.dim(), "row dimensionality mismatch");
        for (j, v) in row.iter_mut().enumerate() {
            if !v.is_finite() {
                *v = self.impute_means[j];
            }
            let (lo, hi) = self.ranges[j];
            *v = min_max_scale(*v, lo, hi);
        }
    }

    /// Column-wise [`ModelSnapshot::prepare_row`] over a whole batch:
    /// imputes `NaN` holes with the training means and min-max scales
    /// every entry, one contiguous feature column at a time. For any
    /// row, the operations applied (and their order across columns) are
    /// exactly those of `prepare_row`, so the prepared values are
    /// bit-identical to preparing each row individually.
    ///
    /// # Panics
    /// Panics if the batch has the wrong dimensionality.
    pub fn prepare_columns(&self, batch: &mut ColMatrix) {
        assert_eq!(batch.cols(), self.dim(), "batch dimensionality mismatch");
        for j in 0..batch.cols() {
            let mean = self.impute_means[j];
            let (lo, hi) = self.ranges[j];
            for v in batch.col_mut(j) {
                if !v.is_finite() {
                    *v = mean;
                }
                *v = min_max_scale(*v, lo, hi);
            }
        }
    }

    /// Builds the frozen scorer (factors the covariances once).
    ///
    /// # Errors
    /// Fails if a stored covariance block is not positive definite — a
    /// corrupted or hand-edited snapshot.
    pub fn scorer(&self) -> Result<SnapshotScorer, JsonError> {
        let layout = GroupLayout::from_sizes(&self.group_sizes);
        let build = |blocks: &[Vec<f64>]| -> Result<BlockDiag, JsonError> {
            if blocks.len() != self.group_sizes.len() {
                return Err(JsonError::schema("covariance block count mismatch"));
            }
            let mats = blocks
                .iter()
                .zip(&self.group_sizes)
                .map(|(b, &sz)| {
                    if b.len() != sz * sz {
                        return Err(JsonError::schema("covariance block size mismatch"));
                    }
                    Ok(Matrix::from_vec(sz, sz, b.clone()))
                })
                .collect::<Result<Vec<_>, _>>()?;
            Ok(BlockDiag::from_blocks(mats))
        };
        let d = self.dim();
        if self.mean_m.len() != d || self.mean_u.len() != d {
            return Err(JsonError::schema("mean dimensionality mismatch"));
        }
        let _ = layout; // layout is implied by the blocks
        let m = BlockGaussian::new(self.mean_m.clone(), &build(&self.cov_m)?)
            .map_err(|_| JsonError::schema("M covariance is not positive definite"))?;
        let u = BlockGaussian::new(self.mean_u.clone(), &build(&self.cov_u)?)
            .map_err(|_| JsonError::schema("U covariance is not positive definite"))?;
        if !(0.0..=1.0).contains(&self.pi_m) {
            return Err(JsonError::schema("prior out of range"));
        }
        Ok(SnapshotScorer {
            pi_m: self.pi_m,
            m,
            u,
            snapshot: self.clone(),
        })
    }

    /// Renders to a JSON value (see [`ModelSnapshot::to_json`]).
    pub fn to_json_value(&self) -> Json {
        Json::Obj(vec![
            ("format".into(), Json::Str("zeroer-model-snapshot".into())),
            ("version".into(), Json::Num(1.0)),
            ("pi_m".into(), Json::Num(self.pi_m)),
            (
                "group_sizes".into(),
                Json::Arr(
                    self.group_sizes
                        .iter()
                        .map(|&s| Json::Num(s as f64))
                        .collect(),
                ),
            ),
            ("mean_m".into(), Json::nums(&self.mean_m)),
            ("mean_u".into(), Json::nums(&self.mean_u)),
            (
                "cov_m".into(),
                Json::Arr(self.cov_m.iter().map(|b| Json::nums(b)).collect()),
            ),
            (
                "cov_u".into(),
                Json::Arr(self.cov_u.iter().map(|b| Json::nums(b)).collect()),
            ),
            (
                "ranges".into(),
                Json::Arr(
                    self.ranges
                        .iter()
                        .map(|&(lo, hi)| Json::nums(&[lo, hi]))
                        .collect(),
                ),
            ),
            ("impute_means".into(), Json::nums(&self.impute_means)),
            (
                "feature_names".into(),
                Json::Arr(
                    self.feature_names
                        .iter()
                        .map(|n| Json::Str(n.clone()))
                        .collect(),
                ),
            ),
        ])
    }

    /// Serializes to JSON text. Round-trips exactly: parsing the output
    /// reproduces every parameter bit-for-bit.
    pub fn to_json(&self) -> String {
        self.to_json_value().render()
    }

    /// Reads a snapshot from a parsed JSON value.
    ///
    /// # Errors
    /// Fails on schema violations (missing fields, dimension mismatches).
    pub fn from_json_value(j: &Json) -> Result<Self, JsonError> {
        if j.get("format").and_then(Json::as_str) != Some("zeroer-model-snapshot") {
            return Err(JsonError::schema("not a zeroer model snapshot"));
        }
        if j.get("version").and_then(Json::as_f64) != Some(1.0) {
            return Err(JsonError::schema(
                "unsupported model-snapshot version (expected 1)",
            ));
        }
        let group_sizes = j
            .require("group_sizes")?
            .as_arr()
            .ok_or_else(|| JsonError::schema("group_sizes must be an array"))?
            .iter()
            .map(|v| {
                v.as_usize()
                    .ok_or_else(|| JsonError::schema("bad group size"))
            })
            .collect::<Result<Vec<_>, _>>()?;
        let blocks = |key: &str| -> Result<Vec<Vec<f64>>, JsonError> {
            j.require(key)?
                .as_arr()
                .ok_or_else(|| JsonError::schema(format!("{key} must be an array")))?
                .iter()
                .map(Json::to_nums)
                .collect()
        };
        let ranges = j
            .require("ranges")?
            .as_arr()
            .ok_or_else(|| JsonError::schema("ranges must be an array"))?
            .iter()
            .map(|pair| {
                let xs = pair.to_nums()?;
                if xs.len() != 2 {
                    return Err(JsonError::schema("each range must be [lo, hi]"));
                }
                Ok((xs[0], xs[1]))
            })
            .collect::<Result<Vec<_>, _>>()?;
        let feature_names = j
            .require("feature_names")?
            .as_arr()
            .ok_or_else(|| JsonError::schema("feature_names must be an array"))?
            .iter()
            .map(|v| {
                v.as_str()
                    .map(String::from)
                    .ok_or_else(|| JsonError::schema("feature names must be strings"))
            })
            .collect::<Result<Vec<_>, _>>()?;
        let snapshot = Self {
            pi_m: j
                .require("pi_m")?
                .as_f64()
                .ok_or_else(|| JsonError::schema("pi_m must be a number"))?,
            group_sizes,
            mean_m: j.require("mean_m")?.to_nums()?,
            mean_u: j.require("mean_u")?.to_nums()?,
            cov_m: blocks("cov_m")?,
            cov_u: blocks("cov_u")?,
            ranges,
            impute_means: j.require("impute_means")?.to_nums()?,
            feature_names,
        };
        let d = snapshot.dim();
        if snapshot.mean_m.len() != d
            || snapshot.mean_u.len() != d
            || snapshot.ranges.len() != d
            || snapshot.impute_means.len() != d
            || snapshot.feature_names.len() != d
        {
            return Err(JsonError::schema("snapshot dimensionality mismatch"));
        }
        Ok(snapshot)
    }

    /// Deserializes from JSON text.
    ///
    /// # Errors
    /// Fails on malformed JSON or schema violations.
    pub fn from_json(text: &str) -> Result<Self, JsonError> {
        Self::from_json_value(&Json::parse(text)?)
    }
}

/// Frozen-model inference: evaluates the E-step posterior for single
/// feature rows using snapshot parameters. Never mutates anything.
#[derive(Debug, Clone)]
pub struct SnapshotScorer {
    pi_m: f64,
    m: BlockGaussian,
    u: BlockGaussian,
    snapshot: ModelSnapshot,
}

impl SnapshotScorer {
    /// Posterior match probability of a *normalized* feature row — the
    /// same [`eq3_posterior`] softmax [`GenerativeModel::posterior`]
    /// evaluates, applied to the frozen parameters.
    ///
    /// # Panics
    /// Panics on a dimensionality mismatch.
    pub fn score(&self, row: &[f64]) -> f64 {
        let lm = self.pi_m.ln() + self.m.log_pdf(row);
        let lu = (1.0 - self.pi_m).ln() + self.u.log_pdf(row);
        eq3_posterior(lm, lu)
    }

    /// Scores a *raw* (pre-normalization, possibly `NaN`-holed) feature
    /// row: imputes and normalizes **in place** with the frozen training
    /// state, then scores. Takes `&mut` to avoid an extra allocation on
    /// the per-candidate hot path; the row is left in its prepared form.
    pub fn score_raw(&self, raw: &mut [f64]) -> f64 {
        self.snapshot.prepare_row(raw);
        self.score(raw)
    }

    /// Scores a whole batch of raw feature rows held column-major in
    /// `batch`: imputes/normalizes column-wise with the frozen training
    /// state, evaluates both class log-densities with one pass per
    /// covariance block over the batch, and returns one Eq. 3 posterior
    /// per row.
    ///
    /// Every value is bit-identical (`f64::to_bits`) to calling
    /// [`SnapshotScorer::score_raw`] on the corresponding row: the
    /// batched kernels preserve the scalar operation order per row, and
    /// the prior log-terms are the same `ln` the scalar path computes.
    /// The returned slice lives in `batch` and is valid until the next
    /// fill; all intermediates reuse `batch`'s buffers, so a warmed-up
    /// batch never allocates.
    ///
    /// # Panics
    /// Panics on a dimensionality mismatch.
    pub fn score_batch<'b>(&self, batch: &'b mut ScoreBatch) -> &'b [f64] {
        let n = batch.cols.rows();
        self.snapshot.prepare_columns(&mut batch.cols);
        batch.lm.clear();
        batch.lm.resize(n, 0.0);
        batch.lu.clear();
        batch.lu.resize(n, 0.0);
        self.m
            .log_pdf_batch(&batch.cols, &mut batch.maha, &mut batch.lm);
        self.u
            .log_pdf_batch(&batch.cols, &mut batch.maha, &mut batch.lu);
        let lpm = self.pi_m.ln();
        let lpu = (1.0 - self.pi_m).ln();
        batch.scores.clear();
        batch.scores.extend(
            batch
                .lm
                .iter()
                .zip(&batch.lu)
                .map(|(&lm, &lu)| eq3_posterior(lpm + lm, lpu + lu)),
        );
        &batch.scores
    }

    /// Feature dimensionality.
    pub fn dim(&self) -> usize {
        self.snapshot.dim()
    }

    /// The snapshot this scorer was built from.
    pub fn snapshot(&self) -> &ModelSnapshot {
        &self.snapshot
    }

    /// Frozen match prior.
    pub fn pi_m(&self) -> f64 {
        self.pi_m
    }
}

/// Reusable buffers for [`SnapshotScorer::score_batch`]: the column-major
/// raw-feature batch plus every intermediate the batched normalize → score
/// pipeline needs (per-class log-densities, Mahalanobis scratch, the
/// posterior output, and a scalar row buffer for callers that fall back to
/// per-row scoring).
///
/// One instance per scoring worker; buffers grow to the largest batch seen
/// and are reused thereafter, so the steady-state hot path is
/// allocation-free (the scalar path allocates a forward-solve vector per
/// covariance block per candidate).
#[derive(Debug, Clone, Default)]
pub struct ScoreBatch {
    cols: ColMatrix,
    lm: Vec<f64>,
    lu: Vec<f64>,
    maha: MahalanobisScratch,
    scores: Vec<f64>,
    row: Vec<f64>,
}

impl ScoreBatch {
    /// An empty batch (no allocation until first use).
    pub fn new() -> Self {
        Self::default()
    }

    /// The column-major raw-feature matrix to fill before calling
    /// [`SnapshotScorer::score_batch`] (typically via a batch
    /// featurizer's column-fill pass).
    pub fn cols_mut(&mut self) -> &mut ColMatrix {
        &mut self.cols
    }

    /// Read access to the feature matrix (post-`score_batch` it holds the
    /// prepared — imputed and normalized — values).
    pub fn cols(&self) -> &ColMatrix {
        &self.cols
    }

    /// The posteriors the last [`SnapshotScorer::score_batch`] call
    /// computed, one per batch row (empty before the first call).
    /// Together with [`ScoreBatch::cols`] this lets observers — like
    /// the streaming drift monitor — summarize what was just scored
    /// without re-running any float work.
    pub fn scores(&self) -> &[f64] {
        &self.scores
    }

    /// The reusable scalar row buffer for per-row fallback scoring.
    pub fn row_scratch(&mut self) -> &mut Vec<f64> {
        &mut self.row
    }
}

/// A serializable freeze of a full three-model record-linkage fit
/// ([`crate::linkage::LinkageModel::fit_models`]): the cross-table model
/// `F` plus the within-table models `Fl`/`Fr`, each frozen as a
/// [`ModelSnapshot`] (parameters **and** feature-replay layout —
/// per-column normalization ranges, imputation means, feature names).
///
/// The fit-time [`crate::transitivity::TransitivityCalibrator`] (and its
/// cross-table counterpart) is pure training scaffolding built from the
/// candidate-pair adjacency: once EM has converged, every posterior edit
/// it made is already baked into the posteriors and the match decisions
/// derived from them. What survives into the frozen world is therefore
/// (a) the [`LinkageSnapshot::transitivity`] flag recording that the
/// calibrators ran, and (b) the calibrated match *decisions*, which the
/// streaming layer persists alongside this snapshot and replays
/// structurally through its union-find (merging clusters enforces
/// transitivity exactly rather than softly).
///
/// Like [`ModelSnapshot`], the JSON form round-trips exactly: parsing
/// [`LinkageSnapshot::to_json`] output reproduces every parameter
/// bit-for-bit.
#[derive(Debug, Clone, PartialEq)]
pub struct LinkageSnapshot {
    /// The cross-table model `F` — the one streaming linkage scores
    /// with.
    pub cross: ModelSnapshot,
    /// The within-left model `Fl` (`None` when the left leg had no
    /// candidate pairs, or its fit was too degenerate to freeze).
    pub left: Option<ModelSnapshot>,
    /// The within-right model `Fr` (`None` like [`LinkageSnapshot::left`]).
    pub right: Option<ModelSnapshot>,
    /// Whether the transitivity calibrators were active during the fit.
    pub transitivity: bool,
}

impl LinkageSnapshot {
    /// Builds the frozen cross-pair scorer from the cross model — the
    /// only scorer streamed (cross-table) candidates need.
    ///
    /// # Errors
    /// Fails if the stored cross covariances are not positive definite
    /// (a corrupted or hand-edited snapshot).
    pub fn cross_scorer(&self) -> Result<SnapshotScorer, JsonError> {
        self.cross.scorer()
    }

    /// Renders to a JSON value. Absent within-table models are omitted
    /// (not serialized as `null`).
    pub fn to_json_value(&self) -> Json {
        let mut fields = vec![
            ("format".into(), Json::Str("zeroer-linkage-snapshot".into())),
            ("version".into(), Json::Num(1.0)),
            ("transitivity".into(), Json::Bool(self.transitivity)),
            ("cross".into(), self.cross.to_json_value()),
        ];
        if let Some(l) = &self.left {
            fields.push(("left".into(), l.to_json_value()));
        }
        if let Some(r) = &self.right {
            fields.push(("right".into(), r.to_json_value()));
        }
        Json::Obj(fields)
    }

    /// Serializes to JSON text. Round-trips exactly.
    pub fn to_json(&self) -> String {
        self.to_json_value().render()
    }

    /// Reads a linkage snapshot from a parsed JSON value.
    ///
    /// # Errors
    /// Fails on schema violations (wrong format marker, malformed
    /// embedded model snapshots).
    pub fn from_json_value(j: &Json) -> Result<Self, JsonError> {
        if j.get("format").and_then(Json::as_str) != Some("zeroer-linkage-snapshot") {
            return Err(JsonError::schema("not a zeroer linkage snapshot"));
        }
        if j.get("version").and_then(Json::as_f64) != Some(1.0) {
            return Err(JsonError::schema(
                "unsupported linkage-snapshot version (expected 1)",
            ));
        }
        let transitivity = j
            .require("transitivity")?
            .as_bool()
            .ok_or_else(|| JsonError::schema("transitivity must be a boolean"))?;
        let side = |key: &str| -> Result<Option<ModelSnapshot>, JsonError> {
            j.get(key).map(ModelSnapshot::from_json_value).transpose()
        };
        Ok(Self {
            cross: ModelSnapshot::from_json_value(j.require("cross")?)?,
            left: side("left")?,
            right: side("right")?,
            transitivity,
        })
    }

    /// Deserializes from JSON text.
    ///
    /// # Errors
    /// Fails on malformed JSON or schema violations.
    pub fn from_json(text: &str) -> Result<Self, JsonError> {
        Self::from_json_value(&Json::parse(text)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ZeroErConfig;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn fitted_model() -> (GenerativeModel, Matrix) {
        let mut rng = StdRng::seed_from_u64(11);
        let (n_m, n_u, d) = (15, 150, 4);
        let mut data = Vec::new();
        for i in 0..n_m + n_u {
            let base = if i < n_m { 0.88 } else { 0.12 };
            for _ in 0..d {
                data.push((base + rng.gen_range(-0.08..0.08f64)).clamp(0.0, 1.0));
            }
        }
        let x = Matrix::from_vec(n_m + n_u, d, data);
        let mut model =
            GenerativeModel::new(ZeroErConfig::default(), GroupLayout::from_sizes(&[2, 2]));
        model.fit(&x, None);
        (model, x)
    }

    fn replay_state(d: usize) -> (Vec<(f64, f64)>, Vec<f64>, Vec<String>) {
        let ranges = vec![(0.0, 1.0); d];
        let impute = vec![0.4; d];
        let names = (0..d).map(|j| format!("f{j}")).collect();
        (ranges, impute, names)
    }

    #[test]
    fn snapshot_scoring_matches_live_posterior() {
        let (model, x) = fitted_model();
        let (ranges, impute, names) = replay_state(4);
        let snap = ModelSnapshot::capture(&model, &ranges, &impute, &names);
        let scorer = snap.scorer().unwrap();
        for i in 0..x.rows() {
            let live = model.posterior(x.row(i));
            let frozen = scorer.score(x.row(i));
            assert!(
                (live - frozen).abs() < 1e-12,
                "row {i}: live {live} vs frozen {frozen}"
            );
        }
    }

    #[test]
    fn json_round_trip_is_exact() {
        let (model, x) = fitted_model();
        let (ranges, impute, names) = replay_state(4);
        let snap = ModelSnapshot::capture(&model, &ranges, &impute, &names);
        let text = snap.to_json();
        let back = ModelSnapshot::from_json(&text).unwrap();
        assert_eq!(snap, back, "snapshot must round-trip exactly");
        let scorer = back.scorer().unwrap();
        for i in 0..x.rows() {
            let live = model.posterior(x.row(i));
            let frozen = scorer.score(x.row(i));
            assert!(
                (live - frozen).abs() < 1e-12,
                "row {i}: live {live} vs reloaded {frozen}"
            );
        }
    }

    #[test]
    fn prepare_row_imputes_then_normalizes() {
        let (model, _) = fitted_model();
        let ranges = vec![(0.0, 2.0), (1.0, 1.0), (0.0, 1.0), (0.0, 1.0)];
        let impute = vec![1.0, 0.5, 0.25, 0.75];
        let names = (0..4).map(|j| format!("f{j}")).collect::<Vec<_>>();
        let snap = ModelSnapshot::capture(&model, &ranges, &impute, &names);
        let mut row = [f64::NAN, 3.0, 1.5, f64::NAN];
        snap.prepare_row(&mut row);
        assert_eq!(row[0], 0.5, "imputed to 1.0 then scaled by (0,2)");
        assert_eq!(row[1], 0.0, "degenerate range maps to 0");
        assert_eq!(
            row[2], 1.0,
            "out-of-range values clamp, matching apply_min_max"
        );
        assert_eq!(row[3], 0.75, "imputed then scaled by (0,1)");
        let mut low = [-1.0, 0.5, 0.25, 0.5];
        snap.prepare_row(&mut low);
        assert_eq!(low[0], 0.0, "below-range values clamp to 0");
    }

    #[test]
    fn linkage_snapshot_round_trip_is_bit_exact() {
        let (model, _) = fitted_model();
        let (ranges, impute, names) = replay_state(4);
        let cross = ModelSnapshot::capture(&model, &ranges, &impute, &names);
        let mut left = cross.clone();
        left.pi_m = 0.123_456_789_012_345_67;
        let snap = LinkageSnapshot {
            cross,
            left: Some(left),
            right: None,
            transitivity: true,
        };
        let back = LinkageSnapshot::from_json(&snap.to_json()).expect("round-trips");
        assert_eq!(snap, back, "linkage snapshot must round-trip exactly");
        // Exactness down to the f64 bit pattern, not mere closeness.
        for (a, b) in snap.cross.mean_m.iter().zip(&back.cross.mean_m) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        assert_eq!(
            snap.left.as_ref().unwrap().pi_m.to_bits(),
            back.left.as_ref().unwrap().pi_m.to_bits()
        );
        assert!(back.right.is_none(), "absent legs stay absent");
        assert!(back.transitivity);

        // A frozen cross scorer comes straight out of the reloaded form.
        let scorer = back.cross_scorer().expect("cross model is sound");
        assert_eq!(scorer.dim(), 4);

        // Wrong/foreign formats are rejected.
        assert!(LinkageSnapshot::from_json("{\"format\":\"other\"}").is_err());
        assert!(LinkageSnapshot::from_json(&snap.cross.to_json()).is_err());
    }

    #[test]
    fn score_batch_is_bit_identical_to_score_raw() {
        let (model, _) = fitted_model();
        let ranges = vec![(0.0, 2.0), (1.0, 1.0), (0.0, 1.0), (-1.0, 1.0)];
        let impute = vec![1.0, 0.5, 0.25, 0.75];
        let names = (0..4).map(|j| format!("f{j}")).collect::<Vec<_>>();
        let snap = ModelSnapshot::capture(&model, &ranges, &impute, &names);
        let scorer = snap.scorer().unwrap();
        // Raw rows with NaN holes and out-of-range values, exercising
        // imputation + clamping alongside the batched density kernels.
        let rows: Vec<[f64; 4]> = (0..19)
            .map(|r| {
                let r = r as f64;
                [
                    if r as usize % 3 == 0 {
                        f64::NAN
                    } else {
                        r * 0.3 - 1.0
                    },
                    (r * 0.7).sin() * 2.0,
                    if r as usize % 5 == 4 {
                        f64::NAN
                    } else {
                        r / 9.0
                    },
                    r * 0.4 - 3.0,
                ]
            })
            .collect();
        let mut batch = ScoreBatch::new();
        batch.cols_mut().reset(rows.len(), 4);
        for (i, row) in rows.iter().enumerate() {
            for (j, &v) in row.iter().enumerate() {
                batch.cols_mut().set(i, j, v);
            }
        }
        let got: Vec<f64> = scorer.score_batch(&mut batch).to_vec();
        for (i, row) in rows.iter().enumerate() {
            let mut scalar = *row;
            let want = scorer.score_raw(&mut scalar);
            assert_eq!(got[i].to_bits(), want.to_bits(), "row {i}");
            // The prepared values left in the batch match prepare_row too.
            for j in 0..4 {
                assert_eq!(batch.cols().get(i, j).to_bits(), scalar[j].to_bits());
            }
        }
        // Empty batches are fine (resolve with zero candidates).
        batch.cols_mut().reset(0, 4);
        assert!(scorer.score_batch(&mut batch).is_empty());
    }

    #[test]
    fn capture_checked_rejects_non_finite_replay_state() {
        let (model, _) = fitted_model();
        let (mut ranges, impute, names) = replay_state(4);
        assert!(ModelSnapshot::capture_checked(&model, &ranges, &impute, &names).is_some());
        ranges[2].1 = f64::INFINITY;
        assert!(ModelSnapshot::capture_checked(&model, &ranges, &impute, &names).is_none());
    }

    #[test]
    fn corrupted_snapshot_is_rejected() {
        let (model, _) = fitted_model();
        let (ranges, impute, names) = replay_state(4);
        let snap = ModelSnapshot::capture(&model, &ranges, &impute, &names);
        let mut truncated = snap.clone();
        truncated.mean_m.pop();
        assert!(truncated.scorer().is_err());
        assert!(ModelSnapshot::from_json("{\"format\":\"nope\"}").is_err());
        assert!(ModelSnapshot::from_json("not json at all").is_err());
    }
}
