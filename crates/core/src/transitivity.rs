//! Transitivity as a soft constraint on posteriors (§5).
//!
//! Transitivity says: if `(t1,t2)` and `(t1,t3)` are matches then
//! `(t2,t3)` must be a match. ZeroER encodes the probabilistic relaxation
//! `γ12 · γ13 ≤ γ23` (Eq. 16) and, at the end of every E-step, corrects
//! violations by adjusting the *least confident* of the three posteriors
//! (the one closest to 0.5, Eq. 17). Pairs excluded by blocking are
//! treated as `γ = 0`.
//!
//! For efficiency the check only fans out from pairs currently considered
//! likely matches (`γ > 0.5`), exactly as the paper prescribes — the match
//! graph is tiny compared to the candidate set.

use std::collections::{BTreeMap, HashMap};

/// Pair-index lookup plus adjacency for one candidate set.
///
/// Node identifiers are the record indices used in the candidate pairs.
/// For deduplication both endpoints come from the same table; for the
/// within-table legs of record linkage, from one side each.
#[derive(Debug, Clone)]
pub struct TransitivityCalibrator {
    /// (a, b) normalized with a < b → row index in the feature matrix.
    pair_index: HashMap<(usize, usize), usize>,
    /// node → (neighbor, pair row). Ordered so calibration sweeps are
    /// deterministic (sweep order affects which posterior of a violating
    /// triangle gets adjusted first).
    adjacency: BTreeMap<usize, Vec<(usize, usize)>>,
}

impl TransitivityCalibrator {
    /// Builds the calibrator from the candidate pair list (row order must
    /// match the feature matrix / posterior vector).
    pub fn new(pairs: &[(usize, usize)]) -> Self {
        let mut pair_index = HashMap::with_capacity(pairs.len());
        let mut adjacency: BTreeMap<usize, Vec<(usize, usize)>> = BTreeMap::new();
        for (row, &(a, b)) in pairs.iter().enumerate() {
            let key = (a.min(b), a.max(b));
            pair_index.insert(key, row);
            adjacency.entry(a).or_default().push((b, row));
            adjacency.entry(b).or_default().push((a, row));
        }
        Self {
            pair_index,
            adjacency,
        }
    }

    /// Number of indexed pairs.
    pub fn len(&self) -> usize {
        self.pair_index.len()
    }

    /// Whether no pairs are indexed.
    pub fn is_empty(&self) -> bool {
        self.pair_index.is_empty()
    }

    /// Row index of pair `(a, b)`, if it survived blocking.
    pub fn pair_row(&self, a: usize, b: usize) -> Option<usize> {
        self.pair_index.get(&(a.min(b), a.max(b))).copied()
    }

    /// One calibration sweep (Eq. 16/17) over the posteriors, in place.
    ///
    /// For every "pivot" node `t1` with at least two likely-match
    /// neighbors, each neighbor pair `(t2, t3)` is checked:
    /// `γ12·γ13 > γ23` (with `γ23 = 0` when `(t2,t3)` was blocked away)
    /// triggers an adjustment of the least confident posterior.
    pub fn calibrate(&self, gammas: &mut [f64]) {
        for (&_t1, neighbors) in &self.adjacency {
            // Likely-match incident pairs only (γ > 0.5).
            let hot: Vec<(usize, usize)> = neighbors
                .iter()
                .copied()
                .filter(|&(_, row)| gammas[row] > 0.5)
                .collect();
            if hot.len() < 2 {
                continue;
            }
            for i in 0..hot.len() {
                for j in (i + 1)..hot.len() {
                    let (t2, p12) = hot[i];
                    let (t3, p13) = hot[j];
                    let g12 = gammas[p12];
                    let g13 = gammas[p13];
                    if g12 <= 0.5 || g13 <= 0.5 {
                        continue; // may have been adjusted earlier in the sweep
                    }
                    let p23 = self.pair_row(t2, t3);
                    let g23 = p23.map_or(0.0, |r| gammas[r]);
                    if g12 * g13 <= g23 {
                        continue; // Eq. 16 satisfied
                    }
                    // Adjust the least confident (closest to 0.5).
                    let c12 = (g12 - 0.5).abs();
                    let c13 = (g13 - 0.5).abs();
                    let c23 = (g23 - 0.5).abs();
                    if c12 <= c13 && c12 <= c23 {
                        gammas[p12] = if g13 > 0.0 {
                            (g23 / g13).clamp(0.0, 1.0)
                        } else {
                            0.0
                        };
                    } else if c13 <= c12 && c13 <= c23 {
                        gammas[p13] = if g12 > 0.0 {
                            (g23 / g12).clamp(0.0, 1.0)
                        } else {
                            0.0
                        };
                    } else if let Some(r23) = p23 {
                        gammas[r23] = (g12 * g13).clamp(0.0, 1.0);
                    } else {
                        // γ23 is pinned at 0 by blocking; fall back to the
                        // less confident of the two present pairs.
                        if c12 <= c13 {
                            gammas[p12] = 0.0;
                        } else {
                            gammas[p13] = 0.0;
                        }
                    }
                }
            }
        }
    }

    /// Counts current violations of Eq. 16 among likely-match triangles —
    /// used by tests and diagnostics.
    pub fn count_violations(&self, gammas: &[f64]) -> usize {
        let mut violations = 0;
        for neighbors in self.adjacency.values() {
            let hot: Vec<(usize, usize)> = neighbors
                .iter()
                .copied()
                .filter(|&(_, row)| gammas[row] > 0.5)
                .collect();
            for i in 0..hot.len() {
                for j in (i + 1)..hot.len() {
                    let (t2, p12) = hot[i];
                    let (t3, p13) = hot[j];
                    let g23 = self.pair_row(t2, t3).map_or(0.0, |r| gammas[r]);
                    if gammas[p12] * gammas[p13] > g23 + 1e-12 {
                        violations += 1;
                    }
                }
            }
        }
        violations
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Triangle on nodes {0,1,2}: rows 0=(0,1), 1=(0,2), 2=(1,2).
    fn triangle() -> TransitivityCalibrator {
        TransitivityCalibrator::new(&[(0, 1), (0, 2), (1, 2)])
    }

    #[test]
    fn satisfied_triangle_is_untouched() {
        let cal = triangle();
        let mut g = vec![0.9, 0.9, 0.95];
        let before = g.clone();
        cal.calibrate(&mut g);
        assert_eq!(g, before);
        assert_eq!(cal.count_violations(&g), 0);
    }

    #[test]
    fn violating_triangle_adjusts_least_confident() {
        let cal = triangle();
        // γ12·γ13 = 0.81 > γ23 = 0.6; γ23 (0.6) is closest to 0.5 → set to product.
        let mut g = vec![0.9, 0.9, 0.6];
        cal.calibrate(&mut g);
        assert!(
            (g[2] - 0.81).abs() < 1e-12,
            "γ23 should be raised to the product"
        );
        assert_eq!(cal.count_violations(&g), 0);
    }

    #[test]
    fn least_confident_incident_pair_is_lowered() {
        let cal = triangle();
        // γ12 = 0.6 is least confident; γ23 = 0.1: adjust γ12 = γ23/γ13.
        let mut g = vec![0.6, 0.95, 0.1];
        cal.calibrate(&mut g);
        assert!((g[0] - 0.1 / 0.95).abs() < 1e-9);
        assert_eq!(cal.count_violations(&g), 0);
    }

    #[test]
    fn missing_third_pair_counts_as_zero() {
        // Only (0,1) and (0,2) survive blocking.
        let cal = TransitivityCalibrator::new(&[(0, 1), (0, 2)]);
        let mut g = vec![0.7, 0.9];
        cal.calibrate(&mut g);
        // γ23 = 0 → the less confident of the two (γ12 = 0.7) is zeroed.
        assert_eq!(g[0], 0.0);
        assert_eq!(g[1], 0.9);
    }

    #[test]
    fn cold_pairs_do_not_trigger_checks() {
        let cal = triangle();
        let mut g = vec![0.4, 0.45, 0.0];
        let before = g.clone();
        cal.calibrate(&mut g);
        assert_eq!(g, before, "pairs with γ ≤ 0.5 are not pivoted on");
    }

    #[test]
    fn gammas_remain_probabilities_after_calibration() {
        let cal = TransitivityCalibrator::new(&[(0, 1), (0, 2), (1, 2), (2, 3), (0, 3)]);
        let mut g = vec![0.99, 0.98, 0.51, 0.97, 0.52];
        cal.calibrate(&mut g);
        assert!(g.iter().all(|v| (0.0..=1.0).contains(v)), "{g:?}");
    }

    #[test]
    fn pair_row_normalizes_order() {
        let cal = triangle();
        assert_eq!(cal.pair_row(2, 1), Some(2));
        assert_eq!(cal.pair_row(1, 2), Some(2));
        assert_eq!(cal.pair_row(0, 9), None);
    }

    #[test]
    fn empty_candidate_set_is_noop() {
        let cal = TransitivityCalibrator::new(&[]);
        let mut g: Vec<f64> = vec![];
        cal.calibrate(&mut g);
        assert!(cal.is_empty());
    }
}
