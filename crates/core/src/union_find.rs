//! The one union-find.
//!
//! Entity resolution needs transitive closure in three places — the
//! streaming `EntityStore`, the evaluation-side `clusters_from_pairs`,
//! and the batch `dedup_table` clustering — and for one PR the repo had
//! three hand-rolled copies whose agreement was only test-detected. This
//! module is the single implementation all of them consume, so the
//! closure semantics (union by rank, path compression, the cluster
//! reporting shape) cannot drift again.

/// Disjoint-set forest over dense indices `0..len`, with union by rank
/// and path compression.
#[derive(Debug, Clone, Default)]
pub struct UnionFind {
    parent: Vec<usize>,
    rank: Vec<u8>,
}

impl UnionFind {
    /// A forest of `n` singletons.
    pub fn new(n: usize) -> Self {
        Self {
            parent: (0..n).collect(),
            rank: vec![0; n],
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// Whether the forest holds no elements.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Appends a fresh singleton; returns its index.
    pub fn push(&mut self) -> usize {
        let idx = self.parent.len();
        self.parent.push(idx);
        self.rank.push(0);
        idx
    }

    /// Representative of `x`, with full path compression.
    ///
    /// # Panics
    /// Panics if `x >= len`.
    pub fn find(&mut self, x: usize) -> usize {
        let mut root = x;
        while self.parent[root] != root {
            root = self.parent[root];
        }
        let mut cur = x;
        while self.parent[cur] != root {
            let next = self.parent[cur];
            self.parent[cur] = root;
            cur = next;
        }
        root
    }

    /// Representative of `x` without mutation (no path compression);
    /// usable from shared references.
    pub fn find_readonly(&self, x: usize) -> usize {
        let mut root = x;
        while self.parent[root] != root {
            root = self.parent[root];
        }
        root
    }

    /// Merges the sets of `a` and `b` (union by rank); returns the
    /// surviving representative.
    pub fn union(&mut self, a: usize, b: usize) -> usize {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return ra;
        }
        let (winner, loser) = if self.rank[ra] >= self.rank[rb] {
            (ra, rb)
        } else {
            (rb, ra)
        };
        self.parent[loser] = winner;
        if self.rank[ra] == self.rank[rb] {
            self.rank[winner] += 1;
        }
        winner
    }

    /// Resets every listed element to a fresh singleton (`parent = self`,
    /// `rank = 0`), leaving all other elements untouched.
    ///
    /// Only sound when `members` is closed under the forest's edges —
    /// i.e. it contains every element whose parent chain passes through
    /// any member (one or more *complete* connected components).
    /// Resetting a proper subset would leave outside elements pointing at
    /// re-singletonized parents, silently splitting their sets. The
    /// streaming retraction path uses this to rebuild one component after
    /// a record is withdrawn: reset the component, then re-union the
    /// surviving decision edges.
    ///
    /// # Panics
    /// Panics if any member index is `>= len`.
    pub fn reset_members(&mut self, members: &[usize]) {
        for &m in members {
            self.parent[m] = m;
            self.rank[m] = 0;
        }
    }

    /// Whether `a` and `b` are currently in the same set.
    pub fn same_set(&self, a: usize, b: usize) -> bool {
        self.find_readonly(a) == self.find_readonly(b)
    }

    /// Number of distinct sets (singletons included).
    pub fn num_sets(&self) -> usize {
        (0..self.len())
            .filter(|&i| self.find_readonly(i) == i)
            .count()
    }

    /// All sets with at least `min_size` members, each sorted ascending,
    /// the list sorted by its first member — the canonical cluster
    /// reporting shape shared by `dedup_table`, `EntityStore::clusters`,
    /// and `clusters_from_pairs`.
    pub fn clusters(&self, min_size: usize) -> Vec<Vec<usize>> {
        let mut groups: std::collections::HashMap<usize, Vec<usize>> =
            std::collections::HashMap::new();
        for i in 0..self.len() {
            groups.entry(self.find_readonly(i)).or_default().push(i);
        }
        let mut clusters: Vec<Vec<usize>> = groups
            .into_values()
            .filter(|g| g.len() >= min_size)
            .collect();
        for c in &mut clusters {
            c.sort_unstable();
        }
        clusters.sort();
        clusters
    }
}

/// Transitive closure of a pair list: clusters (≥ 2 members) over the
/// union-find built by uniting every pair. Elements never mentioned in a
/// pair stay singletons and are not reported.
///
/// Expects *dense* indices (record positions): the forest is allocated up
/// to the largest mentioned index, so feeding sparse ids (e.g. 64-bit
/// uids) would allocate proportionally to the largest value, not to the
/// pair count.
pub fn clusters_of_pairs(pairs: &[(usize, usize)]) -> Vec<Vec<usize>> {
    let n = pairs.iter().map(|&(a, b)| a.max(b) + 1).max().unwrap_or(0);
    let mut uf = UnionFind::new(n);
    for &(a, b) in pairs {
        uf.union(a, b);
    }
    uf.clusters(2)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_elements_are_singletons() {
        let uf = UnionFind::new(4);
        assert_eq!(uf.len(), 4);
        assert_eq!(uf.num_sets(), 4);
        assert!(uf.clusters(2).is_empty());
    }

    #[test]
    fn unions_are_transitive() {
        let mut uf = UnionFind::new(5);
        uf.union(0, 1);
        uf.union(1, 4);
        assert!(uf.same_set(0, 4), "0~1 and 1~4 imply 0~4");
        assert!(!uf.same_set(0, 2));
        assert_eq!(uf.num_sets(), 3);
        assert_eq!(uf.clusters(2), vec![vec![0, 1, 4]]);
    }

    #[test]
    fn union_is_idempotent_and_symmetric() {
        let mut uf = UnionFind::new(3);
        let r1 = uf.union(0, 1);
        let r2 = uf.union(1, 0);
        assert_eq!(r1, r2);
        assert_eq!(uf.num_sets(), 2);
    }

    #[test]
    fn push_grows_the_forest() {
        let mut uf = UnionFind::new(2);
        let idx = uf.push();
        assert_eq!(idx, 2);
        assert_eq!(uf.find(idx), idx);
        uf.union(idx, 0);
        assert!(uf.same_set(0, 2));
    }

    #[test]
    fn long_chains_do_not_recurse() {
        // Path compression is iterative; a 100k chain must not overflow.
        let n = 100_000;
        let mut uf = UnionFind::new(n);
        for i in 1..n {
            uf.union(i - 1, i);
        }
        assert_eq!(uf.num_sets(), 1);
        assert_eq!(uf.find(n - 1), uf.find(0));
    }

    #[test]
    fn reset_members_rebuilds_one_component_without_touching_others() {
        let mut uf = UnionFind::new(6);
        uf.union(0, 1);
        uf.union(1, 2);
        uf.union(4, 5);
        // Reset the {0,1,2} component and replay only the 1-2 edge (as
        // if record 0 were retracted).
        uf.reset_members(&[0, 1, 2]);
        assert_eq!(uf.num_sets(), 5, "component members become singletons");
        uf.union(1, 2);
        assert!(uf.same_set(1, 2));
        assert!(!uf.same_set(0, 1), "0 stays out after the replay");
        assert!(uf.same_set(4, 5), "other components are untouched");
    }

    #[test]
    fn clusters_of_pairs_builds_chains() {
        let clusters = clusters_of_pairs(&[(1, 2), (2, 3), (8, 9)]);
        assert_eq!(clusters, vec![vec![1, 2, 3], vec![8, 9]]);
    }

    #[test]
    fn clusters_of_pairs_ignores_duplicates_order_and_self_pairs() {
        assert_eq!(
            clusters_of_pairs(&[(5, 4), (4, 5), (5, 4)]),
            vec![vec![4, 5]]
        );
        assert!(clusters_of_pairs(&[(3, 3)]).is_empty());
        assert!(clusters_of_pairs(&[]).is_empty());
    }
}
