//! Paper-scale synthetic corpora with exact ground truth.
//!
//! The profile generators in [`crate::dataset`] reproduce the paper's six
//! benchmark datasets, whose sizes are fixed by Table 1 (`scale` can only
//! shrink them). This module is the opposite direction: an **open-ended**
//! corpus synthesizer for scale testing — scale 1 is tens of thousands of
//! records, scale 100 is millions — with the properties the ROADMAP's
//! "production scale" work needs:
//!
//! * **skewed (Zipfian) token distributions**: token ranks are drawn from
//!   a Zipf law, so blocking sees the real-world shape — a few stop-word
//!   buckets that blow past the frequency cap plus a long tail of rare
//!   discriminative tokens. The vocabulary grows with the corpus so
//!   larger scales genuinely stress the interner;
//! * a **mixed text/numeric schema** (`name, category, description,
//!   quantity, price`) exercising every featurizer path;
//! * a **controlled duplicate rate**: exactly `round(n · duplicate_rate)`
//!   records are corrupted copies of a base entity, so accuracy against
//!   the emitted ground truth is exact, not hand-labeled;
//! * **typo / abbreviation / token-drop / field-swap corruption** of the
//!   duplicates (numeric jitter included), reusing the [`Perturber`]
//!   noise models plus a record-level swap of two compatible text fields;
//! * fully **deterministic generation per seed**: one sequential RNG
//!   drives everything, so the same [`CorpusSpec`] always yields
//!   byte-identical tables and ground truth.
//!
//! [`generate_dedup`] emits one table plus an entity id per record (the
//! ground-truth clustering); [`generate_linkage`] emits two tables plus
//! exact `(left, right)` match pairs. Both validate the spec first and
//! return a clean [`CorpusError`] instead of panicking on degenerate
//! input — the contract `zeroer gen` and `bench_scale` rely on to fail
//! without partial output.

use crate::perturb::{DirtLevel, Perturber};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use zeroer_tabular::{Record, Schema, Table, Value};

/// Records at `scale == 1.0`. Scale 10 ≈ 200 k records, scale 100 ≈ 2 M.
pub const BASE_RECORDS: usize = 20_000;

/// Smallest corpus worth generating: below this, duplicate counts round
/// to noise and accuracy against ground truth is meaningless.
pub const MIN_RECORDS: usize = 24;

/// A corpus recipe: everything generation depends on, so two equal specs
/// always produce byte-identical corpora.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CorpusSpec {
    /// Size multiplier: `records = round(scale · BASE_RECORDS)`.
    pub scale: f64,
    /// RNG seed; every table cell and ground-truth edge derives from it.
    pub seed: u64,
    /// Fraction of records that are corrupted copies of a base entity,
    /// in `(0, 1)`. Exactly `round(records · duplicate_rate)` duplicates
    /// are emitted.
    pub duplicate_rate: f64,
    /// Zipf exponent of the token-rank distribution (1.0–1.2 is the
    /// classic text regime; higher = more skew).
    pub zipf_exponent: f64,
    /// Probability a duplicate swaps its two non-blocking text fields
    /// (`category` ↔ `description`) — the field-swap corruption real
    /// dirty data shows when columns are mis-mapped.
    pub field_swap_rate: f64,
    /// Noise applied to duplicate copies.
    pub dirt: DirtLevel,
}

impl Default for CorpusSpec {
    fn default() -> Self {
        Self {
            scale: 0.1,
            seed: 42,
            duplicate_rate: 0.3,
            zipf_exponent: 1.07,
            field_swap_rate: 0.05,
            dirt: corpus_dirt(),
        }
    }
}

/// The default duplicate-corruption regime: typos, abbreviations,
/// dropped/swapped tokens, missing fields and numeric jitter — but no
/// paraphrasing (the corpus vocabulary is synthetic, so replacement from
/// a real-word pool would leak out-of-vocabulary tokens).
pub fn corpus_dirt() -> DirtLevel {
    DirtLevel {
        typo_rate: 0.06,
        token_drop_rate: 0.08,
        abbrev_rate: 0.06,
        token_swap_rate: 0.06,
        missing_rate: 0.03,
        numeric_jitter: 0.15,
        paraphrase_rate: 0.0,
        inject_rate: 0.0,
    }
}

/// Why a [`CorpusSpec`] cannot be generated.
#[derive(Debug, Clone, PartialEq)]
pub struct CorpusError(pub String);

impl std::fmt::Display for CorpusError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for CorpusError {}

impl CorpusSpec {
    /// Total record count this spec generates.
    pub fn records(&self) -> usize {
        (self.scale * BASE_RECORDS as f64).round() as usize
    }

    /// Rejects degenerate specs with a clean error — the gate every
    /// generator runs before touching the RNG, so callers never see
    /// partial output from an impossible recipe.
    pub fn validate(&self) -> Result<(), CorpusError> {
        if !self.scale.is_finite() || self.scale <= 0.0 {
            return Err(CorpusError(format!(
                "scale must be a positive number, got {}",
                self.scale
            )));
        }
        if self.records() < MIN_RECORDS {
            return Err(CorpusError(format!(
                "scale {} yields {} records; at least {MIN_RECORDS} are needed for a \
                 meaningful duplicate rate (scale ≥ {:.4})",
                self.scale,
                self.records(),
                MIN_RECORDS as f64 / BASE_RECORDS as f64
            )));
        }
        if !self.duplicate_rate.is_finite()
            || self.duplicate_rate <= 0.0
            || self.duplicate_rate >= 1.0
        {
            return Err(CorpusError(format!(
                "duplicate rate must lie strictly inside (0, 1), got {}; 0 leaves no \
                 ground-truth pairs to score against and 1 leaves no base entities",
                self.duplicate_rate
            )));
        }
        if !self.zipf_exponent.is_finite() || self.zipf_exponent <= 0.0 {
            return Err(CorpusError(format!(
                "Zipf exponent must be positive, got {}",
                self.zipf_exponent
            )));
        }
        if !self.field_swap_rate.is_finite() || !(0.0..=1.0).contains(&self.field_swap_rate) {
            return Err(CorpusError(format!(
                "field-swap rate must lie in [0, 1], got {}",
                self.field_swap_rate
            )));
        }
        Ok(())
    }
}

/// The fixed corpus schema: three text attributes (attribute 0 is the
/// blocking key) and two numeric ones.
pub fn corpus_schema() -> Schema {
    Schema::new(["name", "category", "description", "quantity", "price"])
}

/// A generated dedup corpus: one table plus the exact clustering.
#[derive(Debug, Clone)]
pub struct DedupCorpus {
    /// The corpus table, rows in shuffled (ingest) order.
    pub table: Table,
    /// Ground truth: `entity_of[record_index]` is the base-entity id.
    pub entity_of: Vec<usize>,
}

impl DedupCorpus {
    /// Ground-truth duplicate pairs `(i, j)` with `i < j`, in sorted
    /// order — every within-entity record pair.
    pub fn truth_pairs(&self) -> Vec<(usize, usize)> {
        let n_entities = self.entity_of.iter().copied().max().map_or(0, |m| m + 1);
        let mut members: Vec<Vec<usize>> = vec![Vec::new(); n_entities];
        for (rec, &e) in self.entity_of.iter().enumerate() {
            members[e].push(rec);
        }
        let mut pairs = Vec::new();
        for group in members {
            for i in 0..group.len() {
                for j in i + 1..group.len() {
                    pairs.push((group[i], group[j]));
                }
            }
        }
        pairs.sort_unstable();
        pairs
    }

    /// The ground-truth cluster file body: `record,entity` CSV.
    pub fn truth_csv(&self) -> String {
        let mut out = String::from("record,entity\n");
        for (rec, e) in self.entity_of.iter().enumerate() {
            out.push_str(&format!("{rec},{e}\n"));
        }
        out
    }
}

/// A generated linkage corpus: two tables plus exact match pairs.
#[derive(Debug, Clone)]
pub struct LinkageCorpus {
    /// Left relation (clean-ish renderings of distinct entities).
    pub left: Table,
    /// Right relation (corrupted copies of some left entities plus fresh
    /// right-only entities), rows shuffled.
    pub right: Table,
    /// Ground-truth matches as `(left index, right index)`, sorted.
    pub matches: Vec<(usize, usize)>,
}

impl LinkageCorpus {
    /// The ground-truth match file body: `left,right` CSV.
    pub fn truth_csv(&self) -> String {
        let mut out = String::from("left,right\n");
        for &(l, r) in &self.matches {
            out.push_str(&format!("{l},{r}\n"));
        }
        out
    }
}

/// Zipf-distributed rank sampler over `0..vocab`: precomputed cumulative
/// weights + binary search, deterministic given the caller's RNG.
struct Zipf {
    cumulative: Vec<f64>,
}

impl Zipf {
    fn new(vocab: usize, exponent: f64) -> Self {
        let mut cumulative = Vec::with_capacity(vocab);
        let mut total = 0.0f64;
        for rank in 0..vocab {
            total += 1.0 / ((rank + 1) as f64).powf(exponent);
            cumulative.push(total);
        }
        Self { cumulative }
    }

    fn sample(&self, rng: &mut StdRng) -> usize {
        let total = *self.cumulative.last().expect("non-empty vocabulary");
        let u = rng.gen_range(0.0..total);
        self.cumulative.partition_point(|&c| c <= u)
    }
}

/// Token text for a vocabulary rank: five base-26 letters of the rank
/// scrambled through a multiplicative bijection (numeric suffix beyond
/// the 11.8 M five-letter tokens). Unique per rank by construction, and
/// the scramble matters: without it, nearby ranks share letter prefixes,
/// unrelated tokens share most of their 4-grams, and the q-gram blocking
/// leg floods candidate generation with mid-similarity non-matches until
/// the EM fit degenerates — distinct tokens must look distinct to a
/// character-gram featurizer, the way real words do.
fn token_text(rank: usize) -> String {
    const SPACE: u64 = 26u64.pow(5);
    const K: u64 = 9_999_991; // odd and coprime to 13 → bijective mod 26^5
    let mut x = (rank as u64 % SPACE).wrapping_mul(K) % SPACE;
    let mut letters = [0u8; 5];
    for l in &mut letters {
        *l = b'a' + (x % 26) as u8;
        x /= 26;
    }
    let base = std::str::from_utf8(&letters)
        .expect("ascii letters")
        .to_string();
    if (rank as u64) < SPACE {
        base
    } else {
        format!("{base}{}", rank as u64 / SPACE)
    }
}

const CATEGORIES: [&str; 12] = [
    "alpha", "beta", "gamma", "delta", "epsilon", "zeta", "theta", "kappa", "lambda", "sigma",
    "omega", "prime",
];

/// Shared vocabulary + samplers for one corpus generation run.
struct EntityGen {
    /// Head-skewed rank distribution for name tokens.
    name_zipf: Zipf,
    /// Same shape over the (larger) description vocabulary.
    desc_zipf: Zipf,
    vocab: usize,
}

impl EntityGen {
    fn new(records: usize, exponent: f64) -> Self {
        // The vocabulary grows with the corpus (√-ish) so bigger scales
        // stress the interner instead of recycling a fixed token set:
        // scale 0.1 → ~1 000 tokens, scale 1 → ~5 000, scale 100 → 500 k.
        let vocab = (records / 4).max(1_000);
        Self {
            name_zipf: Zipf::new(vocab, exponent),
            desc_zipf: Zipf::new(vocab, exponent),
            vocab,
        }
    }

    /// One clean base entity. `uid` must be unique per entity: the name
    /// leads with an identity token derived from it (ranks past the
    /// Zipf vocabulary, so it collides with nothing), followed by
    /// Zipf-drawn tokens. Real names work the same way — a rare
    /// discriminative surname amid common words — and without the rare
    /// token, the Zipf head floods blocking with quadratic candidate
    /// sets and the EM fit degenerates (every pair looks alike).
    fn entity(&self, uid: usize, rng: &mut StdRng) -> Vec<Value> {
        let n_name = rng.gen_range(1..=2usize);
        let mut name = vec![token_text(self.vocab + uid)];
        name.extend((0..n_name).map(|_| token_text(self.name_zipf.sample(rng))));
        let category = CATEGORIES[rng.gen_range(0..CATEGORIES.len())];
        let n_desc = rng.gen_range(6..=12usize);
        let desc: Vec<String> = (0..n_desc)
            .map(|_| token_text(self.desc_zipf.sample(rng)))
            .collect();
        let quantity = rng.gen_range(1..=500i64);
        let price = (rng.gen_range(100..250_000) as f64) / 100.0;
        vec![
            Value::Str(name.join(" ")),
            Value::Str(category.to_string()),
            Value::Str(desc.join(" ")),
            Value::Int(quantity),
            Value::Float(price),
        ]
    }
}

/// A corrupted copy of `base`: per-value [`Perturber`] noise (the name —
/// the blocking key — gets a lightened dirt level so duplicates stay
/// *findable*, as in the profile generators), plus the record-level
/// field swap of the two non-blocking text attributes.
fn corrupt(
    base: &[Value],
    pert: &Perturber,
    key_pert: &Perturber,
    field_swap_rate: f64,
    rng: &mut StdRng,
) -> Vec<Value> {
    let mut values: Vec<Value> = base
        .iter()
        .enumerate()
        .map(|(a, v)| {
            if a == 0 {
                key_pert.perturb_value(v, rng)
            } else {
                pert.perturb_value(v, rng)
            }
        })
        .collect();
    if field_swap_rate > 0.0 && rng.gen_bool(field_swap_rate) {
        values.swap(1, 2); // category ↔ description: compatible text fields
    }
    values
}

/// The lightened blocking-key dirt: keys stay present and un-abbreviated
/// (mirrors `dataset::generate`'s treatment of attribute 0).
fn key_dirt(d: DirtLevel) -> DirtLevel {
    DirtLevel {
        missing_rate: 0.0,
        abbrev_rate: d.abbrev_rate * 0.25,
        token_drop_rate: d.token_drop_rate * 0.5,
        ..d
    }
}

/// The paraphrase pool handed to [`Perturber`]; unused because
/// [`corpus_dirt`] zeroes the paraphrase and inject rates, but the
/// constructor requires one.
fn unused_pool() -> &'static [&'static str] {
    &CATEGORIES
}

/// Generates a dedup corpus: `spec.records()` rows in shuffled order,
/// of which `round(records · duplicate_rate)` are corrupted copies of a
/// uniformly chosen base entity.
pub fn generate_dedup(spec: &CorpusSpec) -> Result<DedupCorpus, CorpusError> {
    spec.validate()?;
    let n = spec.records();
    let n_dups = ((n as f64) * spec.duplicate_rate).round() as usize;
    let n_entities = n - n_dups;
    let mut rng = StdRng::seed_from_u64(spec.seed);
    let gen = EntityGen::new(n, spec.zipf_exponent);
    let pert = Perturber::new(spec.dirt, unused_pool());
    let key_pert = Perturber::new(key_dirt(spec.dirt), unused_pool());

    // Base entities, rendered clean.
    let entities: Vec<Vec<Value>> = (0..n_entities).map(|e| gen.entity(e, &mut rng)).collect();

    // Row plan: every entity once + n_dups corrupted copies of uniformly
    // drawn entities; then one shuffle fixes the ingest order.
    let mut rows: Vec<(usize, Vec<Value>)> = Vec::with_capacity(n);
    for (e, values) in entities.iter().enumerate() {
        rows.push((e, values.clone()));
    }
    for _ in 0..n_dups {
        let e = rng.gen_range(0..n_entities);
        rows.push((
            e,
            corrupt(
                &entities[e],
                &pert,
                &key_pert,
                spec.field_swap_rate,
                &mut rng,
            ),
        ));
    }
    rows.shuffle(&mut rng);

    let mut table = Table::new(format!("corpus-{}", spec.seed), corpus_schema());
    let mut entity_of = Vec::with_capacity(n);
    for (idx, (e, values)) in rows.into_iter().enumerate() {
        entity_of.push(e);
        table.push(Record::new(idx as u32, values));
    }
    Ok(DedupCorpus { table, entity_of })
}

/// Generates a linkage corpus: the left table holds `records / 2`
/// distinct entities; the right table holds one corrupted copy of
/// `round(right_len · duplicate_rate)` of them (one-to-one) plus fresh
/// right-only entities, shuffled.
pub fn generate_linkage(spec: &CorpusSpec) -> Result<LinkageCorpus, CorpusError> {
    spec.validate()?;
    let n = spec.records();
    let n_left = n / 2;
    let n_right = n - n_left;
    let n_matches = ((n_right as f64) * spec.duplicate_rate).round() as usize;
    let n_matches = n_matches.min(n_left).max(1);
    let mut rng = StdRng::seed_from_u64(spec.seed);
    let gen = EntityGen::new(n, spec.zipf_exponent);
    let pert = Perturber::new(spec.dirt, unused_pool());
    let key_pert = Perturber::new(key_dirt(spec.dirt), unused_pool());

    let left_entities: Vec<Vec<Value>> = (0..n_left).map(|e| gen.entity(e, &mut rng)).collect();
    let mut left = Table::new(format!("corpus-{}-left", spec.seed), corpus_schema());
    for (i, values) in left_entities.iter().enumerate() {
        left.push(Record::new(i as u32, values.clone()));
    }

    // The first n_matches left entities get one corrupted right-side
    // copy each (which left entities are "shared" is irrelevant to the
    // matcher — entity identity is random anyway); the rest of the right
    // table is fresh entities.
    let mut right_rows: Vec<(Option<usize>, Vec<Value>)> = Vec::with_capacity(n_right);
    for (li, values) in left_entities.iter().enumerate().take(n_matches) {
        right_rows.push((
            Some(li),
            corrupt(values, &pert, &key_pert, spec.field_swap_rate, &mut rng),
        ));
    }
    for i in n_matches..n_right {
        // Fresh right-only entities: uids continue past the left table's
        // so their identity tokens collide with nothing.
        right_rows.push((None, gen.entity(n_left + i, &mut rng)));
    }
    right_rows.shuffle(&mut rng);

    let mut right = Table::new(format!("corpus-{}-right", spec.seed), corpus_schema());
    let mut matches = Vec::new();
    for (ri, (source, values)) in right_rows.into_iter().enumerate() {
        if let Some(li) = source {
            matches.push((li, ri));
        }
        right.push(Record::new(ri as u32, values));
    }
    matches.sort_unstable();
    let _ = gen.vocab;
    Ok(LinkageCorpus {
        left,
        right,
        matches,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use zeroer_tabular::csv::write_table;

    fn small_spec(seed: u64) -> CorpusSpec {
        CorpusSpec {
            scale: 0.01, // 200 records
            seed,
            ..CorpusSpec::default()
        }
    }

    #[test]
    fn dedup_corpus_hits_the_controlled_duplicate_rate() {
        let spec = small_spec(7);
        let c = generate_dedup(&spec).expect("valid spec");
        let n = spec.records();
        assert_eq!(c.table.len(), n);
        assert_eq!(c.entity_of.len(), n);
        let n_dups = ((n as f64) * spec.duplicate_rate).round() as usize;
        let n_entities = n - n_dups;
        assert_eq!(
            c.entity_of.iter().copied().max().unwrap() + 1,
            n_entities,
            "every base entity appears"
        );
        // Exactly n_dups records beyond the one-per-entity originals.
        assert_eq!(
            c.entity_of.len() - n_entities,
            n_dups,
            "duplicate count is exact, not expected-value"
        );
        assert!(!c.truth_pairs().is_empty());
    }

    #[test]
    fn generation_is_byte_identical_per_seed() {
        let a = generate_dedup(&small_spec(3)).unwrap();
        let b = generate_dedup(&small_spec(3)).unwrap();
        assert_eq!(write_table(&a.table), write_table(&b.table));
        assert_eq!(a.truth_csv(), b.truth_csv());
        let c = generate_dedup(&small_spec(4)).unwrap();
        assert_ne!(write_table(&a.table), write_table(&c.table));
    }

    #[test]
    fn token_distribution_is_zipf_skewed() {
        let c = generate_dedup(&CorpusSpec {
            scale: 0.05,
            ..CorpusSpec::default()
        })
        .unwrap();
        let mut counts: std::collections::HashMap<String, usize> = std::collections::HashMap::new();
        for r in c.table.records() {
            if let Some(text) = r.values[2].as_text() {
                for t in text.split(' ') {
                    *counts.entry(t.to_string()).or_insert(0) += 1;
                }
            }
        }
        let mut freqs: Vec<usize> = counts.values().copied().collect();
        freqs.sort_unstable_by(|a, b| b.cmp(a));
        let median = freqs[freqs.len() / 2];
        assert!(
            freqs[0] >= median * 20,
            "head token frequency {} must dwarf the median {median}",
            freqs[0]
        );
    }

    #[test]
    fn schema_mixes_text_and_numeric() {
        let c = generate_dedup(&small_spec(1)).unwrap();
        let types = c.table.infer_types();
        let names: Vec<_> = types.iter().map(|t| t.name()).collect();
        assert_eq!(c.table.schema().arity(), 5);
        assert!(
            names.iter().any(|n| n.starts_with("str")) && names.iter().any(|n| *n == "numeric"),
            "schema must mix text and numeric attribute types: {names:?}"
        );
    }

    #[test]
    fn duplicates_are_corrupted_but_findable() {
        let c = generate_dedup(&small_spec(11)).unwrap();
        let pairs = c.truth_pairs();
        let mut changed = 0usize;
        let mut share_name_token = 0usize;
        for &(i, j) in &pairs {
            let a = &c.table.record(i).values;
            let b = &c.table.record(j).values;
            changed += usize::from(a != b);
            let (Some(na), Some(nb)) = (a[0].as_text(), b[0].as_text()) else {
                continue;
            };
            let ta: std::collections::HashSet<&str> = na.split(' ').collect();
            share_name_token += usize::from(nb.split(' ').any(|t| ta.contains(t)));
        }
        assert!(
            changed * 10 >= pairs.len() * 7,
            "corruption must actually dirty most duplicates ({changed}/{})",
            pairs.len()
        );
        assert!(
            share_name_token * 10 >= pairs.len() * 8,
            "most duplicates must stay reachable through name-token blocking \
             ({share_name_token}/{})",
            pairs.len()
        );
    }

    #[test]
    fn linkage_corpus_is_one_to_one_with_exact_truth() {
        let spec = small_spec(5);
        let c = generate_linkage(&spec).expect("valid spec");
        let n = spec.records();
        assert_eq!(c.left.len(), n / 2);
        assert_eq!(c.right.len(), n - n / 2);
        let expected = ((c.right.len() as f64) * spec.duplicate_rate).round() as usize;
        assert_eq!(c.matches.len(), expected.min(c.left.len()).max(1));
        let mut lefts: Vec<usize> = c.matches.iter().map(|m| m.0).collect();
        let mut rights: Vec<usize> = c.matches.iter().map(|m| m.1).collect();
        let before = lefts.len();
        lefts.sort_unstable();
        lefts.dedup();
        rights.sort_unstable();
        rights.dedup();
        assert_eq!(lefts.len(), before, "one-to-one left endpoints");
        assert_eq!(rights.len(), before, "one-to-one right endpoints");
        for &(l, r) in &c.matches {
            assert!(l < c.left.len() && r < c.right.len());
        }
    }

    #[test]
    fn degenerate_specs_are_rejected_cleanly() {
        let bad = [
            CorpusSpec {
                scale: 0.0,
                ..CorpusSpec::default()
            },
            CorpusSpec {
                scale: -1.0,
                ..CorpusSpec::default()
            },
            CorpusSpec {
                scale: f64::NAN,
                ..CorpusSpec::default()
            },
            CorpusSpec {
                scale: 0.0001, // 2 records: under the floor
                ..CorpusSpec::default()
            },
            CorpusSpec {
                duplicate_rate: 0.0,
                ..CorpusSpec::default()
            },
            CorpusSpec {
                duplicate_rate: 1.0,
                ..CorpusSpec::default()
            },
            CorpusSpec {
                duplicate_rate: f64::NAN,
                ..CorpusSpec::default()
            },
            CorpusSpec {
                zipf_exponent: 0.0,
                ..CorpusSpec::default()
            },
            CorpusSpec {
                field_swap_rate: 1.5,
                ..CorpusSpec::default()
            },
        ];
        for spec in bad {
            let err = generate_dedup(&spec).expect_err("must reject");
            assert!(!err.to_string().is_empty());
            assert!(generate_linkage(&spec).is_err());
        }
    }

    #[test]
    fn token_text_is_unique_per_rank() {
        let mut seen = std::collections::HashSet::new();
        for rank in (0..30_000).step_by(7) {
            assert!(seen.insert(token_text(rank)), "rank {rank} collided");
        }
    }

    #[test]
    fn truth_csv_round_trips_entity_ids() {
        let c = generate_dedup(&small_spec(2)).unwrap();
        let csv = c.truth_csv();
        let mut lines = csv.lines();
        assert_eq!(lines.next(), Some("record,entity"));
        for (rec, line) in lines.enumerate() {
            let (r, e) = line.split_once(',').expect("two columns");
            assert_eq!(r.parse::<usize>().unwrap(), rec);
            assert_eq!(e.parse::<usize>().unwrap(), c.entity_of[rec]);
        }
    }
}
