//! Dataset assembly: entities → two noisy tables + ground truth.

use crate::entity::EntityFactory;
use crate::perturb::Perturber;
use crate::profiles::{DatasetProfile, Domain, LinkKind};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use std::collections::HashSet;
use zeroer_tabular::{Record, Table};

/// A generated benchmark: two tables plus ground-truth match pairs
/// expressed as record *indices* `(left, right)`.
#[derive(Debug, Clone)]
pub struct GeneratedDataset {
    /// Paper notation of the source profile (e.g. `Pub-DS`).
    pub notation: String,
    /// Left relation `T`.
    pub left: Table,
    /// Right relation `T'`.
    pub right: Table,
    /// Ground-truth matches as `(left index, right index)`.
    pub matches: Vec<(usize, usize)>,
}

impl GeneratedDataset {
    /// Labels a candidate pair list against the ground truth.
    pub fn labels_for(&self, pairs: &[(usize, usize)]) -> Vec<bool> {
        let truth: HashSet<(usize, usize)> = self.matches.iter().copied().collect();
        pairs.iter().map(|p| truth.contains(p)).collect()
    }

    /// Concatenates both sides into one deduplication table (left rows
    /// first, then right rows, re-indexed 0..n) plus the ground-truth
    /// duplicate pairs in the concatenated indexing — the input shape the
    /// streaming subsystem and its benchmarks consume.
    pub fn dedup_table(&self) -> (Table, Vec<(usize, usize)>) {
        let mut t = Table::new(
            format!("{}-dedup", self.notation),
            self.left.schema().clone(),
        );
        for (id, r) in self
            .left
            .records()
            .iter()
            .chain(self.right.records())
            .enumerate()
        {
            t.push(Record::new(id as u32, r.values.clone()));
        }
        let nl = self.left.len();
        let truth = self.matches.iter().map(|&(l, r)| (l, nl + r)).collect();
        (t, truth)
    }

    /// Class-imbalance ratio of a candidate set: unmatches per match
    /// (∞ when no matches survive blocking, reported as `f64::INFINITY`).
    pub fn imbalance(&self, pairs: &[(usize, usize)]) -> f64 {
        let labels = self.labels_for(pairs);
        let pos = labels.iter().filter(|&&l| l).count();
        let neg = labels.len() - pos;
        if pos == 0 {
            f64::INFINITY
        } else {
            neg as f64 / pos as f64
        }
    }
}

/// Per-matched-entity fan-out plan: how many right-side copies each
/// matched left entity receives.
fn fanout_plan(
    n_left: usize,
    n_right: usize,
    n_matches: usize,
    link: LinkKind,
    rng: &mut StdRng,
) -> Vec<usize> {
    match link {
        LinkKind::OneToOne => {
            let m = n_matches.min(n_left).min(n_right);
            vec![1; m]
        }
        LinkKind::OneToMany { max_fanout } => {
            // Number of matched left entities: enough that fan-out ≤ cap.
            let m = n_matches.min(n_right);
            let min_left = m.div_ceil(max_fanout);
            let n_matched_left = m.min(n_left).max(min_left).min(n_left);
            let mut plan = vec![1usize; n_matched_left];
            let mut total: usize = plan.iter().sum();
            // Distribute the remaining matches randomly under the cap.
            let mut guard = 0;
            while total < m && guard < m * 20 {
                let i = rng.gen_range(0..plan.len());
                if plan[i] < max_fanout {
                    plan[i] += 1;
                    total += 1;
                }
                guard += 1;
            }
            plan
        }
    }
}

/// Generates a benchmark dataset from a profile at the given scale.
///
/// The construction: sample `n_left` distinct clean entities (the first
/// `|plan|` of them are "shared"); the left table is a lightly-noised
/// rendering of all of them; the right table contains `plan[i]`
/// independently-noised copies of each shared entity plus fresh distinct
/// entities up to `n_right`; finally the right table is shuffled.
///
/// # Panics
/// Panics if `scale ∉ (0, 1]`.
pub fn generate(profile: &DatasetProfile, scale: f64, seed: u64) -> GeneratedDataset {
    let (n_left, n_right, n_matches) = profile.scaled(scale);
    let mut rng = StdRng::seed_from_u64(seed);
    let factory = EntityFactory::new(profile.domain, profile.n_attrs);
    let pool = paraphrase_pool(profile.domain);
    let left_pert = Perturber::new(profile.left_dirt, pool);
    let right_pert = Perturber::new(profile.right_dirt, pool);

    // The name/title attribute (index 0) is the blocking key; real
    // benchmark key fields are nearly always present and un-abbreviated,
    // so it gets a lightened dirt level (noise concentrates in the other
    // attributes, as in the originals).
    let key_dirt = |d: crate::perturb::DirtLevel| crate::perturb::DirtLevel {
        missing_rate: 0.0,
        abbrev_rate: d.abbrev_rate * 0.25,
        token_drop_rate: d.token_drop_rate * 0.5,
        ..d
    };
    let left_key_pert = Perturber::new(key_dirt(profile.left_dirt), pool);
    let right_key_pert = Perturber::new(key_dirt(profile.right_dirt), pool);

    let plan = fanout_plan(n_left, n_right, n_matches, profile.link, &mut rng);
    let n_shared = plan.len();
    let total_right_copies: usize = plan.iter().sum();
    let n_right_fresh = n_right.saturating_sub(total_right_copies);

    // Entities: n_left for the left table + fresh right-only ones.
    let entities: Vec<_> = (0..n_left + n_right_fresh)
        .map(|_| factory.generate(&mut rng))
        .collect();

    // Left table: one noisy rendering of entities[0..n_left].
    let mut left = Table::new(format!("{}-left", profile.notation), factory.schema());
    for (i, e) in entities[..n_left].iter().enumerate() {
        let values = e
            .values
            .iter()
            .enumerate()
            .map(|(a, v)| {
                let pert = if a == 0 { &left_key_pert } else { &left_pert };
                pert.perturb_value(v, &mut rng)
            })
            .collect();
        left.push(Record::new(i as u32, values));
    }

    // Right rows: copies of shared entities + fresh entities; remember the
    // source left index of each copy, then shuffle.
    struct RightRow {
        source_left: Option<usize>,
        values: Vec<zeroer_tabular::Value>,
    }
    let mut right_rows: Vec<RightRow> = Vec::with_capacity(n_right);
    let perturb_right = |e: &crate::entity::Entity, rng: &mut rand::rngs::StdRng| {
        e.values
            .iter()
            .enumerate()
            .map(|(a, v)| {
                let pert = if a == 0 { &right_key_pert } else { &right_pert };
                pert.perturb_value(v, rng)
            })
            .collect::<Vec<_>>()
    };
    for (left_idx, &k) in plan.iter().enumerate().take(n_shared) {
        for _ in 0..k {
            let values = perturb_right(&entities[left_idx], &mut rng);
            right_rows.push(RightRow {
                source_left: Some(left_idx),
                values,
            });
        }
    }
    for e in &entities[n_left..] {
        let values = perturb_right(e, &mut rng);
        right_rows.push(RightRow {
            source_left: None,
            values,
        });
    }
    right_rows.shuffle(&mut rng);

    let mut right = Table::new(format!("{}-right", profile.notation), factory.schema());
    let mut matches = Vec::new();
    for (ri, row) in right_rows.into_iter().enumerate() {
        if let Some(li) = row.source_left {
            matches.push((li, ri));
        }
        right.push(Record::new(ri as u32, row.values));
    }
    matches.sort_unstable();

    GeneratedDataset {
        notation: profile.notation.to_string(),
        left,
        right,
        matches,
    }
}

/// Vocabulary pool used for paraphrase replacements, per domain.
fn paraphrase_pool(domain: Domain) -> &'static [&'static str] {
    use crate::vocab::*;
    match domain {
        Domain::Restaurants => CUISINES,
        Domain::Publications => CS_WORDS,
        Domain::Movies => MOVIE_WORDS,
        Domain::Products => MARKETING_WORDS,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profiles::{all_profiles, prod_ag, pub_da, pub_ds, rest_fz};

    const SCALE: f64 = 0.05;

    #[test]
    fn all_profiles_generate_consistent_datasets() {
        for p in all_profiles() {
            let ds = generate(&p, SCALE, 7);
            let (l, r, _) = p.scaled(SCALE);
            assert_eq!(ds.left.len(), l, "{}", p.notation);
            assert_eq!(ds.right.len(), r, "{}", p.notation);
            assert_eq!(ds.left.schema().arity(), p.n_attrs, "{}", p.notation);
            assert!(!ds.matches.is_empty(), "{}", p.notation);
            // Every match points at valid rows.
            for &(li, ri) in &ds.matches {
                assert!(li < ds.left.len() && ri < ds.right.len());
            }
        }
    }

    #[test]
    fn one_to_one_profiles_have_unique_endpoints() {
        let ds = generate(&pub_da(), SCALE, 3);
        let mut lefts: Vec<usize> = ds.matches.iter().map(|m| m.0).collect();
        let mut rights: Vec<usize> = ds.matches.iter().map(|m| m.1).collect();
        lefts.sort_unstable();
        rights.sort_unstable();
        let before = lefts.len();
        lefts.dedup();
        rights.dedup();
        assert_eq!(
            lefts.len(),
            before,
            "one-to-one left endpoints must be unique"
        );
        assert_eq!(
            rights.len(),
            before,
            "one-to-one right endpoints must be unique"
        );
    }

    #[test]
    fn one_to_many_fans_out() {
        let ds = generate(&pub_ds(), SCALE, 5);
        let mut lefts: Vec<usize> = ds.matches.iter().map(|m| m.0).collect();
        let n = lefts.len();
        lefts.sort_unstable();
        lefts.dedup();
        assert!(lefts.len() < n, "Pub-DS must contain one-to-many matches");
    }

    #[test]
    fn match_count_hits_scaled_target() {
        let p = pub_da();
        let ds = generate(&p, SCALE, 11);
        let (_, _, m) = p.scaled(SCALE);
        // One-to-one can clamp to table sizes; at this scale it should be exact.
        assert_eq!(ds.matches.len(), m);
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let p = rest_fz();
        let a = generate(&p, SCALE, 9);
        let b = generate(&p, SCALE, 9);
        assert_eq!(a.matches, b.matches);
        assert_eq!(a.left.records(), b.left.records());
        assert_eq!(a.right.records(), b.right.records());
        let c = generate(&p, SCALE, 10);
        assert_ne!(a.left.records(), c.left.records());
    }

    #[test]
    fn labels_for_flags_truth_pairs() {
        let ds = generate(&rest_fz(), SCALE, 2);
        let (li, ri) = ds.matches[0];
        let labels = ds.labels_for(&[(li, ri), (li, (ri + 1) % ds.right.len())]);
        assert!(labels[0]);
        // The adjacent pair is almost surely not a match.
        assert_eq!(labels.len(), 2);
    }

    #[test]
    fn products_matches_share_little_description_vocabulary() {
        let ds = generate(&prod_ag(), SCALE, 13);
        // Description is attribute index 2 in the AG schema.
        let mut overlaps = Vec::new();
        for &(li, ri) in ds.matches.iter().take(20) {
            let l = ds.left.value(li, 2).as_text().unwrap_or_default();
            let r = ds.right.value(ri, 2).as_text().unwrap_or_default();
            let mut it = zeroer_textsim::Interner::new();
            let lb = zeroer_textsim::words(&mut it, &l);
            let rb = zeroer_textsim::words(&mut it, &r);
            overlaps.push(zeroer_textsim::jaccard(&lb, &rb));
        }
        let mean: f64 = overlaps.iter().sum::<f64>() / overlaps.len() as f64;
        assert!(
            mean < 0.6,
            "product matches must be lexically divergent (mean Jaccard {mean})"
        );
        assert!(mean > 0.05, "but not pure noise (mean Jaccard {mean})");
    }

    #[test]
    fn restaurant_matches_stay_lexically_close() {
        let ds = generate(&rest_fz(), SCALE, 13);
        let mut overlaps = Vec::new();
        for &(li, ri) in ds.matches.iter().take(20) {
            let l = ds.left.value(li, 0).as_text().unwrap_or_default();
            let r = ds.right.value(ri, 0).as_text().unwrap_or_default();
            overlaps.push(zeroer_textsim::jaro_winkler(&l, &r));
        }
        let mean: f64 = overlaps.iter().sum::<f64>() / overlaps.len() as f64;
        assert!(mean > 0.85, "Rest-FZ must be nearly clean (mean JW {mean})");
    }
}
