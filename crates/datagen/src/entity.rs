//! Clean-entity factories per benchmark domain.

use crate::profiles::Domain;
use crate::vocab::*;
use rand::rngs::StdRng;
use rand::Rng;
use zeroer_tabular::{Schema, Value};

/// The schema each domain generates. `n_attrs` distinguishes the two
/// product dataset shapes (Abt-Buy has 3 attributes, Amazon-Google 4).
pub fn schema_for(domain: Domain, n_attrs: usize) -> Schema {
    match domain {
        Domain::Restaurants => Schema::new([
            "name", "addr", "city", "phone", "cuisine", "category", "price",
        ]),
        Domain::Publications => Schema::new(["title", "authors", "venue", "year"]),
        Domain::Movies => Schema::new([
            "name", "year", "director", "star", "genre", "runtime", "rating", "votes",
        ]),
        Domain::Products => {
            if n_attrs <= 3 {
                Schema::new(["name", "description", "price"])
            } else {
                Schema::new(["title", "manufacturer", "description", "price"])
            }
        }
    }
}

fn title_case(s: &str) -> String {
    s.split(' ')
        .map(|w| {
            let mut c = w.chars();
            match c.next() {
                Some(f) => f.to_uppercase().collect::<String>() + c.as_str(),
                None => String::new(),
            }
        })
        .collect::<Vec<_>>()
        .join(" ")
}

/// A clean (noise-free) entity: the ground-truth row both tables' versions
/// derive from.
#[derive(Debug, Clone)]
pub struct Entity {
    /// Attribute values in schema order.
    pub values: Vec<Value>,
}

/// Generates clean entities for a domain.
pub struct EntityFactory {
    domain: Domain,
    n_attrs: usize,
}

impl EntityFactory {
    /// Creates a factory for the domain/schema shape.
    pub fn new(domain: Domain, n_attrs: usize) -> Self {
        Self { domain, n_attrs }
    }

    /// The schema entities conform to.
    pub fn schema(&self) -> Schema {
        schema_for(self.domain, self.n_attrs)
    }

    /// Samples one clean entity. Callers drive `rng` so entity identity is
    /// deterministic per dataset seed.
    pub fn generate(&self, rng: &mut StdRng) -> Entity {
        match self.domain {
            Domain::Restaurants => self.restaurant(rng),
            Domain::Publications => self.publication(rng),
            Domain::Movies => self.movie(rng),
            Domain::Products => self.product(rng),
        }
    }

    fn restaurant(&self, rng: &mut StdRng) -> Entity {
        let name = format!(
            "{} {}",
            pick(REST_ADJ, rng.gen()),
            pick(REST_NOUN, rng.gen())
        );
        let addr = format!("{} {}", rng.gen_range(1..999), pick(STREETS, rng.gen()));
        let city = pick(CITIES, rng.gen()).to_string();
        let phone = format!(
            "{}-{}-{}",
            rng.gen_range(200..999),
            rng.gen_range(200..999),
            rng.gen_range(1000..9999)
        );
        let cuisine = pick(CUISINES, rng.gen()).to_string();
        let category = [
            "fine dining",
            "casual dining",
            "fast food",
            "bistro",
            "buffet",
        ][rng.gen_range(0..5usize)]
        .to_string();
        let price = rng.gen_range(1..=4i64);
        Entity {
            values: vec![
                Value::Str(title_case(&name)),
                Value::Str(addr),
                Value::Str(title_case(&city)),
                Value::Str(phone),
                Value::Str(cuisine),
                Value::Str(category),
                Value::Int(price),
            ],
        }
    }

    fn publication(&self, rng: &mut StdRng) -> Entity {
        // Titles mix a Zipf head of high-frequency words (CS_COMMON —
        // shared across many titles, creating confusable candidates under
        // overlap blocking) with rare specific tokens (suffixed variants
        // like "cacheaware", concatenated so each is a single rare token).
        const SUFFIXES: &[&str] = &[
            "based", "aware", "driven", "oriented", "centric", "free", "level", "time",
        ];
        let n_common = rng.gen_range(2..=3usize);
        let n_rare = rng.gen_range(3..=6usize);
        let mut title: Vec<String> = Vec::with_capacity(n_common + n_rare);
        for _ in 0..n_common {
            title.push(pick(CS_COMMON, rng.gen()).to_string());
        }
        for _ in 0..n_rare {
            let w = pick(CS_WORDS, rng.gen());
            if rng.gen_bool(0.55) {
                title.push(format!("{w}{}", SUFFIXES[rng.gen_range(0..SUFFIXES.len())]));
            } else {
                title.push(w.to_string());
            }
        }
        // Interleave deterministically so common words are not clustered.
        for i in (1..title.len()).rev() {
            let j = rng.gen_range(0..=i);
            title.swap(i, j);
        }
        let n_auth = rng.gen_range(1..=4);
        let authors: Vec<String> = (0..n_auth)
            .map(|_| {
                format!(
                    "{}. {}",
                    pick(INITIALS, rng.gen()).to_uppercase(),
                    title_case(pick(SURNAMES, rng.gen()))
                )
            })
            .collect();
        let venue_idx = rng.gen_range(0..VENUES.len());
        let year = rng.gen_range(1985..=2018i64);
        Entity {
            values: vec![
                Value::Str(title.join(" ")),
                Value::Str(authors.join(", ")),
                Value::Str(VENUES[venue_idx].to_string()),
                Value::Int(year),
            ],
        }
    }

    fn movie(&self, rng: &mut StdRng) -> Entity {
        let len = rng.gen_range(1..=3);
        let name: Vec<&str> = (0..len).map(|_| pick(MOVIE_WORDS, rng.gen())).collect();
        let year = rng.gen_range(1960..=2018i64);
        let person = |rng: &mut StdRng| {
            format!(
                "{}. {}",
                pick(INITIALS, rng.gen()).to_uppercase(),
                title_case(pick(SURNAMES, rng.gen()))
            )
        };
        let director = person(rng);
        let star = person(rng);
        let genre = pick(GENRES, rng.gen()).to_string();
        let runtime = rng.gen_range(75..=195i64);
        let rating = (rng.gen_range(10..=99) as f64) / 10.0;
        let votes = rng.gen_range(100..500_000i64);
        Entity {
            values: vec![
                Value::Str(title_case(&name.join(" "))),
                Value::Int(year),
                Value::Str(director),
                Value::Str(star),
                Value::Str(genre),
                Value::Int(runtime),
                Value::Float(rating),
                Value::Int(votes),
            ],
        }
    }

    fn product(&self, rng: &mut StdRng) -> Entity {
        let brand = title_case(pick(BRANDS, rng.gen()));
        let category = pick(PRODUCT_CATEGORIES, rng.gen());
        let model = format!(
            "{}{}",
            (b'a' + rng.gen_range(0..26u8)) as char,
            rng.gen_range(100..9999)
        )
        .to_uppercase();
        let name = format!("{brand} {model} {category}");
        let desc_len = rng.gen_range(18..40usize);
        let mut desc: Vec<String> = Vec::with_capacity(desc_len + 3);
        desc.push(brand.to_lowercase());
        desc.push(category.to_string());
        desc.push(model.to_lowercase());
        for _ in 0..desc_len {
            desc.push(pick(MARKETING_WORDS, rng.gen()).to_string());
        }
        let price = (rng.gen_range(999..199_999) as f64) / 100.0;
        if self.n_attrs <= 3 {
            Entity {
                values: vec![
                    Value::Str(name),
                    Value::Str(desc.join(" ")),
                    Value::Float(price),
                ],
            }
        } else {
            Entity {
                values: vec![
                    Value::Str(name),
                    Value::Str(brand),
                    Value::Str(desc.join(" ")),
                    Value::Float(price),
                ],
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    #[test]
    fn every_domain_matches_its_schema_arity() {
        for (domain, n_attrs) in [
            (Domain::Restaurants, 7),
            (Domain::Publications, 4),
            (Domain::Movies, 8),
            (Domain::Products, 3),
            (Domain::Products, 4),
        ] {
            let f = EntityFactory::new(domain, n_attrs);
            let e = f.generate(&mut rng(1));
            assert_eq!(e.values.len(), f.schema().arity(), "{domain:?}");
            assert!(
                e.values.iter().all(|v| !v.is_null()),
                "clean entities have no nulls"
            );
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let f = EntityFactory::new(Domain::Publications, 4);
        let a = f.generate(&mut rng(42));
        let b = f.generate(&mut rng(42));
        assert_eq!(a.values, b.values);
    }

    #[test]
    fn different_draws_differ() {
        let f = EntityFactory::new(Domain::Movies, 8);
        let mut r = rng(7);
        let a = f.generate(&mut r);
        let b = f.generate(&mut r);
        assert_ne!(a.values, b.values);
    }

    #[test]
    fn product_descriptions_are_long_text() {
        let f = EntityFactory::new(Domain::Products, 3);
        let e = f.generate(&mut rng(3));
        let desc = e.values[1].as_text().unwrap();
        assert!(
            desc.split_whitespace().count() > 10,
            "description must be long free text: {desc}"
        );
    }

    #[test]
    fn publication_years_are_plausible() {
        let f = EntityFactory::new(Domain::Publications, 4);
        for s in 0..20 {
            let e = f.generate(&mut rng(s));
            let y = e.values[3].as_number().unwrap();
            assert!((1985.0..=2018.0).contains(&y));
        }
    }
}
