//! Synthetic ER benchmark generator.
//!
//! The paper evaluates on six benchmark datasets from four domains
//! (Table 1). Those datasets are not redistributable here, so this crate
//! generates *synthetic stand-ins* that preserve the properties the
//! paper's claims rest on:
//!
//! * the **scale statistics** of Table 1 (tuple counts per side, match
//!   counts, attribute counts, one-to-one vs one-to-many linkage);
//! * the **difficulty ordering**: Fodors-Zagat is nearly clean (every
//!   matcher should approach F = 1), the publication/movie datasets carry
//!   moderate noise (typos, abbreviations, missing values), and the two
//!   product datasets are hard long-text problems where matched pairs
//!   share little surface vocabulary (paraphrased descriptions), which is
//!   exactly why similarity-based matchers top out around F ≈ 0.4–0.5
//!   there (§7.2);
//! * **extreme class imbalance** after blocking.
//!
//! Generation is fully deterministic given a seed. `scale` shrinks the
//! tuple counts proportionally (match counts scale along) so the full
//! experiment suite stays tractable in CI.

pub mod corpus;
pub mod dataset;
pub mod entity;
pub mod perturb;
pub mod profiles;
pub mod vocab;

pub use corpus::{
    corpus_dirt, corpus_schema, generate_dedup, generate_linkage, CorpusError, CorpusSpec,
    DedupCorpus, LinkageCorpus,
};
pub use dataset::{generate, GeneratedDataset};
pub use perturb::{DirtLevel, Perturber};
pub use profiles::{all_profiles, DatasetProfile, Domain, LinkKind};
