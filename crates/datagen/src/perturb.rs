//! Noise models: how a clean entity degrades into a messy table row.

use rand::rngs::StdRng;
use rand::Rng;
use zeroer_tabular::Value;

/// Dirtiness knobs applied when materializing an entity into a table row.
///
/// Rates are per-applicable-unit probabilities: `typo_rate` per token,
/// `token_drop_rate` per token, `missing_rate` per attribute, etc.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DirtLevel {
    /// Probability of a character-level typo per token.
    pub typo_rate: f64,
    /// Probability of dropping each non-leading token.
    pub token_drop_rate: f64,
    /// Probability of abbreviating a token to its initial.
    pub abbrev_rate: f64,
    /// Probability of swapping two adjacent tokens.
    pub token_swap_rate: f64,
    /// Probability an attribute value goes missing entirely.
    pub missing_rate: f64,
    /// Probability a numeric value drifts (integers by ±1–3 units, floats
    /// by up to ±10 %).
    pub numeric_jitter: f64,
    /// For long free-text fields: fraction of tokens *replaced* by fresh
    /// vocabulary (the paraphrase model that makes the product datasets
    /// hard — matched listings describe the same item in different words).
    pub paraphrase_rate: f64,
    /// Per-token probability of *inserting* a fresh vocabulary word after
    /// a token (sellers padding product names with marketing words).
    pub inject_rate: f64,
}

impl DirtLevel {
    /// Essentially clean data (Fodors side of Rest-FZ, DBLP side of the
    /// publication datasets).
    pub fn clean() -> Self {
        Self {
            typo_rate: 0.01,
            token_drop_rate: 0.01,
            abbrev_rate: 0.0,
            token_swap_rate: 0.0,
            missing_rate: 0.005,
            numeric_jitter: 0.0,
            paraphrase_rate: 0.0,
            inject_rate: 0.0,
        }
    }

    /// Light noise: occasional typos and formatting drift.
    pub fn light() -> Self {
        Self {
            typo_rate: 0.04,
            token_drop_rate: 0.03,
            abbrev_rate: 0.03,
            token_swap_rate: 0.02,
            missing_rate: 0.02,
            numeric_jitter: 0.0,
            paraphrase_rate: 0.05,
            inject_rate: 0.02,
        }
    }

    /// Medium noise: the Google-Scholar / IMDB regime — abbreviations,
    /// dropped tokens, missing fields.
    pub fn medium() -> Self {
        Self {
            typo_rate: 0.08,
            token_drop_rate: 0.10,
            abbrev_rate: 0.12,
            token_swap_rate: 0.05,
            missing_rate: 0.08,
            numeric_jitter: 0.02,
            paraphrase_rate: 0.10,
            inject_rate: 0.05,
        }
    }

    /// The hard product regime: heavy paraphrasing of descriptions, heavy
    /// rewording/padding of names, noisy prices. Matched listings share
    /// little surface vocabulary, which is what defeats pure string
    /// similarity (§7.2).
    pub fn product_hard() -> Self {
        Self {
            typo_rate: 0.10,
            token_drop_rate: 0.40,
            abbrev_rate: 0.05,
            token_swap_rate: 0.25,
            missing_rate: 0.08,
            numeric_jitter: 0.50,
            paraphrase_rate: 0.70,
            inject_rate: 0.50,
        }
    }

    /// The ACM regime (Pub-DA right side): mostly clean with venue
    /// abbreviations and occasional missing fields.
    pub fn acm() -> Self {
        Self {
            typo_rate: 0.05,
            token_drop_rate: 0.05,
            abbrev_rate: 0.10,
            token_swap_rate: 0.03,
            missing_rate: 0.04,
            numeric_jitter: 0.05,
            paraphrase_rate: 0.05,
            inject_rate: 0.03,
        }
    }

    /// The IMDB regime (Mv-RI right side): noisy numerics (vote counts,
    /// ratings), frequent missing fields, moderate text noise.
    pub fn imdb() -> Self {
        Self {
            typo_rate: 0.12,
            token_drop_rate: 0.15,
            abbrev_rate: 0.10,
            token_swap_rate: 0.08,
            missing_rate: 0.12,
            numeric_jitter: 0.40,
            paraphrase_rate: 0.12,
            inject_rate: 0.10,
        }
    }

    /// The Google-Scholar regime (Pub-DS right side): truncated titles,
    /// abbreviated venues and authors, frequent missing fields.
    pub fn scholar() -> Self {
        Self {
            typo_rate: 0.08,
            token_drop_rate: 0.14,
            abbrev_rate: 0.18,
            token_swap_rate: 0.08,
            missing_rate: 0.12,
            numeric_jitter: 0.05,
            paraphrase_rate: 0.08,
            inject_rate: 0.06,
        }
    }
}

/// Applies a [`DirtLevel`] to values, consuming randomness from a caller
/// RNG so the whole dataset stays deterministic per seed.
pub struct Perturber {
    dirt: DirtLevel,
    /// Replacement vocabulary for paraphrasing.
    pool: &'static [&'static str],
}

impl Perturber {
    /// Creates a perturber; `pool` feeds paraphrase replacements.
    pub fn new(dirt: DirtLevel, pool: &'static [&'static str]) -> Self {
        Self { dirt, pool }
    }

    /// The configured dirt level.
    pub fn dirt(&self) -> &DirtLevel {
        &self.dirt
    }

    /// Introduces a single character-level typo into a token.
    fn typo(word: &str, rng: &mut StdRng) -> String {
        let chars: Vec<char> = word.chars().collect();
        if chars.len() < 2 {
            return word.to_string();
        }
        let mut chars = chars;
        let pos = rng.gen_range(0..chars.len() - 1);
        match rng.gen_range(0..4u8) {
            0 => chars.swap(pos, pos + 1), // transposition
            1 => {
                chars.remove(pos); // deletion
            }
            2 => {
                let c = (b'a' + rng.gen_range(0..26u8)) as char;
                chars.insert(pos, c); // insertion
            }
            _ => {
                chars[pos] = (b'a' + rng.gen_range(0..26u8)) as char; // substitution
            }
        }
        chars.into_iter().collect()
    }

    /// Perturbs a free-text value.
    pub fn perturb_text(&self, text: &str, rng: &mut StdRng) -> Value {
        if rng.gen_bool(self.dirt.missing_rate) {
            return Value::Null;
        }
        let mut tokens: Vec<String> = text.split_whitespace().map(String::from).collect();
        if tokens.is_empty() {
            return Value::Str(String::new());
        }
        // Paraphrase: replace a fraction of tokens with fresh vocabulary.
        // Only long free text is paraphrased — names/titles keep their
        // identity tokens (real product listings reword the *description*,
        // not the product name).
        if self.dirt.paraphrase_rate > 0.0 && tokens.len() >= 8 {
            for t in tokens.iter_mut() {
                if rng.gen_bool(self.dirt.paraphrase_rate) {
                    *t = self.pool[rng.gen_range(0..self.pool.len())].to_string();
                }
            }
        }
        // Token drops (never drop the only token).
        if tokens.len() > 1 {
            let keep_first = tokens[0].clone();
            tokens = tokens
                .into_iter()
                .enumerate()
                .filter(|(i, _)| *i == 0 || !rng.gen_bool(self.dirt.token_drop_rate))
                .map(|(_, t)| t)
                .collect();
            if tokens.is_empty() {
                tokens.push(keep_first);
            }
        }
        // Adjacent swaps.
        if tokens.len() > 1 && rng.gen_bool(self.dirt.token_swap_rate) {
            let pos = rng.gen_range(0..tokens.len() - 1);
            tokens.swap(pos, pos + 1);
        }
        // Injection: pad with fresh vocabulary words.
        if self.dirt.inject_rate > 0.0 {
            let mut padded = Vec::with_capacity(tokens.len() + 2);
            for t in tokens {
                padded.push(t);
                if rng.gen_bool(self.dirt.inject_rate) {
                    padded.push(self.pool[rng.gen_range(0..self.pool.len())].to_string());
                }
            }
            tokens = padded;
        }
        // Abbreviations and typos, per token.
        for t in tokens.iter_mut() {
            if t.len() > 2 && rng.gen_bool(self.dirt.abbrev_rate) {
                let initial: String = t.chars().take(1).collect();
                *t = format!("{initial}.");
            } else if rng.gen_bool(self.dirt.typo_rate) {
                *t = Self::typo(t, rng);
            }
        }
        Value::Str(tokens.join(" "))
    }

    /// Perturbs a numeric value: with probability `numeric_jitter` the
    /// value drifts — integers (years, runtimes, counts) by ±1–3 units,
    /// floats (prices, ratings) by up to ±10 % — plus missingness.
    pub fn perturb_number(&self, value: f64, rng: &mut StdRng) -> Value {
        if rng.gen_bool(self.dirt.missing_rate) {
            return Value::Null;
        }
        let jitter = self.dirt.numeric_jitter > 0.0 && rng.gen_bool(self.dirt.numeric_jitter);
        if value.fract() == 0.0 {
            let delta = if jitter { rng.gen_range(-3i64..=3) } else { 0 };
            Value::Int(value as i64 + delta)
        } else if jitter {
            let v: f64 = value * (1.0 + rng.gen_range(-0.1..0.1));
            Value::Float((v * 100.0).round() / 100.0)
        } else {
            Value::Float(value)
        }
    }

    /// Perturbs an already-typed value.
    pub fn perturb_value(&self, value: &Value, rng: &mut StdRng) -> Value {
        match value {
            Value::Null => Value::Null,
            Value::Str(s) => self.perturb_text(s, rng),
            Value::Int(i) => self.perturb_number(*i as f64, rng),
            Value::Float(f) => self.perturb_number(*f, rng),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vocab::MARKETING_WORDS;
    use rand::SeedableRng;

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    #[test]
    fn clean_dirt_barely_changes_text() {
        let p = Perturber::new(DirtLevel::clean(), MARKETING_WORDS);
        let mut changed = 0;
        for s in 0..100 {
            let out = p.perturb_text("golden dragon palace", &mut rng(s));
            if out != Value::Str("golden dragon palace".into()) {
                changed += 1;
            }
        }
        assert!(changed < 20, "clean level changed {changed}/100 values");
    }

    #[test]
    fn hard_dirt_usually_changes_text() {
        let p = Perturber::new(DirtLevel::product_hard(), MARKETING_WORDS);
        let text = "premium wireless ergonomic keyboard with backlit keys and long battery";
        let mut changed = 0;
        for s in 0..50 {
            if p.perturb_text(text, &mut rng(s)) != Value::Str(text.into()) {
                changed += 1;
            }
        }
        assert!(changed > 45, "hard level changed only {changed}/50 values");
    }

    #[test]
    fn perturbation_is_deterministic_per_seed() {
        let p = Perturber::new(DirtLevel::medium(), MARKETING_WORDS);
        let a = p.perturb_text("scalable query processing", &mut rng(9));
        let b = p.perturb_text("scalable query processing", &mut rng(9));
        assert_eq!(a, b);
    }

    #[test]
    fn missingness_produces_nulls() {
        let dirt = DirtLevel {
            missing_rate: 1.0,
            ..DirtLevel::clean()
        };
        let p = Perturber::new(dirt, MARKETING_WORDS);
        assert_eq!(p.perturb_text("anything", &mut rng(0)), Value::Null);
        assert_eq!(p.perturb_number(5.0, &mut rng(0)), Value::Null);
    }

    #[test]
    fn numbers_keep_integrality() {
        let p = Perturber::new(DirtLevel::medium(), MARKETING_WORDS);
        for s in 0..20 {
            match p.perturb_number(1999.0, &mut rng(s)) {
                Value::Int(_) | Value::Null => {}
                other => panic!("integer year became {other:?}"),
            }
        }
    }

    #[test]
    fn typo_changes_but_stays_close() {
        for s in 0..20 {
            let t = Perturber::typo("keyboard", &mut rng(s));
            let dist = zeroer_textsim_levenshtein(&t, "keyboard");
            assert!(dist <= 2, "typo drifted too far: {t}");
        }
    }

    /// Tiny local Levenshtein so the test doesn't need a dev-dependency.
    fn zeroer_textsim_levenshtein(a: &str, b: &str) -> usize {
        let a: Vec<char> = a.chars().collect();
        let b: Vec<char> = b.chars().collect();
        let mut prev: Vec<usize> = (0..=b.len()).collect();
        let mut curr = vec![0; b.len() + 1];
        for (i, &ca) in a.iter().enumerate() {
            curr[0] = i + 1;
            for (j, &cb) in b.iter().enumerate() {
                let cost = usize::from(ca != cb);
                curr[j + 1] = (prev[j] + cost).min(prev[j + 1] + 1).min(curr[j] + 1);
            }
            std::mem::swap(&mut prev, &mut curr);
        }
        prev[b.len()]
    }

    #[test]
    fn empty_text_is_preserved() {
        let p = Perturber::new(DirtLevel::medium(), MARKETING_WORDS);
        assert_eq!(p.perturb_text("", &mut rng(1)), Value::Str(String::new()));
    }
}
