//! The six benchmark dataset profiles (Table 1).

use crate::perturb::DirtLevel;

/// Benchmark domain, which selects the entity generator and schema.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Domain {
    /// Restaurants (Fodors-Zagat).
    Restaurants,
    /// Bibliographic records (DBLP-ACM, DBLP-Scholar).
    Publications,
    /// Movies (Rotten Tomatoes-IMDB).
    Movies,
    /// E-commerce products (Abt-Buy, Amazon-Google).
    Products,
}

/// Whether matched entities map 1:1 across tables or one left tuple can
/// match several right tuples (DBLP-Scholar, Amazon-Google).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LinkKind {
    /// Every matched entity appears exactly once per side.
    OneToOne,
    /// A left tuple may match up to `max_fanout` right tuples.
    OneToMany {
        /// Upper bound on right-side copies per left entity.
        max_fanout: usize,
    },
}

/// A benchmark dataset recipe matching one Table 1 row.
#[derive(Debug, Clone)]
pub struct DatasetProfile {
    /// Paper notation, e.g. `Rest-FZ`.
    pub notation: &'static str,
    /// Human name, e.g. `Fodors-Zagat`.
    pub name: &'static str,
    /// Entity domain.
    pub domain: Domain,
    /// Left-table tuple count at scale 1.0.
    pub n_left: usize,
    /// Right-table tuple count at scale 1.0.
    pub n_right: usize,
    /// Ground-truth match-pair count at scale 1.0.
    pub n_matches: usize,
    /// Attribute count (fixed by the domain schema).
    pub n_attrs: usize,
    /// Linkage multiplicity.
    pub link: LinkKind,
    /// Noise applied to the left table.
    pub left_dirt: DirtLevel,
    /// Noise applied to the right table.
    pub right_dirt: DirtLevel,
}

impl DatasetProfile {
    /// Scaled tuple/match counts. Matches scale with the tables; at least
    /// 2 matches and 10 tuples per side are kept so tiny scales stay
    /// meaningful.
    pub fn scaled(&self, scale: f64) -> (usize, usize, usize) {
        assert!(scale > 0.0 && scale <= 1.0, "scale must be in (0, 1]");
        let l = ((self.n_left as f64 * scale).round() as usize).max(10);
        let r = ((self.n_right as f64 * scale).round() as usize).max(10);
        let m = ((self.n_matches as f64 * scale).round() as usize).max(2);
        (l, r, m)
    }
}

/// Fodors-Zagat: tiny, nearly clean — every competent matcher should be
/// close to perfect here (the paper reports F = 1.0 for ZeroER).
pub fn rest_fz() -> DatasetProfile {
    DatasetProfile {
        notation: "Rest-FZ",
        name: "Fodors-Zagat",
        domain: Domain::Restaurants,
        n_left: 533,
        n_right: 331,
        n_matches: 112,
        n_attrs: 7,
        link: LinkKind::OneToOne,
        left_dirt: DirtLevel::clean(),
        right_dirt: DirtLevel::light(),
    }
}

/// DBLP-ACM: clean bibliographic data, moderate size (paper: F ≈ 0.95).
pub fn pub_da() -> DatasetProfile {
    DatasetProfile {
        notation: "Pub-DA",
        name: "DBLP-ACM",
        domain: Domain::Publications,
        n_left: 2616,
        n_right: 2294,
        n_matches: 2224,
        n_attrs: 4,
        link: LinkKind::OneToOne,
        left_dirt: DirtLevel::clean(),
        right_dirt: DirtLevel::acm(),
    }
}

/// DBLP-Scholar: Google Scholar's side is big and messy, one-to-many
/// (paper: F ≈ 0.85).
pub fn pub_ds() -> DatasetProfile {
    DatasetProfile {
        notation: "Pub-DS",
        name: "DBLP-Scholar",
        domain: Domain::Publications,
        n_left: 2616,
        n_right: 64263,
        n_matches: 5347,
        n_attrs: 4,
        link: LinkKind::OneToMany { max_fanout: 5 },
        left_dirt: DirtLevel::clean(),
        right_dirt: DirtLevel::scholar(),
    }
}

/// Rotten Tomatoes-IMDB: small, moderately noisy (paper: F ≈ 0.85).
pub fn mv_ri() -> DatasetProfile {
    DatasetProfile {
        notation: "Mv-RI",
        name: "RottenTomatoes-IMDB",
        domain: Domain::Movies,
        n_left: 558,
        n_right: 556,
        n_matches: 190,
        n_attrs: 8,
        link: LinkKind::OneToOne,
        left_dirt: DirtLevel::light(),
        right_dirt: DirtLevel::imdb(),
    }
}

/// Abt-Buy: long product descriptions with little lexical overlap between
/// matched listings — hard for all similarity-based matchers (paper:
/// F ≈ 0.4 for ZeroER, ≈ 0.46 for RF).
pub fn prod_ab() -> DatasetProfile {
    DatasetProfile {
        notation: "Prod-AB",
        name: "Abt-Buy",
        domain: Domain::Products,
        n_left: 1082,
        n_right: 1093,
        n_matches: 1098,
        n_attrs: 3,
        link: LinkKind::OneToMany { max_fanout: 2 },
        left_dirt: DirtLevel::product_hard(),
        right_dirt: DirtLevel::product_hard(),
    }
}

/// Amazon-Google: like Abt-Buy but bigger and with a manufacturer column
/// (paper: F ≈ 0.4 for ZeroER).
pub fn prod_ag() -> DatasetProfile {
    DatasetProfile {
        notation: "Prod-AG",
        name: "Amazon-Google",
        domain: Domain::Products,
        n_left: 1363,
        n_right: 3226,
        n_matches: 1300,
        n_attrs: 4,
        link: LinkKind::OneToMany { max_fanout: 3 },
        left_dirt: DirtLevel::light(),
        right_dirt: DirtLevel::product_hard(),
    }
}

/// All six profiles in the paper's Table 1/2 order.
pub fn all_profiles() -> Vec<DatasetProfile> {
    vec![rest_fz(), pub_da(), pub_ds(), mv_ri(), prod_ab(), prod_ag()]
}

/// Looks up a profile by its paper notation (case-insensitive).
pub fn by_notation(notation: &str) -> Option<DatasetProfile> {
    all_profiles()
        .into_iter()
        .find(|p| p.notation.eq_ignore_ascii_case(notation))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_statistics_match_the_paper() {
        let fz = rest_fz();
        assert_eq!(
            (fz.n_left, fz.n_right, fz.n_matches, fz.n_attrs),
            (533, 331, 112, 7)
        );
        let da = pub_da();
        assert_eq!(
            (da.n_left, da.n_right, da.n_matches, da.n_attrs),
            (2616, 2294, 2224, 4)
        );
        let ds = pub_ds();
        assert_eq!(
            (ds.n_left, ds.n_right, ds.n_matches, ds.n_attrs),
            (2616, 64263, 5347, 4)
        );
        let ri = mv_ri();
        assert_eq!(
            (ri.n_left, ri.n_right, ri.n_matches, ri.n_attrs),
            (558, 556, 190, 8)
        );
        let ab = prod_ab();
        assert_eq!(
            (ab.n_left, ab.n_right, ab.n_matches, ab.n_attrs),
            (1082, 1093, 1098, 3)
        );
        let ag = prod_ag();
        assert_eq!(
            (ag.n_left, ag.n_right, ag.n_matches, ag.n_attrs),
            (1363, 3226, 1300, 4)
        );
    }

    #[test]
    fn six_profiles_in_paper_order() {
        let all = all_profiles();
        assert_eq!(all.len(), 6);
        assert_eq!(all[0].notation, "Rest-FZ");
        assert_eq!(all[5].notation, "Prod-AG");
    }

    #[test]
    fn one_to_many_on_the_right_datasets() {
        assert!(matches!(pub_ds().link, LinkKind::OneToMany { .. }));
        assert!(matches!(prod_ag().link, LinkKind::OneToMany { .. }));
        assert!(matches!(rest_fz().link, LinkKind::OneToOne));
    }

    #[test]
    fn scaling_shrinks_proportionally() {
        let (l, r, m) = pub_da().scaled(0.25);
        assert_eq!(l, 654);
        assert_eq!(r, (2294.0f64 * 0.25).round() as usize);
        assert_eq!(m, 556);
    }

    #[test]
    fn scaling_has_floors() {
        let (l, r, m) = rest_fz().scaled(0.001);
        assert!(l >= 10 && r >= 10 && m >= 2);
    }

    #[test]
    #[should_panic(expected = "scale")]
    fn zero_scale_rejected() {
        rest_fz().scaled(0.0);
    }

    #[test]
    fn lookup_by_notation() {
        assert!(by_notation("pub-ds").is_some());
        assert!(by_notation("nope").is_none());
    }
}
