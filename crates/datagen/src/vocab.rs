//! Word pools for the four benchmark domains.
//!
//! The pools are intentionally larger than the entity counts we sample so
//! that unrelated entities rarely collide on full names, while blocking
//! still finds shared tokens.

/// Restaurant name adjectives.
pub const REST_ADJ: &[&str] = &[
    "golden", "silver", "royal", "blue", "red", "jade", "lucky", "grand", "little", "old", "new",
    "happy", "sunny", "rustic", "urban", "coastal", "hidden", "famous", "cozy", "spicy", "sweet",
    "salty", "smoky", "crispy", "velvet", "ivory", "copper", "amber",
];

/// Restaurant name nouns.
pub const REST_NOUN: &[&str] = &[
    "dragon", "garden", "palace", "kitchen", "table", "bistro", "grill", "diner", "tavern", "cafe",
    "house", "corner", "terrace", "oven", "spoon", "fork", "plate", "lantern", "harbor", "orchard",
    "barn", "cellar", "hearth", "pavilion", "court", "villa",
];

/// Cuisines.
pub const CUISINES: &[&str] = &[
    "italian",
    "french",
    "chinese",
    "japanese",
    "mexican",
    "thai",
    "indian",
    "greek",
    "spanish",
    "korean",
    "vietnamese",
    "american",
    "cajun",
    "seafood",
    "steakhouse",
    "vegetarian",
    "mediterranean",
    "ethiopian",
    "peruvian",
    "bbq",
];

/// Cities.
pub const CITIES: &[&str] = &[
    "new york",
    "los angeles",
    "san francisco",
    "chicago",
    "boston",
    "seattle",
    "austin",
    "denver",
    "portland",
    "atlanta",
    "miami",
    "dallas",
    "houston",
    "phoenix",
    "philadelphia",
    "san diego",
    "minneapolis",
    "detroit",
    "baltimore",
    "nashville",
];

/// Street names.
pub const STREETS: &[&str] = &[
    "main st",
    "oak ave",
    "maple dr",
    "park blvd",
    "sunset blvd",
    "broadway",
    "market st",
    "elm st",
    "pine rd",
    "cedar ln",
    "lake ave",
    "hill st",
    "river rd",
    "union sq",
    "grove st",
    "highland ave",
    "madison ave",
    "valley rd",
    "ocean dr",
    "spring st",
];

/// Computer-science title words for publications.
pub const CS_WORDS: &[&str] = &[
    "efficient",
    "scalable",
    "distributed",
    "parallel",
    "adaptive",
    "incremental",
    "robust",
    "optimal",
    "approximate",
    "probabilistic",
    "query",
    "processing",
    "optimization",
    "indexing",
    "storage",
    "transaction",
    "concurrency",
    "recovery",
    "replication",
    "partitioning",
    "streaming",
    "graph",
    "relational",
    "spatial",
    "temporal",
    "semantic",
    "learning",
    "mining",
    "clustering",
    "classification",
    "estimation",
    "sampling",
    "join",
    "aggregation",
    "caching",
    "compression",
    "encryption",
    "privacy",
    "provenance",
    "integration",
    "cleaning",
    "matching",
    "resolution",
    "deduplication",
    "extraction",
    "warehouse",
    "analytics",
    "benchmark",
    "evaluation",
    "architecture",
    "framework",
    "algorithm",
    "model",
    "system",
    "engine",
    "database",
    "memory",
    "disk",
    "cloud",
    "locking",
    "logging",
    "checkpointing",
    "serialization",
    "vectorized",
    "columnar",
    "hierarchical",
    "federated",
    "decentralized",
    "asynchronous",
    "transactional",
    "materialized",
    "views",
    "cardinality",
    "selectivity",
    "histogram",
    "sketches",
    "bloom",
    "filters",
    "lsm",
    "btree",
    "hashing",
    "sorting",
    "shuffling",
    "pipelining",
    "scheduling",
    "allocation",
    "garbage",
    "collection",
    "versioning",
    "snapshot",
    "isolation",
    "consistency",
    "availability",
    "durability",
    "latency",
    "throughput",
    "workload",
    "tuning",
    "autoscaling",
    "elasticity",
    "virtualization",
    "containers",
    "embedding",
    "representation",
    "attention",
    "pretraining",
    "finetuning",
    "inference",
];

/// High-frequency title words (the Zipf head): shared across many paper
/// titles, so random title pairs often collide on one or two of these —
/// exactly the confusable-candidate structure real bibliographic data has
/// under overlap blocking.
pub const CS_COMMON: &[&str] = &[
    "data",
    "systems",
    "query",
    "efficient",
    "learning",
    "distributed",
    "processing",
    "analysis",
    "management",
    "approach",
    "large",
    "scale",
    "model",
    "framework",
    "method",
    "evaluation",
    "optimization",
    "performance",
    "adaptive",
    "using",
];

/// Author surnames.
pub const SURNAMES: &[&str] = &[
    "smith", "johnson", "lee", "chen", "wang", "garcia", "kumar", "patel", "mueller", "tanaka",
    "kim", "nguyen", "brown", "davis", "wilson", "martin", "anderson", "taylor", "thomas", "moore",
    "jackson", "white", "harris", "thompson", "lopez", "clark", "lewis", "walker", "hall", "young",
    "allen", "king", "wright", "scott", "green", "baker", "adams", "nelson", "hill", "rivera",
    "campbell", "mitchell", "roberts", "carter",
];

/// Publication venues (full names).
pub const VENUES: &[&str] = &[
    "sigmod conference",
    "vldb",
    "icde",
    "edbt",
    "cidr",
    "sigmod record",
    "vldb journal",
    "tods",
    "tkde",
    "kdd",
    "icml",
    "www conference",
    "cikm",
    "wsdm",
    "pods",
];

/// Abbreviated venue forms, aligned with [`VENUES`] where applicable.
pub const VENUE_ABBREV: &[&str] = &[
    "sigmod",
    "pvldb",
    "icde",
    "edbt",
    "cidr",
    "sigmod rec",
    "vldbj",
    "tods",
    "tkde",
    "kdd",
    "icml",
    "www",
    "cikm",
    "wsdm",
    "pods",
];

/// Movie title words.
pub const MOVIE_WORDS: &[&str] = &[
    "midnight", "shadow", "river", "king", "queen", "lost", "last", "first", "dark", "bright",
    "silent", "broken", "golden", "iron", "glass", "paper", "stone", "fire", "winter", "summer",
    "return", "rise", "fall", "escape", "secret", "legend", "story", "dream", "night", "day",
    "city", "island", "mountain", "ocean", "star", "moon", "crimson", "velvet", "thunder",
    "whisper", "echo", "mirror", "crossing", "harbor", "empire", "kingdom", "voyage", "hunter",
    "stranger", "phantom", "horizon", "garden", "castle", "bridge", "tower", "forest", "desert",
    "storm", "frost", "ember",
];

/// Movie genres.
pub const GENRES: &[&str] = &[
    "drama",
    "comedy",
    "action",
    "thriller",
    "horror",
    "romance",
    "sci-fi",
    "documentary",
    "animation",
    "crime",
    "fantasy",
    "western",
    "musical",
    "mystery",
];

/// Person given-name initials pool (A-Z as strings).
pub const INITIALS: &[&str] = &[
    "a", "b", "c", "d", "e", "f", "g", "h", "i", "j", "k", "l", "m", "n", "o", "p", "q", "r", "s",
    "t", "u", "v", "w", "x", "y", "z",
];

/// Product brands.
pub const BRANDS: &[&str] = &[
    "sonex", "techno", "apex", "nova", "zenith", "orion", "vertex", "pulse", "quantum", "aura",
    "helix", "matrix", "vortex", "titan", "lumen", "cobalt", "argon", "xenon", "krypton", "neon",
    "fusion", "stellar", "prime", "omega", "delta", "sigma",
];

/// Product categories.
pub const PRODUCT_CATEGORIES: &[&str] = &[
    "laptop",
    "monitor",
    "keyboard",
    "mouse",
    "printer",
    "scanner",
    "router",
    "camera",
    "speaker",
    "headphones",
    "tablet",
    "charger",
    "adapter",
    "cable",
    "dock",
    "drive",
    "memory",
    "processor",
    "motherboard",
    "case",
];

/// Marketing words for product descriptions.
pub const MARKETING_WORDS: &[&str] = &[
    "premium",
    "professional",
    "advanced",
    "powerful",
    "compact",
    "portable",
    "wireless",
    "ergonomic",
    "durable",
    "sleek",
    "ultra",
    "high-performance",
    "energy-efficient",
    "lightweight",
    "versatile",
    "reliable",
    "innovative",
    "stylish",
    "affordable",
    "next-generation",
    "seamless",
    "intuitive",
    "crystal-clear",
    "fast",
    "quiet",
    "backlit",
    "rechargeable",
    "waterproof",
    "adjustable",
    "universal",
    "smart",
    "enhanced",
    "superior",
    "exceptional",
    "optimized",
    "integrated",
    "certified",
    "warranty",
    "bundle",
    "edition",
    "series",
    "design",
    "technology",
    "performance",
    "quality",
    "features",
    "connectivity",
    "compatibility",
    "resolution",
    "battery",
];

/// Deterministically picks an element by index (wrapping).
pub fn pick<'a>(pool: &'a [&'a str], idx: usize) -> &'a str {
    pool[idx % pool.len()]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pools_are_nonempty_and_reasonably_sized() {
        for pool in [
            REST_ADJ,
            REST_NOUN,
            CUISINES,
            CITIES,
            STREETS,
            CS_WORDS,
            SURNAMES,
            VENUES,
            VENUE_ABBREV,
            MOVIE_WORDS,
            GENRES,
            BRANDS,
            PRODUCT_CATEGORIES,
            MARKETING_WORDS,
        ] {
            assert!(pool.len() >= 10, "pool too small: {}", pool.len());
        }
    }

    #[test]
    fn venue_abbreviations_align() {
        assert_eq!(VENUES.len(), VENUE_ABBREV.len());
    }

    #[test]
    fn pick_wraps() {
        assert_eq!(pick(GENRES, 0), GENRES[0]);
        assert_eq!(pick(GENRES, GENRES.len()), GENRES[0]);
    }

    #[test]
    fn no_duplicate_brands() {
        let mut b: Vec<&str> = BRANDS.to_vec();
        b.sort_unstable();
        b.dedup();
        assert_eq!(b.len(), BRANDS.len());
    }
}
