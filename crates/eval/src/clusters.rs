//! Cluster-level evaluation for deduplication.
//!
//! Pairwise F-score over candidate pairs under-rewards good clusterings
//! (one wrong merge of two big clusters creates quadratically many wrong
//! pairs). These utilities convert entity clusterings to implied pair
//! sets and compute the standard cluster-aware pairwise metrics used in
//! the dedup literature.

use crate::metrics::ConfusionMatrix;
use std::collections::HashSet;

/// All unordered within-cluster pairs implied by a clustering (singletons
/// contribute nothing).
pub fn implied_pairs(clusters: &[Vec<usize>]) -> HashSet<(usize, usize)> {
    let mut pairs = HashSet::new();
    for cluster in clusters {
        for (i, &a) in cluster.iter().enumerate() {
            for &b in &cluster[i + 1..] {
                pairs.insert((a.min(b), a.max(b)));
            }
        }
    }
    pairs
}

/// Pairwise precision/recall/F1 of a predicted clustering against a
/// ground-truth clustering, over the universe of pairs either implies.
pub fn pairwise_cluster_f1(predicted: &[Vec<usize>], truth: &[Vec<usize>]) -> ConfusionMatrix {
    let pred = implied_pairs(predicted);
    let gold = implied_pairs(truth);
    let tp = pred.intersection(&gold).count();
    ConfusionMatrix {
        tp,
        fp: pred.len() - tp,
        fn_: gold.len() - tp,
        tn: 0, // undefined over an open universe; precision/recall/F1 unaffected
    }
}

/// Builds ground-truth duplicate clusters from match pairs by transitive
/// closure — a thin alias of [`zeroer_core::clusters_of_pairs`], the one
/// shared union-find closure.
pub fn clusters_from_pairs(pairs: &[(usize, usize)]) -> Vec<Vec<usize>> {
    zeroer_core::clusters_of_pairs(pairs)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn implied_pairs_of_triple() {
        let pairs = implied_pairs(&[vec![1, 2, 3], vec![7]]);
        assert_eq!(pairs.len(), 3);
        assert!(pairs.contains(&(1, 2)) && pairs.contains(&(1, 3)) && pairs.contains(&(2, 3)));
    }

    #[test]
    fn exact_clustering_scores_one() {
        let truth = vec![vec![0, 1], vec![2, 3, 4]];
        let cm = pairwise_cluster_f1(&truth, &truth);
        assert_eq!(cm.f1(), 1.0);
    }

    #[test]
    fn over_merge_hurts_precision_quadratically() {
        let truth = vec![vec![0, 1], vec![2, 3]];
        let merged = vec![vec![0, 1, 2, 3]];
        let cm = pairwise_cluster_f1(&merged, &truth);
        assert_eq!(cm.recall(), 1.0);
        // 6 predicted pairs, only 2 correct.
        assert!((cm.precision() - 2.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn closure_builds_chains() {
        // 1-2, 2-3 chain plus a separate 8-9.
        let clusters = clusters_from_pairs(&[(1, 2), (2, 3), (8, 9)]);
        assert_eq!(clusters, vec![vec![1, 2, 3], vec![8, 9]]);
    }

    #[test]
    fn closure_ignores_duplicates_and_order() {
        let a = clusters_from_pairs(&[(5, 4), (4, 5), (5, 4)]);
        assert_eq!(a, vec![vec![4, 5]]);
    }

    #[test]
    fn empty_inputs() {
        assert!(clusters_from_pairs(&[]).is_empty());
        assert!(implied_pairs(&[]).is_empty());
    }
}
