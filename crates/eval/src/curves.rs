//! Score-based evaluation: precision-recall curves, AUC-PR, threshold
//! selection, and Brier calibration.
//!
//! ZeroER emits posterior probabilities, not just labels; these utilities
//! evaluate the *ranking* quality of those posteriors — useful both for
//! diagnostics and for the common practice of trading precision against
//! recall by moving the decision threshold away from 0.5.

/// One point of a precision-recall curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PrPoint {
    /// Decision threshold that produces this point.
    pub threshold: f64,
    /// Precision at the threshold.
    pub precision: f64,
    /// Recall at the threshold.
    pub recall: f64,
    /// F1 at the threshold.
    pub f1: f64,
}

/// Computes the precision-recall curve by sweeping the threshold over
/// every distinct score. Points are ordered by decreasing threshold
/// (increasing recall).
///
/// # Panics
/// Panics if lengths differ.
pub fn pr_curve(scores: &[f64], truth: &[bool]) -> Vec<PrPoint> {
    assert_eq!(scores.len(), truth.len(), "score/truth length mismatch");
    let total_pos = truth.iter().filter(|&&t| t).count();
    if total_pos == 0 || scores.is_empty() {
        return Vec::new();
    }
    // Sort by descending score; sweep thresholds at each distinct value.
    let mut order: Vec<usize> = (0..scores.len()).collect();
    order.sort_by(|&a, &b| scores[b].partial_cmp(&scores[a]).expect("no NaN scores"));
    let mut curve = Vec::new();
    let mut tp = 0usize;
    let mut fp = 0usize;
    let mut i = 0;
    while i < order.len() {
        let threshold = scores[order[i]];
        // Consume the whole tie group.
        while i < order.len() && scores[order[i]] == threshold {
            if truth[order[i]] {
                tp += 1;
            } else {
                fp += 1;
            }
            i += 1;
        }
        let precision = tp as f64 / (tp + fp) as f64;
        let recall = tp as f64 / total_pos as f64;
        let f1 = if precision + recall == 0.0 {
            0.0
        } else {
            2.0 * precision * recall / (precision + recall)
        };
        curve.push(PrPoint {
            threshold,
            precision,
            recall,
            f1,
        });
    }
    curve
}

/// Area under the precision-recall curve (step-wise interpolation, the
/// "average precision" convention).
pub fn auc_pr(scores: &[f64], truth: &[bool]) -> f64 {
    let curve = pr_curve(scores, truth);
    let mut auc = 0.0;
    let mut prev_recall = 0.0;
    for p in &curve {
        auc += p.precision * (p.recall - prev_recall);
        prev_recall = p.recall;
    }
    auc
}

/// The threshold maximizing F1 on the curve (ties break toward the higher
/// threshold, i.e. higher precision). Returns `None` when there are no
/// positives.
pub fn best_f1_threshold(scores: &[f64], truth: &[bool]) -> Option<PrPoint> {
    pr_curve(scores, truth).into_iter().max_by(|a, b| {
        a.f1.partial_cmp(&b.f1).expect("finite F1").then(
            a.threshold
                .partial_cmp(&b.threshold)
                .expect("finite threshold"),
        )
    })
}

/// Brier score: mean squared error of the probabilities against the 0/1
/// truth — lower is better-calibrated. Range `[0, 1]`.
pub fn brier_score(scores: &[f64], truth: &[bool]) -> f64 {
    assert_eq!(scores.len(), truth.len(), "score/truth length mismatch");
    if scores.is_empty() {
        return 0.0;
    }
    scores
        .iter()
        .zip(truth)
        .map(|(&s, &t)| {
            let y = f64::from(u8::from(t));
            (s - y) * (s - y)
        })
        .sum::<f64>()
        / scores.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_ranking_has_unit_auc() {
        let scores = [0.9, 0.8, 0.2, 0.1];
        let truth = [true, true, false, false];
        assert!((auc_pr(&scores, &truth) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn inverted_ranking_has_low_auc() {
        let scores = [0.1, 0.2, 0.8, 0.9];
        let truth = [true, true, false, false];
        assert!(auc_pr(&scores, &truth) < 0.6);
    }

    #[test]
    fn curve_recall_is_monotone() {
        let scores = [0.9, 0.7, 0.7, 0.4, 0.2];
        let truth = [true, false, true, true, false];
        let curve = pr_curve(&scores, &truth);
        for w in curve.windows(2) {
            assert!(w[1].recall >= w[0].recall);
        }
        assert!((curve.last().unwrap().recall - 1.0).abs() < 1e-12);
    }

    #[test]
    fn best_threshold_separates_clean_data() {
        let scores = [0.95, 0.9, 0.3, 0.2, 0.1];
        let truth = [true, true, false, false, false];
        let best = best_f1_threshold(&scores, &truth).unwrap();
        assert_eq!(best.f1, 1.0);
        assert!(best.threshold >= 0.9);
    }

    #[test]
    fn no_positives_yields_empty_curve() {
        assert!(pr_curve(&[0.5, 0.6], &[false, false]).is_empty());
        assert!(best_f1_threshold(&[0.5], &[false]).is_none());
    }

    #[test]
    fn brier_rewards_calibration() {
        let truth = [true, false];
        assert_eq!(brier_score(&[1.0, 0.0], &truth), 0.0);
        assert_eq!(brier_score(&[0.0, 1.0], &truth), 1.0);
        assert!((brier_score(&[0.5, 0.5], &truth) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn tied_scores_are_one_curve_point() {
        let scores = [0.5, 0.5, 0.5];
        let truth = [true, false, true];
        let curve = pr_curve(&scores, &truth);
        assert_eq!(curve.len(), 1);
    }
}
