//! Evaluation utilities: metrics, splits, cross-validation, oversampling.
//!
//! The paper evaluates with F-score (§7.1) because ER labels are extremely
//! imbalanced; supervised baselines are trained on a 50/50 split with the
//! match class over-sampled, tuned by 5-fold cross-validation, and scores
//! are averaged over repeated runs. Everything needed for that protocol
//! lives here.

pub mod clusters;
pub mod curves;
pub mod metrics;
pub mod split;

pub use curves::{auc_pr, best_f1_threshold, brier_score, pr_curve, PrPoint};
pub use metrics::{f_score, ConfusionMatrix};
pub use split::{kfold_indices, oversample_minority, train_test_split};
