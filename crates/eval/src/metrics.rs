//! Classification metrics for imbalanced binary labels.

/// Binary confusion counts for the match (positive) class.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ConfusionMatrix {
    /// Predicted match, truly match.
    pub tp: usize,
    /// Predicted match, truly unmatch.
    pub fp: usize,
    /// Predicted unmatch, truly match.
    pub fn_: usize,
    /// Predicted unmatch, truly unmatch.
    pub tn: usize,
}

impl ConfusionMatrix {
    /// Tallies predictions against truth.
    ///
    /// # Panics
    /// Panics if lengths differ.
    pub fn from_predictions(predicted: &[bool], truth: &[bool]) -> Self {
        assert_eq!(
            predicted.len(),
            truth.len(),
            "prediction/truth length mismatch"
        );
        let mut cm = Self::default();
        for (&p, &t) in predicted.iter().zip(truth) {
            match (p, t) {
                (true, true) => cm.tp += 1,
                (true, false) => cm.fp += 1,
                (false, true) => cm.fn_ += 1,
                (false, false) => cm.tn += 1,
            }
        }
        cm
    }

    /// Precision `tp / (tp + fp)`; 0 when nothing was predicted positive.
    pub fn precision(&self) -> f64 {
        let denom = self.tp + self.fp;
        if denom == 0 {
            0.0
        } else {
            self.tp as f64 / denom as f64
        }
    }

    /// Recall `tp / (tp + fn)`; 0 when there are no true positives to find.
    pub fn recall(&self) -> f64 {
        let denom = self.tp + self.fn_;
        if denom == 0 {
            0.0
        } else {
            self.tp as f64 / denom as f64
        }
    }

    /// F1 score — the paper's headline metric.
    pub fn f1(&self) -> f64 {
        let p = self.precision();
        let r = self.recall();
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }

    /// Plain accuracy (reported only in diagnostics; misleading under
    /// class imbalance, which is the paper's point).
    pub fn accuracy(&self) -> f64 {
        let total = self.tp + self.fp + self.fn_ + self.tn;
        if total == 0 {
            0.0
        } else {
            (self.tp + self.tn) as f64 / total as f64
        }
    }

    /// Total number of examples tallied.
    pub fn total(&self) -> usize {
        self.tp + self.fp + self.fn_ + self.tn
    }
}

/// Convenience: F1 from raw prediction/truth slices.
pub fn f_score(predicted: &[bool], truth: &[bool]) -> f64 {
    ConfusionMatrix::from_predictions(predicted, truth).f1()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_predictions() {
        let t = [true, false, true, false];
        let cm = ConfusionMatrix::from_predictions(&t, &t);
        assert_eq!(cm.precision(), 1.0);
        assert_eq!(cm.recall(), 1.0);
        assert_eq!(cm.f1(), 1.0);
        assert_eq!(cm.accuracy(), 1.0);
    }

    #[test]
    fn all_negative_predictions_score_zero() {
        let p = [false, false, false];
        let t = [true, true, false];
        let cm = ConfusionMatrix::from_predictions(&p, &t);
        assert_eq!(cm.f1(), 0.0);
        assert_eq!(cm.precision(), 0.0);
        assert_eq!(cm.recall(), 0.0);
    }

    #[test]
    fn known_mixed_case() {
        // tp=2 fp=1 fn=1 tn=1 → P=2/3, R=2/3, F1=2/3.
        let p = [true, true, true, false, false];
        let t = [true, true, false, true, false];
        let cm = ConfusionMatrix::from_predictions(&p, &t);
        assert_eq!(
            cm,
            ConfusionMatrix {
                tp: 2,
                fp: 1,
                fn_: 1,
                tn: 1
            }
        );
        assert!((cm.f1() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn accuracy_is_misleading_under_imbalance() {
        // 99 negatives predicted correctly, 1 positive missed: 99% accuracy,
        // 0 F1 — exactly the pathology the paper cites for using F-score.
        let mut p = vec![false; 100];
        let mut t = vec![false; 100];
        t[0] = true;
        p[0] = false;
        let cm = ConfusionMatrix::from_predictions(&p, &t);
        assert!(cm.accuracy() > 0.98);
        assert_eq!(cm.f1(), 0.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn length_mismatch_panics() {
        ConfusionMatrix::from_predictions(&[true], &[true, false]);
    }

    #[test]
    fn f_score_helper_matches_struct() {
        let p = [true, false, true];
        let t = [true, true, true];
        assert_eq!(
            f_score(&p, &t),
            ConfusionMatrix::from_predictions(&p, &t).f1()
        );
    }
}
