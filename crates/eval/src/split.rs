//! Seeded data splits, k-fold CV and minority oversampling.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::Rng;
use rand::SeedableRng;

/// Deterministic RNG for all evaluation protocols — reproducibility is a
/// hard requirement for the experiment harnesses.
pub fn rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// Splits `0..n` into (train, test) index sets with `train_frac` of the
/// data in train, after a seeded shuffle. Mirrors the paper's 50/50
/// protocol (§7.1) with `train_frac = 0.5`.
///
/// # Panics
/// Panics if `train_frac` is outside `[0, 1]`.
pub fn train_test_split(n: usize, train_frac: f64, seed: u64) -> (Vec<usize>, Vec<usize>) {
    assert!(
        (0.0..=1.0).contains(&train_frac),
        "train_frac must be in [0,1]"
    );
    let mut idx: Vec<usize> = (0..n).collect();
    idx.shuffle(&mut rng(seed));
    let cut = ((n as f64) * train_frac).round() as usize;
    let test = idx.split_off(cut.min(n));
    (idx, test)
}

/// Yields `k` (train, validation) index splits of `0..n` for k-fold CV.
///
/// # Panics
/// Panics if `k < 2` or `k > n`.
pub fn kfold_indices(n: usize, k: usize, seed: u64) -> Vec<(Vec<usize>, Vec<usize>)> {
    assert!(k >= 2, "k-fold needs k >= 2");
    assert!(k <= n, "more folds than examples");
    let mut idx: Vec<usize> = (0..n).collect();
    idx.shuffle(&mut rng(seed));
    let fold_size = n / k;
    let remainder = n % k;
    let mut folds = Vec::with_capacity(k);
    let mut start = 0;
    for f in 0..k {
        let size = fold_size + usize::from(f < remainder);
        let val: Vec<usize> = idx[start..start + size].to_vec();
        let train: Vec<usize> = idx[..start]
            .iter()
            .chain(&idx[start + size..])
            .copied()
            .collect();
        folds.push((train, val));
        start += size;
    }
    folds
}

/// Over-samples the minority class of a labeled index set until the two
/// classes are balanced — the standard protocol the paper applies when
/// training supervised baselines on imbalanced ER data (§7.1).
///
/// Returns indices into the original arrays (duplicates included).
pub fn oversample_minority(labels: &[bool], indices: &[usize], seed: u64) -> Vec<usize> {
    let pos: Vec<usize> = indices.iter().copied().filter(|&i| labels[i]).collect();
    let neg: Vec<usize> = indices.iter().copied().filter(|&i| !labels[i]).collect();
    if pos.is_empty() || neg.is_empty() {
        return indices.to_vec();
    }
    let (minority, majority) = if pos.len() < neg.len() {
        (&pos, &neg)
    } else {
        (&neg, &pos)
    };
    let mut out = indices.to_vec();
    let mut r = rng(seed);
    let deficit = majority.len() - minority.len();
    for _ in 0..deficit {
        out.push(minority[r.gen_range(0..minority.len())]);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_partitions_everything() {
        let (tr, te) = train_test_split(100, 0.5, 7);
        assert_eq!(tr.len(), 50);
        assert_eq!(te.len(), 50);
        let mut all: Vec<usize> = tr.iter().chain(&te).copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn split_is_deterministic_per_seed() {
        assert_eq!(train_test_split(50, 0.3, 1), train_test_split(50, 0.3, 1));
        assert_ne!(
            train_test_split(50, 0.3, 1).0,
            train_test_split(50, 0.3, 2).0
        );
    }

    #[test]
    fn split_extremes() {
        let (tr, te) = train_test_split(10, 0.0, 3);
        assert!(tr.is_empty());
        assert_eq!(te.len(), 10);
        let (tr, te) = train_test_split(10, 1.0, 3);
        assert_eq!(tr.len(), 10);
        assert!(te.is_empty());
    }

    #[test]
    fn kfold_covers_all_points_exactly_once_as_validation() {
        let folds = kfold_indices(23, 5, 11);
        assert_eq!(folds.len(), 5);
        let mut seen: Vec<usize> = folds.iter().flat_map(|(_, v)| v.clone()).collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..23).collect::<Vec<_>>());
        for (tr, va) in &folds {
            assert_eq!(tr.len() + va.len(), 23);
            assert!(va.iter().all(|i| !tr.contains(i)));
        }
    }

    #[test]
    #[should_panic(expected = "k >= 2")]
    fn kfold_k1_panics() {
        kfold_indices(10, 1, 0);
    }

    #[test]
    fn oversampling_balances_classes() {
        // 2 positives, 8 negatives.
        let labels: Vec<bool> = (0..10).map(|i| i < 2).collect();
        let idx: Vec<usize> = (0..10).collect();
        let out = oversample_minority(&labels, &idx, 5);
        let pos = out.iter().filter(|&&i| labels[i]).count();
        let neg = out.iter().filter(|&&i| !labels[i]).count();
        assert_eq!(pos, neg, "classes must balance after oversampling");
        assert_eq!(out.len(), 16);
    }

    #[test]
    fn oversampling_single_class_is_noop() {
        let labels = vec![false; 5];
        let idx: Vec<usize> = (0..5).collect();
        assert_eq!(oversample_minority(&labels, &idx, 0), idx);
    }
}
