//! Pre-tokenized per-record attribute caches.
//!
//! Tokenizing a record's attribute once and reusing the token bags across
//! all candidate pairs it participates in turns feature generation from
//! O(pairs × tokenize) into O(records × tokenize + pairs × compare) — a
//! large constant-factor win because blocking typically puts each record
//! in many candidate pairs.

use zeroer_tabular::{Record, Table, Value};
use zeroer_textsim::tokenize::TokenBag;
use zeroer_textsim::{qgrams, words};

/// Borrowed view of one record's cached derived forms for one attribute —
/// the common currency between the columnar batch cache and the
/// per-record streaming cache.
#[derive(Debug, Clone, Copy)]
pub struct AttrView<'a> {
    /// Lowercased textual form (empty for nulls).
    pub text: &'a str,
    /// 3-gram token bag.
    pub qgm3: &'a TokenBag,
    /// Word token bag.
    pub word: &'a TokenBag,
    /// Numeric interpretation, when available.
    pub number: Option<f64>,
    /// Whether the original value was non-null.
    pub present: bool,
}

/// Cached derived forms of one attribute column of one table.
#[derive(Debug, Clone)]
pub struct AttrCache {
    /// Lowercased textual form (empty string for nulls; see `present`).
    pub text: Vec<String>,
    /// 3-gram token bags.
    pub qgm3: Vec<TokenBag>,
    /// Word token bags.
    pub word: Vec<TokenBag>,
    /// Numeric interpretation, when available.
    pub number: Vec<Option<f64>>,
    /// Whether the original value was non-null.
    pub present: Vec<bool>,
}

impl AttrCache {
    /// Builds the cache for attribute `attr` of `table`.
    pub fn build(table: &Table, attr: usize) -> Self {
        let n = table.len();
        let mut text = Vec::with_capacity(n);
        let mut qgm3 = Vec::with_capacity(n);
        let mut word = Vec::with_capacity(n);
        let mut number = Vec::with_capacity(n);
        let mut present = Vec::with_capacity(n);
        for idx in 0..n {
            let v: &Value = table.value(idx, attr);
            present.push(!v.is_null());
            let t = v.as_text().unwrap_or_default();
            number.push(v.as_number());
            qgm3.push(qgrams(&t, 3));
            word.push(words(&t));
            text.push(t.to_lowercase());
        }
        Self {
            text,
            qgm3,
            word,
            number,
            present,
        }
    }

    /// Number of cached records.
    pub fn len(&self) -> usize {
        self.text.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.text.is_empty()
    }

    /// View of record `idx`'s cached forms.
    pub fn view(&self, idx: usize) -> AttrView<'_> {
        AttrView {
            text: &self.text[idx],
            qgm3: &self.qgm3[idx],
            word: &self.word[idx],
            number: self.number[idx],
            present: self.present[idx],
        }
    }
}

/// Cached derived forms of one *record* across all attributes — the
/// streaming counterpart of [`TableCache`], built incrementally as
/// records arrive instead of column-by-column over a full table.
#[derive(Debug, Clone)]
pub struct RecordCache {
    entries: Vec<RecordEntry>,
}

/// One attribute's cached forms within a [`RecordCache`].
#[derive(Debug, Clone)]
pub struct RecordEntry {
    text: String,
    qgm3: TokenBag,
    word: TokenBag,
    number: Option<f64>,
    present: bool,
}

impl RecordCache {
    /// Derives all cached forms from a record's values.
    pub fn build(record: &Record) -> Self {
        let entries = record
            .values
            .iter()
            .map(|v| {
                let t = v.as_text().unwrap_or_default();
                RecordEntry {
                    qgm3: qgrams(&t, 3),
                    word: words(&t),
                    number: v.as_number(),
                    present: !v.is_null(),
                    text: t.to_lowercase(),
                }
            })
            .collect();
        Self { entries }
    }

    /// Number of attributes.
    pub fn arity(&self) -> usize {
        self.entries.len()
    }

    /// View of attribute `a`'s cached forms.
    pub fn view(&self, a: usize) -> AttrView<'_> {
        let e = &self.entries[a];
        AttrView {
            text: &e.text,
            qgm3: &e.qgm3,
            word: &e.word,
            number: e.number,
            present: e.present,
        }
    }
}

/// All attribute caches for one table.
#[derive(Debug, Clone)]
pub struct TableCache {
    attrs: Vec<AttrCache>,
}

impl TableCache {
    /// Builds caches for every attribute of `table`.
    pub fn build(table: &Table) -> Self {
        let attrs = (0..table.schema().arity())
            .map(|a| AttrCache::build(table, a))
            .collect();
        Self { attrs }
    }

    /// Cache for attribute `a`.
    pub fn attr(&self, a: usize) -> &AttrCache {
        &self.attrs[a]
    }

    /// Number of attributes.
    pub fn arity(&self) -> usize {
        self.attrs.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zeroer_tabular::{Record, Schema, Table};

    fn sample() -> Table {
        let mut t = Table::new("t", Schema::new(["name", "year"]));
        t.push(Record::new(0, vec!["Alpha Beta".into(), Value::Int(1999)]));
        t.push(Record::new(1, vec![Value::Null, "2001".into()]));
        t
    }

    #[test]
    fn cache_tracks_presence_and_text() {
        let t = sample();
        let c = AttrCache::build(&t, 0);
        assert_eq!(c.len(), 2);
        assert!(c.present[0]);
        assert!(!c.present[1]);
        assert_eq!(c.text[0], "alpha beta");
        assert_eq!(c.word[0].count("alpha"), 1);
        assert!(c.word[1].is_empty());
    }

    #[test]
    fn numeric_cache_coerces_strings() {
        let t = sample();
        let c = AttrCache::build(&t, 1);
        assert_eq!(c.number[0], Some(1999.0));
        assert_eq!(c.number[1], Some(2001.0));
    }

    #[test]
    fn table_cache_covers_all_attributes() {
        let tc = TableCache::build(&sample());
        assert_eq!(tc.arity(), 2);
        assert_eq!(tc.attr(0).len(), 2);
    }
}
