//! The bulk pair featurizer, built on the shared record-derivation
//! layer (`zeroer_textsim::derive`).

use crate::registry::{functions_for, SimFunction};
use std::collections::HashMap;
use zeroer_linalg::block::GroupLayout;
use zeroer_linalg::stats::{apply_min_max, min_max_normalize};
use zeroer_linalg::{ColMatrix, Matrix};
use zeroer_tabular::table::infer_joint_types;
use zeroer_tabular::{AttrType, Table};
use zeroer_textsim::derive::{AttrView, DeriveConfig, DerivedRecord, Deriver};
use zeroer_textsim::intern::Interner;
use zeroer_textsim::{
    jaro_winkler_with, levenshtein_sim_with, monge_elkan_with, needleman_wunsch_with, SimScratch,
};

/// The output of feature generation: the `N × d` similarity matrix plus
/// the grouping metadata ZeroER's block-diagonal covariance needs.
#[derive(Debug, Clone)]
pub struct FeatureSet {
    /// `N × d` feature matrix, one row per candidate pair.
    pub matrix: Matrix,
    /// Columns grouped by source attribute (§3.2).
    pub layout: GroupLayout,
    /// Magellan-style feature names, e.g. `title_jac_qgm3`.
    pub names: Vec<String>,
    /// Min-max ranges recorded by [`FeatureSet::normalize`], if called.
    pub ranges: Option<Vec<(f64, f64)>>,
    /// Per-column means used to impute missing similarities (0 for
    /// all-missing columns) — the replay state frozen-model scoring needs
    /// to treat unseen pairs like training pairs.
    pub impute_means: Vec<f64>,
}

impl FeatureSet {
    /// Number of pairs (rows).
    pub fn len(&self) -> usize {
        self.matrix.rows()
    }

    /// Whether there are no pairs.
    pub fn is_empty(&self) -> bool {
        self.matrix.rows() == 0
    }

    /// Feature dimensionality.
    pub fn dim(&self) -> usize {
        self.matrix.cols()
    }

    /// Min-max normalizes every column to `[0, 1]` in place (§6),
    /// recording the ranges for [`FeatureSet::normalize_like`].
    pub fn normalize(&mut self) {
        self.ranges = Some(min_max_normalize(&mut self.matrix));
    }

    /// Normalizes with ranges learned elsewhere (e.g. applying a
    /// train-fraction fit to the full dataset, Figure 4(c)).
    pub fn normalize_like(&mut self, other: &FeatureSet) {
        let ranges = other
            .ranges
            .as_ref()
            .expect("normalize_like requires `other` to be normalized first");
        apply_min_max(&mut self.matrix, ranges);
        self.ranges = Some(ranges.clone());
    }

    /// A row-subset copy (used by the sensitivity experiments).
    pub fn subset(&self, rows: &[usize]) -> FeatureSet {
        let d = self.dim();
        let mut data = Vec::with_capacity(rows.len() * d);
        for &r in rows {
            data.extend_from_slice(self.matrix.row(r));
        }
        FeatureSet {
            matrix: Matrix::from_vec(rows.len(), d, data),
            layout: self.layout.clone(),
            names: self.names.clone(),
            ranges: self.ranges.clone(),
            impute_means: self.impute_means.clone(),
        }
    }
}

/// Computes one similarity value from derived attribute views, `NaN`
/// when either side is missing. This is the single scoring kernel shared
/// by the batch featurizer and the streaming [`RowFeaturizer`]; both
/// views must come from derivations over `interner`.
fn sim_value(f: SimFunction, interner: &Interner, l: AttrView<'_>, r: AttrView<'_>) -> f64 {
    if !(l.present && r.present) {
        return f64::NAN;
    }
    match f {
        SimFunction::AbsDiff => match (l.number, r.number) {
            (Some(x), Some(y)) => zeroer_textsim::abs_diff_sim(x, y),
            _ => f64::NAN,
        },
        SimFunction::RelDiff => match (l.number, r.number) {
            (Some(x), Some(y)) => zeroer_textsim::rel_diff_sim(x, y),
            _ => f64::NAN,
        },
        SimFunction::JaccardQgm3 | SimFunction::CosineQgm3 => {
            f.apply_tokens(interner, l.qgm3, r.qgm3)
        }
        SimFunction::JaccardWord
        | SimFunction::CosineWord
        | SimFunction::DiceWord
        | SimFunction::OverlapWord
        | SimFunction::MongeElkan => f.apply_tokens(interner, l.word, r.word),
        _ => f.apply_text(l.text, r.text),
    }
}

/// [`sim_value`] with the allocation-heavy sequence kernels routed
/// through `scratch`-reusing variants. Bit-identical to [`sim_value`]
/// (the `*_with` kernels execute the same operation sequence as the
/// allocating forms they shadow); strictly faster in a loop because the
/// DP buffers are reused across calls.
fn sim_value_with(
    scratch: &mut SimScratch,
    f: SimFunction,
    interner: &Interner,
    l: AttrView<'_>,
    r: AttrView<'_>,
) -> f64 {
    if !(l.present && r.present) {
        return f64::NAN;
    }
    match f {
        SimFunction::Levenshtein => levenshtein_sim_with(scratch, l.text, r.text),
        SimFunction::JaroWinkler => jaro_winkler_with(scratch, l.text, r.text),
        SimFunction::NeedlemanWunsch => needleman_wunsch_with(scratch, l.text, r.text),
        SimFunction::MongeElkan => monge_elkan_with(scratch, interner, l.word, r.word),
        _ => sim_value(f, interner, l, r),
    }
}

/// Generates similarity features for candidate pairs between two tables
/// (or one table against itself for dedup).
///
/// The featurizer owns the tables' **derivation**: one interner shared
/// by both sides and one [`DerivedRecord`] per record, produced in a
/// single pass. When left and right are the same table (`dedup`), the
/// table is derived once, and callers that also need blocking keys can
/// request them through [`PairFeaturizer::with_config`] — the batch
/// blockers then consume [`PairFeaturizer::left_derived`] /
/// [`PairFeaturizer::right_derived`] instead of re-tokenizing, and the
/// streaming bootstrap hands the whole derivation to the entity store
/// via [`PairFeaturizer::into_parts`].
pub struct PairFeaturizer {
    attr_names: Vec<String>,
    attr_types: Vec<AttrType>,
    functions: Vec<&'static [SimFunction]>,
    interner: Interner,
    left: Vec<DerivedRecord>,
    /// `None` when featurizing a table against itself (derived once).
    right: Option<Vec<DerivedRecord>>,
    dim: usize,
}

impl PairFeaturizer {
    /// Builds the featurizer: infers joint attribute types, selects
    /// function sets, and derives both tables (no blocking keys).
    ///
    /// # Panics
    /// Panics if the schemas are not aligned.
    pub fn new(left: &Table, right: &Table) -> Self {
        Self::with_config(left, right, DeriveConfig::default())
    }

    /// [`PairFeaturizer::new`] with an explicit derivation configuration
    /// — pass a blocking [`zeroer_textsim::derive::BlockSpec`] to get
    /// blocking keys extracted in the same pass.
    ///
    /// # Panics
    /// Panics if the schemas are not aligned, or if `cfg` blocks on an
    /// attribute the schema lacks (a misconfiguration that would
    /// otherwise silently derive empty key sets for every record).
    pub fn with_config(left: &Table, right: &Table, cfg: DeriveConfig) -> Self {
        if let Some(block) = &cfg.block {
            assert!(
                block.attr < left.schema().arity(),
                "blocking attribute {} out of range for arity {}",
                block.attr,
                left.schema().arity()
            );
        }
        let attr_types = infer_joint_types(left, right);
        let functions: Vec<&'static [SimFunction]> =
            attr_types.iter().map(|&t| functions_for(t)).collect();
        let dim = functions.iter().map(|f| f.len()).sum();
        let mut deriver = Deriver::new(cfg);
        let left_recs: Vec<DerivedRecord> = left
            .records()
            .iter()
            .map(|r| deriver.derive(&r.values))
            .collect();
        let right_recs = if std::ptr::eq(left, right) {
            None
        } else {
            Some(
                right
                    .records()
                    .iter()
                    .map(|r| deriver.derive(&r.values))
                    .collect(),
            )
        };
        Self {
            attr_names: left.schema().attributes().to_vec(),
            attr_types,
            functions,
            interner: deriver.into_interner(),
            left: left_recs,
            right: right_recs,
            dim,
        }
    }

    /// Inferred attribute types (aligned with the schema).
    pub fn attr_types(&self) -> &[AttrType] {
        &self.attr_types
    }

    /// The shared interner both tables were derived against.
    pub fn interner(&self) -> &Interner {
        &self.interner
    }

    /// The left table's derivation.
    pub fn left_derived(&self) -> &[DerivedRecord] {
        &self.left
    }

    /// The right table's derivation (the left one for dedup
    /// featurizers).
    pub fn right_derived(&self) -> &[DerivedRecord] {
        self.right.as_deref().unwrap_or(&self.left)
    }

    /// Consumes a *dedup* featurizer, yielding its interner and derived
    /// records — the bootstrap path hands these to the streaming entity
    /// store so records are derived exactly once.
    ///
    /// # Panics
    /// Panics on a cross-table featurizer.
    pub fn into_parts(self) -> (Interner, Vec<DerivedRecord>) {
        assert!(
            self.right.is_none(),
            "into_parts is only meaningful for dedup featurizers"
        );
        (self.interner, self.left)
    }

    /// Consumes a *cross-table* featurizer, yielding its interner and
    /// both tables' derived records — the streaming-linkage bootstrap
    /// hands these to the entity store so neither table is derived
    /// twice, and both sides' token bags stay directly comparable (one
    /// symbol space).
    ///
    /// # Panics
    /// Panics on a dedup featurizer (use [`PairFeaturizer::into_parts`]).
    pub fn into_parts_cross(self) -> (Interner, Vec<DerivedRecord>, Vec<DerivedRecord>) {
        let right = self
            .right
            .expect("into_parts_cross is only meaningful for cross-table featurizers");
        (self.interner, self.left, right)
    }

    /// Total feature dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Feature group sizes, one per attribute (the §3.2 grouping).
    pub fn group_sizes(&self) -> Vec<usize> {
        self.functions.iter().map(|f| f.len()).collect()
    }

    /// Generated feature names, `<attr>_<fn>` in column order.
    pub fn feature_names(&self) -> Vec<String> {
        let mut names = Vec::with_capacity(self.dim);
        for (attr, funcs) in self.attr_names.iter().zip(&self.functions) {
            for f in *funcs {
                names.push(format!("{attr}_{}", f.short_name()));
            }
        }
        names
    }

    /// Fills one pair's feature row. `NaN` marks not-computable (missing
    /// value on either side); imputation happens in [`Self::featurize`].
    fn fill_row(&self, li: usize, ri: usize, out: &mut [f64]) {
        debug_assert_eq!(out.len(), self.dim);
        let (left, right) = (&self.left[li], &self.right_derived()[ri]);
        let mut col = 0;
        for (a, funcs) in self.functions.iter().enumerate() {
            let lv = left.view(a);
            let rv = right.view(a);
            for &f in *funcs {
                out[col] = sim_value(f, &self.interner, lv, rv);
                col += 1;
            }
        }
    }

    /// Generates the feature matrix for `pairs` (record *indices* into the
    /// left/right tables), parallelized over row chunks.
    ///
    /// Missing similarities (`NaN`) are imputed with the column mean of
    /// the computable rows; an all-missing column becomes all zeros.
    pub fn featurize(&self, pairs: &[(usize, usize)]) -> FeatureSet {
        let n = pairs.len();
        let d = self.dim;
        let mut data = vec![0.0f64; n * d];

        let threads = std::thread::available_parallelism()
            .map_or(1, |p| p.get())
            .min(8);
        let chunk_rows = n.div_ceil(threads.max(1)).max(1);
        crossbeam::thread::scope(|scope| {
            for (chunk_idx, out_chunk) in data.chunks_mut(chunk_rows * d).enumerate() {
                let start = chunk_idx * chunk_rows;
                let this = &*self;
                scope.spawn(move |_| {
                    for (row_off, row) in out_chunk.chunks_mut(d).enumerate() {
                        let (li, ri) = pairs[start + row_off];
                        this.fill_row(li, ri, row);
                    }
                });
            }
        })
        .expect("feature generation thread panicked");

        let mut matrix = Matrix::from_vec(n, d, data);
        let impute_means = impute_column_means(&mut matrix);

        FeatureSet {
            matrix,
            layout: GroupLayout::from_sizes(&self.group_sizes()),
            names: self.feature_names(),
            ranges: None,
            impute_means,
        }
    }
}

/// A featurizer frozen to a fixed attribute-type assignment, producing
/// raw feature rows for *individual* record pairs from per-record
/// derivations.
///
/// This is the streaming counterpart of [`PairFeaturizer`]: the batch
/// path infers attribute types jointly over full tables, while the
/// streaming path must keep the bootstrap-time types (and therefore the
/// exact feature layout) fixed no matter what arrives later.
#[derive(Debug, Clone)]
pub struct RowFeaturizer {
    attr_types: Vec<AttrType>,
    functions: Vec<&'static [SimFunction]>,
    /// Cached per-attribute function counts — computed once so the hot
    /// paths that need the §3.2 grouping never allocate for it.
    group_sizes: Vec<usize>,
    dim: usize,
}

impl RowFeaturizer {
    /// Builds a featurizer for a frozen attribute-type assignment.
    pub fn new(attr_types: &[AttrType]) -> Self {
        let functions: Vec<&'static [SimFunction]> =
            attr_types.iter().map(|&t| functions_for(t)).collect();
        let group_sizes: Vec<usize> = functions.iter().map(|f| f.len()).collect();
        let dim = group_sizes.iter().sum();
        Self {
            attr_types: attr_types.to_vec(),
            functions,
            group_sizes,
            dim,
        }
    }

    /// The frozen attribute types.
    pub fn attr_types(&self) -> &[AttrType] {
        &self.attr_types
    }

    /// Feature dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Feature group sizes, one per attribute (cached at construction).
    pub fn group_sizes(&self) -> &[usize] {
        &self.group_sizes
    }

    /// One pair's raw feature row (`NaN` marks not-computable entries).
    /// Both records must be derived against `interner`.
    ///
    /// # Panics
    /// Panics if either record's arity differs from the frozen types.
    pub fn raw_row(
        &self,
        interner: &Interner,
        left: &DerivedRecord,
        right: &DerivedRecord,
    ) -> Vec<f64> {
        let mut out = Vec::with_capacity(self.dim);
        self.raw_row_into(interner, left, right, &mut out);
        out
    }

    /// Fills `out` with one pair's raw feature row, reusing the buffer's
    /// allocation — the scoring hot loop calls this once per candidate
    /// with a per-worker buffer, making steady-state scoring
    /// allocation-free (see `bench_stream` for the measured delta).
    ///
    /// # Panics
    /// Panics if either record's arity differs from the frozen types.
    pub fn raw_row_into(
        &self,
        interner: &Interner,
        left: &DerivedRecord,
        right: &DerivedRecord,
        out: &mut Vec<f64>,
    ) {
        assert_eq!(
            left.arity(),
            self.functions.len(),
            "left record arity mismatch"
        );
        assert_eq!(
            right.arity(),
            self.functions.len(),
            "right record arity mismatch"
        );
        out.clear();
        out.reserve(self.dim);
        for (a, funcs) in self.functions.iter().enumerate() {
            let lv = left.view(a);
            let rv = right.view(a);
            for &f in *funcs {
                out.push(sim_value(f, interner, lv, rv));
            }
        }
    }
}

/// The struct-of-arrays batch counterpart of [`RowFeaturizer`]: gathers
/// N candidate pairs and fills a column-major feature matrix one feature
/// column at a time.
///
/// Filling by column instead of by row buys two things on the scoring
/// hot path: the per-attribute view setup ([`DerivedRecord::view`])
/// happens once per attribute per batch instead of once per attribute
/// per *pair*, and each similarity kernel writes a contiguous stripe the
/// autovectorizer can work with. The values are the exact `sim_value`
/// outputs of [`RowFeaturizer::raw_row_into`] — same kernel, same
/// operands — so transposing the resulting matrix reproduces the scalar
/// rows bit-for-bit. See `crates/features/README.md` for the design
/// note.
#[derive(Debug, Clone)]
pub struct BatchFeaturizer {
    row: RowFeaturizer,
}

impl BatchFeaturizer {
    /// Builds a batch featurizer for a frozen attribute-type assignment.
    pub fn new(attr_types: &[AttrType]) -> Self {
        Self {
            row: RowFeaturizer::new(attr_types),
        }
    }

    /// Wraps an existing [`RowFeaturizer`], sharing its frozen layout.
    pub fn from_row(row: RowFeaturizer) -> Self {
        Self { row }
    }

    /// The scalar row featurizer this batch featurizer wraps (the
    /// fallback path when batched scoring is disabled).
    pub fn row(&self) -> &RowFeaturizer {
        &self.row
    }

    /// The frozen attribute types.
    pub fn attr_types(&self) -> &[AttrType] {
        self.row.attr_types()
    }

    /// Feature dimensionality.
    pub fn dim(&self) -> usize {
        self.row.dim()
    }

    /// Feature group sizes, one per attribute.
    pub fn group_sizes(&self) -> &[usize] {
        self.row.group_sizes()
    }

    /// Fills `out` with the raw feature matrix of `n` candidate pairs,
    /// column-major: `out[(i, j)]` is feature `j` of the pair
    /// `pair_of(i)`. `NaN` marks not-computable entries, exactly like
    /// [`RowFeaturizer::raw_row_into`]. The matrix is reshaped in place,
    /// so a reused `out` stops allocating once it has seen its largest
    /// batch.
    ///
    /// Two batch-only optimizations ride on the column-major shape, both
    /// preserving bit-identity with the scalar path:
    ///
    /// * the sequence kernels (Levenshtein, Jaro-Winkler,
    ///   Needleman-Wunsch, Monge-Elkan) run through one reused
    ///   [`SimScratch`] instead of allocating DP buffers per pair;
    /// * when one side of every pair is the *same* record — the
    ///   streaming shape, one new record against its whole candidate
    ///   list — duplicate values on the varying side are detected per
    ///   attribute and each distinct value's similarities are computed
    ///   once, then scattered to every pair that shares the value.
    ///   Identical inputs produce identical bits, so copying is exact;
    ///   low-cardinality attributes (city, category, price bands)
    ///   collapse to a handful of kernel evaluations per column.
    ///
    /// All records must be derived against `interner`.
    ///
    /// # Panics
    /// Panics if any record's arity differs from the frozen types.
    pub fn fill_columns<'a, F>(
        &self,
        interner: &Interner,
        n: usize,
        pair_of: F,
        out: &mut ColMatrix,
    ) where
        F: Fn(usize) -> (&'a DerivedRecord, &'a DerivedRecord),
    {
        out.reset(n, self.row.dim);
        let arity = self.row.functions.len();
        let pairs: Vec<(&DerivedRecord, &DerivedRecord)> = (0..n).map(pair_of).collect();
        for (i, &(l, r)) in pairs.iter().enumerate() {
            assert_eq!(l.arity(), arity, "left record {i} arity mismatch");
            assert_eq!(r.arity(), arity, "right record {i} arity mismatch");
        }
        let mut scratch = SimScratch::new();

        // The streaming shape: one fixed record against every candidate.
        // Detected by pointer identity, which is exact and free of false
        // positives — and the only shape where per-attribute value
        // deduplication on the varying side is sound without comparing
        // the fixed side too.
        let left_fixed = n > 1 && pairs.iter().all(|&(l, _)| std::ptr::eq(l, pairs[0].0));
        let right_fixed =
            !left_fixed && n > 1 && pairs.iter().all(|&(_, r)| std::ptr::eq(r, pairs[0].1));
        let use_memo = left_fixed || right_fixed;

        let mut views: Vec<(AttrView<'a>, AttrView<'a>)> = Vec::with_capacity(n);
        // Per-attribute dedup state: `slot_of[i]` maps pair `i` to its
        // value slot, `reps[slot]` is the first pair carrying the value.
        let mut memo: HashMap<(bool, Option<u64>, &'a str), u32> = HashMap::new();
        let mut slot_of: Vec<u32> = Vec::with_capacity(n);
        let mut reps: Vec<usize> = Vec::new();
        let mut vals: Vec<f64> = Vec::new();

        let mut col = 0;
        for (a, funcs) in self.row.functions.iter().enumerate() {
            views.clear();
            views.extend(pairs.iter().map(|&(l, r)| (l.view(a), r.view(a))));

            let mut dedup = false;
            if use_memo {
                memo.clear();
                slot_of.clear();
                reps.clear();
                for (i, &(lv, rv)) in views.iter().enumerate() {
                    let v = if left_fixed { rv } else { lv };
                    // The key covers everything `sim_value` reads except
                    // the token bags; those are verified by equality on a
                    // hit because normalization-level Unicode edge cases
                    // can in principle tokenize equal lowercased texts
                    // differently.
                    let key = (v.present, v.number.map(f64::to_bits), v.text);
                    let slot = match memo.get(&key) {
                        Some(&s) => {
                            let (rl, rr) = views[reps[s as usize]];
                            let rep = if left_fixed { rr } else { rl };
                            if rep.qgm3 == v.qgm3 && rep.word == v.word {
                                s
                            } else {
                                reps.push(i);
                                (reps.len() - 1) as u32
                            }
                        }
                        None => {
                            let s = reps.len() as u32;
                            memo.insert(key, s);
                            reps.push(i);
                            s
                        }
                    };
                    slot_of.push(slot);
                }
                dedup = reps.len() < n;
            }

            if dedup {
                for &f in *funcs {
                    vals.clear();
                    for &p in &reps {
                        let (lv, rv) = views[p];
                        vals.push(sim_value_with(&mut scratch, f, interner, lv, rv));
                    }
                    for (o, &s) in out.col_mut(col).iter_mut().zip(&slot_of) {
                        *o = vals[s as usize];
                    }
                    col += 1;
                }
            } else {
                for &f in *funcs {
                    for (o, &(lv, rv)) in out.col_mut(col).iter_mut().zip(&views) {
                        *o = sim_value_with(&mut scratch, f, interner, lv, rv);
                    }
                    col += 1;
                }
            }
        }
    }
}

/// Replaces NaN entries with the column mean of the non-NaN entries
/// (0 when the entire column is NaN), returning the per-column means
/// applied.
///
/// Both passes walk the row-major matrix row by row (per-column
/// accumulators instead of a column-outer loop), so large feature
/// matrices stream through cache linearly. Each column's additions still
/// happen in ascending-row order, so the means are bit-identical to the
/// column-at-a-time formulation.
fn impute_column_means(m: &mut Matrix) -> Vec<f64> {
    let (n, d) = (m.rows(), m.cols());
    let mut sums = vec![0.0f64; d];
    let mut cnts = vec![0usize; d];
    for i in 0..n {
        for ((&v, sum), cnt) in m.row(i).iter().zip(&mut sums).zip(&mut cnts) {
            if v.is_finite() {
                *sum += v;
                *cnt += 1;
            }
        }
    }
    let means: Vec<f64> = sums
        .iter()
        .zip(&cnts)
        .map(|(&s, &c)| if c > 0 { s / c as f64 } else { 0.0 })
        .collect();
    for i in 0..n {
        for (v, &mean) in m.row_mut(i).iter_mut().zip(&means) {
            if !v.is_finite() {
                *v = mean;
            }
        }
    }
    means
}

#[cfg(test)]
mod tests {
    use super::*;
    use zeroer_tabular::{Record, Schema, Value};

    fn restaurant_tables() -> (Table, Table) {
        let schema = Schema::new(["name", "city", "year"]);
        let mut l = Table::new("l", schema.clone());
        l.push(Record::new(
            0,
            vec![
                "Ritz Carlton Cafe".into(),
                "new york".into(),
                Value::Int(1999),
            ],
        ));
        l.push(Record::new(
            1,
            vec!["Joe's Diner".into(), "boston".into(), Value::Int(2005)],
        ));
        let mut r = Table::new("r", schema);
        r.push(Record::new(
            0,
            vec![
                "Ritz-Carlton Café".into(),
                "new york city".into(),
                Value::Int(1999),
            ],
        ));
        r.push(Record::new(
            1,
            vec!["Completely Different".into(), "seattle".into(), Value::Null],
        ));
        (l, r)
    }

    #[test]
    fn featurizer_shapes_and_names() {
        let (l, r) = restaurant_tables();
        let fz = PairFeaturizer::new(&l, &r);
        assert_eq!(fz.group_sizes().len(), 3);
        assert_eq!(fz.feature_names().len(), fz.dim());
        assert!(fz.feature_names()[0].starts_with("name_"));
        // Year is numeric → 3 functions.
        assert_eq!(*fz.group_sizes().last().unwrap(), 3);
    }

    #[test]
    fn matching_pair_scores_higher_than_nonmatching() {
        let (l, r) = restaurant_tables();
        let fz = PairFeaturizer::new(&l, &r);
        let fs = fz.featurize(&[(0, 0), (0, 1), (1, 1)]);
        assert_eq!(fs.len(), 3);
        let row_match: f64 = fs.matrix.row(0).iter().sum();
        let row_non: f64 = fs.matrix.row(1).iter().sum();
        assert!(
            row_match > row_non,
            "near-duplicate pair must out-score a non-match ({row_match} vs {row_non})"
        );
    }

    #[test]
    fn missing_values_are_imputed_not_nan() {
        let (l, r) = restaurant_tables();
        let fz = PairFeaturizer::new(&l, &r);
        // Pair (1,1) has a null year on the right → numeric features NaN
        // pre-imputation; afterwards every entry must be finite.
        let fs = fz.featurize(&[(0, 0), (1, 1)]);
        assert!(!fs.matrix.has_non_finite());
    }

    #[test]
    fn normalize_bounds_features() {
        let (l, r) = restaurant_tables();
        let fz = PairFeaturizer::new(&l, &r);
        let mut fs = fz.featurize(&[(0, 0), (0, 1), (1, 0), (1, 1)]);
        fs.normalize();
        for i in 0..fs.len() {
            for &v in fs.matrix.row(i) {
                assert!((0.0..=1.0).contains(&v));
            }
        }
        assert!(fs.ranges.is_some());
    }

    #[test]
    fn empty_pair_list_yields_empty_set() {
        let (l, r) = restaurant_tables();
        let fz = PairFeaturizer::new(&l, &r);
        let fs = fz.featurize(&[]);
        assert!(fs.is_empty());
        assert_eq!(fs.dim(), fz.dim());
    }

    #[test]
    fn subset_selects_rows() {
        let (l, r) = restaurant_tables();
        let fz = PairFeaturizer::new(&l, &r);
        let fs = fz.featurize(&[(0, 0), (0, 1), (1, 1)]);
        let sub = fs.subset(&[2, 0]);
        assert_eq!(sub.len(), 2);
        assert_eq!(sub.matrix.row(0), fs.matrix.row(2));
        assert_eq!(sub.matrix.row(1), fs.matrix.row(0));
    }

    #[test]
    fn dedup_self_featurization_works() {
        let (l, _) = restaurant_tables();
        let fz = PairFeaturizer::new(&l, &l);
        assert!(
            fz.right.is_none(),
            "same table on both sides must be derived once"
        );
        let fs = fz.featurize(&[(0, 1)]);
        assert_eq!(fs.len(), 1);
        // Identical record compared with itself scores 1 everywhere.
        let fs_self = fz.featurize(&[(0, 0)]);
        for &v in fs_self.matrix.row(0) {
            assert!(
                (v - 1.0).abs() < 1e-9,
                "self-pair feature should be 1.0, got {v}"
            );
        }
    }

    #[test]
    fn batch_featurizer_columns_match_row_featurizer_bitwise() {
        let (l, r) = restaurant_tables();
        let fz = PairFeaturizer::with_config(&l, &r, DeriveConfig::blocking(0, 4));
        let row_fz = RowFeaturizer::new(fz.attr_types());
        let batch_fz = BatchFeaturizer::new(fz.attr_types());
        assert_eq!(batch_fz.dim(), row_fz.dim());
        assert_eq!(batch_fz.group_sizes(), row_fz.group_sizes());
        let pairs = [(0usize, 0usize), (1, 1), (0, 1), (1, 0)];
        let mut cols = ColMatrix::new();
        batch_fz.fill_columns(
            fz.interner(),
            pairs.len(),
            |i| {
                let (li, ri) = pairs[i];
                (&fz.left_derived()[li], &fz.right_derived()[ri])
            },
            &mut cols,
        );
        let mut buf = Vec::new();
        for (i, &(li, ri)) in pairs.iter().enumerate() {
            row_fz.raw_row_into(
                fz.interner(),
                &fz.left_derived()[li],
                &fz.right_derived()[ri],
                &mut buf,
            );
            for (j, &v) in buf.iter().enumerate() {
                assert_eq!(
                    cols.get(i, j).to_bits(),
                    v.to_bits(),
                    "row {i} col {j} (NaN patterns must match too)"
                );
            }
        }
        // Reuse with a smaller batch reshapes in place.
        batch_fz.fill_columns(
            fz.interner(),
            1,
            |_| (&fz.left_derived()[0], &fz.right_derived()[0]),
            &mut cols,
        );
        assert_eq!(cols.rows(), 1);
        assert_eq!(cols.cols(), row_fz.dim());
        // Empty batches are legal (a record with no candidates).
        batch_fz.fill_columns(fz.interner(), 0, |_| unreachable!(), &mut cols);
        assert_eq!(cols.rows(), 0);
    }

    #[test]
    fn fixed_side_memoized_fill_matches_row_featurizer_bitwise() {
        // The streaming shape: one fixed record against a candidate list
        // with heavy value duplication (shared cities, repeated names,
        // nulls) — the batch fill must dedup per attribute yet reproduce
        // the scalar rows to the bit.
        let schema = Schema::new(["name", "city", "year"]);
        let mut t = Table::new("t", schema);
        let rows: [(&str, &str, Value); 6] = [
            ("Ritz Carlton Cafe", "new york", Value::Int(1999)),
            ("Joe's Diner", "new york", Value::Int(2005)),
            ("Joe's Diner", "boston", Value::Null),
            ("Ritz-Carlton Café", "new york", Value::Int(1999)),
            ("Joe's Diner", "new york", Value::Int(2005)),
            ("Totally Other", "boston", Value::Null),
        ];
        for (i, (name, city, year)) in rows.into_iter().enumerate() {
            t.push(Record::new(i as u32, vec![name.into(), city.into(), year]));
        }
        let fz = PairFeaturizer::new(&t, &t);
        let row_fz = RowFeaturizer::new(fz.attr_types());
        let batch_fz = BatchFeaturizer::new(fz.attr_types());
        let derived = fz.left_derived();
        let candidates = [1usize, 2, 3, 4, 5];
        for (fixed, new_on_left) in [(0usize, true), (0, false), (3, true)] {
            let mut cols = ColMatrix::new();
            batch_fz.fill_columns(
                fz.interner(),
                candidates.len(),
                |i| {
                    if new_on_left {
                        (&derived[fixed], &derived[candidates[i]])
                    } else {
                        (&derived[candidates[i]], &derived[fixed])
                    }
                },
                &mut cols,
            );
            let mut buf = Vec::new();
            for (i, &c) in candidates.iter().enumerate() {
                let (l, r) = if new_on_left {
                    (&derived[fixed], &derived[c])
                } else {
                    (&derived[c], &derived[fixed])
                };
                row_fz.raw_row_into(fz.interner(), l, r, &mut buf);
                for (j, &v) in buf.iter().enumerate() {
                    let b = cols.get(i, j);
                    assert!(
                        v.to_bits() == b.to_bits() || (v.is_nan() && b.is_nan()),
                        "fixed={fixed} new_on_left={new_on_left} row {i} col {j}: {v} vs {b}"
                    );
                }
            }
        }
    }

    #[test]
    fn row_featurizer_matches_batch_rows_bitwise() {
        let (l, r) = restaurant_tables();
        let fz = PairFeaturizer::with_config(&l, &r, DeriveConfig::blocking(0, 4));
        let fs = fz.featurize(&[(0, 0), (1, 1), (0, 1)]);
        let row_fz = RowFeaturizer::new(fz.attr_types());
        for (i, &(li, ri)) in [(0usize, 0usize), (1, 1), (0, 1)].iter().enumerate() {
            let raw = row_fz.raw_row(
                fz.interner(),
                &fz.left_derived()[li],
                &fz.right_derived()[ri],
            );
            for (j, &v) in raw.iter().enumerate() {
                let batch = fs.matrix[(i, j)];
                if v.is_nan() {
                    // Batch imputes missing entries; raw rows keep NaN.
                    continue;
                }
                assert_eq!(v.to_bits(), batch.to_bits(), "row {i} col {j}");
            }
        }
    }
}
