//! Automatic similarity-feature generation (the Magellan process of §2.1).
//!
//! Given two tables with aligned schemas and a candidate set of record
//! pairs, this crate produces the `N × d` similarity feature matrix that
//! ZeroER and every baseline consume, along with the *feature grouping*
//! structure (which contiguous columns came from which attribute) that
//! drives the block-diagonal covariance of §3.2.
//!
//! The pipeline mirrors Magellan:
//!
//! 1. infer an [`zeroer_tabular::AttrType`] per aligned attribute
//!    (jointly over both tables);
//! 2. look up the per-type similarity-function set in the [`registry`];
//! 3. apply every function to every candidate pair — missing values
//!    produce `NaN`, later mean-imputed per column;
//! 4. min-max normalize each feature to `[0, 1]` (§6).
//!
//! Feature generation is embarrassingly parallel over pairs and is chunked
//! across threads with `crossbeam`.

pub mod cache;
pub mod generator;
pub mod registry;

pub use cache::{AttrView, RecordCache};
pub use generator::{FeatureSet, PairFeaturizer, RowFeaturizer};
pub use registry::{functions_for, SimFunction};
