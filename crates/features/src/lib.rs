//! Automatic similarity-feature generation (the Magellan process of §2.1).
//!
//! Given two tables with aligned schemas and a candidate set of record
//! pairs, this crate produces the `N × d` similarity feature matrix that
//! ZeroER and every baseline consume, along with the *feature grouping*
//! structure (which contiguous columns came from which attribute) that
//! drives the block-diagonal covariance of §3.2.
//!
//! The pipeline mirrors Magellan:
//!
//! 1. infer an [`zeroer_tabular::AttrType`] per aligned attribute
//!    (jointly over both tables);
//! 2. look up the per-type similarity-function set in the [`registry`];
//! 3. apply every function to every candidate pair — missing values
//!    produce `NaN`, later mean-imputed per column;
//! 4. min-max normalize each feature to `[0, 1]` (§6).
//!
//! Tokenization happens exactly once per record, through the shared
//! derivation layer (`zeroer_textsim::derive`): the featurizer owns the
//! tables' [`zeroer_textsim::derive::DerivedRecord`]s and the interner
//! they were built against, and the same derivation feeds the batch
//! blockers and the streaming subsystem. See `crates/features/README.md`
//! for the design note.
//!
//! Feature generation is embarrassingly parallel over pairs and is chunked
//! across threads with `crossbeam`.

pub mod generator;
pub mod registry;

pub use generator::{BatchFeaturizer, FeatureSet, PairFeaturizer, RowFeaturizer};
pub use registry::{functions_for, SimFunction};
// The derivation layer the featurizers consume, re-exported for
// convenience.
pub use zeroer_textsim::derive::{
    AttrDerived, AttrView, BlockSpec, DeriveConfig, DerivedRecord, Deriver,
};
