//! The similarity-function registry: which functions apply to which
//! attribute type.

use serde::{Deserialize, Serialize};
use zeroer_tabular::{AttrType, Value};
use zeroer_textsim::align::{needleman_wunsch, smith_waterman};
use zeroer_textsim::intern::Interner;
use zeroer_textsim::tokenize::TokenBag;
use zeroer_textsim::{
    abs_diff_sim, cosine, dice, exact_match, jaccard, jaro_winkler, levenshtein_sim, monge_elkan,
    overlap_coefficient, qgrams, rel_diff_sim, words,
};

/// A similarity function identifier, as applied by the feature generator.
///
/// The suffix conventions mirror Magellan's feature names: `Qgm3` =
/// 3-gram tokens, `Word` = word tokens.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SimFunction {
    /// Jaccard over 3-grams (`jac_qgm_3`).
    JaccardQgm3,
    /// Set cosine over 3-grams (`cos_qgm_3`).
    CosineQgm3,
    /// Jaccard over word tokens (`jac_dlm`).
    JaccardWord,
    /// Set cosine over word tokens (`cos_dlm`).
    CosineWord,
    /// Dice over word tokens.
    DiceWord,
    /// Overlap coefficient over word tokens.
    OverlapWord,
    /// Normalized Levenshtein similarity (`lev_sim`).
    Levenshtein,
    /// Jaro-Winkler (`jwn`).
    JaroWinkler,
    /// Monge-Elkan with Jaro-Winkler base (`mel`).
    MongeElkan,
    /// Normalized Needleman-Wunsch (`nmw`).
    NeedlemanWunsch,
    /// Normalized Smith-Waterman (`sw`).
    SmithWaterman,
    /// Exact equality on the textual form (`exm`).
    ExactMatch,
    /// Absolute-difference similarity on numbers (`anm`).
    AbsDiff,
    /// Relative-difference similarity on numbers.
    RelDiff,
}

impl SimFunction {
    /// Short name used in generated feature names.
    pub fn short_name(self) -> &'static str {
        match self {
            SimFunction::JaccardQgm3 => "jac_qgm3",
            SimFunction::CosineQgm3 => "cos_qgm3",
            SimFunction::JaccardWord => "jac_word",
            SimFunction::CosineWord => "cos_word",
            SimFunction::DiceWord => "dice_word",
            SimFunction::OverlapWord => "ovl_word",
            SimFunction::Levenshtein => "lev",
            SimFunction::JaroWinkler => "jwn",
            SimFunction::MongeElkan => "mel",
            SimFunction::NeedlemanWunsch => "nmw",
            SimFunction::SmithWaterman => "sw",
            SimFunction::ExactMatch => "exm",
            SimFunction::AbsDiff => "anm",
            SimFunction::RelDiff => "rnm",
        }
    }

    /// Whether the function consumes token bags (vs raw strings/numbers).
    pub fn needs_tokens(self) -> bool {
        matches!(
            self,
            SimFunction::JaccardQgm3
                | SimFunction::CosineQgm3
                | SimFunction::JaccardWord
                | SimFunction::CosineWord
                | SimFunction::DiceWord
                | SimFunction::OverlapWord
                | SimFunction::MongeElkan
        )
    }

    /// Applies the function to a pair of raw values, returning `None` when
    /// either side is missing (imputation happens downstream) and the
    /// similarity otherwise.
    ///
    /// This is the slow uncached path used by tests and one-off scoring;
    /// the bulk generator works from pre-derived records (interned token
    /// bags built once per record by `zeroer_textsim::derive`).
    pub fn apply(self, a: &Value, b: &Value) -> Option<f64> {
        if a.is_null() || b.is_null() {
            return None;
        }
        match self {
            SimFunction::AbsDiff => Some(abs_diff_sim(a.as_number()?, b.as_number()?)),
            SimFunction::RelDiff => Some(rel_diff_sim(a.as_number()?, b.as_number()?)),
            SimFunction::ExactMatch => Some(exact_match(
                &a.as_text()?.to_lowercase(),
                &b.as_text()?.to_lowercase(),
            )),
            _ => {
                let sa = a.as_text()?;
                let sb = b.as_text()?;
                Some(self.apply_text(&sa, &sb))
            }
        }
    }

    /// Applies a string-based function to already-extracted text.
    ///
    /// Token-based functions tokenize both sides into a throwaway
    /// interner per call — this is the slow uncached path; bulk scoring
    /// goes through the derivation layer and [`Self::apply_tokens`].
    pub fn apply_text(self, a: &str, b: &str) -> f64 {
        match self {
            SimFunction::JaccardQgm3
            | SimFunction::CosineQgm3
            | SimFunction::JaccardWord
            | SimFunction::CosineWord
            | SimFunction::DiceWord
            | SimFunction::OverlapWord
            | SimFunction::MongeElkan => {
                let mut it = Interner::new();
                let (ta, tb) = if matches!(self, SimFunction::JaccardQgm3 | SimFunction::CosineQgm3)
                {
                    (qgrams(&mut it, a, 3), qgrams(&mut it, b, 3))
                } else {
                    (words(&mut it, a), words(&mut it, b))
                };
                self.apply_tokens(&it, &ta, &tb)
            }
            SimFunction::Levenshtein => levenshtein_sim(a, b),
            SimFunction::JaroWinkler => jaro_winkler(a, b),
            SimFunction::NeedlemanWunsch => needleman_wunsch(a, b),
            SimFunction::SmithWaterman => smith_waterman(a, b),
            SimFunction::ExactMatch => exact_match(&a.to_lowercase(), &b.to_lowercase()),
            SimFunction::AbsDiff | SimFunction::RelDiff => {
                unreachable!("numeric functions have no text path")
            }
        }
    }

    /// Applies a token-based function to pre-computed token bags (both
    /// built against `interner`).
    ///
    /// # Panics
    /// Panics if called on a non-token function.
    pub fn apply_tokens(self, interner: &Interner, a: &TokenBag, b: &TokenBag) -> f64 {
        match self {
            SimFunction::JaccardQgm3 | SimFunction::JaccardWord => jaccard(a, b),
            SimFunction::CosineQgm3 | SimFunction::CosineWord => cosine(a, b),
            SimFunction::DiceWord => dice(a, b),
            SimFunction::OverlapWord => overlap_coefficient(a, b),
            SimFunction::MongeElkan => monge_elkan(interner, a, b),
            _ => panic!("{self:?} is not token-based"),
        }
    }
}

/// The per-type function sets, mirroring Magellan's defaults.
///
/// Quadratic-cost sequence measures (Levenshtein, alignment) are only
/// applied to short/medium strings; long free text gets token-set measures
/// which stay fast and are the only ones that carry signal there anyway.
pub fn functions_for(attr_type: AttrType) -> &'static [SimFunction] {
    use SimFunction::*;
    match attr_type {
        AttrType::Boolean => &[ExactMatch],
        AttrType::Numeric => &[ExactMatch, AbsDiff, RelDiff],
        AttrType::StrShort => &[
            JaccardQgm3,
            CosineQgm3,
            Levenshtein,
            JaroWinkler,
            ExactMatch,
        ],
        AttrType::StrMedium => &[
            JaccardQgm3,
            CosineQgm3,
            JaccardWord,
            MongeElkan,
            Levenshtein,
            NeedlemanWunsch,
        ],
        AttrType::StrLong => &[JaccardQgm3, CosineQgm3, JaccardWord, CosineWord, MongeElkan],
        AttrType::StrHuge => &[JaccardWord, CosineWord, DiceWord, OverlapWord],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_type_has_at_least_one_function() {
        for t in [
            AttrType::Boolean,
            AttrType::Numeric,
            AttrType::StrShort,
            AttrType::StrMedium,
            AttrType::StrLong,
            AttrType::StrHuge,
        ] {
            assert!(!functions_for(t).is_empty());
        }
    }

    #[test]
    fn grouped_structure_multiple_functions_per_string_attr() {
        // The §3.2 feature-grouping premise: string attributes generate
        // several correlated features.
        assert!(functions_for(AttrType::StrMedium).len() >= 2);
    }

    #[test]
    fn apply_handles_nulls() {
        let f = SimFunction::JaccardQgm3;
        assert_eq!(f.apply(&Value::Null, &"x".into()), None);
        assert_eq!(f.apply(&"x".into(), &Value::Null), None);
        assert!(f.apply(&"x".into(), &"x".into()).is_some());
    }

    #[test]
    fn exact_match_is_case_insensitive() {
        let f = SimFunction::ExactMatch;
        assert_eq!(f.apply(&"ACM".into(), &"acm".into()), Some(1.0));
        assert_eq!(f.apply(&"acm".into(), &"vldb".into()), Some(0.0));
    }

    #[test]
    fn numeric_functions_coerce_strings() {
        let f = SimFunction::AbsDiff;
        let a: Value = "10".into();
        let b: Value = "5".into();
        assert_eq!(f.apply(&a, &b), Some(0.5));
        // Non-numeric text cannot be compared numerically.
        assert_eq!(f.apply(&"abc".into(), &"5".into()), None);
    }

    #[test]
    fn identical_values_score_one_for_all_string_functions() {
        let v: Value = "the matrix".into();
        for t in [
            AttrType::StrShort,
            AttrType::StrMedium,
            AttrType::StrLong,
            AttrType::StrHuge,
        ] {
            for f in functions_for(t) {
                let s = f.apply(&v, &v).unwrap();
                assert!((s - 1.0).abs() < 1e-9, "{f:?} gave {s} on identical values");
            }
        }
    }

    #[test]
    fn short_names_are_unique() {
        use std::collections::HashSet;
        let all = [
            SimFunction::JaccardQgm3,
            SimFunction::CosineQgm3,
            SimFunction::JaccardWord,
            SimFunction::CosineWord,
            SimFunction::DiceWord,
            SimFunction::OverlapWord,
            SimFunction::Levenshtein,
            SimFunction::JaroWinkler,
            SimFunction::MongeElkan,
            SimFunction::NeedlemanWunsch,
            SimFunction::SmithWaterman,
            SimFunction::ExactMatch,
            SimFunction::AbsDiff,
            SimFunction::RelDiff,
        ];
        let names: HashSet<_> = all.iter().map(|f| f.short_name()).collect();
        assert_eq!(names.len(), all.len());
    }
}
