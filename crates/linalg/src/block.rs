//! Block-diagonal covariance structure (feature grouping, §3.2).
//!
//! ZeroER's key structural assumption is that features generated from the
//! same attribute are dependent while features from different attributes
//! are independent. The covariance matrix is therefore block-diagonal
//! (Eq. 10), and a d-dimensional Gaussian factorizes into a product of
//! per-block Gaussians. [`BlockDiag`] stores the blocks, and
//! [`BlockCholesky`] caches their factorizations for log-density
//! evaluation in the E-step.

use crate::cholesky::{Cholesky, NotPositiveDefinite};
use crate::matrix::{ColMatrix, Matrix};

/// Column ranges partitioning `0..d` into contiguous feature groups.
///
/// Group `g` covers columns `offsets[g] .. offsets[g] + blocks[g].rows()`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GroupLayout {
    sizes: Vec<usize>,
    offsets: Vec<usize>,
}

impl GroupLayout {
    /// Builds a layout from group sizes.
    ///
    /// # Panics
    /// Panics if any size is zero.
    pub fn from_sizes(sizes: &[usize]) -> Self {
        assert!(sizes.iter().all(|&s| s > 0), "zero-sized feature group");
        let mut offsets = Vec::with_capacity(sizes.len());
        let mut acc = 0;
        for &s in sizes {
            offsets.push(acc);
            acc += s;
        }
        Self {
            sizes: sizes.to_vec(),
            offsets,
        }
    }

    /// A layout with one group spanning all `d` columns (the "full
    /// dependence" ablation of Table 4).
    pub fn single_group(d: usize) -> Self {
        Self::from_sizes(&[d])
    }

    /// A layout with `d` singleton groups (the "independent" ablation).
    pub fn independent(d: usize) -> Self {
        Self::from_sizes(&vec![1; d])
    }

    /// Number of groups.
    pub fn num_groups(&self) -> usize {
        self.sizes.len()
    }

    /// Total dimensionality.
    pub fn dim(&self) -> usize {
        self.offsets
            .last()
            .map_or(0, |o| o + self.sizes[self.sizes.len() - 1])
    }

    /// `(offset, size)` of group `g`.
    pub fn group(&self, g: usize) -> (usize, usize) {
        (self.offsets[g], self.sizes[g])
    }

    /// Iterator over `(offset, size)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        self.offsets.iter().copied().zip(self.sizes.iter().copied())
    }

    /// Number of free covariance parameters under this grouping:
    /// `Σ_g (|F_g| choose 2) + |F_g|` (Eq. 9 plus the diagonal).
    pub fn covariance_params(&self) -> usize {
        self.sizes.iter().map(|&s| s * (s + 1) / 2).sum()
    }
}

/// A block-diagonal symmetric matrix: one dense block per feature group.
#[derive(Debug, Clone)]
pub struct BlockDiag {
    layout: GroupLayout,
    blocks: Vec<Matrix>,
}

impl BlockDiag {
    /// Assembles a block-diagonal matrix from blocks (their sizes define
    /// the layout).
    ///
    /// # Panics
    /// Panics if any block is non-square.
    pub fn from_blocks(blocks: Vec<Matrix>) -> Self {
        assert!(blocks.iter().all(Matrix::is_square), "non-square block");
        let sizes: Vec<usize> = blocks.iter().map(Matrix::rows).collect();
        Self {
            layout: GroupLayout::from_sizes(&sizes),
            blocks,
        }
    }

    /// Slices a full `d×d` matrix into blocks according to `layout`,
    /// discarding entries outside the blocks (this is how the grouped
    /// covariance is *defined* from a dense sample covariance).
    pub fn from_dense(full: &Matrix, layout: &GroupLayout) -> Self {
        assert_eq!(
            full.rows(),
            layout.dim(),
            "matrix/layout dimension mismatch"
        );
        let blocks = layout
            .iter()
            .map(|(off, sz)| full.principal_submatrix(off, sz))
            .collect();
        Self {
            layout: layout.clone(),
            blocks,
        }
    }

    /// The group layout.
    pub fn layout(&self) -> &GroupLayout {
        &self.layout
    }

    /// The blocks.
    pub fn blocks(&self) -> &[Matrix] {
        &self.blocks
    }

    /// Mutable access to the blocks (used by regularization to add `K`).
    pub fn blocks_mut(&mut self) -> &mut [Matrix] {
        &mut self.blocks
    }

    /// Total dimensionality.
    pub fn dim(&self) -> usize {
        self.layout.dim()
    }

    /// The main diagonal across all blocks.
    pub fn diag(&self) -> Vec<f64> {
        let mut d = Vec::with_capacity(self.dim());
        for b in &self.blocks {
            d.extend(b.diag());
        }
        d
    }

    /// Adds `values` to the main diagonal (Tikhonov / adaptive
    /// regularization, Eq. 13).
    ///
    /// # Panics
    /// Panics if `values.len() != self.dim()`.
    pub fn add_diag(&mut self, values: &[f64]) {
        assert_eq!(values.len(), self.dim(), "diagonal length mismatch");
        for (g, (off, sz)) in self.layout.clone().iter().enumerate() {
            for k in 0..sz {
                self.blocks[g][(k, k)] += values[off + k];
            }
        }
    }

    /// Expands to a dense `d×d` matrix (diagnostics / tests only).
    pub fn to_dense(&self) -> Matrix {
        let d = self.dim();
        let mut m = Matrix::zeros(d, d);
        for (g, (off, sz)) in self.layout.iter().enumerate() {
            for i in 0..sz {
                for j in 0..sz {
                    m[(off + i, off + j)] = self.blocks[g][(i, j)];
                }
            }
        }
        m
    }

    /// Factors every block; the result evaluates Gaussian log-densities.
    ///
    /// # Errors
    /// Fails if any block is not positive definite even after jitter.
    pub fn factor(&self) -> Result<BlockCholesky, NotPositiveDefinite> {
        let factors = self
            .blocks
            .iter()
            .map(Cholesky::factor)
            .collect::<Result<Vec<_>, _>>()?;
        Ok(BlockCholesky {
            layout: self.layout.clone(),
            factors,
        })
    }
}

/// Cached per-block Cholesky factors of a [`BlockDiag`] covariance.
#[derive(Debug, Clone)]
pub struct BlockCholesky {
    layout: GroupLayout,
    factors: Vec<Cholesky>,
}

impl BlockCholesky {
    /// `log det` of the whole block-diagonal matrix (sum over blocks).
    pub fn log_det(&self) -> f64 {
        self.factors.iter().map(Cholesky::log_det).sum()
    }

    /// Mahalanobis quadratic form `(x−µ)ᵀ Σ⁻¹ (x−µ)`, summed over blocks.
    ///
    /// # Panics
    /// Panics if `x` or `mu` do not have the layout's dimensionality.
    pub fn mahalanobis_sq(&self, x: &[f64], mu: &[f64]) -> f64 {
        let d = self.layout.dim();
        assert_eq!(x.len(), d, "x dimensionality mismatch");
        assert_eq!(mu.len(), d, "mu dimensionality mismatch");
        self.layout
            .iter()
            .zip(&self.factors)
            .map(|((off, sz), f)| f.mahalanobis_sq(&x[off..off + sz], &mu[off..off + sz]))
            .sum()
    }

    /// Batched [`BlockCholesky::mahalanobis_sq`]: one quadratic form per
    /// row of the column-major batch, one pass over the batch per block.
    ///
    /// Bit-exactness contract: the scalar path sums block contributions
    /// as `((0.0 + b₀) + b₁) + …` (iterator `sum` folds from 0.0). To
    /// reproduce those exact bits, each block's contribution is computed
    /// into a separate per-row buffer first and only then added into
    /// `out` — accumulating partial `z_i²` terms of a later block
    /// directly onto an earlier block's total would associate the sum
    /// differently and drift by an ULP.
    ///
    /// # Panics
    /// Panics if `x.cols()` or `mu.len()` differ from the layout's
    /// dimensionality, or `out.len() != x.rows()`.
    pub fn mahalanobis_sq_batch(
        &self,
        x: &ColMatrix,
        mu: &[f64],
        scratch: &mut MahalanobisScratch,
        out: &mut [f64],
    ) {
        let d = self.layout.dim();
        assert_eq!(x.cols(), d, "x dimensionality mismatch");
        assert_eq!(mu.len(), d, "mu dimensionality mismatch");
        let n = x.rows();
        assert_eq!(out.len(), n, "out length mismatch");
        out.fill(0.0);
        scratch.block.clear();
        scratch.block.resize(n, 0.0);
        for ((off, sz), f) in self.layout.iter().zip(&self.factors) {
            f.mahalanobis_sq_batch(
                x,
                off,
                &mu[off..off + sz],
                &mut scratch.z,
                &mut scratch.block,
            );
            for (o, &b) in out.iter_mut().zip(&scratch.block) {
                *o += b;
            }
        }
    }

    /// The layout.
    pub fn layout(&self) -> &GroupLayout {
        &self.layout
    }
}

/// Reusable scratch buffers for [`BlockCholesky::mahalanobis_sq_batch`]
/// (and [`crate::BlockGaussian::log_pdf_batch`] on top of it): the
/// forward-solve stripes plus the per-block partial sums. One instance
/// per scoring worker removes every allocation from the batched kernel —
/// the scalar path allocates a fresh `z` vector per block per candidate.
#[derive(Debug, Clone, Default)]
pub struct MahalanobisScratch {
    z: Vec<f64>,
    block: Vec<f64>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layout_from_sizes() {
        let l = GroupLayout::from_sizes(&[2, 3, 1]);
        assert_eq!(l.num_groups(), 3);
        assert_eq!(l.dim(), 6);
        assert_eq!(l.group(1), (2, 3));
        assert_eq!(l.covariance_params(), 3 + 6 + 1);
    }

    #[test]
    fn single_and_independent_layouts() {
        assert_eq!(GroupLayout::single_group(4).num_groups(), 1);
        assert_eq!(GroupLayout::independent(4).num_groups(), 4);
        assert_eq!(GroupLayout::single_group(4).covariance_params(), 10);
        assert_eq!(GroupLayout::independent(4).covariance_params(), 4);
    }

    #[test]
    #[should_panic(expected = "zero-sized")]
    fn zero_sized_group_panics() {
        GroupLayout::from_sizes(&[2, 0]);
    }

    #[test]
    fn from_dense_discards_cross_block_entries() {
        let full = Matrix::from_rows(&[&[1.0, 0.5, 9.0], &[0.5, 2.0, 9.0], &[9.0, 9.0, 3.0]]);
        let layout = GroupLayout::from_sizes(&[2, 1]);
        let bd = BlockDiag::from_dense(&full, &layout);
        let dense = bd.to_dense();
        assert_eq!(dense[(0, 2)], 0.0, "cross-block entry must be dropped");
        assert_eq!(dense[(0, 1)], 0.5, "within-block entry kept");
        assert_eq!(dense[(2, 2)], 3.0);
    }

    #[test]
    fn block_logdet_equals_dense_logdet() {
        let b1 = Matrix::from_rows(&[&[4.0, 1.0], &[1.0, 3.0]]);
        let b2 = Matrix::from_rows(&[&[2.0]]);
        let bd = BlockDiag::from_blocks(vec![b1, b2]);
        let f = bd.factor().unwrap();
        let dense_logdet = Cholesky::factor(&bd.to_dense()).unwrap().log_det();
        assert!((f.log_det() - dense_logdet).abs() < 1e-10);
    }

    #[test]
    fn block_mahalanobis_equals_dense() {
        let b1 = Matrix::from_rows(&[&[4.0, 1.0], &[1.0, 3.0]]);
        let b2 = Matrix::from_rows(&[&[2.0]]);
        let bd = BlockDiag::from_blocks(vec![b1, b2]);
        let f = bd.factor().unwrap();
        let dense = Cholesky::factor(&bd.to_dense()).unwrap();
        let x = [1.0, -1.0, 0.5];
        let mu = [0.0, 0.0, 0.0];
        assert!((f.mahalanobis_sq(&x, &mu) - dense.mahalanobis_sq(&x, &mu)).abs() < 1e-10);
    }

    #[test]
    fn batched_block_mahalanobis_is_bit_identical_to_scalar() {
        let b1 = Matrix::from_rows(&[&[4.0, 1.0], &[1.0, 3.0]]);
        let b2 = Matrix::from_rows(&[&[2.0]]);
        let b3 = Matrix::from_rows(&[&[1.5, 0.2, 0.1], &[0.2, 2.5, 0.4], &[0.1, 0.4, 0.9]]);
        let f = BlockDiag::from_blocks(vec![b1, b2, b3]).factor().unwrap();
        let mu = [0.1, -0.2, 0.3, 0.0, 0.5, -0.4];
        let rows: Vec<Vec<f64>> = (0..23)
            .map(|r| (0..6).map(|j| ((r * 7 + j) as f64 * 0.61).sin()).collect())
            .collect();
        let mut x = ColMatrix::new();
        x.reset(rows.len(), 6);
        for (i, row) in rows.iter().enumerate() {
            for (j, &v) in row.iter().enumerate() {
                x.set(i, j, v);
            }
        }
        let mut scratch = MahalanobisScratch::default();
        let mut out = vec![f64::NAN; rows.len()];
        f.mahalanobis_sq_batch(&x, &mu, &mut scratch, &mut out);
        for (row, &got) in rows.iter().zip(&out) {
            assert_eq!(got.to_bits(), f.mahalanobis_sq(row, &mu).to_bits());
        }
        // Scratch reuse with a different batch size must stay exact.
        let mut x2 = ColMatrix::new();
        x2.reset(3, 6);
        for i in 0..3 {
            for (j, &v) in rows[i + 5].iter().enumerate() {
                x2.set(i, j, v);
            }
        }
        let mut out2 = vec![f64::NAN; 3];
        f.mahalanobis_sq_batch(&x2, &mu, &mut scratch, &mut out2);
        for i in 0..3 {
            assert_eq!(
                out2[i].to_bits(),
                f.mahalanobis_sq(&rows[i + 5], &mu).to_bits()
            );
        }
    }

    #[test]
    fn add_diag_touches_every_block() {
        let b1 = Matrix::identity(2);
        let b2 = Matrix::identity(1);
        let mut bd = BlockDiag::from_blocks(vec![b1, b2]);
        bd.add_diag(&[0.1, 0.2, 0.3]);
        assert_eq!(bd.diag(), vec![1.1, 1.2, 1.3]);
    }
}
