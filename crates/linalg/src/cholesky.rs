//! Cholesky factorization with jitter escalation.

use crate::matrix::{ColMatrix, Matrix};

/// Error returned when a matrix cannot be factored even after jitter
/// escalation (i.e. it is far from positive-definite).
#[derive(Debug, Clone, PartialEq)]
pub struct NotPositiveDefinite {
    /// Pivot index at which factorization failed on the last attempt.
    pub pivot: usize,
}

impl std::fmt::Display for NotPositiveDefinite {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "matrix is not positive definite (failed at pivot {})",
            self.pivot
        )
    }
}

impl std::error::Error for NotPositiveDefinite {}

/// Lower-triangular Cholesky factor `L` of a symmetric positive-definite
/// matrix `A = L Lᵀ`.
///
/// Covariance blocks in ZeroER can be numerically singular before the
/// paper's adaptive regularization is applied (the §3.3 "singularity
/// problem": a feature whose within-class variance collapses to zero).
/// [`Cholesky::factor`] therefore retries with an escalating diagonal
/// jitter before giving up, and records the jitter it needed so callers can
/// fold it into the log-density consistently.
#[derive(Debug, Clone)]
pub struct Cholesky {
    l: Matrix,
    jitter: f64,
}

impl Cholesky {
    /// Factors `a` (symmetric positive-definite) into `L Lᵀ`.
    ///
    /// If the plain factorization fails, retries with jitter
    /// `1e-12, 1e-10, …, 1e-4` added to the diagonal.
    ///
    /// # Errors
    /// Returns [`NotPositiveDefinite`] if the matrix cannot be factored
    /// even at the largest jitter.
    ///
    /// # Panics
    /// Panics if `a` is not square.
    pub fn factor(a: &Matrix) -> Result<Self, NotPositiveDefinite> {
        assert!(a.is_square(), "Cholesky of non-square matrix");
        let mut last_pivot = 0;
        for &jitter in &[0.0, 1e-12, 1e-10, 1e-8, 1e-6, 1e-4] {
            match Self::try_factor(a, jitter) {
                Ok(l) => return Ok(Self { l, jitter }),
                Err(pivot) => last_pivot = pivot,
            }
        }
        Err(NotPositiveDefinite { pivot: last_pivot })
    }

    fn try_factor(a: &Matrix, jitter: f64) -> Result<Matrix, usize> {
        let n = a.rows();
        let mut l = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..=i {
                let mut sum = a[(i, j)];
                if i == j {
                    sum += jitter;
                }
                for k in 0..j {
                    sum -= l[(i, k)] * l[(j, k)];
                }
                if i == j {
                    if sum <= 0.0 || !sum.is_finite() {
                        return Err(i);
                    }
                    l[(i, j)] = sum.sqrt();
                } else {
                    l[(i, j)] = sum / l[(j, j)];
                }
            }
        }
        Ok(l)
    }

    /// The lower-triangular factor `L`.
    pub fn lower(&self) -> &Matrix {
        &self.l
    }

    /// The diagonal jitter that had to be added for the factorization to
    /// succeed (0.0 in the common case).
    pub fn jitter(&self) -> f64 {
        self.jitter
    }

    /// Dimension of the factored matrix.
    pub fn dim(&self) -> usize {
        self.l.rows()
    }

    /// `log det(A) = 2 Σ log L[i,i]`.
    pub fn log_det(&self) -> f64 {
        (0..self.dim()).map(|i| self.l[(i, i)].ln() * 2.0).sum()
    }

    /// Solves `A x = b` via forward/backward substitution.
    ///
    /// # Panics
    /// Panics if `b.len() != self.dim()`.
    #[allow(clippy::needless_range_loop)] // triangular solves index by k < i
    pub fn solve(&self, b: &[f64]) -> Vec<f64> {
        let n = self.dim();
        assert_eq!(b.len(), n, "dimension mismatch in solve");
        // Forward: L y = b
        let mut y = vec![0.0; n];
        for i in 0..n {
            let mut sum = b[i];
            for k in 0..i {
                sum -= self.l[(i, k)] * y[k];
            }
            y[i] = sum / self.l[(i, i)];
        }
        // Backward: Lᵀ x = y
        let mut x = vec![0.0; n];
        for i in (0..n).rev() {
            let mut sum = y[i];
            for k in (i + 1)..n {
                sum -= self.l[(k, i)] * x[k];
            }
            x[i] = sum / self.l[(i, i)];
        }
        x
    }

    /// The Mahalanobis quadratic form `(x − µ)ᵀ A⁻¹ (x − µ)` computed as
    /// `‖L⁻¹ (x − µ)‖²` without forming the inverse.
    ///
    /// # Panics
    /// Panics if `x.len() != mu.len() != self.dim()`.
    pub fn mahalanobis_sq(&self, x: &[f64], mu: &[f64]) -> f64 {
        let n = self.dim();
        assert_eq!(x.len(), n, "x dimension mismatch");
        assert_eq!(mu.len(), n, "mu dimension mismatch");
        // Forward-solve L z = (x - mu); return ||z||^2.
        let mut z = vec![0.0; n];
        let mut acc = 0.0;
        #[allow(clippy::needless_range_loop)] // triangular solve indexes by k < i
        for i in 0..n {
            let mut sum = x[i] - mu[i];
            for k in 0..i {
                sum -= self.l[(i, k)] * z[k];
            }
            let zi = sum / self.l[(i, i)];
            z[i] = zi;
            acc += zi * zi;
        }
        acc
    }

    /// Batched [`Cholesky::mahalanobis_sq`]: one quadratic form per row of
    /// the column-major batch `x`, reading feature columns
    /// `col_off .. col_off + dim` and writing `out[r]` for every row `r`.
    ///
    /// Bit-exactness contract: for each row, the sequence of
    /// floating-point operations (subtract the `k < i` back-substitution
    /// terms in order, divide by `L[i,i]`, accumulate `z_i²` in ascending
    /// `i`) is *identical* to the scalar forward-solve, so
    /// `out[r].to_bits()` equals the scalar result's bits for every row.
    /// The batch form only interchanges the loops: the row loop becomes
    /// the inner, contiguous stripe the autovectorizer can widen, and the
    /// per-call `z` allocation of the scalar path is replaced by a reused
    /// caller-owned scratch.
    ///
    /// # Panics
    /// Panics if the column range exceeds `x`, `mu.len() != self.dim()`,
    /// or `out.len() != x.rows()`.
    pub fn mahalanobis_sq_batch(
        &self,
        x: &ColMatrix,
        col_off: usize,
        mu: &[f64],
        z: &mut Vec<f64>,
        out: &mut [f64],
    ) {
        let d = self.dim();
        let n = x.rows();
        assert!(col_off + d <= x.cols(), "column range out of bounds");
        assert_eq!(mu.len(), d, "mu dimension mismatch");
        assert_eq!(out.len(), n, "out length mismatch");
        out.fill(0.0);
        if d == 1 {
            // Diagonal block: no cross-feature coupling, no z stripes.
            let l00 = self.l[(0, 0)];
            let mu0 = mu[0];
            for (o, &v) in out.iter_mut().zip(x.col(col_off)) {
                let zi = (v - mu0) / l00;
                *o += zi * zi;
            }
            return;
        }
        // z holds d stripes of n values: stripe i is z_i for every row.
        z.clear();
        z.resize(d * n, 0.0);
        for (i, &mui) in mu.iter().enumerate() {
            let (zpast, zrest) = z.split_at_mut(i * n);
            let zcur = &mut zrest[..n];
            for (c, &v) in zcur.iter_mut().zip(x.col(col_off + i)) {
                *c = v - mui;
            }
            for k in 0..i {
                let lik = self.l[(i, k)];
                let zk = &zpast[k * n..(k + 1) * n];
                for (c, &zkv) in zcur.iter_mut().zip(zk) {
                    *c -= lik * zkv;
                }
            }
            let lii = self.l[(i, i)];
            for (c, o) in zcur.iter_mut().zip(out.iter_mut()) {
                let zi = *c / lii;
                *c = zi;
                *o += zi * zi;
            }
        }
    }

    /// The inverse `A⁻¹`, formed column by column. Only used by tests and
    /// diagnostics — hot paths use [`Cholesky::solve`] /
    /// [`Cholesky::mahalanobis_sq`] instead.
    pub fn inverse(&self) -> Matrix {
        let n = self.dim();
        let mut inv = Matrix::zeros(n, n);
        let mut e = vec![0.0; n];
        for j in 0..n {
            e[j] = 1.0;
            let col = self.solve(&e);
            for i in 0..n {
                inv[(i, j)] = col[i];
            }
            e[j] = 0.0;
        }
        inv
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spd3() -> Matrix {
        Matrix::from_rows(&[&[4.0, 2.0, 0.6], &[2.0, 5.0, 1.0], &[0.6, 1.0, 3.0]])
    }

    #[test]
    fn factor_known_2x2() {
        let a = Matrix::from_rows(&[&[4.0, 2.0], &[2.0, 3.0]]);
        let c = Cholesky::factor(&a).unwrap();
        let l = c.lower();
        assert!((l[(0, 0)] - 2.0).abs() < 1e-12);
        assert!((l[(1, 0)] - 1.0).abs() < 1e-12);
        assert!((l[(1, 1)] - 2.0f64.sqrt()).abs() < 1e-12);
        assert_eq!(c.jitter(), 0.0);
    }

    #[test]
    fn log_det_matches_direct_determinant() {
        // det of spd3 computed by cofactor expansion = 4(15-1) - 2(6-0.6) + 0.6(2-3)
        let a = spd3();
        let det: f64 = 4.0 * (5.0 * 3.0 - 1.0) - 2.0 * (2.0 * 3.0 - 0.6) + 0.6 * (2.0 - 0.6 * 5.0);
        let c = Cholesky::factor(&a).unwrap();
        assert!((c.log_det() - det.ln()).abs() < 1e-10);
    }

    #[test]
    fn solve_identity_gives_rhs() {
        let c = Cholesky::factor(&Matrix::identity(4)).unwrap();
        let b = vec![1.0, -2.0, 3.0, 0.5];
        assert_eq!(c.solve(&b), b);
    }

    #[test]
    fn mahalanobis_matches_explicit_inverse() {
        let a = spd3();
        let c = Cholesky::factor(&a).unwrap();
        let x = [1.0, 2.0, 3.0];
        let mu = [0.5, 0.5, 0.5];
        let diff: Vec<f64> = x.iter().zip(&mu).map(|(a, b)| a - b).collect();
        let inv = c.inverse();
        let expected: f64 = (0..3)
            .map(|i| diff[i] * (0..3).map(|j| inv[(i, j)] * diff[j]).sum::<f64>())
            .sum();
        assert!((c.mahalanobis_sq(&x, &mu) - expected).abs() < 1e-10);
    }

    #[test]
    fn singular_matrix_gets_jitter() {
        // Rank-1 matrix: outer product of [1,2] with itself.
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]);
        let c = Cholesky::factor(&a).unwrap();
        assert!(
            c.jitter() > 0.0,
            "rank-deficient input should require jitter"
        );
    }

    #[test]
    fn negative_definite_fails() {
        let a = Matrix::from_rows(&[&[-1.0, 0.0], &[0.0, -1.0]]);
        assert!(Cholesky::factor(&a).is_err());
    }

    #[test]
    fn batched_mahalanobis_is_bit_identical_to_scalar() {
        let c = Cholesky::factor(&spd3()).unwrap();
        let mu = [0.25, -0.5, 0.125];
        let rows: Vec<[f64; 3]> = (0..17)
            .map(|r| {
                let r = r as f64;
                [r * 0.37 - 2.0, (r * r).sin() * 1.5, 1.0 / (r + 1.0)]
            })
            .collect();
        let mut x = ColMatrix::new();
        x.reset(rows.len(), 3);
        for (i, row) in rows.iter().enumerate() {
            for (j, &v) in row.iter().enumerate() {
                x.set(i, j, v);
            }
        }
        let mut z = Vec::new();
        let mut out = vec![f64::NAN; rows.len()];
        c.mahalanobis_sq_batch(&x, 0, &mu, &mut z, &mut out);
        for (row, &got) in rows.iter().zip(&out) {
            let want = c.mahalanobis_sq(row, &mu);
            assert_eq!(got.to_bits(), want.to_bits());
        }
    }

    #[test]
    fn batched_mahalanobis_diagonal_fast_path_is_bit_identical() {
        let c = Cholesky::factor(&Matrix::from_rows(&[&[0.3]])).unwrap();
        let vals = [0.0, 1.0, -3.5, 0.7, f64::MIN_POSITIVE];
        let mut x = ColMatrix::new();
        x.reset(vals.len(), 1);
        for (i, &v) in vals.iter().enumerate() {
            x.set(i, 0, v);
        }
        let mut z = Vec::new();
        let mut out = vec![0.0; vals.len()];
        c.mahalanobis_sq_batch(&x, 0, &[0.4], &mut z, &mut out);
        for (&v, &got) in vals.iter().zip(&out) {
            assert_eq!(got.to_bits(), c.mahalanobis_sq(&[v], &[0.4]).to_bits());
        }
    }

    #[test]
    fn inverse_times_matrix_is_identity() {
        let a = spd3();
        let inv = Cholesky::factor(&a).unwrap().inverse();
        let prod = &a * &inv;
        assert!(prod.max_abs_diff(&Matrix::identity(3)) < 1e-10);
    }
}
