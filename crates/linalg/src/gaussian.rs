//! Multivariate Gaussian densities over block-diagonal covariances.

use crate::block::{BlockCholesky, BlockDiag};
use crate::cholesky::NotPositiveDefinite;

/// `log(2π)` — the constant in the Gaussian log-density.
pub const LN_2PI: f64 = 1.837_877_066_409_345_5;

/// A d-dimensional Gaussian with block-diagonal covariance, ready for
/// repeated log-density evaluation (the inner loop of the E-step).
///
/// The density factorizes over groups (§3.2), so
/// `log N(x; µ, Σ) = −½ (d·log 2π + log det Σ + (x−µ)ᵀ Σ⁻¹ (x−µ))`
/// is computed as a sum of per-block terms.
#[derive(Debug, Clone)]
pub struct BlockGaussian {
    mean: Vec<f64>,
    chol: BlockCholesky,
    log_norm: f64,
}

impl BlockGaussian {
    /// Builds the Gaussian, factoring the covariance once.
    ///
    /// # Errors
    /// Fails if the covariance is not positive definite even after jitter.
    ///
    /// # Panics
    /// Panics if `mean.len() != cov.dim()`.
    pub fn new(mean: Vec<f64>, cov: &BlockDiag) -> Result<Self, NotPositiveDefinite> {
        assert_eq!(mean.len(), cov.dim(), "mean/covariance dimension mismatch");
        let chol = cov.factor()?;
        let d = mean.len() as f64;
        let log_norm = -0.5 * (d * LN_2PI + chol.log_det());
        Ok(Self {
            mean,
            chol,
            log_norm,
        })
    }

    /// The mean vector.
    pub fn mean(&self) -> &[f64] {
        &self.mean
    }

    /// Dimensionality.
    pub fn dim(&self) -> usize {
        self.mean.len()
    }

    /// `log p(x)` under this Gaussian.
    pub fn log_pdf(&self, x: &[f64]) -> f64 {
        self.log_norm - 0.5 * self.chol.mahalanobis_sq(x, &self.mean)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::Matrix;

    #[test]
    fn standard_normal_at_origin() {
        let cov = BlockDiag::from_blocks(vec![Matrix::identity(1)]);
        let g = BlockGaussian::new(vec![0.0], &cov).unwrap();
        // log N(0; 0, 1) = -0.5 log(2π)
        assert!((g.log_pdf(&[0.0]) + 0.5 * LN_2PI).abs() < 1e-12);
    }

    #[test]
    fn univariate_matches_closed_form() {
        let (mu, var) = (1.5, 0.25);
        let cov = BlockDiag::from_blocks(vec![Matrix::from_rows(&[&[var]])]);
        let g = BlockGaussian::new(vec![mu], &cov).unwrap();
        let x = 2.0;
        let expected = -0.5 * (LN_2PI + var.ln() + (x - mu).powi(2) / var);
        assert!((g.log_pdf(&[x]) - expected).abs() < 1e-12);
    }

    #[test]
    fn block_density_is_product_of_group_densities() {
        let b1 = Matrix::from_rows(&[&[2.0, 0.3], &[0.3, 1.0]]);
        let b2 = Matrix::from_rows(&[&[0.5]]);
        let joint = BlockGaussian::new(
            vec![0.1, 0.2, 0.3],
            &BlockDiag::from_blocks(vec![b1.clone(), b2.clone()]),
        )
        .unwrap();
        let g1 = BlockGaussian::new(vec![0.1, 0.2], &BlockDiag::from_blocks(vec![b1])).unwrap();
        let g2 = BlockGaussian::new(vec![0.3], &BlockDiag::from_blocks(vec![b2])).unwrap();
        let x = [1.0, -0.5, 0.0];
        let sum = g1.log_pdf(&x[..2]) + g2.log_pdf(&x[2..]);
        assert!((joint.log_pdf(&x) - sum).abs() < 1e-12);
    }

    #[test]
    fn density_decreases_away_from_mean() {
        let cov = BlockDiag::from_blocks(vec![Matrix::identity(2)]);
        let g = BlockGaussian::new(vec![0.0, 0.0], &cov).unwrap();
        assert!(g.log_pdf(&[0.0, 0.0]) > g.log_pdf(&[1.0, 1.0]));
        assert!(g.log_pdf(&[1.0, 1.0]) > g.log_pdf(&[3.0, 3.0]));
    }
}
