//! Multivariate Gaussian densities over block-diagonal covariances.

use crate::block::{BlockCholesky, BlockDiag, MahalanobisScratch};
use crate::cholesky::NotPositiveDefinite;
use crate::matrix::ColMatrix;

/// `log(2π)` — the constant in the Gaussian log-density.
pub const LN_2PI: f64 = 1.837_877_066_409_345_5;

/// A d-dimensional Gaussian with block-diagonal covariance, ready for
/// repeated log-density evaluation (the inner loop of the E-step).
///
/// The density factorizes over groups (§3.2), so
/// `log N(x; µ, Σ) = −½ (d·log 2π + log det Σ + (x−µ)ᵀ Σ⁻¹ (x−µ))`
/// is computed as a sum of per-block terms.
#[derive(Debug, Clone)]
pub struct BlockGaussian {
    mean: Vec<f64>,
    chol: BlockCholesky,
    log_norm: f64,
}

impl BlockGaussian {
    /// Builds the Gaussian, factoring the covariance once.
    ///
    /// # Errors
    /// Fails if the covariance is not positive definite even after jitter.
    ///
    /// # Panics
    /// Panics if `mean.len() != cov.dim()`.
    pub fn new(mean: Vec<f64>, cov: &BlockDiag) -> Result<Self, NotPositiveDefinite> {
        assert_eq!(mean.len(), cov.dim(), "mean/covariance dimension mismatch");
        let chol = cov.factor()?;
        let d = mean.len() as f64;
        let log_norm = -0.5 * (d * LN_2PI + chol.log_det());
        Ok(Self {
            mean,
            chol,
            log_norm,
        })
    }

    /// The mean vector.
    pub fn mean(&self) -> &[f64] {
        &self.mean
    }

    /// Dimensionality.
    pub fn dim(&self) -> usize {
        self.mean.len()
    }

    /// `log p(x)` under this Gaussian.
    pub fn log_pdf(&self, x: &[f64]) -> f64 {
        self.log_norm - 0.5 * self.chol.mahalanobis_sq(x, &self.mean)
    }

    /// Batched [`BlockGaussian::log_pdf`]: `out[r] = log p(row r)` for
    /// every row of the column-major batch, one pass per covariance
    /// block. Bit-identical per row to the scalar path (the Mahalanobis
    /// kernels preserve the scalar operation order exactly, and the
    /// `log_norm − ½·m` epilogue is the same two operations).
    ///
    /// # Panics
    /// Panics if `x.cols() != self.dim()` or `out.len() != x.rows()`.
    pub fn log_pdf_batch(&self, x: &ColMatrix, scratch: &mut MahalanobisScratch, out: &mut [f64]) {
        self.chol.mahalanobis_sq_batch(x, &self.mean, scratch, out);
        for v in out.iter_mut() {
            *v = self.log_norm - 0.5 * *v;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::Matrix;

    #[test]
    fn standard_normal_at_origin() {
        let cov = BlockDiag::from_blocks(vec![Matrix::identity(1)]);
        let g = BlockGaussian::new(vec![0.0], &cov).unwrap();
        // log N(0; 0, 1) = -0.5 log(2π)
        assert!((g.log_pdf(&[0.0]) + 0.5 * LN_2PI).abs() < 1e-12);
    }

    #[test]
    fn univariate_matches_closed_form() {
        let (mu, var) = (1.5, 0.25);
        let cov = BlockDiag::from_blocks(vec![Matrix::from_rows(&[&[var]])]);
        let g = BlockGaussian::new(vec![mu], &cov).unwrap();
        let x = 2.0;
        let expected = -0.5 * (LN_2PI + var.ln() + (x - mu).powi(2) / var);
        assert!((g.log_pdf(&[x]) - expected).abs() < 1e-12);
    }

    #[test]
    fn block_density_is_product_of_group_densities() {
        let b1 = Matrix::from_rows(&[&[2.0, 0.3], &[0.3, 1.0]]);
        let b2 = Matrix::from_rows(&[&[0.5]]);
        let joint = BlockGaussian::new(
            vec![0.1, 0.2, 0.3],
            &BlockDiag::from_blocks(vec![b1.clone(), b2.clone()]),
        )
        .unwrap();
        let g1 = BlockGaussian::new(vec![0.1, 0.2], &BlockDiag::from_blocks(vec![b1])).unwrap();
        let g2 = BlockGaussian::new(vec![0.3], &BlockDiag::from_blocks(vec![b2])).unwrap();
        let x = [1.0, -0.5, 0.0];
        let sum = g1.log_pdf(&x[..2]) + g2.log_pdf(&x[2..]);
        assert!((joint.log_pdf(&x) - sum).abs() < 1e-12);
    }

    #[test]
    fn batched_log_pdf_is_bit_identical_to_scalar() {
        let b1 = Matrix::from_rows(&[&[2.0, 0.3], &[0.3, 1.0]]);
        let b2 = Matrix::from_rows(&[&[0.5]]);
        let g =
            BlockGaussian::new(vec![0.1, 0.2, 0.3], &BlockDiag::from_blocks(vec![b1, b2])).unwrap();
        let rows: Vec<[f64; 3]> = (0..11)
            .map(|r| {
                let r = r as f64;
                [r * 0.21 - 1.0, (r * 1.7).cos(), r / 10.0]
            })
            .collect();
        let mut x = ColMatrix::new();
        x.reset(rows.len(), 3);
        for (i, row) in rows.iter().enumerate() {
            for (j, &v) in row.iter().enumerate() {
                x.set(i, j, v);
            }
        }
        let mut scratch = MahalanobisScratch::default();
        let mut out = vec![f64::NAN; rows.len()];
        g.log_pdf_batch(&x, &mut scratch, &mut out);
        for (row, &got) in rows.iter().zip(&out) {
            assert_eq!(got.to_bits(), g.log_pdf(row).to_bits());
        }
    }

    #[test]
    fn density_decreases_away_from_mean() {
        let cov = BlockDiag::from_blocks(vec![Matrix::identity(2)]);
        let g = BlockGaussian::new(vec![0.0, 0.0], &cov).unwrap();
        assert!(g.log_pdf(&[0.0, 0.0]) > g.log_pdf(&[1.0, 1.0]));
        assert!(g.log_pdf(&[1.0, 1.0]) > g.log_pdf(&[3.0, 3.0]));
    }
}
