//! Dense linear algebra for the ZeroER reproduction.
//!
//! ZeroER's generative model only ever manipulates *small* symmetric
//! positive-definite matrices: the per-attribute covariance blocks of the
//! block-diagonal covariance structure from the paper's feature-grouping
//! idea (§3.2). Blocks have at most a handful of rows (one per similarity
//! function applied to the attribute), so a straightforward dense row-major
//! representation with O(k³) Cholesky factorization per block is both the
//! simplest and the fastest option — no external linear-algebra crate is
//! needed or used.
//!
//! The crate provides:
//!
//! * [`Matrix`] — a dense row-major `f64` matrix with the usual arithmetic.
//! * [`Cholesky`] — factorization of symmetric positive-definite matrices
//!   with automatic jitter escalation for near-singular inputs (the paper's
//!   "singularity problem" produces exactly such matrices before
//!   regularization kicks in).
//! * [`BlockDiag`] — the block-diagonal covariance structure of §3.2, with
//!   per-block log-density evaluation for the E-step.
//! * [`stats`] — weighted means/covariances (the M-step closed forms of
//!   Eq. 8/11), Pearson correlation (§4), and min-max normalization (§6).
//! * [`gaussian`] — multivariate normal log-density over block-diagonal
//!   covariances.

pub mod block;
pub mod cholesky;
pub mod gaussian;
pub mod matrix;
pub mod stats;

pub use block::{BlockDiag, MahalanobisScratch};
pub use cholesky::Cholesky;
pub use gaussian::BlockGaussian;
pub use matrix::{ColMatrix, Matrix};

/// Numerical floor added to variances to keep covariance blocks strictly
/// positive-definite even when a feature is perfectly degenerate (all
/// values identical within a class). The paper's adaptive regularization
/// (§3.3) normally prevents this, but the *unregularized* ablation variants
/// of Table 4 need a floor to remain runnable at all; this value is small
/// enough not to affect any reported score.
pub const VARIANCE_FLOOR: f64 = 1e-9;

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn spd_matrix(dim: usize) -> impl Strategy<Value = Matrix> {
        proptest::collection::vec(-2.0f64..2.0, dim * dim).prop_map(move |v| {
            let a = Matrix::from_vec(dim, dim, v);
            // A Aᵀ + dim·I is symmetric positive definite.
            let mut s = &a * &a.transpose();
            for i in 0..dim {
                s[(i, i)] += dim as f64;
            }
            s
        })
    }

    proptest! {
        #[test]
        fn cholesky_roundtrip(a in (1usize..6).prop_flat_map(spd_matrix)) {
            let chol = Cholesky::factor(&a).expect("SPD input must factor");
            let l = chol.lower();
            let rebuilt = l * &l.transpose();
            for i in 0..a.rows() {
                for j in 0..a.cols() {
                    prop_assert!((rebuilt[(i, j)] - a[(i, j)]).abs() < 1e-8,
                        "mismatch at ({i},{j}): {} vs {}", rebuilt[(i, j)], a[(i, j)]);
                }
            }
        }

        #[test]
        fn cholesky_solve_is_inverse_application(a in (1usize..6).prop_flat_map(spd_matrix)) {
            let n = a.rows();
            let chol = Cholesky::factor(&a).unwrap();
            let b: Vec<f64> = (0..n).map(|i| i as f64 + 1.0).collect();
            let x = chol.solve(&b);
            // a * x should equal b
            for i in 0..n {
                let got: f64 = (0..n).map(|j| a[(i, j)] * x[j]).sum();
                prop_assert!((got - b[i]).abs() < 1e-7);
            }
        }

        #[test]
        fn logdet_matches_product_of_squares(a in (1usize..6).prop_flat_map(spd_matrix)) {
            let chol = Cholesky::factor(&a).unwrap();
            let by_diag: f64 = (0..a.rows())
                .map(|i| chol.lower()[(i, i)].ln() * 2.0)
                .sum();
            prop_assert!((chol.log_det() - by_diag).abs() < 1e-9);
        }
    }
}
