//! Dense row-major matrix, plus the column-major batch matrix the
//! batched scoring kernels consume.

use std::fmt;
use std::ops::{Add, Index, IndexMut, Mul, Sub};

/// A dense row-major matrix of `f64`.
///
/// This is intentionally minimal: ZeroER only needs small symmetric
/// matrices (covariance blocks) and an N×d feature matrix, so the type
/// favours clarity and bounds-checked safety over BLAS-grade throughput.
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// An all-zero `rows × cols` matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// The `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Builds a matrix from a row-major data vector.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "data length {} does not match {rows}x{cols}",
            data.len()
        );
        Self { rows, cols, data }
    }

    /// Builds a matrix from nested row slices.
    ///
    /// # Panics
    /// Panics if rows have inconsistent lengths.
    pub fn from_rows(rows: &[&[f64]]) -> Self {
        let r = rows.len();
        let c = rows.first().map_or(0, |row| row.len());
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            assert_eq!(row.len(), c, "ragged rows");
            data.extend_from_slice(row);
        }
        Self {
            rows: r,
            cols: c,
            data,
        }
    }

    /// A diagonal matrix with `diag` on the main diagonal.
    pub fn from_diag(diag: &[f64]) -> Self {
        let n = diag.len();
        let mut m = Self::zeros(n, n);
        for (i, &v) in diag.iter().enumerate() {
            m[(i, i)] = v;
        }
        m
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Whether the matrix is square.
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Borrow row `i` as a slice.
    pub fn row(&self, i: usize) -> &[f64] {
        assert!(i < self.rows, "row {i} out of bounds ({} rows)", self.rows);
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutably borrow row `i` as a slice.
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        assert!(i < self.rows, "row {i} out of bounds ({} rows)", self.rows);
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Copy of column `j`.
    pub fn col(&self, j: usize) -> Vec<f64> {
        assert!(j < self.cols, "col {j} out of bounds ({} cols)", self.cols);
        (0..self.rows).map(|i| self[(i, j)]).collect()
    }

    /// The underlying row-major data.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Transpose.
    pub fn transpose(&self) -> Matrix {
        let mut t = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                t[(j, i)] = self[(i, j)];
            }
        }
        t
    }

    /// Extracts the square sub-matrix of the column/row range
    /// `[start, start + len)` — used to slice covariance blocks out of a
    /// full covariance matrix.
    pub fn principal_submatrix(&self, start: usize, len: usize) -> Matrix {
        assert!(self.is_square(), "principal submatrix of non-square matrix");
        assert!(start + len <= self.rows, "submatrix out of bounds");
        let mut m = Matrix::zeros(len, len);
        for i in 0..len {
            for j in 0..len {
                m[(i, j)] = self[(start + i, start + j)];
            }
        }
        m
    }

    /// The main diagonal.
    pub fn diag(&self) -> Vec<f64> {
        let n = self.rows.min(self.cols);
        (0..n).map(|i| self[(i, i)]).collect()
    }

    /// Sum of the main diagonal (trace).
    pub fn trace(&self) -> f64 {
        self.diag().iter().sum()
    }

    /// Matrix-vector product `self * v`.
    ///
    /// # Panics
    /// Panics if `v.len() != self.cols()`.
    pub fn mat_vec(&self, v: &[f64]) -> Vec<f64> {
        assert_eq!(v.len(), self.cols, "dimension mismatch in mat_vec");
        self.data
            .chunks_exact(self.cols)
            .map(|row| row.iter().zip(v).map(|(a, b)| a * b).sum())
            .collect()
    }

    /// Scales every entry by `s`, in place.
    pub fn scale_mut(&mut self, s: f64) {
        for v in &mut self.data {
            *v *= s;
        }
    }

    /// Returns a scaled copy.
    pub fn scaled(&self, s: f64) -> Matrix {
        let mut m = self.clone();
        m.scale_mut(s);
        m
    }

    /// Adds `other` into `self` element-wise.
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn add_assign(&mut self, other: &Matrix) {
        assert_eq!(
            (self.rows, self.cols),
            (other.rows, other.cols),
            "shape mismatch"
        );
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
    }

    /// Symmetrizes the matrix in place: `A ← (A + Aᵀ)/2`.
    ///
    /// Weighted covariance accumulation can introduce tiny asymmetries from
    /// floating-point non-associativity; Cholesky assumes exact symmetry.
    pub fn symmetrize(&mut self) {
        assert!(self.is_square(), "symmetrize of non-square matrix");
        for i in 0..self.rows {
            for j in (i + 1)..self.cols {
                let m = 0.5 * (self[(i, j)] + self[(j, i)]);
                self[(i, j)] = m;
                self[(j, i)] = m;
            }
        }
    }

    /// Maximum absolute element difference against `other`.
    pub fn max_abs_diff(&self, other: &Matrix) -> f64 {
        assert_eq!(
            (self.rows, self.cols),
            (other.rows, other.cols),
            "shape mismatch"
        );
        self.data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max)
    }

    /// Whether any entry is NaN or infinite.
    pub fn has_non_finite(&self) -> bool {
        self.data.iter().any(|v| !v.is_finite())
    }
}

/// A dense **column-major** `f64` matrix sized for batched scoring: `n`
/// candidate rows × `d` feature columns, with each feature column stored
/// contiguously.
///
/// This is the struct-of-arrays twin of [`Matrix`]: the batched
/// featurize → normalize → score kernels all walk one feature column at a
/// time across the whole batch, so the column — not the row — is the unit
/// of locality. The buffer is designed for reuse: [`ColMatrix::reset`]
/// reshapes in place without shrinking the allocation, so a per-worker
/// scratch instance stops allocating once it has seen its largest batch.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ColMatrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl ColMatrix {
    /// An empty 0×0 matrix (no allocation until the first
    /// [`ColMatrix::reset`]).
    pub fn new() -> Self {
        Self::default()
    }

    /// Reshapes to `rows × cols` with every entry zeroed, reusing the
    /// existing allocation when it is large enough.
    pub fn reset(&mut self, rows: usize, cols: usize) {
        self.rows = rows;
        self.cols = cols;
        self.data.clear();
        self.data.resize(rows * cols, 0.0);
    }

    /// Number of rows (batch size).
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns (feature dimensionality).
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Borrow column `j` as a contiguous slice.
    pub fn col(&self, j: usize) -> &[f64] {
        assert!(j < self.cols, "col {j} out of bounds ({} cols)", self.cols);
        &self.data[j * self.rows..(j + 1) * self.rows]
    }

    /// Mutably borrow column `j` as a contiguous slice.
    pub fn col_mut(&mut self, j: usize) -> &mut [f64] {
        assert!(j < self.cols, "col {j} out of bounds ({} cols)", self.cols);
        &mut self.data[j * self.rows..(j + 1) * self.rows]
    }

    /// Entry at `(i, j)`.
    pub fn get(&self, i: usize, j: usize) -> f64 {
        assert!(
            i < self.rows && j < self.cols,
            "index ({i},{j}) out of bounds"
        );
        self.data[j * self.rows + i]
    }

    /// Sets the entry at `(i, j)`.
    pub fn set(&mut self, i: usize, j: usize, v: f64) {
        assert!(
            i < self.rows && j < self.cols,
            "index ({i},{j}) out of bounds"
        );
        self.data[j * self.rows + i] = v;
    }

    /// Copies row `i` into `out` (a gather across columns — only for
    /// tests and scalar fallbacks, never the batched hot path).
    pub fn row_into(&self, i: usize, out: &mut Vec<f64>) {
        assert!(i < self.rows, "row {i} out of bounds ({} rows)", self.rows);
        out.clear();
        out.extend((0..self.cols).map(|j| self.data[j * self.rows + i]));
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;
    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        assert!(
            i < self.rows && j < self.cols,
            "index ({i},{j}) out of bounds"
        );
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        assert!(
            i < self.rows && j < self.cols,
            "index ({i},{j}) out of bounds"
        );
        &mut self.data[i * self.cols + j]
    }
}

impl Mul<&Matrix> for &Matrix {
    type Output = Matrix;
    fn mul(self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.cols, rhs.rows, "dimension mismatch in matrix multiply");
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(i, k)];
                if a == 0.0 {
                    continue;
                }
                for j in 0..rhs.cols {
                    out[(i, j)] += a * rhs[(k, j)];
                }
            }
        }
        out
    }
}

impl Add<&Matrix> for &Matrix {
    type Output = Matrix;
    fn add(self, rhs: &Matrix) -> Matrix {
        let mut out = self.clone();
        out.add_assign(rhs);
        out
    }
}

impl Sub<&Matrix> for &Matrix {
    type Output = Matrix;
    fn sub(self, rhs: &Matrix) -> Matrix {
        assert_eq!(
            (self.rows, self.cols),
            (rhs.rows, rhs.cols),
            "shape mismatch"
        );
        let mut out = self.clone();
        for (a, b) in out.data.iter_mut().zip(&rhs.data) {
            *a -= b;
        }
        out
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        for i in 0..self.rows {
            write!(f, "  ")?;
            for j in 0..self.cols {
                write!(f, "{:>10.4} ", self[(i, j)])?;
            }
            writeln!(f)?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_times_anything_is_identity_op() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let i = Matrix::identity(2);
        assert_eq!(&i * &a, a);
        assert_eq!(&a * &i, a);
    }

    #[test]
    fn multiply_known_values() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = &a * &b;
        assert_eq!(c, Matrix::from_rows(&[&[19.0, 22.0], &[43.0, 50.0]]));
    }

    #[test]
    fn transpose_flips_indices() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        let t = a.transpose();
        assert_eq!(t.rows(), 3);
        assert_eq!(t.cols(), 2);
        assert_eq!(t[(2, 1)], 6.0);
        assert_eq!(t.transpose(), a);
    }

    #[test]
    fn mat_vec_known_values() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert_eq!(a.mat_vec(&[1.0, 1.0]), vec![3.0, 7.0]);
    }

    #[test]
    fn principal_submatrix_extracts_block() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0], &[7.0, 8.0, 9.0]]);
        let b = a.principal_submatrix(1, 2);
        assert_eq!(b, Matrix::from_rows(&[&[5.0, 6.0], &[8.0, 9.0]]));
    }

    #[test]
    fn symmetrize_averages_off_diagonal() {
        let mut a = Matrix::from_rows(&[&[1.0, 2.0], &[4.0, 1.0]]);
        a.symmetrize();
        assert_eq!(a[(0, 1)], 3.0);
        assert_eq!(a[(1, 0)], 3.0);
    }

    #[test]
    fn trace_sums_diagonal() {
        let a = Matrix::from_rows(&[&[1.0, 9.0], &[9.0, 2.0]]);
        assert_eq!(a.trace(), 3.0);
    }

    #[test]
    fn from_diag_builds_diagonal() {
        let d = Matrix::from_diag(&[2.0, 3.0]);
        assert_eq!(d[(0, 0)], 2.0);
        assert_eq!(d[(1, 1)], 3.0);
        assert_eq!(d[(0, 1)], 0.0);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn multiply_shape_mismatch_panics() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = &a * &b;
    }

    #[test]
    fn sub_and_max_abs_diff() {
        let a = Matrix::from_rows(&[&[1.0, 2.0]]);
        let b = Matrix::from_rows(&[&[0.5, 4.0]]);
        let d = &a - &b;
        assert_eq!(d, Matrix::from_rows(&[&[0.5, -2.0]]));
        assert_eq!(a.max_abs_diff(&b), 2.0);
    }

    #[test]
    fn non_finite_detection() {
        let mut a = Matrix::zeros(1, 2);
        assert!(!a.has_non_finite());
        a[(0, 1)] = f64::NAN;
        assert!(a.has_non_finite());
    }
}
