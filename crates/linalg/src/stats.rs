//! Weighted statistics used by the ZeroER M-step.
//!
//! The closed-form M-step updates of the paper (Eq. 8 / Eq. 11) are
//! *responsibility-weighted* sample statistics: each row of the feature
//! matrix contributes with weight `γ_i` (match class) or `1 − γ_i`
//! (unmatch class). The functions here compute those statistics plus the
//! Pearson-correlation decomposition of §4 and the min-max normalization
//! of §6.

use crate::matrix::Matrix;
use crate::VARIANCE_FLOOR;

/// Responsibility-weighted mean of the rows of `x`.
///
/// Returns the zero vector when the total weight is (near) zero — the
/// caller is expected to treat an empty class as degenerate.
///
/// # Panics
/// Panics if `weights.len() != x.rows()`.
pub fn weighted_mean(x: &Matrix, weights: &[f64]) -> Vec<f64> {
    assert_eq!(weights.len(), x.rows(), "one weight per row required");
    let d = x.cols();
    let mut mean = vec![0.0; d];
    let mut total = 0.0;
    for (i, &w) in weights.iter().enumerate() {
        total += w;
        let row = x.row(i);
        for (m, &v) in mean.iter_mut().zip(row) {
            *m += w * v;
        }
    }
    if total > f64::EPSILON {
        for m in &mut mean {
            *m /= total;
        }
    }
    mean
}

/// Responsibility-weighted sample covariance `S = Σ w_i (x_i−µ)(x_i−µ)ᵀ / Σ w_i`
/// over the full feature dimensionality (Eq. 8).
///
/// # Panics
/// Panics if `weights.len() != x.rows()` or `mean.len() != x.cols()`.
pub fn weighted_covariance(x: &Matrix, weights: &[f64], mean: &[f64]) -> Matrix {
    assert_eq!(weights.len(), x.rows(), "one weight per row required");
    assert_eq!(mean.len(), x.cols(), "mean dimensionality mismatch");
    let d = x.cols();
    let mut cov = Matrix::zeros(d, d);
    let mut total = 0.0;
    let mut diff = vec![0.0; d];
    for (i, &w) in weights.iter().enumerate() {
        if w == 0.0 {
            continue;
        }
        total += w;
        let row = x.row(i);
        for (dst, (&v, &m)) in diff.iter_mut().zip(row.iter().zip(mean)) {
            *dst = v - m;
        }
        for a in 0..d {
            let wa = w * diff[a];
            // Fill the upper triangle only; mirror afterwards.
            for b in a..d {
                cov[(a, b)] += wa * diff[b];
            }
        }
    }
    if total > f64::EPSILON {
        cov.scale_mut(1.0 / total);
    }
    for a in 0..d {
        for b in 0..a {
            cov[(a, b)] = cov[(b, a)];
        }
    }
    cov
}

/// Responsibility-weighted per-column variances (the diagonal of
/// [`weighted_covariance`], computed without forming the full matrix).
pub fn weighted_variances(x: &Matrix, weights: &[f64], mean: &[f64]) -> Vec<f64> {
    assert_eq!(weights.len(), x.rows(), "one weight per row required");
    assert_eq!(mean.len(), x.cols(), "mean dimensionality mismatch");
    let d = x.cols();
    let mut var = vec![0.0; d];
    let mut total = 0.0;
    for (i, &w) in weights.iter().enumerate() {
        if w == 0.0 {
            continue;
        }
        total += w;
        for (j, (&v, &m)) in x.row(i).iter().zip(mean).enumerate() {
            let dlt = v - m;
            var[j] += w * dlt * dlt;
        }
    }
    if total > f64::EPSILON {
        for v in &mut var {
            *v /= total;
        }
    }
    var
}

/// Converts a covariance matrix to a Pearson correlation matrix
/// `R = Λ⁻¹ S Λ⁻¹` with `Λ = diag(√S[j,j])`.
///
/// Columns with (near-)zero variance get correlation 0 with everything and
/// 1 with themselves, which keeps the matrix well defined for degenerate
/// features (the same convention the recordlinkage literature uses).
pub fn covariance_to_correlation(cov: &Matrix) -> Matrix {
    assert!(cov.is_square(), "correlation of non-square covariance");
    let d = cov.rows();
    let sd: Vec<f64> = (0..d)
        .map(|j| {
            let v = cov[(j, j)];
            if v > VARIANCE_FLOOR {
                v.sqrt()
            } else {
                0.0
            }
        })
        .collect();
    let mut r = Matrix::identity(d);
    for i in 0..d {
        for j in 0..d {
            if i != j && sd[i] > 0.0 && sd[j] > 0.0 {
                // Clamp: floating error can push |r| microscopically past 1.
                r[(i, j)] = (cov[(i, j)] / (sd[i] * sd[j])).clamp(-1.0, 1.0);
            }
        }
    }
    r
}

/// Rebuilds a covariance matrix from per-feature standard deviations and a
/// shared correlation matrix: `S = Λ R Λ` (Eq. 15, the class-imbalance
/// decomposition of §4).
///
/// # Panics
/// Panics if `sd.len() != r.rows()`.
pub fn correlation_to_covariance(r: &Matrix, sd: &[f64]) -> Matrix {
    assert!(r.is_square(), "non-square correlation matrix");
    assert_eq!(sd.len(), r.rows(), "sd dimensionality mismatch");
    let d = sd.len();
    let mut cov = Matrix::zeros(d, d);
    for i in 0..d {
        for j in 0..d {
            cov[(i, j)] = r[(i, j)] * sd[i] * sd[j];
        }
    }
    cov
}

/// The one min-max replay rule (§6): scales `v` by the `(lo, hi)` range,
/// clamping to `[0, 1]`; a degenerate span (`hi <= lo`) maps everything
/// to 0 (there is no scale to recover).
///
/// Both the batch replay path ([`apply_min_max`]) and the frozen-snapshot
/// row preparation (`zeroer_core::ModelSnapshot::prepare_row`) call this
/// single function, so the clamp/degenerate-span semantics cannot drift.
#[inline]
pub fn min_max_scale(v: f64, lo: f64, hi: f64) -> f64 {
    let span = hi - lo;
    if span > 0.0 {
        ((v - lo) / span).clamp(0.0, 1.0)
    } else {
        0.0
    }
}

/// Per-column min-max normalization to `[0, 1]` (§6), in place.
///
/// Constant columns are mapped to all-zeros (there is no scale to recover);
/// returns the per-column `(min, max)` pairs so test data can be
/// normalized consistently with training data.
pub fn min_max_normalize(x: &mut Matrix) -> Vec<(f64, f64)> {
    let (n, d) = (x.rows(), x.cols());
    let mut ranges = Vec::with_capacity(d);
    for j in 0..d {
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for i in 0..n {
            let v = x[(i, j)];
            lo = lo.min(v);
            hi = hi.max(v);
        }
        if n == 0 {
            lo = 0.0;
            hi = 0.0;
        }
        ranges.push((lo, hi));
        let span = hi - lo;
        for i in 0..n {
            x[(i, j)] = if span > 0.0 {
                (x[(i, j)] - lo) / span
            } else {
                0.0
            };
        }
    }
    ranges
}

/// Applies previously computed min-max `ranges` to new data, clamping to
/// `[0, 1]` so out-of-range test values cannot destabilize the model.
pub fn apply_min_max(x: &mut Matrix, ranges: &[(f64, f64)]) {
    assert_eq!(ranges.len(), x.cols(), "one range per column required");
    for j in 0..x.cols() {
        let (lo, hi) = ranges[j];
        for i in 0..x.rows() {
            x[(i, j)] = min_max_scale(x[(i, j)], lo, hi);
        }
    }
}

/// Euclidean norm of a row vector.
pub fn l2_norm(v: &[f64]) -> f64 {
    v.iter().map(|x| x * x).sum::<f64>().sqrt()
}

/// Numerically stable `log(Σ exp(vals))`.
pub fn log_sum_exp(vals: &[f64]) -> f64 {
    let m = vals.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    if m == f64::NEG_INFINITY {
        return f64::NEG_INFINITY;
    }
    m + vals.iter().map(|v| (v - m).exp()).sum::<f64>().ln()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> Matrix {
        Matrix::from_rows(&[&[1.0, 10.0], &[2.0, 20.0], &[3.0, 30.0]])
    }

    #[test]
    fn weighted_mean_uniform_weights_is_plain_mean() {
        let x = toy();
        let m = weighted_mean(&x, &[1.0, 1.0, 1.0]);
        assert_eq!(m, vec![2.0, 20.0]);
    }

    #[test]
    fn weighted_mean_skewed_weights() {
        let x = toy();
        let m = weighted_mean(&x, &[0.0, 0.0, 2.0]);
        assert_eq!(m, vec![3.0, 30.0]);
    }

    #[test]
    fn weighted_mean_zero_weights_is_zero_vector() {
        let x = toy();
        assert_eq!(weighted_mean(&x, &[0.0, 0.0, 0.0]), vec![0.0, 0.0]);
    }

    #[test]
    fn covariance_uniform_weights_matches_population_covariance() {
        let x = toy();
        let mean = weighted_mean(&x, &[1.0; 3]);
        let cov = weighted_covariance(&x, &[1.0; 3], &mean);
        // Var(col0) = (1+0+1)/3 = 2/3; Cov = 20/3; Var(col1) = 200/3.
        assert!((cov[(0, 0)] - 2.0 / 3.0).abs() < 1e-12);
        assert!((cov[(0, 1)] - 20.0 / 3.0).abs() < 1e-12);
        assert!((cov[(1, 1)] - 200.0 / 3.0).abs() < 1e-12);
        assert_eq!(cov[(0, 1)], cov[(1, 0)]);
    }

    #[test]
    fn variances_match_covariance_diagonal() {
        let x = toy();
        let w = [0.2, 0.5, 0.3];
        let mean = weighted_mean(&x, &w);
        let cov = weighted_covariance(&x, &w, &mean);
        let var = weighted_variances(&x, &w, &mean);
        for j in 0..2 {
            assert!((var[j] - cov[(j, j)]).abs() < 1e-12);
        }
    }

    #[test]
    fn perfectly_correlated_columns_have_unit_correlation() {
        let x = toy();
        let mean = weighted_mean(&x, &[1.0; 3]);
        let cov = weighted_covariance(&x, &[1.0; 3], &mean);
        let r = covariance_to_correlation(&cov);
        assert!((r[(0, 1)] - 1.0).abs() < 1e-12);
        assert_eq!(r[(0, 0)], 1.0);
    }

    #[test]
    fn correlation_roundtrip_recovers_covariance() {
        let x = Matrix::from_rows(&[
            &[1.0, 2.0, 0.5],
            &[2.0, 1.0, 0.25],
            &[3.0, 5.0, 0.9],
            &[0.5, 2.5, 0.1],
        ]);
        let mean = weighted_mean(&x, &[1.0; 4]);
        let cov = weighted_covariance(&x, &[1.0; 4], &mean);
        let r = covariance_to_correlation(&cov);
        let sd: Vec<f64> = cov.diag().iter().map(|v| v.sqrt()).collect();
        let rebuilt = correlation_to_covariance(&r, &sd);
        assert!(rebuilt.max_abs_diff(&cov) < 1e-10);
    }

    #[test]
    fn degenerate_column_gets_zero_correlation() {
        let x = Matrix::from_rows(&[&[1.0, 5.0], &[2.0, 5.0], &[3.0, 5.0]]);
        let mean = weighted_mean(&x, &[1.0; 3]);
        let cov = weighted_covariance(&x, &[1.0; 3], &mean);
        let r = covariance_to_correlation(&cov);
        assert_eq!(r[(0, 1)], 0.0);
        assert_eq!(r[(1, 1)], 1.0);
    }

    #[test]
    fn min_max_normalizes_to_unit_interval() {
        let mut x = toy();
        let ranges = min_max_normalize(&mut x);
        assert_eq!(ranges, vec![(1.0, 3.0), (10.0, 30.0)]);
        assert_eq!(x[(0, 0)], 0.0);
        assert_eq!(x[(2, 0)], 1.0);
        assert_eq!(x[(1, 1)], 0.5);
    }

    #[test]
    fn min_max_constant_column_becomes_zero() {
        let mut x = Matrix::from_rows(&[&[7.0], &[7.0]]);
        min_max_normalize(&mut x);
        assert_eq!(x[(0, 0)], 0.0);
        assert_eq!(x[(1, 0)], 0.0);
    }

    #[test]
    fn apply_min_max_clamps_out_of_range() {
        let mut x = Matrix::from_rows(&[&[5.0], &[-5.0]]);
        apply_min_max(&mut x, &[(0.0, 1.0)]);
        assert_eq!(x[(0, 0)], 1.0);
        assert_eq!(x[(1, 0)], 0.0);
    }

    #[test]
    fn log_sum_exp_stable_for_large_values() {
        let v = [1000.0, 1000.0];
        assert!((log_sum_exp(&v) - (1000.0 + 2.0f64.ln())).abs() < 1e-9);
        assert_eq!(log_sum_exp(&[]), f64::NEG_INFINITY);
    }

    #[test]
    fn l2_norm_known_value() {
        assert_eq!(l2_norm(&[3.0, 4.0]), 5.0);
    }
}
