//! A minimal JSON *writer* — just enough to emit metrics snapshots
//! and bench reports without a serialization dependency. Intentional
//! non-goals: parsing (tests use `zeroer-core`'s reader) and
//! pretty-printing.
//!
//! `u64` values are written exactly (they may exceed 2^53; readers
//! that parse numbers as `f64` will round the top bits of such
//! values, which in practice only affects the unbounded last
//! histogram-bucket bound). `f64` values use Rust's shortest
//! round-trip formatting; non-finite values become `null`.

use std::fmt::Write as _;

/// Escapes `s` as the contents of a JSON string literal (without the
/// surrounding quotes).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Renders an `f64` as a JSON value: shortest round-trip formatting,
/// with non-finite values mapped to `null`.
pub fn f64_value(v: f64) -> String {
    if v.is_finite() {
        let s = format!("{v:?}");
        // `{:?}` prints integral floats as e.g. `3.0`, which is
        // already valid JSON; nothing more to do.
        s
    } else {
        "null".to_owned()
    }
}

/// An incremental JSON object writer.
///
/// ```
/// use zeroer_obs::json::Obj;
/// let mut o = Obj::new();
/// o.str("name", "demo").u64("count", 3).f64("mean", 1.5);
/// assert_eq!(o.finish(), r#"{"name":"demo","count":3,"mean":1.5}"#);
/// ```
#[derive(Debug, Default)]
pub struct Obj {
    buf: String,
    fields: usize,
}

impl Obj {
    /// Starts an empty object.
    pub fn new() -> Self {
        Obj::default()
    }

    fn key(&mut self, key: &str) {
        if self.fields > 0 {
            self.buf.push(',');
        }
        self.fields += 1;
        let _ = write!(self.buf, "\"{}\":", escape(key));
    }

    /// Adds a pre-rendered JSON value (e.g. a nested object).
    pub fn raw(&mut self, key: &str, value: &str) -> &mut Self {
        self.key(key);
        self.buf.push_str(value);
        self
    }

    /// Adds a string field.
    pub fn str(&mut self, key: &str, value: &str) -> &mut Self {
        self.key(key);
        let _ = write!(self.buf, "\"{}\"", escape(value));
        self
    }

    /// Adds an unsigned integer field (written exactly).
    pub fn u64(&mut self, key: &str, value: u64) -> &mut Self {
        self.key(key);
        let _ = write!(self.buf, "{value}");
        self
    }

    /// Adds a float field (`null` if non-finite).
    pub fn f64(&mut self, key: &str, value: f64) -> &mut Self {
        self.key(key);
        self.buf.push_str(&f64_value(value));
        self
    }

    /// Adds a boolean field.
    pub fn bool(&mut self, key: &str, value: bool) -> &mut Self {
        self.key(key);
        self.buf.push_str(if value { "true" } else { "false" });
        self
    }

    /// Closes the object and returns the rendered JSON.
    pub fn finish(&self) -> String {
        format!("{{{}}}", self.buf)
    }
}

/// An incremental JSON array writer.
#[derive(Debug, Default)]
pub struct Arr {
    buf: String,
    items: usize,
}

impl Arr {
    /// Starts an empty array.
    pub fn new() -> Self {
        Arr::default()
    }

    /// Appends a pre-rendered JSON value.
    pub fn raw(&mut self, value: &str) -> &mut Self {
        if self.items > 0 {
            self.buf.push(',');
        }
        self.items += 1;
        self.buf.push_str(value);
        self
    }

    /// Appends an unsigned integer (written exactly).
    pub fn u64(&mut self, value: u64) -> &mut Self {
        let rendered = value.to_string();
        self.raw(&rendered)
    }

    /// Closes the array and returns the rendered JSON.
    pub fn finish(&self) -> String {
        format!("[{}]", self.buf)
    }
}
