//! # zeroer-obs — zero-dependency metrics and stage tracing
//!
//! A process-global registry of atomically updated [`Counter`]s,
//! [`Gauge`]s and fixed-bucket latency [`Histogram`]s, plus a
//! lightweight stage-timing API ([`time`], [`Stopwatch`]) used to
//! instrument the batch and streaming ZeroER pipelines.
//!
//! Design constraints, in order:
//!
//! 1. **Observational only.** Nothing in this crate feeds back into
//!    matching decisions; pipelines must produce bit-identical
//!    clusters, posteriors and snapshots with metrics on, off, or
//!    contended across threads. All state is `u64` atomics updated
//!    with `Relaxed` ordering — cross-metric consistency is not
//!    needed, only per-metric monotonicity.
//! 2. **No dependencies.** The workspace is built offline; this crate
//!    uses `std` only, including its own minimal JSON *writer* (see
//!    [`json`]). Tests parse the output back with `zeroer-core`'s
//!    reader to prove the round trip.
//! 3. **Branch-cheap when disabled.** [`set_enabled`]`(false)` turns
//!    [`time`] and [`Histogram::record`] into a relaxed load plus a
//!    branch; pipelines additionally resolve their handles once and
//!    store them as `Option<…>` so a disabled pipeline never touches
//!    the registry on the hot path.
//!
//! Handles returned by [`counter`] / [`gauge`] / [`histogram`] are
//! `&'static`: the registry leaks one small allocation per distinct
//! metric name (bounded by name cardinality, which is fixed at compile
//! time for the ZeroER pipelines) so handles can be copied into worker
//! threads without lifetimes or reference counting.
//!
//! The JSON schema emitted by [`to_json`] is documented in this
//! crate's `README.md` and is self-checked by
//! [`MetricsSnapshot::self_check`].

#![warn(missing_docs)]

pub mod json;
mod metric;
mod registry;
mod snapshot;

pub use metric::{bucket_bound, bucket_of, Counter, Gauge, Histogram, StageTimer, BUCKETS};
pub use snapshot::{HistogramSnapshot, MetricsSnapshot, SCHEMA};

use std::sync::atomic::{AtomicBool, Ordering};

static ENABLED: AtomicBool = AtomicBool::new(true);

/// Globally enables or disables metric recording.
///
/// When disabled, [`time`] runs its closure without reading the clock
/// and [`Histogram::record`] / [`Counter::add`] / [`Gauge::set`]
/// return immediately. Registration ([`counter`] etc.) still works so
/// handles can be resolved up front regardless of the flag.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Whether metric recording is currently enabled (default: enabled).
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Returns the process-global counter registered under `name`,
/// creating it (initialised to zero) on first use.
pub fn counter(name: &str) -> &'static Counter {
    registry::global().counter(name)
}

/// Returns the process-global gauge registered under `name`, creating
/// it (initialised to zero) on first use.
pub fn gauge(name: &str) -> &'static Gauge {
    registry::global().gauge(name)
}

/// Returns the process-global histogram registered under `name`,
/// creating it (empty) on first use.
///
/// By convention names ending in `.ns` hold nanosecond latencies and
/// names ending in `.bytes` hold sizes; anything else is a plain
/// count distribution. The convention only affects the `unit` field
/// in the JSON output.
pub fn histogram(name: &str) -> &'static Histogram {
    registry::global().histogram(name)
}

/// Times `f` into the histogram registered under `name`.
///
/// This is the convenience span API for cold paths (snapshot
/// save/load, batch model fits): it does a registry lookup per call.
/// Hot paths should resolve a [`histogram`] handle once and use
/// [`Histogram::time`] or a [`Stopwatch`] instead. When recording is
/// disabled the closure runs without reading the clock.
pub fn time<T>(name: &str, f: impl FnOnce() -> T) -> T {
    if !enabled() {
        return f();
    }
    histogram(name).time(f)
}

/// Captures the current value of every registered metric.
pub fn snapshot() -> MetricsSnapshot {
    registry::global().snapshot()
}

/// Renders the current registry contents as a JSON document in the
/// `zeroer-metrics-v1` schema (see `crates/obs/README.md`).
pub fn to_json() -> String {
    let snap = snapshot();
    debug_assert!(
        snap.self_check().is_ok(),
        "metrics snapshot failed self-check"
    );
    snap.to_json()
}

/// Resets every registered metric to its initial state (counters and
/// gauges to zero, histograms to empty). Registered names survive a
/// reset. Intended for benchmarks that measure one section at a time;
/// concurrent recorders may interleave with the reset.
pub fn reset() {
    registry::global().reset();
}

/// Resident set size of the current process in bytes, read from
/// `/proc/self/status` (`VmRSS`). Returns `None` on platforms without
/// procfs or if the field is missing.
pub fn rss_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmRSS:") {
            let kb: u64 = rest.trim().trim_end_matches("kB").trim().parse().ok()?;
            return Some(kb * 1024);
        }
    }
    None
}

/// A lap timer for multi-stage instrumentation.
///
/// Constructed with `enabled = false` it never reads the clock, so an
/// uninstrumented pipeline pays one branch per stage boundary:
///
/// ```
/// let meters = true; // e.g. `self.meters.is_some()`
/// let mut sw = zeroer_obs::Stopwatch::new(meters);
/// // ... stage 1 ...
/// sw.lap(zeroer_obs::histogram("doc.stage1.ns"));
/// // ... stage 2 ...
/// sw.lap(zeroer_obs::histogram("doc.stage2.ns"));
/// sw.total(zeroer_obs::histogram("doc.total.ns"));
/// ```
#[derive(Debug)]
pub struct Stopwatch {
    start: Option<std::time::Instant>,
    last: Option<std::time::Instant>,
}

impl Stopwatch {
    /// Starts a stopwatch; a disabled stopwatch records nothing.
    pub fn new(enabled: bool) -> Self {
        let now = enabled.then(std::time::Instant::now);
        Stopwatch {
            start: now,
            last: now,
        }
    }

    /// Records the time since the previous lap (or construction) into
    /// `h` and restarts the lap clock.
    pub fn lap(&mut self, h: &Histogram) {
        if let Some(last) = self.last {
            let now = std::time::Instant::now();
            h.record(duration_ns(now - last));
            self.last = Some(now);
        }
    }

    /// Records the total time since construction into `h`.
    pub fn total(&self, h: &Histogram) {
        if let Some(start) = self.start {
            h.record(duration_ns(start.elapsed()));
        }
    }
}

pub(crate) fn duration_ns(d: std::time::Duration) -> u64 {
    u64::try_from(d.as_nanos()).unwrap_or(u64::MAX)
}
