//! The three metric primitives: counters, gauges and log2-bucket
//! histograms. All state is `u64` atomics with `Relaxed` ordering —
//! metrics are observational, so per-metric monotonicity is the only
//! consistency required.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use crate::snapshot::HistogramSnapshot;

const RELAXED: Ordering = Ordering::Relaxed;

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Creates a counter at zero.
    pub const fn new() -> Self {
        Counter(AtomicU64::new(0))
    }

    /// Adds `n` to the counter. A no-op while recording is disabled.
    pub fn add(&self, n: u64) {
        if crate::enabled() {
            self.0.fetch_add(n, RELAXED);
        }
    }

    /// Adds one to the counter. A no-op while recording is disabled.
    pub fn incr(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(RELAXED)
    }

    pub(crate) fn reset(&self) {
        self.0.store(0, RELAXED);
    }
}

/// A last-value-wins gauge for point-in-time quantities (live
/// records, posting counts, interner bytes).
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// Creates a gauge at zero.
    pub const fn new() -> Self {
        Gauge(AtomicU64::new(0))
    }

    /// Sets the gauge. A no-op while recording is disabled.
    pub fn set(&self, v: u64) {
        if crate::enabled() {
            self.0.store(v, RELAXED);
        }
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(RELAXED)
    }

    pub(crate) fn reset(&self) {
        self.0.store(0, RELAXED);
    }
}

/// Number of histogram buckets. Bucket `b > 0` covers values in
/// `[2^(b-1), 2^b)`; bucket `0` covers exactly `{0}`; the last bucket
/// is unbounded above. 64 buckets cover the full `u64` range, which
/// at nanosecond resolution spans sub-nanosecond to ~584 years.
pub const BUCKETS: usize = 64;

/// Bucket index for a value.
pub fn bucket_of(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        ((64 - v.leading_zeros()) as usize).min(BUCKETS - 1)
    }
}

/// Inclusive upper bound of bucket `b` (`u64::MAX` for the last).
pub fn bucket_bound(b: usize) -> u64 {
    if b == 0 {
        0
    } else if b >= BUCKETS - 1 {
        u64::MAX
    } else {
        (1u64 << b) - 1
    }
}

/// A fixed-bucket histogram with power-of-two bucket bounds.
///
/// Tracks count, sum, min and max exactly; percentiles are estimated
/// by linear interpolation inside the bucket containing the requested
/// rank (see [`HistogramSnapshot::percentile`]), clamped to the
/// observed `[min, max]`. Recording is wait-free: one `fetch_add` on
/// the bucket plus four scalar atomics.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    /// Records one observation. A no-op while recording is disabled.
    pub fn record(&self, v: u64) {
        if !crate::enabled() {
            return;
        }
        self.buckets[bucket_of(v)].fetch_add(1, RELAXED);
        self.count.fetch_add(1, RELAXED);
        self.sum.fetch_add(v, RELAXED);
        self.min.fetch_min(v, RELAXED);
        self.max.fetch_max(v, RELAXED);
    }

    /// Times `f` in nanoseconds into this histogram. When recording
    /// is disabled the closure runs without reading the clock.
    pub fn time<T>(&self, f: impl FnOnce() -> T) -> T {
        if !crate::enabled() {
            return f();
        }
        let start = Instant::now();
        let out = f();
        self.record(crate::duration_ns(start.elapsed()));
        out
    }

    /// Starts a span that records into this histogram when stopped
    /// (or dropped). Useful where a closure would fight the borrow
    /// checker.
    pub fn start(&self) -> StageTimer<'_> {
        StageTimer {
            hist: self,
            start: crate::enabled().then(Instant::now),
        }
    }

    /// Number of recorded observations.
    pub fn count(&self) -> u64 {
        self.count.load(RELAXED)
    }

    /// Copies the current state out. Concurrent recorders may leave
    /// the copy internally "torn" (e.g. count ahead of sum); the
    /// pipelines only snapshot at quiescent points.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let count = self.count.load(RELAXED);
        HistogramSnapshot {
            count,
            sum: self.sum.load(RELAXED),
            min: if count == 0 {
                0
            } else {
                self.min.load(RELAXED)
            },
            max: self.max.load(RELAXED),
            buckets: self.buckets.iter().map(|b| b.load(RELAXED)).collect(),
        }
    }

    pub(crate) fn reset(&self) {
        for b in &self.buckets {
            b.store(0, RELAXED);
        }
        self.count.store(0, RELAXED);
        self.sum.store(0, RELAXED);
        self.min.store(u64::MAX, RELAXED);
        self.max.store(0, RELAXED);
    }
}

/// An in-flight span created by [`Histogram::start`]; records its
/// elapsed nanoseconds into the histogram when dropped or explicitly
/// [`StageTimer::stop`]ped.
#[derive(Debug)]
pub struct StageTimer<'a> {
    hist: &'a Histogram,
    start: Option<Instant>,
}

impl StageTimer<'_> {
    /// Stops the span now, recording its duration.
    pub fn stop(self) {
        // Recording happens in `Drop`.
    }
}

impl Drop for StageTimer<'_> {
    fn drop(&mut self) {
        if let Some(start) = self.start.take() {
            self.hist.record(crate::duration_ns(start.elapsed()));
        }
    }
}
