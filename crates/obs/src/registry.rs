//! The process-global metric registry: three name → handle maps
//! behind mutexes. Lookups happen at pipeline construction (or on
//! cold paths), never per record, so a plain `Mutex<BTreeMap>` is
//! plenty. Handles are leaked `Box`es — one small allocation per
//! distinct metric name for the life of the process — which is what
//! makes `&'static` handles possible without reference counting.

use std::collections::BTreeMap;
use std::sync::{Mutex, OnceLock};

use crate::metric::{Counter, Gauge, Histogram};
use crate::snapshot::MetricsSnapshot;

pub(crate) struct Registry {
    counters: Mutex<BTreeMap<String, &'static Counter>>,
    gauges: Mutex<BTreeMap<String, &'static Gauge>>,
    histograms: Mutex<BTreeMap<String, &'static Histogram>>,
}

pub(crate) fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(|| Registry {
        counters: Mutex::new(BTreeMap::new()),
        gauges: Mutex::new(BTreeMap::new()),
        histograms: Mutex::new(BTreeMap::new()),
    })
}

fn intern<T: Default>(map: &Mutex<BTreeMap<String, &'static T>>, name: &str) -> &'static T {
    let mut map = map.lock().expect("metric registry poisoned");
    if let Some(&handle) = map.get(name) {
        return handle;
    }
    let handle: &'static T = Box::leak(Box::default());
    map.insert(name.to_owned(), handle);
    handle
}

impl Registry {
    pub(crate) fn counter(&self, name: &str) -> &'static Counter {
        intern(&self.counters, name)
    }

    pub(crate) fn gauge(&self, name: &str) -> &'static Gauge {
        intern(&self.gauges, name)
    }

    pub(crate) fn histogram(&self, name: &str) -> &'static Histogram {
        intern(&self.histograms, name)
    }

    pub(crate) fn snapshot(&self) -> MetricsSnapshot {
        let counters = self
            .counters
            .lock()
            .expect("metric registry poisoned")
            .iter()
            .map(|(name, c)| (name.clone(), c.get()))
            .collect();
        let gauges = self
            .gauges
            .lock()
            .expect("metric registry poisoned")
            .iter()
            .map(|(name, g)| (name.clone(), g.get()))
            .collect();
        let histograms = self
            .histograms
            .lock()
            .expect("metric registry poisoned")
            .iter()
            .map(|(name, h)| (name.clone(), h.snapshot()))
            .collect();
        MetricsSnapshot {
            counters,
            gauges,
            histograms,
        }
    }

    pub(crate) fn reset(&self) {
        for c in self
            .counters
            .lock()
            .expect("metric registry poisoned")
            .values()
        {
            c.reset();
        }
        for g in self
            .gauges
            .lock()
            .expect("metric registry poisoned")
            .values()
        {
            g.reset();
        }
        for h in self
            .histograms
            .lock()
            .expect("metric registry poisoned")
            .values()
        {
            h.reset();
        }
    }
}
