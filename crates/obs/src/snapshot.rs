//! Point-in-time copies of the registry: mergeable histogram
//! snapshots with percentile estimation, and the full
//! `zeroer-metrics-v1` JSON rendering with its schema self-check.

use crate::json::{Arr, Obj};
use crate::metric::{bucket_bound, BUCKETS};

/// A copied-out histogram: exact count/sum/min/max plus the bucket
/// occupancy vector (always [`BUCKETS`] long).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Number of observations.
    pub count: u64,
    /// Sum of all observations.
    pub sum: u64,
    /// Smallest observation (0 when empty).
    pub min: u64,
    /// Largest observation (0 when empty).
    pub max: u64,
    /// Per-bucket observation counts; bucket `b > 0` covers
    /// `[2^(b-1), 2^b)`, bucket 0 covers `{0}`, the last bucket is
    /// unbounded above.
    pub buckets: Vec<u64>,
}

impl HistogramSnapshot {
    /// An empty snapshot.
    pub fn empty() -> Self {
        HistogramSnapshot {
            count: 0,
            sum: 0,
            min: 0,
            max: 0,
            buckets: vec![0; BUCKETS],
        }
    }

    /// Mean observation (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Estimates the `p`-th percentile (`p` in 0..=100) by linear
    /// interpolation inside the bucket containing the requested rank,
    /// clamped to the observed `[min, max]`. A single-valued
    /// histogram therefore reports every percentile exactly; wider
    /// distributions are accurate to within one power-of-two bucket.
    pub fn percentile(&self, p: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let p = p.clamp(0.0, 100.0);
        let target = p / 100.0 * self.count as f64;
        let mut cum = 0u64;
        for (b, &c) in self.buckets.iter().enumerate() {
            if c == 0 {
                continue;
            }
            if (cum + c) as f64 >= target {
                let lo = if b == 0 {
                    0.0
                } else {
                    (1u128 << (b - 1)) as f64
                };
                let hi = if b + 1 >= BUCKETS {
                    u64::MAX as f64
                } else {
                    (1u128 << b) as f64
                };
                let frac = ((target - cum as f64) / c as f64).clamp(0.0, 1.0);
                let est = lo + frac * (hi - lo);
                return est.clamp(self.min as f64, self.max as f64);
            }
            cum += c;
        }
        self.max as f64
    }

    /// Accumulates `other` into `self` (bucket-wise sum; min/max
    /// widen). Merging then computing a percentile is equivalent to
    /// having recorded both series into one histogram.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        assert_eq!(
            self.buckets.len(),
            other.buckets.len(),
            "bucket layouts differ"
        );
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    fn to_json(&self, name: &str) -> String {
        let mut pairs = Arr::new();
        for (b, &c) in self.buckets.iter().enumerate() {
            if c > 0 {
                let mut pair = Arr::new();
                pair.u64(bucket_bound(b)).u64(c);
                pairs.raw(&pair.finish());
            }
        }
        let mut o = Obj::new();
        o.str("unit", unit_of(name))
            .u64("count", self.count)
            .u64("sum", self.sum)
            .u64("min", self.min)
            .u64("max", self.max)
            .f64("mean", self.mean())
            .f64("p50", self.percentile(50.0))
            .f64("p95", self.percentile(95.0))
            .f64("p99", self.percentile(99.0))
            .raw("buckets", &pairs.finish());
        o.finish()
    }
}

/// Metric-name suffix convention: `.ns` timers, `bytes` sizes,
/// everything else a plain count.
fn unit_of(name: &str) -> &'static str {
    if name.ends_with(".ns") {
        "ns"
    } else if name.ends_with("bytes") {
        "bytes"
    } else {
        "count"
    }
}

/// Identifier of the JSON layout emitted by
/// [`MetricsSnapshot::to_json`]; bumped only on breaking changes.
pub const SCHEMA: &str = "zeroer-metrics-v1";

/// A point-in-time copy of every registered metric, sorted by name
/// within each section.
#[derive(Debug, Clone, Default)]
pub struct MetricsSnapshot {
    /// `(name, value)` for every counter, name-ascending.
    pub counters: Vec<(String, u64)>,
    /// `(name, value)` for every gauge, name-ascending.
    pub gauges: Vec<(String, u64)>,
    /// `(name, state)` for every histogram, name-ascending.
    pub histograms: Vec<(String, HistogramSnapshot)>,
}

impl MetricsSnapshot {
    /// Looks up a counter value by name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        lookup(&self.counters, name).copied()
    }

    /// Looks up a gauge value by name.
    pub fn gauge(&self, name: &str) -> Option<u64> {
        lookup(&self.gauges, name).copied()
    }

    /// Looks up a histogram by name.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        lookup(&self.histograms, name)
    }

    /// Renders the snapshot in the `zeroer-metrics-v1` schema:
    ///
    /// ```json
    /// {
    ///   "schema": "zeroer-metrics-v1",
    ///   "counters": {"name": value, ...},
    ///   "gauges": {"name": value, ...},
    ///   "histograms": {
    ///     "name": {"unit": "ns", "count": n, "sum": s, "min": m,
    ///               "max": M, "mean": x, "p50": a, "p95": b,
    ///               "p99": c, "buckets": [[bound, count], ...]}
    ///   }
    /// }
    /// ```
    ///
    /// `buckets` lists only occupied buckets as `[inclusive upper
    /// bound, count]` pairs.
    pub fn to_json(&self) -> String {
        let mut counters = Obj::new();
        for (name, v) in &self.counters {
            counters.u64(name, *v);
        }
        let mut gauges = Obj::new();
        for (name, v) in &self.gauges {
            gauges.u64(name, *v);
        }
        let mut histograms = Obj::new();
        for (name, h) in &self.histograms {
            histograms.raw(name, &h.to_json(name));
        }
        let mut root = Obj::new();
        root.str("schema", SCHEMA)
            .raw("counters", &counters.finish())
            .raw("gauges", &gauges.finish())
            .raw("histograms", &histograms.finish());
        root.finish()
    }

    /// Validates the structural invariants the schema promises:
    /// sorted unique names, full-width bucket vectors whose sum
    /// equals `count`, `min <= max` and in-range mean/percentiles for
    /// non-empty histograms, all-zero scalars for empty ones.
    pub fn self_check(&self) -> Result<(), String> {
        check_sorted("counters", self.counters.iter().map(|(n, _)| n))?;
        check_sorted("gauges", self.gauges.iter().map(|(n, _)| n))?;
        check_sorted("histograms", self.histograms.iter().map(|(n, _)| n))?;
        for (name, h) in &self.histograms {
            if h.buckets.len() != BUCKETS {
                return Err(format!(
                    "histogram {name}: {} buckets, expected {BUCKETS}",
                    h.buckets.len()
                ));
            }
            let occupancy: u64 = h.buckets.iter().sum();
            if occupancy != h.count {
                return Err(format!(
                    "histogram {name}: bucket occupancy {occupancy} != count {}",
                    h.count
                ));
            }
            if h.count == 0 {
                if h.sum != 0 || h.min != 0 || h.max != 0 {
                    return Err(format!("histogram {name}: empty but nonzero scalars"));
                }
                continue;
            }
            if h.min > h.max {
                return Err(format!("histogram {name}: min {} > max {}", h.min, h.max));
            }
            for p in [50.0, 95.0, 99.0] {
                let v = h.percentile(p);
                if !v.is_finite() || v < h.min as f64 || v > h.max as f64 {
                    return Err(format!("histogram {name}: p{p} = {v} out of [min, max]"));
                }
            }
        }
        Ok(())
    }
}

fn lookup<'a, T>(entries: &'a [(String, T)], name: &str) -> Option<&'a T> {
    entries
        .binary_search_by(|(n, _)| n.as_str().cmp(name))
        .ok()
        .map(|i| &entries[i].1)
}

fn check_sorted<'a>(section: &str, names: impl Iterator<Item = &'a String>) -> Result<(), String> {
    let mut prev: Option<&String> = None;
    for name in names {
        if name.is_empty() {
            return Err(format!("{section}: empty metric name"));
        }
        if let Some(p) = prev {
            if p >= name {
                return Err(format!("{section}: names not strictly ascending at {name}"));
            }
        }
        prev = Some(name);
    }
    Ok(())
}
