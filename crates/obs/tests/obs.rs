//! Unit/integration tests for the metrics layer: primitive
//! semantics, bucket math, percentile interpolation, snapshot merge,
//! the JSON round trip (parsed back with `zeroer-core`'s reader) and
//! the schema self-check.

use zeroer_core::json::Json;
use zeroer_obs as obs;
use zeroer_obs::{bucket_bound, bucket_of, HistogramSnapshot, MetricsSnapshot, BUCKETS};

/// Tests in this binary share the process-global registry and the
/// global enabled flag, and cargo runs them on parallel threads; any
/// test that flips the flag (or asserts absolute registry contents)
/// must hold this lock so a concurrent test doesn't observe a
/// half-disabled world.
static ENABLED_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    ENABLED_LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

#[test]
fn counter_and_gauge_basics() {
    let _g = lock();
    let c = obs::counter("test.basics.counter");
    c.add(3);
    c.incr();
    assert_eq!(c.get(), 4);
    // Same name resolves to the same handle.
    assert_eq!(obs::counter("test.basics.counter").get(), 4);

    let g = obs::gauge("test.basics.gauge");
    g.set(17);
    g.set(5);
    assert_eq!(g.get(), 5);
}

#[test]
fn bucket_math_edges() {
    assert_eq!(bucket_of(0), 0);
    assert_eq!(bucket_of(1), 1);
    assert_eq!(bucket_of(2), 2);
    assert_eq!(bucket_of(3), 2);
    assert_eq!(bucket_of(4), 3);
    assert_eq!(bucket_of(u64::MAX), BUCKETS - 1);
    assert_eq!(bucket_bound(0), 0);
    assert_eq!(bucket_bound(1), 1);
    assert_eq!(bucket_bound(2), 3);
    assert_eq!(bucket_bound(BUCKETS - 1), u64::MAX);
    // Every value lands in the bucket whose bound covers it.
    for v in [0u64, 1, 2, 7, 8, 1023, 1024, 1 << 40] {
        let b = bucket_of(v);
        assert!(v <= bucket_bound(b), "value {v} above bound of bucket {b}");
        if b > 0 {
            assert!(
                v > bucket_bound(b - 1),
                "value {v} fits a lower bucket than {b}"
            );
        }
    }
}

#[test]
fn histogram_percentiles_interpolate_within_bucket_error() {
    let _g = lock();
    let h = obs::histogram("test.percentile.uniform");
    for v in 1..=1000u64 {
        h.record(v);
    }
    let snap = h.snapshot();
    assert_eq!(snap.count, 1000);
    assert_eq!(snap.sum, 500_500);
    assert_eq!(snap.min, 1);
    assert_eq!(snap.max, 1000);
    // Uniform 1..=1000: interpolation inside the log2 bucket keeps
    // the estimate close even though buckets are coarse.
    let p50 = snap.percentile(50.0);
    assert!((p50 - 500.0).abs() < 64.0, "p50 = {p50}");
    let p99 = snap.percentile(99.0);
    assert!((950.0..=1000.0).contains(&p99), "p99 = {p99}");
    // Percentiles are clamped to the observed range.
    assert!(snap.percentile(0.0) >= 1.0);
    assert!(snap.percentile(100.0) <= 1000.0);
}

#[test]
fn single_valued_histogram_reports_exact_percentiles() {
    let _g = lock();
    let h = obs::histogram("test.percentile.single");
    for _ in 0..5 {
        h.record(777);
    }
    let snap = h.snapshot();
    for p in [0.0, 50.0, 95.0, 99.0, 100.0] {
        assert_eq!(snap.percentile(p), 777.0, "p{p}");
    }
}

#[test]
fn empty_histogram_is_all_zero() {
    let snap = HistogramSnapshot::empty();
    assert_eq!(snap.count, 0);
    assert_eq!(snap.percentile(50.0), 0.0);
    assert_eq!(snap.mean(), 0.0);
}

#[test]
fn merge_equals_recording_into_one_histogram() {
    let _g = lock();
    let a = obs::histogram("test.merge.a");
    let b = obs::histogram("test.merge.b");
    let combined = obs::histogram("test.merge.combined");
    for v in [3u64, 90, 1_000_000, 7] {
        a.record(v);
        combined.record(v);
    }
    for v in [1u64, 0, 250_000, 40_000_000_000] {
        b.record(v);
        combined.record(v);
    }
    let mut merged = a.snapshot();
    merged.merge(&b.snapshot());
    assert_eq!(merged, combined.snapshot());
    for p in [50.0, 95.0, 99.0] {
        assert_eq!(merged.percentile(p), combined.snapshot().percentile(p));
    }
    // Merging an empty snapshot is the identity, both ways.
    let mut from_empty = HistogramSnapshot::empty();
    from_empty.merge(&merged);
    assert_eq!(from_empty, merged);
    let mut into_empty = merged.clone();
    into_empty.merge(&HistogramSnapshot::empty());
    assert_eq!(into_empty, merged);
}

#[test]
fn disabled_recording_is_a_no_op_but_closures_still_run() {
    let _g = lock();
    let c = obs::counter("test.disabled.counter");
    let ga = obs::gauge("test.disabled.gauge");
    let h = obs::histogram("test.disabled.hist");
    obs::set_enabled(false);
    c.add(10);
    ga.set(10);
    h.record(10);
    let mut ran = false;
    let out = obs::time("test.disabled.time", || {
        ran = true;
        42
    });
    obs::set_enabled(true);
    assert!(ran);
    assert_eq!(out, 42);
    assert_eq!(c.get(), 0);
    assert_eq!(ga.get(), 0);
    assert_eq!(h.snapshot().count, 0);
    assert_eq!(obs::histogram("test.disabled.time").snapshot().count, 0);
}

#[test]
fn stopwatch_and_stage_timer_record_laps() {
    let _g = lock();
    let lap1 = obs::histogram("test.sw.lap1");
    let lap2 = obs::histogram("test.sw.lap2");
    let total = obs::histogram("test.sw.total");
    let before = (lap1.count(), lap2.count(), total.count());
    let mut sw = obs::Stopwatch::new(true);
    sw.lap(lap1);
    sw.lap(lap2);
    sw.total(total);
    assert_eq!(lap1.count(), before.0 + 1);
    assert_eq!(lap2.count(), before.1 + 1);
    assert_eq!(total.count(), before.2 + 1);

    // A disabled stopwatch records nothing.
    let mut off = obs::Stopwatch::new(false);
    off.lap(lap1);
    off.total(total);
    assert_eq!(lap1.count(), before.0 + 1);
    assert_eq!(total.count(), before.2 + 1);

    // Guard-style span records on drop.
    let span = obs::histogram("test.sw.span");
    span.start().stop();
    {
        let _t = span.start();
    }
    assert_eq!(span.count(), 2);
}

#[test]
fn json_round_trips_through_the_core_reader() {
    let _g = lock();
    obs::counter("test.json.candidates").add(12);
    obs::gauge("test.json.live_bytes").set(4096);
    let h = obs::histogram("test.json.stage.ns");
    for v in [100u64, 200, 400, 800] {
        h.record(v);
    }
    let text = obs::to_json();
    let doc = Json::parse(&text).expect("metrics JSON parses");
    assert_eq!(
        doc.get("schema").and_then(Json::as_str),
        Some(zeroer_obs::SCHEMA)
    );
    let counters = doc.get("counters").expect("counters section");
    assert!(
        counters
            .get("test.json.candidates")
            .and_then(Json::as_usize)
            >= Some(12)
    );
    let gauges = doc.get("gauges").expect("gauges section");
    assert_eq!(
        gauges.get("test.json.live_bytes").and_then(Json::as_usize),
        Some(4096)
    );
    let hist = doc
        .get("histograms")
        .and_then(|h| h.get("test.json.stage.ns"))
        .expect("histogram entry");
    assert_eq!(hist.get("unit").and_then(Json::as_str), Some("ns"));
    let count = hist.get("count").and_then(Json::as_usize).expect("count");
    assert!(count >= 4);
    // Bucket pairs are [bound, count] and their occupancy matches.
    let buckets = hist.get("buckets").and_then(Json::as_arr).expect("buckets");
    let occupancy: usize = buckets
        .iter()
        .map(|p| p.as_arr().unwrap()[1].as_usize().unwrap())
        .sum();
    assert_eq!(occupancy, count);
    let p50 = hist.get("p50").and_then(Json::as_f64).expect("p50");
    assert!(p50 >= 100.0 && p50 <= 800.0, "p50 = {p50}");
}

#[test]
fn self_check_accepts_live_snapshots_and_rejects_corrupt_ones() {
    let _g = lock();
    obs::histogram("test.selfcheck.h").record(5);
    let snap = obs::snapshot();
    snap.self_check().expect("live snapshot passes self-check");

    // Bucket occupancy disagreeing with count is rejected.
    let mut broken = HistogramSnapshot::empty();
    broken.count = 3;
    let bad = MetricsSnapshot {
        counters: vec![],
        gauges: vec![],
        histograms: vec![("x".into(), broken)],
    };
    assert!(bad.self_check().is_err());

    // Unsorted names are rejected.
    let bad = MetricsSnapshot {
        counters: vec![("b".into(), 0), ("a".into(), 0)],
        gauges: vec![],
        histograms: vec![],
    };
    assert!(bad.self_check().is_err());
}

#[test]
fn json_builder_escapes_and_formats() {
    use zeroer_obs::json::{Arr, Obj};
    let mut o = Obj::new();
    o.str("quote\"key", "line\nbreak")
        .u64("big", u64::MAX)
        .f64("half", 0.5)
        .f64("bad", f64::NAN)
        .bool("on", true);
    let mut a = Arr::new();
    a.u64(1).u64(2);
    o.raw("arr", &a.finish());
    let text = o.finish();
    let doc = Json::parse(&text).expect("builder output parses");
    assert_eq!(
        doc.get("quote\"key").and_then(Json::as_str),
        Some("line\nbreak")
    );
    assert_eq!(doc.get("half").and_then(Json::as_f64), Some(0.5));
    assert_eq!(doc.get("bad"), Some(&Json::Null));
    assert_eq!(doc.get("on"), Some(&Json::Bool(true)));
    assert_eq!(
        doc.get("arr").and_then(Json::as_arr).map(<[Json]>::len),
        Some(2)
    );
}

#[test]
fn rss_is_reported_on_linux() {
    let rss = obs::rss_bytes();
    if cfg!(target_os = "linux") {
        assert!(rss.unwrap_or(0) > 0, "VmRSS should be readable: {rss:?}");
    }
}
