//! A small synchronous client for the serve protocol, used by the CLI
//! smoke path, the e2e tests, and `bench_serve`'s load generator.

use crate::protocol::{
    admin_request, ingest_request, link_resolve_request, read_frame, resolve_request, write_frame,
};
use std::io::{self, BufReader};
use std::net::{TcpStream, ToSocketAddrs};
use zeroer_core::json::Json;
use zeroer_tabular::Record;

/// A resolve response, parsed back into the shape of
/// [`zeroer_stream::ResolveOutcome`]. Posteriors round-trip through the
/// wire's shortest-round-trip formatting, so they compare bit-equal
/// (`f64::to_bits`) with in-process resolution.
#[derive(Debug, Clone)]
pub struct WireResolution {
    /// Epoch of the server-side view that answered.
    pub epoch: u64,
    /// Candidates the blocking probe produced.
    pub candidates: usize,
    /// Cluster representative, or `None` for a would-be new entity.
    pub cluster: Option<usize>,
    /// `(record index, posterior)` matches, sorted by descending
    /// posterior.
    pub matches: Vec<(usize, f64)>,
}

/// One ingest outcome, parsed back from the wire.
#[derive(Debug, Clone)]
pub struct WireIngest {
    /// Index the record was stored at.
    pub index: usize,
    /// Candidates its blocking probe produced.
    pub candidates: usize,
    /// Cluster representative after the merge.
    pub cluster: usize,
    /// Whether it minted a new entity.
    pub new_entity: bool,
    /// `(record index, posterior)` matches, sorted by descending
    /// posterior.
    pub matches: Vec<(usize, f64)>,
}

/// A blocking protocol client over one TCP connection.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

fn schema_err(message: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, message.into())
}

/// Pulls the server's error message out of an `"ok": false` response.
fn check_ok(response: &Json) -> io::Result<()> {
    match response.get("ok").and_then(Json::as_bool) {
        Some(true) => Ok(()),
        Some(false) => Err(schema_err(format!(
            "server error: {}",
            response
                .get("error")
                .and_then(Json::as_str)
                .unwrap_or("(no message)")
        ))),
        None => Err(schema_err("response carries no \"ok\"")),
    }
}

fn parse_matches(response: &Json) -> io::Result<Vec<(usize, f64)>> {
    let items = response
        .get("matches")
        .and_then(Json::as_arr)
        .ok_or_else(|| schema_err("response carries no \"matches\" array"))?;
    items
        .iter()
        .map(|m| {
            let index = m
                .get("index")
                .and_then(Json::as_usize)
                .ok_or_else(|| schema_err("match carries no \"index\""))?;
            let p = m
                .get("p")
                .and_then(Json::as_f64)
                .ok_or_else(|| schema_err("match carries no \"p\""))?;
            Ok((index, p))
        })
        .collect()
}

fn field_usize(v: &Json, key: &str) -> io::Result<usize> {
    v.get(key)
        .and_then(Json::as_usize)
        .ok_or_else(|| schema_err(format!("response carries no {key:?}")))
}

impl Client {
    /// Connects to a running server.
    ///
    /// # Errors
    /// Fails when the connection cannot be established.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        // Request/response frames are small; without TCP_NODELAY each
        // round-trip stalls on Nagle + delayed-ACK (~40 ms).
        stream.set_nodelay(true)?;
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Client {
            reader,
            writer: stream,
        })
    }

    /// One raw request/response round-trip with a pre-rendered request.
    ///
    /// # Errors
    /// Fails on I/O errors or when the server closes the connection.
    pub fn call_raw(&mut self, request: &str) -> io::Result<String> {
        write_frame(&mut self.writer, request)?;
        read_frame(&mut self.reader)?
            .ok_or_else(|| schema_err("server closed the connection mid-request"))
    }

    fn call(&mut self, request: &str) -> io::Result<Json> {
        let text = self.call_raw(request)?;
        let parsed =
            Json::parse(&text).map_err(|e| schema_err(format!("malformed response JSON: {e}")))?;
        check_ok(&parsed)?;
        Ok(parsed)
    }

    /// Resolves one record's values on the server's read path.
    ///
    /// # Errors
    /// Fails on I/O errors or a server-side error response.
    pub fn resolve(&mut self, values: &[zeroer_tabular::Value]) -> io::Result<WireResolution> {
        let response = self.call(&resolve_request(values))?;
        Ok(WireResolution {
            epoch: field_usize(&response, "epoch")? as u64,
            candidates: field_usize(&response, "candidates")?,
            cluster: match response
                .require("cluster")
                .map_err(|e| schema_err(e.to_string()))?
            {
                Json::Null => None,
                v => Some(
                    v.as_usize()
                        .ok_or_else(|| schema_err("non-integer cluster"))?,
                ),
            },
            matches: parse_matches(&response)?,
        })
    }

    /// Resolves one side-tagged record against a linkage server
    /// ([`crate::LinkServer`]): the record is blocked against the
    /// opposite side's index and scored with the frozen cross model.
    ///
    /// # Errors
    /// Fails on I/O errors or a server-side error response (including
    /// sending a side to a dedup server, which rejects it).
    pub fn resolve_side(
        &mut self,
        values: &[zeroer_tabular::Value],
        side: zeroer_stream::Side,
    ) -> io::Result<WireResolution> {
        let side = match side {
            zeroer_stream::Side::Left => "left",
            zeroer_stream::Side::Right => "right",
        };
        let response = self.call(&link_resolve_request(values, side))?;
        Ok(WireResolution {
            epoch: field_usize(&response, "epoch")? as u64,
            candidates: field_usize(&response, "candidates")?,
            cluster: match response
                .require("cluster")
                .map_err(|e| schema_err(e.to_string()))?
            {
                Json::Null => None,
                v => Some(
                    v.as_usize()
                        .ok_or_else(|| schema_err("non-integer cluster"))?,
                ),
            },
            matches: parse_matches(&response)?,
        })
    }

    /// Ingests a batch of records through the server's write path.
    ///
    /// # Errors
    /// Fails on I/O errors or a server-side error response (e.g. arity
    /// mismatch — the whole batch is rejected, nothing applied).
    pub fn ingest(&mut self, records: &[Record]) -> io::Result<Vec<WireIngest>> {
        let response = self.call(&ingest_request(records))?;
        let outcomes = response
            .get("outcomes")
            .and_then(Json::as_arr)
            .ok_or_else(|| schema_err("response carries no \"outcomes\" array"))?;
        outcomes
            .iter()
            .map(|o| {
                Ok(WireIngest {
                    index: field_usize(o, "index")?,
                    candidates: field_usize(o, "candidates")?,
                    cluster: field_usize(o, "cluster")?,
                    new_entity: o
                        .get("new_entity")
                        .and_then(Json::as_bool)
                        .ok_or_else(|| schema_err("outcome carries no \"new_entity\""))?,
                    matches: parse_matches(o)?,
                })
            })
            .collect()
    }

    /// Sends one admin command and returns the parsed response object.
    ///
    /// # Errors
    /// Fails on I/O errors or a server-side error response.
    pub fn admin(&mut self, cmd: &str) -> io::Result<Json> {
        self.call(&admin_request(cmd))
    }
}
