//! `zeroer serve` — a TCP resolution service over the stream
//! pipeline's read/write split.
//!
//! The server loads a frozen [`zeroer_stream::PipelineSnapshot`]-backed
//! [`zeroer_stream::StreamPipeline`], splits it into its read and write
//! halves ([`zeroer_stream::SplitPipeline`]), and speaks a
//! length-prefixed JSON protocol ([`protocol`]) with three verbs:
//!
//! * **resolve** — answered on the read path ([`zeroer_stream::ReadHandle`]):
//!   epoch-pinned, lock-free against the writer, bit-identical (to
//!   `f64::to_bits`) to in-process resolution;
//! * **ingest** — admitted to the write path ([`zeroer_stream::WriteHandle`]):
//!   micro-batched into the single-writer protocol, preserving
//!   admission-order determinism;
//! * **admin** — `ping` / `stats` (byte-identical with the CLI
//!   `--stats` renderer) / `compact` / `refresh` (re-fit + snapshot
//!   swap on the writer) / `snapshot` / `shutdown`.
//!
//! Linkage pipelines are served read-only by [`LinkServer`], whose
//! resolve verb is **side-aware** (`"side":"left"|"right"`) and backed
//! by [`zeroer_stream::LinkReadHandle`].
//!
//! Everything is `std` + workspace crates: sockets are `std::net`, JSON
//! is the workspace's own reader/writer pair. See the crate README for
//! the wire format and the `serve.*` metric catalog.

#![warn(missing_docs)]

pub mod client;
pub mod link_server;
pub mod protocol;
pub mod server;

pub use client::{Client, WireIngest, WireResolution};
pub use link_server::LinkServer;
pub use server::Server;
