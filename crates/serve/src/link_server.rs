//! A read-only TCP server over a [`LinkPipeline`]'s pinned read state —
//! the wire counterpart of [`zeroer_stream::LinkReadHandle`].
//!
//! Linkage resolution was previously in-process only: the serve layer
//! wired dedup pipelines exclusively, even though `LinkReadHandle`
//! already existed. This server closes that gap with a **side-aware**
//! resolve verb: `{"op":"resolve","side":"left"|"right","values":[…]}`
//! probes the *opposite* side's index and scores cross candidates with
//! the frozen cross model, exactly like [`LinkPipeline::ingest`] minus
//! the insertion — responses are bit-identical (`f64::to_bits`) to
//! calling [`zeroer_stream::LinkReadHandle::resolve`] in-process.
//!
//! The view is pinned once at [`LinkServer::bind`] and never republished
//! (there is no linkage write path over the wire yet — an admission
//! queue for side-tagged ingest slots in next to `SplitPipeline` when
//! that grows). Supported ops: `resolve` (side required), `admin ping`,
//! `admin shutdown`. Everything else answers `{"ok":false,…}`.

use crate::protocol::{error_response, read_frame, write_frame};
use crate::server::{parse_values, render_resolution, ServeMeters};
use std::io::BufReader;
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use zeroer_core::json::Json;
use zeroer_obs::json::Obj;
use zeroer_obs::Stopwatch;
use zeroer_stream::{LinkPipeline, LinkReadHandle, Side};
use zeroer_tabular::Record;

/// A bound-but-not-yet-serving linkage resolution server.
pub struct LinkServer {
    listener: TcpListener,
    handle: LinkReadHandle,
    meters: Option<ServeMeters>,
    stop: Arc<AtomicBool>,
}

impl LinkServer {
    /// Pins `pipeline`'s current read state and binds `addr` (e.g.
    /// `127.0.0.1:0` for an ephemeral port). The pipeline itself is
    /// only borrowed — the pinned view is an immutable clone, so the
    /// caller keeps ingesting on its side while the server answers
    /// from the pinned epoch.
    ///
    /// # Errors
    /// Fails when the address cannot be bound.
    pub fn bind(pipeline: &LinkPipeline, addr: &str) -> std::io::Result<LinkServer> {
        let meters = ServeMeters::from_flag(pipeline.options().metrics);
        let listener = TcpListener::bind(addr)?;
        Ok(LinkServer {
            listener,
            handle: pipeline.pin_read_handle(),
            meters,
            stop: Arc::new(AtomicBool::new(false)),
        })
    }

    /// The bound address (the real port when bound with port 0).
    ///
    /// # Panics
    /// Panics if the OS cannot report the local address of a freshly
    /// bound listener (which indicates a broken socket layer).
    pub fn local_addr(&self) -> SocketAddr {
        self.listener
            .local_addr()
            .expect("a bound listener reports its address")
    }

    /// Serves until an admin `shutdown` request arrives, then drains:
    /// open connections are shut down and handler threads joined.
    pub fn run(self) {
        let addr = self.local_addr();
        let mut handlers = Vec::new();
        let open: Arc<std::sync::Mutex<Vec<TcpStream>>> =
            Arc::new(std::sync::Mutex::new(Vec::new()));
        for incoming in self.listener.incoming() {
            if self.stop.load(Ordering::SeqCst) {
                break;
            }
            let stream = match incoming {
                Ok(s) => s,
                Err(_) => continue,
            };
            let _ = stream.set_nodelay(true);
            if let Ok(clone) = stream.try_clone() {
                open.lock().unwrap_or_else(|e| e.into_inner()).push(clone);
            }
            let conn = LinkConnection {
                reads: self.handle.clone(),
                meters: self.meters,
                stop: Arc::clone(&self.stop),
                poke: addr,
            };
            handlers.push(std::thread::spawn(move || conn.serve(stream)));
        }
        for s in open.lock().unwrap_or_else(|e| e.into_inner()).iter() {
            let _ = s.shutdown(Shutdown::Both);
        }
        for h in handlers {
            let _ = h.join();
        }
    }
}

/// Per-connection state: a private clone of the pinned read handle.
struct LinkConnection {
    reads: LinkReadHandle,
    meters: Option<ServeMeters>,
    stop: Arc<AtomicBool>,
    poke: SocketAddr,
}

impl LinkConnection {
    fn serve(mut self, stream: TcpStream) {
        if let Some(m) = self.meters {
            m.connections.incr();
        }
        let mut reader = BufReader::new(match stream.try_clone() {
            Ok(s) => s,
            Err(_) => return,
        });
        let mut writer = stream;
        loop {
            let request = match read_frame(&mut reader) {
                Ok(Some(text)) => text,
                Ok(None) | Err(_) => return,
            };
            let (response, stopping) = self.handle(&request);
            if write_frame(&mut writer, &response).is_err() {
                return;
            }
            if stopping {
                self.stop.store(true, Ordering::SeqCst);
                let _ = TcpStream::connect(self.poke);
                return;
            }
        }
    }

    fn handle(&mut self, request: &str) -> (String, bool) {
        if let Some(m) = self.meters {
            m.requests.incr();
        }
        let parsed = match Json::parse(request) {
            Ok(v) => v,
            Err(e) => return (self.fail(format!("malformed request JSON: {e}")), false),
        };
        let op = match parsed.get("op").and_then(Json::as_str) {
            Some(op) => op,
            None => return (self.fail("request carries no \"op\"".into()), false),
        };
        let sw = Stopwatch::new(self.meters.is_some());
        match op {
            "resolve" => {
                let out = self.resolve(&parsed);
                if let Some(m) = self.meters {
                    sw.total(m.resolve);
                }
                (out, false)
            }
            "admin" => {
                let (out, stopping) = self.admin(&parsed);
                if let Some(m) = self.meters {
                    sw.total(m.admin);
                }
                (out, stopping)
            }
            "ingest" => (
                self.fail("linkage serving is read-only; ingest on the owning pipeline".into()),
                false,
            ),
            other => (self.fail(format!("unknown op {other:?}")), false),
        }
    }

    fn fail(&self, message: String) -> String {
        if let Some(m) = self.meters {
            m.errors.incr();
        }
        error_response(&message)
    }

    fn resolve(&mut self, request: &Json) -> String {
        let side = match request.get("side").and_then(Json::as_str) {
            Some("left") => Side::Left,
            Some("right") => Side::Right,
            Some(other) => {
                return self.fail(format!("side must be \"left\" or \"right\", got {other:?}"))
            }
            None => {
                return self
                    .fail("linkage resolve requires a \"side\" (\"left\" or \"right\")".into())
            }
        };
        let values = match parse_values(request.get("values")) {
            Ok(v) => v,
            Err(e) => return self.fail(e),
        };
        if values.len() != self.reads.arity() {
            return self.fail(format!(
                "record arity {} does not match schema arity {}",
                values.len(),
                self.reads.arity()
            ));
        }
        let out = self.reads.resolve(&Record::new(0, values), side);
        render_resolution(&out)
    }

    fn admin(&mut self, request: &Json) -> (String, bool) {
        let cmd = match request.get("cmd").and_then(Json::as_str) {
            Some(cmd) => cmd,
            None => return (self.fail("admin request carries no \"cmd\"".into()), false),
        };
        match cmd {
            "ping" => {
                let mut o = Obj::new();
                o.bool("ok", true);
                o.bool("pong", true);
                (o.finish(), false)
            }
            "shutdown" => {
                let mut o = Obj::new();
                o.bool("ok", true);
                o.bool("stopping", true);
                (o.finish(), true)
            }
            other => (
                self.fail(format!("unknown linkage admin cmd {other:?}")),
                false,
            ),
        }
    }
}
