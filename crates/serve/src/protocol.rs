//! Wire protocol of `zeroer serve`: length-prefixed JSON frames.
//!
//! One frame = a 4-byte big-endian payload length followed by that many
//! bytes of UTF-8 JSON. Requests and responses are single JSON objects;
//! a connection carries any number of request/response round-trips in
//! order. The JSON dialect is the workspace's own
//! ([`zeroer_core::json`] to read, [`zeroer_obs::json`] to write) — no
//! network or serialization dependencies.
//!
//! ## Requests
//!
//! | verb | shape |
//! |---|---|
//! | resolve | `{"op":"resolve","values":["golden dragon","new york"]}` |
//! | resolve (linkage) | `{"op":"resolve","side":"left"\|"right","values":[...]}` |
//! | ingest  | `{"op":"ingest","records":[{"id":7,"values":[...]}, …]}` |
//! | admin   | `{"op":"admin","cmd":"ping"\|"stats"\|"compact"\|"refresh"\|"snapshot"\|"shutdown"}` |
//!
//! `side` is required on a [`crate::LinkServer`] (the record is blocked
//! against the *opposite* side's index) and rejected by a dedup server;
//! `admin refresh` re-fits the model over the writer's live records and
//! swaps the serving snapshot, answering
//! `{"ok":true,"records":N,"pairs":P,"em_iterations":I,"divergence":D,"generation":G}`.
//!
//! `values` entries preserve the [`zeroer_tabular::Value`] variant:
//! strings travel as JSON strings **verbatim** (never re-parsed, so
//! `"3.50"` stays the text `3.50` and derives the same tokens it does
//! in-process), integers as JSON integers, floats as JSON numbers in
//! shortest round-trip form (bit-identical after parsing), and nulls as
//! `null`. An integral JSON number becomes [`zeroer_tabular::Value::Int`]
//! — that conflates `Float(3.0)` with `Int(3)`, which is harmless
//! because both derive the text `3` and the number `3.0`.
//!
//! ## Responses
//!
//! Every response carries `"ok"`. Failures are
//! `{"ok":false,"error":"…"}`. Successes:
//!
//! * resolve → `{"ok":true,"epoch":E,"candidates":N,"cluster":C|null,`
//!   `"matches":[{"index":I,"p":P},…]}` — posteriors use shortest
//!   round-trip formatting, so the `f64` a client parses back is
//!   bit-identical to the one the server scored.
//! * ingest → `{"ok":true,"outcomes":[{"index":I,"candidates":N,`
//!   `"cluster":C,"new_entity":B,"matches":[…]},…]}`, one outcome per
//!   submitted record, in order.
//! * admin → verb-specific: `ping` echoes `{"pong":true}`, `stats`
//!   carries the CLI-identical `--stats` text, `compact` reports
//!   `{"epoch":E,"bytes_reclaimed":B}`, `snapshot` embeds the full
//!   pipeline snapshot JSON, `shutdown` acknowledges with
//!   `{"stopping":true}` before the server begins draining.

use std::io::{self, Read, Write};
use zeroer_obs::json::{Arr, Obj};
use zeroer_tabular::{Record, Value};

/// Maximum accepted frame payload (16 MiB) — a sanity bound against
/// garbage length prefixes, far above any real request.
pub const MAX_FRAME: usize = 16 * 1024 * 1024;

/// Writes one frame: big-endian `u32` length, then the payload.
///
/// # Errors
/// Fails on I/O errors, or when the payload exceeds [`MAX_FRAME`].
pub fn write_frame(w: &mut impl Write, payload: &str) -> io::Result<()> {
    let bytes = payload.as_bytes();
    if bytes.len() > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!(
                "frame of {} bytes exceeds the {MAX_FRAME}-byte cap",
                bytes.len()
            ),
        ));
    }
    w.write_all(&(bytes.len() as u32).to_be_bytes())?;
    w.write_all(bytes)?;
    w.flush()
}

/// Reads one frame; `Ok(None)` on a clean EOF at a frame boundary.
///
/// # Errors
/// Fails on I/O errors, a length prefix beyond [`MAX_FRAME`], an EOF
/// inside a frame, or a payload that is not UTF-8.
pub fn read_frame(r: &mut impl Read) -> io::Result<Option<String>> {
    let mut len_buf = [0u8; 4];
    let mut filled = 0;
    while filled < len_buf.len() {
        match r.read(&mut len_buf[filled..])? {
            0 if filled == 0 => return Ok(None),
            0 => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "connection closed inside a frame length prefix",
                ))
            }
            n => filled += n,
        }
    }
    let len = u32::from_be_bytes(len_buf) as usize;
    if len > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame length {len} exceeds the {MAX_FRAME}-byte cap"),
        ));
    }
    let mut buf = vec![0u8; len];
    r.read_exact(&mut buf)?;
    String::from_utf8(buf)
        .map(Some)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
}

/// Renders one record's values as a JSON array that preserves each
/// [`Value`]'s variant: strings verbatim, integers and floats as JSON
/// numbers (shortest round-trip for floats), nulls as `null`.
fn values_json(values: &[Value]) -> String {
    let mut arr = Arr::new();
    for v in values {
        match v {
            Value::Str(s) => arr.raw(&format!("\"{}\"", zeroer_obs::json::escape(s))),
            Value::Int(i) => arr.raw(&i.to_string()),
            Value::Float(f) => arr.raw(&zeroer_obs::json::f64_value(*f)),
            Value::Null => arr.raw("null"),
        };
    }
    arr.finish()
}

/// Builds a resolve request for one record's values.
pub fn resolve_request(values: &[Value]) -> String {
    let mut o = Obj::new();
    o.str("op", "resolve");
    o.raw("values", &values_json(values));
    o.finish()
}

/// Builds a side-aware linkage resolve request for one record's values
/// (`side` is `"left"` or `"right"` — which table the record belongs
/// to; it resolves against the opposite side).
pub fn link_resolve_request(values: &[Value], side: &str) -> String {
    let mut o = Obj::new();
    o.str("op", "resolve");
    o.str("side", side);
    o.raw("values", &values_json(values));
    o.finish()
}

/// Builds an ingest request for a batch of records.
pub fn ingest_request(records: &[Record]) -> String {
    let mut arr = Arr::new();
    for r in records {
        let mut o = Obj::new();
        o.u64("id", u64::from(r.id));
        o.raw("values", &values_json(&r.values));
        arr.raw(&o.finish());
    }
    let mut o = Obj::new();
    o.str("op", "ingest");
    o.raw("records", &arr.finish());
    o.finish()
}

/// Builds an admin request for one command verb.
pub fn admin_request(cmd: &str) -> String {
    let mut o = Obj::new();
    o.str("op", "admin");
    o.str("cmd", cmd);
    o.finish()
}

/// Builds the uniform failure response.
pub fn error_response(message: &str) -> String {
    let mut o = Obj::new();
    o.bool("ok", false);
    o.str("error", message);
    o.finish()
}
