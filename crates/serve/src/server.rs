//! The TCP server: one accept loop, one handler thread per connection,
//! every connection holding its own epoch-pinned [`ReadHandle`] plus a
//! clone of the shared [`WriteHandle`].
//!
//! Resolve requests refresh the connection's read handle (an `Arc`
//! swap) and answer entirely on the read path — they never enter the
//! admission queue and never block on the writer. Ingest requests block
//! on the write path (admission order = application order, so
//! decisions stay bit-identical to a sequential replay). Admin requests
//! go to the writer too, which is what makes `stats`/`snapshot`
//! quiescent-consistent: they observe a queue point, not a torn state.
//!
//! Request latencies are recorded per verb under `serve.*` (see the
//! crate README for the catalog) when the underlying pipeline has
//! metrics enabled.

use crate::protocol::{error_response, read_frame, write_frame};
use std::io::BufReader;
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use zeroer_core::json::Json;
use zeroer_obs::json::{Arr, Obj};
use zeroer_obs::{Counter, Histogram, Stopwatch};
use zeroer_stream::{ReadHandle, ResolveOutcome, SplitPipeline, StreamPipeline, WriteHandle};
use zeroer_tabular::{Record, Value};

/// The `serve.*` metric handles, resolved once per server.
#[derive(Clone, Copy)]
pub(crate) struct ServeMeters {
    pub(crate) connections: &'static Counter,
    pub(crate) requests: &'static Counter,
    pub(crate) errors: &'static Counter,
    pub(crate) resolve: &'static Histogram,
    ingest: &'static Histogram,
    pub(crate) admin: &'static Histogram,
}

impl ServeMeters {
    pub(crate) fn from_flag(on: bool) -> Option<Self> {
        on.then(|| ServeMeters {
            connections: zeroer_obs::counter("serve.connections"),
            requests: zeroer_obs::counter("serve.requests"),
            errors: zeroer_obs::counter("serve.errors"),
            resolve: zeroer_obs::histogram("serve.resolve.ns"),
            ingest: zeroer_obs::histogram("serve.ingest.ns"),
            admin: zeroer_obs::histogram("serve.admin.ns"),
        })
    }
}

/// A bound-but-not-yet-serving resolution server over a split
/// [`StreamPipeline`].
pub struct Server {
    listener: TcpListener,
    split: SplitPipeline,
    meters: Option<ServeMeters>,
    stop: Arc<AtomicBool>,
}

impl Server {
    /// Splits `pipeline` into its read/write halves (ingest
    /// micro-batches applied with `writer_threads` workers) and binds
    /// `addr` (e.g. `127.0.0.1:0` for an ephemeral port).
    ///
    /// # Errors
    /// Fails when the address cannot be bound.
    pub fn bind(
        pipeline: StreamPipeline,
        addr: &str,
        writer_threads: usize,
    ) -> std::io::Result<Server> {
        let meters = ServeMeters::from_flag(pipeline.options().metrics);
        let listener = TcpListener::bind(addr)?;
        Ok(Server {
            listener,
            split: SplitPipeline::with_threads(pipeline, writer_threads),
            meters,
            stop: Arc::new(AtomicBool::new(false)),
        })
    }

    /// The bound address (the real port when bound with port 0).
    ///
    /// # Panics
    /// Panics if the OS cannot report the local address of a freshly
    /// bound listener (which indicates a broken socket layer).
    pub fn local_addr(&self) -> SocketAddr {
        self.listener
            .local_addr()
            .expect("a bound listener reports its address")
    }

    /// Serves until an admin `shutdown` request arrives, then drains:
    /// open connections are shut down, handler threads joined, the
    /// admission queue closed and drained, and the pipeline — including
    /// everything ingested over the wire — handed back.
    pub fn run(self) -> StreamPipeline {
        let addr = self.local_addr();
        let mut handlers = Vec::new();
        // Clones of accepted sockets, kept so shutdown can unblock
        // handler threads parked in a read.
        let open: Arc<std::sync::Mutex<Vec<TcpStream>>> =
            Arc::new(std::sync::Mutex::new(Vec::new()));
        for incoming in self.listener.incoming() {
            if self.stop.load(Ordering::SeqCst) {
                break;
            }
            let stream = match incoming {
                Ok(s) => s,
                Err(_) => continue,
            };
            // Small request/response frames: disable Nagle so replies
            // are not held hostage to delayed ACKs.
            let _ = stream.set_nodelay(true);
            if let Ok(clone) = stream.try_clone() {
                open.lock().unwrap_or_else(|e| e.into_inner()).push(clone);
            }
            let conn = Connection {
                reads: self.split.read_handle(),
                writes: self.split.write_handle(),
                meters: self.meters,
                stop: Arc::clone(&self.stop),
                poke: addr,
            };
            handlers.push(std::thread::spawn(move || conn.serve(stream)));
        }
        for s in open.lock().unwrap_or_else(|e| e.into_inner()).iter() {
            let _ = s.shutdown(Shutdown::Both);
        }
        for h in handlers {
            let _ = h.join();
        }
        self.split.shutdown()
    }
}

/// Per-connection state: a private read handle, a shared write handle.
struct Connection {
    reads: ReadHandle,
    writes: WriteHandle,
    meters: Option<ServeMeters>,
    stop: Arc<AtomicBool>,
    poke: SocketAddr,
}

impl Connection {
    fn serve(mut self, stream: TcpStream) {
        if let Some(m) = self.meters {
            m.connections.incr();
        }
        let mut reader = BufReader::new(match stream.try_clone() {
            Ok(s) => s,
            Err(_) => return,
        });
        let mut writer = stream;
        loop {
            let request = match read_frame(&mut reader) {
                Ok(Some(text)) => text,
                Ok(None) | Err(_) => return,
            };
            let (response, stopping) = self.handle(&request);
            if write_frame(&mut writer, &response).is_err() {
                return;
            }
            if stopping {
                // Reply delivered; now stop the accept loop. The
                // self-connect unblocks `TcpListener::incoming`, which
                // re-checks the flag before handling it.
                self.stop.store(true, Ordering::SeqCst);
                let _ = TcpStream::connect(self.poke);
                return;
            }
        }
    }

    /// Dispatches one request; returns the response and whether this
    /// request asked the server to stop.
    fn handle(&mut self, request: &str) -> (String, bool) {
        if let Some(m) = self.meters {
            m.requests.incr();
        }
        let parsed = match Json::parse(request) {
            Ok(v) => v,
            Err(e) => return (self.fail(format!("malformed request JSON: {e}")), false),
        };
        let op = match parsed.get("op").and_then(Json::as_str) {
            Some(op) => op,
            None => return (self.fail("request carries no \"op\"".into()), false),
        };
        let sw = Stopwatch::new(self.meters.is_some());
        match op {
            "resolve" => {
                let out = self.resolve(&parsed);
                if let Some(m) = self.meters {
                    sw.total(m.resolve);
                }
                (out, false)
            }
            "ingest" => {
                let out = self.ingest(&parsed);
                if let Some(m) = self.meters {
                    sw.total(m.ingest);
                }
                (out, false)
            }
            "admin" => {
                let (out, stopping) = self.admin(&parsed);
                if let Some(m) = self.meters {
                    sw.total(m.admin);
                }
                (out, stopping)
            }
            other => (self.fail(format!("unknown op {other:?}")), false),
        }
    }

    fn fail(&self, message: String) -> String {
        if let Some(m) = self.meters {
            m.errors.incr();
        }
        error_response(&message)
    }

    fn resolve(&mut self, request: &Json) -> String {
        if request.get("side").is_some() {
            return self.fail(
                "this server resolves a dedup pipeline; side-tagged resolution \
                 requires a linkage server"
                    .into(),
            );
        }
        let values = match parse_values(request.get("values")) {
            Ok(v) => v,
            Err(e) => return self.fail(e),
        };
        self.reads.refresh();
        if values.len() != self.reads.arity() {
            return self.fail(format!(
                "record arity {} does not match schema arity {}",
                values.len(),
                self.reads.arity()
            ));
        }
        let out = self.reads.resolve(&Record::new(0, values));
        render_resolution(&out)
    }

    fn ingest(&mut self, request: &Json) -> String {
        let records = match request.get("records").and_then(Json::as_arr) {
            Some(r) => r,
            None => return self.fail("ingest request carries no \"records\" array".into()),
        };
        let mut batch = Vec::with_capacity(records.len());
        for (i, rec) in records.iter().enumerate() {
            let id = match rec.get("id").and_then(Json::as_usize) {
                Some(id) if id <= u32::MAX as usize => id as u32,
                _ => return self.fail(format!("record {i} carries no valid \"id\"")),
            };
            let values = match parse_values(rec.get("values")) {
                Ok(v) => v,
                Err(e) => return self.fail(format!("record {i}: {e}")),
            };
            batch.push(Record::new(id, values));
        }
        match self.writes.ingest(batch) {
            Ok(outcomes) => {
                let mut arr = Arr::new();
                for out in &outcomes {
                    let mut o = Obj::new();
                    o.u64("index", out.index as u64);
                    o.u64("candidates", out.candidates as u64);
                    o.u64("cluster", out.cluster as u64);
                    o.bool("new_entity", out.is_new_entity());
                    o.raw("matches", &render_matches(&out.matches));
                    arr.raw(&o.finish());
                }
                let mut o = Obj::new();
                o.bool("ok", true);
                o.raw("outcomes", &arr.finish());
                o.finish()
            }
            Err(e) => self.fail(e.to_string()),
        }
    }

    fn admin(&mut self, request: &Json) -> (String, bool) {
        let cmd = match request.get("cmd").and_then(Json::as_str) {
            Some(cmd) => cmd,
            None => return (self.fail("admin request carries no \"cmd\"".into()), false),
        };
        match cmd {
            "ping" => {
                let mut o = Obj::new();
                o.bool("ok", true);
                o.bool("pong", true);
                (o.finish(), false)
            }
            "stats" => match self.writes.stats() {
                Ok(text) => {
                    let mut o = Obj::new();
                    o.bool("ok", true);
                    o.str("stats", &text);
                    (o.finish(), false)
                }
                Err(e) => (self.fail(e.to_string()), false),
            },
            "compact" => match self.writes.compact() {
                Ok(report) => {
                    let mut o = Obj::new();
                    o.bool("ok", true);
                    o.u64("epoch", report.epoch);
                    o.u64("bytes_reclaimed", report.bytes_reclaimed() as u64);
                    (o.finish(), false)
                }
                Err(e) => (self.fail(e.to_string()), false),
            },
            "refresh" => match self.writes.refresh() {
                Ok(report) => {
                    let mut o = Obj::new();
                    o.bool("ok", true);
                    o.u64("records", report.records as u64);
                    o.u64("pairs", report.pairs as u64);
                    o.u64("em_iterations", report.em_iterations as u64);
                    o.f64("divergence", report.divergence);
                    o.u64("generation", report.generation);
                    (o.finish(), false)
                }
                Err(e) => (self.fail(e.to_string()), false),
            },
            "snapshot" => match self.writes.snapshot_json() {
                Ok(json) => {
                    let mut o = Obj::new();
                    o.bool("ok", true);
                    o.raw("snapshot", &json);
                    (o.finish(), false)
                }
                Err(e) => (self.fail(e.to_string()), false),
            },
            "shutdown" => {
                let mut o = Obj::new();
                o.bool("ok", true);
                o.bool("stopping", true);
                (o.finish(), true)
            }
            other => (self.fail(format!("unknown admin cmd {other:?}")), false),
        }
    }
}

/// Parses a request's `values` array, preserving each entry's variant:
/// JSON strings become [`Value::Str`] verbatim (never re-parsed — the
/// text must derive the same tokens it does in-process), integral JSON
/// numbers become [`Value::Int`], other numbers [`Value::Float`], and
/// `null` stays null.
pub(crate) fn parse_values(values: Option<&Json>) -> Result<Vec<Value>, String> {
    let items = values
        .and_then(Json::as_arr)
        .ok_or_else(|| "request carries no \"values\" array".to_string())?;
    let mut out = Vec::with_capacity(items.len());
    for (i, item) in items.iter().enumerate() {
        match item {
            Json::Null => out.push(Value::Null),
            Json::Str(s) => out.push(Value::Str(s.clone())),
            Json::Num(n) if n.fract() == 0.0 && n.abs() < 9.0e18 => {
                out.push(Value::Int(*n as i64));
            }
            Json::Num(n) => out.push(Value::Float(*n)),
            other => {
                return Err(format!(
                    "values[{i}] must be a string, number or null, got {other:?}"
                ))
            }
        }
    }
    Ok(out)
}

fn render_matches(matches: &[(usize, f64)]) -> String {
    let mut arr = Arr::new();
    for &(index, p) in matches {
        let mut o = Obj::new();
        o.u64("index", index as u64);
        o.f64("p", p);
        arr.raw(&o.finish());
    }
    arr.finish()
}

/// Renders a [`ResolveOutcome`] as the resolve response body.
pub(crate) fn render_resolution(out: &ResolveOutcome) -> String {
    let mut o = Obj::new();
    o.bool("ok", true);
    o.u64("epoch", out.epoch);
    o.u64("candidates", out.candidates as u64);
    match out.cluster {
        Some(c) => o.u64("cluster", c as u64),
        None => o.raw("cluster", "null"),
    };
    o.raw("matches", &render_matches(&out.matches));
    o.finish()
}
