//! Side-aware linkage resolution over real TCP sockets.
//!
//! The satellite acceptance under test: a linkage resolve over the wire
//! makes the **same match decisions to `f64::to_bits`** as the
//! in-process [`zeroer_stream::LinkReadHandle`] — on both sides — and
//! the side tag is enforced in both directions (a linkage server
//! requires it, a dedup server rejects it).

use zeroer_datagen::generate;
use zeroer_datagen::profiles::{pub_da, rest_fz};
use zeroer_serve::protocol::link_resolve_request;
use zeroer_serve::{Client, LinkServer, Server};
use zeroer_stream::{LinkPipeline, Side, StreamOptions, StreamPipeline};
use zeroer_tabular::Record;

/// One server lifetime covering resolve parity on both sides, side-tag
/// enforcement, read-only-ness, and shutdown. One test because the obs
/// registry is process-global.
#[test]
fn link_resolve_over_the_wire_is_bit_identical_with_in_process() {
    let ds = generate(&pub_da(), 0.03, 5);
    let opts = StreamOptions {
        min_token_overlap: 2,
        ..StreamOptions::default()
    };
    let (pipeline, _) = LinkPipeline::bootstrap(&ds.left, &ds.right, opts).expect("bootstrap");

    // In-process reference answers for probes on both sides.
    let right_probes: Vec<Record> = ds.right.records().iter().take(6).cloned().collect();
    let left_probes: Vec<Record> = ds.left.records().iter().take(6).cloned().collect();
    let mut local = pipeline.pin_read_handle();
    let local_right: Vec<_> = right_probes
        .iter()
        .map(|r| local.resolve(r, Side::Right))
        .collect();
    let local_left: Vec<_> = left_probes
        .iter()
        .map(|r| local.resolve(r, Side::Left))
        .collect();

    let server = LinkServer::bind(&pipeline, "127.0.0.1:0").expect("bind");
    let addr = server.local_addr();
    let server_thread = std::thread::spawn(move || server.run());
    let mut client = Client::connect(addr).expect("connect");

    let pong = client.admin("ping").expect("ping");
    assert_eq!(pong.get("pong").and_then(|v| v.as_bool()), Some(true));

    // Wire parity, both sides, to f64::to_bits.
    let mut matched_any = false;
    for (side, probes, locals) in [
        (Side::Right, &right_probes, &local_right),
        (Side::Left, &left_probes, &local_left),
    ] {
        for (probe, local) in probes.iter().zip(locals) {
            let wire = client.resolve_side(&probe.values, side).expect("resolve");
            assert_eq!(wire.epoch, local.epoch);
            assert_eq!(wire.candidates, local.candidates);
            assert_eq!(wire.cluster, local.cluster);
            assert_eq!(wire.matches.len(), local.matches.len());
            for ((wi, wp), (li, lp)) in wire.matches.iter().zip(&local.matches) {
                assert_eq!(wi, li);
                assert_eq!(
                    wp.to_bits(),
                    lp.to_bits(),
                    "posterior changed across the wire: {wp} vs {lp}"
                );
            }
            matched_any |= wire.cluster.is_some();
        }
    }
    assert!(matched_any, "no probe matched — parity test is vacuous");

    // A linkage server requires the side tag…
    let err = client
        .resolve(&right_probes[0].values)
        .expect_err("no side");
    assert!(err.to_string().contains("side"), "{err}");
    // …rejects junk sides…
    let raw = client
        .call_raw(&link_resolve_request(&right_probes[0].values, "middle"))
        .expect("error response");
    assert!(raw.contains("\"ok\":false"), "{raw}");
    // …and is read-only.
    let err = client
        .ingest(&[right_probes[0].clone()])
        .expect_err("read-only");
    assert!(err.to_string().contains("read-only"), "{err}");

    let ack = client.admin("shutdown").expect("shutdown");
    assert_eq!(ack.get("stopping").and_then(|v| v.as_bool()), Some(true));
    server_thread.join().expect("server thread");

    // And the other direction: a dedup server rejects side-tagged
    // resolves instead of silently ignoring the tag.
    let ds = generate(&rest_fz(), 0.15, 3);
    let (table, _) = ds.dedup_table();
    let (dedup, _) =
        StreamPipeline::bootstrap(&table, StreamOptions::default()).expect("bootstrap");
    let snap = dedup.snapshot();
    let mut cold = StreamPipeline::from_snapshot(&snap, StreamOptions::default().threshold)
        .expect("snapshot restores");
    cold.seed_base(&table).expect("seed");
    let probe = table.records()[0].clone();

    let server = Server::bind(cold, "127.0.0.1:0", 1).expect("bind");
    let addr = server.local_addr();
    let dedup_thread = std::thread::spawn(move || server.run());
    let mut client = Client::connect(addr).expect("connect");
    let err = client
        .resolve_side(&probe.values, Side::Left)
        .expect_err("dedup server must reject side");
    assert!(err.to_string().contains("dedup"), "{err}");
    // The same values without a side still resolve fine.
    client.resolve(&probe.values).expect("plain resolve");
    client.admin("shutdown").expect("shutdown");
    dedup_thread.join().expect("server thread");
}
