//! In-process server round-trips over real TCP sockets.
//!
//! The acceptance criterion under test: a resolve over the wire makes
//! the **same match decisions to `f64::to_bits`** as the in-process
//! read path — the posterior survives JSON serialization because the
//! writer emits shortest round-trip formatting. Plus: ingest-over-wire
//! parity with the in-process write path, admin verbs (including the
//! `--stats` byte-identity), protocol error handling, and a clean
//! drain on shutdown.

use std::net::TcpStream;
use zeroer_datagen::generate;
use zeroer_datagen::profiles::rest_fz;
use zeroer_serve::{Client, Server};
use zeroer_stream::{PipelineSnapshot, StreamOptions, StreamPipeline};
use zeroer_tabular::{Record, Table, Value};

/// Bootstrap/stream split of a generated dedup table.
fn split_dataset(scale: f64, seed: u64) -> (Table, Vec<Record>) {
    let ds = generate(&rest_fz(), scale, seed);
    let (table, _) = ds.dedup_table();
    let cut = (table.len() * 7 / 10).max(4);
    let mut boot = Table::new("boot", table.schema().clone());
    for r in table.records().iter().take(cut) {
        boot.push(r.clone());
    }
    let tail: Vec<Record> = table.records()[cut..].to_vec();
    (boot, tail)
}

fn cold_pipeline(snap: &PipelineSnapshot, boot: &Table) -> StreamPipeline {
    let mut p = StreamPipeline::from_snapshot(snap, StreamOptions::default().threshold)
        .expect("snapshot restores");
    p.seed_base(boot).expect("bootstrap decisions replay");
    p
}

/// Everything over one server lifetime: resolve parity, ingest parity,
/// admin verbs, error handling, clean shutdown. One test because the
/// server is a process-wide resource (the obs registry is global).
#[test]
fn wire_round_trip_is_bit_identical_with_in_process_paths() {
    let (boot, tail) = split_dataset(0.2, 42);
    let (live, _) = StreamPipeline::bootstrap(&boot, StreamOptions::default()).expect("bootstrap");
    let snap = live.snapshot();

    // The in-process reference: resolve each probe against the
    // bootstrap-only state, then ingest the tail and keep the outcomes.
    let mut reference = cold_pipeline(&snap, &boot);
    let mut handle = reference.pin_read_handle();
    let probes: Vec<Record> = tail.iter().take(10).cloned().collect();
    let local_resolutions: Vec<_> = probes.iter().map(|r| handle.resolve(r)).collect();
    let local_outcomes = reference.ingest_batch_parallel(tail.clone(), 2);

    let server = Server::bind(cold_pipeline(&snap, &boot), "127.0.0.1:0", 2).expect("bind");
    let addr = server.local_addr();
    let server_thread = std::thread::spawn(move || server.run());
    let mut client = Client::connect(addr).expect("connect");

    // Admin ping: the protocol is alive.
    let pong = client.admin("ping").expect("ping");
    assert_eq!(pong.get("pong").and_then(|v| v.as_bool()), Some(true));

    // Resolve parity against the bootstrap-only state.
    let mut matched_any = false;
    for (probe, local) in probes.iter().zip(&local_resolutions) {
        let wire = client.resolve(&probe.values).expect("resolve");
        assert_eq!(wire.epoch, local.epoch);
        assert_eq!(wire.candidates, local.candidates);
        assert_eq!(wire.cluster, local.cluster);
        assert_eq!(wire.matches.len(), local.matches.len());
        for ((wi, wp), (li, lp)) in wire.matches.iter().zip(&local.matches) {
            assert_eq!(wi, li);
            assert_eq!(
                wp.to_bits(),
                lp.to_bits(),
                "posterior changed across the wire: {wp} vs {lp}"
            );
        }
        matched_any |= wire.cluster.is_some();
    }
    assert!(matched_any, "no probe matched — parity test is vacuous");

    // Ingest parity: same records, same order, over the wire.
    let wire_outcomes = client.ingest(&tail).expect("ingest");
    assert_eq!(wire_outcomes.len(), local_outcomes.len());
    for (w, l) in wire_outcomes.iter().zip(&local_outcomes) {
        assert_eq!(w.index, l.index);
        assert_eq!(w.candidates, l.candidates);
        assert_eq!(w.cluster, l.cluster);
        assert_eq!(w.new_entity, l.is_new_entity());
        assert_eq!(w.matches.len(), l.matches.len());
        for ((wi, wp), (li, lp)) in w.matches.iter().zip(&l.matches) {
            assert_eq!(wi, li);
            assert_eq!(wp.to_bits(), lp.to_bits());
        }
    }

    // A post-ingest resolve sees the refreshed view (same len as the
    // reference pipeline after its ingest).
    let refreshed = client.resolve(&probes[0].values).expect("resolve");
    let mut latest = reference.pin_read_handle();
    let local_refreshed = latest.resolve(&probes[0]);
    assert_eq!(refreshed.candidates, local_refreshed.candidates);
    assert_eq!(refreshed.cluster, local_refreshed.cluster);

    // Admin stats: byte-identical with the CLI's `--stats` renderer
    // run against the same registry (satellite: no divergent printer).
    let stats = client.admin("stats").expect("stats");
    let wire_text = stats
        .get("stats")
        .and_then(|v| v.as_str())
        .expect("stats carries text")
        .to_string();
    reference.stats().publish();
    assert_eq!(
        wire_text,
        zeroer_stream::render_stats(),
        "serve stats text diverged from the CLI renderer"
    );

    // Admin compact + snapshot.
    let compacted = client.admin("compact").expect("compact");
    assert!(compacted.get("bytes_reclaimed").is_some());
    let snapshot = client.admin("snapshot").expect("snapshot");
    let embedded = snapshot.get("snapshot").expect("embedded snapshot");
    let restored = PipelineSnapshot::from_json(&embedded.render()).expect("snapshot parses");
    assert_eq!(restored.attr_types.len(), snap.attr_types.len());

    // Protocol errors: malformed JSON, unknown op, arity mismatch.
    let err = client.call_raw("not json").expect("error response");
    assert!(err.contains("\"ok\":false"), "{err}");
    let err = client
        .call_raw("{\"op\":\"dance\"}")
        .expect("error response");
    assert!(err.contains("unknown op"), "{err}");
    assert!(client.resolve(&[Value::parse("lonely")]).is_err());
    assert!(client
        .ingest(&[Record::new(0, vec![Value::parse("lonely")])])
        .is_err());

    // Shutdown: acknowledged, then the server drains and hands back the
    // pipeline with every wire ingest applied.
    let ack = client.admin("shutdown").expect("shutdown");
    assert_eq!(ack.get("stopping").and_then(|v| v.as_bool()), Some(true));
    let drained = server_thread.join().expect("server thread");
    assert_eq!(drained.len(), reference.len());
    assert_eq!(
        drained.clusters(),
        reference.clusters(),
        "wire ingest produced different clusters than the in-process path"
    );
    assert!(
        TcpStream::connect(addr).map(|_| ()).is_err() || {
            // The listener may accept one last queued connection while
            // closing; what matters is that it stops serving.
            std::thread::sleep(std::time::Duration::from_millis(50));
            TcpStream::connect(addr).is_err()
        },
        "listener still accepting after shutdown"
    );
}
