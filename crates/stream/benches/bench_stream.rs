//! Streaming-ingest throughput: bootstrap on 70 % of a dedup dataset,
//! then measure ingest over the remaining 30 % — sequentially, across a
//! scaling worker pool, and with/without per-candidate allocation.
//!
//! Sections:
//! 1. sequential per-record ingest latency (incremental blocking +
//!    frozen-model scoring + cluster assignment);
//! 2. scoring-loop allocation delta: `raw_row` (one `Vec` per candidate)
//!    vs. `raw_row_into` (one reused buffer) over the same pairs;
//! 3. multi-thread batch-ingest scaling (`ingest_batch_parallel`), with
//!    a cluster-parity check across thread counts.
//!
//! Knobs: `ZEROER_SCALE` (default 0.25, section 1),
//! `ZEROER_SCALE_PAR` (default 1.0, section 3), `ZEROER_SEED`
//! (default 42), `ZEROER_MAX_THREADS` (default 8).

use std::time::Instant;
use zeroer_datagen::generate;
use zeroer_datagen::profiles::rest_fz;
use zeroer_features::{RecordCache, RowFeaturizer};
use zeroer_stream::{PipelineSnapshot, StreamOptions, StreamPipeline};
use zeroer_tabular::{Record, Table};

fn env_f64(key: &str, default: f64) -> f64 {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Bootstrap table (first 70 %) and streamed tail (last 30 %).
fn split(scale: f64, seed: u64) -> (Table, Vec<Record>) {
    let ds = generate(&rest_fz(), scale, seed);
    let (table, _) = ds.dedup_table();
    let cut = table.len() * 7 / 10;
    let mut boot = Table::new("boot", table.schema().clone());
    for r in table.records().iter().take(cut) {
        boot.push(r.clone());
    }
    let tail: Vec<Record> = table.records()[cut..].to_vec();
    (boot, tail)
}

fn cold(snap: &PipelineSnapshot, boot: &Table) -> StreamPipeline {
    let mut p = StreamPipeline::from_snapshot(snap, StreamOptions::default().threshold)
        .expect("snapshot restores");
    p.seed_base(boot).expect("bootstrap decisions replay");
    p
}

fn main() {
    let scale = env_f64("ZEROER_SCALE", 0.25);
    let scale_par = env_f64("ZEROER_SCALE_PAR", 1.0);
    let seed = env_f64("ZEROER_SEED", 42.0) as u64;
    let max_threads = env_f64("ZEROER_MAX_THREADS", 8.0) as usize;

    // ---- Section 1: sequential per-record ingest -------------------
    let (boot, tail) = split(scale, seed);
    println!("== bench_stream: incremental ingest throughput ==");
    println!(
        "dataset Rest-FZ at scale {scale}: {} records, bootstrap on {}\n",
        boot.len() + tail.len(),
        boot.len()
    );

    let t0 = Instant::now();
    let (mut pipeline, report) =
        StreamPipeline::bootstrap(&boot, StreamOptions::default()).expect("bootstrap");
    let bootstrap_secs = t0.elapsed().as_secs_f64();
    println!(
        "bootstrap: {:.3} s ({} candidate pairs, {} EM iterations)",
        bootstrap_secs,
        report.pairs.len(),
        report.em_iterations
    );

    let n = tail.len();
    // Clone outside the timed region: the measured loop should pay for
    // ingest, not for Record copies.
    let tail_seq = tail.clone();
    let t1 = Instant::now();
    let mut scored = 0usize;
    let mut matched = 0usize;
    for r in tail_seq {
        let out = pipeline.ingest(r);
        scored += out.candidates;
        matched += usize::from(!out.is_new_entity());
    }
    let ingest_secs = t1.elapsed().as_secs_f64();
    println!(
        "ingest: {n} records in {:.4} s → {:.0} records/s ({:.1} µs/record)",
        ingest_secs,
        n as f64 / ingest_secs,
        ingest_secs * 1e6 / n as f64
    );
    println!(
        "        {scored} candidates scored, {matched} records joined existing entities, {} clusters\n",
        pipeline.clusters().len()
    );

    // ---- Section 2: scoring-loop allocation delta ------------------
    // Same feature rows, same scorer; the only difference is one Vec
    // allocation per candidate (raw_row) vs. one reused buffer
    // (raw_row_into, what ingest actually runs).
    let snap = pipeline.snapshot();
    let featurizer = RowFeaturizer::new(&snap.attr_types);
    let scorer = snap.model.scorer().expect("snapshot scorer");
    let caches: Vec<RecordCache> = boot.records().iter().map(RecordCache::build).collect();
    let pairs: Vec<(usize, usize)> = (0..caches.len().saturating_sub(1))
        .map(|i| (i, i + 1))
        .collect();
    let reps = (20_000 / pairs.len().max(1)).max(1);

    let t2 = Instant::now();
    let mut acc_alloc = 0.0f64;
    for _ in 0..reps {
        for &(i, j) in &pairs {
            let mut row = featurizer.raw_row(&caches[i], &caches[j]);
            acc_alloc += scorer.score_raw(&mut row);
        }
    }
    let alloc_secs = t2.elapsed().as_secs_f64();

    let t3 = Instant::now();
    let mut acc_reuse = 0.0f64;
    let mut buf: Vec<f64> = Vec::new();
    for _ in 0..reps {
        for &(i, j) in &pairs {
            featurizer.raw_row_into(&caches[i], &caches[j], &mut buf);
            acc_reuse += scorer.score_raw(&mut buf);
        }
    }
    let reuse_secs = t3.elapsed().as_secs_f64();
    assert_eq!(acc_alloc.to_bits(), acc_reuse.to_bits(), "paths must agree");
    let per = (pairs.len() * reps) as f64;
    println!(
        "== scoring-loop allocation delta ({} scores) ==",
        pairs.len() * reps
    );
    println!(
        "raw_row (alloc/candidate): {:.3} µs/score | raw_row_into (reused buffer): {:.3} µs/score → {:+.1} %\n",
        alloc_secs * 1e6 / per,
        reuse_secs * 1e6 / per,
        (reuse_secs / alloc_secs - 1.0) * 100.0
    );

    // ---- Section 3: multi-thread batch-ingest scaling --------------
    let (boot_par, tail_par) = split(scale_par, seed);
    let (fitted, _) =
        StreamPipeline::bootstrap(&boot_par, StreamOptions::default()).expect("bootstrap");
    let snap_par = fitted.snapshot();
    let cores = std::thread::available_parallelism().map_or(1, |p| p.get());
    println!(
        "== parallel batch ingest (Rest-FZ at scale {scale_par}: {} streamed records, {cores} core(s) available) ==",
        tail_par.len()
    );
    if cores < 2 {
        println!("NOTE: single-core machine — speedups above 1× require more cores; this run only demonstrates determinism and overhead.");
    }

    let mut baseline = f64::NAN;
    let mut reference_clusters: Option<Vec<Vec<usize>>> = None;
    let mut threads = 1;
    while threads <= max_threads {
        let mut p = cold(&snap_par, &boot_par);
        let t = Instant::now();
        let outcomes = p.ingest_batch_parallel(tail_par.clone(), threads);
        let secs = t.elapsed().as_secs_f64();
        if threads == 1 {
            baseline = secs;
        }
        let clusters = p.clusters();
        let parity = match &reference_clusters {
            None => {
                reference_clusters = Some(clusters);
                "reference"
            }
            Some(reference) if *reference == clusters => "identical clusters",
            Some(_) => "CLUSTER MISMATCH",
        };
        println!(
            "threads={threads}: {:.4} s → {:.0} records/s ({:.2}× vs 1 thread, {} outcomes, {parity})",
            secs,
            tail_par.len() as f64 / secs,
            baseline / secs,
            outcomes.len()
        );
        threads *= 2;
    }
}
