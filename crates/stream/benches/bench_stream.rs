//! Streaming-ingest throughput: bootstrap on 70 % of a dedup dataset,
//! then measure ingest over the remaining 30 % — sequentially, across a
//! scaling worker pool, and with/without per-candidate allocation.
//!
//! Sections:
//! 1. derivation throughput: the retired string-based per-record caches
//!    (HashMap token bags, separate blocking-key tokenization — what the
//!    pre-interning code ran) vs. the one-pass interned derivation, with
//!    interner size and bytes saved;
//! 2. sequential per-record ingest latency (incremental blocking +
//!    frozen-model scoring + cluster assignment);
//! 3. scoring-loop allocation delta: `raw_row` (one `Vec` per candidate)
//!    vs. `raw_row_into` (one reused buffer) over the same pairs;
//!    followed by the batched-scoring delta in the production shape —
//!    one new record against its whole candidate window, the way
//!    `score_candidates` actually batches — comparing the scalar
//!    row-at-a-time loop against the struct-of-arrays `fill_columns` +
//!    `score_batch` path (what `StreamOptions::batched_scoring`
//!    switches), with a bit-identity assertion and a ≥ 1.3× speedup
//!    criterion;
//! 4. multi-thread batch-ingest scaling (`ingest_batch_parallel`), with
//!    a cluster-parity check across thread counts;
//! 5. retraction throughput + compaction reclaim;
//! 6. streaming record linkage: freeze a three-model fit, stream
//!    right-side records through the frozen cross model, thread-parity
//!    check.
//!
//! The first output line after the banner is a machine-readable JSON
//! header carrying the detected core count, scales, seed and RSS: on a
//! 1-core machine section 4 is SKIPPED and the >1.5×@4-threads
//! criterion stays unproven — rerun on multi-core hardware.
//!
//! Section 2 additionally measures the `zeroer-obs` instrumentation
//! overhead (metrics-on vs metrics-off sequential ingest over
//! identical cold pipelines; criterion: < 5 %) and pulls per-record
//! latency percentiles out of the metrics registry.
//!
//! Besides the human-readable report, the run writes
//! `BENCH_stream.json` (schema `zeroer-bench-stream-v1`, path
//! overridable via `ZEROER_BENCH_OUT`) with per-section throughput for
//! dashboards and CI.
//!
//! Knobs: `ZEROER_SCALE` (default 0.25, sections 1–3 and 5–6),
//! `ZEROER_SCALE_PAR` (default 1.0, section 4), `ZEROER_SEED`
//! (default 42), `ZEROER_MAX_THREADS` (default 8), `ZEROER_BENCH_OUT`
//! (default `BENCH_stream.json`).

use std::time::Instant;
use zeroer_core::ScoreBatch;
use zeroer_datagen::generate;
use zeroer_datagen::profiles::rest_fz;
use zeroer_features::{BatchFeaturizer, RowFeaturizer};
use zeroer_obs::json::{Arr, Obj};
use zeroer_stream::{
    IndexConfig, LinkPipeline, PipelineSnapshot, Side, StreamOptions, StreamPipeline,
};
use zeroer_tabular::{Record, Table};
use zeroer_textsim::derive::{DerivedRecord, Deriver};

fn env_f64(key: &str, default: f64) -> f64 {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Bootstrap table (first 70 %) and streamed tail (last 30 %).
fn split(scale: f64, seed: u64) -> (Table, Vec<Record>) {
    let ds = generate(&rest_fz(), scale, seed);
    let (table, _) = ds.dedup_table();
    let cut = table.len() * 7 / 10;
    let mut boot = Table::new("boot", table.schema().clone());
    for r in table.records().iter().take(cut) {
        boot.push(r.clone());
    }
    let tail: Vec<Record> = table.records()[cut..].to_vec();
    (boot, tail)
}

fn cold(snap: &PipelineSnapshot, boot: &Table) -> StreamPipeline {
    let mut p = StreamPipeline::from_snapshot(snap, StreamOptions::default().threshold)
        .expect("snapshot restores");
    p.seed_base(boot).expect("bootstrap decisions replay");
    p
}

/// The pre-interning per-record derivation work, reproduced verbatim for
/// the before/after comparison: one `HashMap<String, u32>` bag per
/// tokenizer per attribute plus a separate string-keyed blocking-key
/// extraction (`normalize` ran up to three times per value).
mod reference {
    use std::collections::HashMap;
    use zeroer_tabular::Record;

    pub fn normalize(s: &str) -> String {
        let mut out = String::with_capacity(s.len());
        let mut last_space = true;
        for ch in s.chars() {
            if ch.is_alphanumeric() {
                out.extend(ch.to_lowercase());
                last_space = false;
            } else if !last_space {
                out.push(' ');
                last_space = true;
            }
        }
        while out.ends_with(' ') {
            out.pop();
        }
        out
    }

    pub fn words(s: &str) -> HashMap<String, u32> {
        let mut bag = HashMap::new();
        for t in normalize(s).split(' ').filter(|w| !w.is_empty()) {
            *bag.entry(t.to_string()).or_insert(0) += 1;
        }
        bag
    }

    pub fn qgrams(s: &str, q: usize) -> HashMap<String, u32> {
        let norm = normalize(s);
        let mut bag = HashMap::new();
        if norm.is_empty() {
            return bag;
        }
        let pad = "#".repeat(q - 1);
        let padded: Vec<char> = format!("{pad}{norm}{pad}").chars().collect();
        for w in padded.windows(q) {
            *bag.entry(w.iter().collect::<String>()).or_insert(0) += 1;
        }
        bag
    }

    /// Lowercased text plus the 3-gram and word bags of one attribute.
    pub type OldAttr = (String, HashMap<String, u32>, HashMap<String, u32>);

    /// One record's worth of the old cache + blocking-key work.
    pub struct OldCache {
        pub bags: Vec<OldAttr>,
        pub token_keys: Vec<String>,
        pub qgram_keys: Vec<String>,
    }

    pub fn build(record: &Record, block_attr: usize, block_q: usize) -> OldCache {
        let bags = record
            .values
            .iter()
            .map(|v| {
                let t = v.as_text().unwrap_or_default();
                (t.to_lowercase(), qgrams(&t, 3), words(&t))
            })
            .collect();
        let (token_keys, qgram_keys) = match record.values[block_attr].as_text() {
            None => (Vec::new(), Vec::new()),
            Some(t) => {
                let mut tk: Vec<String> = words(&t).into_keys().filter(|k| k.len() > 1).collect();
                tk.sort();
                let mut qk: Vec<String> = qgrams(&t, block_q).into_keys().collect();
                qk.sort();
                (tk, qk)
            }
        };
        OldCache {
            bags,
            token_keys,
            qgram_keys,
        }
    }

    /// Bytes of token text the old representation stored for one record
    /// (every bag and key list owned its strings).
    pub fn token_bytes(c: &OldCache) -> usize {
        let mut b = 0;
        for (_, qgm, word) in &c.bags {
            b += qgm.keys().map(String::len).sum::<usize>();
            b += word.keys().map(String::len).sum::<usize>();
        }
        b += c.token_keys.iter().map(String::len).sum::<usize>();
        b += c.qgram_keys.iter().map(String::len).sum::<usize>();
        b
    }
}

fn main() {
    let scale = env_f64("ZEROER_SCALE", 0.25);
    let scale_par = env_f64("ZEROER_SCALE_PAR", 1.0);
    let seed = env_f64("ZEROER_SEED", 42.0) as u64;
    let max_threads = env_f64("ZEROER_MAX_THREADS", 8.0) as usize;

    let (boot, tail) = split(scale, seed);
    let all: Vec<Record> = boot
        .records()
        .iter()
        .cloned()
        .chain(tail.iter().cloned())
        .collect();

    // The JSON document mirrored into BENCH_stream.json at the end;
    // sections append to it as they finish.
    let mut bench_sections = Obj::new();

    // ---- Machine-readable header -----------------------------------
    // The core count lives HERE, not in the final summary: tooling that
    // ingests pasted bench output reads one JSON line up front to learn
    // whether parallel-scaling numbers below were measured or SKIPPED.
    let cores = std::thread::available_parallelism().map_or(1, |p| p.get());
    println!("== bench_stream ==");
    let mut header = Obj::new();
    header
        .str("bench", "zeroer-bench-stream-v1")
        .u64("cores", cores as u64)
        .f64("scale", scale)
        .f64("scale_par", scale_par)
        .u64("seed", seed);
    match zeroer_obs::rss_bytes() {
        Some(rss) => header.u64("rss_bytes", rss),
        None => header.raw("rss_bytes", "null"),
    };
    let header_json = header.finish();
    println!("header: {header_json}");
    println!(
        "dataset Rest-FZ at scale {scale}: {} records, bootstrap on {}\n",
        all.len(),
        boot.len()
    );

    // ---- Section 1: derivation throughput -------------------------
    let cfg = IndexConfig::default();
    let reps = (20_000 / all.len().max(1)).max(1);
    println!(
        "== derivation: string-based caches vs one-pass interned ({} records × {reps} reps) ==",
        all.len()
    );

    let t_ref = Instant::now();
    let mut naive_bytes = 0usize;
    for rep in 0..reps {
        for r in &all {
            let c = reference::build(r, cfg.attr, cfg.qgram);
            if rep == 0 {
                naive_bytes += reference::token_bytes(&c);
            }
            std::hint::black_box(&c);
        }
    }
    let ref_secs = t_ref.elapsed().as_secs_f64();

    let t_new = Instant::now();
    let mut last: Option<(Deriver, Vec<DerivedRecord>)> = None;
    for _ in 0..reps {
        let mut deriver = Deriver::new(cfg.derive_config());
        let derived: Vec<DerivedRecord> = all.iter().map(|r| deriver.derive(&r.values)).collect();
        last = Some((deriver, derived));
    }
    let new_secs = t_new.elapsed().as_secs_f64();
    let (deriver, _derived) = last.expect("at least one rep");

    let per = (all.len() * reps) as f64;
    println!(
        "string-based caches (reference): {:.0} records/s ({:.1} µs/record)",
        per / ref_secs,
        ref_secs * 1e6 / per
    );
    println!(
        "one-pass interned derivation:    {:.0} records/s ({:.1} µs/record) → {:.2}×",
        per / new_secs,
        new_secs * 1e6 / per,
        ref_secs / new_secs
    );
    println!(
        "interner: {} distinct tokens, {} bytes; string-bag token storage: {} bytes ({:.1}% saved)\n",
        deriver.interner().len(),
        deriver.interner().bytes(),
        naive_bytes,
        100.0 * (1.0 - deriver.interner().bytes() as f64 / naive_bytes.max(1) as f64)
    );
    let mut o = Obj::new();
    o.f64("reference_records_per_s", per / ref_secs)
        .f64("interned_records_per_s", per / new_secs)
        .f64("speedup", ref_secs / new_secs)
        .u64("interned_tokens", deriver.interner().len() as u64)
        .u64("interned_bytes", deriver.interner().bytes() as u64);
    bench_sections.raw("derivation", &o.finish());

    // ---- Section 2: sequential per-record ingest -------------------
    let t0 = Instant::now();
    let (pipeline, report) =
        StreamPipeline::bootstrap(&boot, StreamOptions::default()).expect("bootstrap");
    let bootstrap_secs = t0.elapsed().as_secs_f64();
    println!(
        "== sequential ingest (bootstrap: {:.3} s, {} candidate pairs, {} EM iterations) ==",
        bootstrap_secs,
        report.pairs.len(),
        report.em_iterations
    );
    let snap_seq = pipeline.snapshot();
    drop(pipeline);

    let n = tail.len();
    // One untimed warmup pass so neither timed run below gets a cold
    // allocator/cache advantage over the other.
    let mut warm = cold(&snap_seq, &boot);
    for r in tail.clone() {
        warm.ingest(r);
    }
    drop(warm);

    // Metrics-on run: the headline numbers, and the source of the
    // per-record latency percentiles (registry histogram
    // `stream.ingest.ns`). Reset first so the percentiles cover exactly
    // this loop. Clones happen outside the timed region: the measured
    // loop should pay for ingest, not for Record copies.
    zeroer_obs::reset();
    let mut pipeline = cold(&snap_seq, &boot);
    let tail_seq = tail.clone();
    let t1 = Instant::now();
    let mut scored = 0usize;
    let mut matched = 0usize;
    for r in tail_seq {
        let out = pipeline.ingest(r);
        scored += out.candidates;
        matched += usize::from(!out.is_new_entity());
    }
    let ingest_secs = t1.elapsed().as_secs_f64();

    // Metrics-off run over an identical cold pipeline: the
    // instrumentation-overhead check (criterion: < 5 %).
    let mut off = cold(&snap_seq, &boot);
    off.set_metrics(false);
    let tail_off = tail.clone();
    let t_off = Instant::now();
    for r in tail_off {
        off.ingest(r);
    }
    let off_secs = t_off.elapsed().as_secs_f64();
    assert_eq!(
        pipeline.clusters(),
        off.clusters(),
        "metrics must be observational"
    );
    drop(off);

    let ingest_hist = zeroer_obs::histogram("stream.ingest.ns").snapshot();
    let overhead_pct = (ingest_secs / off_secs - 1.0) * 100.0;
    println!(
        "ingest: {n} records in {:.4} s → {:.0} records/s ({:.1} µs/record)",
        ingest_secs,
        n as f64 / ingest_secs,
        ingest_secs * 1e6 / n as f64
    );
    println!(
        "        {scored} candidates scored, {matched} records joined existing entities, {} clusters",
        pipeline.clusters().len()
    );
    println!(
        "        per-record latency p50 {:.1} µs / p95 {:.1} µs / p99 {:.1} µs (stream.ingest.ns)",
        ingest_hist.percentile(50.0) / 1e3,
        ingest_hist.percentile(95.0) / 1e3,
        ingest_hist.percentile(99.0) / 1e3
    );
    println!(
        "        instrumentation overhead: metrics-off {:.1} µs/record → {overhead_pct:+.2} % (criterion < 5 %)\n",
        off_secs * 1e6 / n as f64
    );
    let mut o = Obj::new();
    o.u64("records", n as u64)
        .f64("records_per_s", n as f64 / ingest_secs)
        .f64("us_per_record", ingest_secs * 1e6 / n as f64)
        .f64("p50_ns", ingest_hist.percentile(50.0))
        .f64("p95_ns", ingest_hist.percentile(95.0))
        .f64("p99_ns", ingest_hist.percentile(99.0))
        .f64("metrics_overhead_pct", overhead_pct);
    bench_sections.raw("sequential_ingest", &o.finish());

    // ---- Section 3: scoring-loop allocation delta ------------------
    // Same feature rows, same scorer; the only difference is one Vec
    // allocation per candidate (raw_row) vs. one reused buffer
    // (raw_row_into, what ingest actually runs).
    let snap = pipeline.snapshot();
    let featurizer = RowFeaturizer::new(&snap.attr_types);
    let scorer = snap.model.scorer().expect("snapshot scorer");
    let mut score_deriver = Deriver::new(cfg.derive_config());
    let caches: Vec<DerivedRecord> = boot
        .records()
        .iter()
        .map(|r| score_deriver.derive(&r.values))
        .collect();
    let interner = score_deriver.interner();
    let pairs: Vec<(usize, usize)> = (0..caches.len().saturating_sub(1))
        .map(|i| (i, i + 1))
        .collect();
    let score_reps = (20_000 / pairs.len().max(1)).max(1);

    let t2 = Instant::now();
    let mut acc_alloc = 0.0f64;
    for _ in 0..score_reps {
        for &(i, j) in &pairs {
            let mut row = featurizer.raw_row(interner, &caches[i], &caches[j]);
            acc_alloc += scorer.score_raw(&mut row);
        }
    }
    let alloc_secs = t2.elapsed().as_secs_f64();

    let t3 = Instant::now();
    let mut acc_reuse = 0.0f64;
    let mut buf: Vec<f64> = Vec::new();
    for _ in 0..score_reps {
        for &(i, j) in &pairs {
            featurizer.raw_row_into(interner, &caches[i], &caches[j], &mut buf);
            acc_reuse += scorer.score_raw(&mut buf);
        }
    }
    let reuse_secs = t3.elapsed().as_secs_f64();
    assert_eq!(acc_alloc.to_bits(), acc_reuse.to_bits(), "paths must agree");
    let per = (pairs.len() * score_reps) as f64;
    println!(
        "== scoring-loop allocation delta ({} scores) ==",
        pairs.len() * score_reps
    );
    println!(
        "raw_row (alloc/candidate): {:.3} µs/score | raw_row_into (reused buffer): {:.3} µs/score → {:+.1} %\n",
        alloc_secs * 1e6 / per,
        reuse_secs * 1e6 / per,
        (reuse_secs / alloc_secs - 1.0) * 100.0
    );
    let mut o = Obj::new();
    o.f64("raw_row_us_per_score", alloc_secs * 1e6 / per)
        .f64("raw_row_into_us_per_score", reuse_secs * 1e6 / per)
        .f64("delta_pct", (reuse_secs / alloc_secs - 1.0) * 100.0);
    bench_sections.raw("scoring_alloc", &o.finish());

    // ---- Section 3b: batched struct-of-arrays scoring --------------
    // The production shape: each record is scored as the "new" arrival
    // against a window of previous records — exactly how
    // `score_candidates` batches one ingest's candidate list. Scalar =
    // raw_row_into + score_raw per candidate (what `batched_scoring =
    // false` runs); batched = one fill_columns + score_batch per
    // arrival (the default). The batched path must be bit-identical AND
    // faster: it reuses one DP scratch across the whole column fill,
    // dedups repeated candidate values per attribute (low-cardinality
    // columns collapse to a handful of kernel calls), and evaluates
    // each covariance block once per batch instead of re-walking the
    // block layout per row.
    let batch_fz = BatchFeaturizer::new(&snap.attr_types);
    const WINDOW: usize = 48;
    let windows: Vec<(usize, usize)> = (1..caches.len())
        .map(|i| (i, i.saturating_sub(WINDOW)))
        .collect();
    let batch_scores: usize = windows.iter().map(|&(i, lo)| i - lo).sum();
    let batch_reps = (20_000 / batch_scores.max(1)).max(1);

    let t4 = Instant::now();
    let mut acc_scalar = 0.0f64;
    for _ in 0..batch_reps {
        for &(i, lo) in &windows {
            for j in lo..i {
                featurizer.raw_row_into(interner, &caches[i], &caches[j], &mut buf);
                acc_scalar += scorer.score_raw(&mut buf);
            }
        }
    }
    let scalar_secs = t4.elapsed().as_secs_f64();

    let t5 = Instant::now();
    let mut acc_batched = 0.0f64;
    let mut batch = ScoreBatch::new();
    for _ in 0..batch_reps {
        for &(i, lo) in &windows {
            batch_fz.fill_columns(
                interner,
                i - lo,
                |k| (&caches[i], &caches[lo + k]),
                batch.cols_mut(),
            );
            for &p in scorer.score_batch(&mut batch) {
                acc_batched += p;
            }
        }
    }
    let batched_secs = t5.elapsed().as_secs_f64();
    assert_eq!(
        acc_scalar.to_bits(),
        acc_batched.to_bits(),
        "batched scoring must be bit-identical to scalar"
    );
    let speedup = scalar_secs / batched_secs;
    let batch_per = (batch_scores * batch_reps) as f64;
    println!(
        "== batched struct-of-arrays scoring ({} scores, window {WINDOW}) ==",
        batch_scores * batch_reps
    );
    println!(
        "scalar (row-at-a-time): {:.3} µs/score | batched (fill_columns + score_batch): \
         {:.3} µs/score → {speedup:.2}× (criterion ≥ 1.3×)\n",
        scalar_secs * 1e6 / batch_per,
        batched_secs * 1e6 / batch_per
    );
    let mut o = Obj::new();
    o.u64("scores", (batch_scores * batch_reps) as u64)
        .f64("scalar_us_per_score", scalar_secs * 1e6 / batch_per)
        .f64("batched_us_per_score", batched_secs * 1e6 / batch_per)
        .f64("speedup", speedup);
    bench_sections.raw("batched_scoring", &o.finish());

    // ---- Section 4: multi-thread batch-ingest scaling --------------
    let (boot_par, tail_par) = split(scale_par, seed);
    let (fitted, _) =
        StreamPipeline::bootstrap(&boot_par, StreamOptions::default()).expect("bootstrap");
    let snap_par = fitted.snapshot();
    println!(
        "== parallel batch ingest (Rest-FZ at scale {scale_par}: {} streamed records, {cores} core(s) available) ==",
        tail_par.len()
    );
    let mut parallel = Obj::new();
    parallel.bool("skipped", cores < 2);
    if cores < 2 {
        // Speedup numbers off a single core are pure pool overhead and
        // read as a scaling regression; don't print misleading 1.0×
        // lines, just prove determinism at one multi-thread point.
        println!(
            "SKIPPED: parallel-scaling timings need >1 core (available_parallelism = 1); \
             run on multi-core hardware for the speedup numbers."
        );
        let mut seq = cold(&snap_par, &boot_par);
        seq.ingest_batch_parallel(tail_par.clone(), 1);
        let mut par = cold(&snap_par, &boot_par);
        par.ingest_batch_parallel(tail_par.clone(), 4);
        let identical = seq.clusters() == par.clusters();
        println!(
            "determinism check (threads 1 vs 4): {}\n",
            if identical {
                "identical clusters"
            } else {
                "CLUSTER MISMATCH"
            }
        );
        parallel.bool("determinism_1_vs_4", identical);
    } else {
        let mut baseline = f64::NAN;
        let mut reference_clusters: Option<Vec<Vec<usize>>> = None;
        let mut threads = 1;
        let mut rows = Arr::new();
        while threads <= max_threads {
            let mut p = cold(&snap_par, &boot_par);
            let t = Instant::now();
            let outcomes = p.ingest_batch_parallel(tail_par.clone(), threads);
            let secs = t.elapsed().as_secs_f64();
            if threads == 1 {
                baseline = secs;
            }
            let clusters = p.clusters();
            let parity = match &reference_clusters {
                None => {
                    reference_clusters = Some(clusters);
                    "reference"
                }
                Some(reference) if *reference == clusters => "identical clusters",
                Some(_) => "CLUSTER MISMATCH",
            };
            println!(
                "threads={threads}: {:.4} s → {:.0} records/s ({:.2}× vs 1 thread, {} outcomes, {parity})",
                secs,
                tail_par.len() as f64 / secs,
                baseline / secs,
                outcomes.len()
            );
            let mut row = Obj::new();
            row.u64("threads", threads as u64)
                .f64("records_per_s", tail_par.len() as f64 / secs)
                .f64("speedup_vs_1", baseline / secs)
                .bool("cluster_parity", parity != "CLUSTER MISMATCH");
            rows.raw(&row.finish());
            threads *= 2;
        }
        parallel.raw("threads", &rows.finish());
        println!();
    }
    bench_sections.raw("parallel_ingest", &parallel.finish());

    // ---- Section 5: retraction + compaction ------------------------
    // Retract ~40 % of the store, then compact. Per-retraction latency
    // includes the component rebuild and the watermark check (the
    // default 0.5 watermark stays armed; a line is printed if it
    // fires).
    let mut p = cold(&snap_par, &boot_par);
    p.ingest_batch_parallel(tail_par.clone(), 1.max(cores));
    let total = p.len();
    let victims: Vec<usize> = (0..total).filter(|i| i % 3 == 0 || i % 10 == 9).collect();
    println!(
        "== retraction + compaction ({} of {} records retracted) ==",
        victims.len(),
        total
    );
    let t4 = Instant::now();
    let mut max_component = 0usize;
    for &v in &victims {
        let r = p.retract(v).expect("live record");
        max_component = max_component.max(r.component_size);
        if let Some(auto) = r.auto_compaction {
            println!(
                "watermark compaction fired at epoch {}: {} bytes reclaimed",
                auto.epoch,
                auto.bytes_reclaimed()
            );
        }
    }
    let retract_secs = t4.elapsed().as_secs_f64();
    println!(
        "retract: {} records in {:.4} s → {:.0} retractions/s ({:.1} µs each, largest component rebuilt: {max_component})",
        victims.len(),
        retract_secs,
        victims.len() as f64 / retract_secs,
        retract_secs * 1e6 / victims.len() as f64
    );
    let stats = p.stats();
    let t5 = Instant::now();
    let report = p.compact();
    let compact_secs = t5.elapsed().as_secs_f64();
    println!(
        "compact: {:.4} s → {} bytes reclaimed ({} of {} postings dropped, {} buckets freed, {} log edges pruned)",
        compact_secs,
        report.bytes_reclaimed(),
        report.index.postings_dropped,
        stats.index.postings(),
        report.index.buckets_freed,
        report.store.decisions_pruned
    );
    let mut o = Obj::new();
    o.u64("retracted", victims.len() as u64)
        .f64("retractions_per_s", victims.len() as f64 / retract_secs)
        .f64("compact_secs", compact_secs)
        .u64("bytes_reclaimed", report.bytes_reclaimed() as u64);
    bench_sections.raw("retraction", &o.finish());

    // ---- Section 6: streaming record linkage -----------------------
    // Freeze a three-model linkage fit on (left, 70 % of right), then
    // stream the remaining right-side records through the frozen cross
    // model: sequential throughput plus a thread-parity check.
    let ds = generate(&rest_fz(), scale, seed);
    let cut = ds.right.len() * 7 / 10;
    let mut boot_right = Table::new("right-boot", ds.right.schema().clone());
    for r in ds.right.records().iter().take(cut) {
        boot_right.push(r.clone());
    }
    let link_tail: Vec<Record> = ds.right.records()[cut..].to_vec();
    let t6 = Instant::now();
    let (link, link_report) =
        LinkPipeline::bootstrap(&ds.left, &boot_right, StreamOptions::default())
            .expect("linkage bootstrap");
    let link_boot_secs = t6.elapsed().as_secs_f64();
    let link_snap = link.snapshot();
    println!(
        "\n== streaming linkage (Rest-FZ at scale {scale}: left {} + right {} bootstrap, {} streamed) ==",
        ds.left.len(),
        cut,
        link_tail.len()
    );
    println!(
        "bootstrap: {:.3} s ({} cross candidates, {} EM iterations, snapshot {} bytes)",
        link_boot_secs,
        link_report.pairs.len(),
        link_report.em_iterations,
        link_snap.to_json().len()
    );
    let cold_link = || {
        let mut p = LinkPipeline::from_snapshot(&link_snap, StreamOptions::default().threshold)
            .expect("link snapshot restores");
        p.seed_base(&ds.left, &boot_right).expect("seed");
        p
    };
    let mut p = cold_link();
    let t7 = Instant::now();
    let mut linked = 0usize;
    for r in &link_tail {
        if !p.ingest(r.clone(), Side::Right).is_new_entity() {
            linked += 1;
        }
    }
    let link_secs = t7.elapsed().as_secs_f64();
    println!(
        "sequential right-side ingest: {:.0} records/s ({:.1} µs/record, {} of {} linked across)",
        link_tail.len() as f64 / link_secs,
        link_secs * 1e6 / link_tail.len().max(1) as f64,
        linked,
        link_tail.len()
    );
    let mut par = cold_link();
    par.ingest_batch_parallel(link_tail.clone(), Side::Right, 4);
    let link_parity = p.clusters() == par.clusters();
    println!(
        "thread parity (1 vs 4): {}",
        if link_parity {
            "identical clusters"
        } else {
            "CLUSTER MISMATCH"
        }
    );
    let mut o = Obj::new();
    o.u64("streamed", link_tail.len() as u64)
        .f64(
            "records_per_s",
            link_tail.len() as f64 / link_secs.max(f64::MIN_POSITIVE),
        )
        .bool("thread_parity", link_parity);
    bench_sections.raw("linkage", &o.finish());

    // ---- BENCH_stream.json + summary -------------------------------
    // The core count already sits in the machine-readable header up
    // top; the summary only restates whether the parallel-scaling
    // criterion (>1.5× at 4 threads) was measured or SKIPPED — a
    // 1-core run proves determinism, never speedup.
    let mut doc = Obj::new();
    doc.str("schema", "zeroer-bench-stream-v1")
        .raw("header", &header_json)
        .raw("sections", &bench_sections.finish());
    let out_path = std::env::var("ZEROER_BENCH_OUT").unwrap_or_else(|_| "BENCH_stream.json".into());
    match std::fs::write(&out_path, doc.finish() + "\n") {
        Ok(()) => println!("\nmachine-readable results written to {out_path}"),
        Err(e) => println!("\nWARNING: cannot write {out_path}: {e}"),
    }
    println!(
        "== summary{} ==",
        if cores < 2 {
            ": parallel-scaling timings were SKIPPED — rerun on multi-core hardware \
             to demonstrate the >1.5×@4-threads criterion"
        } else {
            ""
        }
    );
}
