//! Streaming-ingest throughput: bootstrap on 70 % of a dedup dataset,
//! then measure per-record ingest latency (incremental blocking +
//! frozen-model scoring + cluster assignment) over the remaining 30 %.
//!
//! Knobs: `ZEROER_SCALE` (default 0.25), `ZEROER_SEED` (default 42).

use std::time::Instant;
use zeroer_datagen::generate;
use zeroer_datagen::profiles::rest_fz;
use zeroer_stream::{StreamOptions, StreamPipeline};
use zeroer_tabular::{Record, Table};

fn env_f64(key: &str, default: f64) -> f64 {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let scale = env_f64("ZEROER_SCALE", 0.25);
    let seed = env_f64("ZEROER_SEED", 42.0) as u64;
    let ds = generate(&rest_fz(), scale, seed);

    let (table, _truth) = ds.dedup_table();
    let cut = table.len() * 7 / 10;
    let mut bootstrap_table = Table::new("boot", table.schema().clone());
    for r in table.records().iter().take(cut) {
        bootstrap_table.push(r.clone());
    }

    println!("== bench_stream: incremental ingest throughput ==");
    println!(
        "dataset Rest-FZ at scale {scale}: {} records, bootstrap on {cut}\n",
        table.len()
    );

    let t0 = Instant::now();
    let (mut pipeline, report) =
        StreamPipeline::bootstrap(&bootstrap_table, StreamOptions::default()).expect("bootstrap");
    let bootstrap_secs = t0.elapsed().as_secs_f64();
    println!(
        "bootstrap: {:.3} s ({} candidate pairs, {} EM iterations)",
        bootstrap_secs,
        report.pairs.len(),
        report.em_iterations
    );

    let tail: Vec<Record> = table.records()[cut..].to_vec();
    let n = tail.len();
    let t1 = Instant::now();
    let mut scored = 0usize;
    let mut matched = 0usize;
    for r in tail {
        let out = pipeline.ingest(r);
        scored += out.candidates;
        matched += usize::from(!out.is_new_entity());
    }
    let ingest_secs = t1.elapsed().as_secs_f64();

    println!(
        "ingest: {n} records in {:.4} s → {:.0} records/s ({:.1} µs/record)",
        ingest_secs,
        n as f64 / ingest_secs,
        ingest_secs * 1e6 / n as f64
    );
    println!(
        "        {scored} candidates scored, {matched} records joined existing entities, {} clusters",
        pipeline.clusters().len()
    );
}
