//! Streaming drift detection against the frozen model's expectations.
//!
//! A frozen [`ModelSnapshot`] encodes what
//! candidate pairs *should* look like: per-feature mixture moments in
//! the prepared (imputed + min-max scaled) feature space, and a match
//! prior `π_M`. As the live store grows past the bootstrap
//! distribution, the stream's scored candidates wander away from those
//! expectations — the signal that the model has gone stale and a
//! [`refit`](crate::StreamPipeline::refit) is due.
//!
//! [`DriftMonitor`] maintains streaming summaries of everything the
//! scoring hot path already computes — prepared feature columns,
//! posteriors, match decisions — and compares them against the frozen
//! baseline. The headline number is [`DriftMonitor::divergence`]: the
//! largest per-dimension shift of the stream's mean away from the
//! baseline mean, in units of the baseline spread (a z-shift). A
//! divergence of `w` reads as "some feature's streaming mean sits `w`
//! baseline standard deviations from where the model expects it".
//! `StreamOptions::refresh_watermark` compares this value against a
//! configurable threshold to auto-trigger refit, exactly the way
//! `compact_watermark` triggers compaction.
//!
//! Determinism: accumulation is *observational* (nothing here feeds
//! back into scoring) and *thread-count independent*. Parallel ingest
//! workers compute one `DriftSample` per record — sums over that
//! record's candidate rows, in candidate order — and the single writer
//! folds samples in ingest order, so the monitor passes through exactly
//! the float states sequential ingest produces. The auto-trigger
//! therefore fires at the same batch boundary at any thread count.
//!
//! Published metrics (`drift.*` gauges, fixed-point micro-units because
//! gauges are `u64`; see `crates/obs/README.md`): divergence, match
//! rate vs. the baseline `π_M`, posterior mean/spread, and window
//! sizes, plus a `drift.posterior` histogram of per-record mean
//! posteriors.

use zeroer_core::{ModelSnapshot, ScoreBatch};

/// Fixed-point scale for publishing fractional drift values through the
/// `u64`-only gauge API: 1.0 → 1\_000\_000.
const MICRO: f64 = 1e6;

/// Baseline spreads below this floor are clamped before dividing, so a
/// feature the fit considered (near-)constant cannot turn numeric noise
/// into unbounded divergence.
const SPREAD_FLOOR: f64 = 1e-6;

/// Per-record summary of one scored candidate list: sums over the
/// record's prepared feature rows and posteriors, in candidate order.
/// Computed where the scoring happened (possibly on a worker thread)
/// and folded into the [`DriftMonitor`] sequentially in ingest order,
/// which keeps accumulation bit-identical at any thread count.
#[derive(Debug, Clone, Default)]
pub(crate) struct DriftSample {
    /// Candidate rows summed (the record's candidate count).
    rows: u64,
    /// Per-feature sums of the prepared (imputed + normalized) values.
    feature_sums: Vec<f64>,
    /// Per-feature sums of squares.
    feature_sumsqs: Vec<f64>,
    /// Sum of the candidates' posteriors.
    posterior_sum: f64,
    /// Sum of squared posteriors.
    posterior_sumsq: f64,
}

impl DriftSample {
    /// Summarizes the batch buffers `score_candidates` just filled
    /// (batched path only — the scalar fallback never materializes
    /// prepared columns). Returns `None` for an empty candidate list,
    /// whose stale buffers belong to some earlier record.
    pub(crate) fn from_batch(batch: &ScoreBatch, candidates: usize) -> Option<Self> {
        if candidates == 0 {
            return None;
        }
        let cols = batch.cols();
        let scores = batch.scores();
        debug_assert_eq!(cols.rows(), candidates);
        debug_assert_eq!(scores.len(), candidates);
        let dim = cols.cols();
        let mut feature_sums = vec![0.0; dim];
        let mut feature_sumsqs = vec![0.0; dim];
        for j in 0..dim {
            let (mut s, mut sq) = (0.0, 0.0);
            for &v in cols.col(j) {
                s += v;
                sq += v * v;
            }
            feature_sums[j] = s;
            feature_sumsqs[j] = sq;
        }
        let (mut ps, mut psq) = (0.0, 0.0);
        for &p in scores {
            ps += p;
            psq += p * p;
        }
        Some(Self {
            rows: candidates as u64,
            feature_sums,
            feature_sumsqs,
            posterior_sum: ps,
            posterior_sumsq: psq,
        })
    }
}

/// Streaming posterior/feature summaries compared against the frozen
/// model's expectations. One per pipeline; see the module docs for the
/// determinism and publication contract.
#[derive(Debug, Clone)]
pub struct DriftMonitor {
    /// Per-feature mixture means of the baseline model (prepared space).
    baseline_means: Vec<f64>,
    /// Per-feature mixture spreads (standard deviations) of the baseline.
    baseline_spreads: Vec<f64>,
    /// The baseline match prior `π_M` — the model's expected match rate
    /// and expected posterior mean.
    baseline_rate: f64,
    /// Per-feature streaming sums since the last (re)base.
    feature_sums: Vec<f64>,
    feature_sumsqs: Vec<f64>,
    /// Candidate rows folded into the feature/posterior sums.
    rows: u64,
    posterior_sum: f64,
    posterior_sumsq: f64,
    /// Records observed in the window (with or without candidates).
    records: u64,
    /// Candidates observed in the window.
    candidates: u64,
    /// Above-threshold match decisions in the window.
    matches: u64,
}

impl DriftMonitor {
    /// A monitor baselined on a frozen model's mixture moments.
    pub fn new(snapshot: &ModelSnapshot) -> Self {
        let (baseline_means, baseline_spreads) = snapshot.mixture_moments();
        let dim = baseline_means.len();
        Self {
            baseline_means,
            baseline_spreads,
            baseline_rate: snapshot.pi_m,
            feature_sums: vec![0.0; dim],
            feature_sumsqs: vec![0.0; dim],
            rows: 0,
            posterior_sum: 0.0,
            posterior_sumsq: 0.0,
            records: 0,
            candidates: 0,
            matches: 0,
        }
    }

    /// Folds one ingested record's outcome into the window. `sample`
    /// carries the feature/posterior sums when the batched scoring path
    /// produced them (`None` for candidate-less records and under the
    /// scalar fallback, which still contribute to the match-rate
    /// window).
    pub(crate) fn fold(&mut self, candidates: usize, matched: usize, sample: Option<&DriftSample>) {
        self.records += 1;
        self.candidates += candidates as u64;
        self.matches += matched as u64;
        if let Some(s) = sample {
            self.rows += s.rows;
            for (acc, v) in self.feature_sums.iter_mut().zip(&s.feature_sums) {
                *acc += v;
            }
            for (acc, v) in self.feature_sumsqs.iter_mut().zip(&s.feature_sumsqs) {
                *acc += v;
            }
            self.posterior_sum += s.posterior_sum;
            self.posterior_sumsq += s.posterior_sumsq;
        }
    }

    /// Re-baselines on a freshly fitted model and clears the window —
    /// called after every successful refit.
    pub(crate) fn rebase(&mut self, snapshot: &ModelSnapshot) {
        *self = Self::new(snapshot);
    }

    /// Clears the streaming window, keeping the baseline — used after a
    /// failed auto-refit so the trigger does not re-fire every record.
    pub(crate) fn clear_window(&mut self) {
        let dim = self.baseline_means.len();
        self.feature_sums = vec![0.0; dim];
        self.feature_sumsqs = vec![0.0; dim];
        self.rows = 0;
        self.posterior_sum = 0.0;
        self.posterior_sumsq = 0.0;
        self.records = 0;
        self.candidates = 0;
        self.matches = 0;
    }

    /// Records observed since the last (re)base.
    pub fn window_records(&self) -> u64 {
        self.records
    }

    /// Streaming match rate (above-threshold decisions per candidate);
    /// 0 before any candidate.
    pub fn match_rate(&self) -> f64 {
        if self.candidates == 0 {
            0.0
        } else {
            self.matches as f64 / self.candidates as f64
        }
    }

    /// The baseline match prior `π_M`.
    pub fn baseline_rate(&self) -> f64 {
        self.baseline_rate
    }

    /// Mean posterior over the window's scored candidates.
    pub fn posterior_mean(&self) -> f64 {
        if self.rows == 0 {
            0.0
        } else {
            self.posterior_sum / self.rows as f64
        }
    }

    /// Posterior spread (standard deviation) over the window.
    pub fn posterior_spread(&self) -> f64 {
        if self.rows == 0 {
            return 0.0;
        }
        let mean = self.posterior_mean();
        (self.posterior_sumsq / self.rows as f64 - mean * mean)
            .max(0.0)
            .sqrt()
    }

    /// Largest per-feature z-shift of the streaming mean away from the
    /// baseline mixture mean (in baseline-spread units); 0 before any
    /// scored candidate.
    pub fn max_feature_shift(&self) -> f64 {
        if self.rows == 0 {
            return 0.0;
        }
        let n = self.rows as f64;
        let mut max = 0.0f64;
        for ((&sum, &bm), &bs) in self
            .feature_sums
            .iter()
            .zip(&self.baseline_means)
            .zip(&self.baseline_spreads)
        {
            let shift = (sum / n - bm).abs() / bs.max(SPREAD_FLOOR);
            max = max.max(shift);
        }
        max
    }

    /// The headline divergence: the largest z-shift across every
    /// feature dimension *and* the posterior dimension (whose baseline
    /// is `π_M` with the Bernoulli spread `sqrt(π_M (1 − π_M))`, since
    /// a well-separated fit concentrates posteriors near 0 and 1).
    /// `StreamOptions::refresh_watermark` compares against this value.
    pub fn divergence(&self) -> f64 {
        if self.rows == 0 {
            return 0.0;
        }
        let post_spread = (self.baseline_rate * (1.0 - self.baseline_rate))
            .max(0.0)
            .sqrt();
        let post_shift =
            (self.posterior_mean() - self.baseline_rate).abs() / post_spread.max(SPREAD_FLOOR);
        self.max_feature_shift().max(post_shift)
    }

    /// Publishes the window as `drift.*` gauges (fixed-point micros)
    /// and records the window's mean posterior into the
    /// `drift.posterior` histogram. Called at ingest-call boundaries
    /// when the pipeline's metrics are on.
    pub fn publish(&self) {
        let micros = |v: f64| (v.max(0.0) * MICRO) as u64;
        zeroer_obs::gauge("drift.divergence_micros").set(micros(self.divergence()));
        zeroer_obs::gauge("drift.max_feature_shift_micros").set(micros(self.max_feature_shift()));
        zeroer_obs::gauge("drift.match_rate_micros").set(micros(self.match_rate()));
        zeroer_obs::gauge("drift.baseline_match_rate_micros").set(micros(self.baseline_rate));
        zeroer_obs::gauge("drift.posterior_mean_micros").set(micros(self.posterior_mean()));
        zeroer_obs::gauge("drift.posterior_spread_micros").set(micros(self.posterior_spread()));
        zeroer_obs::gauge("drift.window_records").set(self.records);
        zeroer_obs::gauge("drift.window_candidates").set(self.candidates);
        if self.rows > 0 {
            zeroer_obs::histogram("drift.posterior").record(micros(self.posterior_mean()));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snapshot() -> ModelSnapshot {
        // Two singleton groups: feature 0 ~ (M: 0.9/0.01, U: 0.1/0.01),
        // feature 1 ~ (M: 0.5/0.04, U: 0.5/0.04), pi_m = 0.25.
        ModelSnapshot {
            pi_m: 0.25,
            group_sizes: vec![1, 1],
            mean_m: vec![0.9, 0.5],
            mean_u: vec![0.1, 0.5],
            cov_m: vec![vec![0.01], vec![0.04]],
            cov_u: vec![vec![0.01], vec![0.04]],
            ranges: vec![(0.0, 1.0), (0.0, 1.0)],
            impute_means: vec![0.5, 0.5],
            feature_names: vec!["f0".into(), "f1".into()],
        }
    }

    #[test]
    fn mixture_moments_match_hand_computation() {
        let snap = snapshot();
        let (means, spreads) = snap.mixture_moments();
        // mean = 0.25*0.9 + 0.75*0.1 = 0.3
        assert!((means[0] - 0.3).abs() < 1e-12);
        assert!((means[1] - 0.5).abs() < 1e-12);
        // var = 0.25*(0.01+0.81) + 0.75*(0.01+0.01) - 0.09 = 0.13
        assert!((spreads[0] - 0.13f64.sqrt()).abs() < 1e-12);
        assert!((spreads[1] - 0.2).abs() < 1e-12);
    }

    #[test]
    fn fresh_monitor_reports_zero_divergence() {
        let m = DriftMonitor::new(&snapshot());
        assert_eq!(m.divergence(), 0.0);
        assert_eq!(m.window_records(), 0);
        assert_eq!(m.match_rate(), 0.0);
    }

    #[test]
    fn on_distribution_samples_stay_near_zero_and_shifts_diverge() {
        let snap = snapshot();
        let mut m = DriftMonitor::new(&snap);
        // Fold synthetic samples sitting exactly on the baseline means
        // with posteriors at pi_m: divergence must stay ~0.
        let on = DriftSample {
            rows: 4,
            feature_sums: vec![0.3 * 4.0, 0.5 * 4.0],
            feature_sumsqs: vec![0.3 * 0.3 * 4.0, 0.5 * 0.5 * 4.0],
            posterior_sum: 0.25 * 4.0,
            posterior_sumsq: 0.25 * 0.25 * 4.0,
        };
        for _ in 0..8 {
            m.fold(4, 1, Some(&on));
        }
        assert!(m.divergence() < 1e-9, "divergence {}", m.divergence());
        assert!((m.match_rate() - 0.25).abs() < 1e-12);

        // Now a shifted stream: feature 0 mean drifts to 0.7 — that is
        // (0.7 - 0.3) / sqrt(0.13) ≈ 1.11 baseline spreads.
        let mut shifted = DriftMonitor::new(&snap);
        let off = DriftSample {
            rows: 4,
            feature_sums: vec![0.7 * 4.0, 0.5 * 4.0],
            feature_sumsqs: vec![0.49 * 4.0, 0.25 * 4.0],
            posterior_sum: 0.25 * 4.0,
            posterior_sumsq: 0.0625 * 4.0,
        };
        shifted.fold(4, 1, Some(&off));
        let expect = 0.4 / 0.13f64.sqrt();
        assert!((shifted.divergence() - expect).abs() < 1e-9);
    }

    #[test]
    fn posterior_dimension_feeds_divergence() {
        let snap = snapshot();
        let mut m = DriftMonitor::new(&snap);
        // Posteriors collapse to ~1 while features stay on-baseline:
        // the posterior z-shift must carry the divergence.
        let s = DriftSample {
            rows: 2,
            feature_sums: vec![0.6, 1.0],
            feature_sumsqs: vec![0.18, 0.5],
            posterior_sum: 2.0,
            posterior_sumsq: 2.0,
        };
        m.fold(2, 2, Some(&s));
        let expect = 0.75 / (0.25f64 * 0.75).sqrt();
        assert!((m.divergence() - expect).abs() < 1e-9);
    }

    #[test]
    fn rebase_and_clear_window_reset_the_stream() {
        let snap = snapshot();
        let mut m = DriftMonitor::new(&snap);
        let s = DriftSample {
            rows: 1,
            feature_sums: vec![0.9, 0.9],
            feature_sumsqs: vec![0.81, 0.81],
            posterior_sum: 0.9,
            posterior_sumsq: 0.81,
        };
        m.fold(1, 1, Some(&s));
        assert!(m.divergence() > 0.0);
        m.clear_window();
        assert_eq!(m.divergence(), 0.0);
        assert_eq!(m.window_records(), 0);
        m.fold(1, 1, Some(&s));
        m.rebase(&snap);
        assert_eq!(m.divergence(), 0.0);
    }
}
