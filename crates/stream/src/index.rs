//! Incremental blocking indexes.
//!
//! The batch blockers enumerate candidate pairs by joining two complete
//! inverted indexes. Streaming ingest needs the *online* form of the same
//! computation: insert one record and get back the indices of previously
//! inserted records it shares a blocking key with, in one pass.
//!
//! [`IncrementalIndex`] mirrors the batch dedup recipe the high-level
//! pipeline uses — the union of word-token blocking and character q-gram
//! blocking on one key attribute (`TokenBlocker ∪ QgramBlocker`) — and
//! consumes the *same* blocking keys the batch blockers do: interned
//! symbols extracted by the record-derivation layer
//! (`zeroer_textsim::derive`), so batch and incremental candidate sets
//! cannot drift apart. Buckets are keyed by [`Sym`], not strings — no key
//! text is duplicated into the index.
//!
//! ## Frequency cap
//!
//! The batch blockers skip "stop word" buckets whose pair product exceeds
//! `max_bucket²` (for a self-join: buckets with more than `max_bucket`
//! members). Online, a bucket's final size is unknowable, so the cap is
//! applied at the crossing point: a bucket that would exceed `max_bucket`
//! members is permanently retired ("dead") and never pairs again. Inserts
//! *before* the crossing already paired through the bucket — those early
//! pairs are the one bounded divergence from batch semantics (at most
//! `max_bucket·(max_bucket−1)/2` extra pairs per hot key, and none on
//! datasets where no bucket overflows; see the parity tests).
//!
//! ## Retraction & compaction
//!
//! Records can be withdrawn after insertion (`EntityStore::retract`).
//! The index handles this with **tombstoned postings**: retraction marks
//! the record's posting dead in every bucket that holds it (a per-bucket
//! dead count, O(bucket) per key), and lookups filter members against
//! the caller's tombstone set — so a retracted record never appears as a
//! candidate again, and the frequency cap counts *live* members only.
//! The postings themselves stay in place until [`IncrementalIndex::
//! compact`] (or the sharded equivalent) drops them, frees buckets that
//! end up empty, removes cap-retired `Dead` buckets, and reports the
//! reclaimed bytes. Note that dropping a `Dead` bucket lets its key pair
//! again if it reappears — a hot key simply re-retires once its *live*
//! population crosses the cap, which is exactly the state a fresh index
//! over the surviving records would reach.

use crate::shard::RecordKeys;
use std::collections::HashMap;
use zeroer_textsim::derive::{BlockSpec, DeriveConfig};
use zeroer_textsim::intern::Sym;

/// Configuration for [`IncrementalIndex`], mirroring the defaults of the
/// batch pipeline's blocker (`MatchOptions`).
#[derive(Debug, Clone)]
pub struct IndexConfig {
    /// Attribute index used as the blocking key.
    pub attr: usize,
    /// q-gram size of the q-gram leg (0 disables the leg).
    pub qgram: usize,
    /// Stop-word bucket cap (see module docs).
    pub max_bucket: usize,
    /// Minimum shared word tokens on the token leg. Values above 1 switch
    /// to overlap blocking and disable the q-gram leg, exactly like the
    /// batch `MatchOptions` recipe.
    pub min_token_overlap: usize,
}

impl Default for IndexConfig {
    fn default() -> Self {
        Self {
            attr: 0,
            qgram: 4,
            max_bucket: 400,
            min_token_overlap: 1,
        }
    }
}

impl IndexConfig {
    /// Whether the q-gram leg is active under this configuration.
    pub fn has_qgram_leg(&self) -> bool {
        self.min_token_overlap <= 1 && self.qgram > 0
    }

    /// The derivation configuration that extracts exactly the blocking
    /// keys this index consumes.
    pub fn derive_config(&self) -> DeriveConfig {
        DeriveConfig {
            block: Some(BlockSpec {
                attr: self.attr,
                qgram: if self.has_qgram_leg() { self.qgram } else { 0 },
                equiv: false,
            }),
        }
    }
}

/// One inverted-index bucket: live members (some possibly tombstoned,
/// counted in `dead`), or retired after crossing the frequency cap.
#[derive(Debug, Clone)]
enum Bucket {
    Live {
        members: Vec<usize>,
        /// How many of `members` are tombstoned (marked by
        /// [`Leg::retract_key`], dropped by [`Leg::compact`]).
        dead: u32,
    },
    Dead,
}

/// Whether `idx` is tombstoned under the caller's tombstone set. Indices
/// beyond the set (e.g. records of an in-flight parallel batch, not yet
/// committed to the store) are live by definition. An empty slice means
/// "no retractions".
#[inline]
pub(crate) fn is_dead(tombstones: &[bool], idx: usize) -> bool {
    tombstones.get(idx).copied().unwrap_or(false)
}

/// Live/retired bucket counts of one blocking leg.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LegStats {
    /// Buckets still pairing.
    pub live: usize,
    /// Buckets retired by the frequency cap.
    pub retired: usize,
    /// Postings stored in live buckets (tombstoned ones included until
    /// compaction drops them).
    pub postings: usize,
    /// Postings marked dead by retraction and not yet compacted away.
    pub dead_postings: usize,
}

/// Bucket statistics of an incremental index, per leg.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IndexStats {
    /// The word-token leg.
    pub token: LegStats,
    /// The q-gram leg (all zeros when disabled).
    pub qgram: LegStats,
}

impl IndexStats {
    /// Postings stored across both legs.
    pub fn postings(&self) -> usize {
        self.token.postings + self.qgram.postings
    }

    /// Dead (tombstoned, uncompacted) postings across both legs.
    pub fn dead_postings(&self) -> usize {
        self.token.dead_postings + self.qgram.dead_postings
    }

    /// Retired (cap-killed, uncompacted) buckets across both legs.
    pub fn retired_buckets(&self) -> usize {
        self.token.retired + self.qgram.retired
    }
}

/// What one compaction pass reclaimed (see [`IncrementalIndex::compact`]
/// / `ShardedIndex::compact`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CompactionDelta {
    /// Tombstoned postings dropped from live buckets.
    pub postings_dropped: usize,
    /// Buckets removed outright: emptied live buckets plus cap-retired
    /// `Dead` markers.
    pub buckets_freed: usize,
    /// Estimated bytes released (posting slots + bucket entries).
    pub bytes_reclaimed: usize,
}

impl CompactionDelta {
    pub(crate) fn absorb(&mut self, other: CompactionDelta) {
        self.postings_dropped += other.postings_dropped;
        self.buckets_freed += other.buckets_freed;
        self.bytes_reclaimed += other.bytes_reclaimed;
    }
}

/// One blocking leg: an inverted index with the frequency cap, keyed by
/// interned symbol. Shared by the unsharded [`IncrementalIndex`] and the
/// key-space shards of [`crate::shard::ShardedIndex`] — each key's bucket
/// evolves identically no matter which structure owns it.
#[derive(Debug, Clone)]
pub(crate) struct Leg {
    buckets: HashMap<Sym, Bucket>,
    max_bucket: usize,
    /// Postings stored in live buckets (dead-marked ones included).
    postings: usize,
    /// Postings marked dead and not yet compacted away.
    dead_postings: usize,
}

impl Leg {
    pub(crate) fn new(max_bucket: usize) -> Self {
        Self {
            buckets: HashMap::new(),
            max_bucket,
            postings: 0,
            dead_postings: 0,
        }
    }

    /// Collects the *live* members sharing `key` into `counts`, then
    /// inserts the new record under the key. The frequency cap counts
    /// live members only, so a bucket's retirement point is where a
    /// fresh index over the surviving records would retire it.
    pub(crate) fn insert_key(
        &mut self,
        idx: usize,
        key: Sym,
        counts: &mut HashMap<usize, usize>,
        tombstones: &[bool],
    ) {
        let bucket = self.buckets.entry(key).or_insert_with(|| Bucket::Live {
            members: Vec::new(),
            dead: 0,
        });
        match bucket {
            Bucket::Dead => {}
            Bucket::Live { members, dead } => {
                if members.len() - *dead as usize + 1 > self.max_bucket {
                    // Crossing the cap: batch semantics would never
                    // pair through this key, so retire it.
                    self.postings -= members.len();
                    self.dead_postings -= *dead as usize;
                    *bucket = Bucket::Dead;
                    return;
                }
                for &m in members.iter() {
                    if !is_dead(tombstones, m) {
                        *counts.entry(m).or_insert(0) += 1;
                    }
                }
                members.push(idx);
                self.postings += 1;
            }
        }
    }

    /// Collects the *live* members sharing `key` into `counts` without
    /// inserting anything — the read-only half of [`Leg::insert_key`],
    /// used by the linkage path to probe the *opposite* side's index
    /// (a right-side record looks up left-side candidates but is never
    /// stored there).
    pub(crate) fn lookup_key(
        &self,
        key: Sym,
        counts: &mut HashMap<usize, usize>,
        tombstones: &[bool],
    ) {
        if let Some(Bucket::Live { members, .. }) = self.buckets.get(&key) {
            for &m in members {
                if !is_dead(tombstones, m) {
                    *counts.entry(m).or_insert(0) += 1;
                }
            }
        }
    }

    /// Inserts record `idx` under `key` without collecting candidates —
    /// the write-only half of [`Leg::insert_key`], with the identical
    /// live-member frequency-cap rule (the bucket retires at the same
    /// crossing point either way). Used by the linkage path, where a
    /// record's candidates come from the opposite side's index and its
    /// own side's index only needs the posting.
    pub(crate) fn insert_key_silent(&mut self, idx: usize, key: Sym) {
        let bucket = self.buckets.entry(key).or_insert_with(|| Bucket::Live {
            members: Vec::new(),
            dead: 0,
        });
        match bucket {
            Bucket::Dead => {}
            Bucket::Live { members, dead } => {
                if members.len() - *dead as usize + 1 > self.max_bucket {
                    self.postings -= members.len();
                    self.dead_postings -= *dead as usize;
                    *bucket = Bucket::Dead;
                } else {
                    members.push(idx);
                    self.postings += 1;
                }
            }
        }
    }

    /// [`Leg::insert_key`] over every key, counting shared keys per
    /// member.
    pub(crate) fn lookup_and_insert(
        &mut self,
        idx: usize,
        keys: impl IntoIterator<Item = Sym>,
        counts: &mut HashMap<usize, usize>,
        tombstones: &[bool],
    ) {
        for key in keys {
            self.insert_key(idx, key, counts, tombstones);
        }
    }

    /// Marks record `idx`'s posting under `key` dead (the posting stays
    /// until [`Leg::compact`]). Returns whether a posting was found —
    /// false when the bucket was already cap-retired at insert time.
    pub(crate) fn retract_key(&mut self, idx: usize, key: Sym) -> bool {
        match self.buckets.get_mut(&key) {
            Some(Bucket::Live { members, dead }) if members.contains(&idx) => {
                *dead += 1;
                self.dead_postings += 1;
                true
            }
            _ => false,
        }
    }

    /// Drops every tombstoned posting, frees buckets left empty, and
    /// removes cap-retired `Dead` markers. `tombstones` must be the same
    /// set the dead marks were made against.
    pub(crate) fn compact(&mut self, tombstones: &[bool]) -> CompactionDelta {
        let mut delta = CompactionDelta::default();
        self.buckets.retain(|_, bucket| match bucket {
            Bucket::Dead => {
                delta.buckets_freed += 1;
                false
            }
            Bucket::Live { members, dead } => {
                if *dead > 0 {
                    let before = members.len();
                    members.retain(|&m| !is_dead(tombstones, m));
                    delta.postings_dropped += before - members.len();
                    members.shrink_to_fit();
                    *dead = 0;
                }
                if members.is_empty() {
                    delta.buckets_freed += 1;
                    false
                } else {
                    true
                }
            }
        });
        self.postings -= delta.postings_dropped;
        self.dead_postings = 0;
        delta.bytes_reclaimed = delta.postings_dropped * std::mem::size_of::<usize>()
            + delta.buckets_freed * (std::mem::size_of::<Sym>() + std::mem::size_of::<Bucket>());
        delta
    }

    /// `(postings, dead_postings)` — the O(1) counters the
    /// auto-compaction watermark reads (no bucket scan).
    pub(crate) fn posting_counts(&self) -> (usize, usize) {
        (self.postings, self.dead_postings)
    }

    /// Live/retired bucket counts plus posting counters.
    pub(crate) fn stats(&self) -> LegStats {
        let mut s = LegStats {
            postings: self.postings,
            dead_postings: self.dead_postings,
            ..LegStats::default()
        };
        for b in self.buckets.values() {
            match b {
                Bucket::Live { .. } => s.live += 1,
                Bucket::Dead => s.retired += 1,
            }
        }
        s
    }

    /// Merges another leg's stats into an accumulator (sharded form).
    pub(crate) fn accumulate_stats(&self, acc: &mut LegStats) {
        let s = self.stats();
        acc.live += s.live;
        acc.retired += s.retired;
        acc.postings += s.postings;
        acc.dead_postings += s.dead_postings;
    }
}

/// Turns per-leg lookup results into the final sorted candidate list: a
/// member qualifies with at least `min_token_overlap` shared word tokens
/// *or* any shared q-gram. The single merge rule shared by the unsharded
/// and sharded indexes, so their candidate semantics cannot drift.
pub(crate) fn merge_candidates(
    token_counts: HashMap<usize, usize>,
    qgram_members: impl IntoIterator<Item = usize>,
    min_token_overlap: usize,
) -> Vec<usize> {
    let mut candidates: Vec<usize> = token_counts
        .into_iter()
        .filter(|&(_, c)| c >= min_token_overlap)
        .map(|(m, _)| m)
        .collect();
    candidates.extend(qgram_members);
    candidates.sort_unstable();
    candidates.dedup();
    candidates
}

/// Online inverted token + q-gram indexes over one key attribute;
/// `insert_keys` consumes a record's derived blocking keys and returns
/// blocking candidates among previously inserted records.
#[derive(Debug, Clone)]
pub struct IncrementalIndex {
    cfg: IndexConfig,
    token_leg: Leg,
    qgram_leg: Option<Leg>,
    len: usize,
}

impl IncrementalIndex {
    /// An empty index.
    ///
    /// # Panics
    /// Panics if `min_token_overlap` is 0.
    pub fn new(cfg: IndexConfig) -> Self {
        assert!(cfg.min_token_overlap >= 1, "overlap must be at least 1");
        let qgram_leg = if cfg.has_qgram_leg() {
            Some(Leg::new(cfg.max_bucket))
        } else {
            None
        };
        Self {
            token_leg: Leg::new(cfg.max_bucket),
            qgram_leg,
            len: 0,
            cfg,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &IndexConfig {
        &self.cfg
    }

    /// Number of inserted records.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether nothing has been inserted.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Live/retired bucket counts per leg.
    pub fn stats(&self) -> IndexStats {
        IndexStats {
            token: self.token_leg.stats(),
            qgram: self.qgram_leg.as_ref().map(Leg::stats).unwrap_or_default(),
        }
    }

    /// Inserts the next record's derived blocking keys (records must be
    /// inserted in store order: the i-th call describes record index i)
    /// and returns the sorted indices of previously inserted records
    /// sharing a blocking key.
    pub fn insert_keys(&mut self, keys: &RecordKeys) -> Vec<usize> {
        self.insert_keys_live(keys, &[])
    }

    /// [`IncrementalIndex::insert_keys`] with a tombstone filter:
    /// retracted records are skipped as candidates and excluded from the
    /// frequency cap. An empty slice means "no retractions".
    pub fn insert_keys_live(&mut self, keys: &RecordKeys, tombstones: &[bool]) -> Vec<usize> {
        let idx = self.len;
        self.len += 1;

        let mut token_counts: HashMap<usize, usize> = HashMap::new();
        self.token_leg
            .lookup_and_insert(idx, keys.token_syms(), &mut token_counts, tombstones);

        let mut qgram_counts: HashMap<usize, usize> = HashMap::new();
        if let Some(qleg) = &mut self.qgram_leg {
            qleg.lookup_and_insert(idx, keys.qgram_syms(), &mut qgram_counts, tombstones);
        }

        merge_candidates(
            token_counts,
            qgram_counts.into_keys(),
            self.cfg.min_token_overlap,
        )
    }

    /// Marks record `idx`'s postings dead under its blocking keys (the
    /// same [`RecordKeys`] it was inserted with); the postings stay in
    /// place until [`IncrementalIndex::compact`]. Returns the number of
    /// postings tombstoned.
    pub fn retract_keys(&mut self, idx: usize, keys: &RecordKeys) -> usize {
        let mut marked = 0;
        for key in keys.token_syms() {
            marked += usize::from(self.token_leg.retract_key(idx, key));
        }
        if let Some(qleg) = &mut self.qgram_leg {
            for key in keys.qgram_syms() {
                marked += usize::from(qleg.retract_key(idx, key));
            }
        }
        marked
    }

    /// Drops tombstoned postings, frees emptied buckets and cap-retired
    /// markers, and reports what was reclaimed. `tombstones` must be the
    /// set the retractions were recorded against.
    pub fn compact(&mut self, tombstones: &[bool]) -> CompactionDelta {
        let mut delta = self.token_leg.compact(tombstones);
        if let Some(qleg) = &mut self.qgram_leg {
            delta.absorb(qleg.compact(tombstones));
        }
        delta
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zeroer_tabular::{Record, Value};
    use zeroer_textsim::derive::Deriver;

    /// Derives records through the shared derivation layer and feeds the
    /// keys to the index — the miniature of what `StreamPipeline` does.
    struct Harness {
        deriver: Deriver,
        index: IncrementalIndex,
    }

    impl Harness {
        fn new(cfg: IndexConfig) -> Self {
            Self {
                deriver: Deriver::new(cfg.derive_config()),
                index: IncrementalIndex::new(cfg),
            }
        }

        fn insert(&mut self, record: &Record) -> Vec<usize> {
            let d = self.deriver.derive(&record.values);
            let keys = RecordKeys::from_derived(&d, self.deriver.interner());
            self.index.insert_keys(&keys)
        }
    }

    fn rec(i: u32, name: &str) -> Record {
        Record::new(i, vec![Value::Str(name.into())])
    }

    fn insert_all(h: &mut Harness, names: &[&str]) -> Vec<Vec<usize>> {
        names
            .iter()
            .enumerate()
            .map(|(i, n)| h.insert(&rec(i as u32, n)))
            .collect()
    }

    #[test]
    fn shared_tokens_become_candidates() {
        let mut h = Harness::new(IndexConfig {
            qgram: 0,
            ..Default::default()
        });
        let out = insert_all(&mut h, &["red apple", "green apple", "blue sky"]);
        assert_eq!(out[0], Vec::<usize>::new());
        assert_eq!(out[1], vec![0], "shares 'apple'");
        assert_eq!(out[2], Vec::<usize>::new());
    }

    #[test]
    fn qgram_leg_survives_typos() {
        let mut h = Harness::new(IndexConfig::default());
        let out = insert_all(&mut h, &["photograph", "fotograph"]);
        assert_eq!(out[1], vec![0], "no shared token, but shared q-grams");
    }

    #[test]
    fn overlap_mode_requires_multiple_shared_tokens() {
        let mut h = Harness::new(IndexConfig {
            min_token_overlap: 2,
            ..Default::default()
        });
        let out = insert_all(
            &mut h,
            &[
                "efficient query processing systems",
                "efficient query optimization",
                "parallel query engines",
            ],
        );
        assert_eq!(out[1], vec![0], "two shared tokens pass");
        assert_eq!(out[2], Vec::<usize>::new(), "one shared token is pruned");
    }

    #[test]
    fn null_key_is_never_a_candidate() {
        let mut h = Harness::new(IndexConfig::default());
        h.insert(&rec(0, "some title"));
        let got = h.insert(&Record::new(1, vec![Value::Null]));
        assert!(got.is_empty());
        let again = h.insert(&rec(2, "some title"));
        assert_eq!(again, vec![0], "null rows must not poison the index");
    }

    #[test]
    fn retracted_records_stop_being_candidates_and_compaction_reclaims() {
        let mut h = Harness::new(IndexConfig {
            qgram: 0,
            ..Default::default()
        });
        let out = insert_all(&mut h, &["red apple", "green apple"]);
        assert_eq!(out[1], vec![0]);

        // Retract record 0: mark its postings dead under its keys.
        let d = h.deriver.derive(&rec(0, "red apple").values);
        let keys = RecordKeys::from_derived(&d, h.deriver.interner());
        let marked = h.index.retract_keys(0, &keys);
        assert_eq!(marked, 2, "'red' and 'apple' postings tombstoned");
        let stats = h.index.stats();
        assert_eq!(stats.token.dead_postings, 2);
        assert_eq!(stats.token.postings, 4);

        // A new record sharing 'apple' sees only the live record 1.
        let tombstones = [true, false];
        let d = h.deriver.derive(&rec(2, "apple strudel").values);
        let keys = RecordKeys::from_derived(&d, h.deriver.interner());
        assert_eq!(h.index.insert_keys_live(&keys, &tombstones), vec![1]);

        // Compaction drops the dead postings and frees the now-empty
        // 'red' bucket.
        let delta = h.index.compact(&tombstones);
        assert_eq!(delta.postings_dropped, 2);
        assert_eq!(delta.buckets_freed, 1, "'red' bucket emptied");
        assert!(delta.bytes_reclaimed > 0);
        let stats = h.index.stats();
        assert_eq!(stats.token.dead_postings, 0);
        assert_eq!(stats.token.postings, 4, "apple×2, green×1, strudel×1");
    }

    #[test]
    fn frequency_cap_counts_live_members_only() {
        let cfg = IndexConfig {
            qgram: 0,
            max_bucket: 2,
            ..Default::default()
        };
        let mut h = Harness::new(cfg);
        insert_all(&mut h, &["shared zero", "shared one"]);
        // Retract record 0; the 'shared' bucket holds {0(dead), 1}.
        let d = h.deriver.derive(&rec(0, "shared zero").values);
        let keys = RecordKeys::from_derived(&d, h.deriver.interner());
        h.index.retract_keys(0, &keys);

        // A third record would cross max_bucket=2 if dead members
        // counted; live-only counting keeps the bucket pairing.
        let tombstones = [true, false];
        let d = h.deriver.derive(&rec(2, "shared two").values);
        let keys = RecordKeys::from_derived(&d, h.deriver.interner());
        assert_eq!(h.index.insert_keys_live(&keys, &tombstones), vec![1]);
        assert_eq!(h.index.stats().token.retired, 0);
    }

    #[test]
    fn overflowing_bucket_is_retired() {
        let cfg = IndexConfig {
            qgram: 0,
            max_bucket: 3,
            ..Default::default()
        };
        let mut h = Harness::new(cfg);
        // Every record shares the token "the"; items are unique.
        let names: Vec<String> = (0..6).map(|i| format!("the item{i}")).collect();
        let refs: Vec<&str> = names.iter().map(String::as_str).collect();
        let out = insert_all(&mut h, &refs);
        // First three inserts pair within the cap...
        assert_eq!(out[1], vec![0]);
        assert_eq!(out[2], vec![0, 1]);
        // ...the fourth would make the bucket exceed 3 members: retired.
        assert_eq!(out[3], Vec::<usize>::new());
        assert_eq!(out[4], Vec::<usize>::new());
        assert_eq!(out[5], Vec::<usize>::new());
        let stats = h.index.stats();
        assert_eq!(stats.token.retired, 1, "the 'the' bucket is retired");
        assert_eq!(stats.token.live, 6, "one live bucket per unique item");
    }
}
