//! The shared three-featurizer linkage recipe.
//!
//! Batch record linkage (`zeroer::pipeline::match_tables`) and the
//! streaming linkage bootstrap ([`crate::LinkPipeline::bootstrap`]) fit
//! the same three generative models — the cross-table model `F` plus the
//! within-table models `Fl`/`Fr` (§5 of the paper) — and therefore run
//! the same preparation: three featurizers (cross, within-left,
//! within-right, each inferring attribute types over its own task),
//! three candidate sets under the standard blocking recipe, and three
//! normalized feature tasks. Until this module existed the two call
//! sites each carried their own copy of that recipe, pinned together
//! only by a bit-parity test; [`build_linkage_legs`] is the single
//! implementation both now call.
//!
//! The helper lives in `zeroer-stream` because the root crate already
//! depends on this crate (batch `match_tables` sits above the streaming
//! substrate), so sharing from here keeps the root→stream layering
//! intact instead of inverting it.
//!
//! Stage latencies are recorded under the batch metric names
//! (`batch.derive.ns`, `batch.block.ns`, `batch.featurize.ns`) exactly
//! as the batch path always did; the streaming bootstrap path now
//! contributes samples to the same histograms, which is intended — the
//! work is literally the same.

use zeroer_blocking::{standard_candidates_derived, CandidateSet, PairMode};
use zeroer_core::LinkageTask;
use zeroer_features::{DeriveConfig, PairFeaturizer};
use zeroer_tabular::Table;

/// One leg's normalized feature task plus the replay state
/// (normalization ranges, imputation means, feature names) a
/// `ModelSnapshot` capture needs after the fit.
pub struct LegReplay {
    /// The leg's candidate pairs, normalized feature matrix and layout.
    pub task: LinkageTask,
    /// Per-column min-max normalization ranges.
    pub ranges: Vec<(f64, f64)>,
    /// Per-column imputation means for missing values.
    pub impute_means: Vec<f64>,
    /// Feature names, aligned with the columns.
    pub names: Vec<String>,
}

/// The three fitted-model legs of a linkage task, plus the total
/// candidate count across them.
pub struct LegTriple {
    /// The cross-table leg (`F`).
    pub cross: LegReplay,
    /// The within-left leg (`Fl`).
    pub left: LegReplay,
    /// The within-right leg (`Fr`).
    pub right: LegReplay,
    /// Candidate pairs across all three legs (cross + left + right).
    pub candidates: usize,
}

/// What [`build_linkage_legs`] produced.
///
/// `legs` is `None` when cross-table blocking yielded no candidate
/// pairs — there is nothing to fit, and the within-table legs are never
/// built. The cross featurizer is returned either way so callers can
/// publish derivation gauges (and, on the non-empty path, hand its
/// interner and derivations to an entity store).
pub struct LinkageLegs {
    /// The cross-table featurizer, holding the joint (left, right)
    /// derivation and interner.
    pub cross_fz: PairFeaturizer,
    /// The three legs, or `None` when cross blocking came up empty.
    pub legs: Option<LegTriple>,
}

/// Featurizes and normalizes one leg's candidate pairs, keeping the
/// replay state alongside the task.
fn build_leg(fz: &PairFeaturizer, cs: &CandidateSet) -> LegReplay {
    zeroer_obs::time("batch.featurize.ns", || {
        let mut fs = fz.featurize(cs.pairs());
        fs.normalize();
        LegReplay {
            ranges: fs.ranges.clone().expect("normalize() was called"),
            impute_means: fs.impute_means.clone(),
            names: fs.names.clone(),
            task: LinkageTask::new(fs.matrix, cs.pairs().to_vec(), fs.layout),
        }
    })
}

/// Runs the shared linkage preparation: the cross featurizer + cross
/// candidate set first (returning early with `legs: None` when cross
/// blocking is empty), then the two within-table featurizers and
/// candidate sets, then the three normalized feature tasks.
///
/// The three featurizers run three separate derivations on purpose: the
/// cross task infers attribute types jointly over (left, right) while
/// each self task infers over its own table alone — the type
/// assignments (and hence feature layouts) legitimately differ, so the
/// derivations cannot be shared across tasks. Within each task,
/// blocking and featurization share one derivation.
pub fn build_linkage_legs(
    left: &Table,
    right: &Table,
    cfg: &DeriveConfig,
    min_token_overlap: usize,
    max_bucket: usize,
) -> LinkageLegs {
    let cross_fz = zeroer_obs::time("batch.derive.ns", || {
        PairFeaturizer::with_config(left, right, cfg.clone())
    });
    let cross_cs = zeroer_obs::time("batch.block.ns", || {
        standard_candidates_derived(
            cross_fz.left_derived(),
            Some(cross_fz.right_derived()),
            PairMode::Cross,
            min_token_overlap,
            max_bucket,
        )
    });
    if cross_cs.is_empty() {
        return LinkageLegs {
            cross_fz,
            legs: None,
        };
    }
    let left_fz = zeroer_obs::time("batch.derive.ns", || {
        PairFeaturizer::with_config(left, left, cfg.clone())
    });
    let right_fz = zeroer_obs::time("batch.derive.ns", || {
        PairFeaturizer::with_config(right, right, cfg.clone())
    });
    let (left_cs, right_cs) = zeroer_obs::time("batch.block.ns", || {
        let dedup = |fz: &PairFeaturizer| {
            standard_candidates_derived(
                fz.left_derived(),
                None,
                PairMode::Dedup,
                min_token_overlap,
                max_bucket,
            )
        };
        (dedup(&left_fz), dedup(&right_fz))
    });
    let candidates = cross_cs.len() + left_cs.len() + right_cs.len();
    let legs = LegTriple {
        cross: build_leg(&cross_fz, &cross_cs),
        left: build_leg(&left_fz, &left_cs),
        right: build_leg(&right_fz, &right_cs),
        candidates,
    };
    LinkageLegs {
        cross_fz,
        legs: Some(legs),
    }
}
