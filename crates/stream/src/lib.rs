//! Incremental entity resolution on top of the batch ZeroER substrate.
//!
//! The batch pipeline (`zeroer::pipeline`) recomputes everything per run:
//! blocking → feature generation → EM. Production serving needs the
//! complementary *online* path — ingest new records as they arrive, find
//! candidates against what is already resolved, and score them with an
//! already-fitted model, without ever re-running EM. This crate provides
//! that path in four pieces:
//!
//! * [`EntityStore`] — ingested records plus a union-find cluster index
//!   with cluster-representative lookup (transitivity is structural:
//!   merging entities merges all their members).
//! * [`IncrementalIndex`] — online inverted token + q-gram indexes that
//!   mirror the batch `TokenBlocker`/`QgramBlocker` semantics (including
//!   the stop-word frequency cap) but support
//!   `insert(record) → candidates` in one pass. Both sides share one key
//!   extractor ([`zeroer_blocking::keys`]), so they cannot drift.
//! * [`PipelineSnapshot`] / [`zeroer_core::ModelSnapshot`] — a JSON
//!   freeze of a fitted generative model (means, covariances, prior)
//!   plus the feature replay state (per-column normalization ranges,
//!   imputation means, attribute types) and the blocking configuration.
//! * [`StreamPipeline`] — the façade: [`StreamPipeline::bootstrap`] fits
//!   once on an initial batch, then [`StreamPipeline::ingest`] processes
//!   records with frozen-model scoring only, assigning each to an
//!   existing entity or minting a new one. Records can be withdrawn
//!   again ([`StreamPipeline::retract`] / [`StreamPipeline::update`]):
//!   tombstones hide them from candidates, the match-decision log
//!   rebuilds the affected component's clusters, and online compaction
//!   ([`StreamPipeline::compact`], automatic past a dead-fraction
//!   watermark) reclaims the dead index postings — no stop-the-world
//!   rebuild, record indices stay stable forever.
//!
//! ```
//! use zeroer_stream::{StreamOptions, StreamPipeline};
//! use zeroer_tabular::csv::read_table;
//! use zeroer_tabular::Record;
//!
//! let initial = read_table(
//!     "seed",
//!     "name,city\n\
//!      Golden Dragon Palace,new york\n\
//!      Golden Dragon Palce,new york\n\
//!      Blue Sky Tavern,austin\n\
//!      Rustic Oak Kitchen,denver\n\
//!      Harbor View Bistro,portland\n",
//! )
//! .unwrap();
//! let (mut pipeline, _report) =
//!     StreamPipeline::bootstrap(&initial, StreamOptions::default()).unwrap();
//!
//! // Online: a near-duplicate of an existing entity joins its cluster…
//! let out = pipeline.ingest(Record::new(10, vec!["Golden Dragon Palace".into(), "ny".into()]));
//! assert!(!out.is_new_entity());
//! // …and an unseen restaurant mints a fresh entity. No EM either way.
//! let out = pipeline.ingest(Record::new(11, vec!["Lunar Gate Cantina".into(), "reno".into()]));
//! assert!(out.is_new_entity());
//! ```

#![warn(missing_docs)]

pub mod drift;
pub mod index;
pub mod legs;
pub mod link;
mod meters;
pub mod pipeline;
pub mod shard;
pub mod snapshot;
pub mod split;
pub mod store;

pub use drift::DriftMonitor;
pub use index::{CompactionDelta, IncrementalIndex, IndexConfig, IndexStats, LegStats};
pub use legs::{build_linkage_legs, LegReplay, LegTriple, LinkageLegs};
pub use link::{LinkBootstrapReport, LinkPipeline, LinkReadHandle, Side};
pub use pipeline::{
    render_stats, BootstrapReport, CompactionReport, IngestOutcome, RefreshReport,
    RetractionReport, StreamError, StreamOptions, StreamPipeline, StreamStats,
};
pub use shard::{RecordKeys, ShardedIndex, DEFAULT_SHARDS};
pub use snapshot::{LinkSnapshot, PipelineSnapshot};
pub use split::{ReadHandle, ResolveOutcome, SplitPipeline, WriteHandle};
pub use store::{EntityStore, RetractOutcome, StoreCompaction};
