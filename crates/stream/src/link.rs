//! Streaming **record linkage** (`T ≠ T'`): the `match`-path counterpart
//! of [`crate::StreamPipeline`].
//!
//! The batch linkage pipeline fits three generative models jointly — the
//! cross-table model `F` plus the within-table models `Fl`/`Fr` (§5 of
//! the paper) — and [`LinkPipeline::bootstrap`] freezes that whole fit
//! into a [`crate::LinkSnapshot`]. Afterwards the pipeline serves the
//! *online* form of the workload: records arrive tagged with a
//! [`Side`], an incoming right-side record blocks **only against the
//! left side's index** (and vice versa), every cross candidate is scored
//! with the frozen cross model `F` — zero EM iterations — and matches
//! merge entities in the shared union-find, so transitivity is enforced
//! structurally across both tables.
//!
//! ## Side-aware design
//!
//! One [`EntityStore`] holds both sides' records in one combined
//! numbering (bootstrap left records first, then bootstrap right
//! records, then streamed records in arrival order) with one token
//! interner, so any left/right pair can be featurized directly. Each
//! side owns its own [`ShardedIndex`]; ingest *probes* the opposite
//! side's index ([`ShardedIndex::probe_live`], read-only) and *inserts*
//! into its own side's index ([`ShardedIndex::insert_keys_at`]), so
//! same-side records never become candidates of one another — exactly
//! the candidate structure of batch cross-table blocking. The
//! within-table models `Fl`/`Fr` play the role the paper gives them:
//! they *calibrate* the cross model during the joint fit (and are frozen
//! alongside it), but match decisions — applied at bootstrap, persisted
//! in the snapshot, replayed by [`LinkPipeline::seed_base`] — are cross
//! pairs only, exactly like the batch `match_tables` report.
//!
//! ## Determinism and retraction
//!
//! The single-writer discipline of the dedup path carries over
//! unchanged: parallel batch ingest derives and scores on a worker pool
//! but commits interner symbols, index postings, and match decisions in
//! ingest order, so outcomes are **bit-identical for every thread
//! count** — in fact the argument is simpler here, because a single-side
//! batch only probes the (frozen) opposite index and can contain no
//! intra-batch matches. Retraction uses the same tombstone + decision-log
//! component rebuild as dedup, with the record's postings routed to its
//! own side's index.

use crate::index::IndexStats;
use crate::legs::{build_linkage_legs, LegReplay};
use crate::meters::StageMeters;
use crate::pipeline::{
    records_digest, score_candidates, CompactionReport, IngestOutcome, RetractionReport,
};
use crate::pipeline::{StreamError, StreamOptions, StreamStats};
use crate::shard::{RecordKeys, ShardedIndex};
use crate::snapshot::LinkSnapshot;
use crate::store::EntityStore;
use std::sync::Mutex;
use zeroer_core::{
    LinkageModel, LinkageSnapshot, ModelSnapshot, ScoreBatch, SnapshotScorer, ZeroErConfig,
};
use zeroer_features::BatchFeaturizer;
use zeroer_obs::Stopwatch;
use zeroer_tabular::{Record, Table};
use zeroer_textsim::derive::{DerivedRecord, ScratchDerived, ScratchDeriver};
use zeroer_textsim::intern::Sym;

/// Which table a record belongs to in a record-linkage workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Side {
    /// The left table `T`.
    Left,
    /// The right table `T'`.
    Right,
}

impl Side {
    /// The opposite side (the one an incoming record blocks against).
    pub fn opposite(self) -> Side {
        match self {
            Side::Left => Side::Right,
            Side::Right => Side::Left,
        }
    }

    /// Lower-case name, as the CLI `--side` flag spells it.
    pub fn name(self) -> &'static str {
        match self {
            Side::Left => "left",
            Side::Right => "right",
        }
    }
}

/// What the linkage bootstrap's batch fit produced — the same shape
/// `match_tables` reports, for callers that want the batch results
/// alongside the live pipeline.
#[derive(Debug, Clone)]
pub struct LinkBootstrapReport {
    /// Cross candidate pairs as `(left index, right index)` —
    /// *table-local* indices, like `match_tables`.
    pub pairs: Vec<(usize, usize)>,
    /// Calibrated posterior match probability per cross pair.
    pub probabilities: Vec<f64>,
    /// Hard labels at the 0.5 posterior threshold (Eq. 5).
    pub labels: Vec<bool>,
    /// Within-left pairs the fit *labelled* duplicates (diagnostic only
    /// — within-table posteriors calibrate the cross model, they are
    /// never applied as merge decisions).
    pub left_matches: usize,
    /// Within-right pairs labelled duplicates (diagnostic, like
    /// [`LinkBootstrapReport::left_matches`]).
    pub right_matches: usize,
    /// EM iterations the joint fit ran.
    pub em_iterations: usize,
}

/// A slice of per-record match slots handed to a scoring worker, tagged
/// with the offset of its first record within the batch.
type LinkScoreJob<'m> = (usize, &'m mut [Vec<(usize, f64)>]);

/// Streaming record linkage on top of a frozen three-model linkage fit:
/// ingest side-tagged records, block them against the opposite side's
/// incremental index, score cross candidates with the frozen cross
/// model, and maintain cross-table entity clusters in a union-find.
pub struct LinkPipeline {
    opts: StreamOptions,
    store: EntityStore,
    /// Which side each stored record belongs to, indexed like the store.
    sides: Vec<Side>,
    left_index: ShardedIndex,
    right_index: ShardedIndex,
    featurizer: BatchFeaturizer,
    scorer: SnapshotScorer,
    /// The full frozen fit (cross + within-table models), kept for
    /// snapshotting.
    linkage: LinkageSnapshot,
    /// Reusable struct-of-arrays scoring buffers for the sequential
    /// scoring hot loop.
    batch: ScoreBatch,
    candidates_seen: usize,
    /// Bootstrap provenance (see [`LinkSnapshot`]).
    left_len: usize,
    right_len: usize,
    left_digest: u64,
    right_digest: u64,
    base_matches: Vec<(usize, usize)>,
    /// Tombstones restored from a snapshot, replayed by `seed_base`.
    pending_tombstones: Vec<usize>,
    pending_epoch: u64,
    /// Metric handles (prefix `link`), resolved once at construction;
    /// `None` when [`StreamOptions::metrics`] is off.
    meters: Option<StageMeters>,
    /// How many times [`LinkPipeline::refit`] has swapped the frozen
    /// fit (0 = still the bootstrap models).
    generation: u64,
}

impl LinkPipeline {
    /// Bootstraps from two complete tables: runs the full batch linkage
    /// pipeline (cross + within-table blocking → features →
    /// normalization → the three-model joint EM with cross-table
    /// transitivity calibration), freezes the fitted models into a
    /// [`LinkageSnapshot`], seeds the combined store and the two
    /// side-indexes, and applies the batch match decisions to the
    /// cluster index.
    ///
    /// Cross pairs are derived exactly once: the cross featurizer's
    /// derivation feeds blocking, feature generation, both index seeds,
    /// and the entity store.
    ///
    /// # Errors
    /// Fails when the schemas differ, when cross blocking yields no
    /// candidate pairs (nothing to fit), or when the fit is too
    /// degenerate to freeze.
    pub fn bootstrap(
        left: &Table,
        right: &Table,
        opts: StreamOptions,
    ) -> Result<(Self, LinkBootstrapReport), StreamError> {
        if left.schema() != right.schema() {
            return Err(StreamError(format!(
                "record linkage requires aligned schemas ({:?} vs {:?})",
                left.schema().attributes(),
                right.schema().attributes()
            )));
        }
        let meters = StageMeters::from_flag(opts.metrics, "link");
        let sw = Stopwatch::new(meters.is_some());
        let index_cfg = opts.index_config();
        // The shared three-featurizer recipe — the very same code path
        // `match_tables` prepares its legs with (see [`crate::legs`]).
        let prep = build_linkage_legs(
            left,
            right,
            &index_cfg.derive_config(),
            opts.min_token_overlap,
            opts.max_bucket,
        );
        let cross_fz = prep.cross_fz;
        let Some(legs) = prep.legs else {
            return Err(StreamError(
                "cross-table blocking produced no candidate pairs; nothing to fit a model on"
                    .into(),
            ));
        };
        let candidates_seen = legs.candidates;
        let (cross_leg, left_leg, right_leg) = (legs.cross, legs.left, legs.right);

        let trainer = LinkageModel::new(opts.config.clone());
        let (out, fitted) = trainer.fit_models(&cross_leg.task, &left_leg.task, &right_leg.task);

        let cross_snapshot = ModelSnapshot::capture_checked(
            &fitted.cross,
            &cross_leg.ranges,
            &cross_leg.impute_means,
            &cross_leg.names,
        )
        .ok_or_else(|| {
            StreamError(
                "cross-model fit is degenerate (non-finite parameters); cannot freeze".into(),
            )
        })?;
        // A tiny within-table leg may be unfreezable (degenerate fit) —
        // that is tolerable: streamed candidates are always cross pairs,
        // so only the cross model is required at serving time.
        let capture_leg = |model: &Option<zeroer_core::GenerativeModel>, leg: &LegReplay| {
            model.as_ref().and_then(|m| {
                ModelSnapshot::capture_checked(m, &leg.ranges, &leg.impute_means, &leg.names)
            })
        };
        let linkage = LinkageSnapshot {
            cross: cross_snapshot,
            left: capture_leg(&fitted.left, &left_leg),
            right: capture_leg(&fitted.right, &right_leg),
            transitivity: opts.config.transitivity,
        };
        let scorer = linkage.cross_scorer()?;
        let featurizer = BatchFeaturizer::new(cross_fz.attr_types());
        debug_assert_eq!(featurizer.dim(), linkage.cross.dim());

        // One combined store: left records first (indices 0..L), then
        // right records (L..L+R), sharing the cross featurizer's
        // interner and derivations.
        let nl = left.len();
        let mut combined = Table::new("link-store", left.schema().clone());
        for r in left.records().iter().chain(right.records()) {
            combined.push(r.clone());
        }
        let (interner, left_derived, mut right_derived) = cross_fz.into_parts_cross();
        let mut derived = left_derived;
        derived.append(&mut right_derived);
        let mut store =
            EntityStore::from_derived(&combined, interner, derived, index_cfg.derive_config());

        let mut left_index = ShardedIndex::new(index_cfg.clone());
        let mut right_index = ShardedIndex::new(index_cfg);
        for i in 0..store.len() {
            let keys = RecordKeys::from_derived(store.derived(i), store.interner());
            if i < nl {
                left_index.insert_keys_at(i, &keys);
            } else {
                right_index.insert_keys_at(i, &keys);
            }
        }
        let mut sides = vec![Side::Left; nl];
        sides.extend(std::iter::repeat_n(Side::Right, right.len()));

        // Apply the batch decisions: **cross pairs only**, with the same
        // `p > threshold` criterion ingest applies, recorded so
        // `seed_base` can replay them. The within-table models exist to
        // *calibrate* the cross model during the joint fit (their
        // posteriors gate the transitivity triangles); their hard labels
        // are not match decisions — on internally-deduplicated tables EM
        // still carves out a "duplicate" component, and merging it would
        // poison the clusters. This mirrors `match_tables`, which also
        // reports cross labels only; the within-leg posteriors stay
        // available in the report for diagnostics.
        let mut base_matches: Vec<(usize, usize)> = Vec::new();
        for (&(l, r), &g) in cross_leg.task.pairs.iter().zip(&out.cross_gammas) {
            if g > opts.threshold {
                base_matches.push((l, nl + r));
            }
        }
        for &(a, b) in &base_matches {
            store.merge(a, b);
        }
        let hot = |gammas: &[f64]| gammas.iter().filter(|&&g| g > opts.threshold).count();
        let (left_matches, right_matches) = (hot(&out.left_gammas), hot(&out.right_gammas));

        let report = LinkBootstrapReport {
            pairs: cross_leg.task.pairs.clone(),
            probabilities: out.cross_gammas,
            labels: out.cross_labels,
            left_matches,
            right_matches,
            em_iterations: out.summary.iterations,
        };
        if let Some(m) = meters {
            sw.total(m.bootstrap);
            m.records.add(store.len() as u64);
            m.candidates.add(candidates_seen as u64);
            m.matches.add(base_matches.len() as u64);
        }
        Ok((
            Self {
                left_len: nl,
                right_len: right.len(),
                left_digest: records_digest(left.records()),
                right_digest: records_digest(right.records()),
                base_matches,
                candidates_seen,
                opts,
                store,
                sides,
                left_index,
                right_index,
                featurizer,
                scorer,
                linkage,
                batch: ScoreBatch::new(),
                pending_tombstones: Vec::new(),
                pending_epoch: 0,
                meters,
                generation: 0,
            },
            report,
        ))
    }

    /// Rebuilds a scoring pipeline from a saved [`LinkSnapshot`] with an
    /// empty store — the `zeroer ingest --side` cold-start path. Call
    /// [`LinkPipeline::seed_base`] with both bootstrap tables before
    /// streaming.
    ///
    /// `threshold` overrides the assignment threshold; like the dedup
    /// path, runtime knobs (threshold, compaction watermark) are not
    /// persisted.
    ///
    /// # Errors
    /// Fails if the snapshot is internally inconsistent (feature layout
    /// vs. cross-model dimensionality), or if it carries tombstones for
    /// streamed (non-persisted) records.
    pub fn from_snapshot(snap: &LinkSnapshot, threshold: f64) -> Result<Self, StreamError> {
        let featurizer = BatchFeaturizer::new(&snap.attr_types);
        if featurizer.dim() != snap.linkage.cross.dim() {
            return Err(StreamError(format!(
                "snapshot attr types imply {} features but the cross model has {}",
                featurizer.dim(),
                snap.linkage.cross.dim()
            )));
        }
        let total = snap.bootstrap_len();
        if let Some(&t) = snap.tombstones.iter().find(|&&t| t >= total) {
            return Err(StreamError(format!(
                "snapshot tombstones record {t}, which lies beyond the {total} bootstrap \
                 records; streamed records are not persisted, so their retractions cannot \
                 be restored"
            )));
        }
        let scorer = snap.linkage.cross_scorer()?;
        let opts = StreamOptions {
            config: ZeroErConfig::default(),
            blocking_attr: snap.index.attr,
            min_token_overlap: snap.index.min_token_overlap,
            qgram: snap.index.qgram,
            max_bucket: snap.index.max_bucket,
            threshold,
            compact_watermark: StreamOptions::default().compact_watermark,
            refresh_watermark: StreamOptions::default().refresh_watermark,
            refresh_min_records: StreamOptions::default().refresh_min_records,
            metrics: StreamOptions::default().metrics,
            batched_scoring: StreamOptions::default().batched_scoring,
        };
        let meters = StageMeters::from_flag(opts.metrics, "link");
        Ok(Self {
            store: EntityStore::new(snap.to_schema(), snap.index.derive_config()),
            sides: Vec::new(),
            left_index: ShardedIndex::new(snap.index.clone()),
            right_index: ShardedIndex::new(snap.index.clone()),
            featurizer,
            scorer,
            linkage: snap.linkage.clone(),
            opts,
            batch: ScoreBatch::new(),
            candidates_seen: 0,
            left_len: snap.left_len,
            right_len: snap.right_len,
            left_digest: snap.left_digest,
            right_digest: snap.right_digest,
            base_matches: snap.pairs.clone(),
            pending_tombstones: snap.tombstones.clone(),
            pending_epoch: snap.epoch,
            meters,
            generation: 0,
        })
    }

    /// Re-runs the three-model linkage fit over the store's **live**
    /// records (split back into their sides) and swaps the frozen
    /// [`LinkageSnapshot`] + cross scorer — the linkage half of the
    /// snapshot lifecycle. Like [`crate::StreamPipeline::refit`], the
    /// store, indexes, clusters and decision log are untouched:
    /// historical decisions stay as the model that made them decided,
    /// and only future arrivals score under the new fit. No drift
    /// monitor feeds this path — linkage refresh is manual (CLI
    /// `zeroer refresh` on a link snapshot).
    ///
    /// # Errors
    /// Fails — leaving the current fit untouched — when the live cross
    /// blocking yields no candidate pairs, when the refit cross model
    /// is too degenerate to freeze, or when the live data's inferred
    /// attribute types no longer match the frozen feature layout.
    pub fn refit(&mut self) -> Result<crate::RefreshReport, StreamError> {
        let m = self.meters;
        let sw = Stopwatch::new(m.is_some());
        let table = self.store.table();
        let schema = table.schema().clone();
        let mut left = Table::new("refit-left", schema.clone());
        let mut right = Table::new("refit-right", schema);
        for (i, r) in table.records().iter().enumerate() {
            if self.store.is_retracted(i) {
                continue;
            }
            match self.sides[i] {
                Side::Left => left.push(r.clone()),
                Side::Right => right.push(r.clone()),
            }
        }

        let index_cfg = self.opts.index_config();
        let prep = build_linkage_legs(
            &left,
            &right,
            &index_cfg.derive_config(),
            self.opts.min_token_overlap,
            self.opts.max_bucket,
        );
        if prep.cross_fz.attr_types() != self.featurizer.attr_types() {
            return Err(StreamError(
                "refit inferred different attribute types than the frozen feature layout; \
                 the live data has drifted structurally, not just statistically — refusing \
                 to swap a model with a different feature space"
                    .into(),
            ));
        }
        let Some(legs) = prep.legs else {
            return Err(StreamError(
                "refit cross blocking produced no candidate pairs; nothing to fit a model on"
                    .into(),
            ));
        };
        let (cross_leg, left_leg, right_leg) = (legs.cross, legs.left, legs.right);
        let trainer = LinkageModel::new(self.opts.config.clone());
        let (out, fitted) = trainer.fit_models(&cross_leg.task, &left_leg.task, &right_leg.task);
        let cross_snapshot = ModelSnapshot::capture_checked(
            &fitted.cross,
            &cross_leg.ranges,
            &cross_leg.impute_means,
            &cross_leg.names,
        )
        .ok_or_else(|| {
            StreamError(
                "refit cross model converged to non-finite parameters (degenerate live \
                 window); keeping the current snapshot"
                    .into(),
            )
        })?;
        let capture_leg = |model: &Option<zeroer_core::GenerativeModel>, leg: &LegReplay| {
            model.as_ref().and_then(|mo| {
                ModelSnapshot::capture_checked(mo, &leg.ranges, &leg.impute_means, &leg.names)
            })
        };
        let linkage = LinkageSnapshot {
            cross: cross_snapshot,
            left: capture_leg(&fitted.left, &left_leg),
            right: capture_leg(&fitted.right, &right_leg),
            transitivity: self.opts.config.transitivity,
        };
        debug_assert_eq!(linkage.cross.dim(), self.featurizer.dim());

        // The swap: scorer and frozen fit move together, so a snapshot
        // taken after this persists the refreshed models.
        self.scorer = linkage.cross_scorer()?;
        self.linkage = linkage;
        self.generation += 1;
        if let Some(m) = m {
            sw.total(m.refresh);
            m.refreshes.incr();
        }
        Ok(crate::RefreshReport {
            records: left.len() + right.len(),
            pairs: cross_leg.task.pairs.len(),
            em_iterations: out.summary.iterations,
            divergence: 0.0,
            auto: false,
            generation: self.generation,
        })
    }

    /// How many times [`LinkPipeline::refit`] has swapped the frozen
    /// fit (0 = still serving the bootstrap models).
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Freezes the current pipeline configuration into a serializable
    /// snapshot, including the bootstrap match decisions so a cold
    /// restart can preserve them.
    pub fn snapshot(&self) -> LinkSnapshot {
        let (tombstones, epoch) = if self.pending_tombstones.is_empty() {
            (
                (0..self.store.len())
                    .filter(|&i| self.store.is_retracted(i))
                    .collect(),
                self.store.epoch(),
            )
        } else {
            (self.pending_tombstones.clone(), self.pending_epoch)
        };
        LinkSnapshot {
            schema: self.store.table().schema().attributes().to_vec(),
            attr_types: self.featurizer.attr_types().to_vec(),
            index: self.left_index.config().clone(),
            linkage: self.linkage.clone(),
            left_len: self.left_len,
            right_len: self.right_len,
            left_digest: self.left_digest,
            right_digest: self.right_digest,
            pairs: self.base_matches.clone(),
            tombstones,
            epoch,
        }
    }

    /// Seeds a freshly [`LinkPipeline::from_snapshot`]-restored pipeline
    /// with both bootstrap tables, replaying the persisted batch
    /// decisions (never re-scoring) and any persisted retractions — the
    /// cold-start equivalent of what [`LinkPipeline::bootstrap`] does
    /// in-process.
    ///
    /// # Errors
    /// Fails if the store already holds records, either table has the
    /// wrong record count, or a digest mismatch shows the records differ
    /// from the ones the snapshot was bootstrapped on.
    pub fn seed_base(&mut self, left: &Table, right: &Table) -> Result<(), StreamError> {
        if !self.store.is_empty() {
            return Err(StreamError(
                "seed_base requires an empty (just-restored) pipeline".into(),
            ));
        }
        let check =
            |side: &str, table: &Table, len: usize, digest: u64| -> Result<(), StreamError> {
                if table.len() != len {
                    return Err(StreamError(format!(
                        "{side} table has {} records but the snapshot was bootstrapped on {len}",
                        table.len()
                    )));
                }
                if digest != 0 && records_digest(table.records()) != digest {
                    return Err(StreamError(format!(
                        "{side} table does not match the records the snapshot was bootstrapped \
                     on (same length, different or reordered records); the persisted batch \
                     decisions cannot be replayed onto it"
                    )));
                }
                Ok(())
            };
        check("left", left, self.left_len, self.left_digest)?;
        check("right", right, self.right_len, self.right_digest)?;
        let m = self.meters;
        let sw = Stopwatch::new(m.is_some());
        for (side, table) in [(Side::Left, left), (Side::Right, right)] {
            for r in table.records() {
                let derived = self.store.derive(r);
                let keys = RecordKeys::from_derived(&derived, self.store.interner());
                let idx = self.store.push_derived(r.clone(), derived);
                self.sides.push(side);
                self.side_index_mut(side).insert_keys_at(idx, &keys);
            }
        }
        // Indexed loop: `merge` needs `&mut self.store` while the pairs
        // live in `self.base_matches`, and cloning the whole decision
        // list per cold start would be a pointless allocation.
        for i in 0..self.base_matches.len() {
            let (a, b) = self.base_matches[i];
            self.store.merge(a, b);
        }
        let pending = std::mem::take(&mut self.pending_tombstones);
        for &i in &pending {
            self.retract_now(i)?;
        }
        let epoch = self.pending_epoch.max(self.store.epoch());
        self.store.set_epoch(epoch);
        if let Some(m) = m {
            sw.total(m.seed);
            m.records.add((self.left_len + self.right_len) as u64);
        }
        Ok(())
    }

    fn side_index(&self, side: Side) -> &ShardedIndex {
        match side {
            Side::Left => &self.left_index,
            Side::Right => &self.right_index,
        }
    }

    fn side_index_mut(&mut self, side: Side) -> &mut ShardedIndex {
        match side {
            Side::Left => &mut self.left_index,
            Side::Right => &mut self.right_index,
        }
    }

    /// The entity store (both sides, combined numbering).
    pub fn store(&self) -> &EntityStore {
        &self.store
    }

    /// The options in effect (for restored pipelines, `config` is the
    /// default — scoring depends only on the frozen parameters).
    pub fn options(&self) -> &StreamOptions {
        &self.opts
    }

    /// Enables or disables this pipeline's stage metrics (see
    /// [`StreamOptions::metrics`]; the linkage metrics carry the
    /// `link.` prefix). A runtime knob, not persisted in snapshots.
    /// Purely observational: on or off, every decision, cluster and
    /// snapshot is bit-identical.
    pub fn set_metrics(&mut self, on: bool) {
        self.opts.metrics = on;
        self.meters = StageMeters::from_flag(on, "link");
    }

    /// Switches candidate scoring between the struct-of-arrays batched
    /// kernels and the row-at-a-time scalar loop (see
    /// [`StreamOptions::batched_scoring`]). A runtime knob, not
    /// persisted in snapshots; bit-identical either way.
    pub fn set_batched_scoring(&mut self, on: bool) {
        self.opts.batched_scoring = on;
    }

    /// Which side record `idx` belongs to.
    ///
    /// # Panics
    /// Panics on an out-of-range index.
    pub fn side(&self, idx: usize) -> Side {
        self.sides[idx]
    }

    /// Number of stored records (both sides, bootstrap included).
    pub fn len(&self) -> usize {
        self.store.len()
    }

    /// Whether nothing has been stored.
    pub fn is_empty(&self) -> bool {
        self.store.is_empty()
    }

    /// The pipeline epoch: advances on every retraction and compaction.
    pub fn epoch(&self) -> u64 {
        self.store.epoch()
    }

    /// The frozen three-model fit this pipeline scores with.
    pub fn linkage(&self) -> &LinkageSnapshot {
        &self.linkage
    }

    /// Derivation/blocking observability counters; index counters
    /// aggregate both sides' indexes.
    pub fn stats(&self) -> StreamStats {
        let combine = |a: IndexStats, b: IndexStats| -> IndexStats {
            let leg = |mut x: crate::index::LegStats, y: crate::index::LegStats| {
                x.live += y.live;
                x.retired += y.retired;
                x.postings += y.postings;
                x.dead_postings += y.dead_postings;
                x
            };
            IndexStats {
                token: leg(a.token, b.token),
                qgram: leg(a.qgram, b.qgram),
            }
        };
        StreamStats {
            interned_tokens: self.store.interner().len(),
            interned_bytes: self.store.interner().bytes(),
            index: combine(self.left_index.stats(), self.right_index.stats()),
            candidate_pairs: self.candidates_seen,
            live_records: self.store.live_len(),
            retracted_records: self.store.retracted_count(),
            decision_log: self.store.decision_log_len(),
            epoch: self.store.epoch(),
        }
    }

    /// Current entity clusters (≥ 2 members) over the combined
    /// numbering, in the same shape `dedup_table` reports.
    pub fn clusters(&self) -> Vec<Vec<usize>> {
        self.store.clusters()
    }

    /// All cross-table links the current clustering implies: `(left
    /// combined index, right combined index)` for every co-clustered
    /// left/right pair, sorted. This is the linkage-world notion of
    /// "predicted matches" (transitive closure included), the quantity
    /// the pair-F1 e2e measures.
    pub fn cross_links(&self) -> Vec<(usize, usize)> {
        let mut links = Vec::new();
        for cluster in self.clusters() {
            for &a in &cluster {
                if self.sides[a] != Side::Left {
                    continue;
                }
                for &b in &cluster {
                    if self.sides[b] == Side::Right {
                        links.push((a, b));
                    }
                }
            }
        }
        links.sort_unstable();
        links
    }

    /// Ingests one side-tagged record: one derivation pass → a read-only
    /// probe of the **opposite** side's blocking index → frozen
    /// cross-model scoring of every candidate → entity assignment. Runs
    /// **zero** EM iterations. The record's own postings go into its own
    /// side's index, so only future opposite-side arrivals can match it.
    ///
    /// # Panics
    /// Panics if the record arity does not match the schema.
    pub fn ingest(&mut self, record: Record, side: Side) -> IngestOutcome {
        assert_eq!(
            record.values.len(),
            self.store.table().schema().arity(),
            "record arity {} does not match schema arity {}",
            record.values.len(),
            self.store.table().schema().arity()
        );
        let m = self.meters;
        let mut sw = Stopwatch::new(m.is_some());
        let derived = self.store.derive(&record);
        let keys = RecordKeys::from_derived(&derived, self.store.interner());
        if let Some(m) = m {
            sw.lap(m.derive);
        }
        let candidates = self
            .side_index(side.opposite())
            .probe_live(&keys, self.store.tombstones());
        self.candidates_seen += candidates.len();
        if let Some(m) = m {
            sw.lap(m.block);
            m.candidates.add(candidates.len() as u64);
        }
        let idx = self.store.push_derived(record, derived);
        self.sides.push(side);
        self.side_index_mut(side).insert_keys_at(idx, &keys);

        let store = &self.store;
        // Rows stay (left, right) — the orientation the cross model was
        // fitted under — so left-side ingest puts the *new* record on
        // the left of every scored pair.
        let matches = score_candidates(
            &self.featurizer,
            &self.scorer,
            store.interner(),
            self.opts.threshold,
            side == Side::Left,
            &candidates,
            |c| store.derived(c),
            store.derived(idx),
            &mut self.batch,
            self.opts.batched_scoring,
            m.map(|m| m.score_batch_candidates),
        );
        if let Some(m) = m {
            sw.lap(m.score);
        }
        for &(c, _) in &matches {
            self.store.merge(idx, c);
        }
        let cluster = self.store.find(idx);
        if let Some(m) = m {
            sw.lap(m.decide);
            sw.total(m.ingest);
            m.records.incr();
            m.matches.add(matches.len() as u64);
        }
        IngestOutcome {
            index: idx,
            candidates: candidates.len(),
            matches,
            cluster,
        }
    }

    /// Ingests a batch of same-side records in order.
    pub fn ingest_batch(
        &mut self,
        records: impl IntoIterator<Item = Record>,
        side: Side,
    ) -> Vec<IngestOutcome> {
        records.into_iter().map(|r| self.ingest(r, side)).collect()
    }

    /// Ingests a same-side batch across a pool of `threads` workers,
    /// producing outcomes **bit-identical** to
    /// [`LinkPipeline::ingest_batch`] on the same records.
    ///
    /// The argument is even simpler than the dedup path's: a same-side
    /// batch only *probes* the opposite side's index, which no record of
    /// the batch writes to — so candidate generation is read-only and
    /// embarrassingly parallel, and there are no intra-batch matches at
    /// all. Derivation runs against a frozen interner snapshot with
    /// per-worker scratch tables; a single writer then commits fresh
    /// tokens, store pushes, own-side index postings, and match
    /// decisions in ingest order.
    ///
    /// # Panics
    /// Panics if any record's arity does not match the schema (checked
    /// up front, before any state is touched).
    pub fn ingest_batch_parallel(
        &mut self,
        records: Vec<Record>,
        side: Side,
        threads: usize,
    ) -> Vec<IngestOutcome> {
        let threads = threads.max(1);
        if threads == 1 || records.len() < 2 {
            return self.ingest_batch(records, side);
        }
        let arity = self.store.table().schema().arity();
        for r in &records {
            assert_eq!(
                r.values.len(),
                arity,
                "record arity {} does not match schema arity {}",
                r.values.len(),
                arity
            );
        }
        let n = records.len();
        let m = self.meters;
        let mut sw = Stopwatch::new(m.is_some());

        // Phase 1 (parallel over records): derive against a frozen
        // interner snapshot, parking unseen tokens per worker.
        let cfg = self.store.derive_config();
        let chunk = n.div_ceil(threads).max(1);
        let mut scratch_chunks: Vec<(Vec<ScratchDerived>, Vec<String>)> = {
            let interner = self.store.interner();
            let mut chunks: Vec<Option<(Vec<ScratchDerived>, Vec<String>)>> =
                (0..records.chunks(chunk).len()).map(|_| None).collect();
            crossbeam::thread::scope(|scope| {
                for (rec_chunk, out) in records.chunks(chunk).zip(chunks.iter_mut()) {
                    let cfg = &cfg;
                    scope.spawn(move |_| {
                        let mut deriver = ScratchDeriver::new(interner, cfg.clone());
                        let derived: Vec<ScratchDerived> = rec_chunk
                            .iter()
                            .map(|r| deriver.derive(&r.values))
                            .collect();
                        *out = Some((derived, deriver.into_texts()));
                    });
                }
            })
            .expect("derivation worker panicked");
            chunks
                .into_iter()
                .map(|c| c.expect("filled above"))
                .collect()
        };

        // Commit (sequential, single writer, ingest order): intern fresh
        // tokens — reproducing the sequential symbol numbering — and
        // rebind each derivation onto global symbols.
        let mut derived: Vec<DerivedRecord> = Vec::with_capacity(n);
        let mut keys: Vec<RecordKeys> = Vec::with_capacity(n);
        for (chunk_derived, texts) in scratch_chunks.drain(..) {
            let mut map: Vec<Option<Sym>> = vec![None; texts.len()];
            for sd in chunk_derived {
                let rec = sd.commit(&texts, &mut map, self.store.interner_mut());
                keys.push(RecordKeys::from_derived(&rec, self.store.interner()));
                derived.push(rec);
            }
        }
        if let Some(m) = m {
            sw.lap(m.batch_derive);
        }

        // Phase 2 (parallel over records, work-stealing queue): probe
        // the frozen opposite index and score with the frozen cross
        // model — all read-only. The tombstone set is frozen for the
        // batch (retraction needs `&mut self`).
        let store = &self.store;
        let opposite = self.side_index(side.opposite());
        let featurizer = &self.featurizer;
        let scorer = &self.scorer;
        let threshold = self.opts.threshold;
        let batched = self.opts.batched_scoring;
        let score_meter = m.map(|m| m.score_batch_candidates);
        let mut candidate_counts: Vec<usize> = vec![0; n];
        let mut matches: Vec<Vec<(usize, f64)>> = (0..n).map(|_| Vec::new()).collect();
        {
            let score_chunk = n.div_ceil(threads * 8).max(1);
            let count_chunks: Vec<(usize, &mut [usize])> = candidate_counts
                .chunks_mut(score_chunk)
                .enumerate()
                .map(|(ci, ch)| (ci * score_chunk, ch))
                .collect();
            let queue: Mutex<Vec<(LinkScoreJob<'_>, &mut [usize])>> = Mutex::new(
                matches
                    .chunks_mut(score_chunk)
                    .enumerate()
                    .zip(count_chunks)
                    .map(|((ci, ch), (_, counts))| ((ci * score_chunk, ch), counts))
                    .collect(),
            );
            // Queue-wait sampling measures lock acquisition only; a
            // handle copy, not `self`, crosses into the workers.
            let queue_wait = m.map(|m| m.queue_wait);
            crossbeam::thread::scope(|scope| {
                for _ in 0..threads {
                    let queue = &queue;
                    let derived = &derived;
                    let keys = &keys;
                    scope.spawn(move |_| {
                        let mut batch = ScoreBatch::new();
                        loop {
                            let before = queue_wait.map(|h| (h, std::time::Instant::now()));
                            let mut q = queue.lock().expect("queue poisoned");
                            let waited = before.map(|(h, t)| (h, t.elapsed()));
                            let job = q.pop();
                            drop(q);
                            if let Some((h, d)) = waited {
                                h.record(d.as_nanos().min(u64::MAX as u128) as u64);
                            }
                            let Some(((start, out), counts)) = job else {
                                break;
                            };
                            for (off, (slot, count)) in
                                out.iter_mut().zip(counts.iter_mut()).enumerate()
                            {
                                let i = start + off;
                                let candidates = opposite.probe_live(&keys[i], store.tombstones());
                                *count = candidates.len();
                                *slot = score_candidates(
                                    featurizer,
                                    scorer,
                                    store.interner(),
                                    threshold,
                                    side == Side::Left,
                                    &candidates,
                                    |c| store.derived(c),
                                    &derived[i],
                                    &mut batch,
                                    batched,
                                    score_meter,
                                );
                            }
                        }
                    });
                }
            })
            .expect("scoring worker panicked");
        }
        let batch_candidates = candidate_counts.iter().sum::<usize>();
        self.candidates_seen += batch_candidates;
        if let Some(m) = m {
            // The linkage parallel path fuses probe + score into one
            // read-only phase, so it times under `link.batch.score.ns`
            // (per-candidate blocking cost is visible in the
            // sequential `link.block.ns` meter instead).
            sw.lap(m.batch_score);
            m.candidates.add(batch_candidates as u64);
            m.batch_candidates.record(batch_candidates as u64);
        }

        // Phase 3 (sequential, single writer): push records, insert
        // own-side postings, and apply match decisions in ingest order.
        let mut outcomes = Vec::with_capacity(n);
        for (((record, rec_derived), rec_keys), (rec_matches, cands)) in records
            .into_iter()
            .zip(derived)
            .zip(keys)
            .zip(matches.into_iter().zip(candidate_counts))
        {
            let idx = self.store.push_derived(record, rec_derived);
            self.sides.push(side);
            self.side_index_mut(side).insert_keys_at(idx, &rec_keys);
            for &(c, _) in &rec_matches {
                self.store.merge(idx, c);
            }
            let cluster = self.store.find(idx);
            outcomes.push(IngestOutcome {
                index: idx,
                candidates: cands,
                matches: rec_matches,
                cluster,
            });
        }
        if let Some(m) = m {
            sw.lap(m.batch_decide);
            sw.total(m.batch);
            m.records.add(n as u64);
            m.matches
                .add(outcomes.iter().map(|o| o.matches.len() as u64).sum());
        }
        outcomes
    }

    /// The shared retraction core: tombstone the record in the store
    /// (rebuilding its connected component from the decision log) and
    /// mark its postings dead in its **own side's** index. No watermark
    /// check — `seed_base` replays persisted tombstones through this.
    fn retract_now(&mut self, idx: usize) -> Result<RetractionReport, StreamError> {
        if idx >= self.store.len() {
            return Err(StreamError(format!(
                "unknown record index {idx} (store holds {} records)",
                self.store.len()
            )));
        }
        if self.store.is_retracted(idx) {
            return Err(StreamError(format!("record {idx} is already retracted")));
        }
        let keys = RecordKeys::from_derived(self.store.derived(idx), self.store.interner());
        let out = self.store.retract(idx).map_err(StreamError)?;
        let side = self.sides[idx];
        let postings_tombstoned = self.side_index_mut(side).retract_keys(idx, &keys);
        Ok(RetractionReport {
            epoch: out.epoch,
            component_size: out.component_size,
            postings_tombstoned,
            auto_compaction: None,
        })
    }

    /// Retracts record `idx` (combined numbering): tombstoned, its
    /// connected component rebuilt from the match-decision log as if it
    /// had never been ingested, its postings marked dead in its side's
    /// index — the same semantics as [`crate::StreamPipeline::retract`].
    /// Crossing [`StreamOptions::compact_watermark`] triggers an
    /// automatic compaction.
    ///
    /// # Errors
    /// Fails on an out-of-range index, an already-retracted record, or a
    /// snapshot-restored pipeline whose persisted tombstones have not
    /// been replayed yet (call [`LinkPipeline::seed_base`] first).
    pub fn retract(&mut self, idx: usize) -> Result<RetractionReport, StreamError> {
        if !self.pending_tombstones.is_empty() {
            return Err(StreamError(
                "snapshot tombstones are pending; seed_base must replay the bootstrap \
                 records before new retractions"
                    .into(),
            ));
        }
        let m = self.meters;
        let sw = Stopwatch::new(m.is_some());
        let mut report = self.retract_now(idx)?;
        report.auto_compaction = self.maybe_autocompact();
        if let Some(c) = &report.auto_compaction {
            report.epoch = c.epoch;
        }
        if let Some(m) = m {
            // Includes any auto-compaction the watermark triggered
            // (which also times itself under `link.compact.ns`).
            sw.total(m.retract);
            m.retractions.incr();
        }
        Ok(report)
    }

    /// Compacts the pipeline in place: drops tombstoned postings from
    /// **both** side indexes, prunes dead decision-log edges, and
    /// releases retracted records' derivations. Advances the epoch.
    pub fn compact(&mut self) -> CompactionReport {
        let m = self.meters;
        let sw = Stopwatch::new(m.is_some());
        let mut index = self.left_index.compact(self.store.tombstones());
        index.absorb(self.right_index.compact(self.store.tombstones()));
        let store = self.store.compact();
        let report = CompactionReport {
            epoch: self.store.epoch(),
            index,
            store,
        };
        if let Some(m) = m {
            sw.total(m.compact);
            m.compactions.incr();
            m.reclaimed_bytes.add(report.bytes_reclaimed() as u64);
        }
        report
    }

    /// Runs [`LinkPipeline::compact`] when the dead-posting fraction
    /// across both indexes has crossed the configured watermark.
    fn maybe_autocompact(&mut self) -> Option<CompactionReport> {
        let watermark = self.opts.compact_watermark?;
        let (lp, ld) = self.left_index.posting_counts();
        let (rp, rd) = self.right_index.posting_counts();
        let (postings, dead) = (lp + rp, ld + rd);
        if dead > 0 && dead as f64 >= watermark * postings.max(1) as f64 {
            Some(self.compact())
        } else {
            None
        }
    }

    /// Pins the pipeline's current read state as an epoch-pinned
    /// [`LinkReadHandle`] — the linkage counterpart of
    /// [`crate::StreamPipeline::pin_read_handle`]. The handle answers
    /// side-tagged resolve queries read-only through the same
    /// opposite-index probe + frozen cross-model scoring the
    /// [`LinkPipeline::ingest`] path uses.
    pub fn pin_read_handle(&self) -> LinkReadHandle {
        LinkReadHandle::pin(self)
    }
}

/// The pinned state a [`LinkReadHandle`] resolves against: the combined
/// store, both side indexes, and the frozen cross scorer.
struct LinkReadView {
    epoch: u64,
    store: EntityStore,
    left_index: ShardedIndex,
    right_index: ShardedIndex,
    featurizer: BatchFeaturizer,
    scorer: SnapshotScorer,
    threshold: f64,
    /// Pinned from [`StreamOptions::batched_scoring`]; bit-identical
    /// either way.
    batched: bool,
    /// The `link.score.batch_candidates` histogram, pinned at pin time;
    /// `None` when the pipeline's metrics are off.
    score_meter: Option<&'static zeroer_obs::Histogram>,
}

/// A shareable, epoch-pinned resolver over a [`LinkPipeline`]'s read
/// state — the linkage counterpart of [`crate::split::ReadHandle`].
///
/// A resolve probes the **opposite** side's index (exactly like linkage
/// ingest) and scores cross candidates with the frozen cross model in
/// the `(left, right)` orientation it was fitted under, but admits
/// nothing: the pinned view is immutable, so any number of clones can
/// resolve concurrently. Linkage serving rides the same read-path seam
/// as dedup; an admission queue for side-tagged writes slots in next to
/// [`crate::split::SplitPipeline`] when the serve layer grows linkage
/// endpoints.
pub struct LinkReadHandle {
    view: std::sync::Arc<LinkReadView>,
    deriver: zeroer_textsim::derive::Deriver,
    batch: ScoreBatch,
}

impl Clone for LinkReadHandle {
    fn clone(&self) -> Self {
        Self {
            view: std::sync::Arc::clone(&self.view),
            deriver: self.deriver.clone(),
            batch: ScoreBatch::new(),
        }
    }
}

impl LinkReadHandle {
    fn pin(pipeline: &LinkPipeline) -> Self {
        let view = LinkReadView {
            epoch: pipeline.store.epoch(),
            store: pipeline.store.clone(),
            left_index: pipeline.left_index.clone(),
            right_index: pipeline.right_index.clone(),
            featurizer: pipeline.featurizer.clone(),
            scorer: pipeline.scorer.clone(),
            threshold: pipeline.opts.threshold,
            batched: pipeline.opts.batched_scoring,
            score_meter: pipeline.meters.map(|m| m.score_batch_candidates),
        };
        let deriver = zeroer_textsim::derive::Deriver::with_interner(
            view.store.interner().clone(),
            view.store.derive_config(),
        );
        Self {
            view: std::sync::Arc::new(view),
            deriver,
            batch: ScoreBatch::new(),
        }
    }

    /// Epoch of the pinned view.
    pub fn epoch(&self) -> u64 {
        self.view.epoch
    }

    /// Schema arity of the pinned view.
    pub fn arity(&self) -> usize {
        self.view.store.table().schema().arity()
    }

    /// Records visible in the pinned view (both sides, combined
    /// numbering).
    pub fn len(&self) -> usize {
        self.view.store.len()
    }

    /// Whether the pinned view is empty.
    pub fn is_empty(&self) -> bool {
        self.view.store.is_empty()
    }

    /// Resolves one side-tagged record against the pinned view: derive
    /// → read-only probe of the opposite side's index → frozen
    /// cross-model scoring — the exact candidate rule and scoring code
    /// of [`LinkPipeline::ingest`], minus the insertion.
    ///
    /// # Panics
    /// Panics if the record arity does not match the schema.
    pub fn resolve(&mut self, record: &Record, side: Side) -> crate::split::ResolveOutcome {
        let view = &*self.view;
        assert_eq!(
            record.values.len(),
            view.store.table().schema().arity(),
            "record arity {} does not match schema arity {}",
            record.values.len(),
            view.store.table().schema().arity()
        );
        let derived = self.deriver.derive(&record.values);
        let keys = RecordKeys::from_derived(&derived, self.deriver.interner());
        let index = match side.opposite() {
            Side::Left => &view.left_index,
            Side::Right => &view.right_index,
        };
        let candidates = index.probe_live(&keys, view.store.tombstones());
        let store = &view.store;
        let matches = score_candidates(
            &view.featurizer,
            &view.scorer,
            self.deriver.interner(),
            view.threshold,
            side == Side::Left,
            &candidates,
            |c| store.derived(c),
            &derived,
            &mut self.batch,
            view.batched,
            view.score_meter,
        );
        crate::split::ResolveOutcome {
            epoch: view.epoch,
            candidates: candidates.len(),
            cluster: matches.first().map(|&(c, _)| store.find_readonly(c)),
            matches,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zeroer_tabular::csv::read_table;

    fn left_table() -> Table {
        read_table(
            "left",
            "name,city\n\
             Golden Dragon Palace,new york\n\
             Blue Sky Tavern,austin\n\
             Rustic Oak Kitchen,denver\n\
             Harbor View Bistro,portland\n\
             Smoky Cellar Tavern,chicago\n",
        )
        .unwrap()
    }

    fn right_table() -> Table {
        read_table(
            "right",
            "name,city\n\
             Golden Dragon Palce,new york\n\
             Rustic Oak Kitchn,denver\n\
             Totally Unrelated Bistro,miami\n\
             Smoky Cellar Tavern,chicago\n",
        )
        .unwrap()
    }

    fn rec(id: u32, name: &str, city: &str) -> Record {
        Record::new(id, vec![name.into(), city.into()])
    }

    fn pipeline() -> (LinkPipeline, LinkBootstrapReport) {
        LinkPipeline::bootstrap(&left_table(), &right_table(), StreamOptions::default())
            .expect("bootstrap")
    }

    #[test]
    fn bootstrap_links_obvious_cross_pairs() {
        let (p, report) = pipeline();
        assert!(report.em_iterations >= 1);
        assert_eq!(p.len(), 9);
        let nl = left_table().len();
        // Golden Dragon (0 ↔ 0) and Rustic Oak (2 ↔ 1) link across.
        assert!(p.store().same_entity(0, nl), "{:?}", p.clusters());
        assert!(p.store().same_entity(2, nl + 1), "{:?}", p.clusters());
        // Unrelated right record stays a singleton.
        assert!(!p.clusters().iter().any(|c| c.contains(&(nl + 2))));
        let links = p.cross_links();
        assert!(links.contains(&(0, nl)) && links.contains(&(2, nl + 1)));
    }

    #[test]
    fn right_ingest_blocks_against_left_only() {
        let (mut p, _) = pipeline();
        let nl = left_table().len();
        // An exact copy of a *right* record must not match it (same
        // side); only the cross pair with the left original counts.
        let out = p.ingest(rec(100, "Golden Dragon Palce", "new york"), Side::Right);
        assert!(!out.is_new_entity());
        assert!(
            out.matches.iter().all(|&(c, _)| c < nl),
            "right-side ingest may only match left records: {:?}",
            out.matches
        );
        // It still lands in the Golden Dragon entity via the left match.
        assert!(p.store().same_entity(out.index, nl));

        let fresh = p.ingest(rec(101, "Totally Unseen Steakhouse", "miami"), Side::Right);
        assert!(fresh.is_new_entity());
    }

    #[test]
    fn left_ingest_blocks_against_right_only() {
        let (mut p, _) = pipeline();
        let nl = left_table().len();
        // A new left record matching an unmatched right record links it.
        let out = p.ingest(rec(200, "Totally Unrelated Bistro", "miami"), Side::Left);
        assert!(!out.is_new_entity());
        assert!(
            out.matches.iter().all(|&(c, _)| c >= nl),
            "left-side ingest may only match right records: {:?}",
            out.matches
        );
        assert!(p.store().same_entity(out.index, nl + 2));
    }

    #[test]
    fn streamed_records_become_candidates_for_the_opposite_side() {
        let (mut p, _) = pipeline();
        let a = p.ingest(rec(300, "Crimson Lotus Noodle Bar", "seattle"), Side::Left);
        assert!(a.is_new_entity());
        let b = p.ingest(rec(301, "Crimson Lotus Noodle Bar", "seattle"), Side::Right);
        assert!(
            !b.is_new_entity(),
            "a streamed left record must be matchable by a later right record"
        );
        assert!(p.store().same_entity(a.index, b.index));
    }

    #[test]
    fn parallel_link_ingest_is_bit_identical() {
        let tail: Vec<Record> = vec![
            rec(400, "Golden Dragon Palace", "new york"),
            rec(401, "Blue Sky Tavern", "austin"),
            rec(402, "Totally New Place", "boston"),
            rec(403, "Harbor View Bistro", "portland"),
            rec(404, "Rustic Oak Kitchen", "denver"),
            rec(405, "Another Fresh Venue", "reno"),
        ];
        let (seq, _) = pipeline();
        let snap = seq.snapshot();
        let mut reference: Option<Vec<IngestOutcome>> = None;
        for threads in [1, 2, 4] {
            let mut p = LinkPipeline::from_snapshot(&snap, 0.5).expect("restore");
            p.seed_base(&left_table(), &right_table()).expect("seed");
            let outcomes = p.ingest_batch_parallel(tail.clone(), Side::Right, threads);
            match &reference {
                None => reference = Some(outcomes),
                Some(want) => {
                    assert_eq!(want.len(), outcomes.len());
                    for (w, g) in want.iter().zip(&outcomes) {
                        assert_eq!(w.index, g.index, "threads={threads}");
                        assert_eq!(w.candidates, g.candidates, "threads={threads}");
                        assert_eq!(w.cluster, g.cluster, "threads={threads}");
                        assert_eq!(w.matches.len(), g.matches.len(), "threads={threads}");
                        for ((wc, wp), (gc, gp)) in w.matches.iter().zip(&g.matches) {
                            assert_eq!(wc, gc, "threads={threads}");
                            assert_eq!(
                                wp.to_bits(),
                                gp.to_bits(),
                                "threads={threads}: posterior bits must match"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn snapshot_round_trip_preserves_scoring() {
        let (mut live, _) = pipeline();
        let snap = live.snapshot();
        let reloaded = LinkSnapshot::from_json(&snap.to_json()).expect("round-trips");
        assert_eq!(reloaded.linkage, snap.linkage);
        assert_eq!(reloaded.pairs, snap.pairs);
        let mut cold = LinkPipeline::from_snapshot(&reloaded, 0.5).expect("restore");
        cold.seed_base(&left_table(), &right_table()).expect("seed");
        assert_eq!(cold.clusters(), live.clusters());

        let probe = rec(500, "Golden Dragon Palace", "new york");
        let a = live.ingest(probe.clone(), Side::Right);
        let b = cold.ingest(probe, Side::Right);
        assert_eq!(a.matches.len(), b.matches.len());
        for ((ca, pa), (cb, pb)) in a.matches.iter().zip(&b.matches) {
            assert_eq!(ca, cb);
            assert_eq!(pa.to_bits(), pb.to_bits(), "posterior drift");
        }
    }

    #[test]
    fn seed_base_rejects_wrong_tables() {
        let (live, _) = pipeline();
        let snap = live.snapshot();
        let mut cold = LinkPipeline::from_snapshot(&snap, 0.5).unwrap();
        let err = cold
            .seed_base(&right_table(), &right_table())
            .expect_err("wrong left table");
        assert!(err.to_string().contains("left table"), "{err}");
        // Errors must leave the pipeline re-seedable… with the right
        // tables. (The failed left seed never touched the store.)
        assert!(cold.is_empty());
        cold.seed_base(&left_table(), &right_table())
            .expect("correct tables seed");
    }

    #[test]
    fn retraction_unlinks_and_hides_the_record() {
        let (mut p, _) = pipeline();
        let nl = left_table().len();
        assert!(p.store().same_entity(0, nl));
        let report = p.retract(nl).expect("live record retracts");
        assert!(report.component_size >= 2);
        assert!(report.postings_tombstoned > 0);
        assert!(p.store().is_retracted(nl));
        assert!(!p.clusters().iter().any(|c| c.contains(&nl)));

        // A fresh right ingest matches the left original, never the
        // retracted right twin.
        let again = p.ingest(rec(600, "Golden Dragon Palace", "new york"), Side::Right);
        assert!(!again.is_new_entity());
        assert!(again.matches.iter().all(|&(c, _)| c != nl));
    }

    #[test]
    fn compact_reclaims_both_indexes() {
        let mut opts = StreamOptions::default();
        opts.compact_watermark = None;
        let (mut p, _) =
            LinkPipeline::bootstrap(&left_table(), &right_table(), opts).expect("bootstrap");
        let nl = left_table().len();
        p.retract(0).unwrap(); // a left record
        p.retract(nl).unwrap(); // a right record
        let clusters_before = p.clusters();
        let report = p.compact();
        assert!(report.index.postings_dropped > 0);
        assert!(report.bytes_reclaimed() > 0);
        assert_eq!(p.stats().index.dead_postings(), 0);
        assert_eq!(p.clusters(), clusters_before);
    }

    #[test]
    fn mismatched_schemas_are_rejected() {
        let other = read_table("o", "title\nsomething\n").unwrap();
        assert!(LinkPipeline::bootstrap(&left_table(), &other, StreamOptions::default()).is_err());
    }
}
