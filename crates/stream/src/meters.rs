//! Pre-resolved metric handles for the streaming pipelines.
//!
//! [`StageMeters`] bundles every counter/histogram a pipeline touches,
//! resolved from the `zeroer-obs` registry **once** at pipeline
//! construction and parameterized by a prefix (`"stream"` for
//! [`crate::StreamPipeline`], `"link"` for [`crate::LinkPipeline`]).
//! The pipelines hold an `Option<StageMeters>` — `None` when
//! [`crate::StreamOptions::metrics`] is off — so a disabled pipeline
//! pays one branch per stage boundary and never touches the registry
//! on the hot path. The struct is `Copy` (all fields are `&'static`
//! handles to atomics), so workers can carry it into scoped threads.
//!
//! The full metric-name catalog lives in `crates/obs/README.md`.

use zeroer_obs::{Counter, Histogram};

/// Every metric handle one streaming pipeline records into.
#[derive(Clone, Copy)]
pub(crate) struct StageMeters {
    // Sequential per-record stage timers.
    pub derive: &'static Histogram,
    pub block: &'static Histogram,
    pub score: &'static Histogram,
    pub decide: &'static Histogram,
    pub ingest: &'static Histogram,
    // Parallel per-batch phase timers.
    pub batch: &'static Histogram,
    pub batch_derive: &'static Histogram,
    pub batch_block: &'static Histogram,
    pub batch_score: &'static Histogram,
    pub batch_decide: &'static Histogram,
    /// Candidate pairs per parallel batch (a count distribution, not
    /// a timer).
    pub batch_candidates: &'static Histogram,
    /// Candidates scored per batched scoring call (a count
    /// distribution, not a timer): one sample per record scored
    /// through the struct-of-arrays path, zero-candidate records
    /// included. Not recorded when
    /// [`crate::StreamOptions::batched_scoring`] is off.
    pub score_batch_candidates: &'static Histogram,
    /// Time scoring workers spend acquiring the single-writer work
    /// queue lock (one sample per queue pop).
    pub queue_wait: &'static Histogram,
    // Lifecycle timers.
    pub bootstrap: &'static Histogram,
    pub seed: &'static Histogram,
    pub retract: &'static Histogram,
    pub compact: &'static Histogram,
    /// One model refit — live-record re-derivation, the EM fit, and the
    /// scorer swap (`{p}.refresh.ns`).
    pub refresh: &'static Histogram,
    // Totals.
    pub records: &'static Counter,
    pub candidates: &'static Counter,
    pub matches: &'static Counter,
    pub retractions: &'static Counter,
    pub compactions: &'static Counter,
    pub reclaimed_bytes: &'static Counter,
    /// Successful refits (manual + drift-watermark-triggered).
    pub refreshes: &'static Counter,
}

impl StageMeters {
    /// Resolves the handles for `prefix` (`"stream"` or `"link"`).
    pub fn new(prefix: &str) -> Self {
        let h = |stage: &str| zeroer_obs::histogram(&format!("{prefix}.{stage}"));
        let c = |stage: &str| zeroer_obs::counter(&format!("{prefix}.{stage}"));
        StageMeters {
            derive: h("derive.ns"),
            block: h("block.ns"),
            score: h("score.ns"),
            decide: h("decide.ns"),
            ingest: h("ingest.ns"),
            batch: h("batch.ns"),
            batch_derive: h("batch.derive.ns"),
            batch_block: h("batch.block.ns"),
            batch_score: h("batch.score.ns"),
            batch_decide: h("batch.decide.ns"),
            batch_candidates: h("batch.candidates"),
            score_batch_candidates: h("score.batch_candidates"),
            queue_wait: h("queue_wait.ns"),
            bootstrap: h("bootstrap.ns"),
            seed: h("seed.ns"),
            retract: h("retract.ns"),
            compact: h("compact.ns"),
            refresh: h("refresh.ns"),
            records: c("records"),
            candidates: c("candidates"),
            matches: c("matches"),
            retractions: c("retractions"),
            compactions: c("compactions"),
            reclaimed_bytes: c("compact.reclaimed_bytes"),
            refreshes: c("refreshes"),
        }
    }

    /// Meters for a pipeline with the given options — `None` when
    /// metrics are disabled.
    pub fn from_flag(metrics: bool, prefix: &str) -> Option<Self> {
        metrics.then(|| Self::new(prefix))
    }
}
