//! The streaming façade: bootstrap once, then ingest forever —
//! sequentially one record at a time, or in parallel batches across a
//! worker pool (see [`StreamPipeline::ingest_batch_parallel`]) — and
//! retract records again ([`StreamPipeline::retract`]) with online
//! compaction ([`StreamPipeline::compact`], plus an automatic
//! dead-fraction watermark) so long-lived nodes never need a
//! stop-the-world rebuild.

use crate::drift::{DriftMonitor, DriftSample};
use crate::index::{CompactionDelta, IndexConfig, IndexStats};
use crate::meters::StageMeters;
use crate::shard::{RecordKeys, ShardedIndex};
use crate::snapshot::PipelineSnapshot;
use crate::store::{EntityStore, StoreCompaction};
use std::sync::Mutex;
use zeroer_blocking::{standard_candidates_derived, PairMode};
use zeroer_core::{
    GenerativeModel, ModelSnapshot, ScoreBatch, SnapshotScorer, TransitivityCalibrator,
    ZeroErConfig,
};
use zeroer_features::{BatchFeaturizer, PairFeaturizer};
use zeroer_obs::{Histogram, Stopwatch};
use zeroer_tabular::{Record, Table};
use zeroer_textsim::derive::{DerivedRecord, ScratchDerived, ScratchDeriver};
use zeroer_textsim::intern::{Interner, Sym};

/// The machine's available parallelism — the default for the `--threads`
/// ingest flag and [`StreamPipeline::ingest_batch_parallel`] callers that
/// do not care.
pub fn available_threads() -> usize {
    std::thread::available_parallelism().map_or(1, |p| p.get())
}

/// Streaming-pipeline error (bootstrap degeneracies, snapshot mismatch).
#[derive(Debug, Clone)]
pub struct StreamError(pub String);

impl std::fmt::Display for StreamError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for StreamError {}

impl From<zeroer_core::json::JsonError> for StreamError {
    fn from(e: zeroer_core::json::JsonError) -> Self {
        StreamError(e.to_string())
    }
}

/// Options for [`StreamPipeline`]. Blocking defaults mirror the batch
/// `MatchOptions`, so bootstrap-vs-batch comparisons are apples to
/// apples.
#[derive(Debug, Clone)]
pub struct StreamOptions {
    /// Model configuration used by the bootstrap fit.
    pub config: ZeroErConfig,
    /// Attribute index used as the blocking key.
    pub blocking_attr: usize,
    /// Minimum shared word tokens for a candidate pair (1 unions in
    /// q-gram blocking; ≥ 2 is overlap blocking).
    pub min_token_overlap: usize,
    /// q-gram size for the q-gram blocking leg.
    pub qgram: usize,
    /// Stop-word bucket cap for both blocking legs.
    pub max_bucket: usize,
    /// Posterior threshold for assigning an incoming record to an
    /// existing entity. Strictly-above semantics (`p > threshold`),
    /// matching the paper's Eq. 5 labeling rule `γ > 0.5` — note the
    /// CLI's `--threshold` *display* filter on the batch paths is `>=`.
    pub threshold: f64,
    /// Dead-fraction watermark for automatic compaction: when, after a
    /// retraction, at least this fraction of index postings is
    /// tombstoned, the pipeline compacts itself. `None` disables
    /// auto-compaction ([`StreamPipeline::compact`] stays available).
    pub compact_watermark: Option<f64>,
    /// Drift watermark for automatic model refresh: when, at an ingest
    /// boundary, the [`DriftMonitor`] divergence (max normalized shift
    /// across the feature dimensions and the posterior match rate, in
    /// baseline-spread units) reaches this value, the pipeline re-fits
    /// the model over its live records ([`StreamPipeline::refit`]) and
    /// swaps the frozen scorer. `None` (the default) disables
    /// auto-refresh; manual `refit()` stays available. Checked only
    /// **between** ingest calls — once per record for
    /// [`StreamPipeline::ingest`], once per batch for the batch paths —
    /// so sequential and parallel ingestion of the same batch trigger
    /// (or not) identically.
    pub refresh_watermark: Option<f64>,
    /// Minimum drift-window records before the refresh watermark can
    /// fire: early small windows produce noisy divergence estimates, so
    /// auto-refresh waits until at least this many records have been
    /// folded since the last (re)baseline.
    pub refresh_min_records: usize,
    /// Whether the pipeline records stage timings and counters into
    /// the process-global `zeroer-obs` registry (default on; see
    /// `crates/obs/README.md` for the metric catalog). Purely
    /// observational — decisions, clusters and snapshots are
    /// bit-identical either way — but benches flip it off to measure
    /// instrumentation overhead honestly
    /// ([`StreamPipeline::set_metrics`] is the runtime knob).
    pub metrics: bool,
    /// Whether candidate scoring runs through the struct-of-arrays
    /// batched kernels (gather all of a record's candidates into a
    /// column-major feature matrix, then impute/normalize/score one
    /// feature column and one covariance block at a time) instead of
    /// the row-at-a-time scalar loop. Default **on**: the batched path
    /// is bit-identical to the scalar one (`f64::to_bits`, any thread
    /// count — the per-pair summation order is preserved exactly; see
    /// `tests/batched_parity.rs`) and substantially faster on records
    /// with more than a handful of candidates.
    /// ([`StreamPipeline::set_batched_scoring`] is the runtime knob.)
    pub batched_scoring: bool,
}

impl Default for StreamOptions {
    fn default() -> Self {
        Self {
            config: ZeroErConfig::default(),
            blocking_attr: 0,
            min_token_overlap: 1,
            qgram: 4,
            max_bucket: 400,
            threshold: 0.5,
            compact_watermark: Some(0.5),
            refresh_watermark: None,
            refresh_min_records: 64,
            metrics: true,
            batched_scoring: true,
        }
    }
}

impl StreamOptions {
    pub(crate) fn index_config(&self) -> IndexConfig {
        IndexConfig {
            attr: self.blocking_attr,
            qgram: self.qgram,
            max_bucket: self.max_bucket,
            min_token_overlap: self.min_token_overlap,
        }
    }
}

/// What the bootstrap batch fit produced (the same shape `dedup_table`
/// reports), for callers that want the batch results alongside the live
/// pipeline.
#[derive(Debug, Clone)]
pub struct BootstrapReport {
    /// Candidate pairs of the bootstrap dedup, `(i, j)` with `i < j`.
    pub pairs: Vec<(usize, usize)>,
    /// Posterior duplicate probability per pair.
    pub probabilities: Vec<f64>,
    /// Hard labels at the 0.5 threshold.
    pub labels: Vec<bool>,
    /// EM iterations the bootstrap fit ran.
    pub em_iterations: usize,
}

/// Result of ingesting one record.
#[derive(Debug, Clone)]
pub struct IngestOutcome {
    /// The record's index in the entity store.
    pub index: usize,
    /// Number of blocking candidates that were scored.
    pub candidates: usize,
    /// Existing records the new one matched, with posteriors, sorted by
    /// descending posterior.
    pub matches: Vec<(usize, f64)>,
    /// Cluster representative after assignment (== `index` for a fresh
    /// entity).
    pub cluster: usize,
}

impl IngestOutcome {
    /// Whether the record minted a new entity.
    pub fn is_new_entity(&self) -> bool {
        self.matches.is_empty()
    }
}

/// Blocking / derivation observability counters (`zeroer ... --stats`).
#[derive(Debug, Clone, Copy, Default)]
pub struct StreamStats {
    /// Distinct tokens in the store interner.
    pub interned_tokens: usize,
    /// Bytes of distinct token text stored (each token once).
    pub interned_bytes: usize,
    /// Live/retired bucket and posting counts per blocking leg.
    pub index: IndexStats,
    /// Candidate pairs generated so far (bootstrap blocking + every
    /// ingest's blocking lookups).
    pub candidate_pairs: usize,
    /// Live (non-retracted) records in the store.
    pub live_records: usize,
    /// Retracted records (tombstoned slots; their indices stay
    /// allocated).
    pub retracted_records: usize,
    /// Edges currently held in the match-decision log.
    pub decision_log: usize,
    /// Store epoch (advances on every retraction and compaction).
    pub epoch: u64,
}

impl StreamStats {
    /// Publishes these counters as gauges in the process-global
    /// `zeroer-obs` registry (always — gauges are point-in-time
    /// state, not hot-path instrumentation, so they ignore the
    /// per-pipeline metrics flag). The CLI's `--stats` renderer and
    /// `--metrics` JSON read them back from there; the names are
    /// cataloged in `crates/obs/README.md`.
    pub fn publish(&self) {
        let g = |name: &str, v: usize| zeroer_obs::gauge(name).set(v as u64);
        g("derive.interned_tokens", self.interned_tokens);
        g("derive.interned_bytes", self.interned_bytes);
        g("block.candidate_pairs", self.candidate_pairs);
        for (leg, s) in [("token", &self.index.token), ("qgram", &self.index.qgram)] {
            g(&format!("index.{leg}.live_buckets"), s.live);
            g(&format!("index.{leg}.retired_buckets"), s.retired);
            g(&format!("index.{leg}.postings"), s.postings);
            g(&format!("index.{leg}.dead_postings"), s.dead_postings);
        }
        g("store.live_records", self.live_records);
        g("store.retracted_records", self.retracted_records);
        g("store.decision_log_edges", self.decision_log);
        zeroer_obs::gauge("store.epoch").set(self.epoch);
    }
}

/// Renders the `--stats` observability block from the process-global
/// `zeroer-obs` registry (the single source the `--metrics` JSON dump
/// also reads). One implementation serves every consumer — the CLI
/// prints the returned string to stderr, and the serve admin `stats`
/// verb ships the same bytes over the wire — so the two can never
/// drift.
///
/// The streaming paths publish their gauges first ([`StreamStats::publish`]);
/// the batch `dedup` path publishes only the derivation/blocking
/// gauges, so the blocking-leg and store lines render only when a
/// streaming index has reported in. Lines are newline-terminated.
pub fn render_stats() -> String {
    use std::fmt::Write as _;
    let snap = zeroer_obs::snapshot();
    let g = |name: &str| snap.gauge(name).unwrap_or(0);
    let mut text = String::new();
    writeln!(
        text,
        "zeroer: derivation: {} distinct tokens interned ({} bytes); \
         candidate pairs generated: {}",
        g("derive.interned_tokens"),
        g("derive.interned_bytes"),
        g("block.candidate_pairs")
    )
    .expect("writing to a String cannot fail");
    if snap.gauge("index.token.live_buckets").is_none() {
        return text;
    }
    writeln!(
        text,
        "zeroer: blocking legs: token {} live / {} retired buckets ({} postings, {} dead); \
         qgram {} live / {} retired buckets ({} postings, {} dead)",
        g("index.token.live_buckets"),
        g("index.token.retired_buckets"),
        g("index.token.postings"),
        g("index.token.dead_postings"),
        g("index.qgram.live_buckets"),
        g("index.qgram.retired_buckets"),
        g("index.qgram.postings"),
        g("index.qgram.dead_postings")
    )
    .expect("writing to a String cannot fail");
    writeln!(
        text,
        "zeroer: store: {} live / {} retracted records; decision log {} edges; epoch {}",
        g("store.live_records"),
        g("store.retracted_records"),
        g("store.decision_log_edges"),
        g("store.epoch")
    )
    .expect("writing to a String cannot fail");
    text
}

/// What one retraction did (see [`StreamPipeline::retract`]).
#[derive(Debug, Clone, Copy, Default)]
pub struct RetractionReport {
    /// Pipeline epoch after the retraction (and any auto-compaction).
    pub epoch: u64,
    /// Size of the rebuilt connected component (1 = singleton, nothing
    /// to rebuild).
    pub component_size: usize,
    /// Index postings tombstoned for the record.
    pub postings_tombstoned: usize,
    /// The compaction the dead-fraction watermark triggered, if any.
    pub auto_compaction: Option<CompactionReport>,
}

/// What one compaction pass reclaimed (see [`StreamPipeline::compact`]).
#[derive(Debug, Clone, Copy, Default)]
pub struct CompactionReport {
    /// Pipeline epoch after the compaction.
    pub epoch: u64,
    /// Index-side reclaim: postings dropped, buckets freed, bytes.
    pub index: CompactionDelta,
    /// Store-side reclaim: pruned decision edges, freed derivation
    /// bytes.
    pub store: StoreCompaction,
}

impl CompactionReport {
    /// Total estimated bytes released by this pass.
    pub fn bytes_reclaimed(&self) -> usize {
        self.index.bytes_reclaimed + self.store.derived_bytes_freed
    }
}

/// What one model refresh did (see [`StreamPipeline::refit`]).
#[derive(Debug, Clone, Copy, Default)]
pub struct RefreshReport {
    /// Live records the model was re-fitted on.
    pub records: usize,
    /// Candidate pairs the refit blocking pass produced.
    pub pairs: usize,
    /// EM iterations the refit ran.
    pub em_iterations: usize,
    /// Drift divergence at the moment the refit started (in
    /// baseline-spread units; 0.0 when the window was empty).
    pub divergence: f64,
    /// Whether the refresh watermark triggered this refit (`false` for
    /// manual [`StreamPipeline::refit`] calls).
    pub auto: bool,
    /// Model generation after the swap (bootstrap model = 0).
    pub generation: u64,
}

/// Incremental entity resolution on top of a frozen batch-fitted model:
/// ingest records one at a time, find candidates via incremental blocking
/// indexes, score them with snapshot inference (no EM), and maintain
/// entity clusters transitively in a union-find.
pub struct StreamPipeline {
    opts: StreamOptions,
    store: EntityStore,
    index: ShardedIndex,
    featurizer: BatchFeaturizer,
    scorer: SnapshotScorer,
    /// Reusable struct-of-arrays scoring buffers for the sequential
    /// scoring hot loop (parallel workers carry their own), keeping
    /// steady-state scoring allocation-free.
    batch: ScoreBatch,
    /// Candidate pairs generated so far (see [`StreamStats`]).
    candidates_seen: usize,
    /// Bootstrap provenance: how many records the model was fitted on,
    /// which pairs were merged at fit time, and a digest of those
    /// records; persisted into the snapshot so `seed_base` can replay
    /// batch decisions without re-scoring (and refuse the wrong table).
    base_len: usize,
    base_matches: Vec<(usize, usize)>,
    base_digest: u64,
    /// Tombstones restored from a snapshot and not yet replayed: they
    /// name bootstrap-record indices and are applied by `seed_base`
    /// (retraction is refused until then — the indices would otherwise
    /// be ambiguous against freshly streamed records).
    pending_tombstones: Vec<usize>,
    /// Epoch restored from a snapshot, re-pinned after `seed_base`.
    pending_epoch: u64,
    /// Metric handles, resolved once at construction; `None` when
    /// [`StreamOptions::metrics`] is off, so the uninstrumented hot
    /// path pays a single branch per stage boundary.
    meters: Option<StageMeters>,
    /// Streaming posterior/feature summaries against the frozen model's
    /// baseline — always maintained (folding is a handful of adds per
    /// record) so the refresh watermark works with metrics off; gauge
    /// publication is what the metrics flag gates.
    drift: DriftMonitor,
    /// How many times the scorer has been swapped by [`StreamPipeline::refit`]
    /// since construction (0 = still the bootstrap model).
    generation: u64,
}

/// One record's scoring result crossing from a parallel scoring worker
/// back to the single writer: the above-threshold matches plus the
/// drift-window sample (`None` for zero-candidate records and on the
/// scalar path).
type ScoredRecord = (Vec<(usize, f64)>, Option<DriftSample>);

/// A slice of per-record scoring slots handed to a scoring worker,
/// tagged with the index of its first record.
type ScoreJob<'m> = (usize, &'m mut [ScoredRecord]);

/// Order-sensitive FNV-1a digest of a record sequence (ids + values),
/// used to pin persisted bootstrap decisions to the exact table they
/// were made on: replaying merge pairs onto different or reordered
/// records would silently produce wrong clusters.
pub(crate) fn records_digest(records: &[Record]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    for r in records {
        eat(&r.id.to_le_bytes());
        for v in &r.values {
            match v.as_text() {
                Some(t) => {
                    eat(&[0xff]);
                    eat(t.as_bytes());
                }
                None => eat(&[0xfe]),
            }
        }
    }
    h
}

/// Scores `candidates` (cluster-state-independent: features depend only
/// on the two records) against the new record's derivation, returning the
/// `(candidate, posterior)` pairs above `threshold`, sorted by descending
/// posterior (stable, so ties keep ascending candidate order).
///
/// Orientation matters because a few of the similarity measures (e.g.
/// Monge-Elkan) are asymmetric. With `new_on_left = false`, rows are
/// `(candidate, new)` — the dedup `(older, newer)` convention mirroring
/// batch pairs `(i, j)` with `i < j`, which is also the linkage
/// orientation when the *new* record is right-side. `new_on_left = true`
/// flips to `(new, candidate)` for left-side linkage ingest, keeping
/// rows `(left, right)` as the cross model was fitted.
///
/// With `batched` on, the candidates are gathered into `batch`'s
/// column-major feature matrix (one similarity function filling one
/// column across every pair) and scored through the struct-of-arrays
/// kernels ([`zeroer_features::BatchFeaturizer::fill_columns`] →
/// [`SnapshotScorer::score_batch`]); otherwise each candidate is
/// featurized and scored row-at-a-time. Both paths run the exact same
/// float operations per pair in the exact same order, so posteriors are
/// bit-identical (`f64::to_bits`) between them — `tests/batched_parity.rs`
/// locks that in.
///
/// Every ingest path — sequential and parallel, dedup and linkage —
/// calls this single function on identical inputs, which is what makes
/// parallel ingest bit-identical to sequential ingest.
#[allow(clippy::too_many_arguments)]
pub(crate) fn score_candidates<'a, F>(
    featurizer: &BatchFeaturizer,
    scorer: &SnapshotScorer,
    interner: &Interner,
    threshold: f64,
    new_on_left: bool,
    candidates: &[usize],
    derived_of: F,
    new_derived: &'a DerivedRecord,
    batch: &mut ScoreBatch,
    batched: bool,
    batch_meter: Option<&'static Histogram>,
) -> Vec<(usize, f64)>
where
    F: Fn(usize) -> &'a DerivedRecord,
{
    let mut matches: Vec<(usize, f64)> = Vec::new();
    if batched {
        if let Some(h) = batch_meter {
            h.record(candidates.len() as u64);
        }
        if !candidates.is_empty() {
            featurizer.fill_columns(
                interner,
                candidates.len(),
                |i| {
                    let c = derived_of(candidates[i]);
                    if new_on_left {
                        (new_derived, c)
                    } else {
                        (c, new_derived)
                    }
                },
                batch.cols_mut(),
            );
            let scores = scorer.score_batch(batch);
            for (&c, &p) in candidates.iter().zip(scores) {
                if p > threshold {
                    matches.push((c, p));
                }
            }
        }
    } else {
        let row = featurizer.row();
        let buf = batch.row_scratch();
        for &c in candidates {
            if new_on_left {
                row.raw_row_into(interner, new_derived, derived_of(c), buf);
            } else {
                row.raw_row_into(interner, derived_of(c), new_derived, buf);
            }
            let p = scorer.score_raw(buf);
            if p > threshold {
                matches.push((c, p));
            }
        }
    }
    matches.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite posteriors"));
    matches
}

impl StreamPipeline {
    /// Bootstraps from an initial batch: runs the full batch dedup
    /// pipeline (blocking → features → normalization → EM with the
    /// transitivity calibrator) on `initial`, freezes the fitted model
    /// into a snapshot, seeds the store/indexes with the initial records,
    /// and applies the batch match decisions to the cluster index.
    ///
    /// The initial records are derived exactly **once**: the featurizer's
    /// derivation (which also carries the blocking keys) feeds batch
    /// blocking, feature generation, the index seed, and is then handed
    /// to the entity store together with its interner.
    ///
    /// # Errors
    /// Fails when `initial` yields no candidate pairs (nothing to fit).
    pub fn bootstrap(
        initial: &Table,
        opts: StreamOptions,
    ) -> Result<(Self, BootstrapReport), StreamError> {
        let meters = StageMeters::from_flag(opts.metrics, "stream");
        let sw = Stopwatch::new(meters.is_some());
        let index_cfg = opts.index_config();
        let fz = PairFeaturizer::with_config(initial, initial, index_cfg.derive_config());
        let cs = standard_candidates_derived(
            fz.left_derived(),
            None,
            PairMode::Dedup,
            opts.min_token_overlap,
            opts.max_bucket,
        );
        if cs.is_empty() {
            return Err(StreamError(
                "bootstrap produced no candidate pairs; nothing to fit a model on".into(),
            ));
        }
        let mut fs = fz.featurize(cs.pairs());
        fs.normalize();

        let mut model = GenerativeModel::new(opts.config.clone(), fs.layout.clone());
        let calibrator = TransitivityCalibrator::new(cs.pairs());
        let summary = model.fit(&fs.matrix, Some(&calibrator));

        let ranges = fs.ranges.as_ref().expect("normalize() was called").clone();
        let snapshot = ModelSnapshot::capture(&model, &ranges, &fs.impute_means, &fs.names);
        let drift = DriftMonitor::new(&snapshot);
        let scorer = snapshot.scorer()?;

        let featurizer = BatchFeaturizer::new(fz.attr_types());
        debug_assert_eq!(featurizer.dim(), snapshot.dim());

        // Hand the featurizer's derivation (and interner) to the store —
        // no record is derived twice — and seed the blocking index from
        // the derived keys.
        let (interner, derived) = fz.into_parts();
        let mut store =
            EntityStore::from_derived(initial, interner, derived, index_cfg.derive_config());
        let mut index = ShardedIndex::new(index_cfg);
        for i in 0..store.len() {
            let keys = RecordKeys::from_derived(store.derived(i), store.interner());
            index.insert_keys(keys);
        }

        // Cluster merges use the same `p > threshold` criterion ingest
        // applies, so a pair decides identically whether it arrived in
        // the bootstrap batch or one record later. The report's `labels`
        // keep the paper's Eq. 5 cut (γ > 0.5) for parity with
        // `dedup_table`; at the default threshold of 0.5 the two agree.
        // The merged pairs are kept (and persisted in the snapshot) so a
        // restored pipeline can replay these decisions via `seed_base`.
        let labels = model.labels();
        let mut base_matches = Vec::new();
        for (&(a, b), &gamma) in cs.pairs().iter().zip(model.gammas()) {
            if gamma > opts.threshold {
                store.merge(a, b);
                base_matches.push((a, b));
            }
        }

        let report = BootstrapReport {
            pairs: cs.pairs().to_vec(),
            probabilities: model.gammas().to_vec(),
            labels,
            em_iterations: summary.iterations,
        };
        if let Some(m) = meters {
            sw.total(m.bootstrap);
            m.records.add(store.len() as u64);
            m.candidates.add(cs.pairs().len() as u64);
            m.matches.add(base_matches.len() as u64);
        }
        Ok((
            Self {
                opts,
                candidates_seen: cs.pairs().len(),
                base_len: store.len(),
                base_matches,
                base_digest: records_digest(initial.records()),
                store,
                index,
                featurizer,
                scorer,
                batch: ScoreBatch::new(),
                pending_tombstones: Vec::new(),
                pending_epoch: 0,
                meters,
                drift,
                generation: 0,
            },
            report,
        ))
    }

    /// Rebuilds a scoring pipeline from a saved [`PipelineSnapshot`] with
    /// an empty store — the `zeroer ingest` cold-start path.
    ///
    /// `threshold` overrides the assignment threshold (pass
    /// `StreamOptions::default().threshold` for the standard 0.5 cut).
    ///
    /// Runtime knobs are not persisted: like `threshold`, the
    /// compaction watermark comes back at its default — callers that
    /// disabled or tuned it must re-apply
    /// [`StreamPipeline::set_compact_watermark`] after restoring. The
    /// metrics flag likewise restarts at its default
    /// ([`StreamPipeline::set_metrics`] re-applies it).
    ///
    /// # Errors
    /// Fails if the snapshot is internally inconsistent (feature layout
    /// vs. model dimensionality), or if it carries tombstones for
    /// streamed (non-persisted) records.
    pub fn from_snapshot(snap: &PipelineSnapshot, threshold: f64) -> Result<Self, StreamError> {
        let featurizer = BatchFeaturizer::new(&snap.attr_types);
        if featurizer.dim() != snap.model.dim() {
            return Err(StreamError(format!(
                "snapshot attr types imply {} features but the model has {}",
                featurizer.dim(),
                snap.model.dim()
            )));
        }
        if let Some(&t) = snap.tombstones.iter().find(|&&t| t >= snap.bootstrap_len) {
            return Err(StreamError(format!(
                "snapshot tombstones record {t}, which lies beyond the {} bootstrap records; \
                 streamed records are not persisted, so their retractions cannot be restored",
                snap.bootstrap_len
            )));
        }
        let scorer = snap.model.scorer()?;
        let opts = StreamOptions {
            config: ZeroErConfig::default(),
            blocking_attr: snap.index.attr,
            min_token_overlap: snap.index.min_token_overlap,
            qgram: snap.index.qgram,
            max_bucket: snap.index.max_bucket,
            threshold,
            compact_watermark: StreamOptions::default().compact_watermark,
            refresh_watermark: StreamOptions::default().refresh_watermark,
            refresh_min_records: StreamOptions::default().refresh_min_records,
            metrics: StreamOptions::default().metrics,
            batched_scoring: StreamOptions::default().batched_scoring,
        };
        let meters = StageMeters::from_flag(opts.metrics, "stream");
        Ok(Self {
            store: EntityStore::new(snap.to_schema(), snap.index.derive_config()),
            index: ShardedIndex::new(snap.index.clone()),
            featurizer,
            scorer,
            opts,
            batch: ScoreBatch::new(),
            candidates_seen: 0,
            base_len: snap.bootstrap_len,
            base_matches: snap.bootstrap_pairs.clone(),
            base_digest: snap.bootstrap_digest,
            pending_tombstones: snap.tombstones.clone(),
            pending_epoch: snap.epoch,
            meters,
            drift: DriftMonitor::new(&snap.model),
            generation: 0,
        })
    }

    /// Freezes the current pipeline configuration into a serializable
    /// snapshot, including the bootstrap match decisions (if this
    /// pipeline knows them) so a cold restart can preserve them.
    pub fn snapshot(&self) -> PipelineSnapshot {
        // Un-replayed pending tombstones pass through verbatim (the
        // store cannot have its own while they exist — retraction is
        // refused until `seed_base` consumes them).
        let (tombstones, epoch) = if self.pending_tombstones.is_empty() {
            (
                (0..self.store.len())
                    .filter(|&i| self.store.is_retracted(i))
                    .collect(),
                self.store.epoch(),
            )
        } else {
            (self.pending_tombstones.clone(), self.pending_epoch)
        };
        PipelineSnapshot {
            schema: self.store.table().schema().attributes().to_vec(),
            attr_types: self.featurizer.attr_types().to_vec(),
            index: self.index.config().clone(),
            model: self.scorer.snapshot().clone(),
            bootstrap_len: self.base_len,
            bootstrap_pairs: self.base_matches.clone(),
            bootstrap_digest: self.base_digest,
            tombstones,
            epoch,
        }
    }

    /// Seeds a freshly [`StreamPipeline::from_snapshot`]-restored
    /// pipeline with the bootstrap-batch records, replaying the
    /// *persisted batch decisions* instead of re-scoring each record
    /// through the streaming path — the cold-start equivalent of what
    /// [`StreamPipeline::bootstrap`] does in-process. `base` must be the
    /// bootstrap table (same records, same order) the snapshot's model
    /// was fitted on.
    ///
    /// # Errors
    /// Fails if the store already holds records, the snapshot carries no
    /// bootstrap decisions, or `base` has the wrong record count.
    pub fn seed_base(&mut self, base: &Table) -> Result<(), StreamError> {
        if !self.store.is_empty() {
            return Err(StreamError(
                "seed_base requires an empty (just-restored) pipeline".into(),
            ));
        }
        if self.base_len == 0 {
            return Err(StreamError(
                "snapshot carries no bootstrap decisions to replay".into(),
            ));
        }
        if base.len() != self.base_len {
            return Err(StreamError(format!(
                "base table has {} records but the snapshot was bootstrapped on {}",
                base.len(),
                self.base_len
            )));
        }
        let m = self.meters;
        let sw = Stopwatch::new(m.is_some());
        if self.base_digest != 0 && records_digest(base.records()) != self.base_digest {
            return Err(StreamError(
                "base table does not match the records the snapshot was bootstrapped on \
                 (same length, different or reordered records); the persisted batch \
                 decisions cannot be replayed onto it"
                    .into(),
            ));
        }
        for r in base.records() {
            let derived = self.store.derive(r);
            let keys = RecordKeys::from_derived(&derived, self.store.interner());
            self.index.insert_keys(keys);
            self.store.push_derived(r.clone(), derived);
        }
        for &(a, b) in &self.base_matches {
            self.store.merge(a, b);
        }
        // Replay persisted retractions (bootstrap-record indices only —
        // from_snapshot already rejected anything beyond), then re-pin
        // the persisted epoch so the restored state orders exactly like
        // the saved one.
        let pending = std::mem::take(&mut self.pending_tombstones);
        for &i in &pending {
            self.retract_now(i)?;
        }
        let epoch = self.pending_epoch.max(self.store.epoch());
        self.store.set_epoch(epoch);
        if let Some(m) = m {
            sw.total(m.seed);
            m.records.add(self.base_len as u64);
        }
        Ok(())
    }

    /// The entity store.
    pub fn store(&self) -> &EntityStore {
        &self.store
    }

    /// The options in effect. For pipelines restored via
    /// [`StreamPipeline::from_snapshot`], `config` is
    /// `ZeroErConfig::default()` — the fit-time configuration is consumed
    /// by the bootstrap EM run and is not stored in the snapshot (scoring
    /// depends only on the frozen parameters).
    pub fn options(&self) -> &StreamOptions {
        &self.opts
    }

    /// Reconfigures the dead-fraction auto-compaction watermark
    /// (`None` disables it). A runtime knob, not persisted in
    /// snapshots — restored pipelines start at the default.
    pub fn set_compact_watermark(&mut self, watermark: Option<f64>) {
        self.opts.compact_watermark = watermark;
    }

    /// Reconfigures the drift auto-refresh watermark (`None` disables
    /// it; see [`StreamOptions::refresh_watermark`]). A runtime knob,
    /// not persisted in snapshots — restored pipelines start at the
    /// default (off).
    pub fn set_refresh_watermark(&mut self, watermark: Option<f64>) {
        self.opts.refresh_watermark = watermark;
    }

    /// Reconfigures the minimum drift-window size before the refresh
    /// watermark may fire (see [`StreamOptions::refresh_min_records`]).
    pub fn set_refresh_min_records(&mut self, records: usize) {
        self.opts.refresh_min_records = records;
    }

    /// The live drift monitor: streaming posterior/feature summaries
    /// against the current model's baseline.
    pub fn drift(&self) -> &DriftMonitor {
        &self.drift
    }

    /// How many times [`StreamPipeline::refit`] has swapped the scorer
    /// (0 = still serving the bootstrap model).
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Enables or disables this pipeline's stage metrics (see
    /// [`StreamOptions::metrics`]). A runtime knob, not persisted in
    /// snapshots. Metrics are purely observational: on or off, every
    /// decision, cluster and snapshot is bit-identical.
    pub fn set_metrics(&mut self, on: bool) {
        self.opts.metrics = on;
        self.meters = StageMeters::from_flag(on, "stream");
    }

    /// Switches candidate scoring between the struct-of-arrays batched
    /// kernels and the row-at-a-time scalar loop (see
    /// [`StreamOptions::batched_scoring`]). A runtime knob, not
    /// persisted in snapshots. On or off, every posterior, decision,
    /// cluster and snapshot is bit-identical — the flag only trades the
    /// evaluation strategy.
    pub fn set_batched_scoring(&mut self, on: bool) {
        self.opts.batched_scoring = on;
    }

    /// Number of ingested records (bootstrap records included).
    pub fn len(&self) -> usize {
        self.store.len()
    }

    /// Whether nothing has been ingested.
    pub fn is_empty(&self) -> bool {
        self.store.is_empty()
    }

    /// Derivation and blocking observability counters.
    pub fn stats(&self) -> StreamStats {
        StreamStats {
            interned_tokens: self.store.interner().len(),
            interned_bytes: self.store.interner().bytes(),
            index: self.index.stats(),
            candidate_pairs: self.candidates_seen,
            live_records: self.store.live_len(),
            retracted_records: self.store.retracted_count(),
            decision_log: self.store.decision_log_len(),
            epoch: self.store.epoch(),
        }
    }

    /// The pipeline epoch: advances on every retraction and compaction.
    pub fn epoch(&self) -> u64 {
        self.store.epoch()
    }

    /// Clones the pipeline's read state into an immutable, epoch-tagged
    /// [`crate::split::ReadView`] (version 0 — the publisher stamps the
    /// real sequence number). This is everything a resolve query needs:
    /// the store (records + derivations + interner + cluster index), the
    /// blocking index, and the frozen featurizer/scorer pair.
    pub fn read_view(&self) -> crate::split::ReadView {
        crate::split::ReadView {
            epoch: self.store.epoch(),
            version: 0,
            store: self.store.clone(),
            index: self.index.clone(),
            featurizer: self.featurizer.clone(),
            scorer: self.scorer.clone(),
            threshold: self.opts.threshold,
            batched: self.opts.batched_scoring,
            score_meter: self.meters.map(|m| m.score_batch_candidates),
        }
    }

    /// Ingests one record: one derivation pass → incremental blocking →
    /// frozen-model scoring of every candidate → entity assignment. Runs
    /// **zero** EM iterations.
    ///
    /// The record joins the cluster of every candidate scoring above the
    /// threshold (all of them — transitivity then merges those clusters),
    /// or mints a fresh entity when none does.
    ///
    /// # Panics
    /// Panics if the record arity does not match the schema.
    pub fn ingest(&mut self, record: Record) -> IngestOutcome {
        let outcome = self.ingest_one(record);
        self.after_ingest();
        outcome
    }

    /// The per-record ingest core, shared by [`StreamPipeline::ingest`]
    /// and [`StreamPipeline::ingest_batch`]: everything except the
    /// ingest-boundary work (`after_ingest`), so batch ingestion checks
    /// the refresh watermark once per call instead of once per record —
    /// keeping it aligned with [`StreamPipeline::ingest_batch_parallel`],
    /// which cannot refit mid-batch.
    fn ingest_one(&mut self, record: Record) -> IngestOutcome {
        // Validate before touching any state: a panic must not leave the
        // index one record ahead of the store.
        assert_eq!(
            record.values.len(),
            self.store.table().schema().arity(),
            "record arity {} does not match schema arity {}",
            record.values.len(),
            self.store.table().schema().arity()
        );
        let m = self.meters;
        let mut sw = Stopwatch::new(m.is_some());
        let derived = self.store.derive(&record);
        let keys = RecordKeys::from_derived(&derived, self.store.interner());
        if let Some(m) = m {
            sw.lap(m.derive);
        }
        let candidates = self.index.insert_keys_live(keys, self.store.tombstones());
        self.candidates_seen += candidates.len();
        if let Some(m) = m {
            sw.lap(m.block);
            m.candidates.add(candidates.len() as u64);
        }
        let idx = self.store.push_derived(record, derived);
        debug_assert_eq!(self.index.len(), self.store.len());

        let store = &self.store;
        let matches = score_candidates(
            &self.featurizer,
            &self.scorer,
            store.interner(),
            self.opts.threshold,
            false,
            &candidates,
            |c| store.derived(c),
            store.derived(idx),
            &mut self.batch,
            self.opts.batched_scoring,
            m.map(|m| m.score_batch_candidates),
        );
        if let Some(m) = m {
            sw.lap(m.score);
        }
        // The batch buffers hold this record's prepared columns and
        // posteriors only when the batched path actually ran (non-empty
        // candidate list); `from_batch` rejects the empty case itself.
        let sample = if self.opts.batched_scoring {
            DriftSample::from_batch(&self.batch, candidates.len())
        } else {
            None
        };
        self.drift
            .fold(candidates.len(), matches.len(), sample.as_ref());
        for &(c, _) in &matches {
            self.store.merge(idx, c);
        }
        let cluster = self.store.find(idx);
        if let Some(m) = m {
            sw.lap(m.decide);
            sw.total(m.ingest);
            m.records.incr();
            m.matches.add(matches.len() as u64);
        }
        IngestOutcome {
            index: idx,
            candidates: candidates.len(),
            matches,
            cluster,
        }
    }

    /// Ingests a batch of records in order; later records can match
    /// earlier records of the same batch. The refresh watermark is
    /// checked once, after the whole batch — an ingest call is the
    /// refit boundary, so sequential and parallel ingestion of the same
    /// batch see identical trigger points.
    pub fn ingest_batch(
        &mut self,
        records: impl IntoIterator<Item = Record>,
    ) -> Vec<IngestOutcome> {
        let outcomes = records.into_iter().map(|r| self.ingest_one(r)).collect();
        self.after_ingest();
        outcomes
    }

    /// Ingest-boundary work shared by every ingest entry point: check
    /// the drift watermark (possibly refitting) and publish the drift
    /// gauges. Runs once per *call*, not once per record, so the
    /// parallel and sequential batch paths stay decision-identical.
    fn after_ingest(&mut self) {
        let _ = self.maybe_autorefresh();
        if self.meters.is_some() {
            self.drift.publish();
        }
    }

    /// Ingests a batch across a pool of `threads` workers, producing
    /// outcomes **bit-identical** to [`StreamPipeline::ingest_batch`] on
    /// the same records.
    ///
    /// This works because the frozen model makes streaming inference
    /// embarrassingly parallel: candidate generation depends only on
    /// previously inserted records (parallelized across index key-space
    /// shards), and candidate scoring is read-only against the snapshot
    /// (parallelized across records with per-worker buffers). The two
    /// writes are serialized: fresh tokens discovered by the workers'
    /// scratch interners are committed into the store interner in ingest
    /// order (reproducing the sequential symbol numbering exactly — see
    /// `zeroer_textsim::derive`), and a single writer applies the match
    /// decisions in ingest order as the final step — so both the interner
    /// and the union-find evolve through exactly the sequential sequence
    /// of states.
    ///
    /// # Panics
    /// Panics if any record's arity does not match the schema (checked
    /// up front, before any state is touched).
    pub fn ingest_batch_parallel(
        &mut self,
        records: Vec<Record>,
        threads: usize,
    ) -> Vec<IngestOutcome> {
        let threads = threads.max(1);
        if threads == 1 || records.len() < 2 {
            return self.ingest_batch(records);
        }
        let arity = self.store.table().schema().arity();
        for r in &records {
            assert_eq!(
                r.values.len(),
                arity,
                "record arity {} does not match schema arity {}",
                r.values.len(),
                arity
            );
        }
        let n = records.len();
        let base = self.store.len();
        let m = self.meters;
        let mut sw = Stopwatch::new(m.is_some());

        // Phase 1 (parallel over records): derive each record — the
        // tokenization-heavy work — against a frozen snapshot of the
        // store interner, parking unseen tokens in per-worker scratch
        // tables.
        let cfg = self.store.derive_config();
        let chunk = n.div_ceil(threads).max(1);
        let mut scratch_chunks: Vec<(Vec<ScratchDerived>, Vec<String>)> = {
            let interner = self.store.interner();
            let mut chunks: Vec<Option<(Vec<ScratchDerived>, Vec<String>)>> =
                (0..records.chunks(chunk).len()).map(|_| None).collect();
            crossbeam::thread::scope(|scope| {
                for (rec_chunk, out) in records.chunks(chunk).zip(chunks.iter_mut()) {
                    let cfg = &cfg;
                    scope.spawn(move |_| {
                        let mut deriver = ScratchDeriver::new(interner, cfg.clone());
                        let derived: Vec<ScratchDerived> = rec_chunk
                            .iter()
                            .map(|r| deriver.derive(&r.values))
                            .collect();
                        *out = Some((derived, deriver.into_texts()));
                    });
                }
            })
            .expect("derivation worker panicked");
            chunks
                .into_iter()
                .map(|c| c.expect("filled above"))
                .collect()
        };

        // Commit (sequential, single writer, ingest order): intern each
        // record's fresh tokens — reproducing the sequential symbol
        // numbering — and rebind its derivation onto global symbols.
        let mut derived: Vec<DerivedRecord> = Vec::with_capacity(n);
        let mut keys: Vec<RecordKeys> = Vec::with_capacity(n);
        for (chunk_derived, texts) in scratch_chunks.drain(..) {
            let mut map: Vec<Option<Sym>> = vec![None; texts.len()];
            for sd in chunk_derived {
                let rec = sd.commit(&texts, &mut map, self.store.interner_mut());
                keys.push(RecordKeys::from_derived(&rec, self.store.interner()));
                derived.push(rec);
            }
        }
        if let Some(m) = m {
            sw.lap(m.batch_derive);
        }

        // Phase 2 (parallel over index shards): candidate generation.
        // The tombstone set is frozen for the whole batch (retraction
        // needs `&mut self`), so every worker filters identically and
        // candidate lists stay bit-identical at any thread count.
        let candidates = self
            .index
            .insert_batch_live(keys, threads, self.store.tombstones());
        let batch_candidates = candidates.iter().map(Vec::len).sum::<usize>();
        self.candidates_seen += batch_candidates;
        if let Some(m) = m {
            sw.lap(m.batch_block);
            m.candidates.add(batch_candidates as u64);
            m.batch_candidates.record(batch_candidates as u64);
        }

        // Phase 3 (parallel over records, work-stealing queue): frozen-
        // model scoring. Chunks are small so a record with many
        // candidates cannot straggle a whole static partition.
        let store = &self.store;
        let featurizer = &self.featurizer;
        let scorer = &self.scorer;
        let threshold = self.opts.threshold;
        let batched = self.opts.batched_scoring;
        let score_meter = m.map(|m| m.score_batch_candidates);
        let mut scored: Vec<ScoredRecord> = (0..n).map(|_| (Vec::new(), None)).collect();
        {
            let score_chunk = n.div_ceil(threads * 8).max(1);
            let queue: Mutex<Vec<ScoreJob<'_>>> = Mutex::new(
                scored
                    .chunks_mut(score_chunk)
                    .enumerate()
                    .map(|(ci, ch)| (ci * score_chunk, ch))
                    .collect(),
            );
            // Queue-wait sampling measures lock acquisition only (the
            // pop itself is O(1)); a handle copy, not `self`, crosses
            // into the workers.
            let queue_wait = m.map(|m| m.queue_wait);
            crossbeam::thread::scope(|scope| {
                for _ in 0..threads {
                    let queue = &queue;
                    let candidates = &candidates;
                    let derived = &derived;
                    scope.spawn(move |_| {
                        let mut batch = ScoreBatch::new();
                        loop {
                            let before = queue_wait.map(|h| (h, std::time::Instant::now()));
                            let mut q = queue.lock().expect("queue poisoned");
                            let waited = before.map(|(h, t)| (h, t.elapsed()));
                            let job = q.pop();
                            drop(q);
                            if let Some((h, d)) = waited {
                                h.record(d.as_nanos().min(u64::MAX as u128) as u64);
                            }
                            let Some((start, out)) = job else { break };
                            for (off, slot) in out.iter_mut().enumerate() {
                                let i = start + off;
                                let matches = score_candidates(
                                    featurizer,
                                    scorer,
                                    store.interner(),
                                    threshold,
                                    false,
                                    &candidates[i],
                                    |c| {
                                        if c < base {
                                            store.derived(c)
                                        } else {
                                            &derived[c - base]
                                        }
                                    },
                                    &derived[i],
                                    &mut batch,
                                    batched,
                                    score_meter,
                                );
                                // Sample the worker's batch buffers
                                // immediately, while they still hold
                                // record `i`'s prepared columns and
                                // posteriors; the single writer folds
                                // the samples in ingest order, so the
                                // drift stream stays bit-identical to
                                // the sequential path.
                                let sample = if batched {
                                    DriftSample::from_batch(&batch, candidates[i].len())
                                } else {
                                    None
                                };
                                *slot = (matches, sample);
                            }
                        }
                    });
                }
            })
            .expect("scoring worker panicked");
        }
        if let Some(m) = m {
            sw.lap(m.batch_score);
        }

        // Phase 4 (sequential, single writer): apply match decisions in
        // ingest order — the union-find passes through exactly the states
        // sequential ingest would produce.
        let mut outcomes = Vec::with_capacity(n);
        for (((record, rec_derived), (matches, sample)), cands) in records
            .into_iter()
            .zip(derived)
            .zip(scored)
            .zip(&candidates)
        {
            self.drift.fold(cands.len(), matches.len(), sample.as_ref());
            let idx = self.store.push_derived(record, rec_derived);
            for &(c, _) in &matches {
                self.store.merge(idx, c);
            }
            let cluster = self.store.find(idx);
            outcomes.push(IngestOutcome {
                index: idx,
                candidates: cands.len(),
                matches,
                cluster,
            });
        }
        debug_assert_eq!(self.index.len(), self.store.len());
        if let Some(m) = m {
            sw.lap(m.batch_decide);
            sw.total(m.batch);
            m.records.add(n as u64);
            m.matches
                .add(outcomes.iter().map(|o| o.matches.len() as u64).sum());
        }
        self.after_ingest();
        outcomes
    }

    /// Current duplicate clusters (≥ 2 members), in the same shape
    /// `dedup_table` reports. Retracted records never appear.
    pub fn clusters(&self) -> Vec<Vec<usize>> {
        self.store.clusters()
    }

    /// The shared retraction core: tombstone the record in the store
    /// (rebuilding its connected component from the decision log) and
    /// mark its index postings dead. No watermark check — `seed_base`
    /// replays persisted tombstones through this without compacting.
    fn retract_now(&mut self, idx: usize) -> Result<RetractionReport, StreamError> {
        if idx >= self.store.len() {
            return Err(StreamError(format!(
                "unknown record index {idx} (store holds {} records)",
                self.store.len()
            )));
        }
        if self.store.is_retracted(idx) {
            return Err(StreamError(format!("record {idx} is already retracted")));
        }
        // Capture the keys before the store mutates: the derivation is
        // the only place the record's blocking keys live.
        let keys = RecordKeys::from_derived(self.store.derived(idx), self.store.interner());
        let out = self.store.retract(idx).map_err(StreamError)?;
        let postings_tombstoned = self.index.retract_keys(idx, &keys);
        Ok(RetractionReport {
            epoch: out.epoch,
            component_size: out.component_size,
            postings_tombstoned,
            auto_compaction: None,
        })
    }

    /// Retracts record `idx`: the record is tombstoned, its connected
    /// component's clusters are rebuilt from the match-decision log as
    /// if it had never been ingested, and its index postings are marked
    /// dead (candidates never see it again). If the dead-posting
    /// fraction then crosses [`StreamOptions::compact_watermark`], the
    /// pipeline compacts itself and reports it.
    ///
    /// Record indices are never reused: every other record keeps its
    /// index, and the slot stays allocated until compaction releases its
    /// heavy state.
    ///
    /// # Errors
    /// Fails on an out-of-range index, an already-retracted record, or a
    /// snapshot-restored pipeline whose persisted tombstones have not
    /// been replayed yet (call [`StreamPipeline::seed_base`] first).
    pub fn retract(&mut self, idx: usize) -> Result<RetractionReport, StreamError> {
        if !self.pending_tombstones.is_empty() {
            return Err(StreamError(
                "snapshot tombstones are pending; seed_base must replay the bootstrap \
                 records before new retractions"
                    .into(),
            ));
        }
        let m = self.meters;
        let sw = Stopwatch::new(m.is_some());
        let mut report = self.retract_now(idx)?;
        report.auto_compaction = self.maybe_autocompact();
        if let Some(c) = &report.auto_compaction {
            report.epoch = c.epoch;
        }
        if let Some(m) = m {
            // Includes any auto-compaction the watermark triggered
            // (which also times itself under `compact.ns`).
            sw.total(m.retract);
            m.retractions.incr();
        }
        Ok(report)
    }

    /// Retracts a batch of records, all-or-nothing: every id is
    /// validated (in range, live, no duplicates) before the first
    /// retraction is applied, so a bad id cannot leave the pipeline
    /// half-updated.
    ///
    /// # Errors
    /// Fails without side effects if any id is invalid.
    pub fn retract_batch(&mut self, ids: &[usize]) -> Result<Vec<RetractionReport>, StreamError> {
        let mut seen = std::collections::HashSet::new();
        for &idx in ids {
            if idx >= self.store.len() {
                return Err(StreamError(format!(
                    "unknown record index {idx} (store holds {} records)",
                    self.store.len()
                )));
            }
            if self.store.is_retracted(idx) {
                return Err(StreamError(format!("record {idx} is already retracted")));
            }
            if !seen.insert(idx) {
                return Err(StreamError(format!(
                    "record {idx} appears twice in the retraction batch"
                )));
            }
        }
        ids.iter().map(|&idx| self.retract(idx)).collect()
    }

    /// Replaces record `idx` with `record`: retract the old version,
    /// ingest the new one (which gets a **fresh index** — slots are
    /// never reused). Returns the ingest outcome of the new version.
    ///
    /// # Errors
    /// Fails like [`StreamPipeline::retract`], or when the new record's
    /// arity does not match the schema. Either way nothing is applied:
    /// the old version must never be destroyed for a replacement that
    /// cannot be ingested.
    pub fn update(&mut self, idx: usize, record: Record) -> Result<IngestOutcome, StreamError> {
        let arity = self.store.table().schema().arity();
        if record.values.len() != arity {
            return Err(StreamError(format!(
                "replacement record arity {} does not match schema arity {arity}",
                record.values.len()
            )));
        }
        self.retract(idx)?;
        Ok(self.ingest(record))
    }

    /// Compacts the pipeline in place: drops tombstoned index postings,
    /// frees emptied and cap-retired buckets, prunes dead decision-log
    /// edges, and releases retracted records' derivations. Advances the
    /// epoch.
    ///
    /// Dead postings and dead log edges were already invisible, so
    /// dropping them never changes behavior. The one semantic edge is
    /// cap-retired (`Dead`) bucket markers: compaction removes them, so
    /// a formerly hot blocking key becomes pairable again until its
    /// *live* population re-crosses the frequency cap — the state a
    /// fresh index over the surviving records would be in. See the
    /// retraction section of the `crate::index` module docs.
    pub fn compact(&mut self) -> CompactionReport {
        let m = self.meters;
        let sw = Stopwatch::new(m.is_some());
        let index = self.index.compact(self.store.tombstones());
        let store = self.store.compact();
        let report = CompactionReport {
            epoch: self.store.epoch(),
            index,
            store,
        };
        if let Some(m) = m {
            sw.total(m.compact);
            m.compactions.incr();
            m.reclaimed_bytes.add(report.bytes_reclaimed() as u64);
        }
        report
    }

    /// Runs [`StreamPipeline::compact`] when the dead-posting fraction
    /// has crossed the configured watermark.
    fn maybe_autocompact(&mut self) -> Option<CompactionReport> {
        let watermark = self.opts.compact_watermark?;
        let (postings, dead) = self.index.posting_counts();
        if dead > 0 && dead as f64 >= watermark * postings.max(1) as f64 {
            Some(self.compact())
        } else {
            None
        }
    }

    /// Re-runs the bootstrap fit over the store's **live** records and
    /// swaps the frozen scorer for the freshly fitted model — the
    /// online half of the snapshot lifecycle.
    ///
    /// Exactly the [`StreamPipeline::bootstrap`] recipe (blocking →
    /// features → normalization → EM with the transitivity calibrator),
    /// but nothing else moves: the store, blocking index, cluster
    /// assignments and decision log are untouched. Historical match
    /// decisions stay exactly as the model that made them decided —
    /// only records ingested *after* the swap are scored by the new
    /// model. [`StreamPipeline::snapshot`] afterwards persists the new
    /// model together with the original bootstrap provenance, so
    /// `seed_base` still replays the historical decisions verbatim.
    ///
    /// The refit is deterministic (EM from a fixed initialization over
    /// a deterministic candidate set), so two pipelines with the same
    /// live records refit to bit-identical models. On success the model
    /// generation advances and the drift monitor re-baselines on the
    /// new snapshot with an empty window.
    ///
    /// # Errors
    /// Fails — leaving the current model untouched — when the live
    /// records yield no candidate pairs, when the refit EM produces
    /// non-finite parameters (degenerate window), or when the live
    /// data's inferred attribute types no longer match the frozen
    /// feature layout.
    pub fn refit(&mut self) -> Result<RefreshReport, StreamError> {
        let m = self.meters;
        let sw = Stopwatch::new(m.is_some());
        let divergence = self.drift.divergence();

        // Snapshot the live records into a fit table. Clones are
        // unavoidable here: the fit pipeline re-derives from raw values
        // with its own interner, by design (the refit must see the data
        // exactly as a cold bootstrap would).
        let table = self.store.table();
        let mut live = Table::new(table.name().to_string(), table.schema().clone());
        for (i, r) in table.records().iter().enumerate() {
            if !self.store.is_retracted(i) {
                live.push(r.clone());
            }
        }

        let index_cfg = self.opts.index_config();
        let fz = PairFeaturizer::with_config(&live, &live, index_cfg.derive_config());
        if fz.attr_types() != self.featurizer.attr_types() {
            return Err(StreamError(
                "refit inferred different attribute types than the frozen feature layout; \
                 the live data has drifted structurally, not just statistically — refusing \
                 to swap a model with a different feature space"
                    .into(),
            ));
        }
        let cs = standard_candidates_derived(
            fz.left_derived(),
            None,
            PairMode::Dedup,
            self.opts.min_token_overlap,
            self.opts.max_bucket,
        );
        if cs.is_empty() {
            return Err(StreamError(
                "refit produced no candidate pairs; nothing to fit a model on".into(),
            ));
        }
        let mut fs = fz.featurize(cs.pairs());
        fs.normalize();
        let mut model = GenerativeModel::new(self.opts.config.clone(), fs.layout.clone());
        let calibrator = TransitivityCalibrator::new(cs.pairs());
        let summary = model.fit(&fs.matrix, Some(&calibrator));
        let ranges = fs.ranges.as_ref().expect("normalize() was called").clone();
        let snapshot = ModelSnapshot::capture_checked(&model, &ranges, &fs.impute_means, &fs.names)
            .ok_or_else(|| {
                StreamError(
                    "refit converged to non-finite model parameters (degenerate live window); \
                     keeping the current snapshot"
                        .into(),
                )
            })?;
        debug_assert_eq!(snapshot.dim(), self.scorer.snapshot().dim());

        // The swap: from here on every scoring call sees the new model.
        self.scorer = snapshot.scorer()?;
        self.generation += 1;
        self.drift.rebase(self.scorer.snapshot());
        if let Some(m) = m {
            sw.total(m.refresh);
            m.refreshes.incr();
        }
        Ok(RefreshReport {
            records: live.len(),
            pairs: cs.pairs().len(),
            em_iterations: summary.iterations,
            divergence,
            auto: false,
            generation: self.generation,
        })
    }

    /// Runs [`StreamPipeline::refit`] when the drift divergence has
    /// crossed the configured watermark (with at least
    /// [`StreamOptions::refresh_min_records`] in the window). Called
    /// only at ingest-call boundaries. A failed auto-refit clears the
    /// drift window instead of propagating — otherwise a degenerate
    /// window would re-attempt the fit after every subsequent call.
    fn maybe_autorefresh(&mut self) -> Option<RefreshReport> {
        let watermark = self.opts.refresh_watermark?;
        if self.drift.window_records() < self.opts.refresh_min_records as u64 {
            return None;
        }
        if self.drift.divergence() < watermark {
            return None;
        }
        match self.refit() {
            Ok(mut report) => {
                report.auto = true;
                Some(report)
            }
            Err(_) => {
                self.drift.clear_window();
                None
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zeroer_tabular::csv::read_table;

    fn base_table() -> Table {
        read_table(
            "base",
            "name,city\n\
             Golden Dragon Palace,new york\n\
             Golden Dragon Palce,new york\n\
             Blue Sky Tavern,austin\n\
             Rustic Oak Kitchen,denver\n\
             Harbor View Bistro,portland\n\
             Smoky Cellar Tavern,chicago\n",
        )
        .unwrap()
    }

    fn rec(id: u32, name: &str, city: &str) -> Record {
        Record::new(id, vec![name.into(), city.into()])
    }

    #[test]
    fn bootstrap_then_ingest_assigns_duplicates() {
        let (mut p, report) =
            StreamPipeline::bootstrap(&base_table(), StreamOptions::default()).expect("bootstrap");
        assert!(report.em_iterations >= 1);
        assert_eq!(p.len(), 6);
        // The two Golden Dragon rows are a bootstrap-time cluster.
        assert!(p.store().same_entity(0, 1), "clusters: {:?}", p.clusters());

        let out = p.ingest(rec(100, "Golden Dragon Palace", "new york"));
        assert!(!out.is_new_entity(), "exact duplicate must match");
        assert_eq!(
            p.store().find_readonly(out.index),
            p.store().find_readonly(0)
        );

        let fresh = p.ingest(rec(101, "Totally Unseen Steakhouse", "miami"));
        assert!(fresh.is_new_entity());
        assert_eq!(fresh.cluster, fresh.index);
    }

    #[test]
    fn ingest_matches_within_a_batch() {
        let (mut p, _) =
            StreamPipeline::bootstrap(&base_table(), StreamOptions::default()).unwrap();
        let outs = p.ingest_batch(vec![
            rec(200, "Crimson Lotus Noodle Bar", "seattle"),
            rec(201, "Crimson Lotus Noodle Bar", "seattle"),
        ]);
        assert!(outs[0].is_new_entity());
        assert!(
            !outs[1].is_new_entity(),
            "second copy must match the first copy ingested in the same batch"
        );
        assert!(p.store().same_entity(outs[0].index, outs[1].index));
    }

    #[test]
    fn snapshot_round_trip_preserves_scoring() {
        let (mut live, _) =
            StreamPipeline::bootstrap(&base_table(), StreamOptions::default()).unwrap();
        let snap = live.snapshot();
        let reloaded = PipelineSnapshot::from_json(&snap.to_json()).unwrap();
        let mut cold = StreamPipeline::from_snapshot(&reloaded, 0.5).unwrap();

        // Replay the same records through both pipelines; decisions and
        // posteriors must agree exactly.
        for r in base_table().records() {
            cold.ingest(r.clone());
        }
        let probe = rec(300, "Golden Dragon Palace", "new york");
        let a = live.ingest(probe.clone());
        let b = cold.ingest(probe);
        assert_eq!(a.matches.len(), b.matches.len());
        for ((ca, pa), (cb, pb)) in a.matches.iter().zip(&b.matches) {
            assert_eq!(ca, cb);
            assert!((pa - pb).abs() < 1e-12, "posterior drift: {pa} vs {pb}");
        }
    }

    #[test]
    fn empty_bootstrap_is_an_error() {
        // No shared tokens and no shared padded 4-grams (distinct first
        // and last characters, no common interior runs).
        let t = read_table("t", "name\nnorth\nquail\n").unwrap();
        assert!(StreamPipeline::bootstrap(&t, StreamOptions::default()).is_err());
    }

    #[test]
    fn retract_undoes_a_match_and_hides_the_record_from_candidates() {
        let (mut p, _) =
            StreamPipeline::bootstrap(&base_table(), StreamOptions::default()).unwrap();
        let out = p.ingest(rec(100, "Golden Dragon Palace", "new york"));
        assert!(!out.is_new_entity());
        let epoch0 = p.epoch();

        let report = p.retract(out.index).expect("live record retracts");
        assert!(report.component_size >= 2, "it sat in the Dragon cluster");
        assert!(report.postings_tombstoned > 0);
        assert!(p.epoch() > epoch0);
        assert!(p.store().is_retracted(out.index));
        // The bootstrap-time Golden Dragon pair survives the rebuild.
        assert!(p.store().same_entity(0, 1));

        // A fresh ingest never sees the retracted record as a candidate
        // or match, but still matches the live duplicates.
        let again = p.ingest(rec(101, "Golden Dragon Palace", "new york"));
        assert!(!again.is_new_entity());
        assert!(
            again.matches.iter().all(|&(c, _)| c != out.index),
            "retracted record must not match: {:?}",
            again.matches
        );
    }

    #[test]
    fn retract_errors_are_clean_and_stateless() {
        let (mut p, _) =
            StreamPipeline::bootstrap(&base_table(), StreamOptions::default()).unwrap();
        let epoch0 = p.epoch();
        assert!(p.retract(999).is_err(), "unknown index");
        p.retract(2).unwrap();
        let err = p.retract(2).expect_err("double retraction");
        assert!(err.to_string().contains("already retracted"), "{err}");
        assert_eq!(p.epoch(), epoch0 + 1, "failed calls must not advance");

        // Batch validation is all-or-nothing.
        let err = p.retract_batch(&[3, 3]).expect_err("duplicate id");
        assert!(err.to_string().contains("twice"), "{err}");
        assert!(!p.store().is_retracted(3), "no partial application");
    }

    #[test]
    fn update_replaces_a_record_under_a_fresh_index() {
        let (mut p, _) =
            StreamPipeline::bootstrap(&base_table(), StreamOptions::default()).unwrap();
        let len0 = p.len();
        let out = p
            .update(2, rec(200, "Blue Sky Tavern and Grill", "austin"))
            .expect("update");
        assert_eq!(out.index, len0, "the new version gets a fresh slot");
        assert!(p.store().is_retracted(2));
        assert_eq!(p.store().live_len(), len0, "one out, one in");

        // A replacement that cannot be ingested must not destroy the
        // old version: update is atomic, not retract-then-maybe-ingest.
        let err = p
            .update(3, Record::new(201, vec!["only one value".into()]))
            .expect_err("arity mismatch");
        assert!(err.to_string().contains("arity"), "{err}");
        assert!(!p.store().is_retracted(3), "record 3 must survive");
    }

    #[test]
    fn compact_reclaims_dead_postings_and_reports_bytes() {
        let opts = StreamOptions {
            compact_watermark: None, // manual compaction only
            ..Default::default()
        };
        let (mut p, _) = StreamPipeline::bootstrap(&base_table(), opts).unwrap();
        // Retract 2 of 6 records (≥ 30 % of the store).
        p.retract(2).unwrap();
        p.retract(3).unwrap();
        let before = p.stats();
        assert!(before.index.dead_postings() > 0);
        let clusters_before = p.clusters();

        let report = p.compact();
        assert!(report.index.postings_dropped > 0);
        assert!(report.bytes_reclaimed() > 0);
        assert!(report.store.derived_bytes_freed > 0);
        let after = p.stats();
        assert_eq!(after.index.dead_postings(), 0);
        assert_eq!(after.index.retired_buckets(), 0);
        assert_eq!(after.epoch, report.epoch);
        assert_eq!(
            p.clusters(),
            clusters_before,
            "compaction never changes cluster semantics"
        );

        // Ingest still works against the compacted index.
        let out = p.ingest(rec(300, "Golden Dragon Palace", "new york"));
        assert!(!out.is_new_entity());
    }

    #[test]
    fn watermark_triggers_automatic_compaction() {
        let opts = StreamOptions {
            compact_watermark: Some(0.1), // compact eagerly
            ..Default::default()
        };
        let (mut p, _) = StreamPipeline::bootstrap(&base_table(), opts).unwrap();
        let report = p.retract(4).expect("retract");
        let auto = report
            .auto_compaction
            .expect("a 10% watermark must fire on the first retraction");
        assert!(auto.index.postings_dropped > 0);
        assert_eq!(p.stats().index.dead_postings(), 0);
    }

    #[test]
    fn snapshot_round_trips_tombstones_and_epoch() {
        let (mut live, _) =
            StreamPipeline::bootstrap(&base_table(), StreamOptions::default()).unwrap();
        live.retract(1).unwrap();
        live.retract(4).unwrap();
        let snap = live.snapshot();
        assert_eq!(snap.tombstones, vec![1, 4]);
        assert_eq!(snap.epoch, live.epoch());

        let reloaded = PipelineSnapshot::from_json(&snap.to_json()).expect("round-trips");
        let mut cold = StreamPipeline::from_snapshot(&reloaded, 0.5).unwrap();
        // Retraction before seeding is refused: the persisted indices
        // refer to bootstrap records that are not loaded yet.
        assert!(cold.retract(0).is_err());
        cold.seed_base(&base_table()).expect("seed with tombstones");
        assert_eq!(cold.epoch(), live.epoch());
        assert!(cold.store().is_retracted(1));
        assert!(cold.store().is_retracted(4));
        assert_eq!(cold.clusters(), live.clusters());

        // Future behavior is identical too.
        let a = live.ingest(rec(400, "Golden Dragon Palace", "new york"));
        let b = cold.ingest(rec(400, "Golden Dragon Palace", "new york"));
        assert_eq!(a.candidates, b.candidates);
        assert_eq!(a.matches, b.matches);
    }

    #[test]
    fn stats_report_interner_and_blocking_counters() {
        let (mut p, report) =
            StreamPipeline::bootstrap(&base_table(), StreamOptions::default()).unwrap();
        let s0 = p.stats();
        assert!(s0.interned_tokens > 0);
        assert!(s0.interned_bytes > 0);
        assert_eq!(s0.candidate_pairs, report.pairs.len());
        assert!(s0.index.token.live > 0);

        p.ingest(rec(400, "Golden Dragon Palace", "new york"));
        let s1 = p.stats();
        assert!(
            s1.candidate_pairs > s0.candidate_pairs,
            "ingest candidates are counted"
        );
    }
}
