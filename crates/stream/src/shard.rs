//! Key-space-sharded incremental blocking.
//!
//! [`ShardedIndex`] splits the blocking key-space — *not* the record
//! space — across `S` independent shards by a stable FNV-1a hash of the
//! key **text** (never the symbol id: symbol numbering depends on intern
//! order, text does not, so placement is identical across processes,
//! thread counts, and interner histories). Every shard holds the full
//! inverted-index machinery (`crate::index::Leg`) for the keys it
//! owns, so a bucket's lifetime (membership order, frequency-cap
//! retirement) is byte-identical to the unsharded
//! [`crate::IncrementalIndex`]: a key's bucket sees exactly the same
//! insert sequence no matter which shard owns it or how many shards
//! exist.
//!
//! ## Why this is exactly equivalent to the unsharded index
//!
//! Candidate generation is a union over per-key lookups, and token
//! overlap counting is additive over disjoint key sets: each key lives in
//! exactly one shard, so summing per-shard counts per member reproduces
//! the unsharded count, and the final sort+dedup merge
//! (`crate::index::merge_candidates`) is shared verbatim. The property
//! test in `tests/sharded.rs` asserts set equality against
//! [`crate::IncrementalIndex`] for arbitrary record streams and shard
//! counts.
//!
//! ## Parallel batch ingest
//!
//! [`ShardedIndex::insert_batch`] processes a whole batch with a worker
//! pool: keys are routed to their shards up front (by the hash memoized
//! in [`RecordKeys`]), each worker walks its shards' records *in batch
//! order* (preserving per-bucket insertion order), and the per-shard
//! partial results are then merged per record. Because shards share no
//! keys, no locks are needed — each worker mutates only its own shards.

use crate::index::{merge_candidates, CompactionDelta, IndexConfig, IndexStats, Leg};
use std::collections::HashMap;
use zeroer_textsim::derive::DerivedRecord;
use zeroer_textsim::intern::{fnv1a, Interner, Sym};

/// Default shard count for pipelines that do not choose one. Sixteen
/// shards keep per-shard skew low at every realistic `--threads` setting
/// while costing only a few empty hash maps when running sequentially.
/// The shard count never affects results (see the module docs), only
/// load balance.
pub const DEFAULT_SHARDS: usize = 16;

/// Stable 64-bit FNV-1a hash of a blocking key's text. Deliberately
/// *not* `DefaultHasher`: shard routing must be identical across
/// processes, platforms, and std versions so that index state rebuilt
/// elsewhere shards the same way.
#[inline]
pub fn stable_key_hash(key: &str) -> u64 {
    fnv1a(key)
}

/// Blocking keys of one record as `(symbol, text-hash)` pairs — the
/// symbol keys the index buckets use plus the stable text hash shard
/// routing uses, both pre-extracted so the expensive derivation happens
/// once no matter how many shards later consume them.
#[derive(Debug, Clone, Default)]
pub struct RecordKeys {
    token: Vec<(Sym, u64)>,
    qgram: Vec<(Sym, u64)>,
}

impl RecordKeys {
    /// Pairs a derived record's blocking keys with their memoized text
    /// hashes (empty when the key attribute was null — null rows never
    /// block). The record must have been derived against `interner`
    /// (committed, for scratch-derived records).
    pub fn from_derived(record: &DerivedRecord, interner: &Interner) -> Self {
        let keys = record.keys();
        Self {
            token: keys
                .tokens
                .iter()
                .map(|&s| (s, interner.text_hash(s)))
                .collect(),
            qgram: keys
                .qgrams
                .iter()
                .map(|&s| (s, interner.text_hash(s)))
                .collect(),
        }
    }

    /// The token-leg key symbols.
    pub fn token_syms(&self) -> impl Iterator<Item = Sym> + '_ {
        self.token.iter().map(|&(s, _)| s)
    }

    /// The q-gram-leg key symbols.
    pub fn qgram_syms(&self) -> impl Iterator<Item = Sym> + '_ {
        self.qgram.iter().map(|&(s, _)| s)
    }
}

/// One shard: the token and (optional) q-gram legs for the keys it owns.
#[derive(Debug, Clone)]
struct IndexShard {
    token_leg: Leg,
    qgram_leg: Option<Leg>,
}

/// Per-shard lookup partials produced by the batch phase for one record:
/// shared-token counts and q-gram co-members among the shard's keys.
type ShardPartial = (HashMap<usize, usize>, HashMap<usize, usize>);

/// One record's `(token, qgram)` key symbols routed to a single shard.
type ShardJob = (Vec<Sym>, Vec<Sym>);

/// An [`crate::IncrementalIndex`] with its key-space split across
/// independent shards, enabling lock-free parallel candidate generation
/// while producing exactly the unsharded candidate sets.
#[derive(Debug, Clone)]
pub struct ShardedIndex {
    cfg: IndexConfig,
    shards: Vec<IndexShard>,
    len: usize,
}

impl ShardedIndex {
    /// An empty index with [`DEFAULT_SHARDS`] shards.
    ///
    /// # Panics
    /// Panics if `min_token_overlap` is 0.
    pub fn new(cfg: IndexConfig) -> Self {
        Self::with_shards(cfg, DEFAULT_SHARDS)
    }

    /// An empty index with an explicit shard count. The shard count
    /// affects load balance only, never results.
    ///
    /// # Panics
    /// Panics if `num_shards` is 0 or `min_token_overlap` is 0.
    pub fn with_shards(cfg: IndexConfig, num_shards: usize) -> Self {
        assert!(num_shards >= 1, "at least one shard required");
        assert!(cfg.min_token_overlap >= 1, "overlap must be at least 1");
        let has_qgram = cfg.has_qgram_leg();
        let shards = (0..num_shards)
            .map(|_| IndexShard {
                token_leg: Leg::new(cfg.max_bucket),
                qgram_leg: if has_qgram {
                    Some(Leg::new(cfg.max_bucket))
                } else {
                    None
                },
            })
            .collect();
        Self {
            cfg,
            shards,
            len: 0,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &IndexConfig {
        &self.cfg
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Number of inserted records.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether nothing has been inserted.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// `(postings, dead_postings)` across all shards and legs — cheap
    /// per-shard counters, no bucket scan; what the pipeline's
    /// auto-compaction watermark polls after every retraction.
    pub fn posting_counts(&self) -> (usize, usize) {
        let mut postings = 0;
        let mut dead = 0;
        for shard in &self.shards {
            let (p, d) = shard.token_leg.posting_counts();
            postings += p;
            dead += d;
            if let Some(qleg) = &shard.qgram_leg {
                let (p, d) = qleg.posting_counts();
                postings += p;
                dead += d;
            }
        }
        (postings, dead)
    }

    /// Live/retired bucket counts per leg, aggregated across shards.
    pub fn stats(&self) -> IndexStats {
        let mut stats = IndexStats::default();
        for shard in &self.shards {
            shard.token_leg.accumulate_stats(&mut stats.token);
            if let Some(qleg) = &shard.qgram_leg {
                qleg.accumulate_stats(&mut stats.qgram);
            }
        }
        stats
    }

    #[inline]
    fn shard_of(&self, text_hash: u64) -> usize {
        (text_hash % self.shards.len() as u64) as usize
    }

    /// Inserts the next record's keys (records must be inserted in store
    /// order) and returns the sorted indices of previously inserted
    /// records sharing a blocking key — the same contract as
    /// [`crate::IncrementalIndex::insert_keys`].
    pub fn insert_keys(&mut self, keys: RecordKeys) -> Vec<usize> {
        self.insert_keys_live(keys, &[])
    }

    /// [`ShardedIndex::insert_keys`] with a tombstone filter: retracted
    /// records are skipped as candidates and excluded from the frequency
    /// cap. An empty slice means "no retractions".
    pub fn insert_keys_live(&mut self, keys: RecordKeys, tombstones: &[bool]) -> Vec<usize> {
        let idx = self.len;
        self.len += 1;
        let mut token_counts: HashMap<usize, usize> = HashMap::new();
        let mut qgram_counts: HashMap<usize, usize> = HashMap::new();
        for (key, h) in keys.token {
            let s = self.shard_of(h);
            self.shards[s]
                .token_leg
                .insert_key(idx, key, &mut token_counts, tombstones);
        }
        for (key, h) in keys.qgram {
            let s = self.shard_of(h);
            if let Some(qleg) = &mut self.shards[s].qgram_leg {
                qleg.insert_key(idx, key, &mut qgram_counts, tombstones);
            }
        }
        merge_candidates(
            token_counts,
            qgram_counts.into_keys(),
            self.cfg.min_token_overlap,
        )
    }

    /// Read-only candidate lookup: the sorted indices of inserted records
    /// sharing a blocking key with `keys`, **without** inserting anything
    /// — the candidate rule (token-overlap threshold, q-gram union,
    /// tombstone filter) is exactly [`ShardedIndex::insert_keys_live`]'s.
    ///
    /// This is how streaming record linkage blocks across tables: an
    /// incoming right-side record probes the *left* side's index for
    /// candidates (and is then inserted into the right side's index via
    /// [`ShardedIndex::insert_keys_at`], never into this one). Because
    /// probing takes `&self`, a whole batch can probe one frozen index
    /// from many workers with no synchronization.
    pub fn probe_live(&self, keys: &RecordKeys, tombstones: &[bool]) -> Vec<usize> {
        let mut token_counts: HashMap<usize, usize> = HashMap::new();
        for &(key, h) in &keys.token {
            let s = self.shard_of(h);
            self.shards[s]
                .token_leg
                .lookup_key(key, &mut token_counts, tombstones);
        }
        let mut qgram_counts: HashMap<usize, usize> = HashMap::new();
        for &(key, h) in &keys.qgram {
            let s = self.shard_of(h);
            if let Some(qleg) = &self.shards[s].qgram_leg {
                qleg.lookup_key(key, &mut qgram_counts, tombstones);
            }
        }
        merge_candidates(
            token_counts,
            qgram_counts.into_keys(),
            self.cfg.min_token_overlap,
        )
    }

    /// Inserts a record's postings under an explicit record index,
    /// without candidate generation — the linkage path's write half,
    /// where the caller's record numbering (a store shared by both
    /// sides) is not this index's insertion count. Buckets still apply
    /// the live-member frequency cap at the same crossing points.
    ///
    /// Unlike [`ShardedIndex::insert_keys`], `idx` values need not be
    /// dense or contiguous here — each side's index holds only its own
    /// side's records out of the shared numbering.
    pub fn insert_keys_at(&mut self, idx: usize, keys: &RecordKeys) {
        for &(key, h) in &keys.token {
            let s = self.shard_of(h);
            self.shards[s].token_leg.insert_key_silent(idx, key);
        }
        for &(key, h) in &keys.qgram {
            let s = self.shard_of(h);
            if let Some(qleg) = &mut self.shards[s].qgram_leg {
                qleg.insert_key_silent(idx, key);
            }
        }
        self.len += 1;
    }

    /// Marks record `idx`'s postings dead under its blocking keys,
    /// routing each key to its owning shard; postings stay in place until
    /// [`ShardedIndex::compact`]. Returns the number of postings
    /// tombstoned.
    pub fn retract_keys(&mut self, idx: usize, keys: &RecordKeys) -> usize {
        let mut marked = 0;
        for &(key, h) in &keys.token {
            let s = self.shard_of(h);
            marked += usize::from(self.shards[s].token_leg.retract_key(idx, key));
        }
        for &(key, h) in &keys.qgram {
            let s = self.shard_of(h);
            if let Some(qleg) = &mut self.shards[s].qgram_leg {
                marked += usize::from(qleg.retract_key(idx, key));
            }
        }
        marked
    }

    /// Compacts every shard: drops tombstoned postings, frees emptied
    /// buckets and cap-retired markers, and reports the aggregate
    /// reclaim. `tombstones` must be the set the retractions were
    /// recorded against.
    pub fn compact(&mut self, tombstones: &[bool]) -> CompactionDelta {
        let mut delta = CompactionDelta::default();
        for shard in &mut self.shards {
            delta.absorb(shard.token_leg.compact(tombstones));
            if let Some(qleg) = &mut shard.qgram_leg {
                delta.absorb(qleg.compact(tombstones));
            }
        }
        delta
    }

    /// Inserts a whole batch across a pool of `threads` workers and
    /// returns each record's candidate list — element `i` is exactly what
    /// [`ShardedIndex::insert_keys`] would have returned for record `i`
    /// inserted sequentially (candidates may point at earlier records of
    /// the same batch).
    pub fn insert_batch(&mut self, keys: Vec<RecordKeys>, threads: usize) -> Vec<Vec<usize>> {
        self.insert_batch_live(keys, threads, &[])
    }

    /// [`ShardedIndex::insert_batch`] with a tombstone filter, applied
    /// identically by every worker — the tombstone set is frozen for the
    /// whole batch (retraction needs `&mut self`), so candidate lists are
    /// bit-identical at any thread count.
    pub fn insert_batch_live(
        &mut self,
        keys: Vec<RecordKeys>,
        threads: usize,
        tombstones: &[bool],
    ) -> Vec<Vec<usize>> {
        let threads = threads.max(1);
        if threads == 1 || keys.len() < 2 {
            return keys
                .into_iter()
                .map(|k| self.insert_keys_live(k, tombstones))
                .collect();
        }
        let n = keys.len();
        let base = self.len;
        let ns = self.shards.len();

        // Route every key symbol to its owning shard. Per shard, a
        // *sparse* record-ordered job list — a record appears only in
        // shards that own at least one of its keys, so memory stays
        // proportional to the key count, not to shards × batch size.
        // Record order is preserved because keys are drained record by
        // record.
        let mut jobs: Vec<Vec<(usize, ShardJob)>> = (0..ns).map(|_| Vec::new()).collect();
        for (i, rk) in keys.into_iter().enumerate() {
            for (key, h) in rk.token {
                let shard_jobs = &mut jobs[(h % ns as u64) as usize];
                match shard_jobs.last_mut() {
                    Some((rec, job)) if *rec == i => job.0.push(key),
                    _ => shard_jobs.push((i, (vec![key], Vec::new()))),
                }
            }
            for (key, h) in rk.qgram {
                let shard_jobs = &mut jobs[(h % ns as u64) as usize];
                match shard_jobs.last_mut() {
                    Some((rec, job)) if *rec == i => job.1.push(key),
                    _ => shard_jobs.push((i, (Vec::new(), vec![key]))),
                }
            }
        }

        // Each worker owns a contiguous run of shards and walks the batch
        // in record order, so every bucket sees inserts in exactly the
        // sequential order. partials[s] = shard s's sparse, record-
        // ordered lookup results.
        let per = ns.div_ceil(threads);
        let mut job_chunks: Vec<Vec<Vec<(usize, ShardJob)>>> = Vec::new();
        {
            let mut it = jobs.into_iter();
            loop {
                let chunk: Vec<_> = it.by_ref().take(per).collect();
                if chunk.is_empty() {
                    break;
                }
                job_chunks.push(chunk);
            }
        }
        let mut partials: Vec<Vec<(usize, ShardPartial)>> = crossbeam::thread::scope(|scope| {
            let handles: Vec<_> = self
                .shards
                .chunks_mut(per)
                .zip(job_chunks)
                .map(|(shard_chunk, chunk_jobs)| {
                    scope.spawn(move |_| {
                        let mut chunk_partials: Vec<Vec<(usize, ShardPartial)>> = Vec::new();
                        for (shard, shard_jobs) in shard_chunk.iter_mut().zip(chunk_jobs) {
                            let mut out: Vec<(usize, ShardPartial)> =
                                Vec::with_capacity(shard_jobs.len());
                            for (i, (token, qgram)) in shard_jobs {
                                let idx = base + i;
                                let mut tc = HashMap::new();
                                shard
                                    .token_leg
                                    .lookup_and_insert(idx, token, &mut tc, tombstones);
                                let mut qc = HashMap::new();
                                if let Some(qleg) = &mut shard.qgram_leg {
                                    qleg.lookup_and_insert(idx, qgram, &mut qc, tombstones);
                                }
                                out.push((i, (tc, qc)));
                            }
                            chunk_partials.push(out);
                        }
                        chunk_partials
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("shard worker panicked"))
                .collect()
        })
        .expect("shard scope panicked");

        // Merge with one cursor per shard (each partial list is sorted
        // by record): token counts are additive across shards (each key
        // lives in exactly one), q-gram membership is a union; the
        // shared merge_candidates rule finishes the job.
        self.len += n;
        let mut results = Vec::with_capacity(n);
        let mut cursors = vec![0usize; partials.len()];
        for i in 0..n {
            let mut token_counts: HashMap<usize, usize> = HashMap::new();
            let mut qgram: Vec<usize> = Vec::new();
            for (shard_partials, cursor) in partials.iter_mut().zip(&mut cursors) {
                if *cursor >= shard_partials.len() || shard_partials[*cursor].0 != i {
                    continue;
                }
                let (_, (tc, qc)) = std::mem::take(&mut shard_partials[*cursor]);
                *cursor += 1;
                if token_counts.is_empty() {
                    token_counts = tc;
                } else {
                    for (m, c) in tc {
                        *token_counts.entry(m).or_insert(0) += c;
                    }
                }
                qgram.extend(qc.into_keys());
            }
            results.push(merge_candidates(
                token_counts,
                qgram,
                self.cfg.min_token_overlap,
            ));
        }
        results
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::IncrementalIndex;
    use zeroer_tabular::{Record, Value};
    use zeroer_textsim::derive::Deriver;

    fn rec(i: u32, name: &str) -> Record {
        Record::new(i, vec![Value::Str(name.into())])
    }

    fn keys_of(deriver: &mut Deriver, r: &Record) -> RecordKeys {
        let d = deriver.derive(&r.values);
        RecordKeys::from_derived(&d, deriver.interner())
    }

    const NAMES: &[&str] = &[
        "red apple pie",
        "green apple tart",
        "blue sky photograph",
        "fotograph of the sky",
        "red apple pie",
        "completely unrelated",
    ];

    #[test]
    fn matches_unsharded_record_by_record() {
        for shards in [1, 2, 3, 7, 16] {
            let cfg = IndexConfig::default();
            let mut deriver = Deriver::new(cfg.derive_config());
            let mut sharded = ShardedIndex::with_shards(cfg.clone(), shards);
            let mut flat = IncrementalIndex::new(cfg);
            for (i, name) in NAMES.iter().enumerate() {
                let keys = keys_of(&mut deriver, &rec(i as u32, name));
                assert_eq!(
                    sharded.insert_keys(keys.clone()),
                    flat.insert_keys(&keys),
                    "shards={shards} record={i}"
                );
            }
        }
    }

    #[test]
    fn batch_matches_sequential_inserts() {
        for threads in [1, 2, 4] {
            let cfg = IndexConfig::default();
            let mut deriver = Deriver::new(cfg.derive_config());
            let all_keys: Vec<RecordKeys> = NAMES
                .iter()
                .enumerate()
                .map(|(i, n)| keys_of(&mut deriver, &rec(i as u32, n)))
                .collect();

            let mut seq = ShardedIndex::with_shards(cfg.clone(), 4);
            let expected: Vec<Vec<usize>> = all_keys
                .iter()
                .map(|k| seq.insert_keys(k.clone()))
                .collect();

            let mut batch = ShardedIndex::with_shards(cfg.clone(), 4);
            let got = batch.insert_batch(all_keys, threads);
            assert_eq!(got, expected, "threads={threads}");
            assert_eq!(batch.len(), seq.len());
        }
    }

    #[test]
    fn batch_continues_an_existing_index() {
        let cfg = IndexConfig::default();
        let mut deriver = Deriver::new(cfg.derive_config());
        let all_keys: Vec<RecordKeys> = NAMES
            .iter()
            .enumerate()
            .map(|(i, n)| keys_of(&mut deriver, &rec(i as u32, n)))
            .collect();
        let mut seq = ShardedIndex::with_shards(cfg.clone(), 4);
        let mut batch = ShardedIndex::with_shards(cfg.clone(), 4);
        for k in all_keys.iter().take(3) {
            seq.insert_keys(k.clone());
            batch.insert_keys(k.clone());
        }
        let tail: Vec<Vec<usize>> = all_keys
            .iter()
            .skip(3)
            .map(|k| seq.insert_keys(k.clone()))
            .collect();
        assert_eq!(
            batch.insert_batch(all_keys[3..].to_vec(), 2),
            tail,
            "batch continuation must match sequential"
        );
    }

    #[test]
    fn overlap_counts_survive_sharding() {
        // min_token_overlap = 2 with the two shared tokens hashed into
        // (potentially) different shards: counts must sum across shards.
        let cfg = IndexConfig {
            min_token_overlap: 2,
            ..Default::default()
        };
        for shards in [1, 2, 8] {
            let mut deriver = Deriver::new(cfg.derive_config());
            let mut idx = ShardedIndex::with_shards(cfg.clone(), shards);
            idx.insert_keys(keys_of(&mut deriver, &rec(0, "efficient query processing")));
            let got = idx.insert_keys(keys_of(
                &mut deriver,
                &rec(1, "efficient query optimization"),
            ));
            assert_eq!(got, vec![0], "shards={shards}");
            let none = idx.insert_keys(keys_of(&mut deriver, &rec(2, "parallel engines")));
            assert!(none.is_empty(), "shards={shards}");
        }
    }

    #[test]
    fn retraction_and_compaction_match_the_unsharded_index() {
        for shards in [1, 3, 16] {
            let cfg = IndexConfig::default();
            let mut deriver = Deriver::new(cfg.derive_config());
            let mut sharded = ShardedIndex::with_shards(cfg.clone(), shards);
            let mut flat = IncrementalIndex::new(cfg);
            let all_keys: Vec<RecordKeys> = NAMES
                .iter()
                .enumerate()
                .map(|(i, n)| keys_of(&mut deriver, &rec(i as u32, n)))
                .collect();
            let mut tombstones = vec![false; NAMES.len() + 1];
            for k in &all_keys {
                sharded.insert_keys_live(k.clone(), &tombstones);
                flat.insert_keys_live(k, &tombstones);
            }
            // Retract record 0 ("red apple pie") in both.
            tombstones[0] = true;
            assert_eq!(
                sharded.retract_keys(0, &all_keys[0]),
                flat.retract_keys(0, &all_keys[0]),
                "shards={shards}"
            );
            // An exact copy of record 0 must now only see record 1
            // (shared 'apple') and record 4 (the other copy).
            let probe = keys_of(&mut deriver, &rec(9, "red apple pie"));
            assert_eq!(
                sharded.insert_keys_live(probe.clone(), &tombstones),
                flat.insert_keys_live(&probe, &tombstones),
                "shards={shards}"
            );
            // Compaction reclaims the same postings either way.
            let s = sharded.compact(&tombstones);
            let f = flat.compact(&tombstones);
            assert_eq!(s.postings_dropped, f.postings_dropped, "shards={shards}");
            assert_eq!(s.buckets_freed, f.buckets_freed, "shards={shards}");
            assert_eq!(
                sharded.stats().dead_postings(),
                0,
                "shards={shards}: compaction clears every dead posting"
            );
        }
    }

    #[test]
    fn stable_hash_is_stable() {
        // Pinned values: shard routing must never change across builds,
        // or persisted pipelines would re-shard on upgrade.
        assert_eq!(stable_key_hash(""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(stable_key_hash("a"), 0xaf63_dc4c_8601_ec8c);
    }
}
