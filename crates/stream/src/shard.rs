//! Key-space-sharded incremental blocking.
//!
//! [`ShardedIndex`] splits the blocking key-space — *not* the record
//! space — across `S` independent shards by a stable FNV-1a hash of the
//! key string. Every shard holds the full inverted-index machinery
//! ([`crate::index::Leg`]) for the keys it owns, so a bucket's lifetime
//! (membership order, frequency-cap retirement) is byte-identical to the
//! unsharded [`crate::IncrementalIndex`]: a key's bucket sees exactly the
//! same insert sequence no matter which shard owns it or how many shards
//! exist.
//!
//! ## Why this is exactly equivalent to the unsharded index
//!
//! Candidate generation is a union over per-key lookups, and token
//! overlap counting is additive over disjoint key sets: each key lives in
//! exactly one shard, so summing per-shard counts per member reproduces
//! the unsharded count, and the final sort+dedup merge
//! ([`crate::index::merge_candidates`]) is shared verbatim. The property
//! test in `tests/sharded.rs` asserts set equality against
//! [`crate::IncrementalIndex`] for arbitrary record streams and shard
//! counts.
//!
//! ## Parallel batch ingest
//!
//! [`ShardedIndex::insert_batch`] processes a whole batch with a worker
//! pool: keys are routed to their shards up front, each worker walks its
//! shards' records *in batch order* (preserving per-bucket insertion
//! order), and the per-shard partial results are then merged per record.
//! Because shards share no keys, no locks are needed — each worker
//! mutates only its own shards.

use crate::index::{merge_candidates, IndexConfig, Leg};
use std::collections::HashMap;
use zeroer_blocking::keys::{qgram_keys, token_keys};
use zeroer_tabular::Record;

/// Default shard count for pipelines that do not choose one. Sixteen
/// shards keep per-shard skew low at every realistic `--threads` setting
/// while costing only a few empty hash maps when running sequentially.
/// The shard count never affects results (see the module docs), only
/// load balance.
pub const DEFAULT_SHARDS: usize = 16;

/// Stable 64-bit FNV-1a hash of a blocking key. Deliberately *not*
/// `DefaultHasher`: shard routing must be identical across processes,
/// platforms, and std versions so that index state rebuilt elsewhere
/// shards the same way.
#[inline]
pub fn stable_key_hash(key: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in key.as_bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Blocking keys of one record, pre-extracted so the expensive
/// tokenization happens once (and can happen on a worker pool) no matter
/// how many shards later consume them.
#[derive(Debug, Clone, Default)]
pub struct RecordKeys {
    token: Vec<String>,
    qgram: Vec<String>,
}

impl RecordKeys {
    /// Extracts the blocking keys `cfg` implies for `record` (empty when
    /// the key attribute is null — null rows never block).
    ///
    /// # Panics
    /// Panics if the record lacks the key attribute.
    pub fn extract(record: &Record, cfg: &IndexConfig) -> Self {
        assert!(
            cfg.attr < record.values.len(),
            "blocking attribute {} out of range for arity {}",
            cfg.attr,
            record.values.len()
        );
        match record.values[cfg.attr].as_text() {
            None => Self::default(),
            Some(text) => Self {
                token: token_keys(&text),
                qgram: if cfg.min_token_overlap <= 1 && cfg.qgram > 0 {
                    qgram_keys(&text, cfg.qgram)
                } else {
                    Vec::new()
                },
            },
        }
    }
}

/// One shard: the token and (optional) q-gram legs for the keys it owns.
#[derive(Debug, Clone)]
struct IndexShard {
    token_leg: Leg,
    qgram_leg: Option<Leg>,
}

/// Per-shard lookup partials produced by the batch phase for one record:
/// shared-token counts and q-gram co-members among the shard's keys.
type ShardPartial = (HashMap<usize, usize>, HashMap<usize, usize>);

/// One record's `(token, qgram)` keys routed to a single shard.
type ShardJob = (Vec<String>, Vec<String>);

/// An [`crate::IncrementalIndex`] with its key-space split across
/// independent shards, enabling lock-free parallel candidate generation
/// while producing exactly the unsharded candidate sets.
#[derive(Debug, Clone)]
pub struct ShardedIndex {
    cfg: IndexConfig,
    shards: Vec<IndexShard>,
    len: usize,
}

impl ShardedIndex {
    /// An empty index with [`DEFAULT_SHARDS`] shards.
    ///
    /// # Panics
    /// Panics if `min_token_overlap` is 0.
    pub fn new(cfg: IndexConfig) -> Self {
        Self::with_shards(cfg, DEFAULT_SHARDS)
    }

    /// An empty index with an explicit shard count. The shard count
    /// affects load balance only, never results.
    ///
    /// # Panics
    /// Panics if `num_shards` is 0 or `min_token_overlap` is 0.
    pub fn with_shards(cfg: IndexConfig, num_shards: usize) -> Self {
        assert!(num_shards >= 1, "at least one shard required");
        assert!(cfg.min_token_overlap >= 1, "overlap must be at least 1");
        let has_qgram = cfg.min_token_overlap <= 1 && cfg.qgram > 0;
        let shards = (0..num_shards)
            .map(|_| IndexShard {
                token_leg: Leg::new(cfg.max_bucket),
                qgram_leg: if has_qgram {
                    Some(Leg::new(cfg.max_bucket))
                } else {
                    None
                },
            })
            .collect();
        Self {
            cfg,
            shards,
            len: 0,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &IndexConfig {
        &self.cfg
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Number of inserted records.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether nothing has been inserted.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    #[inline]
    fn shard_of(&self, key: &str) -> usize {
        (stable_key_hash(key) % self.shards.len() as u64) as usize
    }

    /// Inserts the next record (records must be inserted in store order)
    /// and returns the sorted indices of previously inserted records
    /// sharing a blocking key — the same contract as
    /// [`crate::IncrementalIndex::insert`].
    ///
    /// # Panics
    /// Panics if the record lacks the key attribute.
    pub fn insert(&mut self, record: &Record) -> Vec<usize> {
        let keys = RecordKeys::extract(record, &self.cfg);
        self.insert_keys(keys)
    }

    /// [`ShardedIndex::insert`] with pre-extracted keys.
    pub fn insert_keys(&mut self, keys: RecordKeys) -> Vec<usize> {
        let idx = self.len;
        self.len += 1;
        let mut token_counts: HashMap<usize, usize> = HashMap::new();
        let mut qgram_counts: HashMap<usize, usize> = HashMap::new();
        for key in keys.token {
            let s = self.shard_of(&key);
            self.shards[s]
                .token_leg
                .insert_key(idx, key, &mut token_counts);
        }
        for key in keys.qgram {
            let s = self.shard_of(&key);
            if let Some(qleg) = &mut self.shards[s].qgram_leg {
                qleg.insert_key(idx, key, &mut qgram_counts);
            }
        }
        merge_candidates(
            token_counts,
            qgram_counts.into_keys(),
            self.cfg.min_token_overlap,
        )
    }

    /// Inserts a whole batch across a pool of `threads` workers and
    /// returns each record's candidate list — element `i` is exactly what
    /// [`ShardedIndex::insert_keys`] would have returned for record `i`
    /// inserted sequentially (candidates may point at earlier records of
    /// the same batch).
    pub fn insert_batch(&mut self, keys: Vec<RecordKeys>, threads: usize) -> Vec<Vec<usize>> {
        let threads = threads.max(1);
        if threads == 1 || keys.len() < 2 {
            return keys.into_iter().map(|k| self.insert_keys(k)).collect();
        }
        let n = keys.len();
        let base = self.len;
        let ns = self.shards.len();

        // Route every key to its owning shard (moves the strings; no
        // cloning). Per shard, a *sparse* record-ordered job list — a
        // record appears only in shards that own at least one of its
        // keys, so memory stays proportional to the key count, not to
        // shards × batch size. Record order is preserved because keys
        // are drained record by record.
        let mut jobs: Vec<Vec<(usize, ShardJob)>> = (0..ns).map(|_| Vec::new()).collect();
        for (i, rk) in keys.into_iter().enumerate() {
            for key in rk.token {
                let shard_jobs = &mut jobs[self.shard_of(&key)];
                match shard_jobs.last_mut() {
                    Some((rec, job)) if *rec == i => job.0.push(key),
                    _ => shard_jobs.push((i, (vec![key], Vec::new()))),
                }
            }
            for key in rk.qgram {
                let shard_jobs = &mut jobs[self.shard_of(&key)];
                match shard_jobs.last_mut() {
                    Some((rec, job)) if *rec == i => job.1.push(key),
                    _ => shard_jobs.push((i, (Vec::new(), vec![key]))),
                }
            }
        }

        // Each worker owns a contiguous run of shards and walks the batch
        // in record order, so every bucket sees inserts in exactly the
        // sequential order. partials[s] = shard s's sparse, record-
        // ordered lookup results.
        let per = ns.div_ceil(threads);
        let mut job_chunks: Vec<Vec<Vec<(usize, ShardJob)>>> = Vec::new();
        {
            let mut it = jobs.into_iter();
            loop {
                let chunk: Vec<_> = it.by_ref().take(per).collect();
                if chunk.is_empty() {
                    break;
                }
                job_chunks.push(chunk);
            }
        }
        let mut partials: Vec<Vec<(usize, ShardPartial)>> = crossbeam::thread::scope(|scope| {
            let handles: Vec<_> = self
                .shards
                .chunks_mut(per)
                .zip(job_chunks)
                .map(|(shard_chunk, chunk_jobs)| {
                    scope.spawn(move |_| {
                        let mut chunk_partials: Vec<Vec<(usize, ShardPartial)>> = Vec::new();
                        for (shard, shard_jobs) in shard_chunk.iter_mut().zip(chunk_jobs) {
                            let mut out: Vec<(usize, ShardPartial)> =
                                Vec::with_capacity(shard_jobs.len());
                            for (i, (token, qgram)) in shard_jobs {
                                let idx = base + i;
                                let mut tc = HashMap::new();
                                shard.token_leg.lookup_and_insert(idx, token, &mut tc);
                                let mut qc = HashMap::new();
                                if let Some(qleg) = &mut shard.qgram_leg {
                                    qleg.lookup_and_insert(idx, qgram, &mut qc);
                                }
                                out.push((i, (tc, qc)));
                            }
                            chunk_partials.push(out);
                        }
                        chunk_partials
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("shard worker panicked"))
                .collect()
        })
        .expect("shard scope panicked");

        // Merge with one cursor per shard (each partial list is sorted
        // by record): token counts are additive across shards (each key
        // lives in exactly one), q-gram membership is a union; the
        // shared merge_candidates rule finishes the job.
        self.len += n;
        let mut results = Vec::with_capacity(n);
        let mut cursors = vec![0usize; partials.len()];
        for i in 0..n {
            let mut token_counts: HashMap<usize, usize> = HashMap::new();
            let mut qgram: Vec<usize> = Vec::new();
            for (shard_partials, cursor) in partials.iter_mut().zip(&mut cursors) {
                if *cursor >= shard_partials.len() || shard_partials[*cursor].0 != i {
                    continue;
                }
                let (_, (tc, qc)) = std::mem::take(&mut shard_partials[*cursor]);
                *cursor += 1;
                if token_counts.is_empty() {
                    token_counts = tc;
                } else {
                    for (m, c) in tc {
                        *token_counts.entry(m).or_insert(0) += c;
                    }
                }
                qgram.extend(qc.into_keys());
            }
            results.push(merge_candidates(
                token_counts,
                qgram,
                self.cfg.min_token_overlap,
            ));
        }
        results
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::IncrementalIndex;
    use zeroer_tabular::{Record, Value};

    fn rec(i: u32, name: &str) -> Record {
        Record::new(i, vec![Value::Str(name.into())])
    }

    const NAMES: &[&str] = &[
        "red apple pie",
        "green apple tart",
        "blue sky photograph",
        "fotograph of the sky",
        "red apple pie",
        "completely unrelated",
    ];

    #[test]
    fn matches_unsharded_record_by_record() {
        for shards in [1, 2, 3, 7, 16] {
            let mut sharded = ShardedIndex::with_shards(IndexConfig::default(), shards);
            let mut flat = IncrementalIndex::new(IndexConfig::default());
            for (i, name) in NAMES.iter().enumerate() {
                let r = rec(i as u32, name);
                assert_eq!(
                    sharded.insert(&r),
                    flat.insert(&r),
                    "shards={shards} record={i}"
                );
            }
        }
    }

    #[test]
    fn batch_matches_sequential_inserts() {
        for threads in [1, 2, 4] {
            let cfg = IndexConfig::default();
            let mut seq = ShardedIndex::with_shards(cfg.clone(), 4);
            let expected: Vec<Vec<usize>> = NAMES
                .iter()
                .enumerate()
                .map(|(i, n)| seq.insert(&rec(i as u32, n)))
                .collect();

            let mut batch = ShardedIndex::with_shards(cfg.clone(), 4);
            let keys: Vec<RecordKeys> = NAMES
                .iter()
                .enumerate()
                .map(|(i, n)| RecordKeys::extract(&rec(i as u32, n), &cfg))
                .collect();
            let got = batch.insert_batch(keys, threads);
            assert_eq!(got, expected, "threads={threads}");
            assert_eq!(batch.len(), seq.len());
        }
    }

    #[test]
    fn batch_continues_an_existing_index() {
        let cfg = IndexConfig::default();
        let mut seq = ShardedIndex::with_shards(cfg.clone(), 4);
        let mut batch = ShardedIndex::with_shards(cfg.clone(), 4);
        for (i, n) in NAMES.iter().take(3).enumerate() {
            let r = rec(i as u32, n);
            seq.insert(&r);
            batch.insert(&r);
        }
        let tail: Vec<Vec<usize>> = NAMES
            .iter()
            .enumerate()
            .skip(3)
            .map(|(i, n)| seq.insert(&rec(i as u32, n)))
            .collect();
        let keys: Vec<RecordKeys> = NAMES
            .iter()
            .enumerate()
            .skip(3)
            .map(|(i, n)| RecordKeys::extract(&rec(i as u32, n), &cfg))
            .collect();
        assert_eq!(batch.insert_batch(keys, 2), tail);
    }

    #[test]
    fn overlap_counts_survive_sharding() {
        // min_token_overlap = 2 with the two shared tokens hashed into
        // (potentially) different shards: counts must sum across shards.
        let cfg = IndexConfig {
            min_token_overlap: 2,
            ..Default::default()
        };
        for shards in [1, 2, 8] {
            let mut idx = ShardedIndex::with_shards(cfg.clone(), shards);
            idx.insert(&rec(0, "efficient query processing"));
            let got = idx.insert(&rec(1, "efficient query optimization"));
            assert_eq!(got, vec![0], "shards={shards}");
            let none = idx.insert(&rec(2, "parallel engines"));
            assert!(none.is_empty(), "shards={shards}");
        }
    }

    #[test]
    fn stable_hash_is_stable() {
        // Pinned values: shard routing must never change across builds,
        // or persisted pipelines would re-shard on upgrade.
        assert_eq!(stable_key_hash(""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(stable_key_hash("a"), 0xaf63_dc4c_8601_ec8c);
    }
}
