//! Whole-pipeline snapshots: everything `zeroer ingest` needs to resume
//! scoring against a batch-fitted model from a plain JSON file.
//!
//! A [`zeroer_core::ModelSnapshot`] freezes the generative model and the
//! feature replay state; the [`PipelineSnapshot`] adds the pipeline-level
//! frozen decisions — schema, inferred attribute types (which fix the
//! feature layout), and the blocking-index configuration — so a fresh
//! process can rebuild an identical scoring path.

use crate::index::IndexConfig;
use zeroer_core::json::{Json, JsonError};
use zeroer_core::ModelSnapshot;
use zeroer_tabular::{AttrType, Schema};

/// A serializable freeze of the full streaming-scoring configuration.
#[derive(Debug, Clone)]
pub struct PipelineSnapshot {
    /// Attribute names, in schema order.
    pub schema: Vec<String>,
    /// Frozen attribute types (fixes the feature layout).
    pub attr_types: Vec<AttrType>,
    /// Blocking-index configuration.
    pub index: IndexConfig,
    /// The frozen generative model plus feature replay state.
    pub model: ModelSnapshot,
}

impl PipelineSnapshot {
    /// Rebuilds the [`Schema`].
    ///
    /// # Panics
    /// Panics if the stored names are empty or duplicated.
    pub fn to_schema(&self) -> Schema {
        Schema::new(self.schema.iter().cloned())
    }

    /// Serializes to JSON text.
    pub fn to_json(&self) -> String {
        Json::Obj(vec![
            (
                "format".into(),
                Json::Str("zeroer-pipeline-snapshot".into()),
            ),
            ("version".into(), Json::Num(1.0)),
            (
                "schema".into(),
                Json::Arr(self.schema.iter().map(|s| Json::Str(s.clone())).collect()),
            ),
            (
                "attr_types".into(),
                Json::Arr(
                    self.attr_types
                        .iter()
                        .map(|t| Json::Str(t.name().into()))
                        .collect(),
                ),
            ),
            (
                "index".into(),
                Json::Obj(vec![
                    ("attr".into(), Json::Num(self.index.attr as f64)),
                    ("qgram".into(), Json::Num(self.index.qgram as f64)),
                    ("max_bucket".into(), Json::Num(self.index.max_bucket as f64)),
                    (
                        "min_token_overlap".into(),
                        Json::Num(self.index.min_token_overlap as f64),
                    ),
                ]),
            ),
            ("model".into(), self.model.to_json_value()),
        ])
        .render()
    }

    /// Deserializes from JSON text.
    ///
    /// # Errors
    /// Fails on malformed JSON or schema violations.
    pub fn from_json(text: &str) -> Result<Self, JsonError> {
        let j = Json::parse(text)?;
        if j.get("format").and_then(Json::as_str) != Some("zeroer-pipeline-snapshot") {
            return Err(JsonError::schema("not a zeroer pipeline snapshot"));
        }
        if j.get("version").and_then(Json::as_f64) != Some(1.0) {
            return Err(JsonError::schema(
                "unsupported pipeline-snapshot version (expected 1)",
            ));
        }
        let strings = |key: &str| -> Result<Vec<String>, JsonError> {
            j.require(key)?
                .as_arr()
                .ok_or_else(|| JsonError::schema(format!("{key} must be an array")))?
                .iter()
                .map(|v| {
                    v.as_str()
                        .map(String::from)
                        .ok_or_else(|| JsonError::schema(format!("{key} must hold strings")))
                })
                .collect()
        };
        let schema = strings("schema")?;
        let attr_types = strings("attr_types")?
            .iter()
            .map(|name| {
                AttrType::from_name(name)
                    .ok_or_else(|| JsonError::schema(format!("unknown attr type {name:?}")))
            })
            .collect::<Result<Vec<_>, _>>()?;
        if schema.is_empty() || schema.len() != attr_types.len() {
            return Err(JsonError::schema("schema/attr_types arity mismatch"));
        }
        let idx = j.require("index")?;
        let field = |key: &str| -> Result<usize, JsonError> {
            idx.require(key)?
                .as_usize()
                .ok_or_else(|| JsonError::schema(format!("index.{key} must be an integer")))
        };
        let index = IndexConfig {
            attr: field("attr")?,
            qgram: field("qgram")?,
            max_bucket: field("max_bucket")?,
            min_token_overlap: field("min_token_overlap")?,
        };
        if index.attr >= schema.len() {
            return Err(JsonError::schema("blocking attribute out of schema range"));
        }
        if index.min_token_overlap == 0 {
            return Err(JsonError::schema("min_token_overlap must be at least 1"));
        }
        let model = ModelSnapshot::from_json_value(j.require("model")?)?;
        Ok(Self {
            schema,
            attr_types,
            index,
            model,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_model() -> ModelSnapshot {
        ModelSnapshot {
            pi_m: 0.1,
            group_sizes: vec![1, 2],
            mean_m: vec![0.9, 0.8, 0.85],
            mean_u: vec![0.1, 0.2, 0.15],
            cov_m: vec![vec![0.01], vec![0.02, 0.0, 0.0, 0.02]],
            cov_u: vec![vec![0.03], vec![0.04, 0.0, 0.0, 0.04]],
            ranges: vec![(0.0, 1.0); 3],
            impute_means: vec![0.5; 3],
            feature_names: vec!["a_x".into(), "b_x".into(), "b_y".into()],
        }
    }

    #[test]
    fn round_trip() {
        let snap = PipelineSnapshot {
            schema: vec!["name".into(), "year".into()],
            attr_types: vec![AttrType::StrMedium, AttrType::Numeric],
            index: IndexConfig::default(),
            model: tiny_model(),
        };
        let text = snap.to_json();
        let back = PipelineSnapshot::from_json(&text).unwrap();
        assert_eq!(back.schema, snap.schema);
        assert_eq!(back.attr_types, snap.attr_types);
        assert_eq!(back.index.attr, snap.index.attr);
        assert_eq!(back.index.qgram, snap.index.qgram);
        assert_eq!(back.model, snap.model);
    }

    #[test]
    fn rejects_wrong_format_and_bad_types() {
        assert!(PipelineSnapshot::from_json("{\"format\":\"other\"}").is_err());
        let snap = PipelineSnapshot {
            schema: vec!["name".into()],
            attr_types: vec![AttrType::StrShort],
            index: IndexConfig {
                attr: 3,
                ..Default::default()
            },
            model: tiny_model(),
        };
        let text = snap.to_json();
        assert!(
            PipelineSnapshot::from_json(&text).is_err(),
            "blocking attr outside the schema must be rejected"
        );
    }
}
