//! Whole-pipeline snapshots: everything `zeroer ingest` needs to resume
//! scoring against a batch-fitted model from a plain JSON file.
//!
//! A [`zeroer_core::ModelSnapshot`] freezes the generative model and the
//! feature replay state; the [`PipelineSnapshot`] adds the pipeline-level
//! frozen decisions — schema, inferred attribute types (which fix the
//! feature layout), and the blocking-index configuration — so a fresh
//! process can rebuild an identical scoring path.

use crate::index::IndexConfig;
use zeroer_core::json::{Json, JsonError};
use zeroer_core::{LinkageSnapshot, ModelSnapshot};
use zeroer_tabular::{AttrType, Schema};

/// A serializable freeze of the full streaming-scoring configuration.
#[derive(Debug, Clone)]
pub struct PipelineSnapshot {
    /// Attribute names, in schema order.
    pub schema: Vec<String>,
    /// Frozen attribute types (fixes the feature layout).
    pub attr_types: Vec<AttrType>,
    /// Blocking-index configuration.
    pub index: IndexConfig,
    /// The frozen generative model plus feature replay state.
    pub model: ModelSnapshot,
    /// Number of bootstrap-batch records the model was fitted on (0 when
    /// the origin pipeline recorded none — e.g. a hand-built snapshot).
    pub bootstrap_len: usize,
    /// The bootstrap match decisions: candidate pairs whose posterior
    /// cleared the assignment threshold at fit time, in decision order.
    /// `StreamPipeline::seed_base` replays these so `zeroer ingest
    /// --base` preserves the batch decisions instead of re-scoring the
    /// base records through the streaming path.
    pub bootstrap_pairs: Vec<(usize, usize)>,
    /// Order-sensitive FNV-1a digest of the bootstrap records (ids +
    /// values), so `seed_base` can reject a `--base` table that merely
    /// *looks* compatible (same length/schema, different or reordered
    /// records). 0 = unknown (older snapshots).
    pub bootstrap_digest: u64,
    /// Retracted record indices, ascending. `seed_base` replays these
    /// after the bootstrap decisions; restore refuses indices at or
    /// beyond `bootstrap_len` (streamed records are not persisted, so
    /// their retractions cannot be reconstructed). Empty for pre-PR-4
    /// snapshots.
    pub tombstones: Vec<usize>,
    /// Pipeline epoch at save time (retraction + compaction counter);
    /// 0 for pre-PR-4 snapshots.
    pub epoch: u64,
}

impl PipelineSnapshot {
    /// Rebuilds the [`Schema`].
    ///
    /// # Panics
    /// Panics if the stored names are empty or duplicated.
    pub fn to_schema(&self) -> Schema {
        Schema::new(self.schema.iter().cloned())
    }

    /// Serializes to JSON text.
    pub fn to_json(&self) -> String {
        let _span = zeroer_obs::histogram("snapshot.save.ns").start();
        Json::Obj(vec![
            (
                "format".into(),
                Json::Str("zeroer-pipeline-snapshot".into()),
            ),
            ("version".into(), Json::Num(1.0)),
            ("schema".into(), fields::schema_json(&self.schema)),
            (
                "attr_types".into(),
                fields::attr_types_json(&self.attr_types),
            ),
            ("index".into(), fields::index_json(&self.index)),
            (
                "bootstrap".into(),
                Json::Obj(vec![
                    ("len".into(), Json::Num(self.bootstrap_len as f64)),
                    ("pairs".into(), fields::pairs_json(&self.bootstrap_pairs)),
                    // Hex, not Num: JSON numbers are f64 and cannot hold
                    // every u64 exactly.
                    (
                        "digest".into(),
                        Json::Str(format!("{:016x}", self.bootstrap_digest)),
                    ),
                ]),
            ),
            (
                "retraction".into(),
                fields::retraction_json(self.epoch, &self.tombstones),
            ),
            ("model".into(), self.model.to_json_value()),
        ])
        .render()
    }

    /// Deserializes from JSON text.
    ///
    /// # Errors
    /// Fails on malformed JSON or schema violations.
    pub fn from_json(text: &str) -> Result<Self, JsonError> {
        let _span = zeroer_obs::histogram("snapshot.load.ns").start();
        let j = Json::parse(text)?;
        if j.get("format").and_then(Json::as_str) != Some("zeroer-pipeline-snapshot") {
            return Err(JsonError::schema("not a zeroer pipeline snapshot"));
        }
        if j.get("version").and_then(Json::as_f64) != Some(1.0) {
            return Err(JsonError::schema(
                "unsupported pipeline-snapshot version (expected 1)",
            ));
        }
        let schema = fields::parse_strings(&j, "schema")?;
        let attr_types = fields::parse_attr_types(&fields::parse_strings(&j, "attr_types")?)?;
        if schema.is_empty() || schema.len() != attr_types.len() {
            return Err(JsonError::schema("schema/attr_types arity mismatch"));
        }
        let index = fields::parse_index(&j)?;
        if index.attr >= schema.len() {
            return Err(JsonError::schema("blocking attribute out of schema range"));
        }
        if index.min_token_overlap == 0 {
            return Err(JsonError::schema("min_token_overlap must be at least 1"));
        }
        // The bootstrap section arrived after the format's first release;
        // absence (old snapshots) reads as "no recorded decisions", which
        // callers treat as the legacy re-score behavior.
        let (bootstrap_len, bootstrap_pairs, bootstrap_digest) = match j.get("bootstrap") {
            None => (0, Vec::new(), 0),
            Some(boot) => {
                let len = boot
                    .require("len")?
                    .as_usize()
                    .ok_or_else(|| JsonError::schema("bootstrap.len must be an integer"))?;
                let pairs = fields::parse_pairs(boot, "pairs", len)?;
                // Older writers: digest absent reads as unknown (0).
                let digest = fields::parse_digest(boot, "digest")?;
                (len, pairs, digest)
            }
        };
        // The retraction section arrived with retraction support;
        // absence (older snapshots) reads as "nothing ever retracted".
        let (epoch, tombstones) = fields::parse_retraction(&j)?;
        let model = ModelSnapshot::from_json_value(j.require("model")?)?;
        Ok(Self {
            schema,
            attr_types,
            index,
            model,
            bootstrap_len,
            bootstrap_pairs,
            bootstrap_digest,
            tombstones,
            epoch,
        })
    }
}

/// Shared field renderers/parsers for the two snapshot formats.
mod fields {
    use super::*;

    pub(super) fn schema_json(schema: &[String]) -> Json {
        Json::Arr(schema.iter().map(|s| Json::Str(s.clone())).collect())
    }

    pub(super) fn attr_types_json(types: &[AttrType]) -> Json {
        Json::Arr(types.iter().map(|t| Json::Str(t.name().into())).collect())
    }

    pub(super) fn index_json(index: &IndexConfig) -> Json {
        Json::Obj(vec![
            ("attr".into(), Json::Num(index.attr as f64)),
            ("qgram".into(), Json::Num(index.qgram as f64)),
            ("max_bucket".into(), Json::Num(index.max_bucket as f64)),
            (
                "min_token_overlap".into(),
                Json::Num(index.min_token_overlap as f64),
            ),
        ])
    }

    pub(super) fn pairs_json(pairs: &[(usize, usize)]) -> Json {
        Json::Arr(
            pairs
                .iter()
                .map(|&(a, b)| Json::nums(&[a as f64, b as f64]))
                .collect(),
        )
    }

    pub(super) fn retraction_json(epoch: u64, tombstones: &[usize]) -> Json {
        Json::Obj(vec![
            ("epoch".into(), Json::Num(epoch as f64)),
            (
                "tombstones".into(),
                Json::Arr(tombstones.iter().map(|&t| Json::Num(t as f64)).collect()),
            ),
        ])
    }

    pub(super) fn parse_strings(j: &Json, key: &str) -> Result<Vec<String>, JsonError> {
        j.require(key)?
            .as_arr()
            .ok_or_else(|| JsonError::schema(format!("{key} must be an array")))?
            .iter()
            .map(|v| {
                v.as_str()
                    .map(String::from)
                    .ok_or_else(|| JsonError::schema(format!("{key} must hold strings")))
            })
            .collect()
    }

    pub(super) fn parse_attr_types(names: &[String]) -> Result<Vec<AttrType>, JsonError> {
        names
            .iter()
            .map(|name| {
                AttrType::from_name(name)
                    .ok_or_else(|| JsonError::schema(format!("unknown attr type {name:?}")))
            })
            .collect()
    }

    pub(super) fn parse_index(j: &Json) -> Result<IndexConfig, JsonError> {
        let idx = j.require("index")?;
        let field = |key: &str| -> Result<usize, JsonError> {
            idx.require(key)?
                .as_usize()
                .ok_or_else(|| JsonError::schema(format!("index.{key} must be an integer")))
        };
        Ok(IndexConfig {
            attr: field("attr")?,
            qgram: field("qgram")?,
            max_bucket: field("max_bucket")?,
            min_token_overlap: field("min_token_overlap")?,
        })
    }

    pub(super) fn parse_pairs(
        j: &Json,
        key: &str,
        limit: usize,
    ) -> Result<Vec<(usize, usize)>, JsonError> {
        j.require(key)?
            .as_arr()
            .ok_or_else(|| JsonError::schema(format!("{key} must be an array")))?
            .iter()
            .map(|pair| {
                let err = || JsonError::schema(format!("each {key} pair must be [i, j]"));
                let xs = pair.as_arr().ok_or_else(err)?;
                if xs.len() != 2 {
                    return Err(err());
                }
                let a = xs[0].as_usize().ok_or_else(err)?;
                let b = xs[1].as_usize().ok_or_else(err)?;
                if a >= limit || b >= limit {
                    return Err(JsonError::schema(format!(
                        "{key} pair indices must lie below the bootstrap record count"
                    )));
                }
                Ok((a, b))
            })
            .collect()
    }

    pub(super) fn parse_digest(j: &Json, key: &str) -> Result<u64, JsonError> {
        match j.get(key) {
            None => Ok(0),
            Some(d) => u64::from_str_radix(
                d.as_str()
                    .ok_or_else(|| JsonError::schema(format!("{key} must be a string")))?,
                16,
            )
            .map_err(|_| JsonError::schema(format!("{key} must be hex"))),
        }
    }

    pub(super) fn parse_retraction(j: &Json) -> Result<(u64, Vec<usize>), JsonError> {
        match j.get("retraction") {
            None => Ok((0, Vec::new())),
            Some(retr) => {
                let epoch = retr
                    .require("epoch")?
                    .as_usize()
                    .ok_or_else(|| JsonError::schema("retraction.epoch must be an integer"))?
                    as u64;
                let tombstones: Vec<usize> = retr
                    .require("tombstones")?
                    .as_arr()
                    .ok_or_else(|| JsonError::schema("retraction.tombstones must be an array"))?
                    .iter()
                    .map(|t| {
                        t.as_usize().ok_or_else(|| {
                            JsonError::schema("retraction.tombstones must hold integers")
                        })
                    })
                    .collect::<Result<_, _>>()?;
                if tombstones.windows(2).any(|w| w[0] >= w[1]) {
                    return Err(JsonError::schema(
                        "retraction.tombstones must be strictly ascending",
                    ));
                }
                Ok((epoch, tombstones))
            }
        }
    }
}

/// A serializable freeze of the full streaming **record-linkage**
/// configuration — the `match`-path counterpart of [`PipelineSnapshot`].
///
/// Where the dedup snapshot carries one [`ModelSnapshot`], this carries
/// a [`zeroer_core::LinkageSnapshot`] (the three-model fit of
/// `LinkageModel`) plus the two-sided bootstrap provenance: how many
/// records each side contributed, digests of both tables, and the
/// calibrated match decisions (in the *combined* record numbering —
/// left records first, then right) that `LinkPipeline::seed_base`
/// replays on a cold start.
#[derive(Debug, Clone)]
pub struct LinkSnapshot {
    /// Attribute names, in schema order (both sides share one schema).
    pub schema: Vec<String>,
    /// Frozen attribute types of the **cross** leg (they fix the
    /// feature layout streamed cross pairs are scored under; the
    /// within-table legs' layouts live inside their [`ModelSnapshot`]s).
    pub attr_types: Vec<AttrType>,
    /// Blocking-index configuration (shared by both sides' indexes).
    pub index: IndexConfig,
    /// The frozen three-model linkage fit plus feature replay state.
    pub linkage: LinkageSnapshot,
    /// Number of left-table bootstrap records (combined indices
    /// `0..left_len`).
    pub left_len: usize,
    /// Number of right-table bootstrap records (combined indices
    /// `left_len..left_len + right_len`).
    pub right_len: usize,
    /// Order-sensitive FNV-1a digest of the left bootstrap table
    /// (0 = unknown).
    pub left_digest: u64,
    /// Order-sensitive FNV-1a digest of the right bootstrap table
    /// (0 = unknown).
    pub right_digest: u64,
    /// The bootstrap match decisions in decision order, as combined
    /// indices. Always **cross** pairs `(left, left_len + right)`: the
    /// within-table models calibrate the fit but never emit merge
    /// decisions (mirroring `match_tables`, which reports cross labels
    /// only). Every pair here cleared the assignment threshold at fit
    /// time.
    pub pairs: Vec<(usize, usize)>,
    /// Retracted combined record indices, ascending. `seed_base`
    /// replays these after the bootstrap decisions; restore refuses
    /// indices at or beyond [`LinkSnapshot::bootstrap_len`] (streamed
    /// records are not persisted, so their retractions cannot be
    /// reconstructed — like the dedup format, the writer records them
    /// and the reader refuses them rather than dropping them silently).
    pub tombstones: Vec<usize>,
    /// Pipeline epoch at save time.
    pub epoch: u64,
}

impl LinkSnapshot {
    /// Rebuilds the [`Schema`].
    ///
    /// # Panics
    /// Panics if the stored names are empty or duplicated.
    pub fn to_schema(&self) -> Schema {
        Schema::new(self.schema.iter().cloned())
    }

    /// Total bootstrap record count (both sides).
    pub fn bootstrap_len(&self) -> usize {
        self.left_len + self.right_len
    }

    /// Serializes to JSON text.
    pub fn to_json(&self) -> String {
        let _span = zeroer_obs::histogram("snapshot.save.ns").start();
        Json::Obj(vec![
            ("format".into(), Json::Str("zeroer-link-snapshot".into())),
            ("version".into(), Json::Num(1.0)),
            ("schema".into(), fields::schema_json(&self.schema)),
            (
                "attr_types".into(),
                fields::attr_types_json(&self.attr_types),
            ),
            ("index".into(), fields::index_json(&self.index)),
            (
                "bootstrap".into(),
                Json::Obj(vec![
                    ("left_len".into(), Json::Num(self.left_len as f64)),
                    ("right_len".into(), Json::Num(self.right_len as f64)),
                    (
                        "left_digest".into(),
                        Json::Str(format!("{:016x}", self.left_digest)),
                    ),
                    (
                        "right_digest".into(),
                        Json::Str(format!("{:016x}", self.right_digest)),
                    ),
                    ("pairs".into(), fields::pairs_json(&self.pairs)),
                ]),
            ),
            (
                "retraction".into(),
                fields::retraction_json(self.epoch, &self.tombstones),
            ),
            ("linkage".into(), self.linkage.to_json_value()),
        ])
        .render()
    }

    /// Deserializes from JSON text.
    ///
    /// # Errors
    /// Fails on malformed JSON or schema violations (wrong format
    /// marker, out-of-range pair indices, unsorted tombstones, a
    /// blocking attribute outside the schema).
    pub fn from_json(text: &str) -> Result<Self, JsonError> {
        let _span = zeroer_obs::histogram("snapshot.load.ns").start();
        let j = Json::parse(text)?;
        if j.get("format").and_then(Json::as_str) != Some("zeroer-link-snapshot") {
            return Err(JsonError::schema("not a zeroer link snapshot"));
        }
        if j.get("version").and_then(Json::as_f64) != Some(1.0) {
            return Err(JsonError::schema(
                "unsupported link-snapshot version (expected 1)",
            ));
        }
        let schema = fields::parse_strings(&j, "schema")?;
        let attr_types = fields::parse_attr_types(&fields::parse_strings(&j, "attr_types")?)?;
        if schema.is_empty() || schema.len() != attr_types.len() {
            return Err(JsonError::schema("schema/attr_types arity mismatch"));
        }
        let index = fields::parse_index(&j)?;
        if index.attr >= schema.len() {
            return Err(JsonError::schema("blocking attribute out of schema range"));
        }
        if index.min_token_overlap == 0 {
            return Err(JsonError::schema("min_token_overlap must be at least 1"));
        }
        let boot = j.require("bootstrap")?;
        let side_len = |key: &str| -> Result<usize, JsonError> {
            boot.require(key)?
                .as_usize()
                .ok_or_else(|| JsonError::schema(format!("bootstrap.{key} must be an integer")))
        };
        let left_len = side_len("left_len")?;
        let right_len = side_len("right_len")?;
        let pairs = fields::parse_pairs(boot, "pairs", left_len + right_len)?;
        // Decisions are documented as cross pairs; enforce the
        // orientation so a corrupted or hand-edited snapshot cannot
        // smuggle same-side merges past seed_base (the digests cover
        // the tables, not this array).
        if pairs.iter().any(|&(l, r)| l >= left_len || r < left_len) {
            return Err(JsonError::schema(
                "bootstrap.pairs must be cross pairs: [left index, left_len + right index]",
            ));
        }
        let (epoch, tombstones) = fields::parse_retraction(&j)?;
        Ok(Self {
            schema,
            attr_types,
            index,
            linkage: LinkageSnapshot::from_json_value(j.require("linkage")?)?,
            left_len,
            right_len,
            left_digest: fields::parse_digest(boot, "left_digest")?,
            right_digest: fields::parse_digest(boot, "right_digest")?,
            pairs,
            tombstones,
            epoch,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_model() -> ModelSnapshot {
        ModelSnapshot {
            pi_m: 0.1,
            group_sizes: vec![1, 2],
            mean_m: vec![0.9, 0.8, 0.85],
            mean_u: vec![0.1, 0.2, 0.15],
            cov_m: vec![vec![0.01], vec![0.02, 0.0, 0.0, 0.02]],
            cov_u: vec![vec![0.03], vec![0.04, 0.0, 0.0, 0.04]],
            ranges: vec![(0.0, 1.0); 3],
            impute_means: vec![0.5; 3],
            feature_names: vec!["a_x".into(), "b_x".into(), "b_y".into()],
        }
    }

    #[test]
    fn round_trip() {
        let snap = PipelineSnapshot {
            schema: vec!["name".into(), "year".into()],
            attr_types: vec![AttrType::StrMedium, AttrType::Numeric],
            index: IndexConfig::default(),
            model: tiny_model(),
            bootstrap_len: 4,
            bootstrap_pairs: vec![(0, 1), (1, 3)],
            bootstrap_digest: 0xdead_beef_0123_4567,
            tombstones: vec![1, 3],
            epoch: 5,
        };
        let text = snap.to_json();
        let back = PipelineSnapshot::from_json(&text).unwrap();
        assert_eq!(back.schema, snap.schema);
        assert_eq!(back.attr_types, snap.attr_types);
        assert_eq!(back.index.attr, snap.index.attr);
        assert_eq!(back.index.qgram, snap.index.qgram);
        assert_eq!(back.model, snap.model);
        assert_eq!(back.bootstrap_len, snap.bootstrap_len);
        assert_eq!(back.bootstrap_pairs, snap.bootstrap_pairs);
        assert_eq!(back.tombstones, snap.tombstones);
        assert_eq!(back.epoch, snap.epoch);
    }

    #[test]
    fn missing_bootstrap_section_reads_as_empty() {
        // Pre-bootstrap-section snapshots (PR 1 format) must stay
        // readable: strip the section and parse.
        let snap = PipelineSnapshot {
            schema: vec!["name".into()],
            attr_types: vec![AttrType::StrShort],
            index: IndexConfig::default(),
            model: tiny_model(),
            bootstrap_len: 2,
            bootstrap_pairs: vec![(0, 1)],
            bootstrap_digest: 7,
            tombstones: vec![0],
            epoch: 1,
        };
        let json = Json::parse(&snap.to_json()).unwrap();
        let Json::Obj(fields) = json else {
            panic!("snapshot must render an object")
        };
        let stripped = Json::Obj(
            fields
                .into_iter()
                .filter(|(k, _)| k != "bootstrap")
                .collect(),
        )
        .render();
        let back = PipelineSnapshot::from_json(&stripped).expect("legacy snapshot must parse");
        assert_eq!(back.bootstrap_len, 0);
        assert!(back.bootstrap_pairs.is_empty());
    }

    #[test]
    fn missing_retraction_section_reads_as_never_retracted() {
        // Pre-retraction snapshots (PR 1–3 formats) must stay readable:
        // strip the section and parse.
        let snap = PipelineSnapshot {
            schema: vec!["name".into()],
            attr_types: vec![AttrType::StrShort],
            index: IndexConfig::default(),
            model: tiny_model(),
            bootstrap_len: 2,
            bootstrap_pairs: vec![(0, 1)],
            bootstrap_digest: 7,
            tombstones: vec![0],
            epoch: 3,
        };
        let json = Json::parse(&snap.to_json()).unwrap();
        let Json::Obj(fields) = json else {
            panic!("snapshot must render an object")
        };
        let stripped = Json::Obj(
            fields
                .into_iter()
                .filter(|(k, _)| k != "retraction")
                .collect(),
        )
        .render();
        let back = PipelineSnapshot::from_json(&stripped).expect("legacy snapshot must parse");
        assert!(back.tombstones.is_empty());
        assert_eq!(back.epoch, 0);
    }

    #[test]
    fn rejects_unsorted_or_duplicated_tombstones() {
        let snap = PipelineSnapshot {
            schema: vec!["name".into()],
            attr_types: vec![AttrType::StrShort],
            index: IndexConfig::default(),
            model: tiny_model(),
            bootstrap_len: 4,
            bootstrap_pairs: Vec::new(),
            bootstrap_digest: 0,
            tombstones: vec![2, 2],
            epoch: 2,
        };
        assert!(
            PipelineSnapshot::from_json(&snap.to_json()).is_err(),
            "duplicated tombstone indices must be rejected"
        );
    }

    fn tiny_link_snapshot() -> LinkSnapshot {
        LinkSnapshot {
            schema: vec!["name".into(), "year".into()],
            attr_types: vec![AttrType::StrMedium, AttrType::Numeric],
            index: IndexConfig::default(),
            linkage: LinkageSnapshot {
                cross: tiny_model(),
                left: None,
                right: Some(tiny_model()),
                transitivity: true,
            },
            left_len: 3,
            right_len: 2,
            left_digest: 0x0123_4567_89ab_cdef,
            right_digest: 0xfedc_ba98_7654_3210,
            pairs: vec![(0, 3), (2, 4)],
            tombstones: vec![1],
            epoch: 2,
        }
    }

    #[test]
    fn link_snapshot_round_trip() {
        let snap = tiny_link_snapshot();
        let text = snap.to_json();
        let back = LinkSnapshot::from_json(&text).unwrap();
        assert_eq!(back.schema, snap.schema);
        assert_eq!(back.attr_types, snap.attr_types);
        assert_eq!(back.linkage, snap.linkage);
        assert_eq!(back.left_len, snap.left_len);
        assert_eq!(back.right_len, snap.right_len);
        assert_eq!(back.left_digest, snap.left_digest);
        assert_eq!(back.right_digest, snap.right_digest);
        assert_eq!(back.pairs, snap.pairs);
        assert_eq!(back.tombstones, snap.tombstones);
        assert_eq!(back.epoch, snap.epoch);
        assert_eq!(back.to_json(), text, "re-serialization is byte-identical");
    }

    #[test]
    fn link_snapshot_rejects_non_cross_pairs() {
        // Decisions are cross pairs by construction; a same-side pair in
        // the file means corruption or hand editing, and seed_base must
        // never replay it.
        let mut snap = tiny_link_snapshot();
        snap.pairs = vec![(0, 1)]; // both below left_len: a left-left merge
        assert!(
            LinkSnapshot::from_json(&snap.to_json()).is_err(),
            "same-side bootstrap pairs must be rejected"
        );
        let mut snap = tiny_link_snapshot();
        snap.pairs = vec![(3, 4)]; // both at/after left_len: right-right
        assert!(LinkSnapshot::from_json(&snap.to_json()).is_err());
    }

    #[test]
    fn link_snapshot_rejects_dedup_format_and_vice_versa() {
        let link = tiny_link_snapshot();
        assert!(PipelineSnapshot::from_json(&link.to_json()).is_err());
        let dedup = PipelineSnapshot {
            schema: vec!["name".into()],
            attr_types: vec![AttrType::StrShort],
            index: IndexConfig::default(),
            model: tiny_model(),
            bootstrap_len: 0,
            bootstrap_pairs: Vec::new(),
            bootstrap_digest: 0,
            tombstones: Vec::new(),
            epoch: 0,
        };
        assert!(LinkSnapshot::from_json(&dedup.to_json()).is_err());
    }

    #[test]
    fn rejects_wrong_format_and_bad_types() {
        assert!(PipelineSnapshot::from_json("{\"format\":\"other\"}").is_err());
        let snap = PipelineSnapshot {
            schema: vec!["name".into()],
            attr_types: vec![AttrType::StrShort],
            index: IndexConfig {
                attr: 3,
                ..Default::default()
            },
            model: tiny_model(),
            bootstrap_len: 0,
            bootstrap_pairs: Vec::new(),
            bootstrap_digest: 0,
            tombstones: Vec::new(),
            epoch: 0,
        };
        let text = snap.to_json();
        assert!(
            PipelineSnapshot::from_json(&text).is_err(),
            "blocking attr outside the schema must be rejected"
        );
    }

    #[test]
    fn rejects_out_of_range_bootstrap_pairs() {
        let snap = PipelineSnapshot {
            schema: vec!["name".into()],
            attr_types: vec![AttrType::StrShort],
            index: IndexConfig::default(),
            model: tiny_model(),
            bootstrap_len: 2,
            bootstrap_pairs: vec![(0, 5)],
            bootstrap_digest: 0,
            tombstones: Vec::new(),
            epoch: 0,
        };
        assert!(
            PipelineSnapshot::from_json(&snap.to_json()).is_err(),
            "pair index beyond bootstrap.len must be rejected"
        );
    }
}
