//! The explicit read/write split over [`StreamPipeline`].
//!
//! A long-running resolution service interleaves two very different
//! workloads over the same state: **resolve** queries ("which entity
//! would this record join?") that must answer concurrently and never
//! block, and **writes** (ingest/retract/compact) that must preserve the
//! single-writer decision order proven bit-identical in the batch-ingest
//! suites. This module splits [`StreamPipeline`] into those two halves:
//!
//! * **Read path** — [`ReadHandle`]: pins an immutable, epoch-tagged
//!   [`ReadView`] of the pipeline (store + index + frozen scorer) and
//!   answers [`ReadHandle::resolve`] through the same lock-free
//!   [`ShardedIndex::probe_live`] + `score_candidates` code the ingest
//!   path uses — identical candidates, identical posteriors (to
//!   `f64::to_bits`), but **no** locks shared with the writer and no
//!   mutation. Any number of handles resolve concurrently; each is
//!   pinned until it explicitly [`ReadHandle::refresh`]es, so a resolve
//!   can never observe a half-applied write.
//! * **Write path** — [`WriteHandle`] → admission queue → one writer
//!   thread. Writes are admitted in submission order, consecutive
//!   ingest requests are coalesced into one micro-batch, and the batch
//!   is applied through [`StreamPipeline::ingest_batch_parallel`] — the
//!   existing single-writer protocol — so outcomes are bit-identical to
//!   submitting the same records one at a time to a lone
//!   [`StreamPipeline`]. After each drained queue batch the writer
//!   publishes **one** fresh [`ReadView`] covering every write it
//!   applied (success replies are held back until after that publish,
//!   so read-your-writes still holds); readers pick it up at their
//!   next refresh.
//!
//! The view swap is an atomic `Arc` replacement behind a brief
//! [`RwLock`] critical section (pointer assignment only — never held
//! across scoring or ingest work), which makes this the seam the
//! snapshot lifecycle slots into: [`WriteHandle::refresh`] re-fits the
//! model on the writer ([`StreamPipeline::refit`]) and the swapped
//! scorer rides the very same publication — concurrent resolvers see
//! either the old model or the new one, never a torn mix.
//!
//! Publishing clones the live read state (store, index, scorer —
//! O(live records + postings)). That is deliberate for this growth
//! stage: it keeps the writer's working state completely private (no
//! reader can alias it), and the clone cost is measured by
//! `bench_serve` so the cheaper persistent-structure refresh the
//! ROADMAP plans has a baseline to beat.

use crate::pipeline::{score_candidates, IngestOutcome, StreamError, StreamPipeline};
use crate::shard::{RecordKeys, ShardedIndex};
use crate::store::EntityStore;
use crate::{CompactionReport, RetractionReport};
use std::collections::VecDeque;
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex, MutexGuard, RwLock};
use zeroer_core::{ScoreBatch, SnapshotScorer};
use zeroer_features::BatchFeaturizer;
use zeroer_obs::Histogram;
use zeroer_tabular::Record;
use zeroer_textsim::derive::Deriver;

/// An immutable, epoch-tagged view of a pipeline's read state: the
/// entity store, the blocking index, and the frozen scorer. Constructed
/// by [`StreamPipeline::read_view`], shared via `Arc` among
/// [`ReadHandle`]s, and never mutated after publication.
pub struct ReadView {
    /// Pipeline epoch at pin time (advances on retraction/compaction).
    pub(crate) epoch: u64,
    /// Publication sequence number (0 for the initial view); lets a
    /// handle detect staleness without comparing state.
    pub(crate) version: u64,
    pub(crate) store: EntityStore,
    pub(crate) index: ShardedIndex,
    pub(crate) featurizer: BatchFeaturizer,
    pub(crate) scorer: SnapshotScorer,
    pub(crate) threshold: f64,
    /// Whether resolves ride the struct-of-arrays batched scoring
    /// kernels (pinned from [`crate::StreamOptions::batched_scoring`]
    /// at view-publication time; bit-identical either way).
    pub(crate) batched: bool,
    /// The `stream.score.batch_candidates` histogram handle, pinned at
    /// publication time; `None` when the pipeline's metrics are off.
    pub(crate) score_meter: Option<&'static Histogram>,
}

/// What a [`ReadHandle::resolve`] query found — the read-only analogue
/// of [`IngestOutcome`], answered against one pinned [`ReadView`]
/// without admitting the record.
#[derive(Debug, Clone)]
pub struct ResolveOutcome {
    /// Epoch of the view the query was answered against.
    pub epoch: u64,
    /// Candidates the blocking probe produced (live records only).
    pub candidates: usize,
    /// Candidates scoring above the threshold as `(record index,
    /// posterior)`, sorted by descending posterior — bit-identical to
    /// what [`StreamPipeline::ingest`] would report for this record.
    pub matches: Vec<(usize, f64)>,
    /// Cluster representative the record would join (the best match's
    /// entity), or `None` if it would mint a new entity.
    pub cluster: Option<usize>,
}

impl ResolveOutcome {
    /// Whether the record would mint a new entity.
    pub fn is_new_entity(&self) -> bool {
        self.matches.is_empty()
    }
}

/// A shareable, epoch-pinned resolver over a [`ReadView`].
///
/// Each handle owns a private deriver seeded from the view's interner
/// (an *overlay*: tokens already interned at pin time keep their exact
/// symbols, tokens first seen in a query get handle-local symbols that
/// cannot collide with any index posting), plus a private scratch
/// buffer — so concurrent handles share only the immutable view and
/// never contend.
///
/// The handle stays pinned to its view until [`ReadHandle::refresh`] is
/// called; resolves are deterministic against the pinned epoch even
/// while the write path is busy publishing newer views.
pub struct ReadHandle {
    view: Arc<ReadView>,
    deriver: Deriver,
    batch: ScoreBatch,
    /// Present when the handle came from a [`SplitPipeline`] (and can
    /// therefore refresh); `None` for a standalone pin.
    shared: Option<Arc<Shared>>,
}

impl Clone for ReadHandle {
    fn clone(&self) -> Self {
        Self {
            view: Arc::clone(&self.view),
            deriver: self.deriver.clone(),
            batch: ScoreBatch::new(),
            shared: self.shared.clone(),
        }
    }
}

impl ReadHandle {
    fn pin(view: Arc<ReadView>, shared: Option<Arc<Shared>>) -> Self {
        let deriver =
            Deriver::with_interner(view.store.interner().clone(), view.store.derive_config());
        Self {
            view,
            deriver,
            batch: ScoreBatch::new(),
            shared,
        }
    }

    /// Epoch of the pinned view.
    pub fn epoch(&self) -> u64 {
        self.view.epoch
    }

    /// Publication sequence number of the pinned view.
    pub fn version(&self) -> u64 {
        self.view.version
    }

    /// Records visible in the pinned view (tombstoned slots included,
    /// exactly like [`StreamPipeline::len`]).
    pub fn len(&self) -> usize {
        self.view.store.len()
    }

    /// Whether the pinned view is empty.
    pub fn is_empty(&self) -> bool {
        self.view.store.is_empty()
    }

    /// Schema arity resolve queries must match.
    pub fn arity(&self) -> usize {
        self.view.store.table().schema().arity()
    }

    /// Resolves one record against the pinned view: derive → lock-free
    /// candidate probe ([`ShardedIndex::probe_live`]) → frozen-model
    /// scoring — the exact candidate rule and scoring code of
    /// [`StreamPipeline::ingest`], minus the insertion. Nothing is
    /// admitted and no writer state is touched.
    ///
    /// # Panics
    /// Panics if the record arity does not match the schema.
    pub fn resolve(&mut self, record: &Record) -> ResolveOutcome {
        let view = &*self.view;
        assert_eq!(
            record.values.len(),
            view.store.table().schema().arity(),
            "record arity {} does not match schema arity {}",
            record.values.len(),
            view.store.table().schema().arity()
        );
        let derived = self.deriver.derive(&record.values);
        let keys = RecordKeys::from_derived(&derived, self.deriver.interner());
        let candidates = view.index.probe_live(&keys, view.store.tombstones());
        let store = &view.store;
        let matches = score_candidates(
            &view.featurizer,
            &view.scorer,
            self.deriver.interner(),
            view.threshold,
            false,
            &candidates,
            |c| store.derived(c),
            &derived,
            &mut self.batch,
            view.batched,
            view.score_meter,
        );
        ResolveOutcome {
            epoch: view.epoch,
            candidates: candidates.len(),
            cluster: matches.first().map(|&(c, _)| store.find_readonly(c)),
            matches,
        }
    }

    /// Re-pins the handle to the latest published view, if any newer
    /// one exists. Returns whether the view changed. Standalone handles
    /// (pinned directly off a [`StreamPipeline`]) have nothing to
    /// refresh from and always return `false`.
    pub fn refresh(&mut self) -> bool {
        let Some(shared) = &self.shared else {
            return false;
        };
        let latest = Arc::clone(&read_lock(&shared.view));
        if latest.version == self.view.version {
            return false;
        }
        self.deriver = Deriver::with_interner(
            latest.store.interner().clone(),
            latest.store.derive_config(),
        );
        self.view = latest;
        true
    }
}

/// One queued write operation.
enum WriteOp {
    Ingest(Vec<Record>),
    Retract(Vec<usize>),
    Compact,
    Refresh,
    Snapshot,
    Stats,
}

/// The writer's reply to one operation.
enum WriteReply {
    Ingested(Vec<IngestOutcome>),
    Retracted(Vec<RetractionReport>),
    Compacted(CompactionReport),
    Refreshed(crate::RefreshReport),
    Snapshot(String),
    Stats(String),
    Failed(StreamError),
}

struct Pending {
    op: WriteOp,
    reply: mpsc::Sender<WriteReply>,
}

struct AdmissionQueue {
    ops: VecDeque<Pending>,
    closed: bool,
}

/// State shared between handles and the writer thread.
struct Shared {
    queue: Mutex<AdmissionQueue>,
    admitted: Condvar,
    view: RwLock<Arc<ReadView>>,
}

/// Locks a mutex, recovering the data if a previous holder panicked
/// (queue and view state stay structurally valid across panics — each
/// critical section only moves whole elements).
fn lock<'a, T>(m: &'a Mutex<T>) -> MutexGuard<'a, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

fn read_lock(l: &RwLock<Arc<ReadView>>) -> Arc<ReadView> {
    Arc::clone(&l.read().unwrap_or_else(|e| e.into_inner()))
}

/// The write half: submits operations into the admission queue and
/// blocks until the single writer has applied them, preserving
/// submission order. Cheap to clone; every clone feeds the same queue.
#[derive(Clone)]
pub struct WriteHandle {
    shared: Arc<Shared>,
}

impl WriteHandle {
    fn submit(&self, op: WriteOp) -> Result<WriteReply, StreamError> {
        let (tx, rx) = mpsc::channel();
        {
            let mut q = lock(&self.shared.queue);
            if q.closed {
                return Err(StreamError("write path is shut down".into()));
            }
            q.ops.push_back(Pending { op, reply: tx });
        }
        self.shared.admitted.notify_all();
        rx.recv()
            .map_err(|_| StreamError("writer thread exited before replying".into()))
    }

    /// Ingests a batch through the admission queue (one micro-batch
    /// slot; consecutive pending ingests coalesce into one parallel
    /// apply). Blocks until applied; outcomes are bit-identical to
    /// [`StreamPipeline::ingest_batch`] on the same records in the same
    /// admission order.
    ///
    /// # Errors
    /// Fails when a record's arity does not match the schema, or when
    /// the write path is shut down. Arity failures reject the whole
    /// request before any record of it is applied.
    pub fn ingest(&self, records: Vec<Record>) -> Result<Vec<IngestOutcome>, StreamError> {
        match self.submit(WriteOp::Ingest(records))? {
            WriteReply::Ingested(out) => Ok(out),
            WriteReply::Failed(e) => Err(e),
            _ => unreachable!("ingest op answered with a non-ingest reply"),
        }
    }

    /// Retracts records by index — all-or-nothing, like
    /// [`StreamPipeline::retract_batch`].
    ///
    /// # Errors
    /// Fails like [`StreamPipeline::retract_batch`] (unknown index,
    /// double retraction, …) or when the write path is shut down.
    pub fn retract(&self, ids: Vec<usize>) -> Result<Vec<RetractionReport>, StreamError> {
        match self.submit(WriteOp::Retract(ids))? {
            WriteReply::Retracted(out) => Ok(out),
            WriteReply::Failed(e) => Err(e),
            _ => unreachable!("retract op answered with a non-retract reply"),
        }
    }

    /// Runs one compaction pass on the writer.
    ///
    /// # Errors
    /// Fails when the write path is shut down.
    pub fn compact(&self) -> Result<CompactionReport, StreamError> {
        match self.submit(WriteOp::Compact)? {
            WriteReply::Compacted(out) => Ok(out),
            WriteReply::Failed(e) => Err(e),
            _ => unreachable!("compact op answered with a non-compact reply"),
        }
    }

    /// Re-fits the model over the writer's live records and swaps the
    /// frozen scorer ([`StreamPipeline::refit`]). The swap rides the
    /// normal publication path: by the time this returns, every
    /// subsequently pinned or refreshed [`ReadHandle`] scores with the
    /// new model, and views pinned earlier keep the old one — never a
    /// torn mix.
    ///
    /// # Errors
    /// Fails like [`StreamPipeline::refit`] (no candidate pairs,
    /// degenerate fit, structural drift) or when the write path is shut
    /// down. A failed refit leaves the serving model untouched.
    pub fn refresh(&self) -> Result<crate::RefreshReport, StreamError> {
        match self.submit(WriteOp::Refresh)? {
            WriteReply::Refreshed(report) => Ok(report),
            WriteReply::Failed(e) => Err(e),
            _ => unreachable!("refresh op answered with a non-refresh reply"),
        }
    }

    /// Serializes the writer's current snapshot
    /// ([`StreamPipeline::snapshot`]) to JSON.
    ///
    /// # Errors
    /// Fails when the write path is shut down.
    pub fn snapshot_json(&self) -> Result<String, StreamError> {
        match self.submit(WriteOp::Snapshot)? {
            WriteReply::Snapshot(out) => Ok(out),
            WriteReply::Failed(e) => Err(e),
            _ => unreachable!("snapshot op answered with a non-snapshot reply"),
        }
    }

    /// Publishes the writer's gauges and renders the `--stats` block
    /// via [`crate::render_stats`] — the same bytes the CLI prints.
    ///
    /// # Errors
    /// Fails when the write path is shut down.
    pub fn stats(&self) -> Result<String, StreamError> {
        match self.submit(WriteOp::Stats)? {
            WriteReply::Stats(out) => Ok(out),
            WriteReply::Failed(e) => Err(e),
            _ => unreachable!("stats op answered with a non-stats reply"),
        }
    }
}

/// A [`StreamPipeline`] split into its read and write halves: the
/// pipeline moves onto a dedicated writer thread, reads go through
/// epoch-pinned [`ReadHandle`]s, and writes go through the
/// [`WriteHandle`] admission queue. [`SplitPipeline::shutdown`] drains
/// the queue and hands the pipeline back.
pub struct SplitPipeline {
    shared: Arc<Shared>,
    writer: Option<std::thread::JoinHandle<StreamPipeline>>,
}

impl SplitPipeline {
    /// Splits the pipeline with a single-threaded writer.
    pub fn new(pipeline: StreamPipeline) -> Self {
        Self::with_threads(pipeline, 1)
    }

    /// Splits the pipeline; coalesced ingest micro-batches are applied
    /// via [`StreamPipeline::ingest_batch_parallel`] with `threads`
    /// workers (bit-identical at any thread count).
    pub fn with_threads(pipeline: StreamPipeline, threads: usize) -> Self {
        let shared = Arc::new(Shared {
            queue: Mutex::new(AdmissionQueue {
                ops: VecDeque::new(),
                closed: false,
            }),
            admitted: Condvar::new(),
            view: RwLock::new(Arc::new(pipeline.read_view())),
        });
        let writer_shared = Arc::clone(&shared);
        let writer = std::thread::Builder::new()
            .name("zeroer-writer".into())
            .spawn(move || writer_loop(pipeline, &writer_shared, threads))
            .expect("spawning the writer thread");
        Self {
            shared,
            writer: Some(writer),
        }
    }

    /// A fresh read handle pinned to the latest published view.
    pub fn read_handle(&self) -> ReadHandle {
        ReadHandle::pin(read_lock(&self.shared.view), Some(Arc::clone(&self.shared)))
    }

    /// The write handle feeding the admission queue.
    pub fn write_handle(&self) -> WriteHandle {
        WriteHandle {
            shared: Arc::clone(&self.shared),
        }
    }

    /// Closes the admission queue, waits for the writer to drain every
    /// already-admitted operation, and returns the pipeline. Operations
    /// submitted after shutdown fail with a shut-down error.
    pub fn shutdown(mut self) -> StreamPipeline {
        self.close();
        self.writer
            .take()
            .expect("writer joined exactly once")
            .join()
            .expect("writer thread panicked")
    }

    fn close(&self) {
        lock(&self.shared.queue).closed = true;
        self.shared.admitted.notify_all();
    }
}

impl Drop for SplitPipeline {
    fn drop(&mut self) {
        if let Some(writer) = self.writer.take() {
            self.close();
            let _ = writer.join();
        }
    }
}

/// The single-writer loop: wait for admitted operations, apply them in
/// admission order (coalescing consecutive ingests into one
/// micro-batch), publish **one** fresh [`ReadView`] per drained queue
/// batch, and reply to each submitter. Returns the pipeline when the
/// queue is closed and drained.
///
/// Publishing once per drain (not once per applied op) matters:
/// publication clones the full read state, so a drain of k mutating
/// ops used to pay k clones for k−1 views no reader could ever pin —
/// the writer held the drain the whole time. Read-your-writes is
/// preserved by *deferring* the success replies of mutating ops until
/// after the batch-end publish: a submitter never learns its write
/// succeeded before a view containing it is pinnable. Failures (and
/// the read-only snapshot/stats ops) reply immediately — they publish
/// nothing.
fn writer_loop(mut pipeline: StreamPipeline, shared: &Shared, threads: usize) -> StreamPipeline {
    let mut version = 0u64;
    loop {
        let drained: Vec<Pending> = {
            let mut q = lock(&shared.queue);
            while q.ops.is_empty() && !q.closed {
                q = shared.admitted.wait(q).unwrap_or_else(|e| e.into_inner());
            }
            if q.ops.is_empty() {
                return pipeline;
            }
            q.ops.drain(..).collect()
        };
        let arity = pipeline.store().table().schema().arity();
        let metrics = pipeline.options().metrics;
        let mut dirty = false;
        let mut deferred: Vec<(mpsc::Sender<WriteReply>, WriteReply)> = Vec::new();
        let mut iter = drained.into_iter().peekable();
        while let Some(pending) = iter.next() {
            match pending.op {
                WriteOp::Ingest(records) => {
                    // Coalesce the maximal run of consecutive ingest
                    // requests into one micro-batch, keeping each
                    // request's record-count boundary so outcomes can
                    // be split back per submitter. Requests with an
                    // arity mismatch are rejected up front (whole
                    // request, nothing applied) — the batch apply would
                    // otherwise panic the writer.
                    let mut batch: Vec<Record> = Vec::new();
                    let mut requests: Vec<(usize, mpsc::Sender<WriteReply>)> = Vec::new();
                    let mut admit = |records: Vec<Record>,
                                     reply: mpsc::Sender<WriteReply>,
                                     batch: &mut Vec<Record>| {
                        if let Some(r) = records.iter().find(|r| r.values.len() != arity) {
                            let _ = reply.send(WriteReply::Failed(StreamError(format!(
                                "record arity {} does not match schema arity {arity}",
                                r.values.len()
                            ))));
                            return;
                        }
                        requests.push((records.len(), reply));
                        batch.extend(records);
                    };
                    admit(records, pending.reply, &mut batch);
                    while matches!(iter.peek(), Some(p) if matches!(p.op, WriteOp::Ingest(_))) {
                        let next = iter.next().expect("peeked");
                        let WriteOp::Ingest(records) = next.op else {
                            unreachable!("peek matched an ingest op");
                        };
                        admit(records, next.reply, &mut batch);
                    }
                    if metrics {
                        zeroer_obs::histogram("stream.admit.batch_records")
                            .record(batch.len() as u64);
                    }
                    let mut outcomes = pipeline.ingest_batch_parallel(batch, threads).into_iter();
                    dirty = true;
                    for (count, reply) in requests {
                        let out: Vec<IngestOutcome> = outcomes.by_ref().take(count).collect();
                        deferred.push((reply, WriteReply::Ingested(out)));
                    }
                }
                WriteOp::Retract(ids) => match pipeline.retract_batch(&ids) {
                    Ok(reports) => {
                        dirty = true;
                        deferred.push((pending.reply, WriteReply::Retracted(reports)));
                    }
                    Err(e) => {
                        let _ = pending.reply.send(WriteReply::Failed(e));
                    }
                },
                WriteOp::Compact => {
                    let report = pipeline.compact();
                    dirty = true;
                    deferred.push((pending.reply, WriteReply::Compacted(report)));
                }
                WriteOp::Refresh => match pipeline.refit() {
                    Ok(report) => {
                        dirty = true;
                        deferred.push((pending.reply, WriteReply::Refreshed(report)));
                    }
                    Err(e) => {
                        let _ = pending.reply.send(WriteReply::Failed(e));
                    }
                },
                WriteOp::Snapshot => {
                    let json = pipeline.snapshot().to_json();
                    let _ = pending.reply.send(WriteReply::Snapshot(json));
                }
                WriteOp::Stats => {
                    pipeline.stats().publish();
                    let _ = pending.reply.send(WriteReply::Stats(crate::render_stats()));
                }
            }
        }
        if dirty {
            publish(&pipeline, shared, &mut version);
        }
        for (reply, msg) in deferred {
            let _ = reply.send(msg);
        }
    }
}

/// Publishes the writer's current read state as the next view version.
/// Only the final pointer swap holds the view lock; the clone happens
/// before it, so readers are never blocked on the copy.
fn publish(pipeline: &StreamPipeline, shared: &Shared, version: &mut u64) {
    *version += 1;
    let sw = zeroer_obs::Stopwatch::new(pipeline.options().metrics);
    let mut view = pipeline.read_view();
    view.version = *version;
    sw.total(zeroer_obs::histogram("stream.publish.ns"));
    let next = Arc::new(view);
    *shared.view.write().unwrap_or_else(|e| e.into_inner()) = next;
}

impl StreamPipeline {
    /// Pins the pipeline's current read state as an immutable
    /// [`ReadView`]-backed [`ReadHandle`] (version 0, standalone — it
    /// cannot refresh; use [`SplitPipeline::read_handle`] for handles
    /// that follow the write path's publications).
    pub fn pin_read_handle(&self) -> ReadHandle {
        ReadHandle::pin(Arc::new(self.read_view()), None)
    }
}
