//! The entity store: ingested records plus the live cluster index.

use zeroer_features::RecordCache;
use zeroer_tabular::{Record, Schema, Table};

/// Holds every ingested record together with a union-find cluster index,
/// so each record resolves to a cluster representative in near-constant
/// amortized time and transitivity is enforced structurally (merging two
/// clusters merges *all* their members).
#[derive(Debug, Clone)]
pub struct EntityStore {
    table: Table,
    caches: Vec<RecordCache>,
    parent: Vec<usize>,
    rank: Vec<u8>,
}

impl EntityStore {
    /// An empty store over a schema.
    pub fn new(schema: Schema) -> Self {
        Self {
            table: Table::new("entity-store", schema),
            caches: Vec::new(),
            parent: Vec::new(),
            rank: Vec::new(),
        }
    }

    /// Number of stored records.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// The stored records as a table.
    pub fn table(&self) -> &Table {
        &self.table
    }

    /// Cached derived forms of record `idx`.
    pub fn cache(&self, idx: usize) -> &RecordCache {
        &self.caches[idx]
    }

    /// Appends a record as a fresh singleton entity; returns its index.
    ///
    /// # Panics
    /// Panics if the record arity does not match the schema.
    pub fn push(&mut self, record: Record) -> usize {
        let idx = self.parent.len();
        self.caches.push(RecordCache::build(&record));
        self.table.push(record);
        self.parent.push(idx);
        self.rank.push(0);
        idx
    }

    /// Cluster representative of record `idx`, with path compression.
    pub fn find(&mut self, idx: usize) -> usize {
        let mut root = idx;
        while self.parent[root] != root {
            root = self.parent[root];
        }
        let mut cur = idx;
        while self.parent[cur] != root {
            let next = self.parent[cur];
            self.parent[cur] = root;
            cur = next;
        }
        root
    }

    /// Cluster representative without mutation (no path compression);
    /// useful from shared references.
    pub fn find_readonly(&self, idx: usize) -> usize {
        let mut root = idx;
        while self.parent[root] != root {
            root = self.parent[root];
        }
        root
    }

    /// Merges the clusters of `a` and `b` (union by rank); returns the
    /// surviving representative.
    pub fn merge(&mut self, a: usize, b: usize) -> usize {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return ra;
        }
        let (winner, loser) = if self.rank[ra] >= self.rank[rb] {
            (ra, rb)
        } else {
            (rb, ra)
        };
        self.parent[loser] = winner;
        if self.rank[ra] == self.rank[rb] {
            self.rank[winner] += 1;
        }
        winner
    }

    /// Whether two records currently resolve to the same entity.
    pub fn same_entity(&self, a: usize, b: usize) -> bool {
        self.find_readonly(a) == self.find_readonly(b)
    }

    /// All clusters with at least two members, each sorted, the list
    /// sorted by first member — the same shape `dedup_table` reports.
    pub fn clusters(&self) -> Vec<Vec<usize>> {
        let mut groups: std::collections::HashMap<usize, Vec<usize>> =
            std::collections::HashMap::new();
        for i in 0..self.len() {
            groups.entry(self.find_readonly(i)).or_default().push(i);
        }
        let mut clusters: Vec<Vec<usize>> = groups.into_values().filter(|g| g.len() > 1).collect();
        for c in &mut clusters {
            c.sort_unstable();
        }
        clusters.sort();
        clusters
    }

    /// Number of distinct entities (clusters, including singletons).
    pub fn num_entities(&self) -> usize {
        (0..self.len())
            .filter(|&i| self.find_readonly(i) == i)
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zeroer_tabular::Value;

    fn store_with(n: usize) -> EntityStore {
        let mut s = EntityStore::new(Schema::new(["name"]));
        for i in 0..n {
            s.push(Record::new(i as u32, vec![Value::Str(format!("r{i}"))]));
        }
        s
    }

    #[test]
    fn fresh_records_are_singletons() {
        let s = store_with(4);
        assert_eq!(s.len(), 4);
        assert_eq!(s.num_entities(), 4);
        assert!(s.clusters().is_empty());
    }

    #[test]
    fn merges_are_transitive() {
        let mut s = store_with(5);
        s.merge(0, 1);
        s.merge(1, 4);
        assert!(s.same_entity(0, 4), "0~1 and 1~4 imply 0~4");
        assert!(!s.same_entity(0, 2));
        assert_eq!(s.num_entities(), 3);
        assert_eq!(s.clusters(), vec![vec![0, 1, 4]]);
    }

    #[test]
    fn merge_is_idempotent() {
        let mut s = store_with(3);
        let r1 = s.merge(0, 1);
        let r2 = s.merge(1, 0);
        assert_eq!(r1, r2);
        assert_eq!(s.num_entities(), 2);
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_mismatch_panics() {
        let mut s = store_with(1);
        s.push(Record::new(9, vec![Value::Null, Value::Null]));
    }
}
