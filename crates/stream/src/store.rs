//! The entity store: ingested records, their shared derivation, and the
//! live cluster index — now with record **retraction**.
//!
//! ## Retraction and the decision log
//!
//! A union-find cannot un-merge, so the store keeps the per-record
//! match-decision log: every `merge(a, b)` is appended to an edge list
//! (with a per-record adjacency over it). Retracting record `x` then
//! tombstones `x`, walks the adjacency to collect `x`'s *historical*
//! connected component, resets those members to singletons
//! ([`zeroer_core::UnionFind::reset_members`]), and replays the
//! component's logged decisions skipping any edge that touches a
//! tombstoned record — rebuilding exactly the clustering a store that
//! never held `x` would have (match decisions are pure functions of the
//! two records, so no other component can be affected). An `epoch`
//! counter advances on every retraction and compaction so snapshots and
//! observers can order states.
//!
//! [`EntityStore::compact`] prunes dead log edges and releases retracted
//! records' derivations (their token bags are the heavy part); record
//! *indices* are never reused, so live indices stay stable forever.

use std::collections::{HashMap, HashSet};
use zeroer_core::UnionFind;
use zeroer_tabular::{Record, Schema, Table};
use zeroer_textsim::derive::{DeriveConfig, DerivedRecord, Deriver};
use zeroer_textsim::intern::Interner;

/// Fail fast on a blocking attribute the schema lacks — the derivation
/// would otherwise silently produce empty key sets for every record.
fn check_block_attr(cfg: &DeriveConfig, arity: usize) {
    if let Some(block) = &cfg.block {
        assert!(
            block.attr < arity,
            "blocking attribute {} out of range for arity {arity}",
            block.attr
        );
    }
}

/// Holds every ingested record together with its derived forms (token
/// bags, blocking keys — produced exactly once per record by the
/// store-owned [`Deriver`]) and a union-find cluster index (the shared
/// [`zeroer_core::UnionFind`]), so each record resolves to a cluster
/// representative in near-constant amortized time and transitivity is
/// enforced structurally (merging two clusters merges *all* their
/// members).
///
/// The store owns the single token [`Interner`] of the pipeline: every
/// derivation — bootstrap, sequential ingest, committed parallel ingest
/// — resolves against it, so any two records' bags are directly
/// comparable.
#[derive(Debug, Clone)]
pub struct EntityStore {
    table: Table,
    derived: Vec<DerivedRecord>,
    clusters: UnionFind,
    deriver: Deriver,
    /// `tombstones[i]` — record `i` has been retracted.
    tombstones: Vec<bool>,
    /// Number of set tombstones (`len() - live_len()`).
    retracted: usize,
    /// Advances on every retraction and compaction.
    epoch: u64,
    /// Every merge decision ever applied, in application order.
    decisions: Vec<(usize, usize)>,
    /// Record → indices into `decisions` that mention it.
    adjacency: HashMap<usize, Vec<u32>>,
}

/// What a retraction did (see [`EntityStore::retract`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetractOutcome {
    /// The store epoch after the retraction.
    pub epoch: u64,
    /// Size of the connected component that was reset and replayed
    /// (1 = the record was a singleton; nothing needed rebuilding).
    pub component_size: usize,
}

/// What a store-level compaction reclaimed (see [`EntityStore::compact`];
/// the index-side reclaim is reported separately by the pipeline).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreCompaction {
    /// Decision-log edges dropped because they touch retracted records.
    pub decisions_pruned: usize,
    /// Heap bytes released by clearing retracted records' derivations.
    pub derived_bytes_freed: usize,
}

impl EntityStore {
    /// An empty store over a schema; `cfg` fixes which blocking keys the
    /// derivation extracts.
    ///
    /// # Panics
    /// Panics if `cfg` blocks on an attribute the schema lacks (a
    /// misconfiguration that would otherwise silently derive empty key
    /// sets for every record).
    pub fn new(schema: Schema, cfg: DeriveConfig) -> Self {
        check_block_attr(&cfg, schema.arity());
        Self {
            table: Table::new("entity-store", schema),
            derived: Vec::new(),
            clusters: UnionFind::default(),
            deriver: Deriver::new(cfg),
            tombstones: Vec::new(),
            retracted: 0,
            epoch: 0,
            decisions: Vec::new(),
            adjacency: HashMap::new(),
        }
    }

    /// A store seeded with an already-derived table (the bootstrap path
    /// hands over the featurizer's interner and derivations, so the
    /// records are never derived twice).
    ///
    /// # Panics
    /// Panics if `derived` and `table` disagree on length, or if `cfg`
    /// blocks on an attribute the schema lacks.
    pub fn from_derived(
        table: &Table,
        interner: Interner,
        derived: Vec<DerivedRecord>,
        cfg: DeriveConfig,
    ) -> Self {
        assert_eq!(table.len(), derived.len(), "derivation/table mismatch");
        check_block_attr(&cfg, table.schema().arity());
        let mut clusters = UnionFind::default();
        for _ in 0..table.len() {
            clusters.push();
        }
        Self {
            tombstones: vec![false; table.len()],
            table: table.clone(),
            derived,
            clusters,
            deriver: Deriver::with_interner(interner, cfg),
            retracted: 0,
            epoch: 0,
            decisions: Vec::new(),
            adjacency: HashMap::new(),
        }
    }

    /// Number of stored records.
    pub fn len(&self) -> usize {
        self.clusters.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.clusters.is_empty()
    }

    /// The stored records as a table.
    pub fn table(&self) -> &Table {
        &self.table
    }

    /// The store's interner (the symbol space of every stored bag).
    pub fn interner(&self) -> &Interner {
        self.deriver.interner()
    }

    /// Mutable interner access for the parallel-ingest commit phase
    /// (fresh scratch tokens are interned here, in ingest order).
    pub(crate) fn interner_mut(&mut self) -> &mut Interner {
        self.deriver.interner_mut()
    }

    /// The derivation configuration records are derived under.
    pub fn derive_config(&self) -> DeriveConfig {
        self.deriver.config().clone()
    }

    /// Derived forms of record `idx`.
    pub fn derived(&self, idx: usize) -> &DerivedRecord {
        &self.derived[idx]
    }

    /// Derives a record's forms against the store interner *without*
    /// inserting it (the sequential ingest path derives, blocks, then
    /// pushes).
    pub fn derive(&mut self, record: &Record) -> DerivedRecord {
        self.deriver.derive(&record.values)
    }

    /// Appends a record as a fresh singleton entity; returns its index.
    ///
    /// # Panics
    /// Panics if the record arity does not match the schema.
    pub fn push(&mut self, record: Record) -> usize {
        let derived = self.derive(&record);
        self.push_derived(record, derived)
    }

    /// Appends a record whose derivation was already built (the ingest
    /// paths derive before blocking); returns the record index.
    ///
    /// # Panics
    /// Panics if the record arity does not match the schema.
    pub fn push_derived(&mut self, record: Record, derived: DerivedRecord) -> usize {
        self.derived.push(derived);
        self.table.push(record);
        self.tombstones.push(false);
        self.clusters.push()
    }

    /// Cluster representative of record `idx`, with path compression.
    pub fn find(&mut self, idx: usize) -> usize {
        self.clusters.find(idx)
    }

    /// Cluster representative without mutation (no path compression);
    /// useful from shared references.
    pub fn find_readonly(&self, idx: usize) -> usize {
        self.clusters.find_readonly(idx)
    }

    /// Merges the clusters of `a` and `b` (union by rank); returns the
    /// surviving representative. The decision is appended to the match
    /// log so a later retraction of either record (or of a transitive
    /// neighbor) can rebuild the component without it.
    pub fn merge(&mut self, a: usize, b: usize) -> usize {
        if a != b {
            let edge = self.decisions.len() as u32;
            self.decisions.push((a, b));
            self.adjacency.entry(a).or_default().push(edge);
            self.adjacency.entry(b).or_default().push(edge);
        }
        self.clusters.union(a, b)
    }

    /// Whether two records currently resolve to the same entity.
    pub fn same_entity(&self, a: usize, b: usize) -> bool {
        self.clusters.same_set(a, b)
    }

    /// All clusters with at least two members, each sorted, the list
    /// sorted by first member — the same shape `dedup_table` reports.
    /// Retracted records never appear: the component rebuild leaves them
    /// as singletons.
    pub fn clusters(&self) -> Vec<Vec<usize>> {
        self.clusters.clusters(2)
    }

    /// Number of distinct *live* entities (clusters, including
    /// singletons; retracted records are excluded).
    pub fn num_entities(&self) -> usize {
        self.clusters.num_sets() - self.retracted
    }

    /// Number of live (non-retracted) records.
    pub fn live_len(&self) -> usize {
        self.len() - self.retracted
    }

    /// Number of retracted records.
    pub fn retracted_count(&self) -> usize {
        self.retracted
    }

    /// Whether record `idx` has been retracted.
    pub fn is_retracted(&self, idx: usize) -> bool {
        self.tombstones.get(idx).copied().unwrap_or(false)
    }

    /// The tombstone flags, indexed by record (the filter the blocking
    /// indexes apply to candidate lookups).
    pub fn tombstones(&self) -> &[bool] {
        &self.tombstones
    }

    /// The store epoch: advances on every retraction and compaction.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Overrides the epoch (snapshot restore re-pins the persisted value
    /// after replaying tombstones one by one).
    pub(crate) fn set_epoch(&mut self, epoch: u64) {
        self.epoch = epoch;
    }

    /// Number of edges currently held in the match-decision log
    /// (compaction prunes edges that touch retracted records).
    pub fn decision_log_len(&self) -> usize {
        self.decisions.len()
    }

    /// Retracts record `idx`: tombstones it and rebuilds its connected
    /// component's clusters from the decision log as if the record had
    /// never been ingested (see the module docs). The record's slot —
    /// and every other record's index — stays stable.
    ///
    /// # Errors
    /// Fails on an out-of-range index or an already-retracted record.
    pub fn retract(&mut self, idx: usize) -> Result<RetractOutcome, String> {
        if idx >= self.len() {
            return Err(format!(
                "unknown record index {idx} (store holds {} records)",
                self.len()
            ));
        }
        if self.tombstones[idx] {
            return Err(format!("record {idx} is already retracted"));
        }
        self.tombstones[idx] = true;
        self.retracted += 1;
        self.epoch += 1;

        // Collect the *historical* component: everything reachable from
        // `idx` over logged decision edges (tombstoned intermediates
        // included — their edges still connect the component).
        let mut members: Vec<usize> = vec![idx];
        let mut seen: HashSet<usize> = HashSet::from([idx]);
        let mut edges: Vec<u32> = Vec::new();
        let mut edge_seen: HashSet<u32> = HashSet::new();
        let mut frontier = 0;
        while frontier < members.len() {
            let node = members[frontier];
            frontier += 1;
            if let Some(adj) = self.adjacency.get(&node) {
                for &e in adj {
                    if !edge_seen.insert(e) {
                        continue;
                    }
                    edges.push(e);
                    let (a, b) = self.decisions[e as usize];
                    let other = if a == node { b } else { a };
                    if seen.insert(other) {
                        members.push(other);
                    }
                }
            }
        }
        let component_size = members.len();
        if component_size > 1 {
            self.clusters.reset_members(&members);
            // Replay the component's surviving decisions in log order —
            // deterministic, so any observer (including the parallel
            // ingest writer) sees one canonical rebuilt state.
            edges.sort_unstable();
            for &e in &edges {
                let (a, b) = self.decisions[e as usize];
                if !self.tombstones[a] && !self.tombstones[b] {
                    self.clusters.union(a, b);
                }
            }
        }
        Ok(RetractOutcome {
            epoch: self.epoch,
            component_size,
        })
    }

    /// Store-side compaction: prunes decision-log edges that touch
    /// retracted records (rebuilding the adjacency) and clears retracted
    /// records' derivations, releasing their token bags. Advances the
    /// epoch. Cluster state is untouched — every pruned edge was already
    /// skipped by any rebuild.
    pub fn compact(&mut self) -> StoreCompaction {
        self.epoch += 1;
        let mut out = StoreCompaction::default();
        let before = self.decisions.len();
        let tombstones = &self.tombstones;
        self.decisions
            .retain(|&(a, b)| !tombstones[a] && !tombstones[b]);
        out.decisions_pruned = before - self.decisions.len();
        if out.decisions_pruned > 0 {
            self.adjacency.clear();
            for (e, &(a, b)) in self.decisions.iter().enumerate() {
                self.adjacency.entry(a).or_default().push(e as u32);
                self.adjacency.entry(b).or_default().push(e as u32);
            }
        }
        for (i, dead) in self.tombstones.iter().enumerate() {
            if *dead && self.derived[i].arity() > 0 {
                out.derived_bytes_freed += self.derived[i].heap_bytes();
                self.derived[i] = DerivedRecord::empty();
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zeroer_tabular::Value;

    fn store_with(n: usize) -> EntityStore {
        let mut s = EntityStore::new(Schema::new(["name"]), DeriveConfig::blocking(0, 4));
        for i in 0..n {
            s.push(Record::new(i as u32, vec![Value::Str(format!("r{i}"))]));
        }
        s
    }

    #[test]
    fn fresh_records_are_singletons() {
        let s = store_with(4);
        assert_eq!(s.len(), 4);
        assert_eq!(s.num_entities(), 4);
        assert!(s.clusters().is_empty());
    }

    #[test]
    fn merges_are_transitive() {
        let mut s = store_with(5);
        s.merge(0, 1);
        s.merge(1, 4);
        assert!(s.same_entity(0, 4), "0~1 and 1~4 imply 0~4");
        assert!(!s.same_entity(0, 2));
        assert_eq!(s.num_entities(), 3);
        assert_eq!(s.clusters(), vec![vec![0, 1, 4]]);
    }

    #[test]
    fn merge_is_idempotent() {
        let mut s = store_with(3);
        let r1 = s.merge(0, 1);
        let r2 = s.merge(1, 0);
        assert_eq!(r1, r2);
        assert_eq!(s.num_entities(), 2);
    }

    #[test]
    fn derivation_is_shared_across_records() {
        let mut s = EntityStore::new(Schema::new(["name"]), DeriveConfig::blocking(0, 4));
        s.push(Record::new(0, vec!["golden dragon".into()]));
        s.push(Record::new(1, vec!["golden gate".into()]));
        // "golden" is interned once; both word bags reference it.
        let sym = s.interner().get("golden").expect("token interned");
        assert_eq!(s.derived(0).attr(0).word.count(sym), 1);
        assert_eq!(s.derived(1).attr(0).word.count(sym), 1);
    }

    #[test]
    fn retracting_a_bridge_record_splits_its_component() {
        let mut s = store_with(5);
        s.merge(0, 1);
        s.merge(1, 2);
        assert!(s.same_entity(0, 2), "1 bridges 0 and 2");
        let out = s.retract(1).expect("live record retracts");
        assert_eq!(out.component_size, 3);
        assert_eq!(out.epoch, 1);
        assert!(!s.same_entity(0, 2), "the bridge is gone");
        assert!(s.clusters().is_empty());
        assert_eq!(s.live_len(), 4);
        assert_eq!(s.num_entities(), 4, "four live singletons");
    }

    #[test]
    fn retraction_keeps_surviving_edges_of_the_component() {
        let mut s = store_with(4);
        s.merge(0, 1);
        s.merge(1, 2);
        s.merge(0, 2);
        s.retract(1).unwrap();
        assert!(
            s.same_entity(0, 2),
            "0 and 2 matched directly; losing 1 must not split them"
        );
        assert_eq!(s.clusters(), vec![vec![0, 2]]);
    }

    #[test]
    fn retraction_of_unrelated_records_leaves_components_alone() {
        let mut s = store_with(5);
        s.merge(0, 1);
        s.merge(3, 4);
        s.retract(2).unwrap();
        assert_eq!(s.clusters(), vec![vec![0, 1], vec![3, 4]]);
    }

    #[test]
    fn retract_rejects_unknown_and_double_retraction() {
        let mut s = store_with(2);
        assert!(s.retract(9).is_err(), "out of range");
        s.retract(0).unwrap();
        let err = s.retract(0).expect_err("double retraction");
        assert!(err.contains("already retracted"), "{err}");
        assert_eq!(s.epoch(), 1, "the failed retraction must not advance");
    }

    #[test]
    fn compact_prunes_dead_edges_and_frees_derivations() {
        let mut s = store_with(4);
        s.merge(0, 1);
        s.merge(2, 3);
        s.retract(0).unwrap();
        assert_eq!(s.decision_log_len(), 2);
        let out = s.compact();
        assert_eq!(out.decisions_pruned, 1, "the 0-1 edge touches a tombstone");
        assert!(out.derived_bytes_freed > 0, "token bags are released");
        assert_eq!(s.decision_log_len(), 1);
        assert_eq!(s.epoch(), 2);
        // Cluster state is untouched, and further retractions still work
        // against the rebuilt adjacency.
        assert_eq!(s.clusters(), vec![vec![2, 3]]);
        s.retract(2).unwrap();
        assert!(s.clusters().is_empty());
        // Compacting again finds nothing new to prune from live edges.
        let again = s.compact();
        assert_eq!(again.decisions_pruned, 1);
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_mismatch_panics() {
        let mut s = store_with(1);
        s.push(Record::new(9, vec![Value::Null, Value::Null]));
    }

    #[test]
    #[should_panic(expected = "blocking attribute 5 out of range")]
    fn out_of_range_blocking_attr_panics() {
        EntityStore::new(Schema::new(["name"]), DeriveConfig::blocking(5, 4));
    }
}
