//! The entity store: ingested records plus the live cluster index.

use zeroer_core::UnionFind;
use zeroer_features::RecordCache;
use zeroer_tabular::{Record, Schema, Table};

/// Holds every ingested record together with a union-find cluster index
/// (the shared [`zeroer_core::UnionFind`]), so each record resolves to a
/// cluster representative in near-constant amortized time and
/// transitivity is enforced structurally (merging two clusters merges
/// *all* their members).
#[derive(Debug, Clone)]
pub struct EntityStore {
    table: Table,
    caches: Vec<RecordCache>,
    clusters: UnionFind,
}

impl EntityStore {
    /// An empty store over a schema.
    pub fn new(schema: Schema) -> Self {
        Self {
            table: Table::new("entity-store", schema),
            caches: Vec::new(),
            clusters: UnionFind::default(),
        }
    }

    /// Number of stored records.
    pub fn len(&self) -> usize {
        self.clusters.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.clusters.is_empty()
    }

    /// The stored records as a table.
    pub fn table(&self) -> &Table {
        &self.table
    }

    /// Cached derived forms of record `idx`.
    pub fn cache(&self, idx: usize) -> &RecordCache {
        &self.caches[idx]
    }

    /// Appends a record as a fresh singleton entity; returns its index.
    ///
    /// # Panics
    /// Panics if the record arity does not match the schema.
    pub fn push(&mut self, record: Record) -> usize {
        let cache = RecordCache::build(&record);
        self.push_with_cache(record, cache)
    }

    /// Appends a record whose [`RecordCache`] was already built (the
    /// parallel ingest path derives caches on the worker pool); returns
    /// the record index.
    ///
    /// # Panics
    /// Panics if the record arity does not match the schema.
    pub fn push_with_cache(&mut self, record: Record, cache: RecordCache) -> usize {
        self.caches.push(cache);
        self.table.push(record);
        self.clusters.push()
    }

    /// Cluster representative of record `idx`, with path compression.
    pub fn find(&mut self, idx: usize) -> usize {
        self.clusters.find(idx)
    }

    /// Cluster representative without mutation (no path compression);
    /// useful from shared references.
    pub fn find_readonly(&self, idx: usize) -> usize {
        self.clusters.find_readonly(idx)
    }

    /// Merges the clusters of `a` and `b` (union by rank); returns the
    /// surviving representative.
    pub fn merge(&mut self, a: usize, b: usize) -> usize {
        self.clusters.union(a, b)
    }

    /// Whether two records currently resolve to the same entity.
    pub fn same_entity(&self, a: usize, b: usize) -> bool {
        self.clusters.same_set(a, b)
    }

    /// All clusters with at least two members, each sorted, the list
    /// sorted by first member — the same shape `dedup_table` reports.
    pub fn clusters(&self) -> Vec<Vec<usize>> {
        self.clusters.clusters(2)
    }

    /// Number of distinct entities (clusters, including singletons).
    pub fn num_entities(&self) -> usize {
        self.clusters.num_sets()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zeroer_tabular::Value;

    fn store_with(n: usize) -> EntityStore {
        let mut s = EntityStore::new(Schema::new(["name"]));
        for i in 0..n {
            s.push(Record::new(i as u32, vec![Value::Str(format!("r{i}"))]));
        }
        s
    }

    #[test]
    fn fresh_records_are_singletons() {
        let s = store_with(4);
        assert_eq!(s.len(), 4);
        assert_eq!(s.num_entities(), 4);
        assert!(s.clusters().is_empty());
    }

    #[test]
    fn merges_are_transitive() {
        let mut s = store_with(5);
        s.merge(0, 1);
        s.merge(1, 4);
        assert!(s.same_entity(0, 4), "0~1 and 1~4 imply 0~4");
        assert!(!s.same_entity(0, 2));
        assert_eq!(s.num_entities(), 3);
        assert_eq!(s.clusters(), vec![vec![0, 1, 4]]);
    }

    #[test]
    fn merge_is_idempotent() {
        let mut s = store_with(3);
        let r1 = s.merge(0, 1);
        let r2 = s.merge(1, 0);
        assert_eq!(r1, r2);
        assert_eq!(s.num_entities(), 2);
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_mismatch_panics() {
        let mut s = store_with(1);
        s.push(Record::new(9, vec![Value::Null, Value::Null]));
    }
}
