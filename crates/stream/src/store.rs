//! The entity store: ingested records, their shared derivation, and the
//! live cluster index.

use zeroer_core::UnionFind;
use zeroer_tabular::{Record, Schema, Table};
use zeroer_textsim::derive::{DeriveConfig, DerivedRecord, Deriver};
use zeroer_textsim::intern::Interner;

/// Fail fast on a blocking attribute the schema lacks — the derivation
/// would otherwise silently produce empty key sets for every record.
fn check_block_attr(cfg: &DeriveConfig, arity: usize) {
    if let Some(block) = &cfg.block {
        assert!(
            block.attr < arity,
            "blocking attribute {} out of range for arity {arity}",
            block.attr
        );
    }
}

/// Holds every ingested record together with its derived forms (token
/// bags, blocking keys — produced exactly once per record by the
/// store-owned [`Deriver`]) and a union-find cluster index (the shared
/// [`zeroer_core::UnionFind`]), so each record resolves to a cluster
/// representative in near-constant amortized time and transitivity is
/// enforced structurally (merging two clusters merges *all* their
/// members).
///
/// The store owns the single token [`Interner`] of the pipeline: every
/// derivation — bootstrap, sequential ingest, committed parallel ingest
/// — resolves against it, so any two records' bags are directly
/// comparable.
#[derive(Debug, Clone)]
pub struct EntityStore {
    table: Table,
    derived: Vec<DerivedRecord>,
    clusters: UnionFind,
    deriver: Deriver,
}

impl EntityStore {
    /// An empty store over a schema; `cfg` fixes which blocking keys the
    /// derivation extracts.
    ///
    /// # Panics
    /// Panics if `cfg` blocks on an attribute the schema lacks (a
    /// misconfiguration that would otherwise silently derive empty key
    /// sets for every record).
    pub fn new(schema: Schema, cfg: DeriveConfig) -> Self {
        check_block_attr(&cfg, schema.arity());
        Self {
            table: Table::new("entity-store", schema),
            derived: Vec::new(),
            clusters: UnionFind::default(),
            deriver: Deriver::new(cfg),
        }
    }

    /// A store seeded with an already-derived table (the bootstrap path
    /// hands over the featurizer's interner and derivations, so the
    /// records are never derived twice).
    ///
    /// # Panics
    /// Panics if `derived` and `table` disagree on length, or if `cfg`
    /// blocks on an attribute the schema lacks.
    pub fn from_derived(
        table: &Table,
        interner: Interner,
        derived: Vec<DerivedRecord>,
        cfg: DeriveConfig,
    ) -> Self {
        assert_eq!(table.len(), derived.len(), "derivation/table mismatch");
        check_block_attr(&cfg, table.schema().arity());
        let mut clusters = UnionFind::default();
        for _ in 0..table.len() {
            clusters.push();
        }
        Self {
            table: table.clone(),
            derived,
            clusters,
            deriver: Deriver::with_interner(interner, cfg),
        }
    }

    /// Number of stored records.
    pub fn len(&self) -> usize {
        self.clusters.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.clusters.is_empty()
    }

    /// The stored records as a table.
    pub fn table(&self) -> &Table {
        &self.table
    }

    /// The store's interner (the symbol space of every stored bag).
    pub fn interner(&self) -> &Interner {
        self.deriver.interner()
    }

    /// Mutable interner access for the parallel-ingest commit phase
    /// (fresh scratch tokens are interned here, in ingest order).
    pub(crate) fn interner_mut(&mut self) -> &mut Interner {
        self.deriver.interner_mut()
    }

    /// The derivation configuration records are derived under.
    pub fn derive_config(&self) -> DeriveConfig {
        self.deriver.config().clone()
    }

    /// Derived forms of record `idx`.
    pub fn derived(&self, idx: usize) -> &DerivedRecord {
        &self.derived[idx]
    }

    /// Derives a record's forms against the store interner *without*
    /// inserting it (the sequential ingest path derives, blocks, then
    /// pushes).
    pub fn derive(&mut self, record: &Record) -> DerivedRecord {
        self.deriver.derive(&record.values)
    }

    /// Appends a record as a fresh singleton entity; returns its index.
    ///
    /// # Panics
    /// Panics if the record arity does not match the schema.
    pub fn push(&mut self, record: Record) -> usize {
        let derived = self.derive(&record);
        self.push_derived(record, derived)
    }

    /// Appends a record whose derivation was already built (the ingest
    /// paths derive before blocking); returns the record index.
    ///
    /// # Panics
    /// Panics if the record arity does not match the schema.
    pub fn push_derived(&mut self, record: Record, derived: DerivedRecord) -> usize {
        self.derived.push(derived);
        self.table.push(record);
        self.clusters.push()
    }

    /// Cluster representative of record `idx`, with path compression.
    pub fn find(&mut self, idx: usize) -> usize {
        self.clusters.find(idx)
    }

    /// Cluster representative without mutation (no path compression);
    /// useful from shared references.
    pub fn find_readonly(&self, idx: usize) -> usize {
        self.clusters.find_readonly(idx)
    }

    /// Merges the clusters of `a` and `b` (union by rank); returns the
    /// surviving representative.
    pub fn merge(&mut self, a: usize, b: usize) -> usize {
        self.clusters.union(a, b)
    }

    /// Whether two records currently resolve to the same entity.
    pub fn same_entity(&self, a: usize, b: usize) -> bool {
        self.clusters.same_set(a, b)
    }

    /// All clusters with at least two members, each sorted, the list
    /// sorted by first member — the same shape `dedup_table` reports.
    pub fn clusters(&self) -> Vec<Vec<usize>> {
        self.clusters.clusters(2)
    }

    /// Number of distinct entities (clusters, including singletons).
    pub fn num_entities(&self) -> usize {
        self.clusters.num_sets()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zeroer_tabular::Value;

    fn store_with(n: usize) -> EntityStore {
        let mut s = EntityStore::new(Schema::new(["name"]), DeriveConfig::blocking(0, 4));
        for i in 0..n {
            s.push(Record::new(i as u32, vec![Value::Str(format!("r{i}"))]));
        }
        s
    }

    #[test]
    fn fresh_records_are_singletons() {
        let s = store_with(4);
        assert_eq!(s.len(), 4);
        assert_eq!(s.num_entities(), 4);
        assert!(s.clusters().is_empty());
    }

    #[test]
    fn merges_are_transitive() {
        let mut s = store_with(5);
        s.merge(0, 1);
        s.merge(1, 4);
        assert!(s.same_entity(0, 4), "0~1 and 1~4 imply 0~4");
        assert!(!s.same_entity(0, 2));
        assert_eq!(s.num_entities(), 3);
        assert_eq!(s.clusters(), vec![vec![0, 1, 4]]);
    }

    #[test]
    fn merge_is_idempotent() {
        let mut s = store_with(3);
        let r1 = s.merge(0, 1);
        let r2 = s.merge(1, 0);
        assert_eq!(r1, r2);
        assert_eq!(s.num_entities(), 2);
    }

    #[test]
    fn derivation_is_shared_across_records() {
        let mut s = EntityStore::new(Schema::new(["name"]), DeriveConfig::blocking(0, 4));
        s.push(Record::new(0, vec!["golden dragon".into()]));
        s.push(Record::new(1, vec!["golden gate".into()]));
        // "golden" is interned once; both word bags reference it.
        let sym = s.interner().get("golden").expect("token interned");
        assert_eq!(s.derived(0).attr(0).word.count(sym), 1);
        assert_eq!(s.derived(1).attr(0).word.count(sym), 1);
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_mismatch_panics() {
        let mut s = store_with(1);
        s.push(Record::new(9, vec![Value::Null, Value::Null]));
    }

    #[test]
    #[should_panic(expected = "blocking attribute 5 out of range")]
    fn out_of_range_blocking_attr_panics() {
        EntityStore::new(Schema::new(["name"]), DeriveConfig::blocking(5, 4));
    }
}
