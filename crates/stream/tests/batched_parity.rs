//! Batched-vs-scalar scoring parity.
//!
//! The struct-of-arrays scoring path ([`BatchFeaturizer::fill_columns`]
//! → `SnapshotScorer::score_batch`) claims **bit-identity** with the
//! row-at-a-time scalar path on three levels, and this suite locks each
//! in (`f64::to_bits`, never within-epsilon):
//!
//! 1. raw feature matrices — each column of the batch fill equals the
//!    corresponding entry of the scalar `raw_row_into` row;
//! 2. posteriors — `score_batch` equals `score_raw` per pair;
//! 3. match decisions — full pipelines with `batched_scoring` on vs.
//!    off produce identical outcomes, clusters, and resolve answers at
//!    1, 2, and 4 threads.
//!
//! Bit-identity holds because the batched kernels preserve the scalar
//! per-pair operation order exactly: imputation/normalization visit
//! feature columns in ascending order (like the scalar per-row loop),
//! and the block-diagonal Mahalanobis accumulates one covariance block
//! at a time into a per-row block buffer before summing blocks in
//! layout order — the same `fold(0.0, +)` sequence as the scalar path.

use proptest::prelude::*;
use zeroer_core::ScoreBatch;
use zeroer_datagen::generate;
use zeroer_datagen::profiles::rest_fz;
use zeroer_features::{BatchFeaturizer, DerivedRecord, Deriver};
use zeroer_stream::{IndexConfig, IngestOutcome, StreamOptions, StreamPipeline};
use zeroer_tabular::{Record, Table};

/// Bootstrap/stream split of a generated Rest-FZ dedup table.
fn split_dataset(scale: f64, seed: u64) -> (Table, Vec<Record>) {
    let ds = generate(&rest_fz(), scale, seed);
    let (table, _) = ds.dedup_table();
    let cut = (table.len() * 7 / 10).max(4);
    let mut boot = Table::new("boot", table.schema().clone());
    for r in table.records().iter().take(cut) {
        boot.push(r.clone());
    }
    let tail: Vec<Record> = table.records()[cut..].to_vec();
    (boot, tail)
}

fn assert_outcomes_bit_identical(a: &[IngestOutcome], b: &[IngestOutcome], label: &str) {
    assert_eq!(a.len(), b.len(), "{label}");
    for (x, y) in a.iter().zip(b) {
        assert_eq!(x.index, y.index, "{label}");
        assert_eq!(x.candidates, y.candidates, "{label} record={}", x.index);
        assert_eq!(x.cluster, y.cluster, "{label} record={}", x.index);
        assert_eq!(
            x.matches.len(),
            y.matches.len(),
            "{label} record={}",
            x.index
        );
        for ((ca, pa), (cb, pb)) in x.matches.iter().zip(&y.matches) {
            assert_eq!(ca, cb, "{label} record={}", x.index);
            assert_eq!(
                pa.to_bits(),
                pb.to_bits(),
                "{label} record={}: {pa} vs {pb}",
                x.index
            );
        }
    }
}

/// Levels 1 and 2: the batched feature fill and the batched posteriors
/// against their scalar counterparts, over real derived records.
fn assert_kernel_parity(boot: &Table, snap: &zeroer_stream::PipelineSnapshot) {
    let featurizer = BatchFeaturizer::new(&snap.attr_types);
    let scorer = snap.model.scorer().expect("snapshot scorer");
    let mut deriver = Deriver::new(IndexConfig::default().derive_config());
    let caches: Vec<DerivedRecord> = boot
        .records()
        .iter()
        .map(|r| deriver.derive(&r.values))
        .collect();
    let interner = deriver.interner();
    // All consecutive pairs plus a few long-range ones: a mix of near
    // duplicates and clear non-matches.
    let mut pairs: Vec<(usize, usize)> = (0..caches.len().saturating_sub(1))
        .map(|i| (i, i + 1))
        .collect();
    pairs.extend(
        (0..caches.len().saturating_sub(3))
            .step_by(3)
            .map(|i| (i, i + 3)),
    );

    // Scalar reference: one raw row + one posterior per pair.
    let row_fz = featurizer.row();
    let mut scalar_rows: Vec<Vec<f64>> = Vec::with_capacity(pairs.len());
    let mut scalar_scores: Vec<f64> = Vec::with_capacity(pairs.len());
    let mut buf: Vec<f64> = Vec::new();
    for &(i, j) in &pairs {
        row_fz.raw_row_into(interner, &caches[i], &caches[j], &mut buf);
        scalar_rows.push(buf.clone());
        scalar_scores.push(scorer.score_raw(&mut buf));
    }

    // Batched: one column-major fill + one score_batch call.
    let mut batch = ScoreBatch::new();
    featurizer.fill_columns(
        interner,
        pairs.len(),
        |k| {
            let (i, j) = pairs[k];
            (&caches[i], &caches[j])
        },
        batch.cols_mut(),
    );
    // Level 1: the raw (pre-normalization) feature matrix, column by
    // column, against the scalar rows.
    for (k, row) in scalar_rows.iter().enumerate() {
        for (j, v) in row.iter().enumerate() {
            let b = batch.cols().get(k, j);
            assert!(
                v.to_bits() == b.to_bits() || (v.is_nan() && b.is_nan()),
                "feature ({k},{j}): scalar {v} vs batched {b}"
            );
        }
    }
    // Level 2: posteriors to the bit.
    let batched_scores = scorer.score_batch(&mut batch);
    assert_eq!(batched_scores.len(), scalar_scores.len());
    for (k, (s, b)) in scalar_scores.iter().zip(batched_scores).enumerate() {
        assert_eq!(s.to_bits(), b.to_bits(), "posterior {k}: {s} vs {b}");
    }
}

#[test]
fn batched_kernels_match_scalar_on_real_features() {
    let (boot, _) = split_dataset(0.25, 42);
    let (live, _) = StreamPipeline::bootstrap(&boot, StreamOptions::default()).expect("bootstrap");
    assert_kernel_parity(&boot, &live.snapshot());
}

/// Level 3, fixed seed: full pipelines, batched on vs. off, sequential
/// ingest and the resolve read path.
#[test]
fn batched_pipeline_outcomes_match_scalar() {
    let (boot, tail) = split_dataset(0.25, 42);
    let (live, _) = StreamPipeline::bootstrap(&boot, StreamOptions::default()).expect("bootstrap");
    let snap = live.snapshot();
    let cold = |batched: bool| {
        let mut p = StreamPipeline::from_snapshot(&snap, StreamOptions::default().threshold)
            .expect("snapshot restores");
        p.seed_base(&boot).expect("bootstrap decisions replay");
        p.set_batched_scoring(batched);
        p
    };

    let mut scalar = cold(false);
    let mut batched = cold(true);
    assert!(!scalar.options().batched_scoring);
    assert!(batched.options().batched_scoring);

    // Resolve parity before any streaming (pure read path).
    let mut scalar_reads = scalar.pin_read_handle();
    let mut batched_reads = batched.pin_read_handle();
    for r in &tail {
        let a = scalar_reads.resolve(r);
        let b = batched_reads.resolve(r);
        assert_eq!(a.candidates, b.candidates);
        assert_eq!(a.cluster, b.cluster);
        assert_eq!(a.matches.len(), b.matches.len());
        for ((ca, pa), (cb, pb)) in a.matches.iter().zip(&b.matches) {
            assert_eq!(ca, cb);
            assert_eq!(pa.to_bits(), pb.to_bits(), "resolve: {pa} vs {pb}");
        }
    }

    // Sequential ingest parity.
    let scalar_out: Vec<IngestOutcome> = tail.iter().cloned().map(|r| scalar.ingest(r)).collect();
    let batched_out: Vec<IngestOutcome> = tail.iter().cloned().map(|r| batched.ingest(r)).collect();
    assert_outcomes_bit_identical(&scalar_out, &batched_out, "sequential");
    assert_eq!(scalar.clusters(), batched.clusters());
}

proptest! {
    // Bootstrap runs a full EM fit per case; keep the case count low.
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Level 3 as a property: arbitrary dataset seeds, batched parallel
    /// ingest at arbitrary thread counts against the scalar sequential
    /// reference.
    #[test]
    fn batched_parallel_equals_scalar_sequential(seed in 0u64..200, threads in 1usize..5) {
        let (boot, tail) = split_dataset(0.1, seed);
        let Ok((live, _)) = StreamPipeline::bootstrap(&boot, StreamOptions::default()) else {
            // Tiny unlucky samples can yield no candidate pairs.
            return;
        };
        let snap = live.snapshot();
        assert_kernel_parity(&boot, &snap);

        let cold = |batched: bool| {
            let mut p = StreamPipeline::from_snapshot(&snap, StreamOptions::default().threshold)
                .expect("snapshot restores");
            p.seed_base(&boot).expect("bootstrap decisions replay");
            p.set_batched_scoring(batched);
            p
        };
        let mut scalar = cold(false);
        let scalar_out: Vec<IngestOutcome> =
            tail.iter().cloned().map(|r| scalar.ingest(r)).collect();

        let mut batched = cold(true);
        let batched_out = batched.ingest_batch_parallel(tail, threads);
        assert_outcomes_bit_identical(&scalar_out, &batched_out, "parallel");
        prop_assert_eq!(scalar.clusters(), batched.clusters());
    }
}
